package dod

import "dod/internal/errs"

// The sentinel errors of the dod API. Every rejection across the package —
// batch detection, streaming windows, the serving layer — is matchable
// against one of these with errors.Is, regardless of which layer produced
// it or how it was wrapped.
var (
	// ErrEmptyDataset is returned by Detect and DetectContext for a
	// zero-length dataset.
	ErrEmptyDataset = errs.ErrEmptyDataset
	// ErrDuplicateID is returned when two points carry the same ID — in a
	// batch dataset or within a streaming window. The concrete error is a
	// *DuplicateIDError carrying the offending ID (use errors.As).
	ErrDuplicateID = errs.ErrDuplicateID
	// ErrDimMismatch is returned when a point's dimensionality disagrees
	// with the detector or window it is offered to. The concrete error is a
	// *DimMismatchError carrying the got/want dimensions (use errors.As).
	ErrDimMismatch = errs.ErrDimMismatch
	// ErrBadParams is returned for invalid configuration: r <= 0, k < 1,
	// unknown detector or strategy names, bad window bounds, ...
	ErrBadParams = errs.ErrBadParams
	// ErrClosed is returned when a StreamDetector is used after Close.
	ErrClosed = errs.ErrClosed
	// ErrWorkerLost is returned by a cluster run when a task's worker was
	// lost and the re-execution budget was exhausted before any replacement
	// finished it.
	ErrWorkerLost = errs.ErrWorkerLost
	// ErrJobAborted is returned by a cluster run whose Coordinator was
	// closed while tasks were still outstanding.
	ErrJobAborted = errs.ErrJobAborted
	// ErrOverloaded is returned (and served as HTTP 429) when the serving
	// layer sheds load: its admission queue is full, and rejecting fast
	// beats queueing into a timeout. Back off and retry.
	ErrOverloaded = errs.ErrOverloaded
	// ErrBatchTooLarge is returned (and served as HTTP 400
	// "batch_too_large") when one request batch exceeds the serving layer's
	// configured line limit. Unlike ErrOverloaded it is not retryable
	// as-is: the client must split the batch. The concrete error is a
	// *BatchTooLargeError carrying the limit (use errors.As).
	ErrBatchTooLarge = errs.ErrBatchTooLarge
)

// DuplicateIDError is the concrete error behind ErrDuplicateID; it carries
// the point ID that appeared twice.
type DuplicateIDError = errs.DuplicateIDError

// DimMismatchError is the concrete error behind ErrDimMismatch; it carries
// the offending point's ID and the got/want dimensions.
type DimMismatchError = errs.DimMismatchError

// BatchTooLargeError is the concrete error behind ErrBatchTooLarge; it
// carries the serving layer's configured batch line limit.
type BatchTooLargeError = errs.BatchTooLargeError
