package dod

import (
	"errors"
	"runtime"

	"dod/internal/detect"
	"dod/internal/errs"
	"dod/internal/geom"
)

// Batch is a columnar set of points: all IDs in one slice, all coordinates
// in one flat row-major slice (point i's coordinates are
// Coords[i*Dim : (i+1)*Dim]). The layout is the same one the scan kernels
// operate on internally, so a Batch flows into DetectBatch with no
// per-point conversion or allocation — the natural shape for callers that
// already hold columnar data (Arrow/Parquet readers, NDJSON batch
// decoders, feature stores).
//
// A zero Batch is empty and ready to Append into.
type Batch struct {
	// Dim is the point dimensionality. Zero on an empty batch means
	// "unset"; the first Append fixes it.
	Dim int
	// IDs holds the caller-assigned unique point IDs.
	IDs []uint64
	// Coords holds all coordinates, row-major: len(Coords) == Dim*len(IDs).
	Coords []float64
}

// BatchOf converts row-oriented points into a columnar Batch, copying IDs
// and coordinates. All points must share one dimensionality; a mismatch is
// reported as a *DimMismatchError (matching ErrDimMismatch).
func BatchOf(points []Point) (*Batch, error) {
	b := &Batch{}
	if len(points) == 0 {
		return b, nil
	}
	dim := points[0].Dim()
	b.Dim = dim
	b.IDs = make([]uint64, 0, len(points))
	b.Coords = make([]float64, 0, len(points)*dim)
	for _, p := range points {
		if p.Dim() != dim {
			return nil, &errs.DimMismatchError{ID: p.ID, Got: p.Dim(), Want: dim}
		}
		b.IDs = append(b.IDs, p.ID)
		b.Coords = append(b.Coords, p.Coords...)
	}
	return b, nil
}

// Len returns the number of points in the batch.
func (b *Batch) Len() int { return len(b.IDs) }

// At returns point i as a row. The coordinate slice aliases the batch's
// backing array; callers must not mutate it.
func (b *Batch) At(i int) Point {
	return Point{ID: b.IDs[i], Coords: b.Coords[i*b.Dim : (i+1)*b.Dim]}
}

// Append adds one point. The first Append on an empty batch fixes Dim; any
// later dimensionality mismatch is a *DimMismatchError and leaves the
// batch unchanged.
func (b *Batch) Append(p Point) error {
	if len(b.IDs) == 0 && b.Dim == 0 {
		b.Dim = p.Dim()
	}
	if p.Dim() != b.Dim {
		return &errs.DimMismatchError{ID: p.ID, Got: p.Dim(), Want: b.Dim}
	}
	b.IDs = append(b.IDs, p.ID)
	b.Coords = append(b.Coords, p.Coords...)
	return nil
}

// validate checks the structural invariants DetectBatch relies on.
func (b *Batch) validate() error {
	if b == nil || len(b.IDs) == 0 {
		return errs.ErrEmptyDataset
	}
	if b.Dim < 1 {
		return errs.BadParams("batch Dim must be >= 1, got %d", b.Dim)
	}
	if len(b.Coords) != b.Dim*len(b.IDs) {
		return errs.BadParams("batch has %d coords for %d points of dim %d (want %d)",
			len(b.Coords), len(b.IDs), b.Dim, b.Dim*len(b.IDs))
	}
	seen := make(map[uint64]struct{}, len(b.IDs))
	for _, id := range b.IDs {
		if _, dup := seen[id]; dup {
			return &errs.DuplicateIDError{ID: id}
		}
		seen[id] = struct{}{}
	}
	return nil
}

// DetectBatch is the columnar, parallel counterpart of DetectCentralized:
// it finds all distance-threshold outliers in b by spreading the chosen
// detector's scan kernel across up to GOMAXPROCS goroutines, reading the
// batch's columns in place with no row conversion. The returned IDs are
// sorted and bit-identical to DetectCentralized on the same points — the
// tiled kernels preserve each point's scan behavior exactly, so the two
// entry points are interchangeable wherever determinism matters.
//
// Validation matches DetectCentralized: an empty batch is ErrEmptyDataset,
// duplicate IDs are ErrDuplicateID, and bad parameters (r <= 0, k < 1, or
// a Coords slice whose length disagrees with Dim×Len) are ErrBadParams.
func DetectBatch(b *Batch, detector Detector, r float64, k int) ([]uint64, error) {
	params, err := Config{R: r, K: k}.params()
	if err != nil {
		return nil, err
	}
	if err := b.validate(); err != nil {
		return nil, err
	}
	// The batch's columns are already the kernel layout; wrap, don't copy.
	set := &geom.PointSet{Dim: b.Dim, IDs: b.IDs, Coords: b.Coords}
	res := detect.DetectSetParallel(detect.New(detector, 1), set, set.Len(), params, runtime.GOMAXPROCS(0))
	ids := append([]uint64(nil), res.OutlierIDs...)
	sortIDs(ids)
	return ids, nil
}

// BatchResult carries the index-aligned outcome of a streaming batch call.
// Exactly one of Verdicts (ProcessBatch) or Scores (ScoreBatch) is
// populated; Errs always is.
//
// Batch calls are not fail-fast: a bad item — duplicate ID, wrong
// dimensionality, a closed detector — claims its own error slot and a zero
// value in the corresponding result slot, while every other item still
// processes. Errs[i] == nil if and only if item i succeeded and its
// Verdicts[i]/Scores[i] entry is meaningful. This keeps responses aligned
// with requests under partial failure, the same contract the NDJSON
// serving tiers expose per line.
type BatchResult struct {
	// Verdicts are the per-item ingest outcomes (ProcessBatch only).
	Verdicts []StreamVerdict
	// Scores are the per-item query outcomes (ScoreBatch only).
	Scores []StreamScore
	// Errs has one slot per input item; nil means that item succeeded.
	Errs []error
}

// Err joins the per-item errors into one error, nil if every item
// succeeded. The result is errors.Join-shaped: errors.Is and errors.As
// see through it to each item's error, so callers can write
// errors.Is(res.Err(), dod.ErrDuplicateID) without walking Errs.
func (r *BatchResult) Err() error { return errors.Join(r.Errs...) }

// Ok reports whether item i succeeded.
func (r *BatchResult) Ok(i int) bool { return r.Errs[i] == nil }
