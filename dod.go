// Package dod implements multi-tactic distributed distance-based outlier
// detection — a from-scratch Go reproduction of "Multi-Tactic Distance-based
// Outlier Detection" (Cao et al., ICDE 2017).
//
// A point p in a dataset D is a distance-threshold outlier iff it has fewer
// than K neighbors within distance R (Knorr & Ng). DOD finds all such
// outliers with a single-pass MapReduce job: the domain is partitioned into
// rectangles, each augmented with a supporting area (an R-expansion of its
// boundary) so every partition can be processed in isolation, and each
// partition runs the centralized detector that is cheapest for its density
// under the paper's cost models.
//
// The simplest entry point detects outliers in an in-memory dataset:
//
//	points := []dod.Point{ ... }
//	result, err := dod.Detect(points, dod.Config{R: 5, K: 4})
//
// Config selects the partitioning strategy (StrategyDMT by default — the
// paper's full multi-tactic optimizer), the detector candidate set, and the
// execution parameters. The returned Result carries the outlier IDs and an
// execution report with per-stage timings on both the in-process engine and
// a simulated 40-node cluster.
package dod

import (
	"context"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"dod/internal/cluster"
	"dod/internal/core"
	"dod/internal/detect"
	"dod/internal/dshc"
	"dod/internal/errs"
	"dod/internal/geom"
	"dod/internal/mapreduce"
	"dod/internal/plan"
)

// Point is a d-dimensional data point with a caller-assigned unique ID.
type Point = geom.Point

// Rect is an axis-aligned hyper-rectangle.
type Rect = geom.Rect

// Detector names a centralized detection algorithm.
type Detector = detect.Kind

// The available detectors. NestedLoop and CellBased form the paper's
// candidate set; KDTree is an extension; BruteForce is the O(n²) reference.
const (
	BruteForce = detect.BruteForce
	NestedLoop = detect.NestedLoop
	CellBased  = detect.CellBased
	KDTree     = detect.KDTree
	// CellBasedL2 is an optimized Cell-Based variant (beyond the paper)
	// that restricts undecided-cell scans to the L1–L2 cell ring.
	CellBasedL2 = detect.CellBasedL2
	// ProxGraph is the exact proximity-graph tactic: a navigable neighbor
	// graph built once per partition answers threshold queries by graph
	// walk, falling back to verified scans so results stay bit-identical
	// to BruteForce. The grid-free structure survives high dimension.
	ProxGraph = detect.PGraph
	// SensSample is the approximate sensitivity-sampling tactic: verdicts
	// are estimated from a weighted sample in linear time. It requires
	// Config.AllowApprox.
	SensSample = detect.SSample
)

// Strategy names a partitioning strategy (Sec. VI-A). It implements
// flag.Value, so a *Strategy can be passed directly to flag.Var.
type Strategy string

// String returns the strategy's canonical name.
func (s Strategy) String() string { return string(s) }

// Set parses name into the receiver; it accepts any case and makes
// *Strategy a flag.Value.
func (s *Strategy) Set(name string) error {
	parsed, err := ParseStrategy(name)
	if err != nil {
		return err
	}
	*s = parsed
	return nil
}

// The partitioning strategies evaluated in the paper.
const (
	// StrategyDomain is the no-supporting-area baseline; it needs a second
	// MapReduce job to settle border points.
	StrategyDomain Strategy = "Domain"
	// StrategyUniSpace tiles the domain with an equi-width grid plus
	// supporting areas.
	StrategyUniSpace Strategy = "uniSpace"
	// StrategyDDriven balances partition cardinality (the traditional
	// load-balancing assumption).
	StrategyDDriven Strategy = "DDriven"
	// StrategyCDriven balances modeled detection cost.
	StrategyCDriven Strategy = "CDriven"
	// StrategyDMT is the paper's density-aware multi-tactic optimizer:
	// DSHC partitioning, per-partition algorithm selection, cost-balanced
	// allocation.
	StrategyDMT Strategy = "DMT"
)

// Config controls a detection run. R and K are required; everything else
// has sensible defaults.
type Config struct {
	// R is the neighbor distance threshold (Def. 2.1).
	R float64
	// K is the neighbor count threshold: outliers have fewer than K
	// neighbors within R (Def. 2.2).
	K int

	// Strategy picks the partitioning strategy; default StrategyDMT.
	Strategy Strategy
	// Detector fixes the detection algorithm for single-tactic strategies
	// and is ignored by StrategyDMT (which picks per partition); default
	// CellBased.
	Detector Detector
	// Candidates overrides DMT's algorithm candidate set; default
	// {NestedLoop, CellBased}.
	Candidates []Detector
	// AllowApprox opts in to approximate detectors (those whose
	// Detector.Approximate() reports true, currently SensSample): without
	// it, an approximate Detector is rejected and approximate Candidates
	// are dropped from DMT's choice set, so every default-configured run
	// remains bit-identical to the exact reference. With it, verdicts may
	// differ from the exact answer within the sampling error bound.
	AllowApprox bool

	// NumReducers is the number of reduce tasks; default 8.
	NumReducers int
	// NumPartitions is the target partition count for grid/bisection
	// strategies; default 4×NumReducers.
	NumPartitions int
	// SampleRate is the preprocessing sampling rate Υ; default 0.005.
	// Rates this low need large datasets; small inputs should raise it.
	SampleRate float64
	// BucketsPerDim is the mini-bucket resolution; default 32.
	BucketsPerDim int
	// Tdiff, if positive, sets DSHC's absolute density-difference merge
	// threshold (Def. 5.2); by default a relative threshold is used.
	Tdiff float64
	// Seed drives all randomized components; runs are reproducible.
	Seed int64
	// Parallelism bounds concurrent task goroutines; default GOMAXPROCS.
	Parallelism int
	// PointsPerSplit sizes the map input splits; default 64Ki points.
	PointsPerSplit int
	// ExactSupport uses the exact Def. 3.2 supporting-area criterion
	// (rounded corners) instead of the default Def. 3.3 rectangular
	// expansion, trading mapping cost for less replication.
	ExactSupport bool
	// FailureRate injects task failures with this probability; failed
	// attempts are retried, exercising fault tolerance without changing
	// results.
	FailureRate float64

	// Engine selects where detection tasks execute: EngineLocal (the
	// default, in-process goroutines) or EngineCluster (shipped to the
	// Coordinator's workers over the network). Results are byte-identical
	// across engines on the same seed. EngineCluster requires a
	// single-pass strategy; StrategyDomain stays local-only.
	Engine Engine
	// Coordinator is the cluster control plane EngineCluster ships tasks
	// to; required for (and only used by) that engine.
	Coordinator *Coordinator
}

// ParseDetector resolves a detector name ("NestedLoop", "cell-based",
// "kdtree", ...) to its Detector; matching ignores case and hyphens. It is
// the inverse of Detector.String, and Detector implements flag.Value, so
// command-line tools can accept detector flags without hand-rolled
// switches. Unknown names return an error matching ErrBadParams.
func ParseDetector(name string) (Detector, error) { return detect.ParseKind(name) }

// ParseStrategy resolves a strategy name ("DMT", "unispace", ...) to its
// Strategy; matching ignores case. It is the inverse of Strategy.String.
// Unknown names return an error matching ErrBadParams.
func ParseStrategy(name string) (Strategy, error) {
	all := []Strategy{StrategyDomain, StrategyUniSpace, StrategyDDriven, StrategyCDriven, StrategyDMT}
	for _, s := range all {
		if strings.EqualFold(name, string(s)) {
			return s, nil
		}
	}
	return "", errs.BadParams("unknown strategy %q", name)
}

// Result is the outcome of a detection run.
type Result struct {
	// OutlierIDs are the IDs of all distance-threshold outliers, sorted.
	OutlierIDs []uint64
	// Report profiles the distributed execution.
	Report *core.Report
}

// TraceSpan is one timed stage of a detection run: "preprocess", "plan",
// "map", "shuffle", "reduce", or one "partition.detect" per partition.
type TraceSpan struct {
	// Name identifies the stage.
	Name string
	// Start is the stage's wall-clock start.
	Start time.Time
	// Duration is the stage's length.
	Duration time.Duration
	// Attrs annotate the stage: partition id, chosen detector, record and
	// distance-computation counts, ...
	Attrs map[string]string
}

// Trace returns the run's execution trace: every pipeline stage and every
// per-partition detector invocation, in recording order. It returns nil if
// the run recorded no trace.
func (r *Result) Trace() []TraceSpan {
	if r.Report == nil || r.Report.Trace == nil {
		return nil
	}
	spans := r.Report.Trace.Spans()
	out := make([]TraceSpan, len(spans))
	for i, s := range spans {
		ts := TraceSpan{Name: s.Name, Start: s.Start, Duration: s.Duration}
		if len(s.Attrs) > 0 {
			ts.Attrs = make(map[string]string, len(s.Attrs))
			for _, a := range s.Attrs {
				ts.Attrs[a.Key] = a.Value
			}
		}
		out[i] = ts
	}
	return out
}

// PartitionDetail pairs one partition's plan entry (what the planner
// predicted) with its trace record (what detection actually cost),
// making planner picks auditable: a partition whose actual DistComps dwarfs
// its EstCost is a model miss.
type PartitionDetail struct {
	ID        int      // partition id
	Algo      Detector // the tactic the plan assigned
	Reducer   int      // the reducer the allocation assigned
	EstCount  float64  // estimated cardinality (from the sample histogram)
	EstCost   float64  // modeled detection cost under Algo
	Core      int64    // actual core points detected over
	Support   int64    // actual support points shipped
	DistComps int64    // actual distance computations spent
	Outliers  int64    // outliers found in this partition
}

// PartitionDetails merges the run's plan with its per-partition trace
// spans into one auditable table, sorted by partition ID. Partitions never
// executed (empty core) keep zeroed actuals. Returns nil if the run kept
// no plan.
func (r *Result) PartitionDetails() []PartitionDetail {
	if r.Report == nil || r.Report.Plan == nil {
		return nil
	}
	byID := make(map[int]*PartitionDetail, len(r.Report.Plan.Partitions))
	out := make([]PartitionDetail, 0, len(r.Report.Plan.Partitions))
	for _, p := range r.Report.Plan.Partitions {
		out = append(out, PartitionDetail{
			ID:       p.ID,
			Algo:     p.Algo,
			Reducer:  p.Reducer,
			EstCount: p.EstCount,
			EstCost:  p.EstCost,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	for i := range out {
		byID[out[i].ID] = &out[i]
	}
	for _, s := range r.Trace() {
		if s.Name != "partition.detect" {
			continue
		}
		id, err := strconv.Atoi(s.Attrs["partition"])
		if err != nil {
			continue
		}
		d, ok := byID[id]
		if !ok {
			continue
		}
		d.Core, _ = strconv.ParseInt(s.Attrs["core"], 10, 64)
		d.Support, _ = strconv.ParseInt(s.Attrs["support"], 10, 64)
		d.DistComps, _ = strconv.ParseInt(s.Attrs["distcomps"], 10, 64)
		d.Outliers, _ = strconv.ParseInt(s.Attrs["outliers"], 10, 64)
	}
	return out
}

// IsOutlier reports whether the given point ID was classified an outlier.
func (r *Result) IsOutlier(id uint64) bool {
	lo, hi := 0, len(r.OutlierIDs)
	for lo < hi {
		mid := (lo + hi) / 2
		if r.OutlierIDs[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(r.OutlierIDs) && r.OutlierIDs[lo] == id
}

// Detect finds all distance-threshold outliers in points. Point IDs must be
// unique; verdicts refer to them. Empty datasets and duplicate IDs are
// rejected (a duplicated ID would silently corrupt neighbor counts, since
// detectors treat equal IDs as the same point): the returned errors match
// ErrEmptyDataset and ErrDuplicateID.
func Detect(points []Point, cfg Config) (*Result, error) {
	return DetectContext(context.Background(), points, cfg)
}

// DetectContext is Detect with cooperative cancellation: once ctx is done,
// the run stops dispatching MapReduce tasks, stops between pipeline stages
// and between reduce key groups, and returns ctx.Err(). Work already
// running on worker goroutines finishes its current partition before the
// call returns.
func DetectContext(ctx context.Context, points []Point, cfg Config) (*Result, error) {
	if err := validatePoints(points); err != nil {
		return nil, err
	}
	if cfg.BucketsPerDim == 0 {
		// Size mini buckets so density estimates stay statistically stable
		// (~25 expected points per bucket).
		b := int(math.Sqrt(float64(len(points)) / 25))
		if b < 8 {
			b = 8
		}
		if b > 40 {
			b = 40
		}
		cfg.BucketsPerDim = b
	}
	coreCfg, err := cfg.toCore()
	if err != nil {
		return nil, err
	}
	input, err := core.InputFromPoints(points, cfg.PointsPerSplit)
	if err != nil {
		return nil, err
	}
	rep, err := core.Run(ctx, input, coreCfg)
	if err != nil {
		// A cancelled run surfaces as exactly ctx.Err(), however deep in
		// the pipeline the cancellation was observed.
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, err
	}
	return &Result{OutlierIDs: rep.Outliers, Report: rep}, nil
}

// DetectCentralized runs one centralized detector on a single machine with
// no partitioning — the right choice for small datasets and the reference
// for the distributed path. It is a thin wrapper over the same parameter
// and dataset validation Detect uses: bad parameters match ErrBadParams,
// an empty dataset is ErrEmptyDataset, and duplicate IDs are
// ErrDuplicateID, exactly as for every other entry point.
func DetectCentralized(points []Point, detector Detector, r float64, k int) ([]uint64, error) {
	params, err := Config{R: r, K: k}.params()
	if err != nil {
		return nil, err
	}
	if err := validatePoints(points); err != nil {
		return nil, err
	}
	res := core.DetectCentralized(points, detector, params, 1)
	ids := append([]uint64(nil), res.OutlierIDs...)
	sortIDs(ids)
	return ids, nil
}

func sortIDs(ids []uint64) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// validatePoints rejects the inputs the detectors cannot give meaningful
// answers for: empty datasets and duplicate point IDs.
func validatePoints(points []Point) error {
	if len(points) == 0 {
		return errs.ErrEmptyDataset
	}
	seen := make(map[uint64]struct{}, len(points))
	for _, p := range points {
		if _, dup := seen[p.ID]; dup {
			return &errs.DuplicateIDError{ID: p.ID}
		}
		seen[p.ID] = struct{}{}
	}
	return nil
}

// params validates and returns the detection parameters. Every public
// entry point — Detect, DetectCentralized, DetectBatch — funnels its R/K
// validation through here so they reject bad parameters identically.
func (cfg Config) params() (detect.Params, error) {
	params := detect.Params{R: cfg.R, K: cfg.K}
	if err := params.Validate(); err != nil {
		return detect.Params{}, err
	}
	return params, nil
}

// toCore translates the public config into the driver config.
func (cfg Config) toCore() (core.Config, error) {
	params, err := cfg.params()
	if err != nil {
		return core.Config{}, err
	}
	strategy := cfg.Strategy
	if strategy == "" {
		strategy = StrategyDMT
	}
	planner, err := plan.ByName(string(strategy))
	if err != nil {
		return core.Config{}, err
	}
	detector := cfg.Detector
	if detector == detect.Unspecified {
		detector = CellBased
	}
	if detector.Approximate() && !cfg.AllowApprox {
		return core.Config{}, errs.BadParams("detector %v is approximate; set Config.AllowApprox to opt in", detector)
	}
	reducers := cfg.NumReducers
	if reducers < 1 {
		reducers = 8
	}
	candidates := make([]detect.Kind, len(cfg.Candidates))
	copy(candidates, cfg.Candidates)
	parallelism := cfg.Parallelism
	var executorFor func(*plan.Plan, detect.Params, int64) (mapreduce.Executor, error)
	var retryBackoff time.Duration
	switch cfg.Engine {
	case "", EngineLocal:
		if cfg.Coordinator != nil {
			return core.Config{}, errs.BadParams("Config.Coordinator is set but Engine is %q; set Engine: EngineCluster", EngineLocal)
		}
	case EngineCluster:
		if cfg.Coordinator == nil {
			return core.Config{}, errs.BadParams("EngineCluster requires a Coordinator")
		}
		executorFor = core.ClusterExecutorFor(cfg.Coordinator.c)
		retryBackoff = 50 * time.Millisecond
		if parallelism <= 0 {
			// The driver's parallelism bounds in-flight dispatches; with
			// remote workers doing the actual computing, hold many more
			// tasks in flight than this machine has cores.
			parallelism = 64
		}
	default:
		return core.Config{}, errs.BadParams("unknown engine %q", cfg.Engine)
	}
	return core.Config{
		Params:  params,
		Planner: planner,
		PlanOpts: plan.Options{
			NumReducers:   reducers,
			NumPartitions: cfg.NumPartitions,
			Detector:      detector,
			Candidates:    candidates,
			DSHC:          dshc.Params{Tdiff: cfg.Tdiff},
			ExactSupport:  cfg.ExactSupport,
			AllowApprox:   cfg.AllowApprox,
		},
		SampleRate:    cfg.SampleRate,
		BucketsPerDim: cfg.BucketsPerDim,
		Seed:          cfg.Seed,
		Parallelism:   parallelism,
		FailureRate:   cfg.FailureRate,
		RetryBackoff:  retryBackoff,
		ExecutorFor:   executorFor,
		Cluster:       cluster.PaperCluster,
	}, nil
}
