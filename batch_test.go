package dod

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

func TestBatchOfRoundTrip(t *testing.T) {
	pts := testDataset(200, 11)
	b, err := BatchOf(pts)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != len(pts) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(pts))
	}
	for i, p := range pts {
		if got := b.At(i); !reflect.DeepEqual(got, p) {
			t.Fatalf("At(%d) = %v, want %v", i, got, p)
		}
	}
}

func TestBatchOfDimMismatch(t *testing.T) {
	pts := []Point{
		{ID: 1, Coords: []float64{1, 2}},
		{ID: 2, Coords: []float64{1, 2, 3}},
	}
	_, err := BatchOf(pts)
	if !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("err = %v, want ErrDimMismatch", err)
	}
	var dm *DimMismatchError
	if !errors.As(err, &dm) || dm.ID != 2 || dm.Got != 3 || dm.Want != 2 {
		t.Fatalf("err = %#v, want DimMismatchError{ID:2 Got:3 Want:2}", err)
	}
}

func TestBatchAppend(t *testing.T) {
	var b Batch
	if err := b.Append(Point{ID: 1, Coords: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if b.Dim != 3 {
		t.Fatalf("Dim = %d, want 3 after first Append", b.Dim)
	}
	if err := b.Append(Point{ID: 2, Coords: []float64{4, 5}}); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("mismatched Append err = %v, want ErrDimMismatch", err)
	}
	if b.Len() != 1 || len(b.Coords) != 3 {
		t.Fatalf("failed Append mutated the batch: %+v", b)
	}
}

// TestDetectBatchMatchesCentralized pins the tentpole's core contract: the
// columnar parallel entry point produces exactly DetectCentralized's
// answer for every detector that has a tiled kernel, and for the ones that
// fall back to the sequential path.
func TestDetectBatchMatchesCentralized(t *testing.T) {
	pts := testDataset(900, 17)
	b, err := BatchOf(pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []Detector{BruteForce, NestedLoop, CellBased, CellBasedL2, KDTree} {
		want, err := DetectCentralized(pts, d, 5, 4)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		got, err := DetectBatch(b, d, 5, 4)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v: DetectBatch = %v, want %v", d, got, want)
		}
	}
}

func TestDetectBatchValidation(t *testing.T) {
	good, err := BatchOf(testDataset(50, 23))
	if err != nil {
		t.Fatal(err)
	}

	if _, err := DetectBatch(nil, CellBased, 5, 4); !errors.Is(err, ErrEmptyDataset) {
		t.Errorf("nil batch: err = %v, want ErrEmptyDataset", err)
	}
	if _, err := DetectBatch(&Batch{}, CellBased, 5, 4); !errors.Is(err, ErrEmptyDataset) {
		t.Errorf("empty batch: err = %v, want ErrEmptyDataset", err)
	}
	if _, err := DetectBatch(good, CellBased, -1, 4); !errors.Is(err, ErrBadParams) {
		t.Errorf("bad R: err = %v, want ErrBadParams", err)
	}
	if _, err := DetectBatch(good, CellBased, 5, 0); !errors.Is(err, ErrBadParams) {
		t.Errorf("bad K: err = %v, want ErrBadParams", err)
	}

	ragged := &Batch{Dim: 2, IDs: []uint64{1, 2}, Coords: []float64{1, 2, 3}}
	if _, err := DetectBatch(ragged, CellBased, 5, 4); !errors.Is(err, ErrBadParams) {
		t.Errorf("ragged coords: err = %v, want ErrBadParams", err)
	}

	dup := &Batch{Dim: 2, IDs: []uint64{1, 2, 1}, Coords: make([]float64, 6)}
	_, err = DetectBatch(dup, CellBased, 5, 4)
	if !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("dup IDs: err = %v, want ErrDuplicateID", err)
	}
	var de *DuplicateIDError
	if !errors.As(err, &de) || de.ID != 1 {
		t.Errorf("dup IDs: err = %#v, want DuplicateIDError{ID:1}", err)
	}
}

// TestDetectCentralizedSharedValidation pins satellite 1: the centralized
// wrapper rejects inputs through the same shared Config/validatePoints
// path as every other entry point, with stable error identities.
func TestDetectCentralizedSharedValidation(t *testing.T) {
	pts := testDataset(50, 29)
	if _, err := DetectCentralized(pts, CellBased, 0, 4); !errors.Is(err, ErrBadParams) {
		t.Errorf("bad R: err = %v, want ErrBadParams", err)
	}
	if _, err := DetectCentralized(pts, CellBased, 5, -2); !errors.Is(err, ErrBadParams) {
		t.Errorf("bad K: err = %v, want ErrBadParams", err)
	}
	if _, err := DetectCentralized(nil, CellBased, 5, 4); !errors.Is(err, ErrEmptyDataset) {
		t.Errorf("empty: err = %v, want ErrEmptyDataset", err)
	}
	dup := append(testDataset(20, 31), Point{ID: 0, Coords: []float64{1, 1}})
	_, err := DetectCentralized(dup, CellBased, 5, 4)
	if !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("dup: err = %v, want ErrDuplicateID", err)
	}
	var de *DuplicateIDError
	if !errors.As(err, &de) || de.ID != 0 {
		t.Errorf("dup: err = %#v, want DuplicateIDError{ID:0}", err)
	}
}

func TestBatchResultErr(t *testing.T) {
	res := &BatchResult{Errs: []error{nil, nil, nil}}
	if err := res.Err(); err != nil {
		t.Fatalf("all-nil Err() = %v, want nil", err)
	}
	if !res.Ok(1) {
		t.Error("Ok(1) = false for nil slot")
	}
	res = &BatchResult{Errs: []error{nil, &DuplicateIDError{ID: 7}, ErrClosed}}
	err := res.Err()
	if err == nil {
		t.Fatal("Err() = nil with failed slots")
	}
	if !errors.Is(err, ErrDuplicateID) || !errors.Is(err, ErrClosed) {
		t.Errorf("joined Err() = %v; want it to match both ErrDuplicateID and ErrClosed", err)
	}
	var de *DuplicateIDError
	if !errors.As(err, &de) || de.ID != 7 {
		t.Errorf("joined Err() = %#v; errors.As should recover DuplicateIDError{ID:7}", err)
	}
	if res.Ok(1) || !res.Ok(0) {
		t.Error("Ok slots disagree with Errs")
	}
}

// TestStreamDetectorBatchesMatchSingles checks the public batch methods
// against their one-point counterparts: same verdicts and scores, same
// per-item error identities, for an interleaving of good and bad items.
func TestStreamDetectorBatchesMatchSingles(t *testing.T) {
	mk := func() *StreamDetector {
		d, err := NewStreamDetector(StreamConfig{R: 5, K: 3, Dim: 2, WindowCapacity: 128})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	pts := testDataset(80, 37)
	pts = append(pts, Point{ID: 0, Coords: []float64{9, 9}})        // duplicate ID
	pts = append(pts, Point{ID: 91000, Coords: []float64{1, 2, 3}}) // wrong dim

	ref, batch := mk(), mk()
	now := time.Unix(1700000000, 0)

	var wantV []StreamVerdict
	var wantE []error
	for _, p := range pts {
		v, err := ref.ProcessAt(p, now)
		wantV = append(wantV, v)
		wantE = append(wantE, err)
	}
	res := batch.ProcessBatchAt(pts, now)
	if !reflect.DeepEqual(res.Verdicts, wantV) {
		t.Error("ProcessBatchAt verdicts diverge from per-point ProcessAt")
	}
	for i := range wantE {
		if (res.Errs[i] == nil) != (wantE[i] == nil) {
			t.Fatalf("slot %d: batch err %v, single err %v", i, res.Errs[i], wantE[i])
		}
		if wantE[i] != nil && res.Errs[i].Error() != wantE[i].Error() {
			t.Errorf("slot %d: batch err %q, single err %q", i, res.Errs[i], wantE[i])
		}
	}
	if !errors.Is(res.Err(), ErrDuplicateID) || !errors.Is(res.Err(), ErrDimMismatch) {
		t.Errorf("joined Err() = %v; want ErrDuplicateID and ErrDimMismatch", res.Err())
	}

	queries := append([]Point{}, pts[:40]...)
	queries = append(queries, Point{ID: 92000, Coords: []float64{1}}) // wrong dim
	sres := batch.ScoreBatch(queries)
	for i, q := range queries {
		s, err := ref.Score(q)
		if (sres.Errs[i] == nil) != (err == nil) {
			t.Fatalf("score slot %d: batch err %v, single err %v", i, sres.Errs[i], err)
		}
		if err == nil && !reflect.DeepEqual(sres.Scores[i], s) {
			t.Errorf("score slot %d: batch %v, single %v", i, sres.Scores[i], s)
		}
	}

	if err := batch.Close(); err != nil {
		t.Fatal(err)
	}
	closed := batch.ProcessBatch(pts[:3])
	for i := range closed.Errs {
		if !errors.Is(closed.Errs[i], ErrClosed) {
			t.Fatalf("closed slot %d: err = %v, want ErrClosed", i, closed.Errs[i])
		}
	}
}

func TestBatchTooLargeReexport(t *testing.T) {
	err := error(&BatchTooLargeError{Limit: 10})
	if !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("BatchTooLargeError does not match ErrBatchTooLarge: %v", err)
	}
}
