package replica

import (
	"encoding/json"

	"dod/internal/codec"
	"dod/internal/stream"
)

// Replication endpoints served by a standby shard (apply, snapshot) and by
// every shard (status, digest). The digest path lives here rather than in
// the router wire tables because it belongs to the replication layer: a
// deterministic hash of window contents for anti-entropy checks.
const (
	PathApply    = "/v1/replica/apply"
	PathSnapshot = "/v1/replica/snapshot"
	PathStatus   = "/v1/replica/status"
	PathDigest   = "/v1/shard/digest"
)

// Replication frame kinds (bodies are sealed with codec.FrameSum).
const (
	frameHeader byte = 1 // JSON control header
	frameOp     byte = 2 // one encoded op
	frameEntry  byte = 3 // one snapshot window entry
)

// ApplyHeader is the control header of an op-shipment body.
type ApplyHeader struct {
	// From is the primary shard's name; the standby adopts it as its own
	// identity for ownership decisions (a standby IS its primary, one
	// promotion away).
	From string `json:"from"`
	// Count is the number of op frames in the body.
	Count int `json:"count"`
	// Head is the primary's log head at send time, so the standby can
	// tell "applied everything shipped so far" from "caught up".
	Head uint64 `json:"head"`
}

// ApplyResponse acknowledges an op shipment.
type ApplyResponse struct {
	// Applied is the standby's highest applied sequence number — the
	// primary trims its log below it.
	Applied uint64 `json:"applied"`
	// Synced reports the standby has applied everything up to the
	// shipped head (readiness for promotion).
	Synced bool `json:"synced"`
	// NeedSnapshot asks the primary to bootstrap: the shipment started
	// past the standby's next expected seq (fresh standby, or one that
	// fell behind a trim).
	NeedSnapshot bool   `json:"need_snapshot,omitempty"`
	Error        string `json:"error,omitempty"`
}

// EncodeApply builds a sealed op-shipment body from pre-encoded ops.
func EncodeApply(hdr ApplyHeader, ops [][]byte) []byte {
	payload, err := json.Marshal(hdr)
	if err != nil {
		panic("replica: marshal apply header: " + err.Error())
	}
	body := codec.AppendFrame(nil, frameHeader, payload)
	for _, op := range ops {
		body = codec.AppendFrame(body, frameOp, op)
	}
	return codec.AppendSumFrame(body)
}

// DecodeApply parses a sealed op-shipment body.
func DecodeApply(body []byte) (ApplyHeader, []*Op, error) {
	var hdr ApplyHeader
	data, err := codec.StripSumFrame(body)
	if err != nil {
		return hdr, nil, err
	}
	var ops []*Op
	sawHeader := false
	off := 0
	for off < len(data) {
		kind, payload, n, err := codec.DecodeFrame(data[off:])
		if err != nil {
			return hdr, nil, err
		}
		off += n
		switch kind {
		case frameHeader:
			if err := json.Unmarshal(payload, &hdr); err != nil {
				return hdr, nil, codec.WireErrorf("replica: bad apply header: %v", err)
			}
			sawHeader = true
		case frameOp:
			op, err := DecodeOp(payload)
			if err != nil {
				return hdr, nil, err
			}
			ops = append(ops, op)
		default:
			return hdr, nil, codec.WireErrorf("replica: unknown apply frame kind %d", kind)
		}
	}
	if !sawHeader {
		return hdr, nil, codec.WireErrorf("replica: apply body lacks header frame")
	}
	if len(ops) != hdr.Count {
		return hdr, nil, codec.WireErrorf("replica: apply op count %d != header %d", len(ops), hdr.Count)
	}
	return hdr, ops, nil
}

// Snapshot is the bootstrap payload: the primary's full window slice at
// log position Seq, plus the topology the standby should hold.
type Snapshot struct {
	From     string
	Seq      uint64
	Topology []byte // raw topology JSON; nil before the first push
	Entries  []stream.ExportedEntry
}

// snapshotHeader is the JSON header frame of a snapshot body.
type snapshotHeader struct {
	From     string          `json:"from"`
	Seq      uint64          `json:"seq"`
	Count    int             `json:"count"`
	Topology json.RawMessage `json:"topology,omitempty"`
}

// SnapshotResponse acknowledges a bootstrap snapshot.
type SnapshotResponse struct {
	Applied uint64 `json:"applied"`
	Error   string `json:"error,omitempty"`
}

// EncodeSnapshot builds a sealed bootstrap body.
func EncodeSnapshot(s *Snapshot) []byte {
	payload, err := json.Marshal(snapshotHeader{
		From: s.From, Seq: s.Seq, Count: len(s.Entries), Topology: s.Topology,
	})
	if err != nil {
		panic("replica: marshal snapshot header: " + err.Error())
	}
	body := codec.AppendFrame(nil, frameHeader, payload)
	for _, e := range s.Entries {
		body = codec.AppendFrame(body, frameEntry, appendEntry(nil, e))
	}
	return codec.AppendSumFrame(body)
}

// DecodeSnapshot parses a sealed bootstrap body.
func DecodeSnapshot(body []byte) (*Snapshot, error) {
	data, err := codec.StripSumFrame(body)
	if err != nil {
		return nil, err
	}
	var hdr snapshotHeader
	sawHeader := false
	s := &Snapshot{}
	off := 0
	for off < len(data) {
		kind, payload, n, err := codec.DecodeFrame(data[off:])
		if err != nil {
			return nil, err
		}
		off += n
		switch kind {
		case frameHeader:
			if err := json.Unmarshal(payload, &hdr); err != nil {
				return nil, codec.WireErrorf("replica: bad snapshot header: %v", err)
			}
			sawHeader = true
		case frameEntry:
			e, _, err := decodeEntry(payload)
			if err != nil {
				return nil, err
			}
			s.Entries = append(s.Entries, e)
		default:
			return nil, codec.WireErrorf("replica: unknown snapshot frame kind %d", kind)
		}
	}
	if !sawHeader {
		return nil, codec.WireErrorf("replica: snapshot body lacks header frame")
	}
	if len(s.Entries) != hdr.Count {
		return nil, codec.WireErrorf("replica: snapshot entry count %d != header %d", len(s.Entries), hdr.Count)
	}
	s.From, s.Seq = hdr.From, hdr.Seq
	s.Topology = append([]byte(nil), hdr.Topology...)
	return s, nil
}

// StatusResponse answers GET /v1/replica/status on either role.
type StatusResponse struct {
	Role string `json:"role"` // "primary", "standby" or "none"
	// Primary side: log head and the standby's acked position.
	Head  uint64 `json:"head,omitempty"`
	Acked uint64 `json:"acked,omitempty"`
	// Standby side: applied position, catch-up and promotion state.
	Applied  uint64 `json:"applied"`
	Synced   bool   `json:"synced"`
	Promoted bool   `json:"promoted,omitempty"`
}

// DigestResponse answers GET /v1/shard/digest: a deterministic FNV-64a
// hash over the window contents in canonical (global-sequence) order. Two
// windows with equal digests hold bit-identical verdict state; Seq anchors
// the digest to a log position (primary: head; standby: applied).
type DigestResponse struct {
	Shard  string `json:"shard"`
	Digest string `json:"digest"`
	Seq    uint64 `json:"seq"`
	Points int    `json:"points"`
}
