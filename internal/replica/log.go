package replica

import (
	"sync"

	"dod/internal/obs"
)

// Log is the primary-side op log: an in-memory, sequence-numbered tail of
// encoded ops between the standby's acked position and the primary's head.
// Append assigns the next sequence number and encodes the op immediately
// (callers record under the window mutex, so log order IS mutation order);
// Ack trims everything the standby has durably applied. The log therefore
// holds only the unshipped window — its size is the replication lag.
type Log struct {
	mu    sync.Mutex
	ops   [][]byte // encoded; ops[i] has seq floor+1+i
	floor uint64   // highest trimmed seq (== acked)
	head  uint64   // highest appended seq
	acked uint64   // highest seq the standby has applied

	notify chan struct{}
}

// NewLog builds an empty log. A non-nil registry gets the replication-lag
// gauge (head minus acked — the ops a failover at this instant would lose).
func NewLog(reg *obs.Registry) *Log {
	l := &Log{notify: make(chan struct{}, 1)}
	if reg != nil {
		reg.GaugeFunc("dod_replica_lag_seq", "ops recorded but not yet acked by the standby",
			func() float64 {
				l.mu.Lock()
				defer l.mu.Unlock()
				return float64(l.head - l.acked)
			})
	}
	return l
}

// Append assigns op the next sequence number, stores its encoding, and
// returns the assigned seq. The shipper is nudged without blocking.
func (l *Log) Append(op *Op) uint64 {
	l.mu.Lock()
	l.head++
	op.Seq = l.head
	l.ops = append(l.ops, encodeOp(nil, op))
	seq := l.head
	l.mu.Unlock()
	select {
	case l.notify <- struct{}{}:
	default:
	}
	return seq
}

// Window returns up to max encoded ops starting at seq from. ok is false
// when from has already been trimmed (the caller must fall back to a
// snapshot). from past the head returns an empty, ok window.
func (l *Log) Window(from uint64, max int) (ops [][]byte, head uint64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if from <= l.floor {
		return nil, l.head, false
	}
	if from > l.head {
		return nil, l.head, true
	}
	lo := int(from - l.floor - 1)
	hi := len(l.ops)
	if max > 0 && hi-lo > max {
		hi = lo + max
	}
	return l.ops[lo:hi], l.head, true
}

// Ack records that the standby has applied every op up to seq, trimming
// the log below it. Acks never regress.
func (l *Log) Ack(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq <= l.acked {
		return
	}
	if seq > l.head {
		seq = l.head
	}
	l.acked = seq
	drop := int(seq - l.floor)
	if drop > len(l.ops) {
		drop = len(l.ops)
	}
	l.ops = append([][]byte(nil), l.ops[drop:]...)
	l.floor = seq
}

// Head returns the highest appended sequence number.
func (l *Log) Head() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.head
}

// Acked returns the highest standby-applied sequence number.
func (l *Log) Acked() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.acked
}

// Notify returns the append-nudge channel the shipper selects on.
func (l *Log) Notify() <-chan struct{} { return l.notify }
