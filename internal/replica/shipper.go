package replica

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"dod/internal/obs"
)

// DefaultShipInterval is the shipper's poll period — the upper bound on
// how long an op waits before shipping when the notify nudge is missed.
const DefaultShipInterval = 20 * time.Millisecond

// DefaultMaxOpsPerShipment bounds one apply body.
const DefaultMaxOpsPerShipment = 256

// ShipperConfig parameterizes a Shipper.
type ShipperConfig struct {
	// From is the primary shard's name (travels in every apply header).
	From string
	// Standby is the standby's base URL.
	Standby string
	// Log is the op log to tail.
	Log *Log
	// Client issues the replication HTTP calls — its transport is the
	// fault-injection seam for the replication hop.
	Client *http.Client
	// Interval is the ship poll period; default DefaultShipInterval.
	Interval time.Duration
	// MaxOps bounds ops per apply body; default DefaultMaxOpsPerShipment.
	MaxOps int
	// Snapshot captures the primary's full window state, consistent with
	// a log position — served when the standby needs a bootstrap.
	Snapshot func() (*Snapshot, error)
	// Obs is the metrics registry (may be nil).
	Obs *obs.Registry
}

// Shipper asynchronously tails a Log into a standby: batched op shipments
// on every append (nudged, with a ticker as backstop), automatic snapshot
// bootstrap when the standby is fresh or has fallen behind a trim, and
// acked-position bookkeeping so the log stays trimmed to the lag. Shipping
// is off the mutation path entirely — a dead or slow standby costs the
// primary nothing but log memory, which is what "warm standby" means: the
// window between head and acked is exactly the state a failover at this
// instant would lose.
type Shipper struct {
	cfg ShipperConfig

	shipped    *obs.Counter
	snapshots  *obs.Counter
	shipErrors *obs.Counter

	mu           sync.Mutex
	remoteSynced bool
	halted       bool // standby reported itself promoted: this log is history

	stop chan struct{}
	done chan struct{}
}

// NewShipper builds a shipper; call Start to begin tailing.
func NewShipper(cfg ShipperConfig) (*Shipper, error) {
	if cfg.Standby == "" || cfg.Log == nil || cfg.Snapshot == nil {
		return nil, fmt.Errorf("replica: shipper needs a standby URL, a log and a snapshot source")
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultShipInterval
	}
	if cfg.MaxOps <= 0 {
		cfg.MaxOps = DefaultMaxOpsPerShipment
	}
	s := &Shipper{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	if reg := cfg.Obs; reg != nil {
		s.shipped = reg.Counter("dod_replica_ops_total", "replication log ops", obs.L("dir", "shipped"))
		s.snapshots = reg.Counter("dod_replica_snapshots_total", "bootstrap snapshots shipped to the standby")
		s.shipErrors = reg.Counter("dod_replica_ship_errors_total", "failed replication shipments (retried next tick)")
	}
	return s, nil
}

// Start launches the ship loop.
func (s *Shipper) Start() { go s.loop() }

// Close stops the ship loop and waits for it to exit.
func (s *Shipper) Close() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}

// Synced reports whether the standby had applied everything up to the
// primary's head at the last successful exchange.
func (s *Shipper) Synced() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.remoteSynced
}

func (s *Shipper) loop() {
	defer close(s.done)
	t := time.NewTicker(s.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-s.cfg.Log.Notify():
		case <-t.C:
		}
		// Drain as long as progress is being made, so a burst of appends
		// ships in consecutive bounded bodies rather than one per tick.
		for s.tick() {
			select {
			case <-s.stop:
				return
			default:
			}
		}
	}
}

// tick performs one shipment exchange; it reports whether another round
// should run immediately (progress was made and backlog remains).
func (s *Shipper) tick() bool {
	s.mu.Lock()
	halted, synced := s.halted, s.remoteSynced
	s.mu.Unlock()
	if halted {
		return false
	}
	acked := s.cfg.Log.Acked()
	ops, head, ok := s.cfg.Log.Window(acked+1, s.cfg.MaxOps)
	if !ok {
		// The window below acked+1 is gone — only reachable if acks
		// regressed externally; resync from a snapshot.
		s.sendSnapshot()
		return false
	}
	if len(ops) == 0 && synced {
		return false // nothing new and the standby is caught up
	}
	body := EncodeApply(ApplyHeader{From: s.cfg.From, Count: len(ops), Head: head}, ops)
	var resp ApplyResponse
	code, err := s.post(PathApply, body, &resp)
	if err != nil {
		s.countError()
		return false
	}
	if code == "promoted" {
		s.halt()
		return false
	}
	if code != "" || resp.Error != "" {
		s.countError()
		return false
	}
	if resp.NeedSnapshot {
		s.sendSnapshot()
		return true
	}
	if resp.Applied > acked {
		if s.shipped != nil {
			s.shipped.Add(int64(resp.Applied - acked))
		}
		s.cfg.Log.Ack(resp.Applied)
	}
	s.mu.Lock()
	s.remoteSynced = resp.Synced
	s.mu.Unlock()
	return s.cfg.Log.Head() > s.cfg.Log.Acked()
}

// sendSnapshot bootstraps the standby from a full window capture.
func (s *Shipper) sendSnapshot() {
	snap, err := s.cfg.Snapshot()
	if err != nil {
		s.countError()
		return
	}
	snap.From = s.cfg.From
	var resp SnapshotResponse
	code, err := s.post(PathSnapshot, EncodeSnapshot(snap), &resp)
	if err != nil {
		s.countError()
		return
	}
	if code == "promoted" {
		s.halt()
		return
	}
	if code != "" || resp.Error != "" {
		s.countError()
		return
	}
	if s.snapshots != nil {
		s.snapshots.Inc()
	}
	s.cfg.Log.Ack(resp.Applied)
	s.mu.Lock()
	s.remoteSynced = s.cfg.Log.Head() == resp.Applied
	s.mu.Unlock()
}

// post sends one replication body. A non-2xx status returns the structured
// error code from the body (e.g. "promoted") with a nil error; transport
// failures return err.
func (s *Shipper) post(path string, body []byte, out any) (errCode string, err error) {
	req, err := http.NewRequest(http.MethodPost, s.cfg.Standby+path, bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := s.cfg.Client.Do(req)
	if err != nil {
		return "", err
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	resp.Body.Close()
	if err != nil {
		return "", err
	}
	if resp.StatusCode/100 != 2 {
		var eb struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(raw, &eb)
		if eb.Error == "" {
			eb.Error = fmt.Sprintf("status_%d", resp.StatusCode)
		}
		return eb.Error, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return "", fmt.Errorf("replica: bad %s response: %w", path, err)
	}
	return "", nil
}

func (s *Shipper) halt() {
	s.mu.Lock()
	s.halted = true
	s.mu.Unlock()
}

func (s *Shipper) countError() {
	if s.shipErrors != nil {
		s.shipErrors.Inc()
	}
}
