package replica

import (
	"dod/internal/geom"
	"dod/internal/obs"
	"dod/internal/stream"
)

// Recorder turns window mutations into log appends. It implements
// stream.OpRecorder (the window calls it with the window mutex held, so
// append order is mutation order) plus the two serving-layer record points
// the window cannot see: topology installs and idempotency-cache entries.
type Recorder struct {
	log      *Log
	recorded *obs.Counter
}

// NewRecorder builds a recorder appending to log. A non-nil registry gets
// the recorded-op counter.
func NewRecorder(log *Log, reg *obs.Registry) *Recorder {
	r := &Recorder{log: log}
	if reg != nil {
		r.recorded = reg.Counter("dod_replica_ops_total", "replication log ops", obs.L("dir", "recorded"))
	}
	return r
}

func (r *Recorder) append(op *Op) {
	r.log.Append(op)
	if r.recorded != nil {
		r.recorded.Inc()
	}
}

// RecordAdmit logs one successful admission.
func (r *Recorder) RecordAdmit(p geom.Point, seq uint64, arrivedNs int64, foreign, crossLater int) {
	r.append(&Op{Kind: KindAdmit, Point: p, PointSeq: seq, ArrivedNs: arrivedNs,
		Foreign: foreign, CrossLater: crossLater})
}

// RecordEvict logs one successful eviction.
func (r *Recorder) RecordEvict(id uint64) {
	r.append(&Op{Kind: KindEvict, ID: id})
}

// RecordSupport logs one applied neighbor-count delta.
func (r *Recorder) RecordSupport(p geom.Point, cells [][]int64, delta int) {
	r.append(&Op{Kind: KindSupport, Point: p, Cells: cells, Delta: delta})
}

// RecordImport logs one successful entry import.
func (r *Recorder) RecordImport(entries []stream.ExportedEntry) {
	r.append(&Op{Kind: KindImport, Entries: entries})
}

// RecordTopology logs one installed topology epoch (raw JSON).
func (r *Recorder) RecordTopology(raw []byte) {
	r.append(&Op{Kind: KindTopology, Raw: raw})
}

// RecordDedupe logs one idempotency-cache entry: the request ID and the
// response the primary recorded for it.
func (r *Recorder) RecordDedupe(reqID string, status int, resp []byte) {
	r.append(&Op{Kind: KindDedupe, ReqID: reqID, Status: status, Raw: resp})
}
