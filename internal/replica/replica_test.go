package replica

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"dod/internal/errs"
	"dod/internal/geom"
	"dod/internal/stream"
)

// sampleOps covers every op kind, including empty and multi-element
// collection fields and negative varint-encoded values.
func sampleOps() []*Op {
	return []*Op{
		{Kind: KindAdmit, Seq: 1,
			Point:    geom.Point{ID: 7, Coords: []float64{1.5, -2.25}},
			PointSeq: 42, ArrivedNs: -1234567890, Foreign: 3, CrossLater: 2},
		{Kind: KindEvict, Seq: 2, ID: 99},
		{Kind: KindSupport, Seq: 3, Delta: -1,
			Point: geom.Point{ID: 8, Coords: []float64{0, 0.5}},
			Cells: [][]int64{{-1, 2}, {3, -4}, {0, 0}}},
		{Kind: KindSupport, Seq: 4, Delta: 1,
			Point: geom.Point{ID: 9, Coords: []float64{9, 9}},
			Cells: [][]int64{}},
		{Kind: KindImport, Seq: 5, Entries: []stream.ExportedEntry{
			{Point: geom.Point{ID: 1, Coords: []float64{1, 1}}, Seq: 10,
				Arrived: time.Unix(0, 111), Count: 4, Outlier: false},
			{Point: geom.Point{ID: 2, Coords: []float64{2, 2}}, Seq: 11,
				Arrived: time.Unix(0, -5), Count: 0, Outlier: true},
		}},
		{Kind: KindTopology, Seq: 6, Raw: []byte(`{"epoch":3,"shards":[{"name":"s0"}]}`)},
		{Kind: KindDedupe, Seq: 7, ReqID: "req-12|sup|s1|1", Status: 200,
			Raw: []byte(`{"count":3}` + "\n")},
	}
}

// normalizeOp maps nil and empty slices to a canonical form so DeepEqual
// compares semantics, not allocation accidents.
func normalizeOp(op *Op) *Op {
	c := *op
	if len(c.Cells) == 0 {
		c.Cells = nil
	}
	if len(c.Entries) == 0 {
		c.Entries = nil
	}
	if len(c.Raw) == 0 {
		c.Raw = nil
	}
	return &c
}

func TestOpCodecRoundTrip(t *testing.T) {
	for _, op := range sampleOps() {
		buf := encodeOp(nil, op)
		got, err := DecodeOp(buf)
		if err != nil {
			t.Fatalf("kind %d: decode: %v", op.Kind, err)
		}
		if !reflect.DeepEqual(normalizeOp(got), normalizeOp(op)) {
			t.Fatalf("kind %d: round trip mismatch\ngot:  %+v\nwant: %+v", op.Kind, got, op)
		}
	}
}

func TestDecodeOpRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":          nil,
		"unknown kind":   {0xEE, 0x01},
		"truncated seq":  {byte(KindEvict)},
		"truncated body": {byte(KindAdmit), 0x01},
	}
	for name, buf := range cases {
		if _, err := DecodeOp(buf); err == nil {
			t.Errorf("%s: decode accepted malformed op", name)
		}
	}
	// A dedupe op whose claimed request-id length exceeds the buffer must
	// not panic or over-read.
	bad := []byte{byte(KindDedupe), 0x01, 200, 255, 1}
	if _, err := DecodeOp(bad); err == nil {
		t.Error("oversized dedupe id length accepted")
	}
}

func TestApplyWireRoundTrip(t *testing.T) {
	var encoded [][]byte
	for _, op := range sampleOps() {
		encoded = append(encoded, encodeOp(nil, op))
	}
	hdr := ApplyHeader{From: "s1", Count: len(encoded), Head: 42}
	body := EncodeApply(hdr, encoded)

	gotHdr, ops, err := DecodeApply(body)
	if err != nil {
		t.Fatal(err)
	}
	if gotHdr != hdr {
		t.Fatalf("header = %+v, want %+v", gotHdr, hdr)
	}
	if len(ops) != len(encoded) {
		t.Fatalf("decoded %d ops, want %d", len(ops), len(encoded))
	}
	for i, want := range sampleOps() {
		if !reflect.DeepEqual(normalizeOp(ops[i]), normalizeOp(want)) {
			t.Fatalf("op %d mismatch\ngot:  %+v\nwant: %+v", i, ops[i], want)
		}
	}

	// An empty shipment (pure head announcement) round-trips too.
	if _, ops, err := DecodeApply(EncodeApply(ApplyHeader{From: "s1", Head: 9}, nil)); err != nil || len(ops) != 0 {
		t.Fatalf("empty shipment: ops=%d err=%v", len(ops), err)
	}
}

func TestApplyWireRejectsCorruption(t *testing.T) {
	body := EncodeApply(ApplyHeader{From: "s1", Count: 1, Head: 1},
		[][]byte{encodeOp(nil, &Op{Kind: KindEvict, Seq: 1, ID: 5})})
	for i := range body {
		mangled := append([]byte(nil), body...)
		mangled[i] ^= 0x40
		if _, _, err := DecodeApply(mangled); err == nil {
			t.Fatalf("byte %d flipped: corruption not detected", i)
		} else if !errors.Is(err, errs.ErrWireFormat) {
			t.Fatalf("byte %d flipped: error %v is not a wire error", i, err)
		}
	}
	// A count mismatch between header and frames is rejected even when the
	// checksum is intact (a buggy sender, not a corrupt wire).
	lying := EncodeApply(ApplyHeader{From: "s1", Count: 3, Head: 1},
		[][]byte{encodeOp(nil, &Op{Kind: KindEvict, Seq: 1, ID: 5})})
	if _, _, err := DecodeApply(lying); err == nil {
		t.Fatal("count mismatch accepted")
	}
}

func TestSnapshotWireRoundTrip(t *testing.T) {
	snap := &Snapshot{
		From:     "s0",
		Seq:      17,
		Topology: []byte(`{"epoch":2,"dim":2,"r":1.2,"k":3,"shards":[{"name":"s0","url":"http://x"}]}`),
		Entries: []stream.ExportedEntry{
			{Point: geom.Point{ID: 3, Coords: []float64{1, 2}}, Seq: 5,
				Arrived: time.Unix(0, 777), Count: 2, Outlier: true},
			{Point: geom.Point{ID: 4, Coords: []float64{-1, -2}}, Seq: 6,
				Arrived: time.Unix(0, 778), Count: 9, Outlier: false},
		},
	}
	body := EncodeSnapshot(snap)
	got, err := DecodeSnapshot(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.From != snap.From || got.Seq != snap.Seq {
		t.Fatalf("header: got (%s,%d), want (%s,%d)", got.From, got.Seq, snap.From, snap.Seq)
	}
	if !bytes.Equal(got.Topology, snap.Topology) {
		t.Fatalf("topology: got %s, want %s", got.Topology, snap.Topology)
	}
	if !reflect.DeepEqual(got.Entries, snap.Entries) {
		t.Fatalf("entries mismatch\ngot:  %+v\nwant: %+v", got.Entries, snap.Entries)
	}

	// Empty snapshot (fresh primary, no topology yet).
	got, err = DecodeSnapshot(EncodeSnapshot(&Snapshot{From: "s0", Seq: 0}))
	if err != nil || len(got.Entries) != 0 || len(got.Topology) != 0 {
		t.Fatalf("empty snapshot: %+v err=%v", got, err)
	}

	// Corruption is a typed decode failure, never silent divergence.
	mangled := append([]byte(nil), body...)
	mangled[len(mangled)/2] ^= 0x01
	if _, err := DecodeSnapshot(mangled); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}

	// The topology survives a JSON round trip of the header frame.
	var topoCheck map[string]any
	if err := json.Unmarshal(snap.Topology, &topoCheck); err != nil {
		t.Fatalf("sample topology is not valid JSON: %v", err)
	}
}

func TestLogAppendWindowAck(t *testing.T) {
	l := NewLog(nil)
	for i := 1; i <= 5; i++ {
		op := &Op{Kind: KindEvict, ID: uint64(i)}
		if seq := l.Append(op); seq != uint64(i) || op.Seq != uint64(i) {
			t.Fatalf("append %d: assigned seq %d (op.Seq %d)", i, seq, op.Seq)
		}
	}
	if l.Head() != 5 || l.Acked() != 0 {
		t.Fatalf("head=%d acked=%d, want 5, 0", l.Head(), l.Acked())
	}

	// Full window from the beginning.
	ops, head, ok := l.Window(1, 0)
	if !ok || head != 5 || len(ops) != 5 {
		t.Fatalf("Window(1): ok=%v head=%d len=%d", ok, head, len(ops))
	}
	if got, err := DecodeOp(ops[2]); err != nil || got.Seq != 3 || got.ID != 3 {
		t.Fatalf("ops[2] = %+v err=%v, want seq 3 id 3", got, err)
	}

	// max bounds the slice.
	if ops, _, _ := l.Window(2, 2); len(ops) != 2 {
		t.Fatalf("Window(2, max 2): len=%d", len(ops))
	}

	// Past the head: empty but ok (caught up).
	if ops, _, ok := l.Window(6, 0); !ok || len(ops) != 0 {
		t.Fatalf("Window(6): ok=%v len=%d, want true, 0", ok, len(ops))
	}

	// Ack trims; a window below the floor reports !ok (snapshot needed).
	l.Ack(3)
	if l.Acked() != 3 {
		t.Fatalf("acked=%d, want 3", l.Acked())
	}
	if _, _, ok := l.Window(2, 0); ok {
		t.Fatal("Window(2) after Ack(3) should report trimmed")
	}
	if ops, _, ok := l.Window(4, 0); !ok || len(ops) != 2 {
		t.Fatalf("Window(4) after trim: ok=%v len=%d, want true, 2", ok, len(ops))
	}

	// Acks never regress and clamp to the head.
	l.Ack(1)
	if l.Acked() != 3 {
		t.Fatalf("regressed ack took effect: acked=%d", l.Acked())
	}
	l.Ack(100)
	if l.Acked() != 5 {
		t.Fatalf("over-head ack: acked=%d, want 5 (clamped)", l.Acked())
	}
	if ops, _, ok := l.Window(6, 0); !ok || len(ops) != 0 {
		t.Fatalf("fully trimmed log: ok=%v len=%d", ok, len(ops))
	}
}

func TestLogNotify(t *testing.T) {
	l := NewLog(nil)
	select {
	case <-l.Notify():
		t.Fatal("fresh log has a pending nudge")
	default:
	}
	l.Append(&Op{Kind: KindEvict, ID: 1})
	select {
	case <-l.Notify():
	default:
		t.Fatal("append did not nudge")
	}
	// The nudge channel never blocks appends.
	l.Append(&Op{Kind: KindEvict, ID: 2})
	l.Append(&Op{Kind: KindEvict, ID: 3})
	if l.Head() != 3 {
		t.Fatalf("head=%d, want 3", l.Head())
	}
}
