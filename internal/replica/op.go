// Package replica implements warm-standby replication for one shard's
// slice of the sliding window (stream.ShardWindow). The primary appends
// every successful window mutation — admission, eviction, boundary support
// delta, entry import, plus the serving-layer context a faithful stand-in
// needs (topology epochs, idempotency-cache entries) — to a per-shard
// sequence-numbered op log (Log), and an asynchronous Shipper replays the
// log in order against the standby's /v1/replica endpoints. Replayed in
// log order, the ops rebuild the primary's window bit for bit: the window
// exposes a deterministic digest at any applied sequence number, which is
// the anti-entropy check the failover tests and the router's promotion
// transaction both lean on.
//
// Bodies on the replication hop use the same discipline as the shard wire
// protocol: internal/codec frames sealed with a FrameSum integrity frame,
// so transport corruption is a typed decode failure the shipper retries,
// never silently divergent standby state.
package replica

import (
	"encoding/binary"
	"time"

	"dod/internal/codec"
	"dod/internal/geom"
	"dod/internal/stream"
)

// Kind tags one replicated window mutation.
type Kind byte

const (
	// KindAdmit is one point admission with its settled foreign neighbor
	// count — replayed as a one-item AdmitBatch, which lands the identical
	// counts and verdict flips because counts only grow within a run.
	KindAdmit Kind = iota + 1
	// KindEvict expires one resident by ID. The primary already applied
	// the cross-shard -1 deltas (each peer records its own KindSupport),
	// so replay runs without a support fan-out.
	KindEvict
	// KindSupport applies a neighbor-count delta to residents in a cell
	// set — a peer-served boundary delta, or the local half of a mutation
	// whose primary-side operation failed midway (the delta is already in
	// the primary's window, so the standby must mirror it).
	KindSupport
	// KindImport adopts drained entries with their live bookkeeping.
	KindImport
	// KindTopology installs an ownership epoch (raw topology JSON), so a
	// pre-promotion standby tracks the cluster view without the router
	// ever addressing it directly.
	KindTopology
	// KindDedupe seeds one idempotency-cache entry (request ID → recorded
	// response), so a router retry that lands on the promoted standby
	// replays the same bytes the dead primary answered.
	KindDedupe
)

// Op is one replicated mutation. Seq is its log position (assigned by
// Log.Append); the remaining fields are kind-specific.
type Op struct {
	Seq  uint64
	Kind Kind

	// KindAdmit; Point is shared with KindSupport.
	Point      geom.Point
	PointSeq   uint64 // router-assigned global sequence number
	ArrivedNs  int64
	Foreign    int
	CrossLater int

	// KindEvict.
	ID uint64

	// KindSupport.
	Cells [][]int64
	Delta int

	// KindImport.
	Entries []stream.ExportedEntry

	// KindTopology (raw topology JSON) and KindDedupe (recorded response).
	Raw []byte

	// KindDedupe.
	ReqID  string
	Status int
}

// encodeOp serializes one op: kind byte, uvarint log seq, then the
// kind-specific payload.
func encodeOp(dst []byte, op *Op) []byte {
	dst = append(dst, byte(op.Kind))
	dst = binary.AppendUvarint(dst, op.Seq)
	switch op.Kind {
	case KindAdmit:
		dst = codec.AppendPoint(dst, op.Point)
		dst = binary.AppendUvarint(dst, op.PointSeq)
		dst = binary.AppendVarint(dst, op.ArrivedNs)
		dst = binary.AppendUvarint(dst, uint64(op.Foreign))
		dst = binary.AppendUvarint(dst, uint64(op.CrossLater))
	case KindEvict:
		dst = binary.AppendUvarint(dst, op.ID)
	case KindSupport:
		dst = binary.AppendVarint(dst, int64(op.Delta))
		dst = codec.AppendPoint(dst, op.Point)
		dst = appendCells(dst, op.Cells)
	case KindImport:
		dst = binary.AppendUvarint(dst, uint64(len(op.Entries)))
		for _, e := range op.Entries {
			dst = appendEntry(dst, e)
		}
	case KindTopology:
		dst = append(dst, op.Raw...)
	case KindDedupe:
		dst = binary.AppendUvarint(dst, uint64(op.Status))
		dst = binary.AppendUvarint(dst, uint64(len(op.ReqID)))
		dst = append(dst, op.ReqID...)
		dst = append(dst, op.Raw...)
	}
	return dst
}

// DecodeOp parses one encoded op. Raw fields are copied, not aliased, so
// the op outlives the wire buffer it came from.
func DecodeOp(buf []byte) (*Op, error) {
	if len(buf) < 1 {
		return nil, codec.WireErrorf("replica: empty op")
	}
	op := &Op{Kind: Kind(buf[0])}
	off := 1
	seq, n := binary.Uvarint(buf[off:])
	if n <= 0 {
		return nil, codec.WireErrorf("replica: truncated op seq")
	}
	op.Seq = seq
	off += n
	switch op.Kind {
	case KindAdmit:
		pt, n, err := codec.DecodePoint(buf[off:])
		if err != nil {
			return nil, err
		}
		op.Point = pt
		off += n
		fields := []struct {
			dst    *uint64
			signed bool
		}{{dst: &op.PointSeq}, {signed: true}, {}, {}}
		for i, f := range fields {
			if f.signed {
				v, n := binary.Varint(buf[off:])
				if n <= 0 {
					return nil, codec.WireErrorf("replica: truncated admit op field %d", i)
				}
				op.ArrivedNs = v
				off += n
				continue
			}
			v, n := binary.Uvarint(buf[off:])
			if n <= 0 {
				return nil, codec.WireErrorf("replica: truncated admit op field %d", i)
			}
			off += n
			switch i {
			case 0:
				op.PointSeq = v
			case 2:
				op.Foreign = int(v)
			case 3:
				op.CrossLater = int(v)
			}
		}
	case KindEvict:
		id, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return nil, codec.WireErrorf("replica: truncated evict op")
		}
		op.ID = id
	case KindSupport:
		delta, n := binary.Varint(buf[off:])
		if n <= 0 {
			return nil, codec.WireErrorf("replica: truncated support delta")
		}
		op.Delta = int(delta)
		off += n
		pt, n, err := codec.DecodePoint(buf[off:])
		if err != nil {
			return nil, err
		}
		op.Point = pt
		off += n
		cells, _, err := decodeCells(buf[off:])
		if err != nil {
			return nil, err
		}
		op.Cells = cells
	case KindImport:
		count, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return nil, codec.WireErrorf("replica: truncated import count")
		}
		off += n
		if count > uint64(len(buf[off:])) {
			return nil, codec.WireErrorf("replica: import count %d exceeds buffer", count)
		}
		op.Entries = make([]stream.ExportedEntry, 0, count)
		for i := uint64(0); i < count; i++ {
			e, n, err := decodeEntry(buf[off:])
			if err != nil {
				return nil, err
			}
			op.Entries = append(op.Entries, e)
			off += n
		}
	case KindTopology:
		op.Raw = append([]byte(nil), buf[off:]...)
	case KindDedupe:
		status, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return nil, codec.WireErrorf("replica: truncated dedupe status")
		}
		op.Status = int(status)
		off += n
		idLen, n := binary.Uvarint(buf[off:])
		if n <= 0 || idLen > uint64(len(buf[off+n:])) {
			return nil, codec.WireErrorf("replica: truncated dedupe request id")
		}
		off += n
		op.ReqID = string(buf[off : off+int(idLen)])
		off += int(idLen)
		op.Raw = append([]byte(nil), buf[off:]...)
	default:
		return nil, codec.WireErrorf("replica: unknown op kind %d", op.Kind)
	}
	return op, nil
}

// appendCells appends a cell list: uvarint dim, uvarint count, then
// count×dim varint coordinates (the shard wire's cell shape).
func appendCells(dst []byte, cells [][]int64) []byte {
	dim := 0
	if len(cells) > 0 {
		dim = len(cells[0])
	}
	dst = binary.AppendUvarint(dst, uint64(dim))
	dst = binary.AppendUvarint(dst, uint64(len(cells)))
	for _, c := range cells {
		for _, v := range c {
			dst = binary.AppendVarint(dst, v)
		}
	}
	return dst
}

func decodeCells(buf []byte) ([][]int64, int, error) {
	dim, n := binary.Uvarint(buf)
	if n <= 0 || dim > 1<<16 {
		return nil, 0, codec.WireErrorf("replica: bad cell list dimension")
	}
	off := n
	count, n := binary.Uvarint(buf[off:])
	if n <= 0 {
		return nil, 0, codec.WireErrorf("replica: truncated cell list")
	}
	off += n
	if count > uint64(len(buf[off:]))+1 {
		return nil, 0, codec.WireErrorf("replica: cell count %d exceeds buffer", count)
	}
	cells := make([][]int64, 0, count)
	for i := uint64(0); i < count; i++ {
		c := make([]int64, dim)
		for d := range c {
			v, n := binary.Varint(buf[off:])
			if n <= 0 {
				return nil, 0, codec.WireErrorf("replica: truncated cell coordinate")
			}
			c[d] = v
			off += n
		}
		cells = append(cells, c)
	}
	return cells, off, nil
}

// appendEntry appends one window entry (point, seq, arrival, count,
// verdict) — the snapshot and import element shape.
func appendEntry(dst []byte, e stream.ExportedEntry) []byte {
	dst = codec.AppendPoint(dst, e.Point)
	dst = binary.AppendUvarint(dst, e.Seq)
	dst = binary.AppendVarint(dst, e.Arrived.UnixNano())
	dst = binary.AppendUvarint(dst, uint64(e.Count))
	if e.Outlier {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func decodeEntry(buf []byte) (stream.ExportedEntry, int, error) {
	var e stream.ExportedEntry
	pt, n, err := codec.DecodePoint(buf)
	if err != nil {
		return e, 0, err
	}
	e.Point = pt
	off := n
	seq, n := binary.Uvarint(buf[off:])
	if n <= 0 {
		return e, 0, codec.WireErrorf("replica: truncated entry seq")
	}
	e.Seq = seq
	off += n
	arrived, n := binary.Varint(buf[off:])
	if n <= 0 {
		return e, 0, codec.WireErrorf("replica: truncated entry arrival")
	}
	e.Arrived = time.Unix(0, arrived)
	off += n
	count, n := binary.Uvarint(buf[off:])
	if n <= 0 {
		return e, 0, codec.WireErrorf("replica: truncated entry count")
	}
	e.Count = int(count)
	off += n
	if off >= len(buf) {
		return e, 0, codec.WireErrorf("replica: truncated entry verdict")
	}
	e.Outlier = buf[off] == 1
	return e, off + 1, nil
}
