package dshc

import (
	"math/rand"
	"testing"

	"dod/internal/geom"
)

// TestInsertionOrderPreservesTiling: DSHC processes mini buckets as they
// arrive from the mappers, so the clustering must produce a valid tiling
// for *any* insertion order, not just row-major. (The cluster count and
// shapes may legitimately differ between orders; the structural contract
// may not.)
func TestInsertionOrderPreservesTiling(t *testing.T) {
	h := histFromCounts(t, domain(80), 8, func(x, y int) float64 {
		if x < 4 && y < 4 {
			return 200
		}
		return float64((x + y) % 3 * 10)
	})
	grid := h.Grid
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		order := rng.Perm(grid.NumCells())
		tr := NewTree(Params{Tdiff: 5, MaxEntries: 4 + trial%5})
		for _, ord := range order {
			tr.Insert(AF{
				NumPoints: h.BucketCount(ord),
				Rect:      grid.CellRect(grid.Unflatten(ord)),
			})
		}
		clusters := tr.Clusters()
		checkTiling(t, h, clusters)
		assertTreeInvariants(t, tr)
	}
}

// TestInsertionOrderWithDensityClasses: same property under the
// regime-class similarity criterion.
func TestInsertionOrderWithDensityClasses(t *testing.T) {
	h := histFromCounts(t, domain(60), 6, func(x, y int) float64 {
		return float64(x * y * 3)
	})
	grid := h.Grid
	class := func(d float64) int {
		switch {
		case d == 0:
			return 0
		case d < 0.5:
			return 1
		default:
			return 2
		}
	}
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		order := rng.Perm(grid.NumCells())
		tr := NewTree(Params{DensityClass: class})
		for _, ord := range order {
			tr.Insert(AF{
				NumPoints: h.BucketCount(ord),
				Rect:      grid.CellRect(grid.Unflatten(ord)),
			})
		}
		checkTiling(t, h, tr.Clusters())
	}
}

// TestSingleBucketDomain: a 1×1 histogram yields exactly one cluster.
func TestSingleBucketDomain(t *testing.T) {
	h := histFromCounts(t, domain(10), 1, func(x, y int) float64 { return 42 })
	clusters := Build(h, Params{Tdiff: 1})
	if len(clusters) != 1 || clusters[0].NumPoints != 42 {
		t.Errorf("single bucket: %v", clusters)
	}
	if !clusters[0].Rect.Equal(geom.NewRect([]float64{0, 0}, []float64{10, 10})) {
		t.Errorf("cluster rect %v", clusters[0].Rect)
	}
}
