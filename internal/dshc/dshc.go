package dshc

import (
	"math"

	"dod/internal/sample"
)

// Build runs DSHC over a mini-bucket histogram and returns the final
// clusters (partitions). It follows Sec. V-A's single scan: each mini
// bucket is either merged into an adjacent density-similar cluster —
// triggering recursive upward merging — or inserted as a new cluster.
//
// The returned clusters are pairwise interior-disjoint rectangles whose
// union tiles the histogram's domain, so every data point maps to exactly
// one cluster.
func Build(hist *sample.Histogram, params Params) []Cluster {
	t := NewTree(params)
	grid := hist.Grid
	for ord := 0; ord < grid.NumCells(); ord++ {
		af := AF{
			NumPoints: hist.BucketCount(ord),
			Rect:      grid.CellRect(grid.Unflatten(ord)),
		}
		t.Insert(af)
	}
	return t.Clusters()
}

// Insert runs the DSHC per-bucket step: search for merging candidates,
// merge into the most density-similar one and recursively merge upward, or
// insert the bucket as a new cluster.
func (t *Tree) Insert(bucket AF) {
	lmc := t.searchAdjacent(bucket.Rect)

	// Filter the LMC by the merging criteria and pick the most
	// density-similar cluster (Sec. V-A, merge operation).
	target := t.bestCandidate(lmc, bucket)
	if target == nil {
		// Insert operation: new leaf. If the LMC is non-empty the new leaf
		// is attached to the parent of its most density-similar member;
		// otherwise to the least-enlargement parent found during search.
		var hint *node
		if best := mostSimilar(lmc, bucket); best != nil {
			hint = best.parent
		}
		t.insertLeaf(bucket, hint)
		return
	}

	// Merge operation: absorb the bucket, then recursively merge the
	// augmented cluster with other clusters until no merge applies.
	target.af = target.af.Add(bucket)
	target.rect = target.af.Rect.Clone()
	t.adjustUpward(target.parent)
	t.mergeUpward(target)
}

// bestCandidate returns the LMC member satisfying all merging criteria
// with the most similar density, or nil.
func (t *Tree) bestCandidate(lmc []*node, af AF) *node {
	var best *node
	bestDiff := math.Inf(1)
	for _, cand := range lmc {
		if !t.params.CanMerge(cand.af, af) {
			continue
		}
		diff := math.Abs(cand.af.Density() - af.Density())
		if diff < bestDiff {
			best, bestDiff = cand, diff
		}
	}
	return best
}

// mostSimilar returns the LMC member with the closest density regardless
// of the merging criteria (used only to pick an attachment parent).
func mostSimilar(lmc []*node, af AF) *node {
	var best *node
	bestDiff := math.Inf(1)
	for _, cand := range lmc {
		diff := math.Abs(cand.af.Density() - af.Density())
		if diff < bestDiff {
			best, bestDiff = cand, diff
		}
	}
	return best
}

// mergeUpward repeatedly merges the augmented cluster with adjacent
// mergeable clusters (the recursive merge of Sec. V-A).
func (t *Tree) mergeUpward(augmented *node) {
	for {
		lmc := t.searchAdjacent(augmented.af.Rect)
		var best *node
		bestDiff := math.Inf(1)
		for _, cand := range lmc {
			if cand == augmented {
				continue
			}
			if !t.params.CanMerge(cand.af, augmented.af) {
				continue
			}
			diff := math.Abs(cand.af.Density() - augmented.af.Density())
			if diff < bestDiff {
				best, bestDiff = cand, diff
			}
		}
		if best == nil {
			return
		}
		augmented.af = augmented.af.Add(best.af)
		augmented.rect = augmented.af.Rect.Clone()
		t.removeLeaf(best)
		t.adjustUpward(augmented.parent)
	}
}
