// Package dshc implements the Density and Spatial-aware Hierarchical
// Clustering algorithm of Sec. V-A: a single-scan clustering of mini
// buckets into rectangular partitions of homogeneous density, driven by an
// R-tree-like index over Aggregate Features (the AF-tree).
//
// DSHC is the step that breaks the paper's "chicken and egg" deadlock
// between partition generation and algorithm selection: because every
// output partition is density-homogeneous, the per-partition detector
// choice (Corollary 4.3) is well-defined, and the cost models can price
// each partition for cost-balanced allocation.
package dshc

import (
	"fmt"
	"math"

	"dod/internal/geom"
)

// areaEps guards density denominators for degenerate rectangles.
const areaEps = 1e-12

// AF is the Aggregate Feature of Def. 5.1: the summarized state of a
// cluster of mini buckets — its cardinality, bounding coordinates, and
// density. Because clusters are always rectangular unions of whole mini
// buckets (Def. 5.2 criterion 2), the bounding rectangle *is* the cluster.
type AF struct {
	NumPoints float64 // estimated cardinality (scaled sample counts)
	Rect      geom.Rect
}

// Density returns NumPoints divided by the covered volume (Def. 5.1).
func (a AF) Density() float64 {
	return a.NumPoints / a.Rect.AreaEps(areaEps)
}

// Add implements Def. 5.4: the AF of the merged cluster is the summed
// cardinality over the union bounding box.
func (a AF) Add(b AF) AF {
	return AF{NumPoints: a.NumPoints + b.NumPoints, Rect: a.Rect.Union(b.Rect)}
}

// Params are the DSHC merging thresholds of Def. 5.2.
type Params struct {
	// Tdiff is the maximum density difference for two clusters to merge
	// (criterion 1). It is an absolute difference, as in the paper, unless
	// TdiffRelative is set.
	Tdiff float64
	// TdiffRelative switches criterion 1 to a relative test:
	// |d1 − d2| < Tdiff · max(d1, d2). Real geospatial densities span
	// orders of magnitude, where a single absolute threshold either
	// shatters dense regions or fuses sparse ones; the relative form keeps
	// clusters within the same density decade. Equal densities (including
	// two empty regions) always merge.
	TdiffRelative bool
	// DensityClass, when set, replaces criterion 1 entirely: two clusters
	// are density-similar iff their densities map to the same class. The
	// DMT planner classifies by the Corollary 4.3 algorithm regimes, the
	// most task-relevant notion of "similar density": buckets cluster
	// together exactly when they would be served by the same detector.
	// This is also robust to the Poisson noise of low sample counts, which
	// defeats threshold-based similarity on sparse buckets.
	DensityClass func(density float64) int
	// TmaxPoints caps cluster cardinality (criterion 3), reflecting the
	// maximum number of points one reducer can hold in memory. Zero means
	// unlimited.
	TmaxPoints float64
	// MaxEntries is the AF-tree node fanout before a split; defaults to 8.
	MaxEntries int
}

func (p Params) withDefaults() Params {
	if p.TmaxPoints <= 0 {
		p.TmaxPoints = math.Inf(1)
	}
	if p.MaxEntries < 4 {
		p.MaxEntries = 8
	}
	return p
}

// CanMerge evaluates the merging criteria of Def. 5.2 for two clusters.
func (p Params) CanMerge(a, b AF) bool {
	if !p.densitySimilar(a.Density(), b.Density()) {
		return false // criterion 1: density similarity
	}
	if !a.Rect.UnionIsRectangular(b.Rect) {
		return false // criterion 2: rectangular shape (Def. 5.3)
	}
	if a.NumPoints+b.NumPoints >= p.TmaxPoints {
		return false // criterion 3: reducer memory bound
	}
	return true
}

// densitySimilar applies criterion 1 in the configured mode.
func (p Params) densitySimilar(d1, d2 float64) bool {
	if p.DensityClass != nil {
		return p.DensityClass(d1) == p.DensityClass(d2)
	}
	diff := math.Abs(d1 - d2)
	if diff == 0 {
		return true
	}
	if p.TdiffRelative {
		return diff < p.Tdiff*math.Max(d1, d2)
	}
	return diff < p.Tdiff
}

// Cluster is one DSHC output partition.
type Cluster struct {
	AF
	ID int
}

func (c Cluster) String() string {
	return fmt.Sprintf("cluster %d: %.0f pts, density %.4g, %v", c.ID, c.NumPoints, c.Density(), c.Rect)
}
