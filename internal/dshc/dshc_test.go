package dshc

import (
	"math"
	"math/rand"
	"testing"

	"dod/internal/geom"
	"dod/internal/sample"
)

func histFromCounts(t *testing.T, domain geom.Rect, bucketsPerDim int, fill func(x, y int) float64) *sample.Histogram {
	t.Helper()
	grid := geom.NewGrid(domain, []int{bucketsPerDim, bucketsPerDim})
	h := &sample.Histogram{Grid: grid, Counts: make([]float64, grid.NumCells()), Rate: 1}
	for x := 0; x < bucketsPerDim; x++ {
		for y := 0; y < bucketsPerDim; y++ {
			h.Counts[grid.Flatten([]int{x, y})] = fill(x, y)
		}
	}
	return h
}

func domain(side float64) geom.Rect {
	return geom.NewRect([]float64{0, 0}, []float64{side, side})
}

// checkTiling verifies the fundamental DSHC output contract: clusters are
// pairwise interior-disjoint, tile the domain exactly, and preserve the
// histogram's total count.
func checkTiling(t *testing.T, h *sample.Histogram, clusters []Cluster) {
	t.Helper()
	var areaSum, countSum float64
	for i, a := range clusters {
		areaSum += a.Rect.Area()
		countSum += a.NumPoints
		for _, b := range clusters[i+1:] {
			if interiorOverlap(a.Rect, b.Rect) {
				t.Fatalf("clusters overlap: %v and %v", a, b)
			}
		}
		if !h.Grid.Domain.ContainsRect(a.Rect) {
			t.Fatalf("cluster %v escapes domain %v", a, h.Grid.Domain)
		}
	}
	if dom := h.Grid.Domain.Area(); math.Abs(areaSum-dom) > 1e-6*dom {
		t.Errorf("cluster areas %g != domain area %g", areaSum, dom)
	}
	if total := h.EstimatedTotal(); math.Abs(countSum-total) > 1e-6*(total+1) {
		t.Errorf("cluster counts %g != histogram total %g", countSum, total)
	}
}

func interiorOverlap(a, b geom.Rect) bool {
	for i := range a.Min {
		if a.Max[i] <= b.Min[i] || b.Max[i] <= a.Min[i] {
			return false
		}
	}
	return true
}

func TestUniformHistogramCollapsesToOneCluster(t *testing.T) {
	h := histFromCounts(t, domain(100), 8, func(x, y int) float64 { return 10 })
	clusters := Build(h, Params{Tdiff: 0.001})
	checkTiling(t, h, clusters)
	if len(clusters) != 1 {
		t.Errorf("uniform data: %d clusters, want 1", len(clusters))
	}
	if clusters[0].NumPoints != 640 {
		t.Errorf("cluster count = %g, want 640", clusters[0].NumPoints)
	}
}

func TestTwoDensityRegions(t *testing.T) {
	// Left half dense (100/bucket), right half sparse (1/bucket).
	h := histFromCounts(t, domain(80), 8, func(x, y int) float64 {
		if x < 4 {
			return 100
		}
		return 1
	})
	clusters := Build(h, Params{Tdiff: 0.05})
	checkTiling(t, h, clusters)
	if len(clusters) != 2 {
		t.Fatalf("got %d clusters, want 2 (dense + sparse)", len(clusters))
	}
	var dense, sparse *Cluster
	for i := range clusters {
		if clusters[i].Density() > 0.5 {
			dense = &clusters[i]
		} else {
			sparse = &clusters[i]
		}
	}
	if dense == nil || sparse == nil {
		t.Fatalf("expected one dense and one sparse cluster: %v", clusters)
	}
	if dense.NumPoints != 100*32 || sparse.NumPoints != 32 {
		t.Errorf("dense=%g sparse=%g", dense.NumPoints, sparse.NumPoints)
	}
}

func TestFourQuadrants(t *testing.T) {
	// Four density levels, one per quadrant; Tdiff below the smallest gap.
	levels := [2][2]float64{{10, 200}, {3000, 40000}}
	h := histFromCounts(t, domain(40), 8, func(x, y int) float64 {
		return levels[x/4][y/4]
	})
	clusters := Build(h, Params{Tdiff: 0.1})
	checkTiling(t, h, clusters)
	if len(clusters) != 4 {
		t.Errorf("got %d clusters, want 4 quadrants", len(clusters))
	}
}

func TestTdiffZeroMergesNothingAcrossDifferentDensities(t *testing.T) {
	// Strictly increasing density per bucket and a tiny Tdiff: no merges,
	// one cluster per bucket.
	h := histFromCounts(t, domain(40), 4, func(x, y int) float64 {
		return float64(1 + x*4 + y*100)
	})
	clusters := Build(h, Params{Tdiff: 1e-9})
	checkTiling(t, h, clusters)
	if len(clusters) != 16 {
		t.Errorf("got %d clusters, want 16 (no merges)", len(clusters))
	}
}

func TestTmaxPointsCapsClusterCardinality(t *testing.T) {
	h := histFromCounts(t, domain(100), 8, func(x, y int) float64 { return 10 })
	cap := 100.0
	clusters := Build(h, Params{Tdiff: 1, TmaxPoints: cap})
	checkTiling(t, h, clusters)
	if len(clusters) < 7 {
		t.Errorf("cap %g should force >= 7 clusters, got %d", cap, len(clusters))
	}
	for _, c := range clusters {
		if c.NumPoints >= cap {
			t.Errorf("cluster %v exceeds TmaxPoints %g", c, cap)
		}
	}
}

func TestEmptyBucketsMergeTogether(t *testing.T) {
	// A dense block in the middle of an empty domain: the empty buckets
	// must still be covered by (zero-density) clusters.
	h := histFromCounts(t, domain(80), 8, func(x, y int) float64 {
		if x >= 3 && x < 5 && y >= 3 && y < 5 {
			return 500
		}
		return 0
	})
	clusters := Build(h, Params{Tdiff: 0.5})
	checkTiling(t, h, clusters)
	var emptyCount, denseCount int
	for _, c := range clusters {
		if c.NumPoints == 0 {
			emptyCount++
		} else {
			denseCount++
		}
	}
	if denseCount == 0 {
		t.Error("dense block vanished")
	}
	if emptyCount == 0 {
		t.Error("empty space not covered")
	}
	// Empty buckets are all density 0 and should coalesce substantially.
	if emptyCount > 16 {
		t.Errorf("%d empty clusters; expected strong coalescing", emptyCount)
	}
}

func TestSkewedRandomHistogramProperties(t *testing.T) {
	// Property test: any random histogram must yield a valid tiling.
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(9)
		h := histFromCounts(t, domain(float64(10*n)), n, func(x, y int) float64 {
			return math.Floor(math.Exp(rng.NormFloat64()*2) * 10)
		})
		params := Params{
			Tdiff:      math.Exp(rng.NormFloat64()),
			TmaxPoints: 0,
			MaxEntries: 4 + rng.Intn(8),
		}
		clusters := Build(h, params)
		checkTiling(t, h, clusters)
	}
}

func TestTmaxRandomizedNeverExceeded(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		h := histFromCounts(t, domain(60), 6, func(x, y int) float64 {
			return float64(rng.Intn(50))
		})
		cap := 60 + rng.Float64()*100
		clusters := Build(h, Params{Tdiff: 100, TmaxPoints: cap})
		checkTiling(t, h, clusters)
		for _, c := range clusters {
			// A single bucket may legitimately exceed the cap; only merged
			// clusters (spanning more than one bucket) must respect it.
			single := c.Rect.Area() <= h.Grid.CellRect([]int{0, 0}).Area()+1e-9
			if !single && c.NumPoints >= cap {
				t.Errorf("trial %d: merged cluster %v exceeds cap %g", trial, c, cap)
			}
		}
	}
}

func TestAFAddDef54(t *testing.T) {
	a := AF{NumPoints: 10, Rect: geom.NewRect([]float64{0, 0}, []float64{1, 1})}
	b := AF{NumPoints: 20, Rect: geom.NewRect([]float64{1, 0}, []float64{2, 1})}
	sum := a.Add(b)
	if sum.NumPoints != 30 {
		t.Errorf("NumPoints = %g", sum.NumPoints)
	}
	if !sum.Rect.Equal(geom.NewRect([]float64{0, 0}, []float64{2, 1})) {
		t.Errorf("Rect = %v", sum.Rect)
	}
	if got := sum.Density(); got != 15 {
		t.Errorf("Density = %g, want 15", got)
	}
}

func TestCanMergeCriteria(t *testing.T) {
	p := Params{Tdiff: 1, TmaxPoints: 100}.withDefaults()
	left := AF{NumPoints: 10, Rect: geom.NewRect([]float64{0, 0}, []float64{1, 1})}
	right := AF{NumPoints: 10, Rect: geom.NewRect([]float64{1, 0}, []float64{2, 1})}
	if !p.CanMerge(left, right) {
		t.Error("mergeable pair rejected")
	}
	// criterion 1: density difference
	denser := AF{NumPoints: 50, Rect: right.Rect}
	if p.CanMerge(left, denser) {
		t.Error("density gap 40 >= Tdiff 1 accepted")
	}
	// criterion 2: rectangular shape
	diagonal := AF{NumPoints: 10, Rect: geom.NewRect([]float64{1, 1}, []float64{2, 2})}
	if p.CanMerge(left, diagonal) {
		t.Error("non-rectangular union accepted")
	}
	// criterion 3: cardinality cap
	heavy := Params{Tdiff: 1, TmaxPoints: 15}.withDefaults()
	if heavy.CanMerge(left, right) {
		t.Error("merged cardinality 20 >= cap 15 accepted")
	}
}

func TestTreeInvariantsAfterManyInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	h := histFromCounts(t, domain(160), 16, func(x, y int) float64 {
		return float64(rng.Intn(100))
	})
	tr := NewTree(Params{Tdiff: 5, MaxEntries: 5})
	grid := h.Grid
	for ord := 0; ord < grid.NumCells(); ord++ {
		tr.Insert(AF{NumPoints: h.BucketCount(ord), Rect: grid.CellRect(grid.Unflatten(ord))})
		assertTreeInvariants(t, tr)
	}
	if got := len(tr.Clusters()); got != tr.Len() {
		t.Errorf("Clusters() returned %d, Len() = %d", got, tr.Len())
	}
}

// assertTreeInvariants validates structural invariants: parent pointers,
// bounding rectangles containing children, fanout limits, and uniform leaf
// depth.
func assertTreeInvariants(t *testing.T, tr *Tree) {
	t.Helper()
	if tr.root == nil {
		return
	}
	leafDepth := -1
	leaves := 0
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		if n.isLeaf() {
			leaves++
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				t.Fatalf("leaf depth %d != %d (unbalanced)", depth, leafDepth)
			}
			return
		}
		if len(n.children) > tr.params.MaxEntries {
			t.Fatalf("node fanout %d exceeds max %d", len(n.children), tr.params.MaxEntries)
		}
		for _, c := range n.children {
			if c.parent != n {
				t.Fatal("broken parent pointer")
			}
			if !n.rect.ContainsRect(childRect(c)) {
				t.Fatalf("node rect %v does not contain child %v", n.rect, childRect(c))
			}
			walk(c, depth+1)
		}
	}
	walk(tr.root, 0)
	if leaves != tr.Len() {
		t.Fatalf("leaf count %d != Len() %d", leaves, tr.Len())
	}
}

func TestBuildDeterministic(t *testing.T) {
	h := histFromCounts(t, domain(60), 6, func(x, y int) float64 {
		return float64((x*7 + y*13) % 5 * 10)
	})
	a := Build(h, Params{Tdiff: 3})
	b := Build(h, Params{Tdiff: 3})
	if len(a) != len(b) {
		t.Fatalf("nondeterministic cluster count %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].NumPoints != b[i].NumPoints || !a[i].Rect.Equal(b[i].Rect) {
			t.Fatalf("cluster %d differs between runs", i)
		}
	}
}

func TestClusterString(t *testing.T) {
	c := Cluster{AF: AF{NumPoints: 5, Rect: geom.NewRect([]float64{0, 0}, []float64{1, 1})}, ID: 3}
	if c.String() == "" {
		t.Error("empty String()")
	}
}
