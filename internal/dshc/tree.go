package dshc

import (
	"math"

	"dod/internal/geom"
)

// node is one AF-tree node. Leaves carry a cluster AF; internal nodes carry
// child pointers under a bounding rectangle, exactly the (Rect,
// child-pointer) pairs of Sec. V-A.
type node struct {
	parent   *node
	rect     geom.Rect
	children []*node // nil iff leaf
	af       AF      // valid iff leaf
}

func (n *node) isLeaf() bool { return n.children == nil }

// Tree is the AF-tree: an R-tree-like index whose leaves are the current
// clusters. Because cluster rectangles are closed, the standard overlap
// search already returns spatially *adjacent* clusters (touching
// boundaries), which is what the DSHC search operation requires.
type Tree struct {
	root   *node
	params Params
	leaves int
}

// NewTree builds an empty AF-tree.
func NewTree(params Params) *Tree {
	return &Tree{params: params.withDefaults()}
}

// Len returns the number of clusters (leaves).
func (t *Tree) Len() int { return t.leaves }

// Clusters returns every current cluster, in deterministic tree order.
func (t *Tree) Clusters() []Cluster {
	var out []Cluster
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.isLeaf() {
			out = append(out, Cluster{AF: n.af, ID: len(out)})
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// searchAdjacent returns all leaves whose rectangle overlaps or touches
// rect — the list of merging candidates (LMC) of the search operation.
func (t *Tree) searchAdjacent(rect geom.Rect) []*node {
	var out []*node
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil || !n.rect.Overlaps(rect) {
			return
		}
		if n.isLeaf() {
			out = append(out, n)
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// chooseParent descends to the leaf-parent whose bounding rectangle needs
// the least enlargement to absorb rect (the "pn" node of the search
// operation, reusing R-tree ChooseLeaf semantics).
func (t *Tree) chooseParent(rect geom.Rect) *node {
	n := t.root
	for n != nil && !n.isLeaf() {
		if len(n.children) > 0 && n.children[0].isLeaf() {
			return n // leaf-parent level
		}
		var best *node
		bestEnl, bestArea := math.Inf(1), math.Inf(1)
		for _, c := range n.children {
			enl := c.rect.Enlargement(rect)
			area := c.rect.Area()
			if enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = c, enl, area
			}
		}
		n = best
	}
	return nil
}

// Insert adds a new cluster AF into the tree (the insert operation),
// attaching it near `hint` when given (the parent of the most
// density-similar LMC member per Sec. V-A) and splitting on overflow.
func (t *Tree) insertLeaf(af AF, hint *node) *node {
	leaf := &node{rect: af.Rect.Clone(), af: af}
	t.leaves++
	if t.root == nil {
		t.root = &node{rect: af.Rect.Clone(), children: []*node{leaf}}
		leaf.parent = t.root
		return leaf
	}
	parent := hint
	if parent == nil {
		parent = t.chooseParent(af.Rect)
	}
	if parent == nil {
		// Root is itself the leaf-parent.
		parent = t.root
	}
	leaf.parent = parent
	parent.children = append(parent.children, leaf)
	t.adjustUpward(parent)
	t.splitIfNeeded(parent)
	return leaf
}

// removeLeaf deletes a leaf after a merge consumed it. Empty ancestors are
// pruned; no re-insertion is needed because merges only grow a sibling's
// rectangle to cover the removed leaf.
func (t *Tree) removeLeaf(leaf *node) {
	t.leaves--
	p := leaf.parent
	for p != nil {
		removeChild(p, leaf)
		if len(p.children) > 0 || p.parent == nil {
			t.adjustUpward(p)
			break
		}
		leaf, p = p, p.parent
	}
	// Collapse a root with a single internal child to keep height minimal.
	for t.root != nil && !t.root.isLeaf() && len(t.root.children) == 1 && !t.root.children[0].isLeaf() {
		t.root = t.root.children[0]
		t.root.parent = nil
	}
}

func removeChild(p *node, child *node) {
	for i, c := range p.children {
		if c == child {
			p.children = append(p.children[:i], p.children[i+1:]...)
			return
		}
	}
}

// adjustUpward recomputes bounding rectangles from n to the root.
func (t *Tree) adjustUpward(n *node) {
	for ; n != nil; n = n.parent {
		if len(n.children) == 0 {
			continue
		}
		rect := childRect(n.children[0])
		for _, c := range n.children[1:] {
			rect = rect.Union(childRect(c))
		}
		n.rect = rect
	}
}

func childRect(c *node) geom.Rect {
	if c.isLeaf() {
		return c.af.Rect
	}
	return c.rect
}

// splitIfNeeded applies the standard R-tree quadratic split when a node
// overflows, propagating upward and growing a new root when necessary.
func (t *Tree) splitIfNeeded(n *node) {
	for n != nil && len(n.children) > t.params.MaxEntries {
		g1, g2 := quadraticSplit(n.children)
		n.children = g1
		for _, c := range g1 {
			c.parent = n
		}
		sibling := &node{parent: n.parent, children: g2}
		for _, c := range g2 {
			c.parent = sibling
		}
		t.adjustUpward(sibling)
		t.adjustUpward(n)

		if n.parent == nil {
			newRoot := &node{children: []*node{n, sibling}}
			n.parent, sibling.parent = newRoot, newRoot
			t.root = newRoot
			t.adjustUpward(newRoot)
			return
		}
		n.parent.children = append(n.parent.children, sibling)
		n = n.parent
	}
}

// quadraticSplit partitions children into two groups using Guttman's
// quadratic seeds (the pair wasting the most area apart) and least-
// enlargement assignment.
func quadraticSplit(children []*node) (g1, g2 []*node) {
	seed1, seed2 := 0, 1
	worst := math.Inf(-1)
	for i := 0; i < len(children); i++ {
		for j := i + 1; j < len(children); j++ {
			ri, rj := childRect(children[i]), childRect(children[j])
			waste := ri.Union(rj).Area() - ri.Area() - rj.Area()
			if waste > worst {
				worst, seed1, seed2 = waste, i, j
			}
		}
	}
	r1, r2 := childRect(children[seed1]).Clone(), childRect(children[seed2]).Clone()
	g1 = append(g1, children[seed1])
	g2 = append(g2, children[seed2])
	for i, c := range children {
		if i == seed1 || i == seed2 {
			continue
		}
		rc := childRect(c)
		e1, e2 := r1.Enlargement(rc), r2.Enlargement(rc)
		// Balance: avoid starving either group.
		if e1 < e2 || (e1 == e2 && len(g1) <= len(g2)) {
			g1 = append(g1, c)
			r1 = r1.Union(rc)
		} else {
			g2 = append(g2, c)
			r2 = r2.Union(rc)
		}
	}
	return g1, g2
}
