package dshc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dod/internal/geom"
)

// randomAF generates a bounded, well-formed AF from quick's rand source.
func randomAF(rng *rand.Rand) AF {
	x, y := rng.Float64()*100, rng.Float64()*100
	w, h := 0.1+rng.Float64()*20, 0.1+rng.Float64()*20
	return AF{
		NumPoints: float64(rng.Intn(10000)),
		Rect:      geom.NewRect([]float64{x, y}, []float64{x + w, y + h}),
	}
}

func TestAFAddCountAdditiveQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomAF(rng), randomAF(rng)
		sum := a.Add(b)
		return sum.NumPoints == a.NumPoints+b.NumPoints
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAFAddBoundsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomAF(rng), randomAF(rng)
		sum := a.Add(b)
		return sum.Rect.ContainsRect(a.Rect) && sum.Rect.ContainsRect(b.Rect)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAFAddCommutativeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomAF(rng), randomAF(rng)
		ab, ba := a.Add(b), b.Add(a)
		return ab.NumPoints == ba.NumPoints && ab.Rect.Equal(ba.Rect)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAFAddAssociativeQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b, c := randomAF(rng), randomAF(rng), randomAF(rng)
		left := a.Add(b).Add(c)
		right := a.Add(b.Add(c))
		return math.Abs(left.NumPoints-right.NumPoints) < 1e-9 && left.Rect.Equal(right.Rect)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRectangularMergeDensityBetweenQuick(t *testing.T) {
	// When two abutting same-height AFs merge, the merged density lies
	// between the two input densities — the invariant that keeps DSHC's
	// density classes stable under merging.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := 1 + rng.Float64()*10
		w1, w2 := 0.5+rng.Float64()*10, 0.5+rng.Float64()*10
		a := AF{
			NumPoints: 1 + float64(rng.Intn(5000)),
			Rect:      geom.NewRect([]float64{0, 0}, []float64{w1, h}),
		}
		b := AF{
			NumPoints: 1 + float64(rng.Intn(5000)),
			Rect:      geom.NewRect([]float64{w1, 0}, []float64{w1 + w2, h}),
		}
		if !a.Rect.UnionIsRectangular(b.Rect) {
			return false // construction guarantees abutment
		}
		merged := a.Add(b)
		lo, hi := a.Density(), b.Density()
		if lo > hi {
			lo, hi = hi, lo
		}
		d := merged.Density()
		return d >= lo-1e-9 && d <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDensityClassSimilarityIsEquivalenceQuick(t *testing.T) {
	// With a DensityClass, densitySimilar must be reflexive, symmetric and
	// transitive (it is class equality).
	class := func(d float64) int {
		switch {
		case d == 0:
			return 0
		case d < 1:
			return 1
		default:
			return 2
		}
	}
	p := Params{DensityClass: class}
	f := func(d1, d2, d3 float64) bool {
		d1, d2, d3 = math.Abs(d1), math.Abs(d2), math.Abs(d3)
		if !p.densitySimilar(d1, d1) {
			return false // reflexive
		}
		if p.densitySimilar(d1, d2) != p.densitySimilar(d2, d1) {
			return false // symmetric
		}
		if p.densitySimilar(d1, d2) && p.densitySimilar(d2, d3) && !p.densitySimilar(d1, d3) {
			return false // transitive
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
