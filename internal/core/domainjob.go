package core

import (
	"encoding/binary"
	"fmt"
	"time"

	"dod/internal/codec"
	"dod/internal/detect"
	"dod/internal/geom"
	"dod/internal/mapreduce"
	"dod/internal/obs"
	"dod/internal/plan"
)

// The Domain baseline has no supporting areas, so a point's local verdict
// can be wrong near partition boundaries. It therefore runs two jobs
// (Sec. VI-A):
//
//	job 1: per-partition detection; interior outliers are final, border
//	       outliers become *candidates* carrying their local neighbor count;
//	job 2: candidates are routed to every neighboring partition, which
//	       counts additional neighbors among its border points; the driver
//	       sums the counts to settle each candidate.

// Kinds of job-1 output records.
const (
	domainFinalOutlier byte = 0
	domainCandidate    byte = 1
)

// candidate is a border point that was a local outlier in job 1.
type candidate struct {
	origin     int // core partition
	localCount int // neighbors found within the origin partition
	point      geom.Point
}

func encodeCandidate(c candidate) []byte {
	buf := []byte{domainCandidate}
	buf = binary.AppendUvarint(buf, uint64(c.origin))
	buf = binary.AppendUvarint(buf, uint64(c.localCount))
	return codec.AppendPoint(buf, c.point)
}

func decodeCandidate(buf []byte) (candidate, error) {
	if len(buf) < 1 || buf[0] != domainCandidate {
		return candidate{}, fmt.Errorf("core: not a candidate record")
	}
	rest := buf[1:]
	origin, n := binary.Uvarint(rest)
	if n <= 0 {
		return candidate{}, codec.ErrTruncated
	}
	rest = rest[n:]
	local, n := binary.Uvarint(rest)
	if n <= 0 {
		return candidate{}, codec.ErrTruncated
	}
	rest = rest[n:]
	p, _, err := codec.DecodePoint(rest)
	if err != nil {
		return candidate{}, err
	}
	return candidate{origin: int(origin), localCount: int(local), point: p}, nil
}

// nearBoundary reports whether p lies within distance r of rect's boundary.
func nearBoundary(rect geom.Rect, p geom.Point, r float64) bool {
	for i := range rect.Min {
		if p.Coords[i]-rect.Min[i] < r || rect.Max[i]-p.Coords[i] < r {
			return true
		}
	}
	return false
}

// domainJob1Reducer runs the partition's detector on core points only, then
// classifies each local outlier as final (interior) or candidate (border).
// Candidates get an exact local neighbor count via a direct scan — an extra
// cost the baseline realistically pays for lacking supporting areas.
func domainJob1Reducer(pl *plan.Plan, params detect.Params, seed int64) mapreduce.ReducerFunc {
	return func(ctx *mapreduce.TaskContext, key uint64, values [][]byte, emit mapreduce.Emit) error {
		sc := scratchPool.Get().(*taskScratch)
		defer scratchPool.Put(sc)
		// Support records (if any) stay in sc.supp, unmerged: the Domain
		// baseline's defining property is detecting on core points alone.
		nCore, err := decodeTaggedGroupSet(values, sc)
		if err != nil {
			return fmt.Errorf("core: partition %d: %w", key, err)
		}
		part := pl.Partitions[key]
		detector := detect.New(part.Algo, seed+int64(key))
		start := time.Now()
		res := detect.DetectSet(detector, &sc.core, nCore, params)
		ctx.Trace.Add("partition.detect", start, time.Since(start),
			obs.Int("partition", int64(key)),
			obs.Str("algo", part.Algo.String()),
			obs.Int("core", int64(nCore)),
			obs.Int("distcomps", res.Stats.DistComps),
			obs.Int("outliers", int64(len(res.OutlierIDs))))
		work := res.Stats.Cost() + int64(len(values))

		byID := make(map[uint64]int, len(res.OutlierIDs))
		for i := 0; i < nCore; i++ {
			byID[sc.core.IDs[i]] = i
		}
		r2 := params.R * params.R
		for _, id := range res.OutlierIDs {
			pi := byID[id]
			p := sc.core.At(pi)
			if !nearBoundary(part.Rect, p, params.R) {
				// Interior: no external point can be a neighbor; final.
				emit(key, binary.AppendUvarint([]byte{domainFinalOutlier}, id))
				continue
			}
			// Border outlier: exact local count for job-2 reconciliation.
			localCount := 0
			for j := 0; j < nCore; j++ {
				if sc.core.IDs[j] == id {
					continue
				}
				work++
				if sc.core.Within2(pi, j, r2) {
					localCount++
				}
			}
			emit(key, encodeCandidate(candidate{origin: int(key), localCount: localCount, point: p}))
		}
		ctx.Inc(counterReduceWork, work)
		ctx.Inc(counterDistComps, res.Stats.DistComps)
		return nil
	}
}

// splitDomainJob1Output separates the first job's output into final outlier
// IDs and border candidates.
func splitDomainJob1Output(pairs []mapreduce.Pair) (finals []uint64, cands []candidate, err error) {
	for _, pair := range pairs {
		if len(pair.Value) == 0 {
			return nil, nil, fmt.Errorf("core: empty job-1 record")
		}
		switch pair.Value[0] {
		case domainFinalOutlier:
			id, n := binary.Uvarint(pair.Value[1:])
			if n <= 0 {
				return nil, nil, codec.ErrTruncated
			}
			finals = append(finals, id)
		case domainCandidate:
			c, err := decodeCandidate(pair.Value)
			if err != nil {
				return nil, nil, err
			}
			cands = append(cands, c)
		default:
			return nil, nil, fmt.Errorf("core: unknown job-1 record kind %d", pair.Value[0])
		}
	}
	return finals, cands, nil
}

// candidatesSplitName marks the synthetic split carrying job-1 candidates
// into job 2.
const candidatesSplitName = "domain-candidates"

func encodeCandidates(cands []candidate) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(cands)))
	for _, c := range cands {
		cBuf := encodeCandidate(c)
		buf = binary.AppendUvarint(buf, uint64(len(cBuf)))
		buf = append(buf, cBuf...)
	}
	return buf
}

func decodeCandidates(buf []byte) ([]candidate, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, codec.ErrTruncated
	}
	buf = buf[n:]
	out := make([]candidate, 0, count)
	for i := uint64(0); i < count; i++ {
		size, n := binary.Uvarint(buf)
		if n <= 0 || uint64(len(buf[n:])) < size {
			return nil, codec.ErrTruncated
		}
		c, err := decodeCandidate(buf[n : n+int(size)])
		if err != nil {
			return nil, err
		}
		out = append(out, c)
		buf = buf[n+int(size):]
	}
	return out, nil
}

// Job-2 record tags.
const (
	job2BorderPoint byte = 10 // a partition's own border core point
	job2Candidate   byte = 11 // a candidate routed from another partition
)

// domainJob2Mapper routes (a) each partition's border core points to their
// own partition and (b) each candidate to every neighboring partition whose
// r-expansion contains it.
func domainJob2Mapper(pl *plan.Plan, params detect.Params) mapreduce.MapperFunc {
	return func(ctx *mapreduce.TaskContext, split mapreduce.Split, emit mapreduce.Emit) error {
		if split.Name == candidatesSplitName {
			cands, err := decodeCandidates(split.Data)
			if err != nil {
				return fmt.Errorf("core: candidates split: %w", err)
			}
			var work int64
			for _, c := range cands {
				for _, part := range pl.Partitions {
					work++
					if part.ID == c.origin {
						continue
					}
					if part.Rect.Expand(params.R).Contains(c.point) {
						emit(uint64(part.ID), encodeCandidate(c))
					}
				}
			}
			ctx.Inc(counterMapWork, work)
			return nil
		}
		sc := scratchPool.Get().(*taskScratch)
		defer scratchPool.Put(sc)
		sc.core.Clear()
		if err := codec.DecodePointsInto(split.Data, &sc.core); err != nil {
			return fmt.Errorf("core: split %s: %w", split.Name, err)
		}
		var work int64
		for i, n := 0, sc.core.Len(); i < n; i++ {
			work++
			p := sc.core.At(i)
			core, _ := pl.Locate(p)
			if nearBoundary(pl.Partitions[core].Rect, p, params.R) {
				emit(uint64(core), codec.AppendTaggedPoint(nil, job2BorderPoint, p))
			}
		}
		ctx.Inc(counterMapWork, work)
		return nil
	}
}

// domainJob2Reducer counts, for each candidate routed to this partition,
// its neighbors among the partition's border points, emitting
// (candidateID, count). Counting stops at k: once any partition certifies k
// neighbors the candidate is an inlier regardless of the rest.
func domainJob2Reducer(params detect.Params) mapreduce.ReducerFunc {
	return func(ctx *mapreduce.TaskContext, key uint64, values [][]byte, emit mapreduce.Emit) error {
		sc := scratchPool.Get().(*taskScratch)
		defer scratchPool.Put(sc)
		border := &sc.core
		border.Clear()
		var cands []candidate
		for _, v := range values {
			if len(v) == 0 {
				return fmt.Errorf("core: empty job-2 record")
			}
			switch v[0] {
			case job2BorderPoint:
				if _, _, err := codec.DecodeTaggedPointInto(v, border); err != nil {
					return err
				}
			case domainCandidate:
				c, err := decodeCandidate(v)
				if err != nil {
					return err
				}
				cands = append(cands, c)
			default:
				return fmt.Errorf("core: unknown job-2 record tag %d", v[0])
			}
		}
		var work int64 = int64(len(values))
		r2 := params.R * params.R
		for _, c := range cands {
			count := 0
			for j, nb := 0, border.Len(); j < nb; j++ {
				if count >= params.K {
					break
				}
				work++
				if border.Within2Coords(j, c.point.Coords, r2) {
					count++
				}
			}
			buf := binary.AppendUvarint(nil, c.point.ID)
			buf = binary.AppendUvarint(buf, uint64(count))
			emit(key, buf)
		}
		ctx.Inc(counterReduceWork, work)
		return nil
	}
}

// reconcileDomain sums each candidate's local and remote neighbor counts
// and settles its verdict.
func reconcileDomain(cands []candidate, job2Output []mapreduce.Pair, k int) ([]uint64, error) {
	totals := make(map[uint64]int, len(cands))
	for _, c := range cands {
		totals[c.point.ID] = c.localCount
	}
	for _, pair := range job2Output {
		id, n := binary.Uvarint(pair.Value)
		if n <= 0 {
			return nil, codec.ErrTruncated
		}
		count, m := binary.Uvarint(pair.Value[n:])
		if m <= 0 {
			return nil, codec.ErrTruncated
		}
		totals[id] += int(count)
	}
	var outliers []uint64
	for _, c := range cands {
		if totals[c.point.ID] < k {
			outliers = append(outliers, c.point.ID)
		}
	}
	return outliers, nil
}
