package core

import (
	"encoding/json"
	"fmt"

	"dod/internal/detect"
	"dod/internal/dist"
	"dod/internal/mapreduce"
	"dod/internal/plan"
)

// DetectJobKind is the wire identity of the single-pass detection job in
// the distributed runtime's job registry. Bump the version suffix on any
// incompatible change to detectJobConfig or the task record formats.
const DetectJobKind = "dod.detect/v1"

// detectJobConfig is everything a worker needs to rebuild the detection
// job's mapper, reducer, and partitioner: the partition plan (carrying the
// per-partition detector assignments and reducer allocation), the
// detection parameters, and the base seed. Detector seeds derive as
// seed+partitionID, so remote execution is byte-identical to in-process.
type detectJobConfig struct {
	Plan   *plan.Plan    `json:"plan"`
	Params detect.Params `json:"params"`
	Seed   int64         `json:"seed"`
}

func init() {
	dist.RegisterJob(DetectJobKind, buildDetectJob)
}

// buildDetectJob is the worker-side registry builder: config in, runnable
// job out.
func buildDetectJob(raw []byte) (*dist.Job, error) {
	var cfg detectJobConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return nil, fmt.Errorf("core: detect job config: %w", err)
	}
	if cfg.Plan == nil || len(cfg.Plan.Partitions) == 0 {
		return nil, fmt.Errorf("core: detect job config has no plan")
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	pl := cfg.Plan
	return &dist.Job{
		Mapper:      detectionMapper(pl),
		Reducer:     detectionReducer(pl, cfg.Params, cfg.Seed),
		Partitioner: func(key uint64, n int) int { return pl.ReducerFor(key) },
	}, nil
}

// DetectJobSpec packages a computed plan as the detection job's wire spec —
// the coordinator ships it with every task dispatch.
func DetectJobSpec(pl *plan.Plan, params detect.Params, seed int64) (dist.JobSpec, error) {
	raw, err := json.Marshal(detectJobConfig{Plan: pl, Params: params, Seed: seed})
	if err != nil {
		return dist.JobSpec{}, fmt.Errorf("core: encoding detect job spec: %w", err)
	}
	return dist.JobSpec{Kind: DetectJobKind, Config: raw}, nil
}

// ClusterExecutorFor adapts a dist.Coordinator into Config.ExecutorFor: the
// detection job's tasks ship to the coordinator's workers, everything else
// stays in-process.
func ClusterExecutorFor(coord *dist.Coordinator) func(pl *plan.Plan, params detect.Params, seed int64) (mapreduce.Executor, error) {
	return func(pl *plan.Plan, params detect.Params, seed int64) (mapreduce.Executor, error) {
		spec, err := DetectJobSpec(pl, params, seed)
		if err != nil {
			return nil, err
		}
		return coord.Executor(spec), nil
	}
}
