package core

import (
	"encoding/binary"
	"fmt"
	"time"

	"dod/internal/codec"
	"dod/internal/detect"
	"dod/internal/geom"
	"dod/internal/mapreduce"
	"dod/internal/obs"
	"dod/internal/plan"
)

// Counter names used by the DOD jobs. "work" counters feed the cluster
// simulator; the others are reported for analysis.
const (
	counterMapWork        = "work.map"
	counterReduceWork     = "work.reduce"
	counterCoreRecords    = "records.core"
	counterSupportRecords = "records.support"
	counterDistComps      = "detect.distcomps"
	counterPointsIndexed  = "detect.indexed"
	counterOutliers       = "detect.outliers"
)

// detectionMapper implements the map function of Fig. 3: one core record
// per point, one support record per supporting partition.
func detectionMapper(pl *plan.Plan) mapreduce.MapperFunc {
	return func(ctx *mapreduce.TaskContext, split mapreduce.Split, emit mapreduce.Emit) error {
		points, err := codec.DecodePoints(split.Data)
		if err != nil {
			return fmt.Errorf("core: split %s: %w", split.Name, err)
		}
		var work int64
		for _, p := range points {
			core, supports := pl.Locate(p)
			emit(uint64(core), codec.AppendTaggedPoint(nil, codec.TagCore, p))
			work += 1 + int64(len(supports))
			ctx.Inc(counterCoreRecords, 1)
			for _, s := range supports {
				emit(uint64(s), codec.AppendTaggedPoint(nil, codec.TagSupport, p))
				ctx.Inc(counterSupportRecords, 1)
			}
		}
		ctx.Inc(counterMapWork, work)
		return nil
	}
}

// detectionReducer implements the reduce function of Fig. 3: split the
// group into core and support lists, run the partition's assigned detector,
// and report outliers among the core points. Each partition's detector
// choice and runtime is recorded as a "partition.detect" span on tr.
func detectionReducer(pl *plan.Plan, params detect.Params, seed int64, tr *obs.Trace) mapreduce.ReducerFunc {
	return func(ctx *mapreduce.TaskContext, key uint64, values [][]byte, emit mapreduce.Emit) error {
		if key >= uint64(len(pl.Partitions)) {
			return fmt.Errorf("core: reduce key %d out of range (%d partitions)", key, len(pl.Partitions))
		}
		core, support, err := decodeTaggedGroup(values)
		if err != nil {
			return fmt.Errorf("core: partition %d: %w", key, err)
		}
		part := pl.Partitions[key]
		detector := detect.New(part.Algo, seed+int64(key))
		start := time.Now()
		res := detector.Detect(core, support, params)
		tr.Add("partition.detect", start, time.Since(start),
			obs.Int("partition", int64(key)),
			obs.Str("algo", part.Algo.String()),
			obs.Int("core", int64(len(core))),
			obs.Int("support", int64(len(support))),
			obs.Int("distcomps", res.Stats.DistComps),
			obs.Int("outliers", int64(len(res.OutlierIDs))))
		for _, id := range res.OutlierIDs {
			emit(key, binary.AppendUvarint(nil, id))
		}
		ctx.Inc(counterReduceWork, res.Stats.Cost()+int64(len(values)))
		ctx.Inc(counterDistComps, res.Stats.DistComps)
		ctx.Inc(counterPointsIndexed, res.Stats.PointsIndexed)
		ctx.Inc(counterOutliers, int64(len(res.OutlierIDs)))
		return nil
	}
}

// decodeTaggedGroup splits a reducer value group into core and support
// point lists by their record tags.
func decodeTaggedGroup(values [][]byte) (core, support []geom.Point, err error) {
	for _, v := range values {
		tag, p, _, err := codec.DecodeTaggedPoint(v)
		if err != nil {
			return nil, nil, err
		}
		switch tag {
		case codec.TagCore:
			core = append(core, p)
		case codec.TagSupport:
			support = append(support, p)
		default:
			return nil, nil, fmt.Errorf("unknown record tag %d", tag)
		}
	}
	return core, support, nil
}

// decodeOutlierIDs extracts the outlier IDs from a detection job's output.
func decodeOutlierIDs(pairs []mapreduce.Pair) ([]uint64, error) {
	ids := make([]uint64, 0, len(pairs))
	for _, p := range pairs {
		id, n := binary.Uvarint(p.Value)
		if n <= 0 {
			return nil, fmt.Errorf("core: malformed outlier record for key %d", p.Key)
		}
		ids = append(ids, id)
	}
	return ids, nil
}
