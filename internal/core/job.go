package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"dod/internal/codec"
	"dod/internal/detect"
	"dod/internal/geom"
	"dod/internal/mapreduce"
	"dod/internal/obs"
	"dod/internal/plan"
)

// Counter names used by the DOD jobs. "work" counters feed the cluster
// simulator; the others are reported for analysis.
const (
	counterMapWork        = "work.map"
	counterReduceWork     = "work.reduce"
	counterCoreRecords    = "records.core"
	counterSupportRecords = "records.support"
	counterDistComps      = "detect.distcomps"
	counterPointsIndexed  = "detect.indexed"
	counterOutliers       = "detect.outliers"
)

// taskScratch is the per-task columnar decode buffer. One pooled pair of
// point sets serves both sides of a job: mappers decode their whole split
// into core (reusing its arrays split after split), reducers decode a value
// group into core/supp and then run the detector straight off the columnar
// layout. Pooling keeps the steady-state reduce path free of per-group
// slice churn — tasks borrow grown-once arrays instead of reallocating one
// []geom.Point plus one Coords slice per record.
type taskScratch struct {
	core, supp geom.PointSet
}

var scratchPool = sync.Pool{New: func() any { return new(taskScratch) }}

// detectionMapper implements the map function of Fig. 3: one core record
// per point, one support record per supporting partition.
func detectionMapper(pl *plan.Plan) mapreduce.MapperFunc {
	return func(ctx *mapreduce.TaskContext, split mapreduce.Split, emit mapreduce.Emit) error {
		sc := scratchPool.Get().(*taskScratch)
		defer scratchPool.Put(sc)
		sc.core.Clear()
		if err := codec.DecodePointsInto(split.Data, &sc.core); err != nil {
			return fmt.Errorf("core: split %s: %w", split.Name, err)
		}
		var work int64
		for i, n := 0, sc.core.Len(); i < n; i++ {
			p := sc.core.At(i) // aliased view; Locate and the codec copy, never retain
			core, supports := pl.Locate(p)
			emit(uint64(core), codec.AppendTaggedPoint(nil, codec.TagCore, p))
			work += 1 + int64(len(supports))
			ctx.Inc(counterCoreRecords, 1)
			for _, s := range supports {
				emit(uint64(s), codec.AppendTaggedPoint(nil, codec.TagSupport, p))
				ctx.Inc(counterSupportRecords, 1)
			}
		}
		ctx.Inc(counterMapWork, work)
		return nil
	}
}

// detectionReducer implements the reduce function of Fig. 3: split the
// group into core and support lists, run the partition's assigned detector,
// and report outliers among the core points. Each partition's detector
// choice and runtime is recorded as a "partition.detect" span on the task's
// trace — the job trace in-process, a shipped-back per-task trace on a
// remote worker.
func detectionReducer(pl *plan.Plan, params detect.Params, seed int64) mapreduce.ReducerFunc {
	return func(ctx *mapreduce.TaskContext, key uint64, values [][]byte, emit mapreduce.Emit) error {
		if key >= uint64(len(pl.Partitions)) {
			return fmt.Errorf("core: reduce key %d out of range (%d partitions)", key, len(pl.Partitions))
		}
		sc := scratchPool.Get().(*taskScratch)
		defer scratchPool.Put(sc)
		nCore, err := decodeTaggedGroupSet(values, sc)
		if err != nil {
			return fmt.Errorf("core: partition %d: %w", key, err)
		}
		nSupport := sc.supp.Len()
		if nCore > 0 {
			// Neighbor pool = core ∪ support, core first, so point i < nCore
			// is a core point — the layout detect.DetectSet expects.
			sc.core.AppendSet(&sc.supp)
		}
		part := pl.Partitions[key]
		detector := detect.New(part.Algo, seed+int64(key))
		start := time.Now()
		res := detect.DetectSet(detector, &sc.core, nCore, params)
		ctx.Trace.Add("partition.detect", start, time.Since(start),
			obs.Int("partition", int64(key)),
			obs.Str("algo", part.Algo.String()),
			obs.Int("core", int64(nCore)),
			obs.Int("support", int64(nSupport)),
			obs.Int("distcomps", res.Stats.DistComps),
			obs.Int("outliers", int64(len(res.OutlierIDs))))
		for _, id := range res.OutlierIDs {
			emit(key, binary.AppendUvarint(nil, id))
		}
		ctx.Inc(counterReduceWork, res.Stats.Cost()+int64(len(values)))
		ctx.Inc(counterDistComps, res.Stats.DistComps)
		ctx.Inc(counterPointsIndexed, res.Stats.PointsIndexed)
		ctx.Inc(counterOutliers, int64(len(res.OutlierIDs)))
		return nil
	}
}

// decodeTaggedGroupSet splits a reducer value group into the scratch's core
// and supp sets by record tag, decoding every point straight into the
// columnar arrays (no intermediate []geom.Point). It returns the core count;
// the caller decides whether to merge supp into core (the detection job's
// neighbor pool) or ignore it (the Domain baseline detects on core alone).
func decodeTaggedGroupSet(values [][]byte, sc *taskScratch) (nCore int, err error) {
	sc.core.Clear()
	sc.supp.Clear()
	for _, v := range values {
		if len(v) == 0 {
			return 0, codec.ErrTruncated
		}
		var target *geom.PointSet
		switch v[0] {
		case codec.TagCore:
			target = &sc.core
		case codec.TagSupport:
			target = &sc.supp
		default:
			return 0, fmt.Errorf("unknown record tag %d", v[0])
		}
		if _, _, err := codec.DecodeTaggedPointInto(v, target); err != nil {
			return 0, err
		}
	}
	return sc.core.Len(), nil
}

// decodeOutlierIDs extracts the outlier IDs from a detection job's output.
func decodeOutlierIDs(pairs []mapreduce.Pair) ([]uint64, error) {
	ids := make([]uint64, 0, len(pairs))
	for _, p := range pairs {
		id, n := binary.Uvarint(p.Value)
		if n <= 0 {
			return nil, fmt.Errorf("core: malformed outlier record for key %d", p.Key)
		}
		ids = append(ids, id)
	}
	return ids, nil
}
