package core

import (
	"context"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"dod/internal/detect"
	"dod/internal/dfs"
	"dod/internal/geom"
	"dod/internal/plan"
)

var testParams = detect.Params{R: 5, K: 4}

// makeSkewed builds a dataset with a dense cluster, a medium cluster,
// sparse background, and a few isolated outliers.
func makeSkewed(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, 0, n)
	id := uint64(0)
	add := func(x, y float64) {
		pts = append(pts, geom.Point{ID: id, Coords: []float64{x, y}})
		id++
	}
	for i := 0; i < n*6/10; i++ { // dense city
		add(20+rng.NormFloat64()*3, 20+rng.NormFloat64()*3)
	}
	for i := 0; i < n*3/10; i++ { // medium town
		add(70+rng.NormFloat64()*8, 60+rng.NormFloat64()*8)
	}
	for i := 0; i < n/10; i++ { // sparse countryside
		add(rng.Float64()*100, rng.Float64()*100)
	}
	// A few guaranteed isolated outliers near the corners.
	add(1, 99)
	add(99, 1)
	add(99, 99)
	return pts
}

// bruteForceIDs is the semantic ground truth.
func bruteForceIDs(points []geom.Point, params detect.Params) []uint64 {
	res := detect.New(detect.BruteForce, 0).Detect(points, nil, params)
	ids := append([]uint64(nil), res.OutlierIDs...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

var allPlanners = []plan.Planner{plan.Domain, plan.UniSpace, plan.DDriven, plan.CDriven, plan.DMT}

// TestDistributedMatchesCentralized is the framework's correctness theorem
// (Lemma 3.1 + Sec. III-A's "correctly leads to DOD identifying all
// outliers"): every planner/detector combination must reproduce the brute-
// force outlier set exactly.
func TestDistributedMatchesCentralized(t *testing.T) {
	points := makeSkewed(1200, 1)
	want := bruteForceIDs(points, testParams)
	if len(want) == 0 {
		t.Fatal("test data has no outliers; fixture broken")
	}
	input, err := InputFromPoints(points, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, planner := range allPlanners {
		for _, det := range []detect.Kind{detect.NestedLoop, detect.CellBased} {
			rep, err := Run(context.Background(), input, Config{
				Params:  testParams,
				Planner: planner,
				PlanOpts: plan.Options{
					NumReducers:   4,
					NumPartitions: 9,
					Detector:      det,
				},
				SampleRate: 1.0, // exact statistics: deterministic plans
				Seed:       7,
			})
			if err != nil {
				t.Fatalf("%s/%v: %v", planner.Name(), det, err)
			}
			if !reflect.DeepEqual(rep.Outliers, want) {
				t.Errorf("%s/%v: got %d outliers %v, want %d %v",
					planner.Name(), det, len(rep.Outliers), rep.Outliers, len(want), want)
			}
		}
	}
}

func TestDistributedMatchesCentralizedAcrossScales(t *testing.T) {
	for _, n := range []int{50, 300, 3000} {
		points := makeSkewed(n, int64(n))
		want := bruteForceIDs(points, testParams)
		input, err := InputFromPoints(points, 128)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(context.Background(), input, Config{
			Params:     testParams,
			Planner:    plan.DMT,
			PlanOpts:   plan.Options{NumReducers: 3},
			SampleRate: 1.0,
			Seed:       int64(n),
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !reflect.DeepEqual(rep.Outliers, want) {
			t.Errorf("n=%d: got %v want %v", n, rep.Outliers, want)
		}
	}
}

func TestDistributedWithSampledStatistics(t *testing.T) {
	// A realistic (sub-1.0) sampling rate must still give exact results —
	// the sample only shapes the plan, never the verdicts.
	points := makeSkewed(5000, 3)
	want := bruteForceIDs(points, testParams)
	input, err := InputFromPoints(points, 500)
	if err != nil {
		t.Fatal(err)
	}
	for _, planner := range []plan.Planner{plan.DDriven, plan.CDriven, plan.DMT} {
		rep, err := Run(context.Background(), input, Config{
			Params:     testParams,
			Planner:    planner,
			PlanOpts:   plan.Options{NumReducers: 4, NumPartitions: 16, Detector: detect.CellBased},
			SampleRate: 0.1,
			Seed:       11,
		})
		if err != nil {
			t.Fatalf("%s: %v", planner.Name(), err)
		}
		if !reflect.DeepEqual(rep.Outliers, want) {
			t.Errorf("%s with 10%% sample: wrong outliers", planner.Name())
		}
	}
}

func TestDistributedSurvivesTaskFailures(t *testing.T) {
	points := makeSkewed(800, 5)
	want := bruteForceIDs(points, testParams)
	input, err := InputFromPoints(points, 100)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), input, Config{
		Params:      testParams,
		Planner:     plan.DMT,
		PlanOpts:    plan.Options{NumReducers: 4},
		SampleRate:  1.0,
		Seed:        13,
		FailureRate: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Outliers, want) {
		t.Error("failure injection changed the outlier set")
	}
}

func TestDomainBaselineTwoJobs(t *testing.T) {
	points := makeSkewed(1000, 9)
	input, err := InputFromPoints(points, 200)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), input, Config{
		Params:   testParams,
		Planner:  plan.Domain,
		PlanOpts: plan.Options{NumReducers: 4, NumPartitions: 9, Detector: detect.NestedLoop},
		Seed:     15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumJobs != 2 {
		t.Errorf("Domain baseline ran %d jobs, want 2", rep.NumJobs)
	}
	if rep.SupportRecords != 0 {
		t.Errorf("Domain baseline shuffled %d support records, want 0", rep.SupportRecords)
	}
	if !reflect.DeepEqual(rep.Outliers, bruteForceIDs(points, testParams)) {
		t.Error("Domain baseline produced wrong outliers")
	}
}

func TestSinglePassPlannersRunOneDetectionJob(t *testing.T) {
	points := makeSkewed(500, 17)
	input, _ := InputFromPoints(points, 100)
	rep, err := Run(context.Background(), input, Config{
		Params:     testParams,
		Planner:    plan.UniSpace,
		PlanOpts:   plan.Options{NumReducers: 2, NumPartitions: 4, Detector: detect.CellBased},
		SampleRate: 1.0,
		Seed:       19,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumJobs != 1 {
		t.Errorf("uniSpace ran %d jobs, want 1 (no preprocessing, single pass)", rep.NumJobs)
	}
	if rep.Simulated.Preprocess != 0 {
		t.Errorf("uniSpace has preprocessing time %v, want 0", rep.Simulated.Preprocess)
	}
	if rep.SupportRecords == 0 {
		t.Error("uniSpace should shuffle support records")
	}
}

func TestDMTReportsPreprocessing(t *testing.T) {
	points := makeSkewed(2000, 21)
	input, _ := InputFromPoints(points, 200)
	rep, err := Run(context.Background(), input, Config{
		Params:     testParams,
		Planner:    plan.DMT,
		PlanOpts:   plan.Options{NumReducers: 4},
		SampleRate: 0.5,
		Seed:       23,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumJobs != 2 { // preprocessing + detection
		t.Errorf("DMT ran %d jobs, want 2", rep.NumJobs)
	}
	if rep.Simulated.Preprocess == 0 {
		t.Error("DMT preprocessing time missing")
	}
	if rep.Simulated.Reduce == 0 || rep.Simulated.Map == 0 {
		t.Errorf("missing stage times: %+v", rep.Simulated)
	}
	if rep.ReduceImbalance < 1 {
		t.Errorf("ReduceImbalance = %g, want >= 1", rep.ReduceImbalance)
	}
}

func TestRunValidatesParams(t *testing.T) {
	points := makeSkewed(100, 25)
	input, _ := InputFromPoints(points, 50)
	if _, err := Run(context.Background(), input, Config{Params: detect.Params{R: -1, K: 2}}); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestInputFromPoints(t *testing.T) {
	points := makeSkewed(250, 27)
	input, err := InputFromPoints(points, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(input.Splits) != 3 {
		t.Errorf("got %d splits, want 3", len(input.Splits))
	}
	if input.Count != len(points) || input.Dim != 2 {
		t.Errorf("Count=%d Dim=%d", input.Count, input.Dim)
	}
	for _, p := range points {
		if !input.Domain.Contains(p) {
			t.Fatalf("domain %v misses %v", input.Domain, p)
		}
	}
	if _, err := InputFromPoints(nil, 10); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestDFSRoundTrip(t *testing.T) {
	points := makeSkewed(2000, 29)
	store := dfs.NewStore(dfs.Config{BlockSize: 8 * 1024, NumNodes: 5, Seed: 1})
	if err := WritePoints(store, "/data/test", points); err != nil {
		t.Fatal(err)
	}
	input, err := InputFromDFS(store, "/data/test")
	if err != nil {
		t.Fatal(err)
	}
	if input.Count != len(points) {
		t.Fatalf("Count = %d, want %d", input.Count, len(points))
	}
	if len(input.Splits) < 2 {
		t.Errorf("expected multiple block splits, got %d", len(input.Splits))
	}
	// End-to-end through DFS input must match the in-memory path.
	want := bruteForceIDs(points, testParams)
	rep, err := Run(context.Background(), input, Config{
		Params:     testParams,
		Planner:    plan.DMT,
		PlanOpts:   plan.Options{NumReducers: 3},
		SampleRate: 1.0,
		Seed:       31,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Outliers, want) {
		t.Error("DFS-sourced run produced wrong outliers")
	}
}

func TestInputFromDFSMissing(t *testing.T) {
	store := dfs.NewStore(dfs.Config{NumNodes: 3})
	if _, err := InputFromDFS(store, "/nope"); err == nil {
		t.Error("missing dir accepted")
	}
}

func TestDetectCentralized(t *testing.T) {
	points := makeSkewed(500, 33)
	want := bruteForceIDs(points, testParams)
	for _, kind := range []detect.Kind{detect.NestedLoop, detect.CellBased, detect.KDTree} {
		res := DetectCentralized(points, kind, testParams, 35)
		got := append([]uint64(nil), res.OutlierIDs...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%v centralized mismatch", kind)
		}
	}
}

func TestHigherDimensionalEndToEnd(t *testing.T) {
	// 3D data exercises the generic-d paths end to end.
	rng := rand.New(rand.NewSource(37))
	pts := make([]geom.Point, 600)
	for i := range pts {
		pts[i] = geom.Point{ID: uint64(i), Coords: []float64{
			rng.NormFloat64() * 10, rng.NormFloat64() * 10, rng.NormFloat64() * 10,
		}}
	}
	params := detect.Params{R: 4, K: 5}
	res := detect.New(detect.BruteForce, 0).Detect(pts, nil, params)
	want := append([]uint64(nil), res.OutlierIDs...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })

	input, _ := InputFromPoints(pts, 100)
	rep, err := Run(context.Background(), input, Config{
		Params:        params,
		Planner:       plan.DMT,
		PlanOpts:      plan.Options{NumReducers: 3},
		SampleRate:    1.0,
		BucketsPerDim: 8,
		Seed:          39,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Outliers, want) {
		t.Errorf("3D: got %d outliers, want %d", len(rep.Outliers), len(want))
	}
}
