package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"dod/internal/cluster"
	"dod/internal/detect"
	"dod/internal/geom"
	"dod/internal/mapreduce"
	"dod/internal/obs"
	"dod/internal/plan"
	"dod/internal/sample"
)

// Simulated-cluster calibration constants. Absolute values are arbitrary
// (the experiments compare ratios); what matters is that task durations are
// proportional to deterministic work counters, not to the local machine's
// scheduling noise.
const (
	// WorkRate is simulated work units (distance computations, indexed
	// points, records) per second per task slot.
	WorkRate = 25e6
	// ShuffleRate is simulated aggregate shuffle bandwidth in bytes/sec.
	ShuffleRate = 500e6
	// IORate is simulated per-slot DFS read bandwidth in bytes/sec. Every
	// job charges each task for (re)reading its input, so multi-job plans
	// (the Domain baseline) pay the "prohibitive costs involved in reading,
	// writing, and re-distribution of the data over a series of separate
	// jobs" that Sec. I attributes to them.
	IORate = 100e6
)

// Config controls one end-to-end DOD run.
type Config struct {
	Params  detect.Params
	Planner plan.Planner
	// PlanOpts carries reducer/partition counts and DMT settings. Its
	// Params field is overwritten with Config.Params.
	PlanOpts plan.Options

	SampleRate    float64 // preprocessing sampling rate Υ; default 0.005
	BucketsPerDim int     // mini buckets per dimension; default 32
	Seed          int64

	Parallelism int     // local goroutines for the in-process engine
	FailureRate float64 // injected task failure rate (with retries)

	// RetryBackoff is the base delay between attempts of a failed task,
	// doubling per attempt. Zero retries immediately (the in-process
	// default); the cluster engine sets a real backoff.
	RetryBackoff time.Duration

	// ExecutorFor, when set, supplies the task executor for the detection
	// job once the plan is known — the hook the cluster engine uses to
	// ship map and reduce tasks to remote workers. The preprocessing job
	// (tiny: it reads the Υ-sample) always runs in-process on the
	// coordinator. Nil runs everything in-process. Only single-pass
	// strategies (SupportR > 0) are supported remotely: the Domain
	// baseline's second job has its own mapper/reducer pair that workers
	// do not know how to build.
	ExecutorFor func(pl *plan.Plan, params detect.Params, seed int64) (mapreduce.Executor, error)

	Cluster cluster.Config // simulated cluster; default the paper's 40×8
}

func (c Config) withDefaults() Config {
	if c.SampleRate <= 0 {
		c.SampleRate = sample.DefaultRate
	}
	if c.BucketsPerDim < 1 {
		c.BucketsPerDim = 32
	}
	if c.Cluster.Slots() <= 1 && c.Cluster.Nodes == 0 {
		c.Cluster = cluster.PaperCluster
	}
	return c
}

// Report is the outcome of a DOD run: the verdicts plus the execution
// profile the experiments plot.
type Report struct {
	Plan     *plan.Plan
	Outliers []uint64 // sorted IDs

	// Engine names what executed the detection tasks: "local" (in-process
	// goroutines) or "cluster" (remote workers over the network). Under
	// "cluster", the Wall breakdown below is a real distributed makespan —
	// network shipping included — while Simulated remains the paper's
	// modeled 40-node replay; comparing the two is exactly the real-vs-
	// simulated check the simulator could never provide by itself.
	Engine string

	// Trace is the structured execution record: one span per pipeline
	// stage ("preprocess", "plan", "map", "shuffle", "reduce") plus one
	// "partition.detect" span per partition annotated with the chosen
	// detector and its work counters. The Wall breakdown below is derived
	// from it.
	Trace *obs.Trace

	// Simulated is the paper-comparable stage breakdown: per-task work
	// counters replayed through the cluster simulator.
	Simulated cluster.PhaseBreakdown
	// Wall is the in-process wall-clock breakdown of the same stages,
	// derived from Trace.
	Wall cluster.PhaseBreakdown

	ShuffleBytes   int64
	ShuffleRecords int64
	CoreRecords    int64
	SupportRecords int64
	DistComps      int64
	PointsIndexed  int64

	// ReduceImbalance is max/mean simulated reduce-task load (1 = perfect).
	ReduceImbalance float64
	NumJobs         int
}

// Run executes the full DOD workflow of Fig. 6 on the input: the
// preprocessing job (when the planner needs statistics), the single-pass
// detection job, and — for the Domain baseline — the second verification
// job.
//
// Cancellation is cooperative: between pipeline stages and between reduce
// key groups, ctx is polled and the run aborts with ctx's error. Every run
// records a structured trace (Report.Trace) from which the Wall breakdown
// is derived.
func Run(ctx context.Context, input *Input, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Planner == nil {
		cfg.Planner = plan.DMT
	}

	tr := obs.NewTrace("dod.run")
	rep := &Report{Trace: tr, Engine: "local"}
	if cfg.ExecutorFor != nil {
		rep.Engine = "cluster"
	}

	// ---- Preprocessing: sampling + plan generation ----
	var hist *sample.Histogram
	if cfg.Planner.NeedsStats() {
		sCfg := sample.Config{
			Domain:        input.Domain,
			BucketsPerDim: cfg.BucketsPerDim,
			Rate:          cfg.SampleRate,
			Seed:          cfg.Seed,
		}
		sp := tr.Start("preprocess").SetAttr(
			obs.Int("splits", int64(len(input.Splits))),
			obs.Int("buckets_per_dim", int64(cfg.BucketsPerDim)))
		var res *mapreduce.Result
		var err error
		hist, res, err = sample.RunJobContext(ctx, sCfg, mapreduce.Config{
			Parallelism: cfg.Parallelism,
			FailureRate: cfg.FailureRate,
			Seed:        cfg.Seed + 1,
		}, input.Splits)
		if err != nil {
			return nil, fmt.Errorf("core: preprocessing: %w", err)
		}
		sp.SetAttr(obs.Int("sampled", res.Metrics.Counter("sample.sampled"))).End()
		pre := simulateJob(cfg.Cluster, res, input.Splits)
		rep.Simulated.Preprocess = pre.Map + pre.Shuffle + pre.Reduce
		rep.NumJobs++
	} else {
		// Domain/uniSpace only need the domain rectangle.
		grid := geom.NewGrid(input.Domain, dimsFor(input.Domain.Dim(), cfg.BucketsPerDim))
		hist = &sample.Histogram{Grid: grid, Counts: make([]float64, grid.NumCells()), Rate: 1}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	opts := cfg.PlanOpts
	opts.Params = cfg.Params
	psp := tr.Start("plan").SetAttr(obs.Str("planner", cfg.Planner.Name()))
	pl, err := cfg.Planner.Build(hist, opts)
	if err != nil {
		return nil, fmt.Errorf("core: planning: %w", err)
	}
	psp.SetAttr(
		obs.Int("partitions", int64(len(pl.Partitions))),
		obs.Int("reducers", int64(pl.NumReducers))).End()
	rep.Plan = pl
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// ---- Detection job (single pass, Fig. 2/3) ----
	mrCfg := mapreduce.Config{
		NumReducers:  pl.NumReducers,
		Parallelism:  cfg.Parallelism,
		Partitioner:  func(key uint64, n int) int { return pl.ReducerFor(key) },
		FailureRate:  cfg.FailureRate,
		RetryBackoff: cfg.RetryBackoff,
		Trace:        tr,
		Seed:         cfg.Seed + 2,
	}
	if cfg.ExecutorFor != nil {
		if pl.SupportR <= 0 {
			return nil, fmt.Errorf("core: the cluster engine requires a single-pass strategy (supporting areas); the Domain baseline is local-only")
		}
		exec, err := cfg.ExecutorFor(pl, cfg.Params, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("core: cluster executor: %w", err)
		}
		mrCfg.Executor = exec
	}

	if pl.SupportR > 0 {
		res, err := mapreduce.RunContext(ctx, mrCfg, input.Splits, detectionMapper(pl), detectionReducer(pl, cfg.Params, cfg.Seed))
		if err != nil {
			return nil, fmt.Errorf("core: detection: %w", err)
		}
		rep.Outliers, err = decodeOutlierIDs(res.Output)
		if err != nil {
			return nil, err
		}
		rep.NumJobs++
		accumulateJob(rep, cfg.Cluster, res, input.Splits, tr)
	} else {
		// ---- Domain baseline: two jobs ----
		res1, err := mapreduce.RunContext(ctx, mrCfg, input.Splits, detectionMapper(pl), domainJob1Reducer(pl, cfg.Params, cfg.Seed))
		if err != nil {
			return nil, fmt.Errorf("core: domain job 1: %w", err)
		}
		finals, cands, err := splitDomainJob1Output(res1.Output)
		if err != nil {
			return nil, err
		}
		rep.NumJobs++
		accumulateJob(rep, cfg.Cluster, res1, input.Splits, tr)
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		splits2 := append(append([]mapreduce.Split(nil), input.Splits...), mapreduce.Split{
			Name: candidatesSplitName,
			Data: encodeCandidates(cands),
		})
		res2, err := mapreduce.RunContext(ctx, mrCfg, splits2, domainJob2Mapper(pl, cfg.Params), domainJob2Reducer(cfg.Params))
		if err != nil {
			return nil, fmt.Errorf("core: domain job 2: %w", err)
		}
		confirmed, err := reconcileDomain(cands, res2.Output, cfg.Params.K)
		if err != nil {
			return nil, err
		}
		rep.Outliers = append(finals, confirmed...)
		rep.NumJobs++
		accumulateJob(rep, cfg.Cluster, res2, splits2, tr)
	}

	// The Wall breakdown is a view over the trace: stage spans are
	// summed across jobs, making the Report derivable from the trace
	// rather than a parallel bookkeeping structure.
	rep.Wall = cluster.PhaseBreakdown{
		Preprocess: tr.Total("preprocess"),
		Map:        tr.Total("map"),
		Shuffle:    tr.Total("shuffle"),
		Reduce:     tr.Total("reduce"),
	}

	sort.Slice(rep.Outliers, func(i, j int) bool { return rep.Outliers[i] < rep.Outliers[j] })
	return rep, nil
}

// dimsFor delegates to sample.DimsFor so the manual-histogram path caps
// high-dimensional grids exactly like the sampling job does.
func dimsFor(d, perDim int) []int {
	return sample.DimsFor(d, perDim)
}

// jobBreakdown is the simulated stage cost of one MapReduce job.
type jobBreakdown struct {
	Map, Shuffle, Reduce  time.Duration
	reduceImbalance       float64
	mapWall, reduceWall   time.Duration
	shuffleWall           time.Duration
	shuffleBytes, records int64
}

// simulateJob replays a job's per-task work counters through the cluster
// simulator. Map tasks carry the DFS replica placement of their input
// split, so the map phase is scheduled locality-aware (remote reads pay
// the input transfer again); reducers read the shuffled stream and have no
// locality.
func simulateJob(cfg cluster.Config, res *mapreduce.Result, splits []mapreduce.Split) jobBreakdown {
	taskFor := func(m mapreduce.TaskMetric, phase, counter string) cluster.Task {
		units := m.Counters[counter]
		if units < m.RecordsIn {
			units = m.RecordsIn // floor: every record is at least touched
		}
		cpu := float64(units) / WorkRate
		io := float64(m.BytesIn) / IORate
		return cluster.Task{
			Name:     fmt.Sprintf("%s-%04d", phase, m.TaskID),
			Duration: time.Duration((cpu + io) * float64(time.Second)),
		}
	}
	var mapTasks, reduceTasks []cluster.Task
	for _, m := range res.Metrics.MapTasks {
		task := taskFor(m, "map", counterMapWork)
		if m.TaskID < len(splits) && len(splits[m.TaskID].Replicas) > 0 {
			task.Preferred = splits[m.TaskID].Replicas
			task.RemotePenalty = time.Duration(float64(m.BytesIn) / IORate * float64(time.Second))
		}
		mapTasks = append(mapTasks, task)
	}
	for _, m := range res.Metrics.ReduceTasks {
		reduceTasks = append(reduceTasks, taskFor(m, "reduce", counterReduceWork))
	}
	reduceSched := cluster.RunPhase(cfg, reduceTasks)
	return jobBreakdown{
		Map:             cluster.RunPhasePlaced(cfg, mapTasks).Makespan,
		Shuffle:         time.Duration(float64(res.Metrics.ShuffleBytes) / ShuffleRate * float64(time.Second)),
		Reduce:          reduceSched.Makespan,
		reduceImbalance: reduceSched.Imbalance(),
		mapWall:         res.Metrics.MapWall,
		reduceWall:      res.Metrics.ReduceWall,
		shuffleWall:     res.Metrics.ShuffleWall,
		shuffleBytes:    res.Metrics.ShuffleBytes,
	}
}

// accumulateJob folds one detection-stage job into the report and records
// the job's map/shuffle/reduce stages as trace spans (start times are
// reconstructed backwards from the job's completion instant, so spans
// order correctly in the trace).
func accumulateJob(rep *Report, cfg cluster.Config, res *mapreduce.Result, splits []mapreduce.Split, tr *obs.Trace) {
	jb := simulateJob(cfg, res, splits)
	job := int64(rep.NumJobs - 1)
	reduceStart := time.Now().Add(-jb.reduceWall)
	shuffleStart := reduceStart.Add(-jb.shuffleWall)
	mapStart := shuffleStart.Add(-jb.mapWall)
	tr.Add("map", mapStart, jb.mapWall,
		obs.Int("job", job), obs.Int("tasks", int64(len(res.Metrics.MapTasks))))
	tr.Add("shuffle", shuffleStart, jb.shuffleWall,
		obs.Int("job", job),
		obs.Int("bytes", res.Metrics.ShuffleBytes),
		obs.Int("records", res.Metrics.ShuffleRecords))
	tr.Add("reduce", reduceStart, jb.reduceWall,
		obs.Int("job", job), obs.Int("tasks", int64(len(res.Metrics.ReduceTasks))))
	rep.Simulated.Map += jb.Map
	rep.Simulated.Shuffle += jb.Shuffle
	rep.Simulated.Reduce += jb.Reduce
	rep.ShuffleBytes += res.Metrics.ShuffleBytes
	rep.ShuffleRecords += res.Metrics.ShuffleRecords
	rep.CoreRecords += res.Metrics.Counter(counterCoreRecords)
	rep.SupportRecords += res.Metrics.Counter(counterSupportRecords)
	rep.DistComps += res.Metrics.Counter(counterDistComps)
	rep.PointsIndexed += res.Metrics.Counter(counterPointsIndexed)
	if jb.reduceImbalance > rep.ReduceImbalance {
		rep.ReduceImbalance = jb.reduceImbalance
	}
}

// DetectCentralized runs a single centralized detector over the whole
// dataset — the non-distributed reference the experiments of Sec. IV use.
func DetectCentralized(points []geom.Point, kind detect.Kind, params detect.Params, seed int64) detect.Result {
	return detect.New(kind, seed).Detect(points, nil, params)
}
