package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"dod/internal/detect"
	"dod/internal/geom"
	"dod/internal/plan"
)

// runDMT is a small helper for edge-case end-to-end runs.
func runDMT(t *testing.T, points []geom.Point, params detect.Params) *Report {
	t.Helper()
	input, err := InputFromPoints(points, 128)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), input, Config{
		Params:     params,
		Planner:    plan.DMT,
		PlanOpts:   plan.Options{NumReducers: 3},
		SampleRate: 1,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestExtremeParameters(t *testing.T) {
	points := makeSkewed(400, 51)

	// r spanning the whole domain: nobody is an outlier (with k < n).
	rep := runDMT(t, points, detect.Params{R: 1000, K: 4})
	if len(rep.Outliers) != 0 {
		t.Errorf("domain-spanning r: %d outliers, want 0", len(rep.Outliers))
	}

	// k exceeding the dataset size: everybody is an outlier.
	rep = runDMT(t, points, detect.Params{R: 5, K: len(points) + 1})
	if len(rep.Outliers) != len(points) {
		t.Errorf("k > n: %d outliers, want all %d", len(rep.Outliers), len(points))
	}

	// Tiny r: essentially everybody is an outlier except exact co-locations.
	rep = runDMT(t, points, detect.Params{R: 1e-12, K: 1})
	if len(rep.Outliers) < len(points)*9/10 {
		t.Errorf("tiny r: only %d outliers of %d", len(rep.Outliers), len(points))
	}
}

func TestDuplicatePointsEverywhere(t *testing.T) {
	// 100 points at one location, 50 at another, 1 alone: duplicates are
	// mutual neighbors at distance zero.
	var points []geom.Point
	id := uint64(0)
	for i := 0; i < 100; i++ {
		points = append(points, geom.Point{ID: id, Coords: []float64{10, 10}})
		id++
	}
	for i := 0; i < 50; i++ {
		points = append(points, geom.Point{ID: id, Coords: []float64{90, 90}})
		id++
	}
	points = append(points, geom.Point{ID: id, Coords: []float64{50, 50}})

	want := bruteForceIDs(points, testParams)
	rep := runDMT(t, points, testParams)
	if !reflect.DeepEqual(rep.Outliers, want) {
		t.Errorf("duplicates: got %v, want %v", rep.Outliers, want)
	}
	if len(want) != 1 || want[0] != id {
		t.Errorf("fixture expectation: lone point should be the only outlier, got %v", want)
	}
}

func TestCollinearOneDimensionalStructure(t *testing.T) {
	// All points on a line (degenerate second dimension).
	var points []geom.Point
	rng := rand.New(rand.NewSource(53))
	for i := 0; i < 500; i++ {
		points = append(points, geom.Point{ID: uint64(i), Coords: []float64{rng.Float64() * 100, 42}})
	}
	points = append(points, geom.Point{ID: 9999, Coords: []float64{250, 42}})
	want := bruteForceIDs(points, testParams)
	rep := runDMT(t, points, testParams)
	if !reflect.DeepEqual(rep.Outliers, want) {
		t.Errorf("collinear: got %d outliers, want %d", len(rep.Outliers), len(want))
	}
}

func TestOneDimensionalEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	var points []geom.Point
	for i := 0; i < 600; i++ {
		points = append(points, geom.Point{ID: uint64(i), Coords: []float64{rng.NormFloat64() * 10}})
	}
	points = append(points, geom.Point{ID: 9999, Coords: []float64{200}})
	params := detect.Params{R: 2, K: 3}
	want := bruteForceIDs(points, params)
	rep := runDMT(t, points, params)
	if !reflect.DeepEqual(rep.Outliers, want) {
		t.Errorf("1D: got %v, want %v", rep.Outliers, want)
	}
}

func TestAllDetectorKindsEndToEnd(t *testing.T) {
	points := makeSkewed(600, 57)
	want := bruteForceIDs(points, testParams)
	input, err := InputFromPoints(points, 128)
	if err != nil {
		t.Fatal(err)
	}
	for _, det := range []detect.Kind{detect.NestedLoop, detect.CellBased, detect.CellBasedL2, detect.KDTree, detect.Pivot} {
		rep, err := Run(context.Background(), input, Config{
			Params:     testParams,
			Planner:    plan.CDriven,
			PlanOpts:   plan.Options{NumReducers: 4, NumPartitions: 12, Detector: det},
			SampleRate: 1,
			Seed:       59,
		})
		if err != nil {
			t.Fatalf("%v: %v", det, err)
		}
		if !reflect.DeepEqual(rep.Outliers, want) {
			t.Errorf("%v: wrong outlier set", det)
		}
	}
}

func TestExtendedCandidateSetEndToEnd(t *testing.T) {
	points := makeSkewed(800, 61)
	want := bruteForceIDs(points, testParams)
	input, err := InputFromPoints(points, 128)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), input, Config{
		Params:  testParams,
		Planner: plan.DMT,
		PlanOpts: plan.Options{
			NumReducers: 4,
			Candidates: []detect.Kind{
				detect.NestedLoop, detect.CellBased, detect.CellBasedL2, detect.KDTree, detect.Pivot,
			},
		},
		SampleRate: 1,
		Seed:       63,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Outliers, want) {
		t.Error("extended candidate set changed the outlier set")
	}
}

func TestSinglePointDataset(t *testing.T) {
	points := []geom.Point{{ID: 7, Coords: []float64{3, 3}}}
	rep := runDMT(t, points, detect.Params{R: 1, K: 1})
	if len(rep.Outliers) != 1 || rep.Outliers[0] != 7 {
		t.Errorf("single point: %v", rep.Outliers)
	}
}

func TestManyReducersFewPoints(t *testing.T) {
	points := makeSkewed(60, 65)
	input, err := InputFromPoints(points, 16)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), input, Config{
		Params:     testParams,
		Planner:    plan.DMT,
		PlanOpts:   plan.Options{NumReducers: 32}, // more reducers than natural partitions
		SampleRate: 1,
		Seed:       67,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep.Outliers, bruteForceIDs(points, testParams)) {
		t.Error("over-provisioned reducers changed the result")
	}
}

func TestNegativeCoordinatesDomain(t *testing.T) {
	rng := rand.New(rand.NewSource(69))
	var points []geom.Point
	for i := 0; i < 500; i++ {
		points = append(points, geom.Point{ID: uint64(i), Coords: []float64{
			-500 + rng.Float64()*20, -300 + rng.Float64()*20,
		}})
	}
	points = append(points, geom.Point{ID: 9999, Coords: []float64{-400, -200}})
	want := bruteForceIDs(points, testParams)
	rep := runDMT(t, points, testParams)
	if !reflect.DeepEqual(rep.Outliers, want) {
		t.Error("negative-coordinate domain mismatch")
	}
}
