// Package core is the DOD driver: it wires the preprocessing job (sampling
// + plan generation, Fig. 6 top) and the outlier-detection job (Fig. 2/3)
// over the MapReduce engine, and implements the two-job Domain baseline the
// experiments compare against.
package core

import (
	"fmt"

	"dod/internal/codec"
	"dod/internal/dfs"
	"dod/internal/geom"
	"dod/internal/mapreduce"
)

// Input is a dataset ready for MapReduce consumption: record-aligned splits
// plus the domain metadata the planners need.
type Input struct {
	Splits []mapreduce.Split
	Domain geom.Rect
	Count  int
	Dim    int
}

// InputFromPoints packages in-memory points into splits of at most
// pointsPerSplit points each. The domain is the bounding box of the data.
func InputFromPoints(points []geom.Point, pointsPerSplit int) (*Input, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("core: empty dataset")
	}
	if pointsPerSplit < 1 {
		pointsPerSplit = 64 * 1024
	}
	in := &Input{
		Domain: geom.Bounds(points),
		Count:  len(points),
		Dim:    points[0].Dim(),
	}
	for i := 0; i < len(points); i += pointsPerSplit {
		j := i + pointsPerSplit
		if j > len(points) {
			j = len(points)
		}
		in.Splits = append(in.Splits, mapreduce.Split{
			Name: fmt.Sprintf("mem-%06d", i/pointsPerSplit),
			Data: codec.EncodePoints(points[i:j]),
		})
	}
	return in, nil
}

// WritePoints stores points into the DFS as record-aligned part files under
// dir, sized so each part fits in one DFS block (the HDFS layout DOD reads
// in Sec. III-B).
func WritePoints(store *dfs.Store, dir string, points []geom.Point) error {
	if len(points) == 0 {
		return fmt.Errorf("core: empty dataset")
	}
	// Estimate encoded size per point from a small prefix to pick a chunk
	// size that fits one block.
	sampleEnd := 64
	if sampleEnd > len(points) {
		sampleEnd = len(points)
	}
	probe := codec.EncodePoints(points[:sampleEnd])
	perPoint := len(probe)/sampleEnd + 1
	perChunk := store.BlockSize() / perPoint
	if perChunk < 1 {
		perChunk = 1
	}
	part := 0
	for i := 0; i < len(points); i += perChunk {
		j := i + perChunk
		if j > len(points) {
			j = len(points)
		}
		path := fmt.Sprintf("%s/part-%05d", dir, part)
		if err := store.Write(path, codec.EncodePoints(points[i:j])); err != nil {
			return err
		}
		part++
	}
	return nil
}

// InputFromDFS builds an Input from the part files under dir, one split per
// DFS block. Parts written by WritePoints are block-aligned, so every split
// decodes independently.
func InputFromDFS(store *dfs.Store, dir string) (*Input, error) {
	var in Input
	found := false
	for _, path := range store.List() {
		if len(path) < len(dir)+1 || path[:len(dir)+1] != dir+"/" {
			continue
		}
		found = true
		blocks, err := store.Blocks(path)
		if err != nil {
			return nil, err
		}
		if len(blocks) != 1 {
			return nil, fmt.Errorf("core: part file %s spans %d blocks; use WritePoints for record-aligned parts", path, len(blocks))
		}
		points, err := codec.DecodePoints(blocks[0].Data)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", path, err)
		}
		if len(points) == 0 {
			continue
		}
		b := geom.Bounds(points)
		if in.Count == 0 {
			in.Domain = b
			in.Dim = points[0].Dim()
		} else {
			in.Domain = in.Domain.Union(b)
		}
		in.Count += len(points)
		in.Splits = append(in.Splits, mapreduce.Split{Name: path, Data: blocks[0].Data, Replicas: blocks[0].Replicas})
	}
	if !found || in.Count == 0 {
		return nil, fmt.Errorf("core: no data under %s", dir)
	}
	return &in, nil
}
