package core

import (
	"context"
	"testing"

	"dod/internal/cluster"
	"dod/internal/detect"
	"dod/internal/plan"
)

func TestReportAccounting(t *testing.T) {
	points := makeSkewed(1500, 71)
	input, err := InputFromPoints(points, 200)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), input, Config{
		Params:     testParams,
		Planner:    plan.DMT,
		PlanOpts:   plan.Options{NumReducers: 4},
		SampleRate: 1,
		Seed:       73,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every point produces exactly one core record in the detection job.
	if rep.CoreRecords != int64(len(points)) {
		t.Errorf("CoreRecords = %d, want %d", rep.CoreRecords, len(points))
	}
	// Shuffle records of the detection job = core + support.
	// (The preprocessing job's shuffle is excluded from these counters.)
	if rep.ShuffleRecords != rep.CoreRecords+rep.SupportRecords {
		t.Errorf("ShuffleRecords %d != core %d + support %d",
			rep.ShuffleRecords, rep.CoreRecords, rep.SupportRecords)
	}
	if rep.ShuffleBytes <= 0 {
		t.Error("ShuffleBytes not accounted")
	}
	// Wall-clock breakdown must be populated for every stage that ran.
	if rep.Wall.Preprocess <= 0 || rep.Wall.Map <= 0 || rep.Wall.Reduce <= 0 {
		t.Errorf("wall breakdown incomplete: %+v", rep.Wall)
	}
	// Simulated times are derived from deterministic counters: two
	// identical runs must agree exactly.
	rep2, err := Run(context.Background(), input, Config{
		Params:     testParams,
		Planner:    plan.DMT,
		PlanOpts:   plan.Options{NumReducers: 4},
		SampleRate: 1,
		Seed:       73,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Simulated != rep2.Simulated {
		t.Errorf("simulated breakdown not deterministic: %+v vs %+v", rep.Simulated, rep2.Simulated)
	}
	if rep.DistComps != rep2.DistComps || rep.ShuffleBytes != rep2.ShuffleBytes {
		t.Error("work counters not deterministic")
	}
}

func TestCustomClusterConfig(t *testing.T) {
	points := makeSkewed(800, 75)
	input, _ := InputFromPoints(points, 100)
	run := func(nodes int) *Report {
		rep, err := Run(context.Background(), input, Config{
			Params:     testParams,
			Planner:    plan.CDriven,
			PlanOpts:   plan.Options{NumReducers: 8, NumPartitions: 16, Detector: detect.NestedLoop},
			SampleRate: 1,
			Seed:       77,
			Cluster:    cluster.Config{Nodes: nodes, SlotsPerNode: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	small := run(1)  // one slot: phases serialize
	large := run(64) // plenty of slots
	if small.Simulated.Reduce <= large.Simulated.Reduce {
		t.Errorf("1-slot reduce %v should exceed 64-node reduce %v",
			small.Simulated.Reduce, large.Simulated.Reduce)
	}
	// The verdicts are identical regardless of the simulated cluster.
	if len(small.Outliers) != len(large.Outliers) {
		t.Error("cluster size changed verdicts")
	}
}
