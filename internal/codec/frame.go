package codec

import (
	"encoding/binary"
)

// Frames are the envelope of the distributed runtime's task and result
// messages (internal/dist): a message body is a sequence of frames, each a
// kind byte, a uvarint length, and the payload. Control metadata (a JSON
// header) and bulk data (splits, key groups, output pairs) travel as
// separate frames of one body, so the data plane stays in this package's
// binary format end to end.

// WireErrorf builds a malformed-wire-data error wrapping errs.ErrWireFormat,
// for callers (internal/dist) that layer messages on this wire format and
// want their parse failures in the same error family.
func WireErrorf(format string, args ...any) error {
	return corrupt(format, args...)
}

// MaxFramePayload bounds a single frame. Reduce groups carry whole
// partitions, so the bound is generous; it exists to turn a forged length
// into a typed error rather than an attempted huge allocation.
const MaxFramePayload = 1 << 31

// FrameSum is the reserved kind of the trailing integrity frame: its
// 8-byte payload is the FNV-64a checksum of every body byte before it.
// Transport-level corruption (a flipped bit in an HTTP body) would
// otherwise have a small but real chance of decoding into a *valid*
// message with wrong data — a silently wrong detection result. With the
// sum frame, corruption anywhere in the body is always a typed
// ErrWireFormat failure the runtime can retry, never an accepted lie.
const FrameSum byte = 0x7f

// Checksum is the integrity hash of the frame layer (FNV-64a: fast,
// dependency-free; this is corruption detection, not authentication).
func Checksum(data []byte) uint64 {
	// Inlined FNV-64a; hash/fnv would allocate a hasher per message.
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// AppendSumFrame seals buf with a FrameSum frame covering everything
// currently in it. Call last, after every data frame.
func AppendSumFrame(buf []byte) []byte {
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], Checksum(buf))
	return AppendFrame(buf, FrameSum, sum[:])
}

// StripSumFrame scans body's frame sequence, requires the final frame to
// be a FrameSum whose checksum covers everything before it, and returns
// the body with the sum frame removed. Any mismatch, a missing sum, or
// trailing bytes after it fail with an ErrWireFormat-family error.
func StripSumFrame(body []byte) ([]byte, error) {
	off := 0
	for off < len(body) {
		kind, payload, n, err := DecodeFrame(body[off:])
		if err != nil {
			return nil, err
		}
		if kind == FrameSum {
			if off+n != len(body) {
				return nil, corrupt("codec: %d bytes after integrity frame", len(body)-off-n)
			}
			if len(payload) != 8 {
				return nil, corrupt("codec: integrity frame payload is %d bytes, want 8", len(payload))
			}
			if got, want := Checksum(body[:off]), binary.LittleEndian.Uint64(payload); got != want {
				return nil, corrupt("codec: integrity checksum mismatch (corrupted in transit?)")
			}
			return body[:off], nil
		}
		off += n
	}
	return nil, corrupt("codec: message lacks integrity frame")
}

// AppendFrame appends a (kind, length, payload) frame to dst.
func AppendFrame(dst []byte, kind byte, payload []byte) []byte {
	dst = append(dst, kind)
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

// DecodeFrame decodes one frame from the front of buf, returning the kind,
// the payload (aliasing buf), and the bytes consumed. An empty buf returns
// ErrTruncated — iterate frames until the buffer is exhausted.
func DecodeFrame(buf []byte) (kind byte, payload []byte, n int, err error) {
	if len(buf) < 1 {
		return 0, nil, 0, ErrTruncated
	}
	kind = buf[0]
	size, m := binary.Uvarint(buf[1:])
	if m <= 0 {
		return 0, nil, 0, ErrTruncated
	}
	off := 1 + m
	if size > MaxFramePayload {
		return 0, nil, 0, corrupt("codec: frame payload %d exceeds limit", size)
	}
	if uint64(len(buf[off:])) < size {
		return 0, nil, 0, ErrTruncated
	}
	return kind, buf[off : off+int(size)], off + int(size), nil
}

// KV is one key/value record — the codec-level mirror of a MapReduce
// intermediate pair.
type KV struct {
	Key   uint64
	Value []byte
}

// AppendKVs appends a count-prefixed list of key/value records to dst.
func AppendKVs(dst []byte, kvs []KV) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(kvs)))
	for _, kv := range kvs {
		dst = binary.AppendUvarint(dst, kv.Key)
		dst = binary.AppendUvarint(dst, uint64(len(kv.Value)))
		dst = append(dst, kv.Value...)
	}
	return dst
}

// DecodeKVs decodes a list produced by AppendKVs. Values alias buf.
func DecodeKVs(buf []byte) ([]KV, int, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, 0, ErrTruncated
	}
	off := n
	// A record is at least 2 bytes (key byte + zero-length value).
	if count > uint64(len(buf[off:])/2) {
		return nil, 0, corrupt("codec: count %d exceeds buffer capacity", count)
	}
	kvs := make([]KV, 0, count)
	for i := uint64(0); i < count; i++ {
		key, m := binary.Uvarint(buf[off:])
		if m <= 0 {
			return nil, 0, ErrTruncated
		}
		off += m
		size, m := binary.Uvarint(buf[off:])
		if m <= 0 {
			return nil, 0, ErrTruncated
		}
		off += m
		if size > MaxFramePayload || uint64(len(buf[off:])) < size {
			return nil, 0, ErrTruncated
		}
		kvs = append(kvs, KV{Key: key, Value: buf[off : off+int(size)]})
		off += int(size)
	}
	return kvs, off, nil
}

// AppendBytesList appends a count-prefixed list of byte strings to dst —
// the wire shape of one reduce group's value list.
func AppendBytesList(dst []byte, values [][]byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(values)))
	for _, v := range values {
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		dst = append(dst, v...)
	}
	return dst
}

// DecodeBytesList decodes a list produced by AppendBytesList. Elements
// alias buf.
func DecodeBytesList(buf []byte) ([][]byte, int, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, 0, ErrTruncated
	}
	off := n
	if count > uint64(len(buf[off:])) {
		return nil, 0, corrupt("codec: count %d exceeds buffer capacity", count)
	}
	values := make([][]byte, 0, count)
	for i := uint64(0); i < count; i++ {
		size, m := binary.Uvarint(buf[off:])
		if m <= 0 {
			return nil, 0, ErrTruncated
		}
		off += m
		if size > MaxFramePayload || uint64(len(buf[off:])) < size {
			return nil, 0, ErrTruncated
		}
		values = append(values, buf[off:off+int(size)])
		off += int(size)
	}
	return values, off, nil
}
