//go:build go1.18

package codec

import (
	"errors"
	"math"
	"testing"

	"dod/internal/errs"
	"dod/internal/geom"
)

// FuzzDecodePointInto hammers the columnar hot-path decoder with arbitrary
// bytes. Invariants under fuzzing: no panic, no unbounded allocation, every
// failure is an errs.ErrWireFormat-family error, the set is untouched on
// failure, and anything the decoder accepts re-encodes to the bytes it
// consumed (given the canonical uvarint prefix the encoder emits).
func FuzzDecodePointInto(f *testing.F) {
	f.Add(AppendPoint(nil, geom.Point{ID: 7, Coords: []float64{1.5, -2.25}}))
	f.Add(AppendPoint(nil, geom.Point{ID: 0, Coords: nil}))
	f.Add(AppendPoint(nil, geom.Point{ID: math.MaxUint64, Coords: []float64{math.Inf(1), math.NaN(), 0}}))
	full := AppendPoint(nil, geom.Point{ID: 300, Coords: []float64{3.14}})
	for i := range full { // every truncation of a valid record
		f.Add(full[:i])
	}
	f.Add([]byte{})
	f.Add([]byte{0x80})                   // unterminated uvarint
	f.Add([]byte{1, 0xff, 0xff, 0xff, 3}) // implausible dimension

	f.Fuzz(func(t *testing.T, data []byte) {
		var set geom.PointSet
		n, err := DecodePointInto(data, &set)
		if err != nil {
			if !errors.Is(err, errs.ErrWireFormat) {
				t.Fatalf("non-wire-format error: %v", err)
			}
			if set.Len() != 0 || len(set.Coords) != 0 {
				t.Fatalf("failed decode mutated the set: %d ids, %d coords", set.Len(), len(set.Coords))
			}
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if set.Len() != 1 || len(set.Coords) != set.Dim {
			t.Fatalf("accepted decode left set inconsistent: %d ids, %d coords, dim %d",
				set.Len(), len(set.Coords), set.Dim)
		}

		// The scalar decoder must agree with the columnar one byte for byte.
		p, m, err := DecodePoint(data)
		if err != nil || m != n || p.ID != set.IDs[0] || len(p.Coords) != set.Dim {
			t.Fatalf("DecodePoint disagrees: %v n=%d vs %d, %+v", err, m, n, p)
		}

		// Re-encode and compare — NaN coordinates keep their exact bit
		// patterns through the float64 round-trip, so byte equality holds
		// whenever the input used canonical (minimal) uvarints, which we
		// verify by re-encoding the decoded header values.
		if again := AppendPoint(nil, p); string(again) != string(data[:n]) {
			// Non-canonical uvarint encodings decode fine but re-encode
			// shorter; only flag when lengths match (true corruption).
			if len(again) == n {
				t.Fatalf("re-encode mismatch:\n got %x\nwant %x", again, data[:n])
			}
		}
	})
}

// FuzzDecodeTaggedPointInto covers the tag-prefixed record path.
func FuzzDecodeTaggedPointInto(f *testing.F) {
	f.Add(AppendTaggedPoint(nil, TagCore, geom.Point{ID: 1, Coords: []float64{2}}))
	f.Add(AppendTaggedPoint(nil, TagSupport, geom.Point{ID: 2, Coords: []float64{-1, 1}}))
	f.Add([]byte{})
	f.Add([]byte{TagSupport})

	f.Fuzz(func(t *testing.T, data []byte) {
		var set geom.PointSet
		tag, n, err := DecodeTaggedPointInto(data, &set)
		if err != nil {
			if !errors.Is(err, errs.ErrWireFormat) {
				t.Fatalf("non-wire-format error: %v", err)
			}
			return
		}
		if n < 2 || n > len(data) || tag != data[0] {
			t.Fatalf("tag %d, consumed %d of %d bytes", tag, n, len(data))
		}
		if set.Len() != 1 {
			t.Fatalf("accepted decode appended %d points", set.Len())
		}
	})
}

// FuzzDecodePointsInto covers the block decoder: a forged count header must
// never cause a huge allocation or mask a truncated tail.
func FuzzDecodePointsInto(f *testing.F) {
	f.Add(EncodePoints(nil))
	f.Add(EncodePoints([]geom.Point{{ID: 1, Coords: []float64{1, 2}}, {ID: 2, Coords: []float64{3, 4}}}))
	block := EncodePoints([]geom.Point{{ID: 9, Coords: []float64{0.5}}})
	for i := range block {
		f.Add(block[:i])
	}
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x0f}) // count ~2^32, no payload

	f.Fuzz(func(t *testing.T, data []byte) {
		var set geom.PointSet
		if err := DecodePointsInto(data, &set); err != nil {
			if !errors.Is(err, errs.ErrWireFormat) {
				t.Fatalf("non-wire-format error: %v", err)
			}
			return
		}
		// The allocating decoder must accept exactly the same blocks.
		points, err := DecodePoints(data)
		if err != nil || len(points) != set.Len() {
			t.Fatalf("DecodePoints disagrees: %v, %d vs %d points", err, len(points), set.Len())
		}
	})
}

// FuzzDecodeFrame covers the framing layer used by the DFS and the
// distributed runtime's task/result messages.
func FuzzDecodeFrame(f *testing.F) {
	f.Add(AppendFrame(nil, 1, []byte("payload")))
	f.Add(AppendFrame(nil, 5, nil))
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{1, 0xff, 0xff, 0xff, 0xff, 0x7f}) // length far beyond the buffer

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, payload, n, err := DecodeFrame(data)
		if err != nil {
			if !errors.Is(err, errs.ErrWireFormat) {
				t.Fatalf("non-wire-format error: %v", err)
			}
			return
		}
		if n > len(data) || kind != data[0] {
			t.Fatalf("kind %d, consumed %d of %d bytes", kind, n, len(data))
		}
		if again := AppendFrame(nil, kind, payload); len(again) != n {
			// Non-canonical length uvarints shrink on re-encode; anything
			// else must round-trip exactly.
			if string(again) == string(data[:n]) {
				t.Fatalf("inconsistent frame accounting: n=%d re-encoded=%d", n, len(again))
			}
		}
	})
}

// FuzzDecodeKVs covers the shuffle record lists shipped between workers.
func FuzzDecodeKVs(f *testing.F) {
	f.Add(AppendKVs(nil, nil))
	f.Add(AppendKVs(nil, []KV{{Key: 1, Value: []byte("a")}, {Key: 2, Value: nil}}))
	f.Add([]byte{0xff, 0xff, 0xff, 0x0f}) // forged count

	f.Fuzz(func(t *testing.T, data []byte) {
		kvs, n, err := DecodeKVs(data)
		if err != nil {
			if !errors.Is(err, errs.ErrWireFormat) {
				t.Fatalf("non-wire-format error: %v", err)
			}
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		for _, kv := range kvs {
			_ = kv.Key
		}
	})
}
