// Package codec implements the compact binary wire format used by the
// MapReduce shuffle and the simulated DFS. Encoding points to bytes (rather
// than passing pointers between map and reduce tasks) keeps the simulation
// honest: shuffle volume is measured in real serialized bytes, matching the
// communication costs the paper's single-pass design minimizes.
//
// Wire format of a point record:
//
//	uvarint  ID
//	uvarint  dim
//	dim × 8  coordinates (IEEE-754 little endian)
//
// A tagged point record (core/support flag of Fig. 3) prepends one tag byte.
package codec

import (
	"encoding/binary"
	"fmt"
	"math"

	"dod/internal/errs"
	"dod/internal/geom"
)

// Record tags mirroring the "0-p"/"1-p" value prefixes in the paper's
// MapReduce pseudocode (Fig. 3).
const (
	TagCore    byte = 0 // the point is a core point of the keyed partition
	TagSupport byte = 1 // the point is a support point of the keyed partition
)

// ErrTruncated is returned when a buffer ends before a full record. It
// wraps errs.ErrWireFormat, as does every other decode failure in this
// package: malformed input yields a typed error, never a panic or an
// unbounded allocation.
var ErrTruncated = fmt.Errorf("%w: truncated record", errs.ErrWireFormat)

// corrupt builds an errs.ErrWireFormat-wrapping error with details.
func corrupt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errs.ErrWireFormat, fmt.Sprintf(format, args...))
}

// AppendPoint appends the encoding of p to dst and returns the extended
// slice.
func AppendPoint(dst []byte, p geom.Point) []byte {
	dst = binary.AppendUvarint(dst, p.ID)
	dst = binary.AppendUvarint(dst, uint64(len(p.Coords)))
	for _, v := range p.Coords {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// DecodePoint decodes one point from the front of buf, returning the point
// and the number of bytes consumed.
func DecodePoint(buf []byte) (geom.Point, int, error) {
	id, n := binary.Uvarint(buf)
	if n <= 0 {
		return geom.Point{}, 0, ErrTruncated
	}
	off := n
	dim, n := binary.Uvarint(buf[off:])
	if n <= 0 {
		return geom.Point{}, 0, ErrTruncated
	}
	off += n
	if dim > 1<<16 {
		return geom.Point{}, 0, corrupt("codec: implausible dimension %d", dim)
	}
	need := int(dim) * 8
	if len(buf[off:]) < need {
		return geom.Point{}, 0, ErrTruncated
	}
	coords := make([]float64, dim)
	for i := range coords {
		coords[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return geom.Point{ID: id, Coords: coords}, off, nil
}

// AppendTaggedPoint appends a (tag, point) record to dst.
func AppendTaggedPoint(dst []byte, tag byte, p geom.Point) []byte {
	dst = append(dst, tag)
	return AppendPoint(dst, p)
}

// DecodeTaggedPoint decodes a (tag, point) record from the front of buf.
func DecodeTaggedPoint(buf []byte) (tag byte, p geom.Point, n int, err error) {
	if len(buf) < 1 {
		return 0, geom.Point{}, 0, ErrTruncated
	}
	tag = buf[0]
	p, m, err := DecodePoint(buf[1:])
	if err != nil {
		return 0, geom.Point{}, 0, err
	}
	return tag, p, 1 + m, nil
}

// EncodePoints encodes a slice of points with a leading count. This is the
// DFS block payload format.
func EncodePoints(points []geom.Point) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(points)))
	for _, p := range points {
		buf = AppendPoint(buf, p)
	}
	return buf
}

// DecodePoints decodes a block produced by EncodePoints.
func DecodePoints(buf []byte) ([]geom.Point, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, ErrTruncated
	}
	off := n
	// A well-formed record is at least 2 bytes (one-byte ID + zero
	// dimensions), so a count beyond len(buf)/2 cannot be satisfied —
	// reject it up front instead of pre-allocating for a forged header.
	if count > uint64(len(buf[off:])/2) {
		return nil, corrupt("codec: count %d exceeds buffer capacity", count)
	}
	points := make([]geom.Point, 0, count)
	for i := uint64(0); i < count; i++ {
		p, m, err := DecodePoint(buf[off:])
		if err != nil {
			return nil, fmt.Errorf("codec: point %d/%d: %w", i, count, err)
		}
		off += m
		points = append(points, p)
	}
	return points, nil
}

// DecodePointInto decodes one point from the front of buf directly into
// the columnar set — the allocation-free counterpart of DecodePoint for
// the map/reduce hot paths (no per-point Coords slice is materialized).
// An empty set with Dim 0 adopts the first record's dimensionality;
// afterwards a mismatching record is an error.
func DecodePointInto(buf []byte, set *geom.PointSet) (int, error) {
	id, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, ErrTruncated
	}
	off := n
	dim, n := binary.Uvarint(buf[off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	off += n
	if dim > 1<<16 {
		return 0, corrupt("codec: implausible dimension %d", dim)
	}
	if set.Dim == 0 && set.Len() == 0 {
		set.Dim = int(dim)
	}
	if int(dim) != set.Dim {
		return 0, corrupt("codec: dimension mismatch %d vs %d", dim, set.Dim)
	}
	need := int(dim) * 8
	if len(buf[off:]) < need {
		return 0, ErrTruncated
	}
	set.IDs = append(set.IDs, id)
	for i := 0; i < int(dim); i++ {
		set.Coords = append(set.Coords, math.Float64frombits(binary.LittleEndian.Uint64(buf[off:])))
		off += 8
	}
	return off, nil
}

// DecodeTaggedPointInto decodes a (tag, point) record from the front of
// buf into the set, returning the tag and the bytes consumed.
func DecodeTaggedPointInto(buf []byte, set *geom.PointSet) (tag byte, n int, err error) {
	if len(buf) < 1 {
		return 0, 0, ErrTruncated
	}
	tag = buf[0]
	m, err := DecodePointInto(buf[1:], set)
	if err != nil {
		return 0, 0, err
	}
	return tag, 1 + m, nil
}

// DecodePointsInto decodes an EncodePoints block into the set, appending
// every point. The set keeps its capacity across calls, so a pooled set
// amortizes all decode allocations.
func DecodePointsInto(buf []byte, set *geom.PointSet) error {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return ErrTruncated
	}
	off := n
	for i := uint64(0); i < count; i++ {
		m, err := DecodePointInto(buf[off:], set)
		if err != nil {
			return fmt.Errorf("codec: point %d/%d: %w", i, count, err)
		}
		off += m
	}
	return nil
}
