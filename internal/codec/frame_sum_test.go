package codec

import (
	"errors"
	"testing"

	"dod/internal/errs"
)

// TestSumFrameRoundTrip seals and re-opens a multi-frame body.
func TestSumFrameRoundTrip(t *testing.T) {
	body := AppendFrame(nil, 1, []byte(`{"h":1}`))
	body = AppendFrame(body, 2, []byte{9, 8, 7})
	body = AppendFrame(body, 2, nil) // empty payload frame must survive
	sealed := AppendSumFrame(body)

	got, err := StripSumFrame(sealed)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(body) {
		t.Fatalf("stripped body differs: %x vs %x", got, body)
	}
}

// TestSumFrameDetectsEveryBitFlip flips every bit of a sealed body; every
// single flip must be rejected — this is the guarantee that lets the chaos
// harness corrupt transport bytes without ever producing a silently wrong
// result.
func TestSumFrameDetectsEveryBitFlip(t *testing.T) {
	body := AppendSumFrame(AppendFrame(AppendFrame(nil, 1, []byte("header")), 4, []byte{1, 2, 3, 4}))
	for i := range body {
		for bit := 0; bit < 8; bit++ {
			dup := append([]byte(nil), body...)
			dup[i] ^= 1 << bit
			if _, err := StripSumFrame(dup); err == nil {
				t.Fatalf("flip byte %d bit %d went undetected", i, bit)
			} else if !errors.Is(err, errs.ErrWireFormat) {
				t.Fatalf("flip byte %d bit %d: non-wire error %v", i, bit, err)
			}
		}
	}
}

func TestSumFrameRejections(t *testing.T) {
	sealed := AppendSumFrame(AppendFrame(nil, 1, []byte("x")))
	cases := map[string][]byte{
		"empty":             {},
		"no sum frame":      AppendFrame(nil, 1, []byte("x")),
		"trailing bytes":    append(append([]byte(nil), sealed...), 0),
		"short sum payload": AppendFrame(AppendFrame(nil, 1, []byte("x")), FrameSum, []byte{1, 2, 3}),
		"truncated":         sealed[:len(sealed)-1],
		"sum over wrong data": AppendFrame(AppendFrame(nil, 2, []byte("y")),
			FrameSum, AppendSumFrame(nil)[2:]), // sum of the empty body
	}
	for name, body := range cases {
		if _, err := StripSumFrame(body); !errors.Is(err, errs.ErrWireFormat) {
			t.Errorf("%s: err = %v, want ErrWireFormat", name, err)
		}
	}
}

func TestChecksumStability(t *testing.T) {
	// FNV-64a known-answer: hash of "" and "a".
	if Checksum(nil) != 14695981039346656037 {
		t.Errorf("Checksum(nil) = %d", Checksum(nil))
	}
	if Checksum([]byte("a")) != 0xaf63dc4c8601ec8c {
		t.Errorf("Checksum(a) = %#x", Checksum([]byte("a")))
	}
}
