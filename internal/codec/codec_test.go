package codec

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dod/internal/geom"
)

func TestPointRoundTrip(t *testing.T) {
	cases := []geom.Point{
		{ID: 0, Coords: nil},
		{ID: 1, Coords: []float64{0}},
		{ID: math.MaxUint64, Coords: []float64{1.5, -2.25, 1e-300}},
		{ID: 42, Coords: []float64{math.Inf(1), math.Inf(-1), 0, -0.0}},
	}
	for _, p := range cases {
		buf := AppendPoint(nil, p)
		got, n, err := DecodePoint(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", p, err)
		}
		if n != len(buf) {
			t.Errorf("consumed %d of %d bytes", n, len(buf))
		}
		if got.ID != p.ID || len(got.Coords) != len(p.Coords) {
			t.Fatalf("roundtrip %v -> %v", p, got)
		}
		for i := range p.Coords {
			if math.Float64bits(got.Coords[i]) != math.Float64bits(p.Coords[i]) {
				t.Errorf("coord %d: %v != %v", i, got.Coords[i], p.Coords[i])
			}
		}
	}
}

func TestPointRoundTripQuick(t *testing.T) {
	f := func(id uint64, coords []float64) bool {
		p := geom.Point{ID: id, Coords: coords}
		got, n, err := DecodePoint(AppendPoint(nil, p))
		if err != nil || n == 0 || got.ID != id || len(got.Coords) != len(coords) {
			return false
		}
		for i := range coords {
			if math.Float64bits(got.Coords[i]) != math.Float64bits(coords[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTaggedPointRoundTrip(t *testing.T) {
	p := geom.Point{ID: 7, Coords: []float64{3, 4}}
	for _, tag := range []byte{TagCore, TagSupport} {
		buf := AppendTaggedPoint(nil, tag, p)
		gotTag, got, n, err := DecodeTaggedPoint(buf)
		if err != nil {
			t.Fatal(err)
		}
		if gotTag != tag || !got.Equal(p) || n != len(buf) {
			t.Errorf("tag %d: got tag=%d p=%v n=%d", tag, gotTag, got, n)
		}
	}
}

func TestConcatenatedRecords(t *testing.T) {
	var buf []byte
	want := []geom.Point{
		{ID: 1, Coords: []float64{1, 2}},
		{ID: 2, Coords: []float64{3}},
		{ID: 3, Coords: []float64{4, 5, 6}},
	}
	for _, p := range want {
		buf = AppendPoint(buf, p)
	}
	var got []geom.Point
	for len(buf) > 0 {
		p, n, err := DecodePoint(buf)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, p)
		buf = buf[n:]
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v want %v", got, want)
	}
}

func TestEncodeDecodePointsBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := make([]geom.Point, 100)
	for i := range pts {
		pts[i] = geom.Point{ID: uint64(i), Coords: []float64{rng.NormFloat64(), rng.NormFloat64()}}
	}
	got, err := DecodePoints(EncodePoints(pts))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, pts) {
		t.Error("block roundtrip mismatch")
	}
}

func TestDecodeEmptyBlock(t *testing.T) {
	got, err := DecodePoints(EncodePoints(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("want empty, got %v", got)
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := AppendPoint(nil, geom.Point{ID: 9, Coords: []float64{1, 2, 3}})
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodePoint(full[:cut]); err == nil {
			t.Errorf("cut at %d: expected error", cut)
		}
	}
	if _, _, _, err := DecodeTaggedPoint(nil); err == nil {
		t.Error("empty tagged record should fail")
	}
	if _, err := DecodePoints(nil); err == nil {
		t.Error("empty block buffer should fail")
	}
}

func TestDecodeImplausibleDim(t *testing.T) {
	// Forge a record claiming a huge dimension; decoder must reject rather
	// than allocate.
	buf := AppendPoint(nil, geom.Point{ID: 1, Coords: []float64{1}})
	// Re-encode with dim varint replaced: easiest is hand-building.
	forged := []byte{1 /*id*/, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F /*dim huge*/}
	if _, _, err := DecodePoint(forged); err == nil {
		t.Error("expected error for implausible dimension")
	}
	_ = buf
}

func BenchmarkAppendPoint(b *testing.B) {
	p := geom.Point{ID: 123456, Coords: []float64{42.1, -71.5}}
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = AppendPoint(buf[:0], p)
	}
}

func BenchmarkDecodePoint(b *testing.B) {
	buf := AppendPoint(nil, geom.Point{ID: 123456, Coords: []float64{42.1, -71.5}})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodePoint(buf); err != nil {
			b.Fatal(err)
		}
	}
}
