// Chaos harness: the cluster's byte-identity guarantee under seeded,
// reproducible transport faults.
//
// Every worker's HTTP client is wrapped in fault.Transport, which injects
// latency, errors, dropped responses, corrupted bytes, and partition
// windows from per-site PRNG streams that are a pure function of
// (seed, site). The matrix runs a fixed set of seeds; any failure prints
// its seed and fault schedule, and
//
//	go test ./internal/dist/ -run Chaos -fault.seed=N
//
// replays exactly that schedule.
package dist_test

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"reflect"
	"testing"
	"time"

	"dod/internal/core"
	"dod/internal/dist"
	"dod/internal/fault"
	"dod/internal/retry"
)

// faultSeed, when set (>0), narrows the chaos matrix to a single seed —
// the replay knob for a failing schedule.
var faultSeed = flag.Int64("fault.seed", 0, "run the chaos matrix with only this fault-injection seed")

// chaosSeeds is the fixed PR matrix; CI's nightly job rotates others in.
var chaosSeeds = []int64{101, 102, 103, 104, 105, 106, 107, 108}

// chaosRules is the fault mix every worker's transport rolls per request.
// Probabilities are tuned so faults are frequent enough to exercise every
// recovery path (retry, nack, re-dispatch, lease expiry) while jobs still
// converge within the test budget.
func chaosRules() []fault.Rule {
	return []fault.Rule{{
		Site:         "chaos-*",
		PLatency:     0.20,
		MaxLatency:   5 * time.Millisecond,
		PError:       0.05,
		PDrop:        0.03,
		PCorrupt:     0.03,
		PPartition:   0.01,
		PartitionLen: 4,
	}}
}

// startChaosWorker supervises one worker under fault injection: if the
// worker process dies (e.g. its join handshake was corrupted past retries,
// or the transport wedged), it is restarted under the same name — the
// cluster-operator behavior the lease protocol is designed for.
func startChaosWorker(t *testing.T, coord *dist.Coordinator, name string, in *fault.Injector) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ctx.Err() == nil {
			w, err := dist.NewWorker(dist.WorkerConfig{
				Coordinator: coord.URL(),
				Name:        name,
				Parallelism: 2,
				Client:      &http.Client{Transport: fault.Transport(nil, in, name+":")},
				Retry:       retry.Policy{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond, Jitter: true},
				Logf:        t.Logf,
			})
			if err != nil {
				t.Errorf("chaos worker %s: %v", name, err)
				return
			}
			if err := w.Run(ctx); err != nil && ctx.Err() == nil {
				t.Logf("chaos worker %s died: %v (restarting)", name, err)
				continue
			}
			return
		}
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
}

// TestChaosMatrix runs the full detection job over a faulty cluster for
// every seed in the matrix and requires the outlier set to be
// byte-identical to the fault-free local engine each time. This is the
// repo's core resilience claim: faults may cost time, never correctness.
func TestChaosMatrix(t *testing.T) {
	input := testInput(t, 2000)
	local := runDetection(t, input, coreConfig())
	if len(local.Outliers) == 0 {
		t.Fatal("test dataset produced no outliers; byte-identity would be vacuous")
	}

	seeds := chaosSeeds
	if *faultSeed > 0 {
		seeds = []int64{*faultSeed}
	} else if testing.Short() {
		seeds = seeds[:2]
	}

	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			in := fault.New(fault.Config{Seed: seed, Rules: chaosRules()})
			coord := newCoordinator(t, dist.Config{
				LeaseTTL:          500 * time.Millisecond,
				PollWait:          100 * time.Millisecond,
				RedispatchBackoff: 5 * time.Millisecond,
				TaskTimeout:       2 * time.Second,
				MaxTaskDispatches: 24,
				Seed:              seed,
			})
			for i := 0; i < 3; i++ {
				startChaosWorker(t, coord, fmt.Sprintf("chaos-w%d", i), in)
			}
			if err := coord.WaitForWorkers(context.Background(), 3); err != nil {
				t.Fatal(err)
			}

			cfg := coreConfig()
			cfg.ExecutorFor = core.ClusterExecutorFor(coord)
			cfg.RetryBackoff = 2 * time.Millisecond
			rep, err := core.Run(context.Background(), input, cfg)
			if err != nil {
				dumpSchedule(t, seed, in)
				t.Fatalf("cluster run under fault seed %d: %v", seed, err)
			}
			if !reflect.DeepEqual(local.Outliers, rep.Outliers) {
				dumpSchedule(t, seed, in)
				t.Fatalf("fault seed %d changed results: %d vs %d outliers",
					seed, len(rep.Outliers), len(local.Outliers))
			}
			t.Logf("seed %d: ok (%d faults injected, stats %+v)", seed, len(in.Schedule()), coord.Stats())
		})
	}
}

// dumpSchedule prints the exact fault schedule of a failing run so it can
// be attached to a CI artifact and replayed with -fault.seed.
func dumpSchedule(t *testing.T, seed int64, in *fault.Injector) {
	t.Helper()
	t.Logf("replay with: go test ./internal/dist/ -run Chaos -fault.seed=%d", seed)
	for _, d := range in.Schedule() {
		t.Logf("fault schedule: site=%s call=%d kind=%s delay=%v", d.Site, d.Call, d.Fault, d.Delay)
	}
}

// TestCorruptTaskPayloadNacked pins the nack path deterministically: with
// every poll response corrupted, each dispatched payload fails its
// integrity check at the worker, is nacked by dispatch ID, and re-queues
// immediately until the dispatch budget fails the job with ErrWorkerLost —
// instead of hanging behind a healthy-looking heartbeat.
func TestCorruptTaskPayloadNacked(t *testing.T) {
	in := fault.New(fault.Config{Seed: 1, Rules: []fault.Rule{
		{Site: "w1:" + "/dist/v1/poll", PCorrupt: 1},
	}})
	coord := newCoordinator(t, dist.Config{
		LeaseTTL:          5 * time.Second, // leases never expire; only nacks can recycle the task
		RedispatchBackoff: time.Millisecond,
		MaxTaskDispatches: 3,
	})
	w, err := dist.NewWorker(dist.WorkerConfig{
		Coordinator: coord.URL(),
		Name:        "w1",
		Parallelism: 1,
		Client:      &http.Client{Transport: fault.Transport(nil, in, "w1:")},
		Retry:       retry.Policy{Base: time.Millisecond, Max: 10 * time.Millisecond},
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); w.Run(ctx) }() //nolint:errcheck
	t.Cleanup(func() { cancel(); <-done })
	if err := coord.WaitForWorkers(context.Background(), 1); err != nil {
		t.Fatal(err)
	}

	_, err = runEchoJob(t, coord, echoSpec(t, echoConfig{}), echoSplits(1, ""))
	if err == nil {
		t.Fatal("job succeeded though every task payload was corrupted")
	}
	st := coord.Stats()
	if st.Nacks == 0 {
		t.Errorf("no nacks recorded: %+v", st)
	}
	if st.Nacks < 3 {
		t.Errorf("nacks = %d, want one per dispatch (3): %+v", st.Nacks, st)
	}
}

// TestTaskTimeoutBackstop wedges the first execution of one map task far
// past TaskTimeout while its worker keeps heartbeating on its second slot;
// the sweeper must withdraw the dispatch and the re-execution (which runs
// instantly — the stall gate is one-shot) completes the job quickly.
func TestTaskTimeoutBackstop(t *testing.T) {
	slowGate.Store(false)
	coord := newCoordinator(t, dist.Config{
		LeaseTTL:          10 * time.Second, // lease expiry cannot rescue
		SpeculativeFactor: -1,               // speculation disabled: only TaskTimeout can
		TaskTimeout:       250 * time.Millisecond,
		RedispatchBackoff: time.Millisecond,
	})
	startWorker(t, coord, "w1", 2, nil)
	if err := coord.WaitForWorkers(context.Background(), 1); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	count, err := runEchoJob(t, coord, echoSpec(t, echoConfig{SleepMs: 1500, SlowSplit: "slow"}), echoSplits(2, "slow"))
	if err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("echo job saw %d map records, want 3", count)
	}
	if took := time.Since(start); took >= 1500*time.Millisecond {
		t.Errorf("job took %v; TaskTimeout did not rescue the wedged dispatch", took)
	}
	if st := coord.Stats(); st.TaskTimeouts == 0 {
		t.Errorf("no task timeout recorded: %+v", st)
	}
}
