// Package dist is the real distributed execution runtime: a coordinator
// that owns job control (scheduling, shuffle, retries) and workers that
// execute map and reduce task attempts on other processes or machines,
// speaking HTTP with internal/codec framed bodies.
//
// The runtime slots under internal/mapreduce through its Executor seam: the
// coordinator-side remote executor ships each task attempt to a polling
// worker and returns the worker's output to the unchanged MapReduce driver.
// The topology is a star — workers long-poll the coordinator for tasks
// (the poll doubles as a heartbeat) and stream results back, so workers
// need no inbound connectivity and can sit behind NAT.
//
// Robustness is first-class:
//
//   - Heartbeats and leases: a worker that stops polling past its lease is
//     declared lost; every task attempt it was running is re-dispatched to
//     a surviving worker, with exponential backoff per re-dispatch.
//   - Speculative execution: once enough attempts of a phase have finished
//     to establish a median duration, a straggling attempt gets a duplicate
//     dispatch; the first result wins and the loser is discarded.
//   - Determinism: tasks are pure functions of their payload, so
//     re-execution and speculation never change results — a cluster run is
//     byte-identical to the in-process engine on the same seed.
//
// Workers know how to build job logic from a JobSpec via the job registry:
// the coordinator ships {kind, config} and the worker's registered builder
// reconstructs the mapper/reducer/partitioner locally (internal/core
// registers the detection job; its config carries the partition plan, the
// detection parameters, and the seed). Payloads — input splits, reduce key
// groups, output pairs — travel in internal/codec wire format, so shuffle
// volume over the network is the same serialized bytes the in-process
// engine measures.
package dist

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"dod/internal/errs"
	"dod/internal/mapreduce"
)

// JobSpec names a registered job kind plus its serialized configuration —
// everything a worker needs to rebuild the job's functions.
type JobSpec struct {
	Kind   string          `json:"kind"`
	Config json.RawMessage `json:"config"`
}

// Job bundles the executable pieces of one MapReduce job, rebuilt on the
// worker from a JobSpec.
type Job struct {
	Mapper      mapreduce.Mapper
	Reducer     mapreduce.Reducer
	Combiner    mapreduce.Reducer     // optional
	Partitioner mapreduce.Partitioner // optional; default key % n
}

// JobBuilder reconstructs a Job from its serialized config.
type JobBuilder func(config []byte) (*Job, error)

var (
	regMu    sync.RWMutex
	registry = map[string]JobBuilder{}
)

// RegisterJob installs the builder for a job kind. Packages defining
// distributable jobs call it from init (internal/core registers
// "dod.detect/v1"), so any binary importing them — cmd/dodworker most
// importantly — can execute the job's tasks.
func RegisterJob(kind string, build JobBuilder) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[kind]; dup {
		panic(fmt.Sprintf("dist: job kind %q registered twice", kind))
	}
	registry[kind] = build
}

// BuildJob reconstructs a job from its wire spec via the registry.
func BuildJob(spec JobSpec) (*Job, error) {
	regMu.RLock()
	build := registry[spec.Kind]
	regMu.RUnlock()
	if build == nil {
		return nil, fmt.Errorf("%w: unknown job kind %q (worker binary lacks its registration import?)", errs.ErrJobAborted, spec.Kind)
	}
	job, err := build(spec.Config)
	if err != nil {
		return nil, fmt.Errorf("dist: building job %q: %w", spec.Kind, err)
	}
	if job.Mapper == nil || job.Reducer == nil {
		return nil, fmt.Errorf("dist: job %q built without mapper or reducer", spec.Kind)
	}
	if job.Partitioner == nil {
		job.Partitioner = mapreduce.DefaultPartitioner
	}
	return job, nil
}

// RegisteredKinds lists the job kinds this binary can execute, sorted.
func RegisteredKinds() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	kinds := make([]string, 0, len(registry))
	for k := range registry {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}
