package dist

import (
	"dod/internal/obs"
)

// coordMetrics holds the coordinator's instruments, registered as
// dod_dist_* in the coordinator's obs.Registry so a /metrics scrape of the
// coordinator covers the whole cluster's task flow.
type coordMetrics struct {
	heartbeats *obs.Counter // polls received (a poll is a heartbeat)
	joins      *obs.Counter

	dispatches   map[string]*obs.Counter // by phase: task payloads handed to workers
	tasksOK      map[string]*obs.Counter
	tasksErr     map[string]*obs.Counter
	tasksLate    map[string]*obs.Counter // duplicate/late results discarded
	taskSeconds  map[string]*obs.Histogram
	bytesShipped *obs.Counter // task payload bytes coordinator -> workers
	bytesBack    *obs.Counter // result payload bytes workers -> coordinator

	workersLost *obs.Counter
	redispatch  *obs.Counter // re-dispatches after a lost worker or exhausted lease
	speculative *obs.Counter // duplicate dispatches of suspected stragglers

	nacks          *obs.Counter // corrupted-payload nacks from workers
	taskTimeouts   *obs.Counter // dispatches withdrawn by the TaskTimeout backstop
	journalReplays *obs.Counter // tasks answered from the journal instead of a worker
	journalRecords *obs.Counter // results appended to the journal
}

func newCoordMetrics(reg *obs.Registry, workers func() float64) *coordMetrics {
	const (
		hbHelp    = "Worker polls received; each poll renews the worker's lease."
		joinHelp  = "Worker join handshakes."
		dispHelp  = "Task dispatches handed to workers, by phase."
		taskHelp  = "Task results by phase and outcome (ok, error, late-discarded)."
		secHelp   = "Accepted task wall time in seconds, by phase."
		shipHelp  = "Bytes of task payload shipped to workers."
		backHelp  = "Bytes of result payload streamed back from workers."
		lostHelp  = "Workers declared lost after missing their lease."
		redisHelp = "Task re-dispatches caused by lost workers."
		specHelp  = "Speculative duplicate dispatches of straggler tasks."
	)
	perPhase := func(build func(phase string) *obs.Counter) map[string]*obs.Counter {
		return map[string]*obs.Counter{"map": build("map"), "reduce": build("reduce")}
	}
	m := &coordMetrics{
		heartbeats: reg.Counter("dod_dist_heartbeats_total", hbHelp),
		joins:      reg.Counter("dod_dist_joins_total", joinHelp),
		dispatches: perPhase(func(p string) *obs.Counter {
			return reg.Counter("dod_dist_dispatches_total", dispHelp, obs.L("phase", p))
		}),
		tasksOK: perPhase(func(p string) *obs.Counter {
			return reg.Counter("dod_dist_tasks_total", taskHelp, obs.L("phase", p), obs.L("outcome", "ok"))
		}),
		tasksErr: perPhase(func(p string) *obs.Counter {
			return reg.Counter("dod_dist_tasks_total", taskHelp, obs.L("phase", p), obs.L("outcome", "error"))
		}),
		tasksLate: perPhase(func(p string) *obs.Counter {
			return reg.Counter("dod_dist_tasks_total", taskHelp, obs.L("phase", p), obs.L("outcome", "late"))
		}),
		taskSeconds: map[string]*obs.Histogram{
			"map":    reg.Histogram("dod_dist_task_seconds", secHelp, nil, obs.L("phase", "map")),
			"reduce": reg.Histogram("dod_dist_task_seconds", secHelp, nil, obs.L("phase", "reduce")),
		},
		bytesShipped: reg.Counter("dod_dist_bytes_total", shipHelp, obs.L("direction", "ship")),
		bytesBack:    reg.Counter("dod_dist_bytes_total", shipHelp, obs.L("direction", "collect")),
		workersLost:  reg.Counter("dod_dist_workers_lost_total", lostHelp),
		redispatch:   reg.Counter("dod_dist_redispatches_total", redisHelp),
		speculative:  reg.Counter("dod_dist_speculative_total", specHelp),
		nacks: reg.Counter("dod_dist_nacks_total",
			"Dispatches nacked by workers after the payload arrived corrupted."),
		taskTimeouts: reg.Counter("dod_dist_task_timeouts_total",
			"Dispatches withdrawn by the per-task timeout backstop."),
		journalReplays: reg.Counter("dod_dist_journal_replays_total",
			"Tasks settled from the checkpoint journal instead of a worker."),
		journalRecords: reg.Counter("dod_dist_journal_records_total",
			"Task results durably appended to the checkpoint journal."),
	}
	reg.GaugeFunc("dod_dist_workers", "Workers currently holding a live lease.", workers)
	return m
}

// phaseCounter indexes a per-phase counter map defensively.
func phaseCounter(m map[string]*obs.Counter, phase string) *obs.Counter {
	if c, ok := m[phase]; ok {
		return c
	}
	return m["map"]
}

// Stats is a point-in-time snapshot of the coordinator's counters, exposed
// for tests and for dodbench's dist record.
type Stats struct {
	Workers        int
	Heartbeats     int64
	Dispatches     int64
	TasksOK        int64
	TasksErr       int64
	TasksLate      int64
	BytesShipped   int64 // task payloads, coordinator -> workers
	BytesCollected int64 // result payloads, workers -> coordinator
	WorkersLost    int64
	Redispatches   int64
	Speculative    int64
	Nacks          int64
	TaskTimeouts   int64
	JournalReplays int64
}
