// Checkpoint/resume tests: a coordinator pointed at a journal fsyncs every
// settled task result before delivering it, and a NEW coordinator process
// pointed at the same journal answers those tasks from disk. The journal is
// keyed by job-spec content, not by in-memory job IDs, so replay survives a
// full process restart.
package dist_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"dod/internal/core"
	"dod/internal/dist"
)

// journaledRun executes the full detection pipeline on a fresh coordinator
// backed by the given journal path, with nWorkers in-process workers, and
// returns the report plus the coordinator's final stats.
func journaledRun(t *testing.T, input *core.Input, path string, nWorkers int) (*core.Report, dist.Stats) {
	t.Helper()
	coord := newCoordinator(t, dist.Config{JournalPath: path})
	for i := 0; i < nWorkers; i++ {
		startWorker(t, coord, fmt.Sprintf("jw%d", i), 2, nil)
	}
	if nWorkers > 0 {
		if err := coord.WaitForWorkers(context.Background(), nWorkers); err != nil {
			t.Fatal(err)
		}
	}
	cfg := coreConfig()
	cfg.ExecutorFor = core.ClusterExecutorFor(coord)
	rep, err := core.Run(context.Background(), input, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := coord.Stats()
	coord.Close() // the "kill": release the journal before the next incarnation
	return rep, st
}

// TestJournalResume is the headline checkpoint guarantee: after a completed
// (or killed-and-complete-enough) run, a brand-new coordinator process with
// the same journal and ZERO workers reproduces the run byte-identically —
// every task is settled from disk, none is dispatched.
func TestJournalResume(t *testing.T) {
	input := testInput(t, 2000)
	local := runDetection(t, input, coreConfig())
	jp := filepath.Join(t.TempDir(), "checkpoint.log")

	first, firstStats := journaledRun(t, input, jp, 2)
	if !reflect.DeepEqual(local.Outliers, first.Outliers) {
		t.Fatal("journaled cluster run diverged from local engine")
	}
	if firstStats.JournalReplays != 0 {
		t.Fatalf("fresh journal replayed %d tasks", firstStats.JournalReplays)
	}

	resumed, resumedStats := journaledRun(t, input, jp, 0)
	if !reflect.DeepEqual(local.Outliers, resumed.Outliers) {
		t.Fatal("resumed run diverged from local engine")
	}
	if resumedStats.Dispatches != 0 {
		t.Errorf("resumed run dispatched %d tasks; want 0 (no workers exist)", resumedStats.Dispatches)
	}
	if resumedStats.JournalReplays != firstStats.TasksOK {
		t.Errorf("resumed run replayed %d tasks, want all %d settled by the first run",
			resumedStats.JournalReplays, firstStats.TasksOK)
	}
}

// TestJournalTornTailResume kills the coordinator "mid-append": the journal
// loses the tail of its final record (a crash during write). The next
// incarnation must truncate the torn record, replay every intact one, and
// re-run only the lost task on a live worker — still byte-identical.
func TestJournalTornTailResume(t *testing.T) {
	input := testInput(t, 2000)
	local := runDetection(t, input, coreConfig())
	jp := filepath.Join(t.TempDir(), "checkpoint.log")

	_, firstStats := journaledRun(t, input, jp, 2)
	fi, err := os.Stat(jp)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(jp, fi.Size()-7); err != nil {
		t.Fatal(err)
	}

	resumed, resumedStats := journaledRun(t, input, jp, 1)
	if !reflect.DeepEqual(local.Outliers, resumed.Outliers) {
		t.Fatal("torn-tail resume diverged from local engine")
	}
	if want := firstStats.TasksOK - 1; resumedStats.JournalReplays != want {
		t.Errorf("replayed %d tasks after torn tail, want %d", resumedStats.JournalReplays, want)
	}
	if resumedStats.Dispatches == 0 {
		t.Error("torn-tail resume dispatched nothing; the truncated task was not re-run")
	}
}

// TestJournalGarbageTailIgnored appends trailing garbage (torn write of a
// record that never completed) and verifies the next incarnation both
// replays cleanly and appends after the truncation point without error.
func TestJournalGarbageTailIgnored(t *testing.T) {
	input := testInput(t, 2000)
	jp := filepath.Join(t.TempDir(), "checkpoint.log")

	_, firstStats := journaledRun(t, input, jp, 2)
	f, err := os.OpenFile(jp, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x7f, 0x01}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	resumed, resumedStats := journaledRun(t, input, jp, 0)
	if len(resumed.Outliers) == 0 {
		t.Fatal("garbage-tail resume found no outliers")
	}
	if resumedStats.JournalReplays != firstStats.TasksOK {
		t.Errorf("replayed %d tasks, want %d", resumedStats.JournalReplays, firstStats.TasksOK)
	}
}

// TestJournalReplayDoesNotMutate is a regression guard: opening an
// existing non-empty journal and settling a whole run from it must not
// rewrite, re-order, or re-append records — byte-compare the file before
// and after a replay-only run.
func TestJournalReplayDoesNotMutate(t *testing.T) {
	input := testInput(t, 2000)
	jp := filepath.Join(t.TempDir(), "checkpoint.log")
	journaledRun(t, input, jp, 2)
	before, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	journaledRun(t, input, jp, 0)
	// Allow the replay run a moment to have closed the file cleanly.
	time.Sleep(10 * time.Millisecond)
	after, err := os.ReadFile(jp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Errorf("replay-only run mutated the journal: %d -> %d bytes", len(before), len(after))
	}
}
