package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"dod/internal/errs"
	"dod/internal/mapreduce"
	"dod/internal/obs"
	"dod/internal/retry"
)

// Config tunes a Coordinator. The zero value is usable: it listens on a
// loopback ephemeral port with production-ish lease and retry settings.
type Config struct {
	// Listen is the address to bind ("host:port"); default "127.0.0.1:0".
	Listen string

	// LeaseTTL is how long a worker may go without polling before it is
	// declared lost and its running tasks are re-dispatched. Default 10s.
	LeaseTTL time.Duration

	// PollWait is how long an idle poll is held open before returning 204.
	// Polls double as heartbeats, so PollWait must stay well under
	// LeaseTTL. Default 1s.
	PollWait time.Duration

	// MaxTaskDispatches bounds how many times one task may be handed out
	// (initial dispatch + re-dispatches + speculative duplicates) before
	// the task fails with ErrWorkerLost. Default 8.
	MaxTaskDispatches int

	// RedispatchBackoff is the base delay before re-dispatching a task
	// whose worker was lost, doubling per prior dispatch (capped at 16x).
	// Default 50ms.
	RedispatchBackoff time.Duration

	// SpeculativeFactor controls straggler detection: a running task older
	// than SpeculativeFactor x the phase's median completed-task duration
	// gets one duplicate dispatch; the first result wins. Negative
	// disables speculation. Default 4.
	SpeculativeFactor float64

	// SpeculativeMinDone is how many tasks of a phase must have completed
	// before the median is trusted. Default 3.
	SpeculativeMinDone int

	// SpeculativeMinAge floors the straggler threshold so sub-millisecond
	// medians don't trigger duplicates of healthy tasks. Default 200ms.
	SpeculativeMinAge time.Duration

	// TaskTimeout bounds how long one dispatch may run before the
	// coordinator gives up on it and re-queues the task, even while its
	// worker keeps heartbeating. It is the backstop for dispatches whose
	// results are repeatedly lost in transit (the worker looks healthy,
	// the task never settles). 0 disables the timeout.
	TaskTimeout time.Duration

	// Seed feeds the coordinator's re-dispatch jitter source, so a chaos
	// run's backoff schedule is reproducible. Default 1.
	Seed int64

	// JournalPath, when set, enables checkpoint/resume: every accepted
	// task result is fsynced to this append-only log before delivery, and
	// a restarted coordinator replays journaled results at enqueue time
	// instead of re-running their tasks. See journal.go.
	JournalPath string

	// MinReadyWorkers is how many live worker leases GET /readyz requires
	// before reporting ready. Default 1.
	MinReadyWorkers int

	// MaxResultBytes caps one result POST body; larger uploads fail with
	// a structured 413. Default 2 GiB.
	MaxResultBytes int64

	// Obs receives the coordinator's dod_dist_* instruments, also served
	// on GET /metrics. Default: a private registry.
	Obs *obs.Registry

	// Logf, when set, receives scheduling events (worker joins and losses,
	// re-dispatches, speculation).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Listen == "" {
		c.Listen = "127.0.0.1:0"
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.PollWait <= 0 {
		c.PollWait = time.Second
	}
	if c.PollWait > c.LeaseTTL/2 {
		c.PollWait = c.LeaseTTL / 2
	}
	if c.MaxTaskDispatches <= 0 {
		c.MaxTaskDispatches = 8
	}
	if c.RedispatchBackoff <= 0 {
		c.RedispatchBackoff = 50 * time.Millisecond
	}
	if c.SpeculativeFactor == 0 {
		c.SpeculativeFactor = 4
	}
	if c.SpeculativeMinDone <= 0 {
		c.SpeculativeMinDone = 3
	}
	if c.SpeculativeMinAge <= 0 {
		c.SpeculativeMinAge = 200 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MinReadyWorkers <= 0 {
		c.MinReadyWorkers = 1
	}
	if c.MaxResultBytes <= 0 {
		c.MaxResultBytes = 2 << 30
	}
	if c.Obs == nil {
		c.Obs = obs.NewRegistry()
	}
	return c
}

// taskKey identifies a task within its job.
type taskKey struct {
	phase string
	id    int
}

// dispatchInfo records one outstanding hand-out of a task to a worker.
type dispatchInfo struct {
	worker string
	start  time.Time
}

// taskOutcome is what a waiting executor call receives.
type taskOutcome struct {
	mapRes    *mapreduce.MapResult
	reduceRes *mapreduce.ReduceResult
	err       error
}

// task is one schedulable task attempt (from the MapReduce driver's point
// of view); the coordinator may dispatch it several times. All fields after
// construction are guarded by the coordinator mutex.
type task struct {
	job     *jobRun
	phase   string
	id      int
	attempt int

	mapTask    *mapreduce.MapTask
	reduceTask *mapreduce.ReduceTask

	dispatches int
	queued     bool
	done       bool
	speculated bool
	notBefore  time.Time
	running    map[uint64]dispatchInfo // dispatch id -> outstanding hand-out

	outcome chan taskOutcome // buffered 1; receives exactly one value
}

// jobRun is the coordinator-side state of one executor's job. The executor
// holds the pointer for its lifetime; the coordinator's jobs map only
// tracks jobs with undone tasks (for result routing).
type jobRun struct {
	id        uint64
	spec      JobSpec
	specKey   uint64 // journal identity: stable across coordinator restarts
	tasks     map[taskKey]*task
	durations map[string][]time.Duration // completed-task durations per phase, for speculation
}

// workerState is the lease record of one registered worker.
type workerState struct {
	name     string
	lastSeen time.Time
	running  map[uint64]*task // dispatch id -> task
}

// Coordinator is the cluster control plane: it owns the task queue,
// worker leases, re-execution, and speculation, and serves the worker
// protocol plus /metrics and /healthz over HTTP.
type Coordinator struct {
	cfg      Config
	met      *coordMetrics
	ln       net.Listener
	srv      *http.Server
	journal  *journal     // nil unless Config.JournalPath is set
	retryPol retry.Policy // re-dispatch backoff (jittered, capped)

	mu          sync.Mutex
	closed      bool
	draining    bool // /readyz reports not-ready; work in flight still settles
	workers     map[string]*workerState
	jobs        map[uint64]*jobRun
	queue       []*task
	notify      chan struct{} // closed and replaced whenever the queue changes
	jobSeq      uint64
	dispatchSeq uint64
	rng         *rand.Rand // jitter source; guarded by mu

	sweepStop chan struct{}
	sweepDone chan struct{}
}

// NewCoordinator starts a coordinator listening per cfg. Close releases it.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("dist: listen %s: %w", cfg.Listen, err)
	}
	c := &Coordinator{
		cfg: cfg,
		ln:  ln,
		retryPol: retry.Policy{
			Base:   cfg.RedispatchBackoff,
			Max:    16 * cfg.RedispatchBackoff,
			Jitter: true,
		},
		workers:   make(map[string]*workerState),
		jobs:      make(map[uint64]*jobRun),
		notify:    make(chan struct{}),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		sweepStop: make(chan struct{}),
		sweepDone: make(chan struct{}),
	}
	if cfg.JournalPath != "" {
		j, recovered, err := openJournal(cfg.JournalPath)
		if err != nil {
			ln.Close()
			return nil, err
		}
		c.journal = j
		if recovered > 0 {
			c.logf("dist: journal %s: recovered %d settled results", cfg.JournalPath, recovered)
		}
	}
	c.met = newCoordMetrics(cfg.Obs, func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.workers))
	})
	retry.Instrument(cfg.Obs)
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+pathJoin, c.handleJoin)
	mux.HandleFunc("POST "+pathPoll, c.handlePoll)
	mux.HandleFunc("POST "+pathResult, c.handleResult)
	mux.HandleFunc("POST "+pathNack, c.handleNack)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET "+pathReady, c.handleReady)
	c.srv = &http.Server{
		Handler: mux,
		// Header-read and idle timeouts bound slow-loris and dead-keepalive
		// connections; no global write timeout (long polls are held open).
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go c.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	go c.sweeper()
	return c, nil
}

// URL returns the coordinator's base URL, e.g. "http://127.0.0.1:41327".
func (c *Coordinator) URL() string { return "http://" + c.ln.Addr().String() }

// Addr returns the coordinator's bound network address.
func (c *Coordinator) Addr() net.Addr { return c.ln.Addr() }

// Registry returns the registry holding the coordinator's dod_dist_*
// instruments (also served on GET /metrics).
func (c *Coordinator) Registry() *obs.Registry { return c.cfg.Obs }

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Workers returns the number of workers currently holding a live lease.
func (c *Coordinator) Workers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.workers)
}

// WaitForWorkers blocks until at least n workers hold live leases or ctx
// expires.
func (c *Coordinator) WaitForWorkers(ctx context.Context, n int) error {
	t := time.NewTicker(5 * time.Millisecond)
	defer t.Stop()
	for {
		if c.Workers() >= n {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("dist: waiting for %d workers (have %d): %w", n, c.Workers(), ctx.Err())
		case <-t.C:
		}
	}
}

// Stats snapshots the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	workers := len(c.workers)
	c.mu.Unlock()
	m := c.met
	perPhase := func(cm map[string]*obs.Counter) int64 {
		return cm["map"].Value() + cm["reduce"].Value()
	}
	return Stats{
		Workers:        workers,
		Heartbeats:     m.heartbeats.Value(),
		Dispatches:     perPhase(m.dispatches),
		TasksOK:        perPhase(m.tasksOK),
		TasksErr:       perPhase(m.tasksErr),
		TasksLate:      perPhase(m.tasksLate),
		BytesShipped:   m.bytesShipped.Value(),
		BytesCollected: m.bytesBack.Value(),
		WorkersLost:    m.workersLost.Value(),
		Redispatches:   m.redispatch.Value(),
		Speculative:    m.speculative.Value(),
		Nacks:          m.nacks.Value(),
		TaskTimeouts:   m.taskTimeouts.Value(),
		JournalReplays: m.journalReplays.Value(),
	}
}

// Close shuts the coordinator down: every undone task fails with
// ErrJobAborted, waiting pollers are released, and the listener closes.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	for _, j := range c.jobs {
		for key, tk := range j.tasks {
			if !tk.done {
				tk.done = true
				delete(j.tasks, key)
				tk.outcome <- taskOutcome{err: fmt.Errorf("dist: coordinator closed: %w", errs.ErrJobAborted)}
			}
		}
	}
	c.kickLocked()
	c.mu.Unlock()
	close(c.sweepStop)
	err := c.srv.Close()
	<-c.sweepDone
	if jerr := c.journal.Close(); err == nil {
		err = jerr
	}
	return err
}

// SetDraining flips the coordinator's readiness: while draining, GET
// /readyz answers 503 so load balancers stop routing new work here, but
// in-flight polls, results, and queued tasks keep settling normally.
func (c *Coordinator) SetDraining(draining bool) {
	c.mu.Lock()
	c.draining = draining
	c.mu.Unlock()
}

// Executor returns a mapreduce.Executor that ships this job's task attempts
// to the coordinator's workers. spec must name a job kind registered in the
// worker binaries.
func (c *Coordinator) Executor(spec JobSpec) mapreduce.Executor {
	c.mu.Lock()
	c.jobSeq++
	id := c.jobSeq
	c.mu.Unlock()
	return &remoteExecutor{c: c, job: &jobRun{
		id:        id,
		spec:      spec,
		specKey:   specKey(spec),
		tasks:     make(map[taskKey]*task),
		durations: make(map[string][]time.Duration),
	}}
}

// remoteExecutor adapts the coordinator to mapreduce's Executor seam: each
// ExecMap/ExecReduce call enqueues one task and blocks until a worker's
// result is accepted (or the task fails / ctx is cancelled). Lost-worker
// re-dispatch and speculation happen inside the coordinator without
// consuming a mapreduce attempt; only failures the cluster cannot recover
// from surface here.
type remoteExecutor struct {
	c   *Coordinator
	job *jobRun
}

func (e *remoteExecutor) ExecMap(ctx context.Context, t mapreduce.MapTask) (*mapreduce.MapResult, error) {
	tk := &task{
		job: e.job, phase: "map", id: t.TaskID, attempt: t.Attempt,
		mapTask: &t,
		running: make(map[uint64]dispatchInfo),
		outcome: make(chan taskOutcome, 1),
	}
	return awaitTask(ctx, e.c, tk, func(out taskOutcome) *mapreduce.MapResult { return out.mapRes })
}

func (e *remoteExecutor) ExecReduce(ctx context.Context, t mapreduce.ReduceTask) (*mapreduce.ReduceResult, error) {
	tk := &task{
		job: e.job, phase: "reduce", id: t.TaskID, attempt: t.Attempt,
		reduceTask: &t,
		running:    make(map[uint64]dispatchInfo),
		outcome:    make(chan taskOutcome, 1),
	}
	return awaitTask(ctx, e.c, tk, func(out taskOutcome) *mapreduce.ReduceResult { return out.reduceRes })
}

// awaitTask enqueues tk and blocks for its outcome or ctx cancellation.
func awaitTask[R any](ctx context.Context, c *Coordinator, tk *task, pick func(taskOutcome) *R) (*R, error) {
	if err := c.enqueue(tk); err != nil {
		return nil, err
	}
	select {
	case out := <-tk.outcome:
		if out.err != nil {
			return nil, out.err
		}
		return pick(out), nil
	case <-ctx.Done():
		c.abandon(tk)
		return nil, ctx.Err()
	}
}

// enqueue registers tk with its job and makes it dispatchable — unless the
// journal already holds this task's settled result from a previous run of
// the same spec, in which case the outcome is replayed from disk and no
// worker ever sees the task.
func (c *Coordinator) enqueue(tk *task) error {
	if body, ok := c.journal.lookup(journalKey{spec: tk.job.specKey, phase: tk.phase, task: tk.id}); ok {
		if h, buckets, output, err := decodeResultBody(body); err == nil && h.Err == "" {
			if out := buildOutcome(tk, h, buckets, output); out.err == nil {
				c.met.journalReplays.Inc()
				tk.done = true
				tk.outcome <- out
				return nil
			}
		}
		// A journal entry that fails to decode or validate (e.g. the spec
		// hash collided across incompatible shapes) is ignored; the task
		// runs normally and the fresh result overwrites nothing.
		c.logf("dist: journal entry for %s task %d unusable, re-running", tk.phase, tk.id)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("dist: coordinator closed: %w", errs.ErrJobAborted)
	}
	if c.jobs[tk.job.id] == nil {
		c.jobs[tk.job.id] = tk.job
	}
	tk.job.tasks[taskKey{tk.phase, tk.id}] = tk
	tk.queued = true
	c.queue = append(c.queue, tk)
	c.kickLocked()
	return nil
}

// buildOutcome validates a decoded result body against tk's expected shape
// and assembles the executor-facing outcome. Shared by the live result
// path and journal replay, so a replayed task is byte-identical to a
// freshly computed one.
func buildOutcome(tk *task, h resultHeader, buckets [][]mapreduce.Pair, output []mapreduce.Pair) taskOutcome {
	metric := metricFromWire(h.Metric)
	spans := spansFromWire(h.Spans)
	var out taskOutcome
	switch {
	case tk.mapTask != nil:
		if len(buckets) != tk.mapTask.NumReducers {
			out.err = fmt.Errorf("dist: map task %d result has %d buckets, want %d: %w", h.Task, len(buckets), tk.mapTask.NumReducers, errs.ErrWireFormat)
		} else {
			out.mapRes = &mapreduce.MapResult{Buckets: buckets, Metric: metric, Spans: spans}
		}
	default:
		out.reduceRes = &mapreduce.ReduceResult{Output: output, Metric: metric, Spans: spans}
	}
	return out
}

// abandon withdraws a task whose executor call was cancelled. In-flight
// dispatches are left to finish; their results arrive late and are
// discarded.
func (c *Coordinator) abandon(tk *task) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !tk.done {
		c.finishLocked(tk, taskOutcome{err: context.Canceled}, false)
	}
}

// finishLocked settles a task exactly once: removes it from its job,
// deregisters the job when it has no undone tasks left, and (if deliver)
// hands the outcome to the waiting executor call.
func (c *Coordinator) finishLocked(tk *task, out taskOutcome, deliver bool) {
	tk.done = true
	key := taskKey{tk.phase, tk.id}
	if tk.job.tasks[key] == tk {
		delete(tk.job.tasks, key)
	}
	if len(tk.job.tasks) == 0 {
		// Drop the routing entry; the executor still holds the jobRun and
		// re-registers it (same pointer, durations intact) on next enqueue.
		delete(c.jobs, tk.job.id)
	}
	if deliver {
		tk.outcome <- out
	}
}

// kickLocked wakes every poller waiting for queue changes.
func (c *Coordinator) kickLocked() {
	close(c.notify)
	c.notify = make(chan struct{})
}

// requeueLocked puts tk back on the queue after delay (0 = immediately
// dispatchable, used by speculation to run a duplicate).
func (c *Coordinator) requeueLocked(tk *task, delay time.Duration) {
	tk.queued = true
	tk.notBefore = time.Now().Add(delay)
	c.queue = append(c.queue, tk)
	if delay > 0 {
		// Pollers wake on queue changes, not timers; arrange a kick for
		// when the backoff expires.
		time.AfterFunc(delay+time.Millisecond, func() {
			c.mu.Lock()
			defer c.mu.Unlock()
			c.kickLocked()
		})
	} else {
		c.kickLocked()
	}
}

// redispatchDelay is the per-task backoff before re-dispatch: capped
// exponential growth with full jitter (retry.Policy), so a burst of tasks
// orphaned by one lost worker doesn't re-dispatch in lockstep. Callers
// hold c.mu (the jitter rng is guarded by it).
func (c *Coordinator) redispatchDelay(dispatches int) time.Duration {
	return c.retryPol.Delay(dispatches, c.rng)
}

// ensureWorkerLocked registers a worker on first contact (join is an
// explicit handshake, but any authenticated poll also establishes a lease,
// which makes worker restarts under the same name seamless).
func (c *Coordinator) ensureWorkerLocked(name string) *workerState {
	ws := c.workers[name]
	if ws == nil {
		ws = &workerState{name: name, running: make(map[uint64]*task)}
		c.workers[name] = ws
		c.logf("dist: worker %s joined (%d workers)", name, len(c.workers))
	}
	ws.lastSeen = time.Now()
	return ws
}

// tryDispatchLocked pops the first dispatchable task for worker ws,
// returning it plus the header describing this dispatch. Done tasks are
// dropped from the queue lazily; backing-off tasks are skipped.
func (c *Coordinator) tryDispatchLocked(ws *workerState) (*task, taskHeader) {
	now := time.Now()
	for i := 0; i < len(c.queue); {
		tk := c.queue[i]
		if tk.done || !tk.queued {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			continue
		}
		if now.Before(tk.notBefore) {
			i++
			continue
		}
		c.queue = append(c.queue[:i], c.queue[i+1:]...)
		tk.queued = false
		c.dispatchSeq++
		did := c.dispatchSeq
		tk.dispatches++
		tk.running[did] = dispatchInfo{worker: ws.name, start: now}
		ws.running[did] = tk
		h := taskHeader{
			Job: tk.job.id, Phase: tk.phase, Task: tk.id, Dispatch: did,
			Attempt: tk.attempt, Spec: tk.job.spec,
		}
		if tk.mapTask != nil {
			h.NumReducers = tk.mapTask.NumReducers
			h.SplitName = tk.mapTask.Split.Name
			h.Replicas = tk.mapTask.Split.Replicas
		}
		return tk, h
	}
	return nil, taskHeader{}
}

// encodeTask serializes a dispatch. Called outside the coordinator lock:
// task payloads are immutable after construction.
func encodeTask(tk *task, h taskHeader) ([]byte, error) {
	if tk.mapTask != nil {
		return encodeMapTaskBody(h, tk.mapTask.Split)
	}
	return encodeReduceTaskBody(h, tk.reduceTask.Groups)
}

// ---- HTTP handlers ----

// maxControlBody caps the small JSON control messages (join, poll, nack);
// anything larger is garbage or abuse.
const maxControlBody = 1 << 16

// writeStructuredError answers with a machine-readable error body, so
// clients distinguish "you sent too much" (413) from "I couldn't read in
// time" (408) from plain bad requests without parsing prose.
func writeStructuredError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct { //nolint:errcheck
		Error   string `json:"error"`
		Message string `json:"message"`
	}{Error: code, Message: msg})
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxControlBody)
	var req joinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
		http.Error(w, "dist: bad join request", http.StatusBadRequest)
		return
	}
	c.mu.Lock()
	closed := c.closed
	if !closed {
		c.ensureWorkerLocked(req.Worker)
	}
	c.mu.Unlock()
	if closed {
		http.Error(w, "dist: coordinator closed", http.StatusGone)
		return
	}
	c.met.joins.Inc()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(joinResponse{ //nolint:errcheck
		LeaseMs:    c.cfg.LeaseTTL.Milliseconds(),
		PollWaitMs: c.cfg.PollWait.Milliseconds(),
	})
}

func (c *Coordinator) handlePoll(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxControlBody)
	var req pollRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" {
		http.Error(w, "dist: bad poll request", http.StatusBadRequest)
		return
	}
	c.met.heartbeats.Inc()
	deadline := time.Now().Add(c.cfg.PollWait)
	for {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			http.Error(w, "dist: coordinator closed", http.StatusGone)
			return
		}
		ws := c.ensureWorkerLocked(req.Worker)
		tk, h := c.tryDispatchLocked(ws)
		wait := c.notify
		c.mu.Unlock()

		if tk != nil {
			body, err := encodeTask(tk, h)
			if err != nil {
				// Serialization never fails for well-formed tasks; treat as
				// a fatal job error rather than retrying a poisoned task.
				c.mu.Lock()
				if !tk.done {
					c.finishLocked(tk, taskOutcome{err: err}, true)
				}
				c.mu.Unlock()
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			c.met.phaseCounterDispatch(tk.phase).Inc()
			c.met.bytesShipped.Add(int64(len(body)))
			w.Header().Set("Content-Type", "application/octet-stream")
			// The dispatch ID rides in a header so a worker that cannot
			// decode the (possibly corrupted) body can still nack it.
			w.Header().Set(headerDispatch, fmt.Sprintf("%d", h.Dispatch))
			w.Write(body) //nolint:errcheck // worker re-polls; lease recovers the task
			return
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		t := time.NewTimer(remain)
		select {
		case <-wait:
		case <-t.C:
		case <-r.Context().Done():
			t.Stop()
			return
		}
		t.Stop()
	}
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, c.cfg.MaxResultBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeStructuredError(w, http.StatusRequestEntityTooLarge, "result_too_large",
				fmt.Sprintf("dist: result body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeStructuredError(w, http.StatusBadRequest, "read_failed", "dist: reading result: "+err.Error())
		return
	}
	h, buckets, output, err := decodeResultBody(body)
	if err != nil {
		// Corrupted in transit (the integrity frame makes this certain,
		// never a silent wrong result). 400 is retryable on the worker
		// side: a re-send of the intact body will decode.
		writeStructuredError(w, http.StatusBadRequest, "undecodable_result", err.Error())
		return
	}
	c.met.bytesBack.Add(int64(len(body)))

	now := time.Now()
	c.mu.Lock()
	if ws := c.workers[h.Worker]; ws != nil {
		ws.lastSeen = now
		delete(ws.running, h.Dispatch)
	}
	var tk *task
	if j := c.jobs[h.Job]; j != nil {
		tk = j.tasks[taskKey{h.Phase, h.Task}]
	}
	if tk == nil || tk.done {
		// Speculative loser, or a result for a task that was already
		// settled (lease expired and re-ran, caller cancelled, ...).
		c.mu.Unlock()
		phaseCounter(c.met.tasksLate, h.Phase).Inc()
		w.WriteHeader(http.StatusOK)
		return
	}
	delete(tk.running, h.Dispatch)

	if h.Err != "" {
		// The task's user code failed on the worker. Task execution is
		// deterministic, so re-dispatching elsewhere cannot help; surface
		// it to the MapReduce driver, whose retry policy decides.
		c.finishLocked(tk, taskOutcome{err: fmt.Errorf("dist: %s task %d on worker %s: %s", h.Phase, h.Task, h.Worker, h.Err)}, true)
		c.mu.Unlock()
		phaseCounter(c.met.tasksErr, h.Phase).Inc()
		w.WriteHeader(http.StatusOK)
		return
	}

	metric := metricFromWire(h.Metric)
	out := buildOutcome(tk, h, buckets, output)
	if out.err == nil {
		tk.job.durations[tk.phase] = append(tk.job.durations[tk.phase], metric.Duration)
		// Write-ahead: the journal must hold the result before the driver
		// can observe it, or a crash between delivery and append would
		// re-run a task the driver already consumed.
		if err := c.journal.append(journalKey{spec: tk.job.specKey, phase: tk.phase, task: tk.id}, body); err != nil {
			c.logf("dist: journal append for %s task %d failed: %v", tk.phase, tk.id, err)
		} else if c.journal != nil {
			c.met.journalRecords.Inc()
		}
	}
	c.finishLocked(tk, out, true)
	c.mu.Unlock()

	if out.err == nil {
		phaseCounter(c.met.tasksOK, h.Phase).Inc()
		c.met.taskSeconds[normPhase(h.Phase)].Observe(metric.Duration.Seconds())
	} else {
		phaseCounter(c.met.tasksErr, h.Phase).Inc()
	}
	w.WriteHeader(http.StatusOK)
}

// handleNack processes a worker's report that a dispatched task payload
// arrived undecodable (corrupted in transit). The dispatch is withdrawn
// and the task re-queued immediately — without the nack, the worker would
// keep heartbeating and the dispatch would sit until TaskTimeout or
// speculation noticed it.
func (c *Coordinator) handleNack(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxControlBody)
	var req nackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker == "" || req.Dispatch == 0 {
		writeStructuredError(w, http.StatusBadRequest, "bad_nack", "dist: bad nack request")
		return
	}
	c.met.nacks.Inc()
	c.mu.Lock()
	var tk *task
	if ws := c.workers[req.Worker]; ws != nil {
		ws.lastSeen = time.Now()
		tk = ws.running[req.Dispatch]
		delete(ws.running, req.Dispatch)
	}
	if tk != nil {
		delete(tk.running, req.Dispatch)
		if !tk.done && !tk.queued && len(tk.running) == 0 {
			if tk.dispatches >= c.cfg.MaxTaskDispatches {
				c.finishLocked(tk, taskOutcome{err: fmt.Errorf("dist: %s task %d: %w after %d dispatches", tk.phase, tk.id, errs.ErrWorkerLost, tk.dispatches)}, true)
			} else {
				c.logf("dist: dispatch %d (%s task %d) nacked by %s: %s", req.Dispatch, tk.phase, tk.id, req.Worker, req.Reason)
				c.met.redispatch.Inc()
				c.requeueLocked(tk, c.redispatchDelay(tk.dispatches))
			}
		}
	}
	c.mu.Unlock()
	w.WriteHeader(http.StatusOK)
}

// handleReady serves GET /readyz: distinct from /healthz (liveness — the
// process is up), readiness means the coordinator can actually take work:
// not closed, not draining, and enough workers hold live leases.
func (c *Coordinator) handleReady(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	workers := len(c.workers)
	ready := !c.closed && !c.draining && workers >= c.cfg.MinReadyWorkers
	var reason string
	switch {
	case c.closed:
		reason = "closed"
	case c.draining:
		reason = "draining"
	case workers < c.cfg.MinReadyWorkers:
		reason = fmt.Sprintf("%d/%d workers", workers, c.cfg.MinReadyWorkers)
	}
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(struct { //nolint:errcheck
		Ready   bool   `json:"ready"`
		Workers int    `json:"workers"`
		Reason  string `json:"reason,omitempty"`
	}{Ready: ready, Workers: workers, Reason: reason})
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.TextContentType)
	c.cfg.Obs.WritePrometheus(w) //nolint:errcheck
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	resp := struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
		Queued  int    `json:"queued"`
		Jobs    int    `json:"jobs"`
	}{Status: "ok", Workers: len(c.workers), Queued: len(c.queue), Jobs: len(c.jobs)}
	c.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp) //nolint:errcheck
}

// ---- lease sweeper and speculation ----

func (c *Coordinator) sweeper() {
	defer close(c.sweepDone)
	interval := min(c.cfg.LeaseTTL/4, 250*time.Millisecond)
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.sweepStop:
			return
		case <-t.C:
			c.sweep(time.Now())
		}
	}
}

// sweep expires worker leases (re-dispatching their tasks) and duplicates
// stragglers.
func (c *Coordinator) sweep(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}

	for name, ws := range c.workers {
		if now.Sub(ws.lastSeen) <= c.cfg.LeaseTTL {
			continue
		}
		delete(c.workers, name)
		c.met.workersLost.Inc()
		c.logf("dist: worker %s lost (no heartbeat for %v), re-dispatching %d tasks", name, now.Sub(ws.lastSeen).Round(time.Millisecond), len(ws.running))
		for did, tk := range ws.running {
			delete(tk.running, did)
			if tk.done || tk.queued || len(tk.running) > 0 {
				continue // settled, or another dispatch is still alive
			}
			if tk.dispatches >= c.cfg.MaxTaskDispatches {
				c.finishLocked(tk, taskOutcome{err: fmt.Errorf("dist: %s task %d: %w after %d dispatches", tk.phase, tk.id, errs.ErrWorkerLost, tk.dispatches)}, true)
				continue
			}
			c.met.redispatch.Inc()
			c.requeueLocked(tk, c.redispatchDelay(tk.dispatches))
		}
	}

	// TaskTimeout backstop: a dispatch whose worker keeps heartbeating but
	// whose result never arrives (lost in transit, worker wedged on one
	// task) would otherwise hang until speculation noticed it — and
	// speculation only ever adds one duplicate. Past the timeout the
	// dispatch is withdrawn and the task re-queued like a lease expiry.
	if c.cfg.TaskTimeout > 0 {
		for _, ws := range c.workers {
			for did, tk := range ws.running {
				di, ok := tk.running[did]
				if !ok || now.Sub(di.start) <= c.cfg.TaskTimeout {
					continue
				}
				delete(ws.running, did)
				delete(tk.running, did)
				c.met.taskTimeouts.Inc()
				c.logf("dist: dispatch %d (%s task %d on %s) exceeded task timeout %v, withdrawing", did, tk.phase, tk.id, ws.name, c.cfg.TaskTimeout)
				if tk.done || tk.queued || len(tk.running) > 0 {
					continue
				}
				if tk.dispatches >= c.cfg.MaxTaskDispatches {
					c.finishLocked(tk, taskOutcome{err: fmt.Errorf("dist: %s task %d: %w after %d dispatches", tk.phase, tk.id, errs.ErrWorkerLost, tk.dispatches)}, true)
					continue
				}
				c.met.redispatch.Inc()
				c.requeueLocked(tk, c.redispatchDelay(tk.dispatches))
			}
		}
	}

	if c.cfg.SpeculativeFactor < 0 {
		return
	}
	for _, j := range c.jobs {
		for phase, durs := range j.durations {
			if len(durs) < c.cfg.SpeculativeMinDone {
				continue
			}
			threshold := time.Duration(float64(medianDuration(durs)) * c.cfg.SpeculativeFactor)
			if threshold < c.cfg.SpeculativeMinAge {
				threshold = c.cfg.SpeculativeMinAge
			}
			for _, tk := range j.tasks {
				if tk.phase != phase || tk.done || tk.queued || tk.speculated ||
					len(tk.running) != 1 || tk.dispatches >= c.cfg.MaxTaskDispatches {
					continue
				}
				var started time.Time
				for _, di := range tk.running {
					started = di.start
				}
				if now.Sub(started) < threshold {
					continue
				}
				tk.speculated = true
				c.met.speculative.Inc()
				c.logf("dist: speculating %s task %d (running %v, phase median threshold %v)", tk.phase, tk.id, now.Sub(started).Round(time.Millisecond), threshold.Round(time.Millisecond))
				c.requeueLocked(tk, 0)
			}
		}
	}
}

func medianDuration(durs []time.Duration) time.Duration {
	s := append([]time.Duration(nil), durs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

func normPhase(phase string) string {
	if phase == "reduce" {
		return "reduce"
	}
	return "map"
}

// phaseCounterDispatch is a tiny helper keeping handlePoll readable.
func (m *coordMetrics) phaseCounterDispatch(phase string) *obs.Counter {
	return phaseCounter(m.dispatches, phase)
}
