package dist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"time"

	"dod/internal/codec"
	"dod/internal/mapreduce"
	"dod/internal/obs"
)

// Wire protocol. A task or result message body is a sequence of
// internal/codec frames: one JSON header frame (control plane — small,
// debuggable) followed by bulk-data frames in codec binary format (data
// plane — the same serialized bytes the in-process engine shuffles, so the
// coordinator's byte counters measure real network shuffle volume), sealed
// by a codec.FrameSum integrity frame so transport corruption anywhere in
// a body is a typed decode failure, never a silently wrong task or result.
//
// Task body:    header, then frameSplit (map) or frameGroup* (reduce).
// Result body:  header, then frameBucket* (map: one per reducer, KV list)
//
//	or frameOutput (reduce: KV list).
//
// Both end with the integrity frame.
const (
	frameHeader byte = 1
	frameSplit  byte = 2
	frameGroup  byte = 3 // uvarint key + codec bytes-list of values
	frameBucket byte = 4
	frameOutput byte = 5
)

// HTTP endpoints served by the coordinator.
const (
	pathJoin   = "/dist/v1/join"
	pathPoll   = "/dist/v1/poll"
	pathResult = "/dist/v1/result"
	pathNack   = "/dist/v1/nack"
	pathReady  = "/readyz"
)

// headerDispatch duplicates the dispatch ID of a task response in an HTTP
// header. If the body arrives corrupted the worker cannot read the ID out
// of it, but it can still nack the dispatch by this header so the
// coordinator re-queues immediately instead of waiting for speculation or
// a lease timeout.
const headerDispatch = "X-Dod-Dispatch"

// taskHeader is the control-plane header of a dispatched task.
type taskHeader struct {
	Job         uint64  `json:"job"`
	Phase       string  `json:"phase"` // "map" or "reduce"
	Task        int     `json:"task"`
	Dispatch    uint64  `json:"dispatch"` // unique per dispatch, distinguishes duplicates
	Attempt     int     `json:"attempt"`
	NumReducers int     `json:"numReducers,omitempty"`
	SplitName   string  `json:"splitName,omitempty"`
	Replicas    []int   `json:"replicas,omitempty"`
	Spec        JobSpec `json:"spec"`
}

// resultHeader is the control-plane header of a task result.
type resultHeader struct {
	Job      uint64     `json:"job"`
	Phase    string     `json:"phase"`
	Task     int        `json:"task"`
	Dispatch uint64     `json:"dispatch"`
	Worker   string     `json:"worker"`
	Err      string     `json:"err,omitempty"` // non-empty: task attempt failed on the worker
	Metric   wireMetric `json:"metric"`
	Spans    []wireSpan `json:"spans,omitempty"`
}

// wireMetric is mapreduce.TaskMetric flattened for JSON transport.
type wireMetric struct {
	DurationNs int64            `json:"durationNs"`
	RecordsIn  int64            `json:"recordsIn"`
	RecordsOut int64            `json:"recordsOut"`
	BytesIn    int64            `json:"bytesIn"`
	BytesOut   int64            `json:"bytesOut"`
	Counters   map[string]int64 `json:"counters,omitempty"`
}

func metricToWire(m mapreduce.TaskMetric) wireMetric {
	return wireMetric{
		DurationNs: int64(m.Duration),
		RecordsIn:  m.RecordsIn, RecordsOut: m.RecordsOut,
		BytesIn: m.BytesIn, BytesOut: m.BytesOut,
		Counters: m.Counters,
	}
}

func metricFromWire(w wireMetric) mapreduce.TaskMetric {
	return mapreduce.TaskMetric{
		Duration:  time.Duration(w.DurationNs),
		RecordsIn: w.RecordsIn, RecordsOut: w.RecordsOut,
		BytesIn: w.BytesIn, BytesOut: w.BytesOut,
		Counters: w.Counters,
	}
}

// wireSpan is obs.Span flattened for JSON transport, so /metrics and
// Result.Trace() on the coordinator side cover work done on remote workers.
type wireSpan struct {
	Name        string     `json:"name"`
	StartUnixNs int64      `json:"startUnixNs"`
	DurationNs  int64      `json:"durationNs"`
	Attrs       []wireAttr `json:"attrs,omitempty"`
}

type wireAttr struct {
	K string `json:"k"`
	V string `json:"v"`
}

func spansToWire(spans []obs.Span) []wireSpan {
	if len(spans) == 0 {
		return nil
	}
	out := make([]wireSpan, 0, len(spans))
	for _, s := range spans {
		ws := wireSpan{Name: s.Name, StartUnixNs: s.Start.UnixNano(), DurationNs: int64(s.Duration)}
		for _, a := range s.Attrs {
			ws.Attrs = append(ws.Attrs, wireAttr{K: a.Key, V: a.Value})
		}
		out = append(out, ws)
	}
	return out
}

func spansFromWire(spans []wireSpan) []obs.Span {
	if len(spans) == 0 {
		return nil
	}
	out := make([]obs.Span, 0, len(spans))
	for _, ws := range spans {
		s := obs.Span{Name: ws.Name, Start: time.Unix(0, ws.StartUnixNs), Duration: time.Duration(ws.DurationNs)}
		for _, a := range ws.Attrs {
			s.Attrs = append(s.Attrs, obs.Attr{Key: a.K, Value: a.V})
		}
		out = append(out, s)
	}
	return out
}

// appendHeader marshals h as the leading header frame.
func appendHeader(dst []byte, h any) ([]byte, error) {
	raw, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("dist: marshal header: %w", err)
	}
	return codec.AppendFrame(dst, frameHeader, raw), nil
}

// decodeHeader reads the leading header frame into h and returns the rest
// of the body.
func decodeHeader(body []byte, h any) (rest []byte, err error) {
	kind, payload, n, err := codec.DecodeFrame(body)
	if err != nil {
		return nil, err
	}
	if kind != frameHeader {
		return nil, codec.WireErrorf("dist: message starts with frame kind %d, want header", kind)
	}
	if err := json.Unmarshal(payload, h); err != nil {
		return nil, codec.WireErrorf("dist: header: %v", err)
	}
	return body[n:], nil
}

// encodeMapTaskBody builds the wire body of a map task dispatch.
func encodeMapTaskBody(h taskHeader, split mapreduce.Split) ([]byte, error) {
	buf, err := appendHeader(nil, h)
	if err != nil {
		return nil, err
	}
	return codec.AppendSumFrame(codec.AppendFrame(buf, frameSplit, split.Data)), nil
}

// encodeReduceTaskBody builds the wire body of a reduce task dispatch: one
// group frame per key group.
func encodeReduceTaskBody(h taskHeader, groups []mapreduce.Group) ([]byte, error) {
	buf, err := appendHeader(nil, h)
	if err != nil {
		return nil, err
	}
	var scratch []byte
	for _, g := range groups {
		scratch = binary.AppendUvarint(scratch[:0], g.Key)
		scratch = codec.AppendBytesList(scratch, g.Values)
		buf = codec.AppendFrame(buf, frameGroup, scratch)
	}
	return codec.AppendSumFrame(buf), nil
}

// decodeTaskBody parses a dispatched task. Exactly one of mt/rt is non-nil,
// chosen by the header phase. Payload slices alias body.
func decodeTaskBody(body []byte) (h taskHeader, mt *mapreduce.MapTask, rt *mapreduce.ReduceTask, err error) {
	body, err = codec.StripSumFrame(body)
	if err != nil {
		return taskHeader{}, nil, nil, err
	}
	rest, err := decodeHeader(body, &h)
	if err != nil {
		return taskHeader{}, nil, nil, err
	}
	switch h.Phase {
	case "map":
		kind, payload, n, err := codec.DecodeFrame(rest)
		if err != nil {
			return taskHeader{}, nil, nil, err
		}
		if kind != frameSplit {
			return taskHeader{}, nil, nil, codec.WireErrorf("dist: map task carries frame kind %d, want split", kind)
		}
		rest = rest[n:]
		if len(rest) != 0 {
			return taskHeader{}, nil, nil, codec.WireErrorf("dist: %d trailing bytes after map split", len(rest))
		}
		return h, &mapreduce.MapTask{
			TaskID: h.Task, Attempt: h.Attempt, NumReducers: h.NumReducers,
			Split: mapreduce.Split{Name: h.SplitName, Data: payload, Replicas: h.Replicas},
		}, nil, nil
	case "reduce":
		var groups []mapreduce.Group
		for len(rest) > 0 {
			kind, payload, n, err := codec.DecodeFrame(rest)
			if err != nil {
				return taskHeader{}, nil, nil, err
			}
			if kind != frameGroup {
				return taskHeader{}, nil, nil, codec.WireErrorf("dist: reduce task carries frame kind %d, want group", kind)
			}
			key, m := binary.Uvarint(payload)
			if m <= 0 {
				return taskHeader{}, nil, nil, codec.ErrTruncated
			}
			values, _, err := codec.DecodeBytesList(payload[m:])
			if err != nil {
				return taskHeader{}, nil, nil, err
			}
			groups = append(groups, mapreduce.Group{Key: key, Values: values})
			rest = rest[n:]
		}
		return h, nil, &mapreduce.ReduceTask{TaskID: h.Task, Attempt: h.Attempt, Groups: groups}, nil
	default:
		return taskHeader{}, nil, nil, codec.WireErrorf("dist: unknown task phase %q", h.Phase)
	}
}

func toKVs(pairs []mapreduce.Pair) []codec.KV {
	kvs := make([]codec.KV, len(pairs))
	for i, p := range pairs {
		kvs[i] = codec.KV{Key: p.Key, Value: p.Value}
	}
	return kvs
}

func fromKVs(kvs []codec.KV) []mapreduce.Pair {
	if len(kvs) == 0 {
		return nil
	}
	pairs := make([]mapreduce.Pair, len(kvs))
	for i, kv := range kvs {
		pairs[i] = mapreduce.Pair{Key: kv.Key, Value: kv.Value}
	}
	return pairs
}

// encodeMapResultBody builds the wire body of a successful map attempt: one
// bucket frame per reducer (possibly empty), in reducer order.
func encodeMapResultBody(h resultHeader, res *mapreduce.MapResult) ([]byte, error) {
	buf, err := appendHeader(nil, h)
	if err != nil {
		return nil, err
	}
	for _, bucket := range res.Buckets {
		buf = codec.AppendFrame(buf, frameBucket, codec.AppendKVs(nil, toKVs(bucket)))
	}
	return codec.AppendSumFrame(buf), nil
}

// encodeReduceResultBody builds the wire body of a successful reduce attempt.
func encodeReduceResultBody(h resultHeader, res *mapreduce.ReduceResult) ([]byte, error) {
	buf, err := appendHeader(nil, h)
	if err != nil {
		return nil, err
	}
	return codec.AppendSumFrame(codec.AppendFrame(buf, frameOutput, codec.AppendKVs(nil, toKVs(res.Output)))), nil
}

// encodeErrorResultBody builds the wire body of a failed attempt (header
// only, Err set).
func encodeErrorResultBody(h resultHeader) ([]byte, error) {
	buf, err := appendHeader(nil, h)
	if err != nil {
		return nil, err
	}
	return codec.AppendSumFrame(buf), nil
}

// decodeResultBody parses a result message. For a successful map result,
// buckets has one entry per reducer; for reduce, output holds the task's
// emissions. Both are nil when h.Err is set.
func decodeResultBody(body []byte) (h resultHeader, buckets [][]mapreduce.Pair, output []mapreduce.Pair, err error) {
	body, err = codec.StripSumFrame(body)
	if err != nil {
		return resultHeader{}, nil, nil, err
	}
	rest, err := decodeHeader(body, &h)
	if err != nil {
		return resultHeader{}, nil, nil, err
	}
	if h.Err != "" {
		if len(rest) != 0 {
			return resultHeader{}, nil, nil, codec.WireErrorf("dist: error result carries %d payload bytes", len(rest))
		}
		return h, nil, nil, nil
	}
	for len(rest) > 0 {
		kind, payload, n, err := codec.DecodeFrame(rest)
		if err != nil {
			return resultHeader{}, nil, nil, err
		}
		kvs, _, err := codec.DecodeKVs(payload)
		if err != nil {
			return resultHeader{}, nil, nil, err
		}
		switch {
		case kind == frameBucket && h.Phase == "map":
			buckets = append(buckets, fromKVs(kvs))
		case kind == frameOutput && h.Phase == "reduce" && output == nil:
			output = fromKVs(kvs)
			if output == nil {
				output = []mapreduce.Pair{} // distinguish "empty output" from "missing frame"
			}
		default:
			return resultHeader{}, nil, nil, codec.WireErrorf("dist: unexpected frame kind %d in %s result", kind, h.Phase)
		}
		rest = rest[n:]
	}
	if h.Phase == "map" && buckets == nil {
		return resultHeader{}, nil, nil, codec.WireErrorf("dist: map result missing bucket frames")
	}
	if h.Phase == "reduce" && output == nil {
		return resultHeader{}, nil, nil, codec.WireErrorf("dist: reduce result missing output frame")
	}
	return h, buckets, output, nil
}

// joinRequest / joinResponse are the JSON bodies of the worker join
// handshake. pollRequest is the body of a task poll.
type joinRequest struct {
	Worker   string   `json:"worker"`
	Capacity int      `json:"capacity"`
	Kinds    []string `json:"kinds,omitempty"` // job kinds the worker can build
}

type joinResponse struct {
	LeaseMs    int64 `json:"leaseMs"`    // poll at least this often or be declared lost
	PollWaitMs int64 `json:"pollWaitMs"` // how long the coordinator holds an idle poll
}

type pollRequest struct {
	Worker string `json:"worker"`
}

// nackRequest reports a dispatch whose payload the worker could not decode
// (corrupted in transit); the coordinator re-queues it immediately.
type nackRequest struct {
	Worker   string `json:"worker"`
	Dispatch uint64 `json:"dispatch"`
	Reason   string `json:"reason,omitempty"`
}
