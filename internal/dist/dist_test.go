// Tests here run real loopback clusters: one coordinator plus several
// in-process workers talking HTTP, exercising the exact wire path the
// cmd/dodworker binary uses. The external test package lets them drive
// internal/core (which registers the detection job) without an import
// cycle.
package dist_test

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dod/internal/core"
	"dod/internal/detect"
	"dod/internal/dist"
	"dod/internal/errs"
	"dod/internal/mapreduce"
	"dod/internal/plan"
	"dod/internal/synth"
)

// ---- test fixtures ----

func testInput(t *testing.T, n int) *core.Input {
	t.Helper()
	points := synth.Segment(synth.Massachusetts, n, 7)
	input, err := core.InputFromPoints(points, 500)
	if err != nil {
		t.Fatal(err)
	}
	return input
}

// coreConfig is the shared detection configuration; local and cluster runs
// must agree on every seed-bearing field to be comparable.
func coreConfig() core.Config {
	return core.Config{
		Params:     detect.Params{R: 5, K: 4},
		PlanOpts:   plan.Options{NumReducers: 6},
		SampleRate: 1.0,
		Seed:       3,
	}
}

func newCoordinator(t *testing.T, cfg dist.Config) *dist.Coordinator {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	coord, err := dist.NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	return coord
}

// startWorker runs an in-process worker against the coordinator until the
// test ends (or ctx is cancelled by the caller via the returned cancel).
func startWorker(t *testing.T, coord *dist.Coordinator, name string, parallelism int, onTask func(phase string, task int)) context.CancelFunc {
	t.Helper()
	w, err := dist.NewWorker(dist.WorkerConfig{
		Coordinator: coord.URL(),
		Name:        name,
		Parallelism: parallelism,
		Logf:        t.Logf,
		OnTask:      onTask,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := w.Run(ctx); err != nil {
			t.Errorf("worker %s: %v", name, err)
		}
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
	return cancel
}

func runDetection(t *testing.T, input *core.Input, cfg core.Config) *core.Report {
	t.Helper()
	rep, err := core.Run(context.Background(), input, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// ---- the headline guarantee: cluster == local, byte for byte ----

func TestClusterMatchesLocal(t *testing.T) {
	input := testInput(t, 4000)
	local := runDetection(t, input, coreConfig())
	if len(local.Outliers) == 0 {
		t.Fatal("test dataset produced no outliers; the equality check would be vacuous")
	}

	coord := newCoordinator(t, dist.Config{})
	for _, name := range []string{"w1", "w2", "w3"} {
		startWorker(t, coord, name, 2, nil)
	}
	if err := coord.WaitForWorkers(context.Background(), 3); err != nil {
		t.Fatal(err)
	}

	cfg := coreConfig()
	cfg.ExecutorFor = core.ClusterExecutorFor(coord)
	clustered := runDetection(t, input, cfg)

	if !reflect.DeepEqual(local.Outliers, clustered.Outliers) {
		t.Errorf("cluster outliers diverge from local: %d vs %d IDs", len(clustered.Outliers), len(local.Outliers))
	}
	if local.Engine != "local" || clustered.Engine != "cluster" {
		t.Errorf("engines: local=%q clustered=%q", local.Engine, clustered.Engine)
	}

	// Remote spans must have been shipped back into the job trace.
	span, ok := clustered.Trace.Find("partition.detect")
	if !ok {
		t.Error("cluster run trace has no partition.detect span from workers")
	} else if span.Attr("algo") == "" {
		t.Error("shipped-back span lost its attributes")
	}

	st := coord.Stats()
	if st.TasksOK == 0 || st.Dispatches == 0 {
		t.Errorf("stats recorded no work: %+v", st)
	}
	if st.BytesShipped == 0 || st.BytesCollected == 0 {
		t.Errorf("wire byte counters empty: %+v", st)
	}
	if st.Heartbeats == 0 {
		t.Errorf("no heartbeats recorded: %+v", st)
	}
}

// TestClusterEndpoints scrapes the coordinator's HTTP surface.
func TestClusterEndpoints(t *testing.T) {
	coord := newCoordinator(t, dist.Config{})
	startWorker(t, coord, "w1", 1, nil)
	if err := coord.WaitForWorkers(context.Background(), 1); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(coord.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}
	for _, want := range []string{"dod_dist_workers 1", "dod_dist_heartbeats_total"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err = http.Get(coord.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status  string `json:"status"`
		Workers int    `json:"workers"`
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil || health.Status != "ok" || health.Workers != 1 {
		t.Errorf("/healthz: %+v, %v", health, err)
	}
}

// ---- chaos: kill a worker mid-job ----

// TestWorkerKilledMidJob force-closes one worker the moment it receives a
// reduce task (the moral equivalent of SIGKILL: its poll loops stop dead,
// nothing is reported back). The job must still complete — via lease
// expiry and re-dispatch — with outliers byte-identical to the local
// engine on the same seed.
func TestWorkerKilledMidJob(t *testing.T) {
	input := testInput(t, 4000)
	local := runDetection(t, input, coreConfig())

	coord := newCoordinator(t, dist.Config{
		LeaseTTL:          300 * time.Millisecond,
		RedispatchBackoff: 5 * time.Millisecond,
	})

	// The victim gets the most slots so it is sure to be holding reduce
	// work when it dies.
	var killed atomic.Bool
	victimCtx, killVictim := context.WithCancel(context.Background())
	defer killVictim()
	victim, err := dist.NewWorker(dist.WorkerConfig{
		Coordinator: coord.URL(),
		Name:        "victim",
		Parallelism: 4,
		Logf:        t.Logf,
		OnTask: func(phase string, task int) {
			if phase == "reduce" && killed.CompareAndSwap(false, true) {
				killVictim()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	victimDone := make(chan struct{})
	go func() {
		defer close(victimDone)
		victim.Run(victimCtx) //nolint:errcheck
	}()
	t.Cleanup(func() { killVictim(); <-victimDone })

	startWorker(t, coord, "survivor-1", 1, nil)
	startWorker(t, coord, "survivor-2", 1, nil)
	if err := coord.WaitForWorkers(context.Background(), 3); err != nil {
		t.Fatal(err)
	}

	cfg := coreConfig()
	cfg.ExecutorFor = core.ClusterExecutorFor(coord)
	clustered := runDetection(t, input, cfg)

	if !killed.Load() {
		t.Fatal("victim was never handed a reduce task; chaos did not happen")
	}
	if !reflect.DeepEqual(local.Outliers, clustered.Outliers) {
		t.Errorf("outliers diverged after worker loss: %d vs %d IDs", len(clustered.Outliers), len(local.Outliers))
	}
	st := coord.Stats()
	if st.WorkersLost == 0 {
		t.Errorf("lease expiry not recorded: %+v", st)
	}
	if st.Redispatches == 0 {
		t.Errorf("no re-dispatches after worker loss: %+v", st)
	}
}

// ---- seeded fault injection rides over the cluster unchanged ----

func TestInjectedFailuresOverCluster(t *testing.T) {
	input := testInput(t, 2000)
	local := runDetection(t, input, coreConfig())

	coord := newCoordinator(t, dist.Config{})
	startWorker(t, coord, "w1", 2, nil)
	startWorker(t, coord, "w2", 2, nil)
	if err := coord.WaitForWorkers(context.Background(), 2); err != nil {
		t.Fatal(err)
	}

	cfg := coreConfig()
	cfg.ExecutorFor = core.ClusterExecutorFor(coord)
	cfg.FailureRate = 0.3 // seeded driver-side rolls: deterministic, heavily retried
	cfg.RetryBackoff = time.Millisecond
	clustered := runDetection(t, input, cfg)

	if !reflect.DeepEqual(local.Outliers, clustered.Outliers) {
		t.Errorf("injected failures changed cluster results: %d vs %d IDs", len(clustered.Outliers), len(local.Outliers))
	}
}

// ---- scheduling-level tests use a tiny registered test job ----

const echoKind = "dist-test.echo/v1"

type echoConfig struct {
	SleepMs   int    `json:"sleepMs"`
	SlowSplit string `json:"slowSplit"`
}

// slowGate makes only the FIRST execution of the slow split sleep, so a
// speculative duplicate (or re-execution) finishes immediately — workers
// run in-process, sharing this gate.
var slowGate atomic.Bool

func init() {
	dist.RegisterJob(echoKind, func(raw []byte) (*dist.Job, error) {
		var cfg echoConfig
		if err := json.Unmarshal(raw, &cfg); err != nil {
			return nil, err
		}
		return &dist.Job{
			Mapper: mapreduce.MapperFunc(func(ctx *mapreduce.TaskContext, split mapreduce.Split, emit mapreduce.Emit) error {
				if split.Name == cfg.SlowSplit && cfg.SleepMs > 0 && slowGate.CompareAndSwap(false, true) {
					time.Sleep(time.Duration(cfg.SleepMs) * time.Millisecond)
				}
				emit(0, append([]byte(nil), split.Data...))
				return nil
			}),
			Reducer: mapreduce.ReducerFunc(func(ctx *mapreduce.TaskContext, key uint64, values [][]byte, emit mapreduce.Emit) error {
				emit(key, binary.AppendUvarint(nil, uint64(len(values))))
				return nil
			}),
		}, nil
	})
}

func echoSpec(t *testing.T, cfg echoConfig) dist.JobSpec {
	t.Helper()
	raw, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return dist.JobSpec{Kind: echoKind, Config: raw}
}

func echoSplits(n int, slow string) []mapreduce.Split {
	splits := make([]mapreduce.Split, 0, n+1)
	for i := 0; i < n; i++ {
		splits = append(splits, mapreduce.Split{Name: string(rune('a' + i)), Data: []byte{byte(i)}})
	}
	if slow != "" {
		splits = append(splits, mapreduce.Split{Name: slow, Data: []byte{0xff}})
	}
	return splits
}

// runEchoJob drives the MapReduce driver with the coordinator's executor
// and returns the single reduce output record's value count.
func runEchoJob(t *testing.T, coord *dist.Coordinator, spec dist.JobSpec, splits []mapreduce.Split) (int, error) {
	t.Helper()
	res, err := mapreduce.RunContext(context.Background(), mapreduce.Config{
		NumReducers: 1,
		Executor:    coord.Executor(spec),
	}, splits, nil, nil)
	if err != nil {
		return 0, err
	}
	if len(res.Output) != 1 {
		t.Fatalf("echo job emitted %d records, want 1", len(res.Output))
	}
	count, _ := binary.Uvarint(res.Output[0].Value)
	return int(count), nil
}

// TestSpeculativeExecution starves one map task behind an artificial
// 1.5s stall; the coordinator must notice the straggler against the phase
// median and win with a duplicate dispatch, well before the stall ends.
func TestSpeculativeExecution(t *testing.T) {
	slowGate.Store(false)
	coord := newCoordinator(t, dist.Config{
		LeaseTTL:           5 * time.Second, // leases stay live; only speculation can rescue
		SpeculativeMinDone: 3,
		SpeculativeMinAge:  50 * time.Millisecond,
		SpeculativeFactor:  2,
	})
	// The stalled slot's worker keeps heartbeating through its second slot.
	startWorker(t, coord, "w1", 2, nil)
	startWorker(t, coord, "w2", 2, nil)
	if err := coord.WaitForWorkers(context.Background(), 2); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	count, err := runEchoJob(t, coord, echoSpec(t, echoConfig{SleepMs: 1500, SlowSplit: "slow"}), echoSplits(4, "slow"))
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("echo job saw %d map records, want 5", count)
	}
	if st := coord.Stats(); st.Speculative == 0 {
		t.Errorf("no speculative dispatch recorded (job took %v): %+v", time.Since(start), st)
	}
}

// TestWorkerLostExhausted kills the only worker and forbids re-dispatch:
// the job must fail with ErrWorkerLost instead of hanging.
func TestWorkerLostExhausted(t *testing.T) {
	coord := newCoordinator(t, dist.Config{
		LeaseTTL:          150 * time.Millisecond,
		MaxTaskDispatches: 1,
	})
	victimCtx, killVictim := context.WithCancel(context.Background())
	defer killVictim()
	victim, err := dist.NewWorker(dist.WorkerConfig{
		Coordinator: coord.URL(),
		Name:        "victim",
		Parallelism: 1,
		OnTask:      func(string, int) { killVictim() },
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		victim.Run(victimCtx) //nolint:errcheck
	}()
	t.Cleanup(func() { <-done })

	if err := coord.WaitForWorkers(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	_, err = runEchoJob(t, coord, echoSpec(t, echoConfig{}), echoSplits(1, ""))
	if !errors.Is(err, errs.ErrWorkerLost) {
		t.Errorf("job error = %v, want ErrWorkerLost", err)
	}
	if st := coord.Stats(); st.WorkersLost == 0 {
		t.Errorf("worker loss not recorded: %+v", st)
	}
}

// TestCoordinatorCloseAborts closes the coordinator under a waiting job.
func TestCoordinatorCloseAborts(t *testing.T) {
	coord := newCoordinator(t, dist.Config{})
	exec := coord.Executor(echoSpec(t, echoConfig{}))

	errc := make(chan error, 1)
	go func() {
		_, err := exec.ExecMap(context.Background(), mapreduce.MapTask{
			TaskID: 0, Attempt: 1, NumReducers: 1,
			Split: mapreduce.Split{Name: "a", Data: []byte{1}},
		})
		errc <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the task enqueue
	coord.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, errs.ErrJobAborted) {
			t.Errorf("ExecMap error = %v, want ErrJobAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ExecMap still blocked after Close")
	}

	// And everything after Close fails fast.
	if _, err := exec.ExecReduce(context.Background(), mapreduce.ReduceTask{TaskID: 0, Attempt: 1}); !errors.Is(err, errs.ErrJobAborted) {
		t.Errorf("post-Close ExecReduce error = %v, want ErrJobAborted", err)
	}
}

// TestBuildJobUnknownKind covers the registry's failure path workers hit
// when their binary lacks a job registration import.
func TestBuildJobUnknownKind(t *testing.T) {
	_, err := dist.BuildJob(dist.JobSpec{Kind: "nope/v9"})
	if !errors.Is(err, errs.ErrJobAborted) {
		t.Errorf("BuildJob error = %v, want ErrJobAborted", err)
	}
}
