package dist

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sync"

	"dod/internal/codec"
)

// The coordinator journal is the checkpoint/resume backbone: every accepted
// task result is appended to an append-only log before the waiting executor
// call sees it (write-ahead order). A restarted coordinator pointed at the
// same journal replays settled results at enqueue time instead of
// re-dispatching — the driver re-runs its deterministic plan, every task
// that already completed is answered from disk byte-for-byte, and only
// genuinely unfinished work reaches the workers. Results are keyed by
// (spec hash, phase, task id), not by job sequence numbers, so a new
// process with fresh job IDs still hits.
//
// On-disk format: each record is a codec frame (kind journalRecResult,
// payload = [meta JSON frame][raw result-body frame]) sealed by a FrameSum
// integrity frame covering the record. A crash mid-append leaves a torn
// tail; open() keeps the valid prefix, truncates the rest, and appends
// cleanly after it. Every append is fsynced: the journal's whole point is
// surviving the process dying at the worst moment.

// journalRecResult is the record kind for one accepted task result.
const journalRecResult byte = 1

// journalKey addresses one settled task result across coordinator restarts.
type journalKey struct {
	spec  uint64 // specKey of the owning job spec
	phase string
	task  int
}

type journalMeta struct {
	Spec  uint64 `json:"spec"`
	Phase string `json:"phase"`
	Task  int    `json:"task"`
}

// specKey hashes a job spec (kind + config) into the journal's job
// identity. Two coordinator processes running the same spec agree on it.
func specKey(spec JobSpec) uint64 {
	h := fnv.New64a()
	io.WriteString(h, spec.Kind) //nolint:errcheck // fnv never errors
	h.Write([]byte{0})           //nolint:errcheck
	h.Write(spec.Config)         //nolint:errcheck
	return h.Sum64()
}

// journal is the coordinator's durable result log. Safe for concurrent use.
type journal struct {
	mu      sync.Mutex
	f       *os.File
	results map[journalKey][]byte // raw (sealed) result bodies
}

// openJournal opens or creates the journal at path, loads every intact
// record, and truncates any torn tail so subsequent appends are clean.
// It returns the journal and how many records were recovered.
func openJournal(path string) (*journal, int, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("dist: opening journal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("dist: reading journal: %w", err)
	}
	j := &journal{f: f, results: make(map[journalKey][]byte)}
	valid := 0
	for valid < len(data) {
		key, body, n, err := decodeJournalRecord(data[valid:])
		if err != nil {
			break // torn or corrupt tail: keep the valid prefix
		}
		j.results[key] = body
		valid += n
	}
	if valid < len(data) {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("dist: truncating torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("dist: seeking journal: %w", err)
	}
	return j, len(j.results), nil
}

// decodeJournalRecord decodes one record from the front of buf: a data
// frame followed by a FrameSum frame covering it.
func decodeJournalRecord(buf []byte) (journalKey, []byte, int, error) {
	kind, payload, n, err := codec.DecodeFrame(buf)
	if err != nil {
		return journalKey{}, nil, 0, err
	}
	if kind != journalRecResult {
		return journalKey{}, nil, 0, codec.WireErrorf("dist: journal record kind %d", kind)
	}
	sumKind, _, m, err := codec.DecodeFrame(buf[n:])
	if err != nil {
		return journalKey{}, nil, 0, err
	}
	if sumKind != codec.FrameSum {
		return journalKey{}, nil, 0, codec.WireErrorf("dist: journal record missing integrity frame")
	}
	// The sum frame must cover exactly the data frame; StripSumFrame
	// performs the checksum and shape checks on the record slice.
	if _, err := codec.StripSumFrame(buf[:n+m]); err != nil {
		return journalKey{}, nil, 0, err
	}

	// payload = [meta JSON frame][raw result-body frame]
	metaKind, metaRaw, mn, err := codec.DecodeFrame(payload)
	if err != nil || metaKind != 1 {
		return journalKey{}, nil, 0, codec.WireErrorf("dist: journal meta frame: %v", err)
	}
	bodyKind, body, _, err := codec.DecodeFrame(payload[mn:])
	if err != nil || bodyKind != 2 {
		return journalKey{}, nil, 0, codec.WireErrorf("dist: journal body frame: %v", err)
	}
	var meta journalMeta
	if err := json.Unmarshal(metaRaw, &meta); err != nil {
		return journalKey{}, nil, 0, codec.WireErrorf("dist: journal meta: %v", err)
	}
	return journalKey{spec: meta.Spec, phase: meta.Phase, task: meta.Task},
		append([]byte(nil), body...), n + m, nil
}

// lookup returns the journaled raw result body for key, if any.
func (j *journal) lookup(key journalKey) ([]byte, bool) {
	if j == nil {
		return nil, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	body, ok := j.results[key]
	return body, ok
}

// append durably records one accepted result body (already sealed by the
// wire layer) before the coordinator delivers it. fsyncs.
func (j *journal) append(key journalKey, body []byte) error {
	if j == nil {
		return nil
	}
	meta, err := json.Marshal(journalMeta{Spec: key.spec, Phase: key.phase, Task: key.task})
	if err != nil {
		return err
	}
	payload := codec.AppendFrame(nil, 1, meta)
	payload = codec.AppendFrame(payload, 2, body)
	rec := codec.AppendSumFrame(codec.AppendFrame(nil, journalRecResult, payload))

	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.results[key]; ok {
		return nil // already journaled (speculative duplicate accepted first)
	}
	if _, err := j.f.Write(rec); err != nil {
		return fmt.Errorf("dist: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("dist: journal sync: %w", err)
	}
	j.results[key] = append([]byte(nil), body...)
	return nil
}

// size reports how many results the journal holds.
func (j *journal) size() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.results)
}

func (j *journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
