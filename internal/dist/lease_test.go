// White-box lease-protocol edge cases. These tests speak the raw worker
// wire protocol over real HTTP (join/poll/result as a remote worker binary
// would) but drive lease expiry by calling sweep with synthetic clocks, so
// every boundary is exact and deterministic — no sleeps racing timers.
package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"dod/internal/mapreduce"
)

// leaseTTL is deliberately enormous: the background sweeper (which uses the
// real clock) can then never expire anything mid-test, and each test expires
// leases itself via c.sweep(syntheticNow).
const leaseTTL = time.Hour

func newLeaseCoord(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	cfg.Listen = "127.0.0.1:0"
	cfg.LeaseTTL = leaseTTL
	cfg.PollWait = 50 * time.Millisecond
	cfg.RedispatchBackoff = time.Millisecond
	cfg.Logf = t.Logf
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// protoWorker is a hand-rolled worker speaking the wire protocol directly,
// so tests control exactly when it polls, answers, or goes silent.
type protoWorker struct {
	t    *testing.T
	base string
	name string
}

func (pw *protoWorker) post(path string, body []byte, ct string) (int, http.Header, []byte) {
	pw.t.Helper()
	resp, err := http.Post(pw.base+path, ct, bytes.NewReader(body))
	if err != nil {
		pw.t.Fatalf("worker %s: POST %s: %v", pw.name, path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		pw.t.Fatalf("worker %s: POST %s: read body: %v", pw.name, path, err)
	}
	return resp.StatusCode, resp.Header, b
}

func (pw *protoWorker) join() {
	pw.t.Helper()
	req, _ := json.Marshal(joinRequest{Worker: pw.name, Capacity: 1})
	if status, _, _ := pw.post(pathJoin, req, "application/json"); status != http.StatusOK {
		pw.t.Fatalf("worker %s: join: HTTP %d", pw.name, status)
	}
}

// pollTask polls until a task arrives (retrying idle 204s briefly) and
// returns its decoded header.
func (pw *protoWorker) pollTask() taskHeader {
	pw.t.Helper()
	req, _ := json.Marshal(pollRequest{Worker: pw.name})
	for i := 0; i < 50; i++ {
		status, _, body := pw.post(pathPoll, req, "application/json")
		switch status {
		case http.StatusNoContent:
			continue
		case http.StatusOK:
			h, _, _, err := decodeTaskBody(body)
			if err != nil {
				pw.t.Fatalf("worker %s: poll: undecodable task: %v", pw.name, err)
			}
			return h
		default:
			pw.t.Fatalf("worker %s: poll: HTTP %d", pw.name, status)
		}
	}
	pw.t.Fatalf("worker %s: no task after 50 polls", pw.name)
	return taskHeader{}
}

// finishMap uploads a successful single-bucket map result for h whose bucket
// value marks which worker produced it; dur feeds the speculation median.
func (pw *protoWorker) finishMap(h taskHeader, dur time.Duration) int {
	pw.t.Helper()
	rh := resultHeader{
		Job: h.Job, Phase: h.Phase, Task: h.Task, Dispatch: h.Dispatch,
		Worker: pw.name, Metric: wireMetric{DurationNs: int64(dur)},
	}
	res := &mapreduce.MapResult{Buckets: [][]mapreduce.Pair{{{Key: 1, Value: []byte(pw.name)}}}}
	body, err := encodeMapResultBody(rh, res)
	if err != nil {
		pw.t.Fatal(err)
	}
	status, _, _ := pw.post(pathResult, body, "application/octet-stream")
	return status
}

type mapOutcome struct {
	res *mapreduce.MapResult
	err error
}

// execMapAsync submits one single-reducer map task through the public
// executor and returns the channel its outcome will arrive on.
func execMapAsync(exec mapreduce.Executor, id int) <-chan mapOutcome {
	ch := make(chan mapOutcome, 1)
	go func() {
		res, err := exec.ExecMap(context.Background(), mapreduce.MapTask{
			TaskID: id, Attempt: 1, NumReducers: 1,
			Split: mapreduce.Split{Name: fmt.Sprintf("s%d", id), Data: []byte{byte(id)}},
		})
		ch <- mapOutcome{res, err}
	}()
	return ch
}

func lastSeenOf(t *testing.T, c *Coordinator, name string) time.Time {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := c.workers[name]
	if ws == nil {
		t.Fatalf("worker %s not registered", name)
	}
	return ws.lastSeen
}

// TestLeaseBoundaryCompletion pins the exact expiry comparison: a worker
// whose silence equals LeaseTTL exactly is still leased (the bound is
// inclusive), its in-flight result is accepted normally, and when the lease
// later does expire, the already-settled task is not re-dispatched.
func TestLeaseBoundaryCompletion(t *testing.T) {
	c := newLeaseCoord(t, Config{SpeculativeFactor: -1})
	exec := c.Executor(JobSpec{Kind: "lease-test/v1"})
	ch := execMapAsync(exec, 0)

	w := &protoWorker{t: t, base: c.URL(), name: "bw1"}
	w.join()
	h := w.pollTask()
	t0 := lastSeenOf(t, c, w.name)

	c.sweep(t0.Add(leaseTTL)) // exactly at the boundary: not expired
	if st := c.Stats(); st.WorkersLost != 0 || st.Redispatches != 0 {
		t.Fatalf("lease expired exactly at TTL: %+v", st)
	}

	if status := w.finishMap(h, time.Millisecond); status != http.StatusOK {
		t.Fatalf("boundary completion rejected: HTTP %d", status)
	}
	out := <-ch
	if out.err != nil {
		t.Fatal(out.err)
	}
	if got := string(out.res.Buckets[0][0].Value); got != w.name {
		t.Fatalf("result attributed to %q, want %q", got, w.name)
	}

	// One tick past the boundary the lease is gone — but the settled task
	// must not come back. (The result upload refreshed the heartbeat, so
	// the boundary moves with it.)
	t1 := lastSeenOf(t, c, w.name)
	if !t1.After(t0) {
		t.Error("accepted result did not refresh the worker's lease")
	}
	c.sweep(t1.Add(leaseTTL + time.Nanosecond))
	st := c.Stats()
	if st.WorkersLost != 1 {
		t.Errorf("WorkersLost = %d, want 1", st.WorkersLost)
	}
	if st.Redispatches != 0 || st.TasksLate != 0 || st.TasksOK != 1 {
		t.Errorf("settled task disturbed by expiry: %+v", st)
	}
}

// TestDeadWorkerRePolls covers the rejoin-by-poll path: a worker declared
// lost keeps polling (it never knew it was dead). The poll must re-register
// it, hand it the re-dispatch of its own withdrawn task, and accept the
// fresh result — while the stale result from the withdrawn dispatch is
// discarded as late, not double-delivered.
func TestDeadWorkerRePolls(t *testing.T) {
	c := newLeaseCoord(t, Config{SpeculativeFactor: -1})
	exec := c.Executor(JobSpec{Kind: "lease-test/v1"})
	ch := execMapAsync(exec, 0)

	w := &protoWorker{t: t, base: c.URL(), name: "dw1"}
	w.join()
	h1 := w.pollTask()
	t0 := lastSeenOf(t, c, w.name)

	c.sweep(t0.Add(leaseTTL + time.Second))
	if st := c.Stats(); st.WorkersLost != 1 || st.Redispatches != 1 || st.Workers != 0 {
		t.Fatalf("expiry did not withdraw the task: %+v", st)
	}

	// The "dead" worker polls again — no explicit rejoin — and must receive
	// the same task under a fresh dispatch ID.
	h2 := w.pollTask()
	if h2.Task != h1.Task || h2.Phase != h1.Phase {
		t.Fatalf("re-poll got different task: %+v vs %+v", h2, h1)
	}
	if h2.Dispatch == h1.Dispatch {
		t.Fatal("re-dispatch reused the withdrawn dispatch ID")
	}
	if c.Workers() != 1 {
		t.Fatalf("re-polling worker not re-registered: %d workers", c.Workers())
	}

	if status := w.finishMap(h2, time.Millisecond); status != http.StatusOK {
		t.Fatalf("fresh result rejected: HTTP %d", status)
	}
	if out := <-ch; out.err != nil {
		t.Fatal(out.err)
	}

	// The zombie result from the withdrawn dispatch arrives after the task
	// settled: discarded as late, never a second outcome.
	if status := w.finishMap(h1, time.Millisecond); status != http.StatusOK {
		t.Fatalf("late result not absorbed: HTTP %d", status)
	}
	st := c.Stats()
	if st.TasksOK != 1 || st.TasksLate != 1 {
		t.Errorf("late duplicate mishandled: %+v", st)
	}
}

// TestSpeculativeDuplicateFinishesSecond runs a real speculation race to
// its unhappy end: the original dispatch wins, and the speculative
// duplicate's later result must be discarded without disturbing the
// delivered outcome.
func TestSpeculativeDuplicateFinishesSecond(t *testing.T) {
	c := newLeaseCoord(t, Config{
		SpeculativeFactor:  1,
		SpeculativeMinDone: 1,
		SpeculativeMinAge:  time.Nanosecond,
	})
	exec := c.Executor(JobSpec{Kind: "lease-test/v1"})

	w1 := &protoWorker{t: t, base: c.URL(), name: "sw1"}
	w1.join()

	// Task 0 completes quickly, seeding the phase's duration median.
	ch0 := execMapAsync(exec, 0)
	h0 := w1.pollTask()
	if status := w1.finishMap(h0, time.Millisecond); status != http.StatusOK {
		t.Fatalf("seed task rejected: HTTP %d", status)
	}
	if out := <-ch0; out.err != nil {
		t.Fatal(out.err)
	}

	// Task 1 hangs on w1 long past the median: the sweep speculates exactly
	// one duplicate, which w2 picks up.
	ch1 := execMapAsync(exec, 1)
	h1 := w1.pollTask()
	c.sweep(time.Now().Add(time.Minute))
	if st := c.Stats(); st.Speculative != 1 {
		t.Fatalf("Speculative = %d, want 1: %+v", st.Speculative, st)
	}

	w2 := &protoWorker{t: t, base: c.URL(), name: "sw2"}
	w2.join()
	h1dup := w2.pollTask()
	if h1dup.Task != h1.Task || h1dup.Dispatch == h1.Dispatch {
		t.Fatalf("duplicate dispatch malformed: %+v vs %+v", h1dup, h1)
	}

	// Original finishes first and wins; the duplicate finishes second.
	if status := w1.finishMap(h1, 2*time.Millisecond); status != http.StatusOK {
		t.Fatalf("winning result rejected: HTTP %d", status)
	}
	out := <-ch1
	if out.err != nil {
		t.Fatal(out.err)
	}
	if got := string(out.res.Buckets[0][0].Value); got != w1.name {
		t.Fatalf("delivered result from %q, want original worker %q", got, w1.name)
	}

	if status := w2.finishMap(h1dup, 2*time.Millisecond); status != http.StatusOK {
		t.Fatalf("losing duplicate not absorbed: HTTP %d", status)
	}
	st := c.Stats()
	if st.TasksLate != 1 {
		t.Errorf("TasksLate = %d, want 1 (the losing duplicate)", st.TasksLate)
	}
	if st.TasksOK != 2 {
		t.Errorf("TasksOK = %d, want 2", st.TasksOK)
	}
}
