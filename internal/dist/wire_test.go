package dist

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"dod/internal/errs"
	"dod/internal/mapreduce"
	"dod/internal/obs"
)

func sampleTaskHeader(phase string) taskHeader {
	return taskHeader{
		Job: 7, Phase: phase, Task: 3, Dispatch: 42, Attempt: 2,
		NumReducers: 4, SplitName: "blk-3", Replicas: []int{1, 5},
		Spec: JobSpec{Kind: "dod.test/v1", Config: []byte(`{"r":5}`)},
	}
}

func TestMapTaskRoundTrip(t *testing.T) {
	h := sampleTaskHeader("map")
	split := mapreduce.Split{Name: "blk-3", Data: []byte{9, 8, 7, 6}, Replicas: []int{1, 5}}
	body, err := encodeMapTaskBody(h, split)
	if err != nil {
		t.Fatal(err)
	}
	got, mt, rt, err := decodeTaskBody(body)
	if err != nil {
		t.Fatal(err)
	}
	if rt != nil || mt == nil {
		t.Fatalf("map body decoded as reduce task")
	}
	if !reflect.DeepEqual(got, h) {
		t.Errorf("header round-trip:\n got %+v\nwant %+v", got, h)
	}
	if !reflect.DeepEqual(*mt, mapreduce.MapTask{TaskID: 3, Attempt: 2, NumReducers: 4, Split: split}) {
		t.Errorf("map task round-trip: %+v", *mt)
	}
}

func TestReduceTaskRoundTrip(t *testing.T) {
	h := sampleTaskHeader("reduce")
	groups := []mapreduce.Group{
		{Key: 0, Values: [][]byte{{1}, {2, 2}, {}}},
		{Key: 1 << 40, Values: [][]byte{{3}}},
		{Key: 9, Values: nil},
	}
	body, err := encodeReduceTaskBody(h, groups)
	if err != nil {
		t.Fatal(err)
	}
	_, mt, rt, err := decodeTaskBody(body)
	if err != nil {
		t.Fatal(err)
	}
	if mt != nil || rt == nil {
		t.Fatalf("reduce body decoded as map task")
	}
	if rt.TaskID != 3 || rt.Attempt != 2 || len(rt.Groups) != 3 {
		t.Fatalf("reduce task round-trip: %+v", *rt)
	}
	for i := range groups {
		if rt.Groups[i].Key != groups[i].Key || len(rt.Groups[i].Values) != len(groups[i].Values) {
			t.Errorf("group %d round-trip: %+v", i, rt.Groups[i])
		}
		for j := range groups[i].Values {
			if !reflect.DeepEqual(rt.Groups[i].Values[j], groups[i].Values[j]) {
				t.Errorf("group %d value %d: %v", i, j, rt.Groups[i].Values[j])
			}
		}
	}
}

func sampleResultHeader(phase string) resultHeader {
	return resultHeader{
		Job: 7, Phase: phase, Task: 3, Dispatch: 42, Worker: "w1",
		Metric: wireMetric{DurationNs: 1e6, RecordsIn: 10, RecordsOut: 2, BytesOut: 99,
			Counters: map[string]int64{"dist.comps": 123}},
	}
}

func TestMapResultRoundTrip(t *testing.T) {
	h := sampleResultHeader("map")
	res := &mapreduce.MapResult{Buckets: [][]mapreduce.Pair{
		{{Key: 1, Value: []byte{0xaa}}, {Key: 2, Value: nil}},
		{}, // empty bucket must survive as a bucket, preserving reducer order
		{{Key: 3, Value: []byte{1, 2, 3}}},
	}}
	body, err := encodeMapResultBody(h, res)
	if err != nil {
		t.Fatal(err)
	}
	got, buckets, output, err := decodeResultBody(body)
	if err != nil {
		t.Fatal(err)
	}
	if output != nil {
		t.Error("map result produced reduce output")
	}
	if got.Worker != "w1" || got.Metric.Counters["dist.comps"] != 123 {
		t.Errorf("result header round-trip: %+v", got)
	}
	if len(buckets) != 3 || len(buckets[0]) != 2 || len(buckets[1]) != 0 || len(buckets[2]) != 1 {
		t.Fatalf("bucket shape: %v", buckets)
	}
	if buckets[0][0].Key != 1 || string(buckets[0][0].Value) != "\xaa" || buckets[2][0].Key != 3 {
		t.Errorf("bucket contents: %v", buckets)
	}
}

func TestReduceResultRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name   string
		output []mapreduce.Pair
	}{
		{"records", []mapreduce.Pair{{Key: 5, Value: []byte("v")}, {Key: 6, Value: nil}}},
		{"empty", nil}, // a reducer may legitimately emit nothing
	} {
		t.Run(tc.name, func(t *testing.T) {
			body, err := encodeReduceResultBody(sampleResultHeader("reduce"), &mapreduce.ReduceResult{Output: tc.output})
			if err != nil {
				t.Fatal(err)
			}
			_, buckets, output, err := decodeResultBody(body)
			if err != nil {
				t.Fatal(err)
			}
			if buckets != nil {
				t.Error("reduce result produced map buckets")
			}
			if output == nil {
				t.Fatal("empty reduce output decoded as missing frame")
			}
			if len(output) != len(tc.output) {
				t.Fatalf("output round-trip: %v", output)
			}
			for i := range tc.output {
				if output[i].Key != tc.output[i].Key || string(output[i].Value) != string(tc.output[i].Value) {
					t.Errorf("record %d: %+v", i, output[i])
				}
			}
		})
	}
}

func TestErrorResultRoundTrip(t *testing.T) {
	h := sampleResultHeader("map")
	h.Err = "detector exploded"
	body, err := encodeErrorResultBody(h)
	if err != nil {
		t.Fatal(err)
	}
	got, buckets, output, err := decodeResultBody(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Err != "detector exploded" || buckets != nil || output != nil {
		t.Errorf("error result round-trip: %+v %v %v", got, buckets, output)
	}
}

// TestDecodeCorruptBodies feeds malformed messages to both decoders; every
// one must fail with an errs.ErrWireFormat-family error, never panic.
func TestDecodeCorruptBodies(t *testing.T) {
	mapBody, err := encodeMapTaskBody(sampleTaskHeader("map"), mapreduce.Split{Data: []byte{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	badPhase := sampleTaskHeader("shuffle")
	badPhaseBody, err := encodeMapTaskBody(badPhase, mapreduce.Split{})
	if err != nil {
		t.Fatal(err)
	}
	errWithPayload := sampleResultHeader("map")
	errWithPayload.Err = "boom"
	errPayloadBody, err := encodeMapResultBody(errWithPayload, &mapreduce.MapResult{Buckets: [][]mapreduce.Pair{{}}})
	if err != nil {
		t.Fatal(err)
	}
	swapKind := func(body []byte, kind byte) []byte {
		dup := append([]byte(nil), body...)
		dup[0] = kind
		return dup
	}

	cases := map[string][]byte{
		"empty":                  {},
		"not a frame":            {0xff},
		"first frame not header": swapKind(mapBody, frameSplit),
		"header not json":        {frameHeader, 3, 'x', 'y', 'z'},
		"truncated mid-frame":    mapBody[:len(mapBody)-2],
		"unknown phase":          badPhaseBody,
		"error result payload":   errPayloadBody,
	}
	for name, body := range cases {
		if _, _, _, err := decodeTaskBody(body); !errors.Is(err, errs.ErrWireFormat) {
			t.Errorf("decodeTaskBody(%s) = %v, want ErrWireFormat", name, err)
		}
	}
	for name, body := range cases {
		if name == "unknown phase" || name == "error result payload" {
			continue // task-decoder-specific cases
		}
		if _, _, _, err := decodeResultBody(body); !errors.Is(err, errs.ErrWireFormat) {
			t.Errorf("decodeResultBody(%s) = %v, want ErrWireFormat", name, err)
		}
	}
	if _, _, _, err := decodeResultBody(errPayloadBody); !errors.Is(err, errs.ErrWireFormat) {
		t.Errorf("error result with payload accepted: %v", err)
	}
	// Frame-kind/phase mismatch: a reduce-phase header followed by a map
	// bucket frame.
	mismatch, err := encodeMapResultBody(sampleResultHeader("reduce"), &mapreduce.MapResult{Buckets: [][]mapreduce.Pair{{}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := decodeResultBody(mismatch); !errors.Is(err, errs.ErrWireFormat) {
		t.Errorf("bucket frame in reduce result = %v, want ErrWireFormat", err)
	}
	missing, err := appendHeader(nil, sampleResultHeader("reduce"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := decodeResultBody(missing); !errors.Is(err, errs.ErrWireFormat) {
		t.Errorf("reduce result without output frame = %v, want ErrWireFormat", err)
	}
}

func TestMetricAndSpanConversion(t *testing.T) {
	m := mapreduce.TaskMetric{
		Duration: 3 * time.Millisecond, RecordsIn: 7, RecordsOut: 5,
		BytesIn: 100, BytesOut: 50, Counters: map[string]int64{"x": 1},
	}
	back := metricFromWire(metricToWire(m))
	if !reflect.DeepEqual(m, back) {
		t.Errorf("metric round-trip:\n got %+v\nwant %+v", back, m)
	}

	start := time.Unix(1700000000, 12345)
	spans := []obs.Span{{
		Name: "partition.detect", Start: start, Duration: 2 * time.Millisecond,
		Attrs: []obs.Attr{obs.Str("algo", "CellBased"), obs.Int("partition", 4)},
	}}
	got := spansFromWire(spansToWire(spans))
	if len(got) != 1 || got[0].Name != "partition.detect" ||
		!got[0].Start.Equal(start) || got[0].Duration != spans[0].Duration ||
		got[0].Attr("algo") != "CellBased" || got[0].Attr("partition") != "4" {
		t.Errorf("span round-trip: %+v", got)
	}
	if spansToWire(nil) != nil || spansFromWire(nil) != nil {
		t.Error("nil span lists should stay nil on the wire")
	}
}
