package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"dod/internal/mapreduce"
	"dod/internal/obs"
	"dod/internal/retry"
)

// WorkerConfig tunes a Worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL ("http://host:port" or
	// just "host:port"). Required.
	Coordinator string

	// Name identifies the worker to the coordinator; it must be unique in
	// the cluster. Default "<hostname>-<pid>".
	Name string

	// Parallelism is how many tasks the worker executes concurrently
	// (each slot is an independent poll loop). Default GOMAXPROCS.
	Parallelism int

	// Client issues the worker's HTTP requests. Default: a client with no
	// global timeout (polls are long; each request carries the run ctx).
	// The chaos harness swaps in a client whose transport injects faults.
	Client *http.Client

	// Retry is the backoff policy for join retries, poll transport
	// errors, and result re-sends. The zero value uses the package
	// default: 100ms base, 2s cap, full jitter.
	Retry retry.Policy

	// ResultAttempts bounds how many times one task result is (re)sent
	// before the worker gives up and lets the coordinator's lease or
	// speculation machinery recover the task. Default 6.
	ResultAttempts int

	// Logf, when set, receives worker lifecycle and task events.
	Logf func(format string, args ...any)

	// OnTask, when set, is called as each task payload arrives, before
	// execution — a test seam: chaos tests use it to kill the worker (via
	// context cancellation) at the worst possible moment.
	OnTask func(phase string, taskID int)
}

// Worker executes task attempts for a coordinator: it long-polls for task
// payloads, runs them through the same in-process executor the local
// engine uses (so results are byte-identical), and streams results back.
// Task spans are recorded on a fresh per-task trace and shipped home in
// the result header.
//
// Transport robustness: every post retries on the shared retry.Policy
// (capped exponential backoff, full jitter); an undecodable task payload
// (corrupted in transit) is nacked back to the coordinator by dispatch ID
// so it re-queues immediately; result sends are retried — safe because the
// coordinator treats results as idempotent and discards duplicates.
type Worker struct {
	cfg  WorkerConfig
	base string

	mu   sync.Mutex
	jobs map[string]builtJob // spec kind+config -> built job (or its build error)
}

type builtJob struct {
	job *Job
	err error
}

// NewWorker builds a Worker; call Run to start serving.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("dist: worker needs a coordinator address")
	}
	base := cfg.Coordinator
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")
	if cfg.Name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		cfg.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 1
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Retry == (retry.Policy{}) {
		cfg.Retry = retry.Policy{Base: 100 * time.Millisecond, Max: 2 * time.Second, Jitter: true}
	}
	if cfg.ResultAttempts <= 0 {
		cfg.ResultAttempts = 6
	}
	return &Worker{cfg: cfg, base: base, jobs: make(map[string]builtJob)}, nil
}

// Name returns the worker's cluster-unique name.
func (w *Worker) Name() string { return w.cfg.Name }

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// rngFor derives a seeded jitter source per retry loop, so a worker's
// backoff schedule is reproducible under a fixed name (the chaos harness
// names workers deterministically).
func (w *Worker) rngFor(scope string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s\x00%s", w.cfg.Name, scope)
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// Run joins the coordinator and serves tasks until ctx is cancelled or the
// coordinator shuts down (both are graceful exits returning nil). The
// initial join retries until the coordinator is reachable, so workers may
// start before their coordinator.
func (w *Worker) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if err := w.join(ctx); err != nil {
		if ctx.Err() != nil {
			return nil
		}
		return err
	}
	w.logf("dist: worker %s joined %s (%d slots)", w.cfg.Name, w.base, w.cfg.Parallelism)
	var wg sync.WaitGroup
	for i := 0; i < w.cfg.Parallelism; i++ {
		wg.Add(1)
		slot := i
		go func() {
			defer wg.Done()
			w.pollLoop(ctx, cancel, slot)
		}()
	}
	wg.Wait()
	return nil
}

// join performs the handshake, retrying transport errors until ctx ends.
func (w *Worker) join(ctx context.Context) error {
	req, err := json.Marshal(joinRequest{Worker: w.cfg.Name, Capacity: w.cfg.Parallelism, Kinds: RegisteredKinds()})
	if err != nil {
		return err
	}
	rng := w.rngFor("join")
	for attempt := 1; ; attempt++ {
		body, status, _, err := w.post(ctx, pathJoin, req, "application/json")
		switch {
		case err == nil && status == http.StatusOK:
			var resp joinResponse
			if uerr := json.Unmarshal(body, &resp); uerr != nil {
				// A 200 whose body doesn't parse was corrupted in transit;
				// treat like any transport failure and retry.
				err = fmt.Errorf("dist: join response: %w", uerr)
				break
			}
			return nil
		case err == nil && status == http.StatusGone:
			return fmt.Errorf("dist: coordinator %s is closed", w.base)
		case ctx.Err() != nil:
			return ctx.Err()
		}
		if err != nil {
			w.logf("dist: worker %s: join %s: %v (retrying)", w.cfg.Name, w.base, err)
		} else {
			w.logf("dist: worker %s: join %s: HTTP %d (retrying)", w.cfg.Name, w.base, status)
		}
		if err := retry.Sleep(ctx, w.cfg.Retry.Delay(attempt, rng)); err != nil {
			return err
		}
	}
}

// pollLoop is one task slot: poll, execute, report, repeat. Transport
// errors back off on the shared policy; the attempt counter resets on any
// successful round-trip so a healthy loop never sleeps.
func (w *Worker) pollLoop(ctx context.Context, cancel context.CancelFunc, slot int) {
	poll, err := json.Marshal(pollRequest{Worker: w.cfg.Name})
	if err != nil {
		cancel()
		return
	}
	rng := w.rngFor(fmt.Sprintf("poll-%d", slot))
	failures := 0
	for ctx.Err() == nil {
		body, status, hdr, err := w.post(ctx, pathPoll, poll, "application/json")
		switch {
		case ctx.Err() != nil:
			return
		case err != nil:
			failures++
			w.logf("dist: worker %s: poll: %v", w.cfg.Name, err)
			retry.Sleep(ctx, w.cfg.Retry.Delay(failures, rng)) //nolint:errcheck // loop re-checks ctx
		case status == http.StatusNoContent:
			// Idle poll; go straight back — the poll is the heartbeat.
			failures = 0
		case status == http.StatusGone:
			w.logf("dist: worker %s: coordinator closed, exiting", w.cfg.Name)
			cancel()
			return
		case status == http.StatusOK:
			failures = 0
			w.runTask(ctx, body, hdr.Get(headerDispatch), rng)
		default:
			failures++
			w.logf("dist: worker %s: poll: HTTP %d", w.cfg.Name, status)
			retry.Sleep(ctx, w.cfg.Retry.Delay(failures, rng)) //nolint:errcheck // loop re-checks ctx
		}
	}
}

// runTask executes one dispatched task and reports its result. A task
// interrupted by worker shutdown is silently dropped — the coordinator's
// lease machinery re-dispatches it elsewhere. A payload that fails to
// decode (corrupted in transit: the integrity frame catches every flipped
// bit) is nacked by the dispatch ID riding in the response header, so the
// coordinator re-queues it immediately.
func (w *Worker) runTask(ctx context.Context, body []byte, dispatchHdr string, rng *rand.Rand) {
	h, mt, rt, err := decodeTaskBody(body)
	if err != nil {
		w.logf("dist: worker %s: undecodable task payload: %v (nacking dispatch %q)", w.cfg.Name, err, dispatchHdr)
		w.nack(ctx, dispatchHdr, err)
		return
	}
	if w.cfg.OnTask != nil {
		w.cfg.OnTask(h.Phase, h.Task)
	}
	if ctx.Err() != nil {
		return
	}

	rh := resultHeader{Job: h.Job, Phase: h.Phase, Task: h.Task, Dispatch: h.Dispatch, Worker: w.cfg.Name}
	var resp []byte
	job, err := w.jobFor(h.Spec)
	if err == nil {
		tr := obs.NewTrace(fmt.Sprintf("dist-task-%d", h.Dispatch))
		exec := mapreduce.NewLocalExecutor(job.Mapper, job.Reducer, job.Combiner, job.Partitioner, tr)
		switch {
		case mt != nil:
			var res *mapreduce.MapResult
			if res, err = exec.ExecMap(ctx, *mt); err == nil {
				rh.Metric, rh.Spans = metricToWire(res.Metric), spansToWire(tr.Spans())
				resp, err = encodeMapResultBody(rh, res)
			}
		default:
			var res *mapreduce.ReduceResult
			if res, err = exec.ExecReduce(ctx, *rt); err == nil {
				rh.Metric, rh.Spans = metricToWire(res.Metric), spansToWire(tr.Spans())
				resp, err = encodeReduceResultBody(rh, res)
			}
		}
	}
	if ctx.Err() != nil {
		return // killed mid-task; never report partial work
	}
	if err != nil {
		rh.Err = err.Error()
		if resp, err = encodeErrorResultBody(rh); err != nil {
			w.logf("dist: worker %s: encoding error result: %v", w.cfg.Name, err)
			return
		}
	}
	w.sendResult(ctx, h, resp, rng)
}

// sendResult posts one result, retrying transport failures and non-OK
// statuses on the shared policy. Re-sends are safe: the coordinator
// settles each task once and discards duplicates as late results. If the
// attempts run out, the dispatch is abandoned to lease/speculation
// recovery — at-least-once delivery, never silent at-most-once.
func (w *Worker) sendResult(ctx context.Context, h taskHeader, resp []byte, rng *rand.Rand) {
	for attempt := 1; ; attempt++ {
		_, status, _, err := w.post(ctx, pathResult, resp, "application/octet-stream")
		switch {
		case ctx.Err() != nil:
			return
		case err == nil && status == http.StatusOK:
			return
		case err == nil && status == http.StatusGone:
			return // coordinator closed; the poll loop will observe it too
		}
		if err != nil {
			w.logf("dist: worker %s: reporting %s task %d (attempt %d): %v", w.cfg.Name, h.Phase, h.Task, attempt, err)
		} else {
			w.logf("dist: worker %s: reporting %s task %d (attempt %d): HTTP %d", w.cfg.Name, h.Phase, h.Task, attempt, status)
		}
		if attempt >= w.cfg.ResultAttempts {
			w.logf("dist: worker %s: giving up on %s task %d result after %d attempts; lease recovery will re-run it",
				w.cfg.Name, h.Phase, h.Task, attempt)
			return
		}
		if retry.Sleep(ctx, w.cfg.Retry.Delay(attempt, rng)) != nil {
			return
		}
	}
}

// nack tells the coordinator a dispatch arrived undecodable. Best effort:
// if the nack itself is lost, lease expiry or speculation still recover.
func (w *Worker) nack(ctx context.Context, dispatchHdr string, cause error) {
	if dispatchHdr == "" {
		return
	}
	var dispatch uint64
	if _, err := fmt.Sscanf(dispatchHdr, "%d", &dispatch); err != nil {
		return
	}
	req, err := json.Marshal(nackRequest{Worker: w.cfg.Name, Dispatch: dispatch, Reason: cause.Error()})
	if err != nil {
		return
	}
	if _, status, _, err := w.post(ctx, pathNack, req, "application/json"); err != nil {
		w.logf("dist: worker %s: nack dispatch %d: %v", w.cfg.Name, dispatch, err)
	} else if status != http.StatusOK {
		w.logf("dist: worker %s: nack dispatch %d: HTTP %d", w.cfg.Name, dispatch, status)
	}
}

// jobFor builds (or returns the cached) job logic for a spec. Negative
// results are cached too: an unbuildable spec stays unbuildable.
func (w *Worker) jobFor(spec JobSpec) (*Job, error) {
	key := spec.Kind + "\x00" + string(spec.Config)
	w.mu.Lock()
	defer w.mu.Unlock()
	if b, ok := w.jobs[key]; ok {
		return b.job, b.err
	}
	job, err := BuildJob(spec)
	w.jobs[key] = builtJob{job: job, err: err}
	return job, err
}

// post issues one POST and returns the response body, status, and headers.
func (w *Worker) post(ctx context.Context, path string, body []byte, contentType string) ([]byte, int, http.Header, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, 0, nil, err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return nil, 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.StatusCode, resp.Header, err
	}
	return data, resp.StatusCode, resp.Header, nil
}
