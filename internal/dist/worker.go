package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"dod/internal/mapreduce"
	"dod/internal/obs"
)

// WorkerConfig tunes a Worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL ("http://host:port" or
	// just "host:port"). Required.
	Coordinator string

	// Name identifies the worker to the coordinator; it must be unique in
	// the cluster. Default "<hostname>-<pid>".
	Name string

	// Parallelism is how many tasks the worker executes concurrently
	// (each slot is an independent poll loop). Default GOMAXPROCS.
	Parallelism int

	// Client issues the worker's HTTP requests. Default: a client with no
	// global timeout (polls are long; each request carries the run ctx).
	Client *http.Client

	// Logf, when set, receives worker lifecycle and task events.
	Logf func(format string, args ...any)

	// OnTask, when set, is called as each task payload arrives, before
	// execution — a test seam: chaos tests use it to kill the worker (via
	// context cancellation) at the worst possible moment.
	OnTask func(phase string, taskID int)
}

// Worker executes task attempts for a coordinator: it long-polls for task
// payloads, runs them through the same in-process executor the local
// engine uses (so results are byte-identical), and streams results back.
// Task spans are recorded on a fresh per-task trace and shipped home in
// the result header.
type Worker struct {
	cfg  WorkerConfig
	base string

	mu   sync.Mutex
	jobs map[string]builtJob // spec kind+config -> built job (or its build error)
}

type builtJob struct {
	job *Job
	err error
}

// NewWorker builds a Worker; call Run to start serving.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("dist: worker needs a coordinator address")
	}
	base := cfg.Coordinator
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")
	if cfg.Name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		cfg.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = 1
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	return &Worker{cfg: cfg, base: base, jobs: make(map[string]builtJob)}, nil
}

// Name returns the worker's cluster-unique name.
func (w *Worker) Name() string { return w.cfg.Name }

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

// Run joins the coordinator and serves tasks until ctx is cancelled or the
// coordinator shuts down (both are graceful exits returning nil). The
// initial join retries until the coordinator is reachable, so workers may
// start before their coordinator.
func (w *Worker) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if err := w.join(ctx); err != nil {
		if ctx.Err() != nil {
			return nil
		}
		return err
	}
	w.logf("dist: worker %s joined %s (%d slots)", w.cfg.Name, w.base, w.cfg.Parallelism)
	var wg sync.WaitGroup
	for i := 0; i < w.cfg.Parallelism; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.pollLoop(ctx, cancel)
		}()
	}
	wg.Wait()
	return nil
}

// join performs the handshake, retrying transport errors until ctx ends.
func (w *Worker) join(ctx context.Context) error {
	req, err := json.Marshal(joinRequest{Worker: w.cfg.Name, Capacity: w.cfg.Parallelism, Kinds: RegisteredKinds()})
	if err != nil {
		return err
	}
	for {
		body, status, err := w.post(ctx, pathJoin, req, "application/json")
		switch {
		case err == nil && status == http.StatusOK:
			var resp joinResponse
			if err := json.Unmarshal(body, &resp); err != nil {
				return fmt.Errorf("dist: join response: %w", err)
			}
			return nil
		case err == nil && status == http.StatusGone:
			return fmt.Errorf("dist: coordinator %s is closed", w.base)
		case ctx.Err() != nil:
			return ctx.Err()
		}
		if err != nil {
			w.logf("dist: worker %s: join %s: %v (retrying)", w.cfg.Name, w.base, err)
		} else {
			w.logf("dist: worker %s: join %s: HTTP %d (retrying)", w.cfg.Name, w.base, status)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// pollLoop is one task slot: poll, execute, report, repeat.
func (w *Worker) pollLoop(ctx context.Context, cancel context.CancelFunc) {
	poll, err := json.Marshal(pollRequest{Worker: w.cfg.Name})
	if err != nil {
		cancel()
		return
	}
	for ctx.Err() == nil {
		body, status, err := w.post(ctx, pathPoll, poll, "application/json")
		switch {
		case ctx.Err() != nil:
			return
		case err != nil:
			w.logf("dist: worker %s: poll: %v", w.cfg.Name, err)
			select {
			case <-ctx.Done():
			case <-time.After(200 * time.Millisecond):
			}
		case status == http.StatusNoContent:
			// Idle poll; go straight back — the poll is the heartbeat.
		case status == http.StatusGone:
			w.logf("dist: worker %s: coordinator closed, exiting", w.cfg.Name)
			cancel()
			return
		case status == http.StatusOK:
			w.runTask(ctx, body)
		default:
			w.logf("dist: worker %s: poll: HTTP %d", w.cfg.Name, status)
			select {
			case <-ctx.Done():
			case <-time.After(200 * time.Millisecond):
			}
		}
	}
}

// runTask executes one dispatched task and reports its result. A task
// interrupted by worker shutdown is silently dropped — the coordinator's
// lease machinery re-dispatches it elsewhere.
func (w *Worker) runTask(ctx context.Context, body []byte) {
	h, mt, rt, err := decodeTaskBody(body)
	if err != nil {
		w.logf("dist: worker %s: dropping undecodable task: %v", w.cfg.Name, err)
		return
	}
	if w.cfg.OnTask != nil {
		w.cfg.OnTask(h.Phase, h.Task)
	}
	if ctx.Err() != nil {
		return
	}

	rh := resultHeader{Job: h.Job, Phase: h.Phase, Task: h.Task, Dispatch: h.Dispatch, Worker: w.cfg.Name}
	var resp []byte
	job, err := w.jobFor(h.Spec)
	if err == nil {
		tr := obs.NewTrace(fmt.Sprintf("dist-task-%d", h.Dispatch))
		exec := mapreduce.NewLocalExecutor(job.Mapper, job.Reducer, job.Combiner, job.Partitioner, tr)
		switch {
		case mt != nil:
			var res *mapreduce.MapResult
			if res, err = exec.ExecMap(ctx, *mt); err == nil {
				rh.Metric, rh.Spans = metricToWire(res.Metric), spansToWire(tr.Spans())
				resp, err = encodeMapResultBody(rh, res)
			}
		default:
			var res *mapreduce.ReduceResult
			if res, err = exec.ExecReduce(ctx, *rt); err == nil {
				rh.Metric, rh.Spans = metricToWire(res.Metric), spansToWire(tr.Spans())
				resp, err = encodeReduceResultBody(rh, res)
			}
		}
	}
	if ctx.Err() != nil {
		return // killed mid-task; never report partial work
	}
	if err != nil {
		rh.Err = err.Error()
		if resp, err = encodeErrorResultBody(rh); err != nil {
			w.logf("dist: worker %s: encoding error result: %v", w.cfg.Name, err)
			return
		}
	}
	if _, status, err := w.post(ctx, pathResult, resp, "application/octet-stream"); err != nil {
		w.logf("dist: worker %s: reporting %s task %d: %v", w.cfg.Name, h.Phase, h.Task, err)
	} else if status != http.StatusOK {
		w.logf("dist: worker %s: reporting %s task %d: HTTP %d", w.cfg.Name, h.Phase, h.Task, status)
	}
}

// jobFor builds (or returns the cached) job logic for a spec. Negative
// results are cached too: an unbuildable spec stays unbuildable.
func (w *Worker) jobFor(spec JobSpec) (*Job, error) {
	key := spec.Kind + "\x00" + string(spec.Config)
	w.mu.Lock()
	defer w.mu.Unlock()
	if b, ok := w.jobs[key]; ok {
		return b.job, b.err
	}
	job, err := BuildJob(spec)
	w.jobs[key] = builtJob{job: job, err: err}
	return job, err
}

// post issues one POST and returns the response body and status.
func (w *Worker) post(ctx context.Context, path string, body []byte, contentType string) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.StatusCode, err
	}
	return data, resp.StatusCode, nil
}
