package dbscan

import (
	"encoding/binary"
	"fmt"

	"dod/internal/codec"
	"dod/internal/detect"
	"dod/internal/geom"
	"dod/internal/mapreduce"
	"dod/internal/plan"
	"dod/internal/sample"
)

// Options control the distributed execution.
type Options struct {
	NumPartitions int // uniSpace grid cells; default 16
	NumReducers   int // reduce tasks; default 4
	Parallelism   int
	Seed          int64
}

func (o Options) withDefaults() Options {
	if o.NumPartitions < 1 {
		o.NumPartitions = 16
	}
	if o.NumReducers < 1 {
		o.NumReducers = 4
	}
	return o
}

// fact flag bits.
const (
	flagCore byte = 1 << 0
	flagHome byte = 1 << 1
)

// encodeFact serializes a localLabel (partition travels as the record key).
func encodeFact(f localLabel) []byte {
	var flags byte
	if f.isCore {
		flags |= flagCore
	}
	if f.isHome {
		flags |= flagHome
	}
	buf := []byte{flags}
	buf = binary.AppendUvarint(buf, f.pointID)
	buf = binary.AppendVarint(buf, int64(f.label))
	return buf
}

func decodeFact(partition int, buf []byte) (localLabel, error) {
	if len(buf) < 1 {
		return localLabel{}, codec.ErrTruncated
	}
	flags := buf[0]
	rest := buf[1:]
	id, n := binary.Uvarint(rest)
	if n <= 0 {
		return localLabel{}, codec.ErrTruncated
	}
	rest = rest[n:]
	label, n := binary.Varint(rest)
	if n <= 0 {
		return localLabel{}, codec.ErrTruncated
	}
	return localLabel{
		pointID:   id,
		partition: partition,
		label:     int(label),
		isCore:    flags&flagCore != 0,
		isHome:    flags&flagHome != 0,
	}, nil
}

// ClusterDistributed runs DBSCAN as one MapReduce job over a uniSpace
// partition plan with eps supporting areas — the adaptation of the DOD
// framework that Sec. III-B describes. The result is identical to
// Cluster's up to cluster renumbering and the inherent DBSCAN border-point
// ambiguity.
func ClusterDistributed(points []geom.Point, params Params, opts Options) (*Result, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("dbscan: empty dataset")
	}
	opts = opts.withDefaults()

	domain := geom.Bounds(points)

	// uniSpace plan with SupportR = eps. The planner only needs the domain
	// from the histogram.
	histGrid := geom.NewGrid(domain, dims(domain.Dim(), 8))
	hist := &sample.Histogram{Grid: histGrid, Counts: make([]float64, histGrid.NumCells()), Rate: 1}
	pl, err := plan.UniSpace.Build(hist, plan.Options{
		NumReducers:   opts.NumReducers,
		NumPartitions: opts.NumPartitions,
		Params:        detect.Params{R: params.Eps, K: 1},
		Detector:      detect.CellBased,
	})
	if err != nil {
		return nil, err
	}

	// Input splits.
	var splits []mapreduce.Split
	const perSplit = 8192
	for i := 0; i < len(points); i += perSplit {
		j := i + perSplit
		if j > len(points) {
			j = len(points)
		}
		splits = append(splits, mapreduce.Split{
			Name: fmt.Sprintf("dbscan-%06d", i/perSplit),
			Data: codec.EncodePoints(points[i:j]),
		})
	}

	mapper := mapreduce.MapperFunc(func(ctx *mapreduce.TaskContext, split mapreduce.Split, emit mapreduce.Emit) error {
		pts, err := codec.DecodePoints(split.Data)
		if err != nil {
			return err
		}
		for _, p := range pts {
			core, supports := pl.Locate(p)
			emit(uint64(core), codec.AppendTaggedPoint(nil, codec.TagCore, p))
			for _, s := range supports {
				emit(uint64(s), codec.AppendTaggedPoint(nil, codec.TagSupport, p))
			}
		}
		return nil
	})

	reducer := mapreduce.ReducerFunc(func(ctx *mapreduce.TaskContext, key uint64, values [][]byte, emit mapreduce.Emit) error {
		var core, support []geom.Point
		for _, v := range values {
			tag, p, _, err := codec.DecodeTaggedPoint(v)
			if err != nil {
				return err
			}
			if tag == codec.TagCore {
				core = append(core, p)
			} else {
				support = append(support, p)
			}
		}
		facts, _ := clusterLocal(core, support, params)
		for _, f := range facts {
			emit(key, encodeFact(f))
		}
		return nil
	})

	res, err := mapreduce.Run(mapreduce.Config{
		NumReducers: pl.NumReducers,
		Parallelism: opts.Parallelism,
		Partitioner: func(key uint64, n int) int { return pl.ReducerFor(key) },
		Seed:        opts.Seed,
	}, splits, mapper, reducer)
	if err != nil {
		return nil, err
	}

	perPoint := make(map[uint64][]localLabel, len(points))
	for _, pair := range res.Output {
		f, err := decodeFact(int(pair.Key), pair.Value)
		if err != nil {
			return nil, err
		}
		perPoint[f.pointID] = append(perPoint[f.pointID], f)
	}
	return reconcile(perPoint), nil
}

func dims(d, per int) []int {
	out := make([]int, d)
	for i := range out {
		out[i] = per
	}
	return out
}
