// Package dbscan demonstrates the generality of the DOD framework
// (Sec. III-B: the supporting-area partitioning "can be easily adapted to
// support other mining tasks ... such as density-based clustering"). It
// implements DBSCAN both as a centralized reference and as a single-pass
// MapReduce job over the same partition plans, supporting areas, and
// engine as outlier detection.
//
// Distributed semantics follow the MR-DBSCAN merge rule: each reducer
// clusters its partition's core ∪ support points locally; a point that is
// a DBSCAN core point *in its home partition* and appears in two
// partitions' clusterings welds those local clusters into one global
// cluster. A border point shared between partitions does not weld
// (standard DBSCAN border ambiguity); its home partition's assignment
// wins.
package dbscan

import (
	"fmt"
	"sort"

	"dod/internal/geom"
)

// Params are the DBSCAN parameters.
type Params struct {
	Eps    float64 // neighborhood radius
	MinPts int     // minimum neighborhood size (inclusive of the point) for a core point
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Eps <= 0 {
		return fmt.Errorf("dbscan: eps must be positive, got %g", p.Eps)
	}
	if p.MinPts < 1 {
		return fmt.Errorf("dbscan: minPts must be >= 1, got %d", p.MinPts)
	}
	return nil
}

// Noise is the label of unclustered points.
const Noise = -1

// Result maps each input point ID to its cluster label (0..NumClusters-1)
// or Noise.
type Result struct {
	Labels      map[uint64]int
	NumClusters int
}

// localLabel records one partition-local clustering fact about a point.
type localLabel struct {
	pointID   uint64
	partition int  // the partition whose clustering produced this fact
	label     int  // partition-local cluster id, or Noise
	isCore    bool // DBSCAN core point in this clustering
	isHome    bool // the point is a core (home) record of this partition
}

// Cluster runs centralized DBSCAN over the points.
func Cluster(points []geom.Point, params Params) (*Result, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	labels, _ := clusterLocal(points, nil, params)
	out := &Result{Labels: make(map[uint64]int, len(points))}
	max := -1
	for _, p := range points {
		l := labels[p.ID].label
		out.Labels[p.ID] = l
		if l > max {
			max = l
		}
	}
	out.NumClusters = max + 1
	return out, nil
}

// clusterLocal runs DBSCAN over core ∪ support. Core-point status is exact
// for home points (their full eps-neighborhood is present by the
// supporting-area guarantee) and conservative for support points. Returns
// per-point facts keyed by ID, and the number of local clusters.
// cellMapHint sizes a cell-index map for the expected number of occupied
// cells rather than the point count: on dense data many points share a
// cell, so hinting n entries overallocates buckets by an order of magnitude.
func cellMapHint(n int) int {
	h := n / 8
	if h < 16 {
		h = 16
	}
	return h
}

func clusterLocal(core, support []geom.Point, params Params) (map[uint64]localLabel, int) {
	all := make([]geom.Point, 0, len(core)+len(support))
	all = append(all, core...)
	all = append(all, support...)
	facts := make(map[uint64]localLabel, len(all))
	if len(all) == 0 {
		return facts, 0
	}

	// Grid index with cell width eps: neighbors lie in the 3^d block. The
	// map holds one entry per *occupied cell*, far fewer than one per point
	// on dense data — hint len/8 (min 16) instead of overallocating buckets
	// for len(all) entries.
	grid := geom.NewGridByWidth(geom.Bounds(all), params.Eps)
	cells := make(map[int][]int, cellMapHint(len(all)))
	for i, p := range all {
		ord := grid.CellOrdinal(p)
		cells[ord] = append(cells[ord], i)
	}
	neighborsOf := func(i int) []int {
		var out []int
		p := all[i]
		grid.Neighborhood(grid.CellCoords(p), 1, func(ord int) {
			for _, j := range cells[ord] {
				if geom.WithinDist(p, all[j], params.Eps) {
					out = append(out, j) // includes i itself (MinPts counts it)
				}
			}
		})
		return out
	}

	labels := make([]int, len(all))
	isCore := make([]bool, len(all))
	expanded := make([]bool, len(all))
	for i := range labels {
		labels[i] = Noise
	}
	nextCluster := 0
	for i := range all {
		if labels[i] != Noise {
			continue
		}
		seed := neighborsOf(i)
		if len(seed) < params.MinPts {
			continue // noise (possibly rescued later as a border point)
		}
		isCore[i] = true
		expanded[i] = true
		cluster := nextCluster
		nextCluster++
		labels[i] = cluster
		// BFS expansion.
		queue := append([]int(nil), seed...)
		for len(queue) > 0 {
			j := queue[0]
			queue = queue[1:]
			if labels[j] == Noise {
				labels[j] = cluster // border point
			}
			if labels[j] != cluster || expanded[j] {
				continue
			}
			expanded[j] = true
			nbrs := neighborsOf(j)
			if len(nbrs) >= params.MinPts {
				isCore[j] = true
				queue = append(queue, nbrs...)
			}
		}
	}

	for i, p := range all {
		facts[p.ID] = localLabel{
			pointID: p.ID,
			label:   labels[i],
			isCore:  isCore[i],
			isHome:  i < len(core),
		}
	}
	return facts, nextCluster
}

// mergeKey identifies a partition-local cluster in the global union-find.
type mergeKey struct {
	partition int
	label     int
}

// unionFind is a tiny disjoint-set over mergeKeys.
type unionFind struct {
	parent map[mergeKey]mergeKey
}

func newUnionFind() *unionFind { return &unionFind{parent: map[mergeKey]mergeKey{}} }

func (u *unionFind) find(k mergeKey) mergeKey {
	p, ok := u.parent[k]
	if !ok {
		u.parent[k] = k
		return k
	}
	if p == k {
		return k
	}
	root := u.find(p)
	u.parent[k] = root
	return root
}

func (u *unionFind) union(a, b mergeKey) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}

// reconcile welds partition-local clusterings into global labels. For each
// point: if it is a core point in its home partition, every local cluster
// containing it is the same global cluster. The home label decides the
// point's own membership.
func reconcile(perPoint map[uint64][]localLabel) *Result {
	uf := newUnionFind()
	type homeFact struct {
		key   mergeKey
		noise bool
	}
	home := make(map[uint64]homeFact, len(perPoint))

	for id, facts := range perPoint {
		var homeCore bool
		for _, f := range facts {
			if f.isHome {
				homeCore = f.isCore
				if f.label == Noise {
					home[id] = homeFact{noise: true}
				} else {
					home[id] = homeFact{key: mergeKey{partition: f.partition, label: f.label}}
				}
			}
		}
		if !homeCore {
			continue
		}
		// Weld every non-noise local cluster containing this core point.
		var keys []mergeKey
		for _, f := range facts {
			if f.label != Noise {
				keys = append(keys, mergeKey{partition: f.partition, label: f.label})
			}
		}
		for i := 1; i < len(keys); i++ {
			uf.union(keys[0], keys[i])
		}
	}

	// Canonical numbering of the union-find roots, deterministic by root
	// order.
	roots := map[mergeKey]int{}
	var rootList []mergeKey
	res := &Result{Labels: make(map[uint64]int, len(perPoint))}
	ids := make([]uint64, 0, len(perPoint))
	for id := range perPoint {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		hf, ok := home[id]
		if !ok || hf.noise {
			res.Labels[id] = Noise
			continue
		}
		root := uf.find(hf.key)
		num, seen := roots[root]
		if !seen {
			num = len(rootList)
			roots[root] = num
			rootList = append(rootList, root)
		}
		res.Labels[id] = num
	}
	res.NumClusters = len(rootList)
	return res
}
