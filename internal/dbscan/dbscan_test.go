package dbscan

import (
	"math/rand"
	"testing"

	"dod/internal/geom"
)

var testParams = Params{Eps: 2, MinPts: 4}

// blob generates n points around (cx, cy) within a tight spread.
func blob(rng *rand.Rand, startID uint64, n int, cx, cy, spread float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			ID:     startID + uint64(i),
			Coords: []float64{cx + rng.NormFloat64()*spread, cy + rng.NormFloat64()*spread},
		}
	}
	return pts
}

// threeBlobs builds three well-separated clusters plus isolated noise.
func threeBlobs(seed int64) (points []geom.Point, noiseIDs []uint64) {
	rng := rand.New(rand.NewSource(seed))
	points = append(points, blob(rng, 0, 200, 10, 10, 0.8)...)
	points = append(points, blob(rng, 1000, 150, 50, 10, 0.8)...)
	points = append(points, blob(rng, 2000, 180, 30, 50, 0.8)...)
	for i, c := range [][]float64{{90, 90}, {5, 90}, {90, 5}} {
		id := uint64(9000 + i)
		points = append(points, geom.Point{ID: id, Coords: c})
		noiseIDs = append(noiseIDs, id)
	}
	return points, noiseIDs
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{Eps: 1, MinPts: 2}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	if err := (Params{Eps: 0, MinPts: 2}).Validate(); err == nil {
		t.Error("eps=0 accepted")
	}
	if err := (Params{Eps: 1, MinPts: 0}).Validate(); err == nil {
		t.Error("minPts=0 accepted")
	}
}

func TestCentralizedThreeBlobs(t *testing.T) {
	points, noiseIDs := threeBlobs(1)
	res, err := Cluster(points, testParams)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 3 {
		t.Fatalf("got %d clusters, want 3", res.NumClusters)
	}
	for _, id := range noiseIDs {
		if res.Labels[id] != Noise {
			t.Errorf("isolated point %d labeled %d, want noise", id, res.Labels[id])
		}
	}
	// All members of one blob must share a label.
	blobLabel := res.Labels[0]
	for id := uint64(0); id < 200; id++ {
		if res.Labels[id] != blobLabel {
			t.Fatalf("blob 1 split: point %d has label %d != %d", id, res.Labels[id], blobLabel)
		}
	}
	// Different blobs must have different labels.
	if res.Labels[0] == res.Labels[1000] || res.Labels[1000] == res.Labels[2000] {
		t.Error("separate blobs merged")
	}
}

func TestCentralizedAllNoise(t *testing.T) {
	var pts []geom.Point
	for i := 0; i < 20; i++ {
		pts = append(pts, geom.Point{ID: uint64(i), Coords: []float64{float64(i) * 100, 0}})
	}
	res, err := Cluster(pts, testParams)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 0 {
		t.Errorf("got %d clusters, want 0", res.NumClusters)
	}
	for id, l := range res.Labels {
		if l != Noise {
			t.Errorf("point %d labeled %d", id, l)
		}
	}
}

func TestCentralizedSingleDenseCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := blob(rng, 0, 500, 0, 0, 1.5)
	res, err := Cluster(pts, testParams)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Errorf("got %d clusters, want 1", res.NumClusters)
	}
}

// sameClustering compares two results up to label renumbering, on core
// structure: every pair of points in the same cluster in a must be in the
// same cluster in b and vice versa. Noise must match exactly.
func sameClustering(t *testing.T, a, b *Result, ids []uint64) {
	t.Helper()
	if a.NumClusters != b.NumClusters {
		t.Errorf("cluster counts differ: %d vs %d", a.NumClusters, b.NumClusters)
	}
	mapping := map[int]int{}
	for _, id := range ids {
		la, lb := a.Labels[id], b.Labels[id]
		if (la == Noise) != (lb == Noise) {
			t.Fatalf("point %d: noise status differs (%d vs %d)", id, la, lb)
		}
		if la == Noise {
			continue
		}
		if want, ok := mapping[la]; ok {
			if lb != want {
				t.Fatalf("point %d: label %d maps to both %d and %d", id, la, want, lb)
			}
		} else {
			mapping[la] = lb
		}
	}
	// The mapping must be injective.
	seen := map[int]bool{}
	for _, v := range mapping {
		if seen[v] {
			t.Fatal("two clusters of a merged into one cluster of b")
		}
		seen[v] = true
	}
}

func TestDistributedMatchesCentralized(t *testing.T) {
	points, _ := threeBlobs(3)
	ids := make([]uint64, len(points))
	for i, p := range points {
		ids[i] = p.ID
	}
	want, err := Cluster(points, testParams)
	if err != nil {
		t.Fatal(err)
	}
	for _, partitions := range []int{4, 16, 64} {
		got, err := ClusterDistributed(points, testParams, Options{
			NumPartitions: partitions, NumReducers: 4, Seed: 5,
		})
		if err != nil {
			t.Fatalf("partitions=%d: %v", partitions, err)
		}
		sameClustering(t, want, got, ids)
	}
}

func TestDistributedClusterSpanningPartitions(t *testing.T) {
	// A single elongated cluster crossing many partition boundaries: the
	// merge rule must weld every local fragment into one global cluster.
	rng := rand.New(rand.NewSource(7))
	var pts []geom.Point
	for i := 0; i < 800; i++ {
		x := float64(i) * 0.25 // a 200-unit-long dense line
		pts = append(pts, geom.Point{
			ID:     uint64(i),
			Coords: []float64{x, 50 + rng.NormFloat64()*0.5},
		})
	}
	res, err := ClusterDistributed(pts, testParams, Options{NumPartitions: 36, NumReducers: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumClusters != 1 {
		t.Fatalf("spanning cluster fragmented into %d clusters", res.NumClusters)
	}
	for _, p := range pts {
		if res.Labels[p.ID] != 0 {
			t.Fatalf("point %d labeled %d", p.ID, res.Labels[p.ID])
		}
	}
}

func TestDistributedRandomizedEquivalence(t *testing.T) {
	// Property test over random well-separated blob layouts.
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		var pts []geom.Point
		id := uint64(0)
		blobs := 2 + rng.Intn(4)
		for b := 0; b < blobs; b++ {
			// Blob centers on a coarse lattice: separation >> eps.
			cx := float64(20 + 40*(b%3))
			cy := float64(20 + 40*(b/3))
			n := 80 + rng.Intn(120)
			for i := 0; i < n; i++ {
				pts = append(pts, geom.Point{ID: id, Coords: []float64{
					cx + rng.NormFloat64(), cy + rng.NormFloat64(),
				}})
				id++
			}
		}
		ids := make([]uint64, len(pts))
		for i, p := range pts {
			ids[i] = p.ID
		}
		want, err := Cluster(pts, testParams)
		if err != nil {
			t.Fatal(err)
		}
		if want.NumClusters != blobs {
			t.Fatalf("trial %d: centralized found %d clusters, want %d", trial, want.NumClusters, blobs)
		}
		got, err := ClusterDistributed(pts, testParams, Options{NumPartitions: 25, NumReducers: 5, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		sameClustering(t, want, got, ids)
	}
}

func TestDistributedValidation(t *testing.T) {
	if _, err := ClusterDistributed(nil, testParams, Options{}); err == nil {
		t.Error("empty dataset accepted")
	}
	pts := []geom.Point{{ID: 1, Coords: []float64{0, 0}}}
	if _, err := ClusterDistributed(pts, Params{Eps: -1, MinPts: 2}, Options{}); err == nil {
		t.Error("bad params accepted")
	}
}

func TestFactRoundTrip(t *testing.T) {
	cases := []localLabel{
		{pointID: 0, partition: 3, label: Noise, isCore: false, isHome: true},
		{pointID: 12345, partition: 7, label: 42, isCore: true, isHome: false},
		{pointID: 1 << 60, partition: 0, label: 0, isCore: true, isHome: true},
	}
	for _, f := range cases {
		got, err := decodeFact(f.partition, encodeFact(f))
		if err != nil {
			t.Fatal(err)
		}
		if got != f {
			t.Errorf("roundtrip %+v -> %+v", f, got)
		}
	}
	if _, err := decodeFact(0, nil); err == nil {
		t.Error("empty fact accepted")
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind()
	a, b, c := mergeKey{0, 1}, mergeKey{1, 2}, mergeKey{2, 3}
	uf.union(a, b)
	if uf.find(a) != uf.find(b) {
		t.Error("a and b not merged")
	}
	if uf.find(a) == uf.find(c) {
		t.Error("c spuriously merged")
	}
	uf.union(b, c)
	if uf.find(a) != uf.find(c) {
		t.Error("transitive union failed")
	}
}
