package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dod/internal/geom"
	"dod/internal/httpapi"
	"dod/internal/obs"
	"dod/internal/replica"
	"dod/internal/retry"
	"dod/internal/router"
	"dod/internal/stream"
)

// ShardServer is one cell-partitioned dodserve shard: the slice of the
// global sliding window whose grid cells this shard owns under the current
// router-pushed topology. It speaks the codec-framed shard wire protocol
// (internal/router/wire.go):
//
//	POST /v1/shard/ingest    admit one point with a router-assigned global
//	                         sequence number; neighbor counting fans out
//	                         to peers for boundary cells.
//	POST /v1/shard/evict     expire one resident point by ID (the router
//	                         owns the global FIFO and commands evictions).
//	POST /v1/support         boundary-cell support (Lemma 3.1): count — and
//	                         for delta ±1, adjust — this shard's residents
//	                         that neighbor the probe point in the given
//	                         cells. Called by peer shards and, for scoring,
//	                         by the router.
//	GET  /v1/shard/export    the full resident slice (drain/handoff).
//	POST /v1/shard/import    adopt entries exported from a draining peer.
//	POST /v1/shard/topology  install a new ownership epoch.
//	GET  /healthz /readyz /statsz /metrics as usual.
//
// Every mutating endpoint is idempotent by X-Dod-Request-Id: a retried
// request (lost response, injected fault) replays the recorded response
// instead of re-applying its count deltas, so the router and peers may
// retry blindly.
//
// Mutation ordering is the router's job: it serializes ingests, evicts and
// drains globally, so at most one mutation originator is active at a time
// and cross-shard support calls can never form a lock cycle.
type ShardServer struct {
	cfg ShardServerConfig
	sw  *stream.ShardWindow
	mux *http.ServeMux
	reg *obs.Registry
	met *shardMetrics

	client  *http.Client
	dedupe  *dedupeCache
	started time.Time

	draining atomic.Bool

	topoMu sync.RWMutex
	topo   *router.Topology

	// Primary-side replication (nil unless cfg.Replica is set).
	replog  *replica.Log
	rec     *replica.Recorder
	shipper *replica.Shipper

	// Standby-side replication (nil unless cfg.Standby).
	stby *standbyState
}

// standbyState is a warm standby's replay cursor: how far into the
// primary's op log it has applied, whether it has caught up with the last
// shipped head, and whether a router topology push has promoted it. All
// replica applies serialize under mu, so applied-order equals log order.
type standbyState struct {
	mu       sync.Mutex
	applied  uint64
	synced   bool
	promoted bool
}

// ShardServerConfig parameterizes a ShardServer.
type ShardServerConfig struct {
	// Name is this shard's cluster-unique name; ownership is decided by
	// comparing topology owners against it.
	Name string
	// R, K, Dim mirror the stream parameters and must match the router's.
	R   float64
	K   int
	Dim int
	// IndexShards is the local index's lock-stripe count (0 = default).
	IndexShards int
	// MaxBodyBytes caps one request body; default DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// Obs is the metrics registry; default a fresh one.
	Obs *obs.Registry
	// Transport is the HTTP transport for peer support calls — the fault
	// injection seam. Nil uses httpapi.NewTransport, tuned for the dense
	// shard↔shard connection graph (high per-host idle connection reuse).
	Transport http.RoundTripper
	// Retry shapes peer-call backoff; zero value takes defaults.
	Retry retry.Policy
	// RetryAttempts bounds peer-call attempts; default 8.
	RetryAttempts int
	// DedupeCapacity caps the idempotency replay cache (entries, FIFO);
	// default DefaultDedupeCapacity. Size it above the peak number of
	// in-flight request IDs a caller may retry.
	DedupeCapacity int
	// Replica, when set, is a warm standby's base URL: every window
	// mutation is appended to a sequence-numbered op log and shipped to it
	// asynchronously (internal/replica).
	Replica string
	// ReplicaTransport overrides the replication hop's HTTP transport —
	// the fault-injection seam. Nil uses httpapi.NewTransport.
	ReplicaTransport http.RoundTripper
	// ReplicaInterval is the ship poll period (0 = replica default).
	ReplicaInterval time.Duration
	// Standby runs this server as a warm standby: it serves the
	// /v1/replica endpoints, refuses readiness until bootstrap + log
	// catch-up completes, and treats a router topology push as its
	// promotion to primary.
	Standby bool
}

// DefaultDedupeCapacity is the idempotency replay cache's default size.
const DefaultDedupeCapacity = 4096

// shardMetrics are the shard serving layer's instruments.
type shardMetrics struct {
	ingests       *obs.Counter
	evicts        *obs.Counter
	supportServed *obs.Counter
	supportIssued *obs.Counter
	supportRPCs   *obs.Counter
	peerRetries   *obs.Counter
	dedupeHits    *obs.Counter
	dedupeEvicts  *obs.Counter
	imports       *obs.Counter
	exports       *obs.Counter
	topoPushes    *obs.Counter
	wireErrors    *obs.Counter
	replicaOps    *obs.Counter // standby: ops applied from the primary's log
}

// NewShard builds a shard server with an empty window slice. It serves
// 503s until the router pushes a first topology.
func NewShard(cfg ShardServerConfig) (*ShardServer, error) {
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.RetryAttempts <= 0 {
		cfg.RetryAttempts = 8
	}
	if cfg.DedupeCapacity <= 0 {
		cfg.DedupeCapacity = DefaultDedupeCapacity
	}
	if cfg.Standby && cfg.Replica != "" {
		return nil, fmt.Errorf("shard %s: a standby cannot itself replicate (chained replication is unsupported)", cfg.Name)
	}
	sw, err := stream.NewShardWindow(stream.ShardConfig{
		R: cfg.R, K: cfg.K, Dim: cfg.Dim, Shards: cfg.IndexShards, Obs: cfg.Obs,
	})
	if err != nil {
		return nil, err
	}
	transport := cfg.Transport
	if transport == nil {
		transport = httpapi.NewTransport()
	}
	s := &ShardServer{
		cfg:     cfg,
		sw:      sw,
		mux:     http.NewServeMux(),
		reg:     cfg.Obs,
		client:  &http.Client{Transport: transport},
		started: time.Now(),
	}
	s.dedupe = newDedupeCache(cfg.DedupeCapacity)
	s.met = &shardMetrics{
		ingests:       s.reg.Counter("dod_shard_ingests_total", "points admitted to this shard slice"),
		evicts:        s.reg.Counter("dod_shard_evicts_total", "router-commanded evictions applied"),
		supportServed: s.reg.Counter("dod_shard_support_total", "boundary support calls", obs.L("dir", "served")),
		supportIssued: s.reg.Counter("dod_shard_support_total", "boundary support calls", obs.L("dir", "issued")),
		supportRPCs:   s.reg.Counter("dod_support_rpc_total", "boundary support round trips issued over the wire"),
		peerRetries:   s.reg.Counter("dod_shard_peer_retries_total", "retried peer support calls"),
		dedupeHits:    s.reg.Counter("dod_shard_dedupe_hits_total", "mutating requests answered from the idempotency cache"),
		dedupeEvicts:  s.reg.Counter("dod_shard_dedupe_evictions_total", "idempotency cache entries aged out FIFO"),
		imports:       s.reg.Counter("dod_shard_imports_total", "entries adopted during drain/handoff"),
		exports:       s.reg.Counter("dod_shard_exports_total", "entries exported during drain/handoff"),
		topoPushes:    s.reg.Counter("dod_shard_topology_pushes_total", "topology epochs installed"),
		wireErrors:    s.reg.Counter("dod_shard_wire_errors_total", "malformed or corrupt wire bodies rejected"),
		replicaOps:    s.reg.Counter("dod_replica_ops_total", "replication log ops", obs.L("dir", "applied")),
	}
	s.dedupe.evictions = s.met.dedupeEvicts
	s.reg.GaugeFunc("dod_shard_dedupe_size", "idempotency cache entries currently held",
		func() float64 { return float64(s.dedupe.size()) })
	s.reg.GaugeFunc("dod_shard_topology_epoch", "currently installed ownership epoch",
		func() float64 {
			s.topoMu.RLock()
			defer s.topoMu.RUnlock()
			if s.topo == nil {
				return -1
			}
			return float64(s.topo.Epoch)
		})
	s.mux.HandleFunc(router.PathShardIngest, s.handleShardIngest)
	s.mux.HandleFunc(router.PathShardIngestBatch, s.handleShardIngestBatch)
	s.mux.HandleFunc(router.PathShardEvict, s.handleShardEvict)
	s.mux.HandleFunc(router.PathSupport, s.handleSupport)
	s.mux.HandleFunc(router.PathShardExport, s.handleShardExport)
	s.mux.HandleFunc(router.PathShardImport, s.handleShardImport)
	s.mux.HandleFunc(router.PathShardTopology, s.handleShardTopology)
	s.mux.HandleFunc(replica.PathApply, s.handleReplicaApply)
	s.mux.HandleFunc(replica.PathSnapshot, s.handleReplicaSnapshot)
	s.mux.HandleFunc(replica.PathStatus, s.handleReplicaStatus)
	s.mux.HandleFunc(replica.PathDigest, s.handleShardDigest)
	s.mux.HandleFunc("/healthz", s.handleShardHealthz)
	s.mux.HandleFunc("/readyz", s.handleShardReadyz)
	s.mux.HandleFunc("/statsz", s.handleShardStatsz)
	s.mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.TextContentType)
		s.reg.WritePrometheus(w)
	})
	if cfg.Standby {
		s.stby = &standbyState{}
	}
	if cfg.Replica != "" {
		s.replog = replica.NewLog(cfg.Obs)
		s.rec = replica.NewRecorder(s.replog, cfg.Obs)
		s.sw.SetRecorder(s.rec)
		rt := cfg.ReplicaTransport
		if rt == nil {
			rt = httpapi.NewTransport()
		}
		shipper, err := replica.NewShipper(replica.ShipperConfig{
			From:     cfg.Name,
			Standby:  cfg.Replica,
			Log:      s.replog,
			Client:   &http.Client{Transport: rt},
			Interval: cfg.ReplicaInterval,
			Snapshot: s.replicaSnapshot,
			Obs:      cfg.Obs,
		})
		if err != nil {
			return nil, err
		}
		s.shipper = shipper
		s.shipper.Start()
	}
	return s, nil
}

// Close stops background work (the replication shipper, if any).
func (s *ShardServer) Close() {
	if s.shipper != nil {
		s.shipper.Close()
	}
}

// recordDedupe mirrors one first-run idempotency-cache entry into the op
// log so a promoted standby replays the same response to a retried request.
func (s *ShardServer) recordDedupe(reqID string, status int, resp []byte) {
	if s.rec == nil || reqID == "" {
		return
	}
	s.rec.RecordDedupe(reqID, status, resp)
}

// Handler returns the shard's HTTP handler (request-ID echoing included).
func (s *ShardServer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		router.EchoRequestID(w, r)
		s.mux.ServeHTTP(w, r)
	})
}

// Window exposes the underlying shard window (tests).
func (s *ShardServer) Window() *stream.ShardWindow { return s.sw }

// Registry exposes the metrics registry.
func (s *ShardServer) Registry() *obs.Registry { return s.reg }

// SetDraining flips readiness, as on Server.
func (s *ShardServer) SetDraining(d bool) { s.draining.Store(d) }

// topology returns the installed topology, or nil before the first push.
func (s *ShardServer) topology() *router.Topology {
	s.topoMu.RLock()
	defer s.topoMu.RUnlock()
	return s.topo
}

// owns builds the ownership predicate for one captured topology.
func (s *ShardServer) owns(topo *router.Topology) stream.OwnsFunc {
	return func(cell []int64) bool { return topo.Owner(cell) == s.cfg.Name }
}

// supportFunc builds the SupportFunc that resolves foreign cells through
// peer /v1/support calls, grouped per owning shard. Each (request, peer)
// pair gets a derived idempotency key, so internal retries — and the
// router's retries of the whole operation — can never double-apply a
// delta.
func (s *ShardServer) supportFunc(ctx context.Context, topo *router.Topology, reqID string) stream.SupportFunc {
	return func(p geom.Point, cells [][]int64, delta, limit int) (int, error) {
		byOwner := map[string][][]int64{}
		for _, c := range cells {
			o := topo.Owner(c)
			byOwner[o] = append(byOwner[o], c)
		}
		owners := make([]string, 0, len(byOwner))
		for o := range byOwner {
			if o == s.cfg.Name {
				// owns() and this func share one topology capture, so a
				// self-referential support call cannot happen; calling
				// ourselves over HTTP would deadlock on the window mutex.
				return 0, fmt.Errorf("shard %s: support cells route back to self (topology torn?)", s.cfg.Name)
			}
			owners = append(owners, o)
		}
		sort.Strings(owners)
		total := 0
		for _, o := range owners {
			body := router.EncodeSupport(router.SupportHeader{Delta: delta, Limit: limit}, p, byOwner[o])
			var resp router.SupportResponse
			key := fmt.Sprintf("%s|sup|%s|%d", reqID, o, delta)
			s.met.supportRPCs.Inc()
			if err := s.postPeer(ctx, topo.ShardURL(o), router.PathSupport, key, body, &resp); err != nil {
				return 0, fmt.Errorf("support from %s: %w", o, err)
			}
			if resp.Error != "" {
				return 0, fmt.Errorf("support from %s: %s", o, resp.Error)
			}
			s.met.supportIssued.Inc()
			total += resp.Count
		}
		if limit > 0 && total > limit {
			total = limit
		}
		return total, nil
	}
}

// postPeer POSTs a body to a peer shard with bounded retries. Mutating
// calls are safe to retry because the receiver dedupes by the request ID.
func (s *ShardServer) postPeer(ctx context.Context, base, path, reqID string, body []byte, out any) error {
	var lastErr error
	for attempt := 0; attempt < s.cfg.RetryAttempts; attempt++ {
		if attempt > 0 {
			s.met.peerRetries.Inc()
			if err := retry.Sleep(ctx, s.cfg.Retry.Delay(attempt, nil)); err != nil {
				return err
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		req.Header.Set(router.HeaderRequestID, reqID)
		resp, err := s.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode/100 != 2 {
			lastErr = fmt.Errorf("peer %s%s: status %d: %s", base, path, resp.StatusCode, bytes.TrimSpace(raw))
			if resp.StatusCode/100 == 4 {
				return lastErr // a malformed request will not heal with retries
			}
			continue
		}
		if err := json.Unmarshal(raw, out); err != nil {
			lastErr = fmt.Errorf("peer %s%s: bad response: %v", base, path, err)
			continue
		}
		return nil
	}
	return lastErr
}

// readWireBody reads a size-capped request body.
func (s *ShardServer) readWireBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	return io.ReadAll(r.Body)
}

func (s *ShardServer) writeShardJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck
}

// requireTopology answers 503 and returns nil if no topology is installed.
func (s *ShardServer) requireTopology(w http.ResponseWriter, r *http.Request) *router.Topology {
	topo := s.topology()
	if topo == nil {
		writeErrorBody(w, r, http.StatusServiceUnavailable, "no_topology",
			"shard has no installed topology yet")
	}
	return topo
}

func (s *ShardServer) handleShardTopology(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	raw, err := s.readWireBody(w, r)
	if err != nil {
		s.writeBatchError(w, r, err)
		return
	}
	var topo router.Topology
	if err := json.Unmarshal(raw, &topo); err != nil {
		writeErrorBody(w, r, http.StatusBadRequest, "bad_request", "bad topology body: "+err.Error())
		return
	}
	if err := topo.Validate(); err != nil {
		writeErrorBody(w, r, http.StatusBadRequest, "bad_topology", err.Error())
		return
	}
	if topo.Dim != s.cfg.Dim || topo.R != s.cfg.R || topo.K != s.cfg.K {
		writeErrorBody(w, r, http.StatusBadRequest, "param_mismatch",
			fmt.Sprintf("topology (r=%g k=%d dim=%d) does not match shard (r=%g k=%d dim=%d)",
				topo.R, topo.K, topo.Dim, s.cfg.R, s.cfg.K, s.cfg.Dim))
		return
	}
	s.topoMu.Lock()
	stale := s.topo != nil && topo.Epoch < s.topo.Epoch
	if !stale {
		s.topo = &topo
	}
	s.topoMu.Unlock()
	if stale {
		writeErrorBody(w, r, http.StatusConflict, "stale_epoch", "pushed epoch is older than installed")
		return
	}
	if s.rec != nil {
		s.rec.RecordTopology(raw)
	}
	if s.stby != nil {
		// A router only pushes topology at a standby when it is promoting
		// it: from here on this server is the shard's primary and stops
		// accepting replica applies.
		s.stby.mu.Lock()
		s.stby.promoted = true
		s.stby.mu.Unlock()
	}
	s.met.topoPushes.Inc()
	s.writeShardJSON(w, http.StatusOK, router.TopologyResponse{
		Epoch: topo.Epoch, Shard: s.cfg.Name, Points: s.sw.Stats().Len,
	})
}

func (s *ShardServer) handleShardIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	topo := s.requireTopology(w, r)
	if topo == nil {
		return
	}
	body, err := s.readWireBody(w, r)
	if err != nil {
		s.writeBatchError(w, r, err)
		return
	}
	reqID := r.Header.Get(router.HeaderRequestID)
	status, resp, ran := s.dedupe.do(reqID, s.met.dedupeHits, func() (int, []byte) {
		hdr, pt, err := router.DecodeIngest(body)
		if err != nil {
			s.met.wireErrors.Inc()
			return http.StatusBadRequest, marshalJSON(router.IngestResponse{Error: err.Error(), RequestID: reqID})
		}
		v, err := s.sw.Admit(pt, hdr.Seq, time.Unix(0, hdr.ArrivedNs), s.owns(topo), s.supportFunc(r.Context(), topo, reqID))
		if err != nil {
			return http.StatusOK, marshalJSON(router.IngestResponse{ID: pt.ID, Error: err.Error(), RequestID: reqID})
		}
		s.met.ingests.Inc()
		return http.StatusOK, marshalJSON(router.IngestResponse{
			ID: v.ID, Seq: v.Seq, Neighbors: v.Neighbors, Outlier: v.Outlier, RequestID: reqID,
		})
	})
	if ran {
		s.recordDedupe(reqID, status, resp)
	}
	s.writeRaw(w, status, resp)
}

// handleShardIngestBatch admits a router-coalesced run of points in one
// exchange. Foreign neighbor counts arrive precomputed (the router settled
// them with one multi-probe support call per peer), so no support fan-out
// happens here — the whole run commits under one window lock.
func (s *ShardServer) handleShardIngestBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	topo := s.requireTopology(w, r)
	if topo == nil {
		return
	}
	body, err := s.readWireBody(w, r)
	if err != nil {
		s.writeBatchError(w, r, err)
		return
	}
	reqID := r.Header.Get(router.HeaderRequestID)
	status, resp, ran := s.dedupe.do(reqID, s.met.dedupeHits, func() (int, []byte) {
		hdr, items, err := router.DecodeIngestBatch(body)
		if err != nil {
			s.met.wireErrors.Inc()
			return http.StatusBadRequest, marshalJSON(router.IngestBatchResponse{Error: err.Error(), RequestID: reqID})
		}
		in := make([]stream.PrecountedAdmission, len(items))
		for i, it := range items {
			in[i] = stream.PrecountedAdmission{
				Point: it.Point, Seq: it.Seq, Foreign: it.Foreign, CrossLater: it.CrossLater,
			}
		}
		verdicts, admitErrs := s.sw.AdmitBatch(in, time.Unix(0, hdr.ArrivedNs), s.owns(topo))
		out := router.IngestBatchResponse{Results: make([]router.IngestResponse, len(items)), RequestID: reqID}
		for i := range items {
			if admitErrs[i] != nil {
				out.Results[i] = router.IngestResponse{ID: items[i].Point.ID, Error: admitErrs[i].Error()}
				continue
			}
			v := verdicts[i]
			out.Results[i] = router.IngestResponse{ID: v.ID, Seq: v.Seq, Neighbors: v.Neighbors, Outlier: v.Outlier}
			s.met.ingests.Inc()
		}
		return http.StatusOK, marshalJSON(out)
	})
	if ran {
		s.recordDedupe(reqID, status, resp)
	}
	s.writeRaw(w, status, resp)
}

func (s *ShardServer) handleShardEvict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	topo := s.requireTopology(w, r)
	if topo == nil {
		return
	}
	var req router.EvictRequest
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErrorBody(w, r, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	reqID := r.Header.Get(router.HeaderRequestID)
	status, resp, ran := s.dedupe.do(reqID, s.met.dedupeHits, func() (int, []byte) {
		ok, err := s.sw.EvictByID(req.ID, s.owns(topo), s.supportFunc(r.Context(), topo, reqID))
		if err != nil {
			return http.StatusOK, marshalJSON(router.EvictResponse{Error: err.Error(), RequestID: reqID})
		}
		if ok {
			s.met.evicts.Inc()
		}
		return http.StatusOK, marshalJSON(router.EvictResponse{Evicted: ok, RequestID: reqID})
	})
	if ran {
		s.recordDedupe(reqID, status, resp)
	}
	s.writeRaw(w, status, resp)
}

func (s *ShardServer) handleSupport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := s.readWireBody(w, r)
	if err != nil {
		s.writeBatchError(w, r, err)
		return
	}
	reqID := r.Header.Get(router.HeaderRequestID)
	serve := func() (int, []byte) {
		// DecodeSupportBatch subsumes the per-point form: a body from
		// EncodeSupport parses as exactly one probe. Multi-probe bodies
		// (coalesced segment support, chunked scoring) answer one count per
		// probe plus the sum, in one round trip per peer instead of one per
		// point. Probes against one shard are independent, so applying them
		// in order equals applying them one RPC at a time.
		hdr, probes, err := router.DecodeSupportBatch(body)
		if err != nil {
			s.met.wireErrors.Inc()
			return http.StatusBadRequest, marshalJSON(router.SupportResponse{Error: err.Error(), RequestID: reqID})
		}
		total := 0
		counts := make([]int, len(probes))
		for i, pr := range probes {
			n, err := s.sw.ApplySupport(pr.Point, pr.Cells, hdr.Delta, hdr.Limit)
			if err != nil {
				return http.StatusOK, marshalJSON(router.SupportResponse{Error: err.Error(), RequestID: reqID})
			}
			counts[i] = n
			total += n
		}
		s.met.supportServed.Inc()
		return http.StatusOK, marshalJSON(router.SupportResponse{Count: total, Counts: counts, RequestID: reqID})
	}
	// Read-only support (scoring) skips the idempotency cache; only
	// delta-applying calls need exactly-once semantics. The delta lives in
	// the sealed body, so peek cheaply: mutating callers always send a
	// request ID, and scoring callers send none or delta 0.
	if reqID == "" {
		status, resp := serve()
		s.writeRaw(w, status, resp)
		return
	}
	status, resp, ran := s.dedupe.do(reqID, s.met.dedupeHits, serve)
	if ran {
		s.recordDedupe(reqID, status, resp)
	}
	s.writeRaw(w, status, resp)
}

func (s *ShardServer) handleShardExport(w http.ResponseWriter, r *http.Request) {
	entries := s.sw.Export()
	out := make([]router.Entry, len(entries))
	for i, e := range entries {
		out[i] = router.Entry{
			Point: e.Point, Seq: e.Seq, ArrivedNs: e.Arrived.UnixNano(),
			Count: e.Count, Outlier: e.Outlier,
		}
	}
	s.met.exports.Add(int64(len(out)))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(router.EncodeEntries(out)) //nolint:errcheck
}

func (s *ShardServer) handleShardImport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := s.readWireBody(w, r)
	if err != nil {
		s.writeBatchError(w, r, err)
		return
	}
	reqID := r.Header.Get(router.HeaderRequestID)
	status, resp, ran := s.dedupe.do(reqID, s.met.dedupeHits, func() (int, []byte) {
		entries, err := router.DecodeEntries(body)
		if err != nil {
			s.met.wireErrors.Inc()
			return http.StatusBadRequest, marshalJSON(router.ImportResponse{Error: err.Error(), RequestID: reqID})
		}
		in := make([]stream.ExportedEntry, len(entries))
		for i, e := range entries {
			in[i] = stream.ExportedEntry{
				Point: e.Point, Seq: e.Seq, Arrived: time.Unix(0, e.ArrivedNs),
				Count: e.Count, Outlier: e.Outlier,
			}
		}
		if err := s.sw.Import(in); err != nil {
			return http.StatusOK, marshalJSON(router.ImportResponse{Error: err.Error(), RequestID: reqID})
		}
		s.met.imports.Add(int64(len(in)))
		return http.StatusOK, marshalJSON(router.ImportResponse{Imported: len(in), RequestID: reqID})
	})
	if ran {
		s.recordDedupe(reqID, status, resp)
	}
	s.writeRaw(w, status, resp)
}

func (s *ShardServer) handleShardHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.sw.Stats()
	epoch := int64(-1)
	if topo := s.topology(); topo != nil {
		epoch = topo.Epoch
	}
	out := map[string]any{
		"status": "ok",
		"shard":  s.cfg.Name,
		"window": st.Len,
		"epoch":  epoch,
	}
	if s.replog != nil {
		out["replica"] = map[string]any{
			"role":  "primary",
			"head":  s.replog.Head(),
			"acked": s.replog.Acked(),
		}
	} else if s.stby != nil {
		s.stby.mu.Lock()
		out["replica"] = map[string]any{
			"role":     "standby",
			"applied":  s.stby.applied,
			"synced":   s.stby.synced,
			"promoted": s.stby.promoted,
		}
		s.stby.mu.Unlock()
	}
	s.writeShardJSON(w, http.StatusOK, out)
}

func (s *ShardServer) handleShardReadyz(w http.ResponseWriter, r *http.Request) {
	draining := s.draining.Load()
	ready := !draining && s.topology() != nil
	out := map[string]any{
		"draining": draining,
	}
	if s.stby != nil {
		// A standby is not ready to serve until it has bootstrapped and
		// caught up with the primary's shipped head — or been promoted, at
		// which point the ordinary topology rule takes over.
		s.stby.mu.Lock()
		synced, promoted := s.stby.synced, s.stby.promoted
		s.stby.mu.Unlock()
		if !promoted {
			ready = !draining && synced
		}
		out["standby"] = true
		out["synced"] = synced
		out["promoted"] = promoted
	}
	out["ready"] = ready
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	s.writeShardJSON(w, status, out)
}

func (s *ShardServer) handleShardStatsz(w http.ResponseWriter, r *http.Request) {
	st := s.sw.Stats()
	s.writeShardJSON(w, http.StatusOK, map[string]any{
		"shard":                   s.cfg.Name,
		"uptime_seconds":          time.Since(s.started).Seconds(),
		"window_len":              st.Len,
		"points_ingested":         st.Ingested,
		"points_evicted":          st.Evicted,
		"outliers":                st.Outliers,
		"flips_outlier_to_inlier": st.FlipIn,
		"flips_inlier_to_outlier": st.FlipOut,
		"shard_occupancy":         st.Occupancy,
	})
}

// writeBatchError mirrors Server.writeBatchError for wire bodies.
func (s *ShardServer) writeBatchError(w http.ResponseWriter, r *http.Request, err error) {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeErrorBody(w, r, http.StatusRequestEntityTooLarge, "body_too_large",
			fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
		return
	}
	writeErrorBody(w, r, http.StatusBadRequest, "bad_request", err.Error())
}

func (s *ShardServer) writeRaw(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body) //nolint:errcheck
}

func marshalJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic("serve: marshal shard response: " + err.Error())
	}
	return append(b, '\n')
}

// dedupeCache gives mutating shard endpoints exactly-once semantics per
// request ID: the first arrival of an ID runs the handler and records its
// response; concurrent or later arrivals (retries after a lost response)
// wait for and replay the recorded bytes. Entries age out FIFO.
type dedupeCache struct {
	mu        sync.Mutex
	max       int
	order     []string
	entries   map[string]*dedupeEntry
	evictions *obs.Counter
}

type dedupeEntry struct {
	done   chan struct{}
	status int
	resp   []byte
}

func newDedupeCache(max int) *dedupeCache {
	return &dedupeCache{max: max, entries: make(map[string]*dedupeEntry)}
}

// do runs fn exactly once per key, replaying the recorded response for
// duplicates. An empty key disables deduplication. ran reports whether fn
// executed here (false for replays), so callers can record first-run
// responses into a replication log without re-recording replays.
func (c *dedupeCache) do(key string, hits *obs.Counter, fn func() (int, []byte)) (status int, resp []byte, ran bool) {
	if key == "" {
		status, resp = fn()
		return status, resp, true
	}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		<-e.done
		if hits != nil {
			hits.Inc()
		}
		return e.status, e.resp, false
	}
	e := &dedupeEntry{done: make(chan struct{})}
	c.insertLocked(key, e)
	c.mu.Unlock()
	e.status, e.resp = fn()
	close(e.done)
	return e.status, e.resp, true
}

// seed installs a completed entry (replicated from a primary's cache) so a
// caller retrying against a promoted standby replays the primary's recorded
// response. An already-present key is left untouched.
func (c *dedupeCache) seed(key string, status int, resp []byte) {
	if key == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	e := &dedupeEntry{done: make(chan struct{}), status: status, resp: resp}
	close(e.done)
	c.insertLocked(key, e)
}

// insertLocked adds an entry and ages out FIFO overflow; callers hold mu.
func (c *dedupeCache) insertLocked(key string, e *dedupeEntry) {
	c.entries[key] = e
	c.order = append(c.order, key)
	for len(c.order) > c.max {
		old := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, old)
		if c.evictions != nil {
			c.evictions.Inc()
		}
	}
}

func (c *dedupeCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
