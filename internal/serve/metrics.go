package serve

import (
	"time"

	"dod/internal/obs"
)

// serverMetrics holds the serving layer's instruments, all registered in
// the server's obs.Registry — the same registry the sliding window and the
// incremental index instrument themselves into, so /metrics exposes the
// whole stack in one scrape.
type serverMetrics struct {
	ingestReqs  *obs.Counter
	scoreReqs   *obs.Counter
	healthReqs  *obs.Counter
	statszReqs  *obs.Counter
	metricsReqs *obs.Counter

	ingestLines *obs.Counter
	scoreLines  *obs.Counter
	lineErrors  *obs.Counter

	readyReqs *obs.Counter

	shedIngest *obs.Counter // ingest requests rejected 429 by admission control
	shedScore  *obs.Counter

	remoteOK       *obs.Counter // remote-scorer lines answered remotely
	remoteErr      *obs.Counter // remote-scorer failures (feed the breaker)
	remoteFallback *obs.Counter // lines served by the local window instead

	ingestLatency *obs.Histogram
	scoreLatency  *obs.Histogram

	ingestStage [3]*obs.Histogram // read, process, write
	scoreStage  [3]*obs.Histogram
}

// Stage indices for serverMetrics.ingestStage/scoreStage.
const (
	stageRead = iota
	stageProcess
	stageWrite
)

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	const (
		reqHelp    = "HTTP requests received, by endpoint."
		lineHelp   = "NDJSON point lines processed, by endpoint."
		errHelp    = "NDJSON lines rejected with a per-line error."
		latHelp    = "Per-line window operation latency in seconds."
		stageHelp  = "Per-request batch stage duration in seconds."
		shedHelp   = "Requests rejected 429 by admission control, by endpoint."
		remoteHelp = "Remote-scorer line outcomes (ok, error, local fallback)."
	)
	stages := func(endpoint string) [3]*obs.Histogram {
		var out [3]*obs.Histogram
		for i, stage := range []string{"read", "process", "write"} {
			out[i] = reg.Histogram("dod_serve_batch_stage_seconds", stageHelp, nil,
				obs.L("endpoint", endpoint), obs.L("stage", stage))
		}
		return out
	}
	return &serverMetrics{
		ingestReqs:  reg.Counter("dod_serve_requests_total", reqHelp, obs.L("endpoint", "ingest")),
		scoreReqs:   reg.Counter("dod_serve_requests_total", reqHelp, obs.L("endpoint", "score")),
		healthReqs:  reg.Counter("dod_serve_requests_total", reqHelp, obs.L("endpoint", "healthz")),
		statszReqs:  reg.Counter("dod_serve_requests_total", reqHelp, obs.L("endpoint", "statsz")),
		metricsReqs: reg.Counter("dod_serve_requests_total", reqHelp, obs.L("endpoint", "metrics")),

		ingestLines: reg.Counter("dod_serve_lines_total", lineHelp, obs.L("endpoint", "ingest")),
		scoreLines:  reg.Counter("dod_serve_lines_total", lineHelp, obs.L("endpoint", "score")),
		lineErrors:  reg.Counter("dod_serve_line_errors_total", errHelp),

		readyReqs: reg.Counter("dod_serve_requests_total", reqHelp, obs.L("endpoint", "readyz")),

		shedIngest: reg.Counter("dod_shed_total", shedHelp, obs.L("endpoint", "ingest")),
		shedScore:  reg.Counter("dod_shed_total", shedHelp, obs.L("endpoint", "score")),

		remoteOK:       reg.Counter("dod_serve_remote_total", remoteHelp, obs.L("outcome", "ok")),
		remoteErr:      reg.Counter("dod_serve_remote_total", remoteHelp, obs.L("outcome", "error")),
		remoteFallback: reg.Counter("dod_serve_remote_total", remoteHelp, obs.L("outcome", "fallback")),

		ingestLatency: reg.Histogram("dod_serve_latency_seconds", latHelp, nil, obs.L("op", "ingest")),
		scoreLatency:  reg.Histogram("dod_serve_latency_seconds", latHelp, nil, obs.L("op", "score")),

		ingestStage: stages("ingest"),
		scoreStage:  stages("score"),
	}
}

// LatencySummary is the JSON shape of one latency histogram in /statsz.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  int64   `json:"p50_us"`
	P99Us  int64   `json:"p99_us"`
}

// summarize condenses a latency histogram (seconds) into the /statsz
// microsecond summary.
func summarize(h *obs.Histogram) LatencySummary {
	count := h.Count()
	s := LatencySummary{
		Count: count,
		P50Us: int64(h.Quantile(0.50) * 1e6),
		P99Us: int64(h.Quantile(0.99) * 1e6),
	}
	if count > 0 {
		s.MeanUs = h.Sum() / float64(count) * 1e6
	}
	return s
}

// shedCounter picks the shed counter for an endpoint.
func shedCounter(m *serverMetrics, endpoint string) *obs.Counter {
	if endpoint == "score" {
		return m.shedScore
	}
	return m.shedIngest
}

// observeSince records seconds-elapsed on h using the server's clock.
func (s *Server) observeSince(h *obs.Histogram, start time.Time) {
	d := s.now().Sub(start)
	if d < 0 {
		d = 0
	}
	h.Observe(d.Seconds())
}
