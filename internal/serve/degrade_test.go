// Graceful-degradation tests: admission control (429 shedding), the
// remote-scorer circuit breaker, structured 413s, and /readyz draining.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"dod/internal/geom"
	"dod/internal/retry"
	"dod/internal/stream"
)

func degradeConfig() stream.Config {
	return stream.Config{R: 1.2, K: 3, Dim: 2, Capacity: 1000}
}

type errorBody struct {
	Error   string `json:"error"`
	Message string `json:"message"`
}

func decodeErrorBody(t *testing.T, resp *http.Response) errorBody {
	t.Helper()
	defer resp.Body.Close()
	var eb errorBody
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("error response is not the structured shape: %v", err)
	}
	return eb
}

// TestOverloadSheds429 pins the overload contract: when every admission
// slot is held, a new batch request is rejected immediately with 429 +
// Retry-After and the ErrOverloaded code — a fast explicit shed, never a
// queued request that times out. Releasing one slot restores service.
func TestOverloadSheds429(t *testing.T) {
	s, err := New(Config{Stream: degradeConfig(), Workers: 2, MaxInflight: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy both slots the way concurrent requests would.
	release1, ok1 := s.admit(context.Background())
	release2, ok2 := s.admit(context.Background())
	if !ok1 || !ok2 {
		t.Fatal("could not claim the admission slots")
	}
	defer release2()

	for _, ep := range []string{"/v1/ingest", "/v1/score"} {
		start := time.Now()
		resp, err := http.Post(ts.URL+ep, "application/x-ndjson",
			bytes.NewBufferString(`{"id":1,"coords":[0,0]}`+"\n"))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("%s under full admission: HTTP %d, want 429", ep, resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra == "" {
			t.Errorf("%s: 429 without Retry-After", ep)
		} else if _, err := strconv.Atoi(ra); err != nil {
			t.Errorf("%s: Retry-After %q not numeric", ep, ra)
		}
		if eb := decodeErrorBody(t, resp); eb.Error != "overloaded" {
			t.Errorf("%s: error code %q, want overloaded", ep, eb.Error)
		}
		if took := time.Since(start); took > 2*time.Second {
			t.Errorf("%s: shed took %v; rejection must be fast, not a timeout", ep, took)
		}
	}

	// Capacity frees up: the very next request is served.
	release1()
	resp, err := http.Post(ts.URL+"/v1/score", "application/x-ndjson",
		bytes.NewBufferString(`{"id":1,"coords":[0,0]}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: HTTP %d, want 200", resp.StatusCode)
	}
}

// TestOverloadConcurrentBlast drives 2x capacity of real concurrent
// requests (the acceptance scenario): every response is either a served 200
// or an explicit 429 — nothing hangs, nothing times out.
func TestOverloadConcurrentBlast(t *testing.T) {
	s, err := New(Config{Stream: degradeConfig(), Workers: 2, MaxInflight: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const requests = 16
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		byStatus   = map[int]int{}
		slowestOne time.Duration
	)
	body := func() *bytes.Buffer {
		var buf bytes.Buffer
		for i := 0; i < 2000; i++ {
			buf.WriteString(`{"id":` + strconv.Itoa(i) + `,"coords":[0.5,0.5]}` + "\n")
		}
		return &buf
	}
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", body())
			if err != nil {
				t.Errorf("blast request failed outright: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			mu.Lock()
			byStatus[resp.StatusCode]++
			if d := time.Since(start); d > slowestOne {
				slowestOne = d
			}
			mu.Unlock()
		}()
	}
	wg.Wait()

	if byStatus[http.StatusOK]+byStatus[http.StatusTooManyRequests] != requests {
		t.Fatalf("unexpected statuses under overload: %v", byStatus)
	}
	if byStatus[http.StatusOK] == 0 {
		t.Error("overload shed everything; admitted requests should still be served")
	}
	t.Logf("blast: %v (slowest %v)", byStatus, slowestOne)
}

// flakyScorer is a RemoteScorer whose behavior the test scripts: it fails
// while broken is true and otherwise returns a sentinel score no local
// window would produce.
type flakyScorer struct {
	mu     sync.Mutex
	broken bool
	calls  int
}

func (f *flakyScorer) ScorePoint(ctx context.Context, pt geom.Point) (stream.Score, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.broken {
		return stream.Score{}, errors.New("rpc: worker lost")
	}
	return stream.Score{ID: pt.ID, Neighbors: 99, Outlier: false}, nil
}

func (f *flakyScorer) set(broken bool) { f.mu.Lock(); f.broken = broken; f.mu.Unlock() }

// TestBreakerFallsBackToLocal scripts a cluster outage: the remote scorer
// answers, then fails repeatedly (tripping the breaker), and /v1/score must
// keep answering from the local window the whole time — degraded results,
// never an error response.
func TestBreakerFallsBackToLocal(t *testing.T) {
	remote := &flakyScorer{}
	s, err := New(Config{
		Stream:  degradeConfig(),
		Workers: 2,
		Remote:  remote,
		Breaker: retry.BreakerConfig{Threshold: 3, Cooldown: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// An empty local window scores every point as a 0-neighbor outlier, so
	// remote (99 neighbors) and local verdicts are unmistakable.
	score := func() scoreLine {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/score", "application/x-ndjson",
			bytes.NewBufferString(`{"id":7,"coords":[0,0]}`+"\n"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("/v1/score: HTTP %d", resp.StatusCode)
		}
		var line scoreLine
		if err := json.NewDecoder(resp.Body).Decode(&line); err != nil {
			t.Fatal(err)
		}
		if line.Error != "" {
			t.Fatalf("score line carries error %q; degradation must not surface errors", line.Error)
		}
		return line
	}

	if got := score(); got.Neighbors != 99 {
		t.Fatalf("healthy remote not preferred: %+v", got)
	}

	remote.set(true)
	for i := 0; i < 3; i++ { // each one fails remotely, answers locally
		if got := score(); got.Neighbors != 0 || !got.Outlier {
			t.Fatalf("fallback verdict %+v, want local 0-neighbor outlier", got)
		}
	}
	if st := s.breaker.State(); st != retry.BreakerOpen {
		t.Fatalf("breaker state %v after %d consecutive failures, want open", st, 3)
	}

	// Breaker open: remote is not even attempted, local keeps serving.
	before := func() int { remote.mu.Lock(); defer remote.mu.Unlock(); return remote.calls }()
	if got := score(); got.Neighbors != 0 || !got.Outlier {
		t.Fatalf("open-breaker verdict %+v, want local", got)
	}
	if after := func() int { remote.mu.Lock(); defer remote.mu.Unlock(); return remote.calls }(); after != before {
		t.Errorf("open breaker still called the remote scorer (%d -> %d)", before, after)
	}
}

// TestOversizeBodyStructured413 sends a body past MaxBodyBytes and requires
// the structured 413 shape rather than a connection reset or a 500.
func TestOversizeBodyStructured413(t *testing.T) {
	s, err := New(Config{Stream: degradeConfig(), Workers: 2, MaxBodyBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var buf bytes.Buffer
	for i := 0; i < 64; i++ {
		buf.WriteString(`{"id":1,"coords":[0.123456789,0.987654321]}` + "\n")
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize body: HTTP %d, want 413", resp.StatusCode)
	}
	if eb := decodeErrorBody(t, resp); eb.Error != "body_too_large" {
		t.Errorf("413 error code %q, want body_too_large", eb.Error)
	}
}

// TestReadyzDrain pins the /healthz-vs-/readyz split: draining flips
// readiness to 503 (so balancers stop routing) while liveness and the data
// endpoints keep working until shutdown completes.
func TestReadyzDrain(t *testing.T) {
	s, err := New(Config{Stream: degradeConfig(), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	if status, _ := get("/readyz"); status != http.StatusOK {
		t.Fatalf("fresh server /readyz: HTTP %d", status)
	}

	s.SetDraining(true)
	status, body := get("/readyz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz: HTTP %d, want 503", status)
	}
	var rb struct {
		Ready    bool `json:"ready"`
		Draining bool `json:"draining"`
	}
	if err := json.Unmarshal(body, &rb); err != nil {
		t.Fatalf("draining /readyz body %q: %v", body, err)
	}
	if rb.Ready || !rb.Draining {
		t.Errorf("draining /readyz body = %+v", rb)
	}
	if status, _ := get("/healthz"); status != http.StatusOK {
		t.Errorf("draining must not fail liveness: /healthz HTTP %d", status)
	}
	resp, err := http.Post(ts.URL+"/v1/score", "application/x-ndjson",
		bytes.NewBufferString(`{"id":1,"coords":[0,0]}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("in-flight traffic during drain: HTTP %d, want 200", resp.StatusCode)
	}

	s.SetDraining(false)
	if status, _ := get("/readyz"); status != http.StatusOK {
		t.Errorf("undrained /readyz: HTTP %d, want 200", status)
	}
}
