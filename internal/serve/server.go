// Package serve exposes the sliding-window outlier detector
// (internal/stream) as a concurrent HTTP service speaking NDJSON.
//
// Endpoints:
//
//	POST /v1/ingest — one point per line; each is admitted to the window
//	                  and answered, in order, with its verdict line.
//	POST /v1/score  — one point per line; each is scored against the
//	                  current window without being ingested.
//	GET  /healthz   — liveness plus window size.
//	GET  /statsz    — counters: points ingested/evicted, queries, errors,
//	                  per-shard occupancy, p50/p99 latency histograms.
//	GET  /metrics   — the same numbers (and the window's and index's own
//	                  instruments) in Prometheus text exposition format.
//
// With Config.EnablePprof, the net/http/pprof profiling handlers are
// mounted under /debug/pprof/.
//
// A point line is {"id": 7, "coords": [1.5, 2.0]}. Responses are NDJSON in
// request order; a malformed or rejected line yields an {"id", "error"}
// line and processing continues, so one bad point cannot poison a batch.
//
// Request bodies are processed through a fixed worker pool: scoring fans
// each batch out across workers (reads scale with the index's lock
// striping), while ingest batches run as one serialized job each (window
// mutation is ordered by sequence number anyway). The pool bounds total
// CPU concurrency no matter how many requests are in flight.
package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dod/internal/errs"
	"dod/internal/geom"
	"dod/internal/httpapi"
	"dod/internal/obs"
	"dod/internal/retry"
	"dod/internal/router"
	"dod/internal/stream"
)

// DefaultMaxBatch bounds the number of NDJSON lines per request.
const DefaultMaxBatch = 100_000

// DefaultMaxBodyBytes bounds one request body (64 MiB); larger uploads are
// rejected with a structured 413 instead of being buffered.
const DefaultMaxBodyBytes = 64 << 20

// RemoteScorer scores points against a remote engine (e.g. a cluster run
// behind a coordinator). The server prefers it for /v1/score when set,
// guarded by a circuit breaker: repeated failures (lost workers, a downed
// coordinator) trip the breaker and the server falls back to its
// in-process window, so /v1/score keeps answering through a cluster
// outage — degraded freshness, not downtime.
type RemoteScorer interface {
	ScorePoint(ctx context.Context, pt geom.Point) (stream.Score, error)
}

// Config parameterizes a Server.
type Config struct {
	// Stream configures the sliding window (R, K, Dim, Capacity, TTL,
	// Shards).
	Stream stream.Config
	// Workers sizes the request worker pool; default GOMAXPROCS.
	Workers int
	// MaxBatch caps NDJSON lines per request; default DefaultMaxBatch.
	MaxBatch int
	// MaxInflight bounds concurrently admitted batch requests (ingest +
	// score). Requests beyond the bound wait up to QueueWait for a slot,
	// then are shed with 429 + Retry-After — a fast, explicit rejection
	// instead of an unbounded queue that turns overload into timeouts.
	// Default 2x Workers.
	MaxInflight int
	// QueueWait is how long an over-limit request may wait for admission
	// before being shed. Default 0: shed immediately, keeping rejection
	// latency near zero under overload.
	QueueWait time.Duration
	// MaxBodyBytes caps one request body; default DefaultMaxBodyBytes.
	// Oversize uploads get a structured 413.
	MaxBodyBytes int64
	// LegacyWire routes NDJSON parsing and response encoding through
	// reflection-based encoding/json instead of the pooled wirejson fast
	// path. The two paths are byte-identical on the wire; this knob exists
	// so dodbench can measure the fast path against the pre-optimization
	// codec on the same build.
	LegacyWire bool
	// Remote, when set, is preferred for /v1/score, behind a circuit
	// breaker that falls back to the in-process window on repeated
	// failures. See RemoteScorer.
	Remote RemoteScorer
	// Breaker tunes the remote scorer's circuit breaker (zero value:
	// trip after 3 consecutive failures, probe again after 5s).
	Breaker retry.BreakerConfig
	// Obs is the metrics registry backing /metrics and /statsz; default a
	// fresh registry. Pass one to aggregate several servers, or to scrape
	// the server's instruments without HTTP.
	Obs *obs.Registry
	// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/.
	// Off by default: the profiling endpoints reveal internals and cost
	// CPU, so they are opt-in.
	EnablePprof bool
	// now overrides the clock in tests.
	now func() time.Time
}

// Server is the HTTP serving layer. Create with New, mount via Handler,
// and Close when done.
type Server struct {
	cfg      Config
	win      *stream.Window
	mux      *http.ServeMux
	pool     *workerPool
	reg      *obs.Registry
	met      *serverMetrics
	started  time.Time
	now      func() time.Time
	stopEvic chan struct{}
	evicWG   sync.WaitGroup

	admitSem chan struct{}  // admission slots: buffered to MaxInflight
	breaker  *retry.Breaker // guards the remote scorer
	draining atomic.Bool    // /readyz answers 503 while set
}

// New builds a Server with an empty window. If the window has a TTL, a
// background evictor drains expired points even when ingest is idle.
func New(cfg Config) (*Server, error) {
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	// The window and its index register their own instruments in the same
	// registry, so one /metrics scrape covers the whole stack.
	cfg.Stream.Obs = cfg.Obs
	win, err := stream.NewWindow(cfg.Stream)
	if err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 2 * cfg.Workers
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	s := &Server{
		cfg:      cfg,
		win:      win,
		mux:      http.NewServeMux(),
		pool:     newWorkerPool(cfg.Workers),
		reg:      cfg.Obs,
		met:      newServerMetrics(cfg.Obs),
		now:      cfg.now,
		started:  cfg.now(),
		stopEvic: make(chan struct{}),
		admitSem: make(chan struct{}, cfg.MaxInflight),
		breaker:  retry.NewBreaker(cfg.Breaker),
	}
	s.reg.GaugeFunc("dod_serve_uptime_seconds", "Seconds since the server started.", func() float64 {
		return s.now().Sub(s.started).Seconds()
	})
	s.reg.GaugeFunc("dod_shed_inflight", "Batch requests currently admitted.", func() float64 {
		return float64(len(s.admitSem))
	})
	s.reg.GaugeFunc("dod_serve_breaker_open", "1 while the remote-scorer circuit breaker is open.", func() float64 {
		if s.cfg.Remote != nil && s.breaker.State() == retry.BreakerOpen {
			return 1
		}
		return 0
	})
	retry.Instrument(s.reg)
	s.mux.HandleFunc("/v1/ingest", s.handleIngest)
	s.mux.HandleFunc("/v1/score", s.handleScore)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/statsz", s.handleStatsz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	if ttl := cfg.Stream.TTL; ttl > 0 {
		interval := ttl / 4
		if interval < 100*time.Millisecond {
			interval = 100 * time.Millisecond
		}
		s.evicWG.Add(1)
		go s.evictLoop(interval)
	}
	return s, nil
}

// Window exposes the underlying sliding window (tests and embedders).
func (s *Server) Window() *stream.Window { return s.win }

// Registry exposes the metrics registry backing /metrics and /statsz.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the HTTP handler serving all endpoints. Every response
// echoes the caller's X-Dod-Request-Id header (the router propagates its
// correlation IDs this way; direct callers may send their own).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		router.EchoRequestID(w, r)
		s.mux.ServeHTTP(w, r)
	})
}

// Close stops the worker pool and the background evictor. In-flight
// requests should be drained first (http.Server.Shutdown does this).
func (s *Server) Close() {
	close(s.stopEvic)
	s.evicWG.Wait()
	s.pool.close()
}

// SetDraining flips readiness: while draining, GET /readyz answers 503 so
// load balancers route new traffic elsewhere, while in-flight requests
// keep completing. Call before http.Server.Shutdown for a graceful drain.
func (s *Server) SetDraining(draining bool) { s.draining.Store(draining) }

// admit claims an admission slot, waiting up to QueueWait. It returns a
// release func and whether the request was admitted; a false return means
// the caller must shed the request.
func (s *Server) admit(ctx context.Context) (func(), bool) {
	select {
	case s.admitSem <- struct{}{}:
		return func() { <-s.admitSem }, true
	default:
	}
	if s.cfg.QueueWait <= 0 {
		return nil, false
	}
	t := time.NewTimer(s.cfg.QueueWait)
	defer t.Stop()
	select {
	case s.admitSem <- struct{}{}:
		return func() { <-s.admitSem }, true
	case <-t.C:
		return nil, false
	case <-ctx.Done():
		return nil, false
	}
}

// shed rejects an over-capacity request: 429, a Retry-After hint, and a
// structured body carrying the ErrOverloaded identity.
func (s *Server) shed(w http.ResponseWriter, r *http.Request, endpoint string) {
	shedCounter(s.met, endpoint).Inc()
	w.Header().Set("Retry-After", "1")
	writeErrorBody(w, r, http.StatusTooManyRequests, "overloaded", errs.ErrOverloaded.Error())
}

// writeBatchError classifies a readBatch failure through the shared
// classifier (internal/httpapi): 413 "body_too_large" for an oversize body,
// 400 "batch_too_large" past the line cap, 408 when the client's send
// stalled out the request, 400 otherwise — identical across tiers.
func (s *Server) writeBatchError(w http.ResponseWriter, r *http.Request, err error) {
	httpapi.WriteBatchError(w, r, err)
}

// writeErrorBody emits the serving layer's machine-readable error shape,
// carrying the request's correlation ID when the caller sent one.
func writeErrorBody(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	httpapi.WriteError(w, r, status, code, msg)
}

// scorePoint scores one point, preferring the remote scorer while its
// breaker allows; any remote failure or an open breaker serves the local
// window instead, so scoring degrades rather than erroring.
func (s *Server) scorePoint(ctx context.Context, pt geom.Point) (stream.Score, error) {
	if s.cfg.Remote != nil {
		if s.breaker.Allow() {
			sc, err := s.cfg.Remote.ScorePoint(ctx, pt)
			if err == nil {
				s.breaker.Success()
				s.met.remoteOK.Inc()
				return sc, nil
			}
			s.breaker.Failure()
			s.met.remoteErr.Inc()
		}
		s.met.remoteFallback.Inc()
	}
	return s.win.ScorePoint(pt)
}

func (s *Server) evictLoop(interval time.Duration) {
	defer s.evicWG.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stopEvic:
			return
		case <-t.C:
			s.win.EvictExpired(s.now())
		}
	}
}

// verdictLine answers one ingest line; the shape lives in httpapi because
// the sharded tier must emit it byte-identically.
type verdictLine = httpapi.VerdictLine

// scoreLine answers one score line.
type scoreLine = httpapi.ScoreLine

// readBatch parses up to MaxBatch NDJSON point lines from the request via
// the shared parser — the pooled wirejson fast path by default, the
// encoding/json legacy path under Config.LegacyWire. A parse failure on
// line i is returned as a per-line error at index i, keeping request-level
// failures for oversize input.
func (s *Server) readBatch(r *http.Request) (*httpapi.Batch, error) {
	if s.cfg.LegacyWire {
		items, err := httpapi.ReadBatch(r, s.cfg.MaxBatch)
		if err != nil {
			return nil, err
		}
		return &httpapi.Batch{Items: items}, nil
	}
	return httpapi.ReadBatchPooled(r, s.cfg.MaxBatch)
}

// wireScratch stages the parseable lines of one batch (points plus their
// request-line indices) so the hot loop reuses the slices across requests.
type wireScratch struct {
	pts    []geom.Point
	lineOf []int
}

var wireScratchPool = sync.Pool{New: func() any { return &wireScratch{} }}

func getWireScratch() *wireScratch {
	scr := wireScratchPool.Get().(*wireScratch)
	scr.pts = scr.pts[:0]
	scr.lineOf = scr.lineOf[:0]
	return scr
}

func (scr *wireScratch) put() {
	clear(scr.pts) // points alias pooled batch arenas; drop the references
	wireScratchPool.Put(scr)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.met.ingestReqs.Inc()
	release, ok := s.admit(r.Context())
	if !ok {
		s.shed(w, r, "ingest")
		return
	}
	defer release()
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	readStart := s.now()
	batch, err := s.readBatch(r)
	s.observeSince(s.met.ingestStage[stageRead], readStart)
	if err != nil {
		s.writeBatchError(w, r, err)
		return
	}
	defer batch.Release()
	items := batch.Items
	out := httpapi.GetVerdicts(len(items))
	defer httpapi.PutVerdicts(out)
	procStart := s.now()
	// One pool job per batch: ingest is serialized by the window lock and
	// must preserve line order for sequence numbers, so there is nothing
	// to fan out — the pool's job is bounding concurrent batches. The
	// parseable lines go through ProcessBatch as one unit: one lock
	// acquisition and one arrival timestamp for the whole batch, with
	// per-line error slots mapped back to their request line.
	s.pool.do(func() {
		scr := getWireScratch()
		defer scr.put()
		for i, it := range items {
			if it.Err != nil {
				out[i] = verdictLine{ID: it.Pt.ID, Error: it.Err.Error()}
				s.met.lineErrors.Inc()
				continue
			}
			scr.pts = append(scr.pts, it.Pt)
			scr.lineOf = append(scr.lineOf, i)
		}
		batchStart := s.now()
		verdicts, procErrs := s.win.ProcessBatch(scr.pts, batchStart)
		// Per-line latency is amortized over the batch: one observation per
		// ingested line, each the batch's mean, so counts still tally lines.
		perLine := 0.0
		if n := len(scr.pts); n > 0 {
			if d := s.now().Sub(batchStart); d > 0 {
				perLine = d.Seconds() / float64(n)
			}
		}
		for j, i := range scr.lineOf {
			s.met.ingestLatency.Observe(perLine)
			s.met.ingestLines.Inc()
			if procErrs[j] != nil {
				out[i] = verdictLine{ID: scr.pts[j].ID, Error: procErrs[j].Error()}
				s.met.lineErrors.Inc()
				continue
			}
			v := verdicts[j]
			out[i] = verdictLine{ID: v.ID, Seq: v.Seq, Neighbors: v.Neighbors, Outlier: v.Outlier, Evicted: v.Evicted}
		}
	})
	s.observeSince(s.met.ingestStage[stageProcess], procStart)
	writeStart := s.now()
	if s.cfg.LegacyWire {
		writeNDJSON(w, len(out), func(enc *json.Encoder, i int) error { return enc.Encode(out[i]) })
	} else {
		httpapi.WriteVerdicts(w, out)
	}
	s.observeSince(s.met.ingestStage[stageWrite], writeStart)
}

func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	s.met.scoreReqs.Inc()
	release, ok := s.admit(r.Context())
	if !ok {
		s.shed(w, r, "score")
		return
	}
	defer release()
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	readStart := s.now()
	batch, err := s.readBatch(r)
	s.observeSince(s.met.scoreStage[stageRead], readStart)
	if err != nil {
		s.writeBatchError(w, r, err)
		return
	}
	defer batch.Release()
	items := batch.Items
	out := httpapi.GetScores(len(items))
	defer httpapi.PutScores(out)
	procStart := s.now()
	// Scoring is read-only and lock-striped, so fan the batch out across
	// the pool in contiguous chunks; results land at their line index.
	// Purely local chunks score through the window's batch API, which reuses
	// one query scratch per chunk; a configured remote scorer keeps the
	// per-point path for its per-line breaker/fallback decisions.
	const chunk = 64
	var wg sync.WaitGroup
	for lo := 0; lo < len(items); lo += chunk {
		hi := lo + chunk
		if hi > len(items) {
			hi = len(items)
		}
		wg.Add(1)
		s.pool.submit(func() {
			defer wg.Done()
			if s.cfg.Remote == nil {
				s.scoreChunkLocal(items, out, lo, hi)
				return
			}
			for i := lo; i < hi; i++ {
				it := items[i]
				if it.Err != nil {
					out[i] = scoreLine{ID: it.Pt.ID, Error: it.Err.Error()}
					s.met.lineErrors.Inc()
					continue
				}
				start := s.now()
				sc, err := s.scorePoint(r.Context(), it.Pt)
				s.observeSince(s.met.scoreLatency, start)
				s.met.scoreLines.Inc()
				if err != nil {
					out[i] = scoreLine{ID: it.Pt.ID, Error: err.Error()}
					s.met.lineErrors.Inc()
					continue
				}
				out[i] = scoreLine{ID: sc.ID, Neighbors: sc.Neighbors, Outlier: sc.Outlier}
			}
		})
	}
	wg.Wait()
	s.observeSince(s.met.scoreStage[stageProcess], procStart)
	writeStart := s.now()
	if s.cfg.LegacyWire {
		writeNDJSON(w, len(out), func(enc *json.Encoder, i int) error { return enc.Encode(out[i]) })
	} else {
		httpapi.WriteScores(w, out)
	}
	s.observeSince(s.met.scoreStage[stageWrite], writeStart)
}

// scoreChunkLocal scores one contiguous chunk against the local window via
// ScoreBatch — a single scratch reused across the chunk — and maps per-slot
// results back to their line indices with the same metrics accounting as the
// per-point path (one latency observation per scored line, amortized).
func (s *Server) scoreChunkLocal(items []httpapi.BatchItem, out []scoreLine, lo, hi int) {
	scr := getWireScratch()
	defer scr.put()
	for i := lo; i < hi; i++ {
		if items[i].Err != nil {
			out[i] = scoreLine{ID: items[i].Pt.ID, Error: items[i].Err.Error()}
			s.met.lineErrors.Inc()
			continue
		}
		scr.pts = append(scr.pts, items[i].Pt)
		scr.lineOf = append(scr.lineOf, i)
	}
	start := s.now()
	scores, scoreErrs := s.win.ScoreBatch(scr.pts, 1)
	perLine := 0.0
	if n := len(scr.pts); n > 0 {
		if d := s.now().Sub(start); d > 0 {
			perLine = d.Seconds() / float64(n)
		}
	}
	for j, i := range scr.lineOf {
		s.met.scoreLatency.Observe(perLine)
		s.met.scoreLines.Inc()
		if scoreErrs[j] != nil {
			out[i] = scoreLine{ID: scr.pts[j].ID, Error: scoreErrs[j].Error()}
			s.met.lineErrors.Inc()
			continue
		}
		sc := scores[j]
		out[i] = scoreLine{ID: sc.ID, Neighbors: sc.Neighbors, Outlier: sc.Outlier}
	}
}

// writeNDJSON streams n lines through one buffered encoder.
func writeNDJSON(w http.ResponseWriter, n int, line func(enc *json.Encoder, i int) error) {
	httpapi.WriteNDJSON(w, n, line)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.met.healthReqs.Inc()
	st := s.win.Stats()
	writeJSON(w, map[string]any{
		"status":         "ok",
		"uptime_seconds": s.now().Sub(s.started).Seconds(),
		"window":         st.Len,
	})
}

// handleReadyz is readiness, distinct from /healthz liveness: the process
// may be alive (healthz 200) yet not ready — draining before shutdown.
// Load balancers should route on /readyz and page on /healthz.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.met.readyReqs.Inc()
	draining := s.draining.Load()
	w.Header().Set("Content-Type", "application/json")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(map[string]any{ //nolint:errcheck
		"ready":    !draining,
		"draining": draining,
		"inflight": len(s.admitSem),
	})
}

// StatsResponse is the /statsz JSON shape.
type StatsResponse struct {
	UptimeSeconds  float64        `json:"uptime_seconds"`
	IngestRequests int64          `json:"ingest_requests"`
	ScoreRequests  int64          `json:"score_requests"`
	PointsIngested uint64         `json:"points_ingested"`
	PointsEvicted  uint64         `json:"points_evicted"`
	Queries        int64          `json:"queries"`
	LineErrors     int64          `json:"line_errors"`
	WindowLen      int            `json:"window_len"`
	WindowSeq      uint64         `json:"window_seq"`
	Outliers       int            `json:"outliers"`
	FlipIn         uint64         `json:"flips_outlier_to_inlier"`
	FlipOut        uint64         `json:"flips_inlier_to_outlier"`
	ShardOccupancy []int          `json:"shard_occupancy"`
	IngestLatency  LatencySummary `json:"ingest_latency"`
	ScoreLatency   LatencySummary `json:"score_latency"`
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	s.met.statszReqs.Inc()
	st := s.win.Stats()
	writeJSON(w, StatsResponse{
		UptimeSeconds:  s.now().Sub(s.started).Seconds(),
		IngestRequests: s.met.ingestReqs.Value(),
		ScoreRequests:  s.met.scoreReqs.Value(),
		PointsIngested: st.Ingested,
		PointsEvicted:  st.Evicted,
		Queries:        s.met.scoreLines.Value(),
		LineErrors:     s.met.lineErrors.Value(),
		WindowLen:      st.Len,
		WindowSeq:      st.Seq,
		Outliers:       st.Outliers,
		FlipIn:         st.FlipIn,
		FlipOut:        st.FlipOut,
		ShardOccupancy: st.Occupancy,
		IngestLatency:  summarize(s.met.ingestLatency),
		ScoreLatency:   summarize(s.met.scoreLatency),
	})
}

// handleMetrics renders the registry in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.met.metricsReqs.Inc()
	w.Header().Set("Content-Type", obs.TextContentType)
	s.reg.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// workerPool is a fixed set of goroutines draining a job queue. It bounds
// the service's compute concurrency: HTTP handler goroutines enqueue work
// and wait, so a flood of requests queues instead of spawning unbounded
// parallel scans.
type workerPool struct {
	jobs chan func()
	wg   sync.WaitGroup
}

func newWorkerPool(n int) *workerPool {
	p := &workerPool{jobs: make(chan func())}
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.wg.Done()
			for job := range p.jobs {
				job()
			}
		}()
	}
	return p
}

// submit enqueues fn and returns immediately; fn runs on some worker.
func (p *workerPool) submit(fn func()) { p.jobs <- fn }

// do enqueues fn and blocks until it has run.
func (p *workerPool) do(fn func()) {
	done := make(chan struct{})
	p.jobs <- func() {
		defer close(done)
		fn()
	}
	<-done
}

// close drains the pool; submit/do must not be called afterwards.
func (p *workerPool) close() {
	close(p.jobs)
	p.wg.Wait()
}
