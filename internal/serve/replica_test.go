// Warm-standby replication tests at the serving layer: a real primary and
// standby ShardServer pair over HTTP, exercising op shipping, digest
// anti-entropy, snapshot bootstrap, readiness gating, promotion and the
// replicated idempotency cache — the pieces the router's failover
// transaction composes.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dod/internal/geom"
	"dod/internal/replica"
	"dod/internal/router"
)

const (
	pairR   = 1.2
	pairK   = 3
	pairDim = 2
)

// replicaPair is a primary shard replicating to a warm standby, both behind
// real listeners. The standby sits behind a swappable handler so tests can
// model a standby process restart (the bootstrap-from-snapshot path) without
// changing the URL the primary ships to.
type replicaPair struct {
	t        *testing.T
	primary  *ShardServer
	standby  *ShardServer
	primSrv  *httptest.Server
	stbySrv  *httptest.Server
	stbySwap *atomic.Value // holds http.Handler
	seq      uint64
}

func newStandby(t *testing.T) *ShardServer {
	t.Helper()
	sb, err := NewShard(ShardServerConfig{Name: "s0", R: pairR, K: pairK, Dim: pairDim, Standby: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sb.Close)
	return sb
}

func newReplicaPair(t *testing.T) *replicaPair {
	t.Helper()
	p := &replicaPair{t: t, stbySwap: &atomic.Value{}}
	p.standby = newStandby(t)
	p.stbySwap.Store(p.standby.Handler())
	p.stbySrv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		p.stbySwap.Load().(http.Handler).ServeHTTP(w, r)
	}))
	t.Cleanup(p.stbySrv.Close)

	primary, err := NewShard(ShardServerConfig{
		Name: "s0", R: pairR, K: pairK, Dim: pairDim,
		Replica:         p.stbySrv.URL,
		ReplicaInterval: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(primary.Close)
	p.primary = primary
	p.primSrv = httptest.NewServer(primary.Handler())
	t.Cleanup(p.primSrv.Close)

	p.pushTopology(p.primSrv.URL, 1, p.primSrv.URL)
	return p
}

// pushTopology POSTs a single-shard ownership view to a server.
func (p *replicaPair) pushTopology(target string, epoch int64, shardURL string) {
	p.t.Helper()
	topo := router.Topology{
		Epoch: epoch, Dim: pairDim, R: pairR, K: pairK, Block: 2,
		Shards: []router.ShardInfo{{Name: "s0", URL: shardURL}},
	}
	raw, err := json.Marshal(&topo)
	if err != nil {
		p.t.Fatal(err)
	}
	status, body := postBody(p.t, target+router.PathShardTopology, "", raw)
	if status != http.StatusOK {
		p.t.Fatalf("topology push to %s: status %d: %s", target, status, body)
	}
}

// postBody POSTs raw bytes with an optional idempotency key.
func postBody(t *testing.T, url, reqID string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if reqID != "" {
		req.Header.Set(router.HeaderRequestID, reqID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("GET %s: bad JSON %q: %v", url, raw, err)
		}
	}
	return resp.StatusCode
}

// ingest admits one point through the primary's shard wire endpoint.
func (p *replicaPair) ingest(id uint64, x, y float64) []byte {
	p.t.Helper()
	p.seq++
	body := router.EncodeIngest(router.IngestHeader{Seq: p.seq, ArrivedNs: int64(p.seq)},
		geom.Point{ID: id, Coords: []float64{x, y}})
	status, raw := postBody(p.t, p.primSrv.URL+router.PathShardIngest, fmt.Sprintf("ing-%d", id), body)
	if status != http.StatusOK {
		p.t.Fatalf("ingest %d: status %d: %s", id, status, raw)
	}
	return raw
}

func (p *replicaPair) evict(id uint64) {
	p.t.Helper()
	raw, err := json.Marshal(router.EvictRequest{ID: id})
	if err != nil {
		p.t.Fatal(err)
	}
	status, resp := postBody(p.t, p.primSrv.URL+router.PathShardEvict, fmt.Sprintf("evc-%d", id), raw)
	if status != http.StatusOK || !bytes.Contains(resp, []byte(`"evicted":true`)) {
		p.t.Fatalf("evict %d: status %d: %s", id, status, resp)
	}
}

// waitSynced polls the primary's replication status until the standby has
// acked its whole log.
func (p *replicaPair) waitSynced() replica.StatusResponse {
	p.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var st replica.StatusResponse
	for time.Now().Before(deadline) {
		getJSON(p.t, p.primSrv.URL+replica.PathStatus, &st)
		if st.Role == "primary" && st.Synced {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	p.t.Fatalf("standby never caught up: last primary status %+v", st)
	return st
}

func digestOf(t *testing.T, base string) replica.DigestResponse {
	t.Helper()
	var d replica.DigestResponse
	if status := getJSON(t, base+replica.PathDigest, &d); status != http.StatusOK {
		t.Fatalf("digest from %s: status %d", base, status)
	}
	return d
}

// TestReplicaMirrorsPrimary streams admissions and evictions through a
// primary and asserts the standby converges to a bit-identical window: same
// digest, same point count, digest anchored at the same log position.
func TestReplicaMirrorsPrimary(t *testing.T) {
	p := newReplicaPair(t)
	for i := uint64(1); i <= 30; i++ {
		p.ingest(i, float64(i%5), float64(i%4))
	}
	p.evict(3)
	p.evict(17)

	st := p.waitSynced()
	if st.Head == 0 || st.Acked != st.Head {
		t.Fatalf("primary status after sync: %+v", st)
	}
	dp := digestOf(t, p.primSrv.URL)
	ds := digestOf(t, p.stbySrv.URL)
	if dp.Digest != ds.Digest || dp.Points != ds.Points {
		t.Fatalf("digest diverged: primary %+v standby %+v", dp, ds)
	}
	if dp.Seq != st.Head || ds.Seq != st.Head {
		t.Fatalf("digest seq anchors: primary %d standby %d, want %d", dp.Seq, ds.Seq, st.Head)
	}
	if dp.Points != 28 {
		t.Fatalf("points = %d, want 28 (30 admitted - 2 evicted)", dp.Points)
	}

	// The standby's window state is the primary's, entry for entry.
	if got, want := p.standby.Window().Stats(), p.primary.Window().Stats(); got.Len != want.Len ||
		got.Outliers != want.Outliers || got.FlipIn != want.FlipIn || got.FlipOut != want.FlipOut {
		t.Fatalf("standby stats %+v != primary stats %+v", got, want)
	}
}

// TestStandbyReadyzGatesOnSync pins the readiness satellite: a standby
// answers 503 until it has bootstrapped and caught up with its primary, then
// 200 — and reports its replication role on /healthz either way.
func TestStandbyReadyzGatesOnSync(t *testing.T) {
	lone := newStandby(t)
	loneSrv := httptest.NewServer(lone.Handler())
	t.Cleanup(loneSrv.Close)

	var rz struct {
		Ready   bool `json:"ready"`
		Standby bool `json:"standby"`
		Synced  bool `json:"synced"`
	}
	if status := getJSON(t, loneSrv.URL+"/readyz", &rz); status != http.StatusServiceUnavailable {
		t.Fatalf("unsynced standby readyz: status %d, want 503", status)
	}
	if !rz.Standby || rz.Synced || rz.Ready {
		t.Fatalf("unsynced standby readyz body: %+v", rz)
	}

	p := newReplicaPair(t)
	p.ingest(1, 1, 1)
	p.waitSynced()
	if status := getJSON(t, p.stbySrv.URL+"/readyz", &rz); status != http.StatusOK || !rz.Ready || !rz.Synced {
		t.Fatalf("synced standby readyz: status %d body %+v, want 200 ready", status, rz)
	}

	var hz struct {
		Replica struct {
			Role string `json:"role"`
		} `json:"replica"`
	}
	getJSON(t, p.stbySrv.URL+"/healthz", &hz)
	if hz.Replica.Role != "standby" {
		t.Fatalf("standby healthz role = %q", hz.Replica.Role)
	}
	getJSON(t, p.primSrv.URL+"/healthz", &hz)
	if hz.Replica.Role != "primary" {
		t.Fatalf("primary healthz role = %q", hz.Replica.Role)
	}
}

// TestSnapshotBootstrap models a standby process restart: a fresh standby
// appears behind the same URL after the primary's log has been trimmed by
// acks, so tailing is impossible — the shipper must fall back to a
// codec-framed snapshot (window + topology), then resume tailing ops.
func TestSnapshotBootstrap(t *testing.T) {
	p := newReplicaPair(t)
	for i := uint64(1); i <= 20; i++ {
		p.ingest(i, float64(i%5), float64(i%4))
	}
	p.waitSynced() // acks advanced: the log below the head is trimmed

	// The standby "process" dies and a fresh one starts at the same URL.
	fresh := newStandby(t)
	p.stbySwap.Store(fresh.Handler())

	// New traffic ships ops past the fresh standby's empty cursor: it must
	// answer NeedSnapshot, bootstrap, then tail to parity.
	for i := uint64(21); i <= 25; i++ {
		p.ingest(i, float64(i%5), float64(i%4))
	}
	p.waitSynced()
	dp, ds := digestOf(t, p.primSrv.URL), digestOf(t, p.stbySrv.URL)
	if dp.Digest != ds.Digest || dp.Seq != ds.Seq || dp.Points != ds.Points {
		t.Fatalf("post-bootstrap digest diverged: primary %+v standby %+v", dp, ds)
	}

	// The snapshot carried the topology: the fresh standby knows the epoch
	// without ever seeing a router push.
	var hz struct {
		Epoch int64 `json:"epoch"`
	}
	getJSON(t, p.stbySrv.URL+"/healthz", &hz)
	if hz.Epoch != 1 {
		t.Fatalf("bootstrapped standby epoch = %d, want 1", hz.Epoch)
	}

	// And the primary counted the bootstrap.
	if n := metricValue(t, p.primSrv.URL, "dod_replica_snapshots_total"); n < 1 {
		t.Fatalf("dod_replica_snapshots_total = %g, want >= 1", n)
	}
}

// TestPromotionFlipsStandby covers the promotion handshake: a topology push
// at a standby flips it to primary — it refuses further replica applies with
// the "promoted" code (which halts the old primary's shipper) — and a
// replayed idempotency key answers the exact bytes the old primary recorded,
// making a router retry across the failover exactly-once.
func TestPromotionFlipsStandby(t *testing.T) {
	p := newReplicaPair(t)
	for i := uint64(1); i <= 10; i++ {
		p.ingest(i, float64(i%3), float64(i%3))
	}

	// A batched admission under one idempotency key, as the router sends.
	items := []router.AdmitItem{
		{Point: geom.Point{ID: 100, Coords: []float64{1, 1}}, Seq: 1000},
		{Point: geom.Point{ID: 101, Coords: []float64{1.1, 1}}, Seq: 1001},
	}
	batch := router.EncodeIngestBatch(router.IngestBatchHeader{ArrivedNs: 5000, Count: len(items)}, items)
	status, primResp := postBody(t, p.primSrv.URL+router.PathShardIngestBatch, "batch-route-1", batch)
	if status != http.StatusOK {
		t.Fatalf("primary batch: status %d: %s", status, primResp)
	}
	p.waitSynced()

	// Promote: the router pushes the successor epoch at the standby.
	p.pushTopology(p.stbySrv.URL, 2, p.stbySrv.URL)

	var rz struct {
		Ready    bool `json:"ready"`
		Promoted bool `json:"promoted"`
	}
	if status := getJSON(t, p.stbySrv.URL+"/readyz", &rz); status != http.StatusOK || !rz.Promoted {
		t.Fatalf("promoted standby readyz: status %d %+v", status, rz)
	}

	// Replica applies are now refused with the shipper's halt code.
	applyBody := replica.EncodeApply(replica.ApplyHeader{From: "s0", Count: 0, Head: 99}, nil)
	status, raw := postBody(t, p.stbySrv.URL+replica.PathApply, "", applyBody)
	if status != http.StatusConflict || !bytes.Contains(raw, []byte("promoted")) {
		t.Fatalf("apply after promotion: status %d: %s", status, raw)
	}

	// A retry of the in-flight batch against the promoted standby replays
	// the primary's recorded bytes — and does not re-apply the admissions.
	before := digestOf(t, p.stbySrv.URL)
	status, stbyResp := postBody(t, p.stbySrv.URL+router.PathShardIngestBatch, "batch-route-1", batch)
	if status != http.StatusOK || !bytes.Equal(stbyResp, primResp) {
		t.Fatalf("replayed batch diverged (status %d)\nstandby: %s\nprimary: %s", status, stbyResp, primResp)
	}
	after := digestOf(t, p.stbySrv.URL)
	if before.Digest != after.Digest || before.Points != after.Points {
		t.Fatalf("idempotency replay mutated the window: %+v -> %+v", before, after)
	}
}

// TestReplicaEndpointGuards pins the wire-level refusals: a primary is not a
// standby, a standby only accepts its own primary's shipments, and corrupt
// bodies are typed 400s.
func TestReplicaEndpointGuards(t *testing.T) {
	p := newReplicaPair(t)

	applyBody := replica.EncodeApply(replica.ApplyHeader{From: "s0", Count: 0, Head: 0}, nil)
	if status, raw := postBody(t, p.primSrv.URL+replica.PathApply, "", applyBody); status != http.StatusConflict ||
		!bytes.Contains(raw, []byte("not_standby")) {
		t.Fatalf("apply at primary: status %d: %s", status, raw)
	}

	wrong := replica.EncodeApply(replica.ApplyHeader{From: "s9", Count: 0, Head: 0}, nil)
	if status, raw := postBody(t, p.stbySrv.URL+replica.PathApply, "", wrong); status != http.StatusConflict ||
		!bytes.Contains(raw, []byte("wrong_primary")) {
		t.Fatalf("apply from wrong primary: status %d: %s", status, raw)
	}

	if status, raw := postBody(t, p.stbySrv.URL+replica.PathApply, "", []byte("garbage")); status != http.StatusBadRequest ||
		!bytes.Contains(raw, []byte("bad_wire")) {
		t.Fatalf("garbage apply: status %d: %s", status, raw)
	}
	if status, raw := postBody(t, p.stbySrv.URL+replica.PathSnapshot, "", []byte("garbage")); status != http.StatusBadRequest ||
		!bytes.Contains(raw, []byte("bad_wire")) {
		t.Fatalf("garbage snapshot: status %d: %s", status, raw)
	}
}

// TestDedupeCapacityAndMetrics covers the configurable-idempotency-cache
// satellite: capacity bounds the cache FIFO, evictions and occupancy are
// exported, and a still-cached key replays without re-running.
func TestDedupeCapacityAndMetrics(t *testing.T) {
	ss, err := NewShard(ShardServerConfig{
		Name: "s0", R: pairR, K: pairK, Dim: pairDim, DedupeCapacity: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ss.Close)
	srv := httptest.NewServer(ss.Handler())
	t.Cleanup(srv.Close)
	topo := router.Topology{
		Epoch: 1, Dim: pairDim, R: pairR, K: pairK, Block: 2,
		Shards: []router.ShardInfo{{Name: "s0", URL: srv.URL}},
	}
	raw, _ := json.Marshal(&topo)
	if status, body := postBody(t, srv.URL+router.PathShardTopology, "", raw); status != http.StatusOK {
		t.Fatalf("topology push: status %d: %s", status, body)
	}

	var last []byte
	for i := uint64(1); i <= 3; i++ {
		body := router.EncodeIngest(router.IngestHeader{Seq: i, ArrivedNs: int64(i)},
			geom.Point{ID: i, Coords: []float64{float64(i), 0}})
		status, resp := postBody(t, srv.URL+router.PathShardIngest, fmt.Sprintf("cap-%d", i), body)
		if status != http.StatusOK {
			t.Fatalf("ingest %d: status %d: %s", i, status, resp)
		}
		last = resp
	}
	if n := metricValue(t, srv.URL, "dod_shard_dedupe_evictions_total"); n != 1 {
		t.Fatalf("dedupe evictions = %g, want 1 (capacity 2, 3 keys)", n)
	}
	if n := metricValue(t, srv.URL, "dod_shard_dedupe_size"); n != 2 {
		t.Fatalf("dedupe size = %g, want 2", n)
	}

	// The newest key is still cached: a retry replays identical bytes and
	// counts a hit, not a re-execution.
	body := router.EncodeIngest(router.IngestHeader{Seq: 3, ArrivedNs: 3},
		geom.Point{ID: 3, Coords: []float64{3, 0}})
	status, resp := postBody(t, srv.URL+router.PathShardIngest, "cap-3", body)
	if status != http.StatusOK || !bytes.Equal(resp, last) {
		t.Fatalf("cached retry diverged (status %d): %s vs %s", status, resp, last)
	}
	if n := metricValue(t, srv.URL, "dod_shard_dedupe_hits_total"); n != 1 {
		t.Fatalf("dedupe hits = %g, want 1", n)
	}
}

// metricValue scrapes one unlabeled series from /metrics.
func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if !strings.HasPrefix(line, name+" ") {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
			t.Fatalf("parsing metric line %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("metric %s not found in exposition", name)
	return 0
}
