package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dod/internal/obs"
	"dod/internal/stream"
)

// newHTTPTestServer mounts an already-built Server on an httptest listener.
func newHTTPTestServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// scrape fetches /metrics and returns the body.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.TextContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.TextContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	s, ts := newTestServer(t, stream.Config{R: 5, K: 3, Dim: 2, Capacity: 1000})
	_ = s

	// Drive some traffic so counters and histograms are non-zero.
	ingest := "{\"id\":1,\"coords\":[0,0]}\n{\"id\":2,\"coords\":[1,1]}\n{\"id\":3,\"coords\":[50,50]}\n"
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", strings.NewReader(ingest))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp, err = http.Post(ts.URL+"/v1/score", "application/x-ndjson", strings.NewReader("{\"id\":9,\"coords\":[0.5,0.5]}\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	body := scrape(t, ts.URL)

	// Exact sample lines for the request and line counters.
	for _, line := range []string{
		`dod_serve_requests_total{endpoint="ingest"} 1`,
		`dod_serve_requests_total{endpoint="score"} 1`,
		`dod_serve_lines_total{endpoint="ingest"} 3`,
		`dod_serve_lines_total{endpoint="score"} 1`,
		`dod_stream_ingested_total 3`,
		`dod_index_inserts_total 3`,
	} {
		if !strings.Contains(body, line+"\n") {
			t.Errorf("missing exposition line %q", line)
		}
	}

	// Exposition-format structure: HELP and TYPE headers, histogram
	// bucket/sum/count triplet with a +Inf bucket, gauges from the window.
	for _, frag := range []string{
		"# HELP dod_serve_requests_total ",
		"# TYPE dod_serve_requests_total counter\n",
		"# TYPE dod_serve_latency_seconds histogram\n",
		`dod_serve_latency_seconds_bucket{op="ingest",le="+Inf"} 3`,
		`dod_serve_latency_seconds_count{op="ingest"} 3`,
		`dod_serve_latency_seconds_sum{op="ingest"} `,
		`dod_serve_batch_stage_seconds_bucket{endpoint="ingest",stage="process",le="+Inf"} 1`,
		"# TYPE dod_stream_window_points gauge\n",
		"dod_stream_window_points 3\n",
		"# TYPE dod_index_ring_depth histogram\n",
		"dod_serve_uptime_seconds ",
	} {
		if !strings.Contains(body, frag) {
			t.Errorf("missing exposition fragment %q", frag)
		}
	}
}

func TestMetricsSharedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := New(Config{Stream: stream.Config{R: 5, K: 3, Dim: 2, Capacity: 10}, Workers: 1, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	if s.Registry() != reg {
		t.Fatal("server did not adopt the provided registry")
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "dod_serve_requests_total") {
		t.Error("provided registry lacks the server's instruments")
	}
}

func TestPprofOptIn(t *testing.T) {
	// Default: pprof is not mounted.
	_, ts := newTestServer(t, stream.Config{R: 5, K: 3, Dim: 2, Capacity: 10})
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("/debug/pprof/ served without EnablePprof")
	}

	s, err := New(Config{Stream: stream.Config{R: 5, K: 3, Dim: 2, Capacity: 10}, Workers: 1, EnablePprof: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	ts2 := newHTTPTestServer(t, s)
	resp, err = http.Get(ts2.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d with EnablePprof", resp.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Error("pprof index does not list profiles")
	}
}
