package serve

import (
	"sync/atomic"
	"time"
)

// histBuckets is the number of log-spaced latency buckets: bucket i counts
// observations in (2^(i-1), 2^i] microseconds, so the range spans 1µs to
// ~2.1s with the last bucket catching everything slower.
const histBuckets = 32

// histogram is a lock-free latency histogram with power-of-two microsecond
// buckets. Record is wait-free; quantiles are read from a racy but
// monotonically-growing snapshot, which is fine for monitoring.
type histogram struct {
	count   atomic.Int64
	sumUs   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	us := d.Microseconds()
	b := 0
	for us > 1 && b < histBuckets-1 {
		us >>= 1
		b++
	}
	return b
}

// Record adds one observation.
func (h *histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumUs.Add(d.Microseconds())
	h.buckets[bucketFor(d)].Add(1)
}

// Quantile estimates the q-quantile (0 < q <= 1) in microseconds as the
// upper bound of the bucket containing it. Zero observations yield 0.
func (h *histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return int64(1) << i // bucket upper bound in µs
		}
	}
	return int64(1) << (histBuckets - 1)
}

// LatencySummary is the JSON shape of one histogram in /statsz.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  int64   `json:"p50_us"`
	P99Us  int64   `json:"p99_us"`
}

// Summary snapshots the histogram for /statsz.
func (h *histogram) Summary() LatencySummary {
	count := h.count.Load()
	s := LatencySummary{
		Count: count,
		P50Us: h.Quantile(0.50),
		P99Us: h.Quantile(0.99),
	}
	if count > 0 {
		s.MeanUs = float64(h.sumUs.Load()) / float64(count)
	}
	return s
}
