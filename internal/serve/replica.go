package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"dod/internal/replica"
	"dod/internal/router"
	"dod/internal/stream"
)

// maxReplicaBodyBytes caps one replication request body. Snapshots carry a
// full window slice, so the cap is wider than the ordinary wire limit.
const maxReplicaBodyBytes = 64 << 20

// handleReplicaApply ingests one op shipment from the primary's shipper.
// Ops apply strictly in sequence under the standby cursor lock: already
// applied sequences are skipped (shipper retries after a lost ack), a gap —
// or a replay failure, which means divergence — asks for a snapshot
// bootstrap instead of guessing.
func (s *ShardServer) handleReplicaApply(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.stby == nil {
		writeErrorBody(w, r, http.StatusConflict, "not_standby",
			fmt.Sprintf("shard %s does not run as a standby", s.cfg.Name))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxReplicaBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		s.writeBatchError(w, r, err)
		return
	}
	hdr, ops, err := replica.DecodeApply(body)
	if err != nil {
		s.met.wireErrors.Inc()
		writeErrorBody(w, r, http.StatusBadRequest, "bad_wire", err.Error())
		return
	}
	if hdr.From != s.cfg.Name {
		writeErrorBody(w, r, http.StatusConflict, "wrong_primary",
			fmt.Sprintf("shipment from %q but this standby replicates %q", hdr.From, s.cfg.Name))
		return
	}
	s.stby.mu.Lock()
	defer s.stby.mu.Unlock()
	if s.stby.promoted {
		writeErrorBody(w, r, http.StatusConflict, "promoted",
			fmt.Sprintf("shard %s has been promoted to primary", s.cfg.Name))
		return
	}
	need := false
	for _, op := range ops {
		if op.Seq <= s.stby.applied {
			continue // duplicate shipment after a lost ack
		}
		if op.Seq != s.stby.applied+1 {
			need = true // gap: shipped past our cursor (log trimmed under us)
			break
		}
		if err := s.applyReplicaOp(op); err != nil {
			need = true // replay failure means divergence; resync from scratch
			break
		}
		s.stby.applied = op.Seq
		s.met.replicaOps.Inc()
	}
	s.stby.synced = !need && s.stby.applied >= hdr.Head
	s.writeShardJSON(w, http.StatusOK, replica.ApplyResponse{
		Applied: s.stby.applied, Synced: s.stby.synced, NeedSnapshot: need,
	})
}

// handleReplicaSnapshot bootstraps this standby from a full window capture:
// drop whatever partial state exists, adopt the snapshot's topology and
// entries, and move the replay cursor to the snapshot's log position.
func (s *ShardServer) handleReplicaSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.stby == nil {
		writeErrorBody(w, r, http.StatusConflict, "not_standby",
			fmt.Sprintf("shard %s does not run as a standby", s.cfg.Name))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxReplicaBodyBytes)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		s.writeBatchError(w, r, err)
		return
	}
	snap, err := replica.DecodeSnapshot(body)
	if err != nil {
		s.met.wireErrors.Inc()
		writeErrorBody(w, r, http.StatusBadRequest, "bad_wire", err.Error())
		return
	}
	if snap.From != s.cfg.Name {
		writeErrorBody(w, r, http.StatusConflict, "wrong_primary",
			fmt.Sprintf("snapshot from %q but this standby replicates %q", snap.From, s.cfg.Name))
		return
	}
	s.stby.mu.Lock()
	defer s.stby.mu.Unlock()
	if s.stby.promoted {
		writeErrorBody(w, r, http.StatusConflict, "promoted",
			fmt.Sprintf("shard %s has been promoted to primary", s.cfg.Name))
		return
	}
	if len(snap.Topology) > 0 {
		if err := s.installReplicatedTopology(snap.Topology); err != nil {
			writeErrorBody(w, r, http.StatusBadRequest, "bad_topology", err.Error())
			return
		}
	}
	s.sw.Reset()
	if err := s.sw.Import(snap.Entries); err != nil {
		writeErrorBody(w, r, http.StatusInternalServerError, "apply_failed", err.Error())
		return
	}
	s.stby.applied = snap.Seq
	s.stby.synced = true
	s.writeShardJSON(w, http.StatusOK, replica.SnapshotResponse{Applied: s.stby.applied})
}

// handleReplicaStatus reports this server's replication position for either
// role — the router's lag probe before promotion reads the standby side.
func (s *ShardServer) handleReplicaStatus(w http.ResponseWriter, r *http.Request) {
	var out replica.StatusResponse
	switch {
	case s.stby != nil:
		s.stby.mu.Lock()
		out = replica.StatusResponse{
			Role: "standby", Applied: s.stby.applied,
			Synced: s.stby.synced, Promoted: s.stby.promoted,
		}
		s.stby.mu.Unlock()
	case s.replog != nil:
		head, acked := s.replog.Head(), s.replog.Acked()
		out = replica.StatusResponse{
			Role: "primary", Head: head, Acked: acked,
			Applied: head, Synced: acked == head,
		}
	default:
		out = replica.StatusResponse{Role: "none"}
	}
	s.writeShardJSON(w, http.StatusOK, out)
}

// handleShardDigest answers the anti-entropy probe: a deterministic hash of
// the window contents anchored to a log position (primary: head; standby:
// applied cursor), so a primary/standby pair can be compared for
// bit-identity at matching positions.
func (s *ShardServer) handleShardDigest(w http.ResponseWriter, r *http.Request) {
	var digest uint64
	var points int
	var seq uint64
	switch {
	case s.stby != nil:
		// Hold the cursor lock across the hash so the digest and the applied
		// position describe the same instant (applies take the same lock).
		s.stby.mu.Lock()
		digest, points = s.sw.Digest()
		seq = s.stby.applied
		s.stby.mu.Unlock()
	case s.replog != nil:
		// Retry until no op lands between the head read and the hash.
		for i := 0; i < 64; i++ {
			seq = s.replog.Head()
			digest, points = s.sw.Digest()
			if s.replog.Head() == seq {
				break
			}
		}
	default:
		digest, points = s.sw.Digest()
	}
	s.writeShardJSON(w, http.StatusOK, replica.DigestResponse{
		Shard: s.cfg.Name, Digest: fmt.Sprintf("%016x", digest), Seq: seq, Points: points,
	})
}

// applyReplicaOp replays one primary mutation against the standby window.
// Callers hold s.stby.mu, so replay order equals log order. Any error means
// the standby can no longer mirror the primary bit for bit — the caller
// falls back to a snapshot bootstrap.
func (s *ShardServer) applyReplicaOp(op *replica.Op) error {
	switch op.Kind {
	case replica.KindTopology:
		return s.installReplicatedTopology(op.Raw)
	case replica.KindDedupe:
		s.dedupe.seed(op.ReqID, op.Status, op.Raw)
		return nil
	}
	topo := s.topology()
	if topo == nil {
		return fmt.Errorf("replica: window op %d before any topology", op.Kind)
	}
	switch op.Kind {
	case replica.KindAdmit:
		// A replayed admission is a one-item precounted batch: the recorded
		// Foreign count stands in for the primary's live support fan-out, and
		// CrossLater folds in immediately — bit-identical to the primary's
		// batch-then-fold because counts only grow within a run.
		_, errsOut := s.sw.AdmitBatch([]stream.PrecountedAdmission{{
			Point: op.Point, Seq: op.PointSeq, Foreign: op.Foreign, CrossLater: op.CrossLater,
		}}, time.Unix(0, op.ArrivedNs), s.owns(topo))
		return errsOut[0]
	case replica.KindEvict:
		// No support fan-out: every peer recorded its own half of this
		// eviction as a KindSupport op in its own log.
		ok, err := s.sw.EvictByID(op.ID, s.owns(topo), nil)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("replica: evict replay: id %d not resident", op.ID)
		}
		return nil
	case replica.KindSupport:
		_, err := s.sw.ApplySupport(op.Point, op.Cells, op.Delta, 0)
		return err
	case replica.KindImport:
		return s.sw.Import(op.Entries)
	default:
		return fmt.Errorf("replica: unknown op kind %d", op.Kind)
	}
}

// installReplicatedTopology installs a topology that arrived through the
// replication channel (op log or snapshot) rather than a router push.
func (s *ShardServer) installReplicatedTopology(raw []byte) error {
	var topo router.Topology
	if err := json.Unmarshal(raw, &topo); err != nil {
		return fmt.Errorf("replica: bad topology payload: %v", err)
	}
	if err := topo.Validate(); err != nil {
		return err
	}
	s.topoMu.Lock()
	defer s.topoMu.Unlock()
	if s.topo != nil && topo.Epoch < s.topo.Epoch {
		return nil // already past this epoch
	}
	s.topo = &topo
	return nil
}

// replicaSnapshot captures the primary's full window consistent with a log
// position — the shipper calls it when the standby needs a bootstrap. The
// head is re-read after the export: if any op landed in between, the
// capture does not correspond to a single log position and is retried.
func (s *ShardServer) replicaSnapshot() (*replica.Snapshot, error) {
	for i := 0; i < 64; i++ {
		seq := s.replog.Head()
		var topoRaw []byte
		if topo := s.topology(); topo != nil {
			raw, err := json.Marshal(topo)
			if err != nil {
				return nil, fmt.Errorf("replica: marshal topology: %v", err)
			}
			topoRaw = raw
		}
		entries := s.sw.Export()
		if s.replog.Head() == seq {
			return &replica.Snapshot{Seq: seq, Topology: topoRaw, Entries: entries}, nil
		}
	}
	return nil, fmt.Errorf("replica: window too busy to capture a consistent snapshot")
}
