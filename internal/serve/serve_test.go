package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"dod/internal/core"
	"dod/internal/detect"
	"dod/internal/httpapi"
	"dod/internal/stream"
)

func newTestServer(t *testing.T, cfg stream.Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{Stream: cfg, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// ndjsonBody renders points as an NDJSON request body.
func ndjsonBody(ids []uint64, coords [][]float64) *bytes.Buffer {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i, id := range ids {
		enc.Encode(httpapi.PointLine{ID: id, Coords: coords[i]})
	}
	return &buf
}

func postLines[T any](t *testing.T, url string, body io.Reader) []T {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var out []T
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line T
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad response line %q: %v", sc.Text(), err)
		}
		out = append(out, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestEndToEndMatchesCentralized is the acceptance-criteria test: scoring
// verdicts served over HTTP equal dod.DetectCentralized on the identical
// window contents.
func TestEndToEndMatchesCentralized(t *testing.T) {
	const (
		r = 1.2
		k = 3
		n = 500
	)
	srv, ts := newTestServer(t, stream.Config{R: r, K: k, Dim: 2, Capacity: n, Shards: 8})

	rng := rand.New(rand.NewSource(17))
	ids := make([]uint64, n)
	coords := make([][]float64, n)
	for i := range ids {
		ids[i] = uint64(i)
		coords[i] = []float64{rng.Float64() * 12, rng.Float64() * 12}
	}
	verdicts := postLines[verdictLine](t, ts.URL+"/v1/ingest", ndjsonBody(ids, coords))
	if len(verdicts) != n {
		t.Fatalf("got %d verdict lines, want %d", len(verdicts), n)
	}
	for i, v := range verdicts {
		if v.Error != "" {
			t.Fatalf("line %d: %s", i, v.Error)
		}
		if v.Seq != uint64(i+1) {
			t.Fatalf("line %d: seq %d, want %d", i, v.Seq, i+1)
		}
	}

	// Batch reference on the exact same window contents.
	snap := srv.Window().Snapshot()
	ref := core.DetectCentralized(snap.Points, detect.BruteForce, detect.Params{R: r, K: k}, 1)
	refSet := make(map[uint64]bool, len(ref.OutlierIDs))
	for _, id := range ref.OutlierIDs {
		refSet[id] = true
	}

	// Scoring every resident point over HTTP must reproduce the batch
	// verdict (self-exclusion matches: the window skips the query's ID).
	scores := postLines[scoreLine](t, ts.URL+"/v1/score", ndjsonBody(ids, coords))
	if len(scores) != n {
		t.Fatalf("got %d score lines, want %d", len(scores), n)
	}
	for _, sc := range scores {
		if sc.Error != "" {
			t.Fatal(sc.Error)
		}
		if sc.Outlier != refSet[sc.ID] {
			t.Fatalf("point %d: served outlier=%v, batch says %v", sc.ID, sc.Outlier, refSet[sc.ID])
		}
	}

	// The window's own incremental verdicts agree too.
	if !reflect.DeepEqual(snap.OutlierIDs, ref.OutlierIDs) && !sameIDSet(snap.OutlierIDs, ref.OutlierIDs) {
		t.Fatalf("window outliers %v != batch %v", snap.OutlierIDs, ref.OutlierIDs)
	}
}

func sameIDSet(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[uint64]bool, len(a))
	for _, id := range a {
		set[id] = true
	}
	for _, id := range b {
		if !set[id] {
			return false
		}
	}
	return true
}

// TestConcurrentRequests hammers ingest and score concurrently over real
// HTTP, then cross-validates the final window against the batch detector.
func TestConcurrentRequests(t *testing.T) {
	const (
		r = 1.0
		k = 3
	)
	srv, ts := newTestServer(t, stream.Config{R: r, K: k, Dim: 2, Capacity: 400, Shards: 8})

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for batch := 0; batch < 5; batch++ {
				ids := make([]uint64, 50)
				coords := make([][]float64, 50)
				for i := range ids {
					ids[i] = uint64(g*10_000 + batch*50 + i)
					coords[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
				}
				resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", ndjsonBody(ids, coords))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for batch := 0; batch < 5; batch++ {
				ids := make([]uint64, 50)
				coords := make([][]float64, 50)
				for i := range ids {
					ids[i] = uint64(1_000_000 + g*10_000 + batch*50 + i)
					coords[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
				}
				resp, err := http.Post(ts.URL+"/v1/score", "application/x-ndjson", ndjsonBody(ids, coords))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	snap := srv.Window().Snapshot()
	ref := core.DetectCentralized(snap.Points, detect.BruteForce, detect.Params{R: r, K: k}, 1)
	if !sameIDSet(snap.OutlierIDs, ref.OutlierIDs) {
		t.Fatalf("after concurrent load: window outliers %v != batch %v", snap.OutlierIDs, ref.OutlierIDs)
	}
	st := srv.Window().Stats()
	if st.Ingested != 4*5*50 {
		t.Fatalf("ingested %d, want %d", st.Ingested, 4*5*50)
	}
}

func TestPerLineErrors(t *testing.T) {
	_, ts := newTestServer(t, stream.Config{R: 1, K: 2, Dim: 2, Capacity: 10})
	body := strings.NewReader(`{"id":1,"coords":[0,0]}
not json at all
{"id":1,"coords":[0.1,0.1]}
{"id":2,"coords":[1,2,3]}
{"id":3,"coords":[0.2,0]}
`)
	verdicts := postLines[verdictLine](t, ts.URL+"/v1/ingest", body)
	if len(verdicts) != 5 {
		t.Fatalf("got %d lines, want 5", len(verdicts))
	}
	if verdicts[0].Error != "" || verdicts[4].Error != "" {
		t.Fatalf("good lines errored: %+v / %+v", verdicts[0], verdicts[4])
	}
	if verdicts[1].Error == "" {
		t.Fatal("malformed line accepted")
	}
	if verdicts[2].Error == "" {
		t.Fatal("duplicate ID accepted")
	}
	if verdicts[3].Error == "" {
		t.Fatal("wrong-dimension point accepted")
	}
}

func TestMethodsAndHealth(t *testing.T) {
	_, ts := newTestServer(t, stream.Config{R: 1, K: 2, Dim: 2, Capacity: 10})
	resp, err := http.Get(ts.URL + "/v1/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/ingest: status %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Fatalf("healthz %+v", health)
	}
}

func TestStatsz(t *testing.T) {
	_, ts := newTestServer(t, stream.Config{R: 2, K: 1, Dim: 2, Capacity: 3, Shards: 4})
	ids := []uint64{1, 2, 3, 4}
	coords := [][]float64{{0, 0}, {0.5, 0}, {9, 9}, {0.5, 0.5}}
	postLines[verdictLine](t, ts.URL+"/v1/ingest", ndjsonBody(ids, coords))
	postLines[scoreLine](t, ts.URL+"/v1/score", ndjsonBody([]uint64{10}, [][]float64{{0, 0}}))

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.PointsIngested != 4 || st.PointsEvicted != 1 || st.WindowLen != 3 {
		t.Fatalf("stats %+v", st)
	}
	if st.Queries != 1 || st.ScoreRequests != 1 || st.IngestRequests != 1 {
		t.Fatalf("request counters %+v", st)
	}
	if len(st.ShardOccupancy) != 4 {
		t.Fatalf("occupancy %v, want 4 shards", st.ShardOccupancy)
	}
	total := 0
	for _, n := range st.ShardOccupancy {
		total += n
	}
	if total != st.WindowLen {
		t.Fatalf("occupancy sums to %d, window len %d", total, st.WindowLen)
	}
	if st.IngestLatency.Count != 4 || st.ScoreLatency.Count != 1 {
		t.Fatalf("latency counts %+v", st)
	}
}

func TestTTLBackgroundEviction(t *testing.T) {
	s, err := New(Config{Stream: stream.Config{R: 1, K: 1, Dim: 1, TTL: 200 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson",
		strings.NewReader(`{"id":1,"coords":[0]}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for s.Window().Stats().Len != 0 {
		if time.Now().After(deadline) {
			t.Fatal("background evictor never drained the idle window")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestBatchLimit(t *testing.T) {
	s, err := New(Config{Stream: stream.Config{R: 1, K: 1, Dim: 1, Capacity: 10}, MaxBatch: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		fmt.Fprintf(&buf, `{"id":%d,"coords":[%d]}`+"\n", i, i)
	}
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400", resp.StatusCode)
	}
}
