package geom

import "fmt"

// Grid is a uniform d-dimensional grid over a domain rectangle. It is used
// by the Cell-Based detector (cells of diagonal r/2), by the uniSpace
// partitioner (equi-width partitions), and by the DMT mini-bucket histogram.
//
// Cells are indexed either by a per-dimension index vector or by a single
// flattened ordinal in row-major order.
type Grid struct {
	Domain Rect
	Dims   []int     // number of cells per dimension, all >= 1
	width  []float64 // cell width per dimension
	total  int
}

// NewGrid builds a uniform grid over domain with dims[i] cells along
// dimension i. A dimension with zero extent is collapsed to a single cell
// regardless of the requested count, keeping every cell rectangle valid.
func NewGrid(domain Rect, dims []int) *Grid {
	if len(dims) != domain.Dim() {
		panic("geom: NewGrid dims/domain dimension mismatch")
	}
	total := 1
	width := make([]float64, len(dims))
	clamped := append([]int(nil), dims...)
	for i, n := range clamped {
		if n < 1 {
			panic(fmt.Sprintf("geom: NewGrid dims[%d]=%d < 1", i, n))
		}
		extent := domain.Max[i] - domain.Min[i]
		if extent <= 0 {
			n = 1
			clamped[i] = 1
			width[i] = 1 // any positive width; all points map to cell 0
		} else {
			width[i] = extent / float64(n)
		}
		total *= n
	}
	return &Grid{Domain: domain.Clone(), Dims: clamped, width: width, total: total}
}

// NewGridByWidth builds a grid whose cells are at most `width` wide in every
// dimension (the Cell-Based detector's r/(2√d) layout). The domain is
// covered exactly; the last cell in each dimension may be narrower in
// effect, but for indexing all cells have equal width.
func NewGridByWidth(domain Rect, width float64) *Grid {
	if width <= 0 {
		panic("geom: NewGridByWidth requires width > 0")
	}
	dims := make([]int, domain.Dim())
	for i := range dims {
		extent := domain.Max[i] - domain.Min[i]
		n := int(extent / width)
		if float64(n)*width < extent {
			n++
		}
		if n < 1 {
			n = 1
		}
		dims[i] = n
	}
	return NewGrid(domain, dims)
}

// NumCells returns the total number of cells.
func (g *Grid) NumCells() int { return g.total }

// CellWidth returns the cell width along dimension i.
func (g *Grid) CellWidth(i int) float64 { return g.width[i] }

// CellCoords returns the per-dimension cell indices containing p. Points on
// the upper domain boundary are assigned to the last cell; out-of-domain
// points are clamped. This guarantees every point maps to exactly one cell.
func (g *Grid) CellCoords(p Point) []int {
	idx := make([]int, len(g.Dims))
	for i := range g.Dims {
		v := (p.Coords[i] - g.Domain.Min[i]) / g.width[i]
		c := int(v)
		if c < 0 {
			c = 0
		}
		if c >= g.Dims[i] {
			c = g.Dims[i] - 1
		}
		idx[i] = c
	}
	return idx
}

// Flatten converts per-dimension indices to a row-major ordinal.
func (g *Grid) Flatten(idx []int) int {
	ord := 0
	for i, c := range idx {
		ord = ord*g.Dims[i] + c
	}
	return ord
}

// Unflatten converts a row-major ordinal back to per-dimension indices.
func (g *Grid) Unflatten(ord int) []int {
	idx := make([]int, len(g.Dims))
	for i := len(g.Dims) - 1; i >= 0; i-- {
		idx[i] = ord % g.Dims[i]
		ord /= g.Dims[i]
	}
	return idx
}

// CellOrdinal returns the flattened ordinal of the cell containing p. It
// is equivalent to Flatten(CellCoords(p)) but computes the ordinal inline,
// with no per-call index-slice allocation — it sits inside every indexing
// loop of the Cell-Based detectors and the histogram builders.
func (g *Grid) CellOrdinal(p Point) int {
	return g.CellOrdinalCoords(p.Coords)
}

// CellOrdinalCoords is CellOrdinal on a bare coordinate row — the form the
// columnar PointSet hot paths use (clamping semantics identical to
// CellCoords).
func (g *Grid) CellOrdinalCoords(coords []float64) int {
	ord := 0
	for i, n := range g.Dims {
		c := int((coords[i] - g.Domain.Min[i]) / g.width[i])
		if c < 0 {
			c = 0
		}
		if c >= n {
			c = n - 1
		}
		ord = ord*n + c
	}
	return ord
}

// CellRect returns the rectangle of the cell at the given indices.
// Boundaries are computed so that adjacent cells share bit-identical
// coordinates (min of cell c+1 equals max of cell c) and the outermost
// cells land exactly on the domain boundary — the exact-tiling property
// the DSHC rectangular-merge test and partition plans rely on.
func (g *Grid) CellRect(idx []int) Rect {
	min := make([]float64, len(idx))
	max := make([]float64, len(idx))
	for i, c := range idx {
		min[i] = g.Boundary(i, c)
		max[i] = g.Boundary(i, c+1)
	}
	return Rect{Min: min, Max: max}
}

// Boundary returns the coordinate of grid line number c (0..Dims[i]) along
// dimension i. Line 0 is the domain minimum and line Dims[i] is exactly the
// domain maximum.
func (g *Grid) Boundary(i, c int) float64 {
	if c <= 0 {
		return g.Domain.Min[i]
	}
	if c >= g.Dims[i] {
		return g.Domain.Max[i]
	}
	return g.Domain.Min[i] + float64(c)*g.width[i]
}

// Neighborhood calls fn with the flattened ordinal of every cell within
// Chebyshev distance radius of the cell at idx (including idx itself),
// clipped to the grid. The Cell-Based detector uses radius 1 for the L1
// block and ⌈2√d⌉ for the L2 block.
func (g *Grid) Neighborhood(idx []int, radius int, fn func(ord int)) {
	cur := make([]int, len(idx))
	var rec func(dim int)
	rec = func(dim int) {
		if dim == len(idx) {
			fn(g.Flatten(cur))
			return
		}
		lo := idx[dim] - radius
		if lo < 0 {
			lo = 0
		}
		hi := idx[dim] + radius
		if hi > g.Dims[dim]-1 {
			hi = g.Dims[dim] - 1
		}
		for c := lo; c <= hi; c++ {
			cur[dim] = c
			rec(dim + 1)
		}
	}
	rec(0)
}
