package geom

import (
	"math/rand"
	"testing"
)

// naiveCount mirrors the contract of CountWithin2Coords with the scalar
// Within2Coords kernel, one row at a time.
func naiveCount(s *PointSet, q []float64, skipID uint64, lo, hi int, r2 float64) (int, int) {
	neighbors, compared := 0, 0
	for j := lo; j < hi; j++ {
		if s.IDs[j] == skipID {
			continue
		}
		compared++
		if s.Within2Coords(j, q, r2) {
			neighbors++
		}
	}
	return neighbors, compared
}

// TestCountWithin2CoordsMatchesScalar cross-checks the wide counting
// kernel against the scalar per-row kernel over random sets, ranges and
// thresholds, in the unrolled 2D/3D cases and the generic fallback.
func TestCountWithin2CoordsMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dim := range []int{2, 3, 5} {
		for trial := 0; trial < 200; trial++ {
			n := 1 + rng.Intn(40)
			s := NewPointSet(dim, n)
			for i := 0; i < n; i++ {
				coords := make([]float64, dim)
				for d := range coords {
					coords[d] = rng.Float64() * 10
				}
				s.AppendRaw(uint64(i), coords)
			}
			q := make([]float64, dim)
			for d := range q {
				q[d] = rng.Float64() * 10
			}
			r2 := rng.Float64() * 20
			lo := rng.Intn(n + 1)
			hi := lo + rng.Intn(n+1-lo)
			skipID := uint64(rng.Intn(n + 3)) // sometimes absent from the range
			gotN, gotC := s.CountWithin2Coords(q, skipID, lo, hi, r2)
			wantN, wantC := naiveCount(s, q, skipID, lo, hi, r2)
			if gotN != wantN || gotC != wantC {
				t.Fatalf("dim=%d n=%d lo=%d hi=%d skip=%d: got (%d, %d), want (%d, %d)",
					dim, n, lo, hi, skipID, gotN, gotC, wantN, wantC)
			}
		}
	}
}

// TestCountWithin2CoordsDuplicateSkipIDs pins the correction path: several
// rows sharing the skip ID inside one 4-wide group must all be excluded.
func TestCountWithin2CoordsDuplicateSkipIDs(t *testing.T) {
	s := NewPointSet(2, 8)
	for i := 0; i < 8; i++ {
		id := uint64(1)
		if i%2 == 1 {
			id = uint64(i + 10)
		}
		s.AppendRaw(id, []float64{0, 0})
	}
	q := []float64{0, 0}
	neighbors, compared := s.CountWithin2Coords(q, 1, 0, 8, 1)
	if neighbors != 4 || compared != 4 {
		t.Fatalf("got (%d, %d), want (4, 4)", neighbors, compared)
	}
}

func TestCountWithin2CoordsZeroAlloc(t *testing.T) {
	s := NewPointSet(2, 256)
	for i := 0; i < 256; i++ {
		s.AppendRaw(uint64(i), []float64{float64(i), float64(i % 7)})
	}
	q := []float64{5, 5}
	if allocs := testing.AllocsPerRun(20, func() {
		s.CountWithin2Coords(q, 3, 0, s.Len(), 25)
	}); allocs != 0 {
		t.Errorf("CountWithin2Coords allocates %v per run, want 0", allocs)
	}
}
