package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestAdjacentCellsShareExactBoundariesQuick pins the exact-tiling
// invariant: the max coordinate of cell c and the min coordinate of cell
// c+1 must be bit-identical in every dimension, for arbitrary domains and
// grid sizes. DSHC's rectangular-merge test and the partition planners'
// half-open point assignment both depend on it; float drift here once
// produced overlapping partitions.
func TestAdjacentCellsShareExactBoundariesQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		min := []float64{rng.NormFloat64() * 100, rng.NormFloat64() * 100}
		max := []float64{min[0] + 0.1 + rng.Float64()*1000, min[1] + 0.1 + rng.Float64()*1000}
		g := NewGrid(NewRect(min, max), []int{1 + rng.Intn(40), 1 + rng.Intn(40)})
		for dim := 0; dim < 2; dim++ {
			for c := 0; c < g.Dims[dim]-1; c++ {
				idxA := []int{0, 0}
				idxB := []int{0, 0}
				idxA[dim], idxB[dim] = c, c+1
				a, b := g.CellRect(idxA), g.CellRect(idxB)
				if a.Max[dim] != b.Min[dim] {
					t.Logf("seed %d dim %d cell %d: %v != %v", seed, dim, c, a.Max[dim], b.Min[dim])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestGridBoundaryEndpointsQuick: line 0 and line Dims land exactly on the
// domain, and boundaries are non-decreasing.
func TestGridBoundaryEndpointsQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		lo := rng.NormFloat64() * 50
		hi := lo + 0.01 + rng.Float64()*500
		g := NewGrid(NewRect([]float64{lo}, []float64{hi}), []int{1 + rng.Intn(60)})
		if g.Boundary(0, 0) != lo || g.Boundary(0, g.Dims[0]) != hi {
			return false
		}
		prev := lo
		for c := 1; c <= g.Dims[0]; c++ {
			b := g.Boundary(0, c)
			if b < prev {
				return false
			}
			prev = b
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestCellOrdinalRoundTripQuick: every cell's rect's center maps back to
// the same cell.
func TestCellOrdinalRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGrid(
			NewRect([]float64{0, 0}, []float64{1 + rng.Float64()*100, 1 + rng.Float64()*100}),
			[]int{1 + rng.Intn(20), 1 + rng.Intn(20)},
		)
		for ord := 0; ord < g.NumCells(); ord++ {
			center := g.CellRect(g.Unflatten(ord)).Center()
			if g.CellOrdinal(center) != ord {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
