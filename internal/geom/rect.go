package geom

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Rect is a d-dimensional axis-aligned hyper-rectangle [Min, Max]. Grid
// cells, supporting areas, partitions, mini buckets, and AF-tree bounding
// boxes are all Rects. The rectangle is closed on both ends; partition
// planners that need half-open tiling resolve ties by cell index instead.
type Rect struct {
	Min, Max []float64
}

// NewRect builds a Rect, panicking if the bounds are malformed.
func NewRect(min, max []float64) Rect {
	if len(min) != len(max) {
		panic("geom: NewRect dimension mismatch")
	}
	for i := range min {
		if min[i] > max[i] {
			panic(fmt.Sprintf("geom: NewRect inverted bounds in dim %d: %g > %g", i, min[i], max[i]))
		}
	}
	return Rect{Min: min, Max: max}
}

// Dim returns the dimensionality of the rectangle.
func (r Rect) Dim() int { return len(r.Min) }

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect {
	min := make([]float64, len(r.Min))
	max := make([]float64, len(r.Max))
	copy(min, r.Min)
	copy(max, r.Max)
	return Rect{Min: min, Max: max}
}

// Contains reports whether point p lies inside r (inclusive of boundaries).
func (r Rect) Contains(p Point) bool {
	for i := range r.Min {
		if p.Coords[i] < r.Min[i] || p.Coords[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	for i := range r.Min {
		if s.Min[i] < r.Min[i] || s.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Overlaps reports whether r and s intersect (touching boundaries count).
func (r Rect) Overlaps(s Rect) bool {
	for i := range r.Min {
		if r.Max[i] < s.Min[i] || s.Max[i] < r.Min[i] {
			return false
		}
	}
	return true
}

// Adjacent reports whether r and s touch without overlapping interiors:
// they share a boundary along exactly the dimensions where one's Max equals
// the other's Min, and overlap in every other dimension. Used by the DSHC
// search operation, which queries both overlapping and adjacent nodes.
func (r Rect) Adjacent(s Rect) bool {
	touching := false
	for i := range r.Min {
		if r.Max[i] < s.Min[i] || s.Max[i] < r.Min[i] {
			return false // gap in dimension i: disjoint, not adjacent
		}
		if r.Max[i] == s.Min[i] || s.Max[i] == r.Min[i] {
			touching = true
		}
	}
	return touching
}

// Expand returns r grown by delta on every side in every dimension. It is
// the supporting-area construction of Def. 3.3 (with delta = the distance
// threshold).
func (r Rect) Expand(delta float64) Rect {
	min := make([]float64, len(r.Min))
	max := make([]float64, len(r.Max))
	for i := range r.Min {
		min[i] = r.Min[i] - delta
		max[i] = r.Max[i] + delta
	}
	return Rect{Min: min, Max: max}
}

// Union returns the minimal bounding rectangle of r and s.
func (r Rect) Union(s Rect) Rect {
	min := make([]float64, len(r.Min))
	max := make([]float64, len(r.Max))
	for i := range r.Min {
		min[i] = math.Min(r.Min[i], s.Min[i])
		max[i] = math.Max(r.Max[i], s.Max[i])
	}
	return Rect{Min: min, Max: max}
}

// Area returns the d-dimensional volume of r. A degenerate rectangle
// (zero extent in some dimension) has zero area; callers that use area as a
// density denominator should use AreaEps instead.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Min {
		a *= r.Max[i] - r.Min[i]
	}
	return a
}

// AreaEps returns the volume of r treating any extent smaller than eps as
// eps, so the result is strictly positive. Density computations use it to
// avoid dividing by zero for degenerate clusters.
func (r Rect) AreaEps(eps float64) float64 {
	a := 1.0
	for i := range r.Min {
		e := r.Max[i] - r.Min[i]
		if e < eps {
			e = eps
		}
		a *= e
	}
	return a
}

// Enlargement returns the increase in area required for r to include s.
// Used by the AF-tree insert path ("least enlargement" parent choice).
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// Center returns the center point of r (with a zero ID).
func (r Rect) Center() Point {
	c := make([]float64, len(r.Min))
	for i := range r.Min {
		c[i] = (r.Min[i] + r.Max[i]) / 2
	}
	return Point{Coords: c}
}

// Clamp returns p with every coordinate clamped into r. Partition lookup
// clamps out-of-domain points so each point maps to exactly one partition.
func (r Rect) Clamp(p Point) Point {
	c := make([]float64, len(p.Coords))
	for i := range p.Coords {
		v := p.Coords[i]
		if v < r.Min[i] {
			v = r.Min[i]
		}
		if v > r.Max[i] {
			v = r.Max[i]
		}
		c[i] = v
	}
	return Point{ID: p.ID, Coords: c}
}

// UnionIsRectangular reports whether r ∪ s is itself a rectangle, i.e. the
// two rectangles have identical extents in d−1 dimensions and abut exactly
// in the remaining one (Def. 5.3 in the paper).
func (r Rect) UnionIsRectangular(s Rect) bool {
	mismatch := -1
	for i := range r.Min {
		if r.Min[i] == s.Min[i] && r.Max[i] == s.Max[i] {
			continue
		}
		if mismatch >= 0 {
			return false // differs in more than one dimension
		}
		mismatch = i
	}
	if mismatch < 0 {
		return false // identical rectangles do not abut
	}
	i := mismatch
	return r.Max[i] == s.Min[i] || s.Max[i] == r.Min[i]
}

// Equal reports exact equality of bounds.
func (r Rect) Equal(s Rect) bool {
	if len(r.Min) != len(s.Min) {
		return false
	}
	for i := range r.Min {
		if r.Min[i] != s.Min[i] || r.Max[i] != s.Max[i] {
			return false
		}
	}
	return true
}

// String renders the rectangle as "[x1,y1]-[x2,y2]".
func (r Rect) String() string {
	var b strings.Builder
	writeVec := func(v []float64) {
		b.WriteByte('[')
		for i, x := range v {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
		}
		b.WriteByte(']')
	}
	writeVec(r.Min)
	b.WriteByte('-')
	writeVec(r.Max)
	return b.String()
}
