// Package geom provides the d-dimensional geometric primitives used
// throughout DOD: points, hyper-rectangles, distance functions, r-ball
// volumes, and uniform grids.
//
// All structures are plain values with no hidden state so they can be
// serialized cheaply by internal/codec and shuffled by the MapReduce engine.
package geom

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Point is a d-dimensional data point. ID identifies the point across the
// distributed computation (a point is replicated into supporting areas, and
// outlier reports refer to IDs).
type Point struct {
	ID     uint64
	Coords []float64
}

// Dim returns the dimensionality of the point.
func (p Point) Dim() int { return len(p.Coords) }

// Clone returns a deep copy of p.
func (p Point) Clone() Point {
	c := make([]float64, len(p.Coords))
	copy(c, p.Coords)
	return Point{ID: p.ID, Coords: c}
}

// Equal reports whether p and q have the same ID and coordinates.
func (p Point) Equal(q Point) bool {
	if p.ID != q.ID || len(p.Coords) != len(q.Coords) {
		return false
	}
	for i := range p.Coords {
		if p.Coords[i] != q.Coords[i] {
			return false
		}
	}
	return true
}

// String renders the point as "id:(x1,x2,...)".
func (p Point) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d:(", p.ID)
	for i, v := range p.Coords {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	b.WriteByte(')')
	return b.String()
}

// Dist returns the Euclidean distance between p and q.
// It panics if the dimensionalities differ.
func Dist(p, q Point) float64 {
	return math.Sqrt(Dist2(p, q))
}

// Dist2 returns the squared Euclidean distance between p and q. Squared
// distances avoid the sqrt in the hot neighbor-test loop.
func Dist2(p, q Point) float64 {
	if len(p.Coords) != len(q.Coords) {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", len(p.Coords), len(q.Coords)))
	}
	var s float64
	for i := range p.Coords {
		d := p.Coords[i] - q.Coords[i]
		s += d * d
	}
	return s
}

// WithinDist reports whether dist(p, q) <= r without computing a sqrt.
func WithinDist(p, q Point, r float64) bool {
	return Dist2(p, q) <= r*r
}

// BallVolume returns the volume of a d-dimensional Euclidean ball of radius
// r. This is A(p) in Lemma 4.1 of the paper (π·r² in two dimensions).
func BallVolume(d int, r float64) float64 {
	if d <= 0 {
		panic("geom: BallVolume requires d >= 1")
	}
	// V_d(r) = π^(d/2) / Γ(d/2 + 1) · r^d
	return math.Pow(math.Pi, float64(d)/2) / math.Gamma(float64(d)/2+1) * math.Pow(r, float64(d))
}

// Bounds returns the minimal bounding rectangle of the given points.
// It panics on an empty slice.
func Bounds(points []Point) Rect {
	if len(points) == 0 {
		panic("geom: Bounds of empty point set")
	}
	d := points[0].Dim()
	min := make([]float64, d)
	max := make([]float64, d)
	copy(min, points[0].Coords)
	copy(max, points[0].Coords)
	for _, p := range points[1:] {
		for i := 0; i < d; i++ {
			if p.Coords[i] < min[i] {
				min[i] = p.Coords[i]
			}
			if p.Coords[i] > max[i] {
				max[i] = p.Coords[i]
			}
		}
	}
	return Rect{Min: min, Max: max}
}
