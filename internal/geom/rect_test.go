package geom

import (
	"math/rand"
	"testing"
)

func r2(x1, y1, x2, y2 float64) Rect {
	return NewRect([]float64{x1, y1}, []float64{x2, y2})
}

func TestNewRectValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inverted bounds")
		}
	}()
	NewRect([]float64{1}, []float64{0})
}

func TestRectContains(t *testing.T) {
	r := r2(0, 0, 10, 10)
	cases := []struct {
		p    Point
		want bool
	}{
		{pt(5, 5), true},
		{pt(0, 0), true},   // min corner inclusive
		{pt(10, 10), true}, // max corner inclusive
		{pt(10.0001, 5), false},
		{pt(-0.0001, 5), false},
		{pt(5, 11), false},
	}
	for _, tc := range cases {
		if got := r.Contains(tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestRectOverlaps(t *testing.T) {
	a := r2(0, 0, 10, 10)
	cases := []struct {
		b    Rect
		want bool
	}{
		{r2(5, 5, 15, 15), true},
		{r2(10, 10, 20, 20), true}, // touching corner counts
		{r2(11, 0, 20, 10), false},
		{r2(0, 11, 10, 20), false},
		{r2(2, 2, 8, 8), true}, // contained
	}
	for _, tc := range cases {
		if got := a.Overlaps(tc.b); got != tc.want {
			t.Errorf("Overlaps(%v) = %v, want %v", tc.b, got, tc.want)
		}
		if got := tc.b.Overlaps(a); got != tc.want {
			t.Errorf("Overlaps not symmetric for %v", tc.b)
		}
	}
}

func TestRectAdjacent(t *testing.T) {
	a := r2(0, 0, 1, 1)
	cases := []struct {
		name string
		b    Rect
		want bool
	}{
		{"right edge", r2(1, 0, 2, 1), true},
		{"top edge", r2(0, 1, 1, 2), true},
		{"corner touch", r2(1, 1, 2, 2), true},
		{"gap", r2(1.1, 0, 2, 1), false},
		{"overlap interior", r2(0.5, 0.5, 2, 2), false},
		{"same rect", r2(0, 0, 1, 1), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := a.Adjacent(tc.b); got != tc.want {
				t.Errorf("Adjacent = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestRectExpand(t *testing.T) {
	r := r2(0, 0, 10, 10).Expand(2)
	want := r2(-2, -2, 12, 12)
	if !r.Equal(want) {
		t.Errorf("Expand = %v, want %v", r, want)
	}
}

func TestRectUnionAndArea(t *testing.T) {
	a, b := r2(0, 0, 2, 2), r2(1, 1, 5, 3)
	u := a.Union(b)
	if !u.Equal(r2(0, 0, 5, 3)) {
		t.Errorf("Union = %v", u)
	}
	if got := u.Area(); got != 15 {
		t.Errorf("Area = %g, want 15", got)
	}
	if got := a.Enlargement(b); got != 15-4 {
		t.Errorf("Enlargement = %g, want 11", got)
	}
}

func TestRectAreaEps(t *testing.T) {
	degenerate := r2(0, 0, 5, 0)
	if degenerate.Area() != 0 {
		t.Fatal("degenerate area should be 0")
	}
	if got := degenerate.AreaEps(0.5); got != 2.5 {
		t.Errorf("AreaEps = %g, want 2.5", got)
	}
}

func TestRectClamp(t *testing.T) {
	r := r2(0, 0, 10, 10)
	p := r.Clamp(Point{ID: 9, Coords: []float64{-5, 20}})
	if p.ID != 9 || p.Coords[0] != 0 || p.Coords[1] != 10 {
		t.Errorf("Clamp = %v", p)
	}
	inside := r.Clamp(pt(3, 4))
	if inside.Coords[0] != 3 || inside.Coords[1] != 4 {
		t.Errorf("Clamp changed interior point: %v", inside)
	}
}

func TestRectCenter(t *testing.T) {
	c := r2(0, 2, 4, 10).Center()
	if c.Coords[0] != 2 || c.Coords[1] != 6 {
		t.Errorf("Center = %v", c)
	}
}

func TestUnionIsRectangular(t *testing.T) {
	cases := []struct {
		name string
		a, b Rect
		want bool
	}{
		{"abut in x", r2(0, 0, 1, 1), r2(1, 0, 2, 1), true},
		{"abut in y", r2(0, 0, 1, 1), r2(0, 1, 1, 2), true},
		{"abut reversed", r2(1, 0, 2, 1), r2(0, 0, 1, 1), true},
		{"different y extents", r2(0, 0, 1, 1), r2(1, 0, 2, 2), false},
		{"gap", r2(0, 0, 1, 1), r2(2, 0, 3, 1), false},
		{"identical", r2(0, 0, 1, 1), r2(0, 0, 1, 1), false},
		{"corner only", r2(0, 0, 1, 1), r2(1, 1, 2, 2), false},
		{"overlapping", r2(0, 0, 2, 1), r2(1, 0, 3, 1), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.UnionIsRectangular(tc.b); got != tc.want {
				t.Errorf("UnionIsRectangular = %v, want %v", got, tc.want)
			}
			if got := tc.b.UnionIsRectangular(tc.a); got != tc.want {
				t.Errorf("UnionIsRectangular not symmetric")
			}
		})
	}
}

func TestUnionIsRectangularAreaProperty(t *testing.T) {
	// If the union is rectangular, union area must equal the sum of areas.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a := r2(0, 0, 1+rng.Float64(), 1+rng.Float64())
		var b Rect
		switch rng.Intn(3) {
		case 0: // genuine abutment
			b = NewRect([]float64{a.Max[0], a.Min[1]}, []float64{a.Max[0] + 1, a.Max[1]})
		case 1: // random rect
			b = r2(rng.Float64()*3, rng.Float64()*3, 3+rng.Float64(), 3+rng.Float64())
		default: // same extents shifted with gap
			b = NewRect([]float64{a.Max[0] + 0.5, a.Min[1]}, []float64{a.Max[0] + 1.5, a.Max[1]})
		}
		if a.UnionIsRectangular(b) {
			u := a.Union(b)
			if diff := u.Area() - (a.Area() + b.Area()); diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("rectangular union %v + %v: area mismatch %g", a, b, diff)
			}
		}
	}
}

func TestContainsRect(t *testing.T) {
	outer := r2(0, 0, 10, 10)
	if !outer.ContainsRect(r2(1, 1, 9, 9)) {
		t.Error("should contain inner rect")
	}
	if !outer.ContainsRect(outer) {
		t.Error("should contain itself")
	}
	if outer.ContainsRect(r2(1, 1, 11, 9)) {
		t.Error("should not contain overflowing rect")
	}
}

func TestRectCloneIndependence(t *testing.T) {
	a := r2(0, 0, 1, 1)
	c := a.Clone()
	c.Min[0] = -5
	if a.Min[0] != 0 {
		t.Error("Clone must not share backing arrays")
	}
}
