package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randSet builds a random PointSet and its row-oriented mirror.
func randSet(rng *rand.Rand, dim, n int) (*PointSet, []Point) {
	pts := make([]Point, n)
	for i := range pts {
		coords := make([]float64, dim)
		for k := range coords {
			// Mix magnitudes so float rounding differences would surface.
			coords[k] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(7)-3))
		}
		pts[i] = Point{ID: uint64(i), Coords: coords}
	}
	return PointSetOf(pts), pts
}

// TestPointSetDist2BitIdentical pins Dist2At to the exact bits of Dist2 —
// the columnar kernel must preserve the row kernel's accumulation order,
// otherwise fixed-seed detector outputs could flip on near-threshold pairs.
func TestPointSetDist2BitIdentical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(6)
		n := 2 + rng.Intn(40)
		set, pts := randSet(rng, dim, n)
		for trial := 0; trial < 50; trial++ {
			i, j := rng.Intn(n), rng.Intn(n)
			got := set.Dist2At(i, j)
			want := Dist2(pts[i], pts[j])
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Logf("dim %d: Dist2At(%d,%d)=%x want %x", dim, i, j,
					math.Float64bits(got), math.Float64bits(want))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPointSetWithin2Equivalence: Within2's early-exit verdict equals
// WithinDist for every pair, including radii engineered to land close to
// actual pair distances.
func TestPointSetWithin2Equivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(6)
		n := 2 + rng.Intn(40)
		set, pts := randSet(rng, dim, n)
		for trial := 0; trial < 50; trial++ {
			i, j := rng.Intn(n), rng.Intn(n)
			r := rng.Float64() * 3
			if trial%4 == 0 {
				// Exercise the boundary: r exactly the pair distance.
				r = math.Sqrt(Dist2(pts[i], pts[j]))
			}
			if set.Within2(i, j, r*r) != WithinDist(pts[i], pts[j], r) {
				t.Logf("dim %d pair (%d,%d) r=%g: verdicts disagree", dim, i, j, r)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPointSetRoundTrip: Append/At/Points preserve IDs and coordinates, and
// Bounds matches the row-oriented Bounds bit for bit.
func TestPointSetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dim := range []int{1, 2, 3, 5} {
		set, pts := randSet(rng, dim, 17)
		if set.Len() != len(pts) || set.Dim != dim {
			t.Fatalf("dim %d: Len/Dim mismatch", dim)
		}
		for i, p := range pts {
			if !set.At(i).Equal(p) {
				t.Fatalf("dim %d: At(%d) = %v, want %v", dim, i, set.At(i), p)
			}
		}
		back := set.Points()
		for i := range back {
			if !back[i].Equal(pts[i]) {
				t.Fatalf("dim %d: Points()[%d] differs", dim, i)
			}
		}
		got, want := set.Bounds(), Bounds(pts)
		for k := 0; k < dim; k++ {
			if math.Float64bits(got.Min[k]) != math.Float64bits(want.Min[k]) ||
				math.Float64bits(got.Max[k]) != math.Float64bits(want.Max[k]) {
				t.Fatalf("dim %d: Bounds mismatch: %v vs %v", dim, got, want)
			}
		}
	}
}

// TestPointSetResetReuse: Reset keeps capacity and allows dimension change.
func TestPointSetResetReuse(t *testing.T) {
	set := NewPointSet(2, 4)
	set.Append(Point{ID: 1, Coords: []float64{1, 2}})
	set.Reset(3)
	if set.Len() != 0 || set.Dim != 3 {
		t.Fatalf("after Reset: Len=%d Dim=%d", set.Len(), set.Dim)
	}
	set.Append(Point{ID: 9, Coords: []float64{4, 5, 6}})
	if p := set.At(0); p.ID != 9 || p.Coords[2] != 6 {
		t.Fatalf("after Reset append: %v", set.At(0))
	}
}

// TestPointSetAppendSet: bulk append preserves order and contents.
func TestPointSetAppendSet(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a, aPts := randSet(rng, 2, 5)
	b, bPts := randSet(rng, 2, 7)
	a.AppendSet(b)
	all := append(append([]Point(nil), aPts...), bPts...)
	if a.Len() != len(all) {
		t.Fatalf("Len=%d want %d", a.Len(), len(all))
	}
	for i := range all {
		if !a.At(i).Equal(all[i]) {
			t.Fatalf("At(%d) = %v, want %v", i, a.At(i), all[i])
		}
	}
}

// TestCellOrdinalCoordsMatchesFlatten: the inlined ordinal equals the
// Flatten(CellCoords) composition on random grids and points, including
// out-of-domain points that exercise clamping.
func TestCellOrdinalCoordsMatchesFlatten(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dim := 1 + rng.Intn(4)
		min := make([]float64, dim)
		max := make([]float64, dim)
		dims := make([]int, dim)
		for k := 0; k < dim; k++ {
			min[k] = rng.Float64() * 10
			max[k] = min[k] + rng.Float64()*50
			dims[k] = 1 + rng.Intn(12)
		}
		g := NewGrid(Rect{Min: min, Max: max}, dims)
		for trial := 0; trial < 40; trial++ {
			coords := make([]float64, dim)
			for k := range coords {
				coords[k] = min[k] - 5 + rng.Float64()*(max[k]-min[k]+10)
			}
			p := Point{Coords: coords}
			if g.CellOrdinalCoords(coords) != g.Flatten(g.CellCoords(p)) {
				t.Logf("grid %v: ordinal mismatch at %v", dims, coords)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestCellOrdinalAllocFree: the grid ordinal computation performs no
// allocations — it runs once per point in every indexing loop.
func TestCellOrdinalAllocFree(t *testing.T) {
	g := NewGrid(Rect{Min: []float64{0, 0}, Max: []float64{10, 10}}, []int{8, 8})
	p := Point{Coords: []float64{3.3, 7.7}}
	if n := testing.AllocsPerRun(100, func() { _ = g.CellOrdinal(p) }); n != 0 {
		t.Fatalf("CellOrdinal allocates %v per call, want 0", n)
	}
}

func BenchmarkPointSetWithin2(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, dim := range []int{2, 3, 8} {
		set, _ := randSet(rng, dim, 1024)
		b.Run(map[int]string{2: "2D", 3: "3D", 8: "8D"}[dim], func(b *testing.B) {
			b.ReportAllocs()
			hits := 0
			for i := 0; i < b.N; i++ {
				if set.Within2(i&1023, (i*7)&1023, 2.0) {
					hits++
				}
			}
			_ = hits
		})
	}
}
