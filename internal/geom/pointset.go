package geom

import "fmt"

// PointSet is a columnar (struct-of-arrays) point collection: one flat
// coordinate block plus a parallel ID column. It is the allocation-free
// counterpart of []Point for the detection hot paths — iterating a PointSet
// touches two contiguous arrays instead of chasing one heap-allocated
// Coords slice per point, so the "linear scanning and indexing" terms of
// the cost lemmas stop being cache-miss-and-GC terms.
//
// Point i occupies Coords[i*Dim : (i+1)*Dim] and IDs[i]. The zero value is
// an empty set of unspecified dimensionality; Reset both truncates and
// (re)fixes Dim, so sets can be pooled across uses.
type PointSet struct {
	Dim    int       // dimensionality of every point; fixed per use
	IDs    []uint64  // IDs[i] identifies point i
	Coords []float64 // len = Dim*len(IDs), row-major
}

// NewPointSet returns an empty set of the given dimensionality with
// capacity for n points.
func NewPointSet(dim, n int) *PointSet {
	if dim < 1 {
		panic("geom: NewPointSet requires dim >= 1")
	}
	return &PointSet{Dim: dim, IDs: make([]uint64, 0, n), Coords: make([]float64, 0, n*dim)}
}

// PointSetOf converts a row-oriented point slice into a fresh columnar set.
// It panics on an empty input (dimensionality would be unknown) and on
// mixed dimensionalities, mirroring Dist's contract.
func PointSetOf(pts []Point) *PointSet {
	if len(pts) == 0 {
		panic("geom: PointSetOf of empty slice")
	}
	s := NewPointSet(pts[0].Dim(), len(pts))
	for _, p := range pts {
		s.Append(p)
	}
	return s
}

// Len returns the number of points in the set.
func (s *PointSet) Len() int { return len(s.IDs) }

// Clear truncates the set and unfixes its dimensionality, keeping capacity.
// A cleared set adopts the dimensionality of the first point decoded or
// appended into it (see codec.DecodePointInto), which is what the pooled
// reduce scratch needs: partition dimensionality is only known once the
// first record arrives.
func (s *PointSet) Clear() {
	s.Dim = 0
	s.IDs = s.IDs[:0]
	s.Coords = s.Coords[:0]
}

// Reset truncates the set to empty and fixes its dimensionality, keeping
// the underlying capacity so pooled sets do not reallocate.
func (s *PointSet) Reset(dim int) {
	if dim < 1 {
		panic("geom: PointSet.Reset requires dim >= 1")
	}
	s.Dim = dim
	s.IDs = s.IDs[:0]
	s.Coords = s.Coords[:0]
}

// Append adds p to the set. It panics if p's dimensionality does not match.
func (s *PointSet) Append(p Point) {
	if len(p.Coords) != s.Dim {
		panic(fmt.Sprintf("geom: PointSet dimension mismatch %d vs %d", len(p.Coords), s.Dim))
	}
	s.IDs = append(s.IDs, p.ID)
	s.Coords = append(s.Coords, p.Coords...)
}

// AppendRaw adds a point given as an ID and a coordinate slice, which is
// copied. It panics on a dimension mismatch.
func (s *PointSet) AppendRaw(id uint64, coords []float64) {
	if len(coords) != s.Dim {
		panic(fmt.Sprintf("geom: PointSet dimension mismatch %d vs %d", len(coords), s.Dim))
	}
	s.IDs = append(s.IDs, id)
	s.Coords = append(s.Coords, coords...)
}

// AppendSet bulk-appends every point of o. It panics on a dimension
// mismatch (unless o is empty).
func (s *PointSet) AppendSet(o *PointSet) {
	if o.Len() == 0 {
		return
	}
	if o.Dim != s.Dim {
		panic(fmt.Sprintf("geom: PointSet dimension mismatch %d vs %d", o.Dim, s.Dim))
	}
	s.IDs = append(s.IDs, o.IDs...)
	s.Coords = append(s.Coords, o.Coords...)
}

// CoordsAt returns the coordinate row of point i, aliased into the set's
// storage (callers must not hold it across an Append, which may reallocate).
func (s *PointSet) CoordsAt(i int) []float64 {
	return s.Coords[i*s.Dim : (i+1)*s.Dim : (i+1)*s.Dim]
}

// At materializes point i as a row Point whose Coords alias the set.
func (s *PointSet) At(i int) Point {
	return Point{ID: s.IDs[i], Coords: s.CoordsAt(i)}
}

// Points materializes the whole set as a deep-copied []Point — the
// conversion layer back to the public row-oriented API.
func (s *PointSet) Points() []Point {
	out := make([]Point, s.Len())
	coords := make([]float64, len(s.Coords)) // one block for all rows
	copy(coords, s.Coords)
	for i := range out {
		out[i] = Point{ID: s.IDs[i], Coords: coords[i*s.Dim : (i+1)*s.Dim : (i+1)*s.Dim]}
	}
	return out
}

// Dist2At returns the squared Euclidean distance between points i and j.
// The accumulation order is identical to Dist2's (term 0 first), so results
// are bit-identical to converting both points and calling Dist2.
func (s *PointSet) Dist2At(i, j int) float64 {
	a := i * s.Dim
	b := j * s.Dim
	switch s.Dim {
	case 2:
		d0 := s.Coords[a] - s.Coords[b]
		sum := d0 * d0
		d1 := s.Coords[a+1] - s.Coords[b+1]
		return sum + d1*d1
	case 3:
		d0 := s.Coords[a] - s.Coords[b]
		sum := d0 * d0
		d1 := s.Coords[a+1] - s.Coords[b+1]
		sum += d1 * d1
		d2 := s.Coords[a+2] - s.Coords[b+2]
		return sum + d2*d2
	}
	var sum float64
	for k := 0; k < s.Dim; k++ {
		d := s.Coords[a+k] - s.Coords[b+k]
		sum += d * d
	}
	return sum
}

// Within2 reports whether dist(i, j) <= r where r2 = r*r, without a sqrt.
// Beyond the unrolled 2D/3D cases it early-exits as soon as the partial sum
// exceeds r2: squared terms are non-negative, so a partial sum already over
// the threshold can never come back under it — the verdict matches the full
// Dist2At comparison bit for bit.
func (s *PointSet) Within2(i, j int, r2 float64) bool {
	a := i * s.Dim
	b := j * s.Dim
	switch s.Dim {
	case 2:
		d0 := s.Coords[a] - s.Coords[b]
		sum := d0 * d0
		d1 := s.Coords[a+1] - s.Coords[b+1]
		return sum+d1*d1 <= r2
	case 3:
		d0 := s.Coords[a] - s.Coords[b]
		sum := d0 * d0
		d1 := s.Coords[a+1] - s.Coords[b+1]
		sum += d1 * d1
		d2 := s.Coords[a+2] - s.Coords[b+2]
		return sum+d2*d2 <= r2
	}
	var sum float64
	for k := 0; k < s.Dim; k++ {
		d := s.Coords[a+k] - s.Coords[b+k]
		sum += d * d
		if sum > r2 {
			return false
		}
	}
	return sum <= r2
}

// Within2Coords reports whether point i lies within r (r2 = r*r) of the
// bare coordinate row q — the cross-set counterpart of Within2 for probing
// a set with an external query point. Verdicts match WithinDist on the
// equivalent row points bit for bit (the sign of each difference is
// irrelevant to its square, and the early exit preserves the monotone
// partial-sum argument of Within2).
func (s *PointSet) Within2Coords(i int, q []float64, r2 float64) bool {
	if len(q) != s.Dim {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", s.Dim, len(q)))
	}
	a := i * s.Dim
	switch s.Dim {
	case 2:
		d0 := s.Coords[a] - q[0]
		sum := d0 * d0
		d1 := s.Coords[a+1] - q[1]
		return sum+d1*d1 <= r2
	case 3:
		d0 := s.Coords[a] - q[0]
		sum := d0 * d0
		d1 := s.Coords[a+1] - q[1]
		sum += d1 * d1
		d2 := s.Coords[a+2] - q[2]
		return sum+d2*d2 <= r2
	}
	var sum float64
	for k := 0; k < s.Dim; k++ {
		d := s.Coords[a+k] - q[k]
		sum += d * d
		if sum > r2 {
			return false
		}
	}
	return sum <= r2
}

// CountWithin2Coords counts the points of rows [lo, hi) lying within r
// (r2 = r*r) of the bare coordinate row q, skipping rows whose ID equals
// skipID. It returns the neighbor count and the number of rows that
// received a distance evaluation (hi-lo minus the skipped rows) — the
// caller's DistComps delta.
//
// Unlike Within2Coords the scan never exits early, so the verdict per row
// is the full-sum comparison (bit-identical to Within2Coords: squared
// terms are non-negative, so the early exit and the full sum agree) and
// the counting order is irrelevant to the result. That freedom is spent on
// throughput: the 2D/3D loops run four candidates per iteration with four
// independent accumulators, breaking the loop-carried dependency chain so
// the compiler can schedule the distance math wide.
func (s *PointSet) CountWithin2Coords(q []float64, skipID uint64, lo, hi int, r2 float64) (neighbors, compared int) {
	if len(q) != s.Dim {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", s.Dim, len(q)))
	}
	ids, coords := s.IDs, s.Coords
	skipped := 0
	switch s.Dim {
	case 2:
		qx, qy := q[0], q[1]
		var n0, n1, n2, n3 int
		j := lo
		for ; j+4 <= hi; j += 4 {
			x0 := coords[2*j] - qx
			y0 := coords[2*j+1] - qy
			x1 := coords[2*j+2] - qx
			y1 := coords[2*j+3] - qy
			x2 := coords[2*j+4] - qx
			y2 := coords[2*j+5] - qy
			x3 := coords[2*j+6] - qx
			y3 := coords[2*j+7] - qy
			if x0*x0+y0*y0 <= r2 {
				n0++
			}
			if x1*x1+y1*y1 <= r2 {
				n1++
			}
			if x2*x2+y2*y2 <= r2 {
				n2++
			}
			if x3*x3+y3*y3 <= r2 {
				n3++
			}
			// The skip is rare (usually the query point itself), so the
			// wide loop counts unconditionally and corrects after the fact.
			for k := j; k < j+4; k++ {
				if ids[k] == skipID {
					skipped++
					dx := coords[2*k] - qx
					dy := coords[2*k+1] - qy
					if dx*dx+dy*dy <= r2 {
						switch k - j {
						case 0:
							n0--
						case 1:
							n1--
						case 2:
							n2--
						default:
							n3--
						}
					}
				}
			}
		}
		neighbors = n0 + n1 + n2 + n3
		for ; j < hi; j++ {
			if ids[j] == skipID {
				skipped++
				continue
			}
			dx := coords[2*j] - qx
			dy := coords[2*j+1] - qy
			if dx*dx+dy*dy <= r2 {
				neighbors++
			}
		}
	case 3:
		qx, qy, qz := q[0], q[1], q[2]
		var n0, n1, n2, n3 int
		j := lo
		for ; j+4 <= hi; j += 4 {
			x0 := coords[3*j] - qx
			y0 := coords[3*j+1] - qy
			z0 := coords[3*j+2] - qz
			x1 := coords[3*j+3] - qx
			y1 := coords[3*j+4] - qy
			z1 := coords[3*j+5] - qz
			x2 := coords[3*j+6] - qx
			y2 := coords[3*j+7] - qy
			z2 := coords[3*j+8] - qz
			x3 := coords[3*j+9] - qx
			y3 := coords[3*j+10] - qy
			z3 := coords[3*j+11] - qz
			if x0*x0+y0*y0+z0*z0 <= r2 {
				n0++
			}
			if x1*x1+y1*y1+z1*z1 <= r2 {
				n1++
			}
			if x2*x2+y2*y2+z2*z2 <= r2 {
				n2++
			}
			if x3*x3+y3*y3+z3*z3 <= r2 {
				n3++
			}
			for k := j; k < j+4; k++ {
				if ids[k] == skipID {
					skipped++
					dx := coords[3*k] - qx
					dy := coords[3*k+1] - qy
					dz := coords[3*k+2] - qz
					if dx*dx+dy*dy+dz*dz <= r2 {
						switch k - j {
						case 0:
							n0--
						case 1:
							n1--
						case 2:
							n2--
						default:
							n3--
						}
					}
				}
			}
		}
		neighbors = n0 + n1 + n2 + n3
		for ; j < hi; j++ {
			if ids[j] == skipID {
				skipped++
				continue
			}
			dx := coords[3*j] - qx
			dy := coords[3*j+1] - qy
			dz := coords[3*j+2] - qz
			if dx*dx+dy*dy+dz*dz <= r2 {
				neighbors++
			}
		}
	default:
		d := s.Dim
		for j := lo; j < hi; j++ {
			if ids[j] == skipID {
				skipped++
				continue
			}
			var sum float64
			row := coords[j*d : (j+1)*d]
			for k := 0; k < d; k++ {
				diff := row[k] - q[k]
				sum += diff * diff
			}
			if sum <= r2 {
				neighbors++
			}
		}
	}
	return neighbors, hi - lo - skipped
}

// Bounds returns the minimal bounding rectangle of the set, with the same
// comparison order as Bounds so the rectangles are bit-identical. It panics
// on an empty set.
func (s *PointSet) Bounds() Rect {
	n := s.Len()
	if n == 0 {
		panic("geom: Bounds of empty point set")
	}
	d := s.Dim
	min := make([]float64, d)
	max := make([]float64, d)
	copy(min, s.Coords[:d])
	copy(max, s.Coords[:d])
	for i := 1; i < n; i++ {
		row := s.Coords[i*d:]
		for k := 0; k < d; k++ {
			if row[k] < min[k] {
				min[k] = row[k]
			}
			if row[k] > max[k] {
				max[k] = row[k]
			}
		}
	}
	return Rect{Min: min, Max: max}
}
