package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func pt(coords ...float64) Point { return Point{Coords: coords} }

func TestDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", pt(1, 2), pt(1, 2), 0},
		{"unit x", pt(0, 0), pt(1, 0), 1},
		{"3-4-5", pt(0, 0), pt(3, 4), 5},
		{"1d", pt(-2), pt(3), 5},
		{"3d", pt(1, 1, 1), pt(2, 2, 2), math.Sqrt(3)},
		{"negative coords", pt(-3, -4), pt(0, 0), 5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Dist(tc.p, tc.q); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Dist(%v,%v) = %g, want %g", tc.p, tc.q, got, tc.want)
			}
		})
	}
}

func TestDistDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Dist(pt(1, 2), pt(1, 2, 3))
}

func TestWithinDist(t *testing.T) {
	p, q := pt(0, 0), pt(3, 4)
	if !WithinDist(p, q, 5) {
		t.Error("boundary distance should count as within (<=)")
	}
	if WithinDist(p, q, 4.999) {
		t.Error("4.999 < 5 should not be within")
	}
}

func TestDistSymmetryAndTriangle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := func() Point {
		c := make([]float64, 3)
		for i := range c {
			c[i] = rng.NormFloat64() * 10
		}
		return Point{Coords: c}
	}
	for i := 0; i < 500; i++ {
		a, b, c := gen(), gen(), gen()
		if math.Abs(Dist(a, b)-Dist(b, a)) > 1e-12 {
			t.Fatalf("symmetry violated for %v %v", a, b)
		}
		if Dist(a, c) > Dist(a, b)+Dist(b, c)+1e-9 {
			t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
		}
	}
}

func TestDist2ConsistentWithDist(t *testing.T) {
	f := func(x1, y1, x2, y2 float64) bool {
		for _, v := range []float64{x1, y1, x2, y2} {
			if math.IsNaN(v) || math.Abs(v) > 1e150 { // avoid overflow to +Inf
				return true
			}
		}
		p, q := pt(x1, y1), pt(x2, y2)
		d := Dist(p, q)
		return math.Abs(d*d-Dist2(p, q)) <= 1e-6*(1+Dist2(p, q))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBallVolume(t *testing.T) {
	tests := []struct {
		d    int
		r    float64
		want float64
	}{
		{1, 1, 2},                 // a segment of length 2r
		{2, 1, math.Pi},           // π r²
		{2, 5, math.Pi * 25},      // Lemma 4.1's A(p) with r=5
		{3, 1, 4.0 / 3 * math.Pi}, // 4/3 π r³
		{3, 2, 4.0 / 3 * math.Pi * 8},
	}
	for _, tc := range tests {
		if got := BallVolume(tc.d, tc.r); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("BallVolume(%d,%g) = %g, want %g", tc.d, tc.r, got, tc.want)
		}
	}
}

// TestBallVolumeMonteCarlo validates the Γ-function d-ball formula (the
// A(p) of Lemma 4.1) against direct Monte Carlo estimates in 2-5
// dimensions.
func TestBallVolumeMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const samples = 200000
	for d := 2; d <= 5; d++ {
		inside := 0
		for i := 0; i < samples; i++ {
			var s float64
			for j := 0; j < d; j++ {
				v := rng.Float64()*2 - 1
				s += v * v
			}
			if s <= 1 {
				inside++
			}
		}
		cubeVol := math.Pow(2, float64(d))
		estimate := float64(inside) / samples * cubeVol
		want := BallVolume(d, 1)
		if rel := math.Abs(estimate-want) / want; rel > 0.05 {
			t.Errorf("d=%d: Monte Carlo %g vs formula %g (%.1f%% off)", d, estimate, want, rel*100)
		}
	}
	// Scaling: V(r) = V(1)·r^d.
	for d := 1; d <= 4; d++ {
		if got, want := BallVolume(d, 3), BallVolume(d, 1)*math.Pow(3, float64(d)); math.Abs(got-want) > 1e-9*want {
			t.Errorf("d=%d: scaling violated: %g vs %g", d, got, want)
		}
	}
}

func TestBallVolumePanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for d=0")
		}
	}()
	BallVolume(0, 1)
}

func TestBounds(t *testing.T) {
	pts := []Point{pt(1, 5), pt(-2, 3), pt(4, -1)}
	b := Bounds(pts)
	want := NewRect([]float64{-2, -1}, []float64{4, 5})
	if !b.Equal(want) {
		t.Errorf("Bounds = %v, want %v", b, want)
	}
	for _, p := range pts {
		if !b.Contains(p) {
			t.Errorf("bounds %v should contain %v", b, p)
		}
	}
}

func TestBoundsSinglePoint(t *testing.T) {
	b := Bounds([]Point{pt(2, 3)})
	if !b.Equal(NewRect([]float64{2, 3}, []float64{2, 3})) {
		t.Errorf("single-point bounds wrong: %v", b)
	}
}

func TestBoundsEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty slice")
		}
	}()
	Bounds(nil)
}

func TestPointCloneIndependence(t *testing.T) {
	p := Point{ID: 7, Coords: []float64{1, 2}}
	c := p.Clone()
	c.Coords[0] = 99
	if p.Coords[0] != 1 {
		t.Error("Clone must not share backing array")
	}
	if !p.Equal(p.Clone()) {
		t.Error("clone should equal original")
	}
}

func TestPointEqual(t *testing.T) {
	a := Point{ID: 1, Coords: []float64{1, 2}}
	if a.Equal(Point{ID: 2, Coords: []float64{1, 2}}) {
		t.Error("different IDs must not be equal")
	}
	if a.Equal(Point{ID: 1, Coords: []float64{1}}) {
		t.Error("different dims must not be equal")
	}
	if a.Equal(Point{ID: 1, Coords: []float64{1, 3}}) {
		t.Error("different coords must not be equal")
	}
}

func TestPointString(t *testing.T) {
	p := Point{ID: 3, Coords: []float64{1.5, -2}}
	if got, want := p.String(), "3:(1.5,-2)"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestBoundsContainsAllProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(50)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = pt(rng.NormFloat64()*100, rng.NormFloat64()*100)
		}
		b := Bounds(pts)
		for _, p := range pts {
			if !b.Contains(p) {
				t.Fatalf("trial %d: bounds %v misses %v", trial, b, p)
			}
		}
	}
}
