package geom

import (
	"math/rand"
	"testing"
)

func TestGridBasics(t *testing.T) {
	g := NewGrid(r2(0, 0, 10, 20), []int{5, 4})
	if g.NumCells() != 20 {
		t.Fatalf("NumCells = %d, want 20", g.NumCells())
	}
	if g.CellWidth(0) != 2 || g.CellWidth(1) != 5 {
		t.Fatalf("widths = %g,%g", g.CellWidth(0), g.CellWidth(1))
	}
}

func TestGridCellCoords(t *testing.T) {
	g := NewGrid(r2(0, 0, 10, 10), []int{10, 10})
	cases := []struct {
		p    Point
		want [2]int
	}{
		{pt(0, 0), [2]int{0, 0}},
		{pt(0.5, 9.5), [2]int{0, 9}},
		{pt(10, 10), [2]int{9, 9}}, // upper boundary → last cell
		{pt(-3, 50), [2]int{0, 9}}, // out of domain → clamped
		{pt(4.999, 5.0), [2]int{4, 5}},
	}
	for _, tc := range cases {
		got := g.CellCoords(tc.p)
		if got[0] != tc.want[0] || got[1] != tc.want[1] {
			t.Errorf("CellCoords(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestGridFlattenRoundTrip(t *testing.T) {
	g := NewGrid(NewRect([]float64{0, 0, 0}, []float64{1, 1, 1}), []int{3, 4, 5})
	for ord := 0; ord < g.NumCells(); ord++ {
		idx := g.Unflatten(ord)
		if back := g.Flatten(idx); back != ord {
			t.Fatalf("roundtrip %d -> %v -> %d", ord, idx, back)
		}
	}
}

func TestGridCellRectContainsItsPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewGrid(r2(-5, -5, 5, 5), []int{7, 9})
	for i := 0; i < 1000; i++ {
		p := pt(rng.Float64()*10-5, rng.Float64()*10-5)
		idx := g.CellCoords(p)
		rect := g.CellRect(idx)
		if !rect.Contains(p) {
			t.Fatalf("cell rect %v does not contain %v (idx %v)", rect, p, idx)
		}
	}
}

func TestGridCellRectsTileDomain(t *testing.T) {
	g := NewGrid(r2(0, 0, 6, 6), []int{3, 3})
	var total float64
	for ord := 0; ord < g.NumCells(); ord++ {
		total += g.CellRect(g.Unflatten(ord)).Area()
	}
	if total != g.Domain.Area() {
		t.Errorf("cells area %g != domain area %g", total, g.Domain.Area())
	}
}

func TestNewGridByWidth(t *testing.T) {
	g := NewGridByWidth(r2(0, 0, 10, 4), 3)
	if g.Dims[0] != 4 || g.Dims[1] != 2 {
		t.Fatalf("dims = %v, want [4 2]", g.Dims)
	}
	// exact division should not add an extra cell
	g2 := NewGridByWidth(r2(0, 0, 9, 9), 3)
	if g2.Dims[0] != 3 || g2.Dims[1] != 3 {
		t.Fatalf("dims = %v, want [3 3]", g2.Dims)
	}
}

func TestNewGridByWidthDegenerateDomain(t *testing.T) {
	g := NewGridByWidth(r2(5, 0, 5, 10), 2) // zero extent in x
	if g.Dims[0] != 1 {
		t.Fatalf("zero-extent dimension should get 1 cell, got %d", g.Dims[0])
	}
	if got := g.CellCoords(pt(5, 3))[0]; got != 0 {
		t.Fatalf("point in degenerate dim should map to cell 0, got %d", got)
	}
}

func TestGridNeighborhood(t *testing.T) {
	g := NewGrid(r2(0, 0, 10, 10), []int{10, 10})
	count := func(idx []int, radius int) int {
		n := 0
		g.Neighborhood(idx, radius, func(int) { n++ })
		return n
	}
	if got := count([]int{5, 5}, 1); got != 9 {
		t.Errorf("interior radius-1 block = %d, want 9", got)
	}
	if got := count([]int{5, 5}, 3); got != 49 {
		t.Errorf("interior radius-3 block = %d, want 49 (Lemma 4.2)", got)
	}
	if got := count([]int{0, 0}, 1); got != 4 {
		t.Errorf("corner radius-1 block = %d, want 4", got)
	}
	if got := count([]int{0, 5}, 1); got != 6 {
		t.Errorf("edge radius-1 block = %d, want 6", got)
	}
}

func TestGridNeighborhoodIncludesSelfAndUnique(t *testing.T) {
	g := NewGrid(r2(0, 0, 10, 10), []int{6, 6})
	idx := []int{2, 3}
	self := g.Flatten(idx)
	seen := map[int]bool{}
	g.Neighborhood(idx, 2, func(ord int) {
		if seen[ord] {
			t.Fatalf("duplicate ordinal %d", ord)
		}
		seen[ord] = true
	})
	if !seen[self] {
		t.Error("neighborhood must include the center cell")
	}
}

func TestGridPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero cell count")
		}
	}()
	NewGrid(r2(0, 0, 1, 1), []int{0, 2})
}
