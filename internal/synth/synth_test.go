package synth

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"dod/internal/geom"
)

func measuredDensity(pts []geom.Point) float64 {
	b := geom.Bounds(pts)
	return float64(len(pts)) / b.AreaEps(1e-9)
}

func TestSegmentCardinalityAndDensityOrdering(t *testing.T) {
	const n = 5000
	densities := map[SegmentKind]float64{}
	for _, kind := range Segments {
		pts := Segment(kind, n, 1)
		if len(pts) != n {
			t.Fatalf("%s: %d points, want %d", kind, len(pts), n)
		}
		densities[kind] = measuredDensity(pts)
	}
	// The paper's ordering: OH sparse < MA < CA <= NY.
	if !(densities[Ohio] < densities[Massachusetts] &&
		densities[Massachusetts] < densities[California] &&
		densities[California] < densities[NewYork]) {
		t.Errorf("density ordering violated: %v", densities)
	}
}

func TestSegmentDensityNearTarget(t *testing.T) {
	for kind, want := range segmentDensity {
		pts := Segment(kind, 8000, 2)
		got := measuredDensity(pts)
		if got < want*0.5 || got > want*2 {
			t.Errorf("%s: measured density %g, target %g", kind, got, want)
		}
	}
}

func TestSegmentUniqueIDs(t *testing.T) {
	pts := Segment(Massachusetts, 3000, 3)
	seen := make(map[uint64]bool, len(pts))
	for _, p := range pts {
		if seen[p.ID] {
			t.Fatalf("duplicate ID %d", p.ID)
		}
		seen[p.ID] = true
	}
}

func TestSegmentDeterministic(t *testing.T) {
	a := Segment(Ohio, 1000, 7)
	b := Segment(Ohio, 1000, 7)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different data")
	}
	c := Segment(Ohio, 1000, 8)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical data")
	}
}

func TestSegmentUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Segment("XX", 10, 1)
}

func TestHierarchicalSizes(t *testing.T) {
	const base = 500
	wantSegments := map[Level]int{LevelMA: 1, LevelNE: 3, LevelUS: 8, LevelPlanet: 20}
	var prevCount int
	var prevArea float64
	for _, level := range Levels {
		pts := Hierarchical(level, base, 1)
		want := base * wantSegments[level]
		if len(pts) != want {
			t.Errorf("%s: %d points, want %d", level, len(pts), want)
		}
		area := geom.Bounds(pts).Area()
		if len(pts) <= prevCount && level != LevelMA {
			t.Errorf("%s: cardinality did not grow", level)
		}
		if area <= prevArea && level != LevelMA {
			t.Errorf("%s: domain did not grow", level)
		}
		prevCount, prevArea = len(pts), area
	}
}

func TestHierarchicalUniqueIDs(t *testing.T) {
	pts := Hierarchical(LevelUS, 300, 2)
	seen := make(map[uint64]bool, len(pts))
	for _, p := range pts {
		if seen[p.ID] {
			t.Fatalf("duplicate ID %d across segments", p.ID)
		}
		seen[p.ID] = true
	}
}

func TestHierarchicalSkewGrowsWithLevel(t *testing.T) {
	// Larger levels mix more density regimes: the spread between the
	// densest and sparsest quadrant should grow from MA to Planet.
	spread := func(pts []geom.Point) float64 {
		b := geom.Bounds(pts)
		grid := geom.NewGrid(b, []int{8, 8})
		counts := make([]float64, grid.NumCells())
		for _, p := range pts {
			counts[grid.CellOrdinal(p)]++
		}
		min, max := math.Inf(1), 0.0
		for _, c := range counts {
			if c > 0 {
				if c < min {
					min = c
				}
				if c > max {
					max = c
				}
			}
		}
		return max / min
	}
	ma := spread(Hierarchical(LevelMA, 2000, 3))
	planet := spread(Hierarchical(LevelPlanet, 2000, 3))
	if planet <= ma {
		t.Errorf("skew should grow: MA spread %g, Planet spread %g", ma, planet)
	}
}

func TestUniformWithDensity(t *testing.T) {
	for _, d := range []float64{0.01, 0.1, 1, 10} {
		pts := UniformWithDensity(4000, d, 5)
		got := measuredDensity(pts)
		if got < d*0.8 || got > d*1.2 {
			t.Errorf("density %g: measured %g", d, got)
		}
	}
}

func TestUniformWithDensityPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	UniformWithDensity(10, 0, 1)
}

func TestTigerLikeIsLineStructured(t *testing.T) {
	pts := TigerLike(8000, 1000, 15, 6)
	if len(pts) != 8000 {
		t.Fatalf("got %d points", len(pts))
	}
	// Line-structured data: most occupied grid cells dense, most cells
	// empty.
	b := geom.Bounds(pts)
	grid := geom.NewGrid(b, []int{30, 30})
	occupied := map[int]int{}
	for _, p := range pts {
		occupied[grid.CellOrdinal(p)]++
	}
	if frac := float64(len(occupied)) / float64(grid.NumCells()); frac > 0.6 {
		t.Errorf("TIGER-like data occupies %.0f%% of cells; expected sparse line structure", frac*100)
	}
}

func TestDistort(t *testing.T) {
	orig := Segment(Massachusetts, 500, 7)
	out := Distort(orig, 3, 1.0, 8)
	if len(out) != 4*len(orig) {
		t.Fatalf("got %d points, want %d", len(out), 4*len(orig))
	}
	seen := make(map[uint64]bool, len(out))
	for _, p := range out {
		if seen[p.ID] {
			t.Fatalf("duplicate ID %d", p.ID)
		}
		seen[p.ID] = true
	}
	// Replicas must be near their source: bounding box grows only modestly.
	ob, nb := geom.Bounds(orig), geom.Bounds(out)
	if nb.Area() > ob.Area()*1.5 {
		t.Errorf("distorted bounds grew too much: %g -> %g", ob.Area(), nb.Area())
	}
	// First point must be the unjittered original (new ID).
	if !reflect.DeepEqual(out[0].Coords, orig[0].Coords) {
		t.Error("first replica should be the original coordinates")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	pts := Segment(California, 200, 9)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, pts) {
		t.Error("CSV roundtrip mismatch")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"missing coords":   "1\n",
		"bad id":           "x,1,2\n",
		"bad coord":        "1,zap,2\n",
		"dimension change": "1,1,2\n2,1\n",
	}
	for name, data := range cases {
		if _, err := ReadCSV(strings.NewReader(data)); err == nil {
			t.Errorf("%s: accepted %q", name, data)
		}
	}
}

func TestReadCSVSkipsBlankLines(t *testing.T) {
	pts, err := ReadCSV(strings.NewReader("1,2,3\n\n2,4,5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Errorf("got %d points", len(pts))
	}
}
