package synth

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dod/internal/geom"
)

// WriteCSV writes points as "id,x1,x2,..." lines.
func WriteCSV(w io.Writer, points []geom.Point) error {
	bw := bufio.NewWriter(w)
	for _, p := range points {
		if _, err := fmt.Fprintf(bw, "%d", p.ID); err != nil {
			return err
		}
		for _, v := range p.Coords {
			if _, err := fmt.Fprintf(bw, ",%s", strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses points written by WriteCSV (or any id,coords... CSV).
// Blank lines are skipped; all rows must share one dimensionality.
func ReadCSV(r io.Reader) ([]geom.Point, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	var points []geom.Point
	dim := -1
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) < 2 {
			return nil, fmt.Errorf("synth: line %d: need id plus at least one coordinate", lineNo)
		}
		id, err := strconv.ParseUint(strings.TrimSpace(fields[0]), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("synth: line %d: bad id: %w", lineNo, err)
		}
		coords := make([]float64, len(fields)-1)
		for i, f := range fields[1:] {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, fmt.Errorf("synth: line %d: bad coordinate %d: %w", lineNo, i, err)
			}
			coords[i] = v
		}
		if dim == -1 {
			dim = len(coords)
		} else if len(coords) != dim {
			return nil, fmt.Errorf("synth: line %d: dimension %d != %d", lineNo, len(coords), dim)
		}
		points = append(points, geom.Point{ID: id, Coords: coords})
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return points, nil
}
