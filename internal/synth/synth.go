// Package synth generates the evaluation datasets. The paper uses
// OpenStreetMap (four equal-cardinality state segments of very different
// density, plus a hierarchy MA ⊂ New England ⊂ US ⊂ Planet), the TIGER
// road-network extracts, and a distorted "2 TB" replication of
// OpenStreetMap. None of those are available offline, so this package
// produces density-calibrated synthetic analogs: the experiments'
// independent variables are density, skew, and scale, all of which the
// generators control directly.
//
// Densities are calibrated against the paper's parameters r=5, k=4, for
// which Corollary 4.3's regime cutoffs are ≈0.142 pts/unit² (dense-inlier)
// and ≈0.026 pts/unit² (sparse-outlier): New York and California sit mostly
// above the dense cutoff, Ohio straddles the intermediate/sparse regimes,
// and Massachusetts lies in between — reproducing the orderings of
// Figs. 7 and 9a.
package synth

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dod/internal/geom"
)

// SegmentKind names one of the four OpenStreetMap state segments of
// Sec. VI-A.
type SegmentKind string

// The four equal-cardinality, differently-dense segments.
const (
	Ohio          SegmentKind = "OH" // sparse
	Massachusetts SegmentKind = "MA" // medium
	California    SegmentKind = "CA" // dense
	NewYork       SegmentKind = "NY" // very dense
)

// Segments lists the four kinds in the paper's presentation order.
var Segments = []SegmentKind{Ohio, Massachusetts, California, NewYork}

// segmentDensity is the overall points-per-unit² target of each segment.
var segmentDensity = map[SegmentKind]float64{
	Ohio:          0.06,
	Massachusetts: 0.15,
	California:    0.8,
	NewYork:       1.2,
}

// segmentClusterFrac is the fraction of points in towns (versus uniform
// background). Ohio keeps half its mass in a mid-density background — the
// regime where Nested-Loop beats Cell-Based — matching the paper's
// observation that Nested-Loop wins on OH.
var segmentClusterFrac = map[SegmentKind]float64{
	Ohio:          0.25,
	Massachusetts: 0.7,
	California:    0.75,
	NewYork:       0.8,
}

// Segment generates n points with the density profile of the named
// segment: Zipf-weighted Gaussian "towns" of widely varying size and
// tightness over a uniform background, so local density spans orders of
// magnitude around the segment's overall target — the heavy skew of real
// OpenStreetMap building data.
func Segment(kind SegmentKind, n int, seed int64) []geom.Point {
	density, ok := segmentDensity[kind]
	if !ok {
		panic(fmt.Sprintf("synth: unknown segment %q", kind))
	}
	side := math.Sqrt(float64(n) / density)
	rng := rand.New(rand.NewSource(seed))
	return clusteredInto(rng, 0, n, geom.NewRect([]float64{0, 0}, []float64{side, side}), segmentClusterFrac[kind], 40)
}

// clusteredInto fills rect with n points: clusterFrac of them in
// numClusters Gaussian towns with Zipf-distributed weights (a few metros
// hold most of the clustered mass), the rest uniform background. IDs start
// at baseID.
func clusteredInto(rng *rand.Rand, baseID uint64, n int, rect geom.Rect, clusterFrac float64, numClusters int) []geom.Point {
	side := rect.Max[0] - rect.Min[0]
	sideY := rect.Max[1] - rect.Min[1]
	type cl struct{ cx, cy, sigma, cumWeight float64 }
	clusters := make([]cl, numClusters)
	totalWeight := 0.0
	for i := range clusters {
		totalWeight += 1 / math.Pow(float64(i+1), 1.2) // Zipf s=1.2
		clusters[i] = cl{
			cx: rect.Min[0] + rng.Float64()*side,
			cy: rect.Min[1] + rng.Float64()*sideY,
			// Town extents vary ~6x, and even the tightest towns span a
			// few percent of the domain: density structure lives at scales
			// well above the neighbor radius r, as in real building data.
			sigma:     (0.02 + rng.Float64()*0.1) * math.Min(side, sideY),
			cumWeight: totalWeight,
		}
	}
	pick := func() cl {
		target := rng.Float64() * totalWeight
		for _, c := range clusters {
			if c.cumWeight >= target {
				return c
			}
		}
		return clusters[len(clusters)-1]
	}
	pts := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		var x, y float64
		if rng.Float64() < clusterFrac {
			c := pick()
			x = c.cx + rng.NormFloat64()*c.sigma
			y = c.cy + rng.NormFloat64()*c.sigma
		} else {
			x = rect.Min[0] + rng.Float64()*side
			y = rect.Min[1] + rng.Float64()*sideY
		}
		p := rect.Clamp(geom.Point{Coords: []float64{x, y}})
		p.ID = baseID + uint64(i)
		pts = append(pts, p)
	}
	return pts
}

// Level names one rung of the hierarchical scalability datasets
// (MA ⊂ New England ⊂ United States ⊂ Planet).
type Level string

// The four scalability levels. Cardinality grows 1×, 3×, 8×, 20× the base
// size, and skew grows with it: larger levels mix more segments of more
// extreme densities, as the paper observes of the real hierarchy.
const (
	LevelMA     Level = "MA"
	LevelNE     Level = "NE"
	LevelUS     Level = "US"
	LevelPlanet Level = "Planet"
)

// Levels lists the rungs smallest to largest.
var Levels = []Level{LevelMA, LevelNE, LevelUS, LevelPlanet}

// levelSpec describes a level as a list of segment kinds tiled into a
// square arrangement.
var levelSpec = map[Level][]SegmentKind{
	LevelMA: {Massachusetts},
	LevelNE: {Massachusetts, California, Ohio},
	LevelUS: {
		Massachusetts, California, Ohio, NewYork,
		Ohio, Massachusetts, Ohio, California,
	},
	LevelPlanet: {
		Massachusetts, California, Ohio, NewYork, Ohio,
		Massachusetts, Ohio, California, NewYork, Ohio,
		Ohio, Massachusetts, Ohio, Ohio, California,
		NewYork, Ohio, Massachusetts, Ohio, Ohio,
	},
}

// Hierarchical generates the dataset for a level; baseN is the cardinality
// of one segment (the MA level).
func Hierarchical(level Level, baseN int, seed int64) []geom.Point {
	spec, ok := levelSpec[level]
	if !ok {
		panic(fmt.Sprintf("synth: unknown level %q", level))
	}
	rng := rand.New(rand.NewSource(seed))
	cols := int(math.Ceil(math.Sqrt(float64(len(spec)))))
	// Tile width: large enough for the sparsest segment plus padding so
	// tiles do not abut (inter-segment space is near-empty, adding skew).
	maxSide := 0.0
	for _, kind := range spec {
		side := math.Sqrt(float64(baseN) / segmentDensity[kind])
		if side > maxSide {
			maxSide = side
		}
	}
	tile := maxSide * 1.3
	var pts []geom.Point
	for i, kind := range spec {
		ox := float64(i%cols) * tile
		oy := float64(i/cols) * tile
		side := math.Sqrt(float64(baseN) / segmentDensity[kind])
		rect := geom.NewRect([]float64{ox, oy}, []float64{ox + side, oy + side})
		pts = append(pts, clusteredInto(rng, uint64(i)<<32, baseN, rect, segmentClusterFrac[kind], 40)...)
	}
	return pts
}

// Uniform generates n points uniformly over a side×side square.
func Uniform(n int, side float64, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{ID: uint64(i), Coords: []float64{rng.Float64() * side, rng.Float64() * side}}
	}
	return pts
}

// UniformWithDensity generates n uniform points over a square sized for
// the given density — the density-sweep workload of Figs. 4 and 5.
func UniformWithDensity(n int, density float64, seed int64) []geom.Point {
	if density <= 0 {
		panic("synth: density must be positive")
	}
	return Uniform(n, math.Sqrt(float64(n)/density), seed)
}

// JitteredGrid generates n points on a jittered √n×√n grid over a square
// sized for the given density. Unlike iid-uniform sampling, local counts
// have almost no variance — the idealized "uniformly-distributed dataset"
// the cost-model lemmas assume, and the right workload for the Fig. 4/5
// microbenchmarks where Poisson clumping would otherwise let the
// Cell-Based pruning rules fire on noise.
func JitteredGrid(n int, density float64, seed int64) []geom.Point {
	if density <= 0 {
		panic("synth: density must be positive")
	}
	side := math.Sqrt(float64(n) / density)
	g := int(math.Ceil(math.Sqrt(float64(n))))
	spacing := side / float64(g)
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, 0, n)
	for gy := 0; gy < g && len(pts) < n; gy++ {
		for gx := 0; gx < g && len(pts) < n; gx++ {
			pts = append(pts, geom.Point{
				ID: uint64(len(pts)),
				Coords: []float64{
					(float64(gx) + rng.Float64()) * spacing,
					(float64(gy) + rng.Float64()) * spacing,
				},
			})
		}
	}
	return pts
}

// TigerLike generates n points along random road polylines — the line-
// feature structure of the TIGER extracts: high density along roads and at
// intersections, near-empty space elsewhere.
func TigerLike(n int, side float64, numRoads int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	type segment struct{ x1, y1, x2, y2 float64 }
	var segments []segment
	for r := 0; r < numRoads; r++ {
		// A polyline of 3-8 vertices wandering across the domain.
		x, y := rng.Float64()*side, rng.Float64()*side
		verts := 3 + rng.Intn(6)
		for v := 0; v < verts; v++ {
			nx := math.Max(0, math.Min(side, x+rng.NormFloat64()*side/6))
			ny := math.Max(0, math.Min(side, y+rng.NormFloat64()*side/6))
			segments = append(segments, segment{x, y, nx, ny})
			x, y = nx, ny
		}
	}
	pts := make([]geom.Point, 0, n)
	for i := 0; i < n; i++ {
		s := segments[rng.Intn(len(segments))]
		t := rng.Float64()
		jitter := rng.NormFloat64() * side / 500
		x := s.x1 + t*(s.x2-s.x1) + jitter
		y := s.y1 + t*(s.y2-s.y1) + rng.NormFloat64()*side/500
		x = math.Max(0, math.Min(side, x))
		y = math.Max(0, math.Min(side, y))
		pts = append(pts, geom.Point{ID: uint64(i), Coords: []float64{x, y}})
	}
	return pts
}

// Distort implements the paper's terabyte-scale dataset tool (Sec. VI-A):
// for each input point p it emits p plus `copies` altered replicas p', p”,
// ... each with a random jitter on every dimension. With copies = 3 the
// output is 4× the input, matching the paper's 2 TB construction from the
// 500 GB OpenStreetMap.
func Distort(points []geom.Point, copies int, jitter float64, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Point, 0, len(points)*(copies+1))
	next := uint64(0)
	for _, p := range points {
		q := p.Clone()
		q.ID = next
		next++
		out = append(out, q)
		for c := 0; c < copies; c++ {
			r := p.Clone()
			r.ID = next
			next++
			for i := range r.Coords {
				r.Coords[i] += rng.NormFloat64() * jitter
			}
			out = append(out, r)
		}
	}
	return out
}

// GaussianCloud generates an n-point d-dimensional Gaussian cloud scaled so
// the average density stays in the intermediate regime for the canonical
// r=5, k=4 parameters. The 2D experiments never need it; the d>2 kernel
// benchmarks and the dimensionality sweep do.
func GaussianCloud(n, d int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		coords := make([]float64, d)
		for j := range coords {
			coords[j] = rng.NormFloat64() * 20
		}
		pts[i] = geom.Point{ID: uint64(i), Coords: coords}
	}
	return pts
}

// HighDimPlanted generates an n-point d-dimensional clustered workload
// with planted outliers — the high-dimensional regime where the grid
// detectors collapse (cell side r/(2√d) makes the L1/L2 neighborhood
// enumeration explode with 3^d cells) and a grid-free tactic must take
// over.
//
// Points are drawn around ⌈n/500⌉+4 cluster centers placed uniformly in
// [0, 50r]^d, with per-coordinate spread σ = r/(2√(2d)) so a typical
// same-cluster pair sits at distance ≈ r/2 — comfortably inside the
// threshold, making cluster members dense inliers. A planted fraction is
// instead drawn uniformly over the whole box; in high dimension such
// points are isolated from every cluster with overwhelming probability.
// The planted points take the highest IDs and are returned as outlierIDs
// so tests can check them against detector output (callers should still
// verify against an exact detector: a cluster straggler can occasionally
// be a true outlier too). Deterministic for a fixed seed.
func HighDimPlanted(n, d int, r, outlierFrac float64, seed int64) (pts []geom.Point, outlierIDs []uint64) {
	rng := rand.New(rand.NewSource(seed))
	nOut := int(float64(n) * outlierFrac)
	if nOut < 1 {
		nOut = 1
	}
	if nOut > n {
		nOut = n
	}
	nIn := n - nOut
	side := 50 * r
	sigma := r / (2 * math.Sqrt(2*float64(d)))

	nCenters := n/500 + 4
	centers := make([][]float64, nCenters)
	for c := range centers {
		coords := make([]float64, d)
		for j := range coords {
			coords[j] = rng.Float64() * side
		}
		centers[c] = coords
	}

	pts = make([]geom.Point, 0, n)
	for i := 0; i < nIn; i++ {
		center := centers[rng.Intn(nCenters)]
		coords := make([]float64, d)
		for j := range coords {
			coords[j] = center[j] + rng.NormFloat64()*sigma
		}
		pts = append(pts, geom.Point{ID: uint64(i), Coords: coords})
	}
	for i := nIn; i < n; i++ {
		coords := make([]float64, d)
		for j := range coords {
			coords[j] = rng.Float64() * side
		}
		pts = append(pts, geom.Point{ID: uint64(i), Coords: coords})
		outlierIDs = append(outlierIDs, uint64(i))
	}
	return pts, outlierIDs
}

// HighDimUniform generates an n-point d-dimensional workload of points
// uniform on a hypersphere — the geometry of unit-norm embedding vectors,
// and the adversarial regime for spatial indexes. The sphere radius is
// calibrated so a typical point has ≈20 neighbors within r: comfortably
// above any small k, so core points are inliers, and — because the
// sphere is homogeneous — the neighbor count concentrates sharply, so
// essentially no core point is a natural outlier. But the neighbor
// fraction is so low (20/n), and r such a large fraction of the data's
// extent in every coordinate, that no axis-aligned cell or kd-box inside
// the bounding box can ever be pruned against a query ball: any detector
// without a distance-aware structure must scan ~k·n/20 candidates per
// query. Planted outliers sit on a concentric sphere at 4× the radius,
// far outside r of every core point; they take the highest IDs and are
// returned as outlierIDs in ascending order.
func HighDimUniform(n, d int, r, outlierFrac float64, seed int64) (pts []geom.Point, outlierIDs []uint64) {
	rng := rand.New(rand.NewSource(seed))
	nOut := int(float64(n) * outlierFrac)
	if nOut > n {
		nOut = n
	}
	nIn := n - nOut

	sphere := func(radius float64) []float64 {
		coords := make([]float64, d)
		var norm float64
		for j := range coords {
			coords[j] = rng.NormFloat64()
			norm += coords[j] * coords[j]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			norm = 1
		}
		for j := range coords {
			coords[j] *= radius / norm
		}
		return coords
	}

	// Generate core points on the unit sphere, then rescale so that
	// E[#neighbors within r] ≈ 20: the scale is r over the empirical
	// (20/n)-quantile of sampled pairwise distances. The left tail of
	// the high-dimensional distance distribution is far lighter than its
	// normal approximation, so the quantile is estimated by Monte Carlo
	// (deterministic given the seed) rather than a CLT formula.
	const targetNeighbors = 20
	pts = make([]geom.Point, 0, n)
	for i := 0; i < nIn; i++ {
		pts = append(pts, geom.Point{ID: uint64(i), Coords: sphere(1)})
	}
	frac := targetNeighbors / float64(max(nIn, 2))
	if frac > 1 {
		frac = 1
	}
	const pairSample = 200_000
	d2s := make([]float64, pairSample)
	for t := range d2s {
		a, b := pts[rng.Intn(nIn)].Coords, pts[rng.Intn(nIn)].Coords
		var s float64
		for j := 0; j < d; j++ {
			diff := a[j] - b[j]
			s += diff * diff
		}
		d2s[t] = s
	}
	sort.Float64s(d2s)
	q := d2s[int(frac*(pairSample-1))]
	if q <= 0 {
		q = d2s[pairSample-1]
	}
	if q <= 0 {
		q = 1
	}
	scale := r / math.Sqrt(q)
	for i := range pts {
		for j := range pts[i].Coords {
			pts[i].Coords[j] *= scale
		}
	}
	for i := nIn; i < n; i++ {
		pts = append(pts, geom.Point{ID: uint64(i), Coords: sphere(4 * scale)})
		outlierIDs = append(outlierIDs, uint64(i))
	}
	return pts, outlierIDs
}
