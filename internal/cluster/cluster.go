// Package cluster simulates scheduling MapReduce tasks on a shared-nothing
// cluster. The paper's testbed is 40 slave nodes × 8 concurrent tasks; our
// engine runs in-process, so to report paper-comparable end-to-end times we
// replay measured (or modeled) per-task costs through a deterministic
// scheduler and report the makespan.
//
// The makespan of the reduce phase — the cost of the most loaded reducer —
// is exactly the quantity cost(P(D)) that Def. 3.4/3.5 minimize, so the
// simulation reproduces the axis the paper's figures plot.
package cluster

import (
	"container/heap"
	"math/rand"
	"sort"
	"time"
)

// Config describes the simulated cluster.
type Config struct {
	Nodes        int // worker machines
	SlotsPerNode int // concurrent tasks per machine
}

// PaperCluster mirrors the experimental setup in Sec. VI-A: 40 slaves, up to
// 8 reduce tasks each.
var PaperCluster = Config{Nodes: 40, SlotsPerNode: 8}

// Slots returns the total number of concurrent task slots.
func (c Config) Slots() int {
	n := c.Nodes * c.SlotsPerNode
	if n < 1 {
		return 1
	}
	return n
}

// Task is one schedulable unit with a known duration.
type Task struct {
	Name     string
	Duration time.Duration

	// Preferred lists the nodes holding the task's input locally (the DFS
	// block replicas). Empty means no preference. RemotePenalty is the
	// extra time the task pays when scheduled on any other node (the
	// network read of its input). Both are ignored by RunPhase; see
	// RunPhasePlaced.
	Preferred     []int
	RemotePenalty time.Duration
}

// prefers reports whether node is one of the task's preferred nodes.
func (t Task) prefers(node int) bool {
	for _, n := range t.Preferred {
		if n == node {
			return true
		}
	}
	return false
}

// Assignment records where a task ran in the simulation.
type Assignment struct {
	Task  Task
	Slot  int
	Start time.Duration
	End   time.Duration
}

// Schedule is the result of simulating one phase.
type Schedule struct {
	Assignments []Assignment
	Makespan    time.Duration
}

// slotHeap is a min-heap of (finish time, slot index).
type slotState struct {
	free time.Duration
	id   int
}

type slotHeap []slotState

func (h slotHeap) Len() int { return len(h) }
func (h slotHeap) Less(i, j int) bool {
	if h[i].free != h[j].free {
		return h[i].free < h[j].free
	}
	return h[i].id < h[j].id
}
func (h slotHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *slotHeap) Push(x any)     { *h = append(*h, x.(slotState)) }
func (h *slotHeap) Pop() any       { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h slotHeap) Peek() slotState { return h[0] }

// RunPhase simulates executing tasks on the cluster using longest-
// processing-time-first list scheduling (the classic 4/3-approximation for
// makespan, and how Hadoop's slowest-task-dominates behaviour shakes out).
// It is deterministic: ties are broken by task name and slot index.
func RunPhase(cfg Config, tasks []Task) Schedule {
	sorted := append([]Task(nil), tasks...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Duration != sorted[j].Duration {
			return sorted[i].Duration > sorted[j].Duration
		}
		return sorted[i].Name < sorted[j].Name
	})

	h := make(slotHeap, cfg.Slots())
	for i := range h {
		h[i] = slotState{free: 0, id: i}
	}
	heap.Init(&h)

	sched := Schedule{Assignments: make([]Assignment, 0, len(sorted))}
	for _, task := range sorted {
		s := heap.Pop(&h).(slotState)
		a := Assignment{Task: task, Slot: s.id, Start: s.free, End: s.free + task.Duration}
		sched.Assignments = append(sched.Assignments, a)
		if a.End > sched.Makespan {
			sched.Makespan = a.End
		}
		s.free = a.End
		heap.Push(&h, s)
	}
	return sched
}

// RunPhasePlaced simulates a phase with data-locality-aware placement, the
// way Hadoop's scheduler prefers map slots on the datanodes holding the
// input block. Tasks are taken longest-first; each is placed on the slot
// minimizing its completion time, where running on a node outside the
// task's Preferred set adds RemotePenalty (the network read of the input).
// Deterministic: ties break by slot index.
func RunPhasePlaced(cfg Config, tasks []Task) Schedule {
	sorted := append([]Task(nil), tasks...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Duration != sorted[j].Duration {
			return sorted[i].Duration > sorted[j].Duration
		}
		return sorted[i].Name < sorted[j].Name
	})

	slots := cfg.Slots()
	spn := cfg.SlotsPerNode
	if spn < 1 {
		spn = 1
	}
	free := make([]time.Duration, slots)
	sched := Schedule{Assignments: make([]Assignment, 0, len(sorted))}
	for _, task := range sorted {
		best := -1
		var bestEnd time.Duration
		for s := 0; s < slots; s++ {
			d := task.Duration
			if len(task.Preferred) > 0 && !task.prefers(s/spn) {
				d += task.RemotePenalty
			}
			end := free[s] + d
			if best == -1 || end < bestEnd {
				best, bestEnd = s, end
			}
		}
		sched.Assignments = append(sched.Assignments, Assignment{
			Task: task, Slot: best, Start: free[best], End: bestEnd,
		})
		free[best] = bestEnd
		if bestEnd > sched.Makespan {
			sched.Makespan = bestEnd
		}
	}
	return sched
}

// StragglerModel injects Hadoop-style stragglers into a phase simulation:
// each task independently runs Factor× slower with probability Prob
// (machine contention, bad disks — the unpredictable slowdowns speculative
// execution exists for).
type StragglerModel struct {
	Prob   float64
	Factor float64
	Seed   int64
}

// RunPhaseSpeculative simulates a phase under the straggler model, with or
// without speculative execution. With speculation on, a backup copy of a
// straggling task is launched (at the task's originally expected finish
// time, on the then-earliest-free slot) and the task completes when either
// copy does — Hadoop's speculative-execution policy in miniature.
func RunPhaseSpeculative(cfg Config, tasks []Task, model StragglerModel, speculative bool) Schedule {
	rng := rand.New(rand.NewSource(model.Seed))
	type timedTask struct {
		task     Task
		actual   time.Duration // with straggler slowdown
		expected time.Duration // without
	}
	timed := make([]timedTask, len(tasks))
	for i, task := range tasks {
		actual := task.Duration
		if model.Prob > 0 && rng.Float64() < model.Prob {
			actual = time.Duration(float64(task.Duration) * model.Factor)
		}
		timed[i] = timedTask{task: task, actual: actual, expected: task.Duration}
	}
	// Longest-expected-first list scheduling on the actual durations.
	sort.SliceStable(timed, func(i, j int) bool {
		if timed[i].expected != timed[j].expected {
			return timed[i].expected > timed[j].expected
		}
		return timed[i].task.Name < timed[j].task.Name
	})

	free := make([]time.Duration, cfg.Slots())
	earliest := func() int {
		best := 0
		for s := range free {
			if free[s] < free[best] {
				best = s
			}
		}
		return best
	}
	// Pass 1: schedule every primary copy. Backups never preempt or delay
	// primaries (Hadoop speculates only on otherwise-idle capacity), so
	// speculation can never make the phase slower.
	sched := Schedule{}
	type placed struct {
		idx  int
		slot int
	}
	var stragglers []placed
	for i, tt := range timed {
		slot := earliest()
		start := free[slot]
		end := start + tt.actual
		free[slot] = end
		sched.Assignments = append(sched.Assignments, Assignment{
			Task: tt.task, Slot: slot, Start: start, End: end,
		})
		if tt.actual > tt.expected {
			stragglers = append(stragglers, placed{idx: i, slot: slot})
		}
	}

	// Pass 2: launch backups for stragglers on idle capacity, earliest
	// noticed first. The scheduler notices a straggler when it misses its
	// expected finish; the backup runs at normal speed and the task
	// completes when either copy does.
	if speculative {
		noticedAt := func(p placed) time.Duration {
			return sched.Assignments[p.idx].Start + timed[p.idx].expected
		}
		sort.SliceStable(stragglers, func(a, b int) bool {
			return noticedAt(stragglers[a]) < noticedAt(stragglers[b])
		})
		for _, st := range stragglers {
			a := &sched.Assignments[st.idx]
			noticed := noticedAt(st)
			backupSlot := -1
			var backupStart time.Duration
			for s := range free {
				if s == st.slot {
					continue
				}
				start := free[s]
				if start < noticed {
					start = noticed
				}
				if backupSlot == -1 || start < backupStart {
					backupSlot, backupStart = s, start
				}
			}
			if backupSlot >= 0 {
				if backupEnd := backupStart + timed[st.idx].expected; backupEnd < a.End {
					a.End = backupEnd
					free[backupSlot] = backupEnd
				}
			}
		}
	}
	for _, a := range sched.Assignments {
		if a.End > sched.Makespan {
			sched.Makespan = a.End
		}
	}
	return sched
}

// PhaseBreakdown is the simulated wall time of each MapReduce stage,
// matching the axes of Fig. 10.
type PhaseBreakdown struct {
	Preprocess time.Duration
	Map        time.Duration
	Shuffle    time.Duration
	Reduce     time.Duration
}

// Total returns the end-to-end simulated time.
func (b PhaseBreakdown) Total() time.Duration {
	return b.Preprocess + b.Map + b.Shuffle + b.Reduce
}

// Add returns the stage-wise sum of two breakdowns (used to accumulate the
// two jobs of the Domain baseline, or preprocessing + detection of DMT).
func (b PhaseBreakdown) Add(o PhaseBreakdown) PhaseBreakdown {
	return PhaseBreakdown{
		Preprocess: b.Preprocess + o.Preprocess,
		Map:        b.Map + o.Map,
		Shuffle:    b.Shuffle + o.Shuffle,
		Reduce:     b.Reduce + o.Reduce,
	}
}

// Imbalance returns max/mean load across the busy slots of a schedule — a
// load-balance quality metric used by the partitioning experiments. A
// perfectly balanced phase returns 1. An empty phase returns 0.
func (s Schedule) Imbalance() float64 {
	if len(s.Assignments) == 0 {
		return 0
	}
	load := map[int]time.Duration{}
	for _, a := range s.Assignments {
		load[a.Slot] += a.Task.Duration
	}
	var sum time.Duration
	var max time.Duration
	for _, l := range load {
		sum += l
		if l > max {
			max = l
		}
	}
	mean := float64(sum) / float64(len(load))
	if mean == 0 {
		return 0
	}
	return float64(max) / mean
}
