package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func TestRunPhasePlacedNoPreferencesMatchesLPTBounds(t *testing.T) {
	ts := tasks(5*time.Second, 4*time.Second, 3*time.Second, 3*time.Second)
	cfg := Config{Nodes: 2, SlotsPerNode: 1}
	placed := RunPhasePlaced(cfg, ts)
	plain := RunPhase(cfg, ts)
	if placed.Makespan != plain.Makespan {
		t.Errorf("no-preference placed makespan %v != LPT %v", placed.Makespan, plain.Makespan)
	}
}

func TestRunPhasePlacedHonorsLocality(t *testing.T) {
	// Two nodes, one slot each; two equal tasks, each preferring a
	// different node with a heavy remote penalty. Locality-aware placement
	// runs both locally in parallel.
	cfg := Config{Nodes: 2, SlotsPerNode: 1}
	ts := []Task{
		{Name: "a", Duration: 4 * time.Second, Preferred: []int{0}, RemotePenalty: 10 * time.Second},
		{Name: "b", Duration: 4 * time.Second, Preferred: []int{1}, RemotePenalty: 10 * time.Second},
	}
	s := RunPhasePlaced(cfg, ts)
	if s.Makespan != 4*time.Second {
		t.Errorf("makespan %v, want 4s (both local)", s.Makespan)
	}
	for _, a := range s.Assignments {
		node := a.Slot / cfg.SlotsPerNode
		if !a.Task.prefers(node) {
			t.Errorf("task %s placed on non-preferred node %d", a.Task.Name, node)
		}
	}
}

func TestRunPhasePlacedAcceptsRemoteWhenWorthIt(t *testing.T) {
	// One node holds all data, but the remote penalty is small: the
	// scheduler should still spread tasks.
	cfg := Config{Nodes: 2, SlotsPerNode: 1}
	ts := []Task{
		{Name: "a", Duration: 10 * time.Second, Preferred: []int{0}, RemotePenalty: time.Second},
		{Name: "b", Duration: 10 * time.Second, Preferred: []int{0}, RemotePenalty: time.Second},
	}
	s := RunPhasePlaced(cfg, ts)
	if s.Makespan != 11*time.Second {
		t.Errorf("makespan %v, want 11s (one task goes remote)", s.Makespan)
	}
}

func TestRunPhasePlacedPrefersLocalQueueWhenRemoteIsWorse(t *testing.T) {
	// Remote penalty exceeds queueing delay: both tasks stack on the
	// preferred node.
	cfg := Config{Nodes: 2, SlotsPerNode: 1}
	ts := []Task{
		{Name: "a", Duration: 2 * time.Second, Preferred: []int{0}, RemotePenalty: 30 * time.Second},
		{Name: "b", Duration: 2 * time.Second, Preferred: []int{0}, RemotePenalty: 30 * time.Second},
	}
	s := RunPhasePlaced(cfg, ts)
	if s.Makespan != 4*time.Second {
		t.Errorf("makespan %v, want 4s (queue locally)", s.Makespan)
	}
}

func TestRunPhasePlacedBeatsObliviousOnLocalityWorkload(t *testing.T) {
	// Many block-reads across a small cluster: honoring replica placement
	// must not be worse than ignoring it (treating every task as remote).
	rng := rand.New(rand.NewSource(3))
	cfg := Config{Nodes: 4, SlotsPerNode: 2}
	var placedTasks, obliviousTasks []Task
	for i := 0; i < 64; i++ {
		d := time.Duration(1+rng.Intn(5)) * time.Second
		penalty := 2 * time.Second
		pref := []int{rng.Intn(4), rng.Intn(4)}
		placedTasks = append(placedTasks, Task{
			Name: fmt.Sprintf("t%02d", i), Duration: d, Preferred: pref, RemotePenalty: penalty,
		})
		// Oblivious: every read is remote.
		obliviousTasks = append(obliviousTasks, Task{
			Name: fmt.Sprintf("t%02d", i), Duration: d + penalty,
		})
	}
	placed := RunPhasePlaced(cfg, placedTasks)
	oblivious := RunPhase(cfg, obliviousTasks)
	if placed.Makespan > oblivious.Makespan {
		t.Errorf("locality-aware %v worse than oblivious %v", placed.Makespan, oblivious.Makespan)
	}
}

func TestRunPhasePlacedEmpty(t *testing.T) {
	s := RunPhasePlaced(Config{Nodes: 2, SlotsPerNode: 2}, nil)
	if s.Makespan != 0 || len(s.Assignments) != 0 {
		t.Errorf("empty phase: %+v", s)
	}
}

func TestRunPhasePlacedDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var ts []Task
	for i := 0; i < 50; i++ {
		ts = append(ts, Task{
			Name:          fmt.Sprintf("t%02d", i),
			Duration:      time.Duration(rng.Intn(900)) * time.Millisecond,
			Preferred:     []int{rng.Intn(3)},
			RemotePenalty: time.Duration(rng.Intn(300)) * time.Millisecond,
		})
	}
	cfg := Config{Nodes: 3, SlotsPerNode: 2}
	a, b := RunPhasePlaced(cfg, ts), RunPhasePlaced(cfg, ts)
	if a.Makespan != b.Makespan || len(a.Assignments) != len(b.Assignments) {
		t.Fatal("nondeterministic")
	}
	for i := range a.Assignments {
		if a.Assignments[i].Slot != b.Assignments[i].Slot {
			t.Fatal("assignment order differs")
		}
	}
}
