package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func tasks(durations ...time.Duration) []Task {
	ts := make([]Task, len(durations))
	for i, d := range durations {
		ts[i] = Task{Name: fmt.Sprintf("t%d", i), Duration: d}
	}
	return ts
}

func TestSlots(t *testing.T) {
	if got := (Config{Nodes: 40, SlotsPerNode: 8}).Slots(); got != 320 {
		t.Errorf("Slots = %d, want 320", got)
	}
	if got := (Config{}).Slots(); got != 1 {
		t.Errorf("zero config Slots = %d, want 1", got)
	}
}

func TestRunPhaseSingleSlotSumsDurations(t *testing.T) {
	cfg := Config{Nodes: 1, SlotsPerNode: 1}
	s := RunPhase(cfg, tasks(3*time.Second, 1*time.Second, 2*time.Second))
	if s.Makespan != 6*time.Second {
		t.Errorf("Makespan = %v, want 6s", s.Makespan)
	}
}

func TestRunPhaseParallelism(t *testing.T) {
	cfg := Config{Nodes: 1, SlotsPerNode: 3}
	s := RunPhase(cfg, tasks(3*time.Second, 3*time.Second, 3*time.Second))
	if s.Makespan != 3*time.Second {
		t.Errorf("Makespan = %v, want 3s (all parallel)", s.Makespan)
	}
}

func TestRunPhaseLPTBalancing(t *testing.T) {
	// LPT on 2 slots with tasks 5,4,3,3,3 → slot loads 5+3, 4+3+... best: 5+4=9? LPT:
	// 5→s0, 4→s1, 3→s1(7), 3→s0(8), 3→s1(10)? no: after 5,4: s1 free at 4 < s0 at 5,
	// 3→s1 (7), next 3→s0 (8), next 3→s1 (10). Makespan 10? Let's verify: total 18,
	// lower bound 9. LPT gives 10 here. The test pins the deterministic result.
	cfg := Config{Nodes: 1, SlotsPerNode: 2}
	s := RunPhase(cfg, tasks(5*time.Second, 4*time.Second, 3*time.Second, 3*time.Second, 3*time.Second))
	if s.Makespan != 9*time.Second && s.Makespan != 10*time.Second {
		t.Errorf("Makespan = %v, want 9s or 10s", s.Makespan)
	}
	// And it must never beat the theoretical lower bound.
	if s.Makespan < 9*time.Second {
		t.Errorf("Makespan %v below lower bound", s.Makespan)
	}
}

func TestRunPhaseDominatedByLongestTask(t *testing.T) {
	cfg := Config{Nodes: 10, SlotsPerNode: 1}
	ts := tasks(100*time.Second, time.Second, time.Second)
	s := RunPhase(cfg, ts)
	if s.Makespan != 100*time.Second {
		t.Errorf("Makespan = %v, want 100s (straggler dominates)", s.Makespan)
	}
}

func TestRunPhaseEmpty(t *testing.T) {
	s := RunPhase(Config{Nodes: 2, SlotsPerNode: 2}, nil)
	if s.Makespan != 0 || len(s.Assignments) != 0 {
		t.Errorf("empty phase: %+v", s)
	}
	if s.Imbalance() != 0 {
		t.Errorf("empty imbalance = %g", s.Imbalance())
	}
}

func TestRunPhaseDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ts := make([]Task, 100)
	for i := range ts {
		ts[i] = Task{Name: fmt.Sprintf("t%03d", i), Duration: time.Duration(rng.Intn(1000)) * time.Millisecond}
	}
	a := RunPhase(PaperCluster, ts)
	b := RunPhase(PaperCluster, ts)
	if a.Makespan != b.Makespan {
		t.Errorf("nondeterministic makespan %v vs %v", a.Makespan, b.Makespan)
	}
	for i := range a.Assignments {
		x, y := a.Assignments[i], b.Assignments[i]
		if x.Task.Name != y.Task.Name || x.Slot != y.Slot || x.Start != y.Start || x.End != y.End {
			t.Fatalf("assignment %d differs", i)
		}
	}
}

func TestRunPhaseNoSlotOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ts := make([]Task, 200)
	for i := range ts {
		ts[i] = Task{Name: fmt.Sprintf("t%03d", i), Duration: time.Duration(1+rng.Intn(500)) * time.Millisecond}
	}
	s := RunPhase(Config{Nodes: 3, SlotsPerNode: 2}, ts)
	bySlot := map[int][]Assignment{}
	for _, a := range s.Assignments {
		bySlot[a.Slot] = append(bySlot[a.Slot], a)
	}
	for slot, as := range bySlot {
		for i := 0; i < len(as); i++ {
			for j := i + 1; j < len(as); j++ {
				a, b := as[i], as[j]
				if a.Start < b.End && b.Start < a.End {
					t.Fatalf("slot %d: overlapping tasks %v and %v", slot, a, b)
				}
			}
		}
	}
}

func TestRunPhaseMakespanBounds(t *testing.T) {
	// Property: makespan >= max duration, makespan >= total/slots, and
	// makespan <= total (single-slot worst case bound).
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(100)
		ts := make([]Task, n)
		var total, max time.Duration
		for i := range ts {
			d := time.Duration(1+rng.Intn(10000)) * time.Microsecond
			ts[i] = Task{Name: fmt.Sprintf("t%04d", i), Duration: d}
			total += d
			if d > max {
				max = d
			}
		}
		cfg := Config{Nodes: 1 + rng.Intn(5), SlotsPerNode: 1 + rng.Intn(4)}
		s := RunPhase(cfg, ts)
		lower := total / time.Duration(cfg.Slots())
		if s.Makespan < max || s.Makespan < lower {
			t.Fatalf("trial %d: makespan %v below bounds (max %v, mean %v)", trial, s.Makespan, max, lower)
		}
		if s.Makespan > total {
			t.Fatalf("trial %d: makespan %v exceeds serial time %v", trial, s.Makespan, total)
		}
	}
}

func TestImbalance(t *testing.T) {
	cfg := Config{Nodes: 1, SlotsPerNode: 2}
	balanced := RunPhase(cfg, tasks(2*time.Second, 2*time.Second))
	if got := balanced.Imbalance(); got != 1 {
		t.Errorf("balanced imbalance = %g, want 1", got)
	}
	skewed := RunPhase(cfg, tasks(9*time.Second, time.Second))
	if got := skewed.Imbalance(); got <= 1 {
		t.Errorf("skewed imbalance = %g, want > 1", got)
	}
}

func TestPhaseBreakdown(t *testing.T) {
	a := PhaseBreakdown{Preprocess: 1, Map: 2, Shuffle: 3, Reduce: 4}
	b := PhaseBreakdown{Preprocess: 10, Map: 20, Shuffle: 30, Reduce: 40}
	sum := a.Add(b)
	if sum != (PhaseBreakdown{11, 22, 33, 44}) {
		t.Errorf("Add = %+v", sum)
	}
	if a.Total() != 10 {
		t.Errorf("Total = %v", a.Total())
	}
}
