package cluster

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

func stragglerTasks(n int, d time.Duration) []Task {
	ts := make([]Task, n)
	for i := range ts {
		ts[i] = Task{Name: fmt.Sprintf("t%03d", i), Duration: d}
	}
	return ts
}

func TestSpeculativeNoStragglersMatchesPlain(t *testing.T) {
	cfg := Config{Nodes: 4, SlotsPerNode: 2}
	ts := stragglerTasks(16, 3*time.Second)
	none := StragglerModel{Prob: 0, Factor: 5, Seed: 1}
	a := RunPhaseSpeculative(cfg, ts, none, false)
	b := RunPhaseSpeculative(cfg, ts, none, true)
	if a.Makespan != b.Makespan {
		t.Errorf("no stragglers: speculation changed makespan %v vs %v", a.Makespan, b.Makespan)
	}
	// 16 equal tasks on 8 slots: exactly two waves.
	if a.Makespan != 6*time.Second {
		t.Errorf("makespan %v, want 6s", a.Makespan)
	}
}

func TestSpeculativeMitigatesStragglers(t *testing.T) {
	cfg := Config{Nodes: 8, SlotsPerNode: 1}
	ts := stragglerTasks(8, 4*time.Second)
	model := StragglerModel{Prob: 0.3, Factor: 10, Seed: 7}
	plain := RunPhaseSpeculative(cfg, ts, model, false)
	spec := RunPhaseSpeculative(cfg, ts, model, true)
	if plain.Makespan <= 4*time.Second {
		t.Fatalf("fixture produced no stragglers (makespan %v); adjust seed", plain.Makespan)
	}
	if spec.Makespan >= plain.Makespan {
		t.Errorf("speculation did not help: %v vs %v", spec.Makespan, plain.Makespan)
	}
	// A backup launched at the expected finish (4s) and running 4s bounds
	// the straggler's completion at ~8s.
	if spec.Makespan > 9*time.Second {
		t.Errorf("speculative makespan %v, want <= ~8s", spec.Makespan)
	}
}

func TestSpeculativeNeverHurts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		cfg := Config{Nodes: 1 + rng.Intn(6), SlotsPerNode: 1 + rng.Intn(3)}
		n := 1 + rng.Intn(40)
		ts := make([]Task, n)
		for i := range ts {
			ts[i] = Task{Name: fmt.Sprintf("t%03d", i), Duration: time.Duration(1+rng.Intn(10)) * time.Second}
		}
		model := StragglerModel{Prob: rng.Float64() * 0.5, Factor: 2 + rng.Float64()*10, Seed: int64(trial)}
		plain := RunPhaseSpeculative(cfg, ts, model, false)
		spec := RunPhaseSpeculative(cfg, ts, model, true)
		if spec.Makespan > plain.Makespan {
			t.Fatalf("trial %d: speculation hurt: %v > %v", trial, spec.Makespan, plain.Makespan)
		}
	}
}

func TestSpeculativeSingleSlotCannotBackUp(t *testing.T) {
	cfg := Config{Nodes: 1, SlotsPerNode: 1}
	ts := stragglerTasks(2, 2*time.Second)
	model := StragglerModel{Prob: 1, Factor: 3, Seed: 1}
	plain := RunPhaseSpeculative(cfg, ts, model, false)
	spec := RunPhaseSpeculative(cfg, ts, model, true)
	// With one slot there is nowhere to run a backup concurrently; the
	// backup path must not *hurt*, and can help at most marginally.
	if spec.Makespan > plain.Makespan {
		t.Errorf("single slot: speculation hurt: %v > %v", spec.Makespan, plain.Makespan)
	}
}

func TestSpeculativeDeterministic(t *testing.T) {
	cfg := Config{Nodes: 3, SlotsPerNode: 2}
	ts := stragglerTasks(20, time.Second)
	model := StragglerModel{Prob: 0.4, Factor: 6, Seed: 11}
	a := RunPhaseSpeculative(cfg, ts, model, true)
	b := RunPhaseSpeculative(cfg, ts, model, true)
	if a.Makespan != b.Makespan {
		t.Error("nondeterministic")
	}
}
