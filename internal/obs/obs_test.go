package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "a counter"); again != c {
		t.Error("re-registration returned a different counter")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}
}

func TestCounterLabels(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs_total", "", L("ep", "ingest"))
	b := r.Counter("reqs_total", "", L("ep", "score"))
	if a == b {
		t.Fatal("different label sets shared one counter")
	}
	a.Inc()
	if b.Value() != 0 {
		t.Error("label isolation broken")
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 0.7, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.2 {
		t.Errorf("sum = %g, want 556.2", h.Sum())
	}
	// ranks: 1,2 -> le=1; 3 -> le=10; 4 -> le=100; 5 -> +Inf (clamped to 100)
	if q := h.Quantile(0.5); q != 10 {
		t.Errorf("p50 = %g, want 10", q)
	}
	if q := h.Quantile(0.99); q != 100 {
		t.Errorf("p99 = %g, want 100", q)
	}
	empty := r.Histogram("lat2", "", []float64{1})
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty p50 = %g, want 0", q)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	h := r.Histogram("h", "", []float64{1, 2, 4})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 5))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Errorf("histogram count = %d, want 8000", h.Count())
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("dod_ingest_total", "points ingested").Add(42)
	r.Gauge("dod_window_points", "resident points").Set(7)
	r.GaugeFunc("dod_up", "always one", func() float64 { return 1 })
	h := r.Histogram("dod_latency_seconds", "op latency", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)
	r.Counter("dod_reqs_total", "requests", L("endpoint", "ingest")).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE dod_ingest_total counter",
		"dod_ingest_total 42",
		"# TYPE dod_window_points gauge",
		"dod_window_points 7",
		"dod_up 1",
		"# HELP dod_latency_seconds op latency",
		"# TYPE dod_latency_seconds histogram",
		`dod_latency_seconds_bucket{le="0.001"} 1`,
		`dod_latency_seconds_bucket{le="0.01"} 1`,
		`dod_latency_seconds_bucket{le="+Inf"} 2`,
		"dod_latency_seconds_sum 0.5005",
		"dod_latency_seconds_count 2",
		`dod_reqs_total{endpoint="ingest"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing line %q in:\n%s", want, out)
		}
	}
	// Families must be sorted by name.
	if strings.Index(out, "dod_ingest_total") > strings.Index(out, "dod_window_points") {
		t.Error("families not sorted by name")
	}
}

func TestTrace(t *testing.T) {
	tr := NewTrace("run")
	sp := tr.Start("map")
	time.Sleep(time.Millisecond)
	sp.SetAttr(Int("job", 0)).End()
	tr.Add("reduce", time.Now(), 5*time.Millisecond, Str("algo", "Cell-Based"))
	tr.Add("reduce", time.Now(), 7*time.Millisecond)

	if got := len(tr.Spans()); got != 3 {
		t.Fatalf("spans = %d, want 3", got)
	}
	if s, ok := tr.Find("map"); !ok || s.Duration <= 0 || s.Attr("job") != "0" {
		t.Errorf("map span = %+v ok=%v", s, ok)
	}
	if total := tr.Total("reduce"); total != 12*time.Millisecond {
		t.Errorf("reduce total = %s, want 12ms", total)
	}
	if !strings.Contains(tr.String(), "algo=Cell-Based") {
		t.Errorf("String() missing attrs:\n%s", tr.String())
	}
}

func TestNilTrace(t *testing.T) {
	var tr *Trace
	tr.Add("x", time.Now(), time.Second)
	tr.Start("y").SetAttr(Str("a", "b")).End()
	if tr.Spans() != nil || tr.Total("x") != 0 {
		t.Error("nil trace should be a no-op sink")
	}
	if _, ok := tr.Find("x"); ok {
		t.Error("nil trace Find should report absent")
	}
	_ = tr.String()
}
