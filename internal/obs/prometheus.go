package obs

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// TextContentType is the Content-Type of the Prometheus text exposition
// format v0.0.4, which WritePrometheus emits.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered instrument in the Prometheus
// text exposition format, families sorted by name, members sorted by label
// signature. Values are read with the same atomics the hot paths use, so a
// scrape observes each instrument at one instant (though not the registry
// as a whole — standard Prometheus semantics).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind.promType()); err != nil {
			return err
		}
		for _, m := range f.metrics {
			if err := writeMetric(w, f, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeMetric(w io.Writer, f *family, m *metric) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(m.labels, nil), m.counter.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(m.labels, nil), formatValue(m.gauge.Value()))
		return err
	case kindGaugeFunc:
		v := 0.0
		if m.gaugeFn != nil {
			v = m.gaugeFn()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(m.labels, nil), formatValue(v))
		return err
	case kindHistogram:
		h := m.hist
		var cum int64
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			le := Label{Key: "le", Value: formatValue(bound)}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(m.labels, &le), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		inf := Label{Key: "le", Value: "+Inf"}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(m.labels, &inf), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(m.labels, nil), formatValue(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(m.labels, nil), h.Count())
		return err
	}
	return nil
}

// labelString renders {k="v",...}; extra, when non-nil, is appended last
// (the histogram "le" label). Empty label sets render as nothing.
func labelString(labels []Label, extra *Label) string {
	if len(labels) == 0 && extra == nil {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		// %q escapes quotes, backslashes and newlines exactly as the
		// exposition format requires.
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	if extra != nil {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extra.Key, extra.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a float the way Prometheus expects: integers without
// a decimal point, specials as +Inf/-Inf/NaN.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

// escapeHelp escapes newlines and backslashes in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
