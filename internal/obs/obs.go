// Package obs is the repo-wide observability layer: a dependency-free
// metrics registry (counters, gauges, histograms with atomic hot paths)
// plus lightweight span tracing.
//
// Every subsystem instruments itself against a *Registry — the MapReduce
// driver (internal/core) records per-stage spans, the sliding window
// (internal/stream) and the incremental index (internal/index) record
// ingest/score/evict counters and ring-expansion depth histograms, and the
// serving layer (internal/serve) exposes everything as a Prometheus text
// endpoint. Nothing here imports anything outside the standard library, so
// any package may depend on it without cycles.
//
// Instruments are identified by name plus an ordered label set; asking the
// registry twice for the same (name, labels) returns the same instrument,
// so packages can instrument hot paths without coordinating construction
// order. All instrument operations are safe for concurrent use and lock-free
// on the hot path (a counter increment is one atomic add).
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key="value" dimension of an instrument.
type Label struct {
	Key, Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKind discriminates the instrument families a Registry can hold.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta; negative deltas are ignored (counters are monotonic).
func (c *Counter) Add(delta int64) {
	if delta > 0 {
		c.v.Add(delta)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution with atomic observation.
// Bucket i counts observations <= bounds[i]; a final implicit +Inf bucket
// catches the rest, following the Prometheus cumulative-bucket convention
// at exposition time.
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the observation sum
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of the
// bucket containing it — the standard histogram-quantile estimate, biased
// high by at most one bucket width. Zero observations yield 0; observations
// beyond the last bound yield the last bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start (> 0) with the given growth factor (> 1).
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n bounds start, start+width, ...
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// DurationBuckets are the default latency bounds in seconds: 1µs to ~34s,
// doubling. They cover both sub-millisecond index probes and multi-second
// batch stages.
func DurationBuckets() []float64 { return ExpBuckets(1e-6, 2, 26) }

// metric is one registered instrument instance (a family member).
type metric struct {
	labels    []Label
	signature string
	counter   *Counter
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

// family groups all instruments sharing one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	bounds  []float64 // histograms only
	metrics []*metric
	byKey   map[string]*metric
}

// Registry holds instrument families and renders them as Prometheus text.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// signature flattens a label set into a canonical map key.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// sortLabels returns labels sorted by key, copied.
func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// lookup finds or creates the (family, metric) pair for name+labels,
// enforcing kind consistency within a family.
func (r *Registry) lookup(name, help string, kind metricKind, bounds []float64, labels []Label) *metric {
	labels = sortLabels(labels)
	sig := signature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, byKey: make(map[string]*metric)}
		r.families[name] = f
		r.order = append(r.order, name)
		sort.Strings(r.order)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind.promType(), f.kind.promType()))
	}
	m := f.byKey[sig]
	if m == nil {
		m = &metric{labels: labels, signature: sig}
		switch kind {
		case kindCounter:
			m.counter = &Counter{}
		case kindGauge:
			m.gauge = &Gauge{}
		case kindHistogram:
			h := &Histogram{bounds: append([]float64(nil), f.bounds...)}
			h.counts = make([]atomic.Int64, len(h.bounds)+1)
			m.hist = h
		}
		f.byKey[sig] = m
		f.metrics = append(f.metrics, m)
		sort.Slice(f.metrics, func(i, j int) bool { return f.metrics[i].signature < f.metrics[j].signature })
	}
	return m
}

// Counter returns the counter registered under name+labels, creating it on
// first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, kindCounter, nil, labels).counter
}

// Gauge returns the gauge registered under name+labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.lookup(name, help, kindGauge, nil, labels).gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — for values the owner already tracks (window occupancy, uptime),
// costing nothing on the hot path. Re-registering replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	m := r.lookup(name, help, kindGaugeFunc, nil, labels)
	r.mu.Lock()
	m.gaugeFn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram registered under name+labels with the
// given bucket bounds (used only on first registration of the family).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if len(bounds) == 0 {
		bounds = DurationBuckets()
	}
	return r.lookup(name, help, kindHistogram, bounds, labels).hist
}
