package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// Str builds a string attribute.
func Str(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int64) Attr { return Attr{Key: key, Value: fmt.Sprintf("%d", value)} }

// Span is one timed region of a trace. Spans are immutable once recorded;
// live spans are handled by the Trace that issued them.
type Span struct {
	// Name identifies the operation: "preprocess", "plan", "map",
	// "shuffle", "reduce", "partition.detect", ...
	Name string
	// Start is the span's wall-clock start.
	Start time.Time
	// Duration is the span's length.
	Duration time.Duration
	// Attrs annotate the span (partition id, chosen detector, record
	// counts, ...). Order is insertion order.
	Attrs []Attr
}

// Attr returns the value of the named attribute, or "" if absent.
func (s Span) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Trace is an append-only collection of spans describing one run. All
// methods are safe for concurrent use; a nil *Trace is a valid no-op sink,
// so instrumented code never needs nil checks at call sites.
type Trace struct {
	name  string
	start time.Time

	mu    sync.Mutex
	spans []Span
}

// NewTrace starts an empty trace.
func NewTrace(name string) *Trace {
	return &Trace{name: name, start: time.Now()}
}

// Name returns the trace's name.
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Add records a completed span.
func (t *Trace) Add(name string, start time.Time, d time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Start: start, Duration: d, Attrs: attrs})
	t.mu.Unlock()
}

// LiveSpan is an in-progress span; End records it on its trace.
type LiveSpan struct {
	tr    *Trace
	name  string
	start time.Time
	attrs []Attr
}

// Start opens a live span; call End to record it.
func (t *Trace) Start(name string) *LiveSpan {
	if t == nil {
		return nil
	}
	return &LiveSpan{tr: t, name: name, start: time.Now()}
}

// SetAttr annotates the live span.
func (s *LiveSpan) SetAttr(attrs ...Attr) *LiveSpan {
	if s != nil {
		s.attrs = append(s.attrs, attrs...)
	}
	return s
}

// End records the span with duration time.Since(start).
func (s *LiveSpan) End() {
	if s == nil {
		return
	}
	s.tr.Add(s.name, s.start, time.Since(s.start), s.attrs...)
}

// Spans returns a copy of the recorded spans in recording order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Find returns the first span with the given name.
func (t *Trace) Find(name string) (Span, bool) {
	if t == nil {
		return Span{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.spans {
		if s.Name == name {
			return s, true
		}
	}
	return Span{}, false
}

// Total sums the durations of all spans with the given name — e.g. the
// total "map" wall time across a multi-job run, or the cumulative
// per-partition detection time.
func (t *Trace) Total(name string) time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum time.Duration
	for _, s := range t.spans {
		if s.Name == name {
			sum += s.Duration
		}
	}
	return sum
}

// String renders the trace as an indented table sorted by start time —
// one line per span with duration and attributes.
func (t *Trace) String() string {
	if t == nil {
		return "(nil trace)"
	}
	spans := t.Spans()
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s (%d spans)\n", t.name, len(spans))
	for _, s := range spans {
		fmt.Fprintf(&b, "  %-20s %12s  +%-10s", s.Name, s.Duration.Round(time.Microsecond), s.Start.Sub(t.start).Round(time.Microsecond))
		for _, a := range s.Attrs {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
