// Package pgraph implements an exact proximity-graph detector in the style
// of Amagata et al. (arXiv:2110.08959): a degree-bounded navigable neighbor
// graph is built once per partition, and distance-threshold neighbor counts
// are answered by a best-first walk over the graph.
//
// The walk alone is a heuristic — a navigable graph can fail to reach some
// r-neighbors — so it is used only as a *sound inlier certificate*: every
// neighbor the walk counts is confirmed by a real distance computation, so
// reaching k of them proves the point is an inlier. A point the walk cannot
// certify falls back to a verified expansion (a full linear count), which
// settles its verdict exactly. Verdicts are therefore bit-identical to the
// brute-force reference on every input; the graph only changes how much work
// certification costs.
//
// Construction and search are deterministic for a fixed seed: the insertion
// order is a seeded permutation, adjacency lists are pruned with (distance,
// index) ordering, and both heaps break distance ties by node index.
package pgraph

import (
	"math/rand"

	"dod/internal/geom"
)

// Tunables, exported so the planner's cost models (internal/cost) price the
// same constants the detector executes.
const (
	// Degree is the adjacency-list bound M: each node keeps at most Degree
	// neighbors, selected by the diversity heuristic when links overflow
	// it. Threshold certification only needs to reach ~k near neighbors,
	// so the graph can run leaner than a k-NN recall index; construction
	// cost scales with EfBuild·Degree and dominates the tactic's total,
	// which is why both sit well below the usual HNSW defaults.
	Degree = 8
	// EfBuild is the beam width of the construction-time nearest search:
	// each inserted node links to a diverse subset of the best EfBuild
	// candidates.
	EfBuild = 12
)

// EfSearch returns the query beam width for a neighbor-count threshold k.
// The floor is deliberately wide: in high dimension pairwise distances
// concentrate, so a narrow beam converges prematurely on mediocre
// candidates and sends certifiable inliers to the linear fallback. A
// wide beam costs certified points nothing — their walk still exits at
// the k-th verified neighbor — and only the rare hard points explore it.
func EfSearch(k int) int {
	ef := 4 * k
	if ef < 128 {
		ef = 128
	}
	return ef
}

// WalkBudget returns the hard visit cap of one range-certification walk.
// Past it the walk gives up and the caller falls back to the verified
// linear expansion, so the per-point graph work is strictly bounded.
func WalkBudget(k int) int { return 8 * EfSearch(k) }

// Graph is a navigable proximity graph over a columnar point set. It only
// reads the set; all mutable search state lives in a Scratch.
type Graph struct {
	set   *geom.PointSet
	adj   []int32 // flat adjacency, stride Degree
	deg   []int32 // adjacency lengths
	entry int32   // first inserted node; every walk starts here
}

// cand is one (squared distance, node) search entry. All orderings compare
// (d2, idx) so equal distances resolve deterministically.
type cand struct {
	d2  float64
	idx int32
}

func candLess(a, b cand) bool {
	if a.d2 != b.d2 {
		return a.d2 < b.d2
	}
	return a.idx < b.idx
}

// Scratch holds the reusable per-goroutine search state: an epoch-marked
// visited array and the two walk heaps. One Scratch serves any number of
// sequential queries against graphs over sets of at most n points.
type Scratch struct {
	mark  []uint32
	epoch uint32
	heap  []cand // min-heap of frontier candidates
	res   []cand // max-heap of the best ef results
}

// NewScratch returns search scratch for point sets of up to n points.
func NewScratch(n int) *Scratch {
	return &Scratch{mark: make([]uint32, n)}
}

func (sc *Scratch) reset() {
	sc.epoch++
	if sc.epoch == 0 { // wrapped: clear marks once and restart epochs
		for i := range sc.mark {
			sc.mark[i] = 0
		}
		sc.epoch = 1
	}
	sc.heap = sc.heap[:0]
	sc.res = sc.res[:0]
}

func (sc *Scratch) visited(i int32) bool { return sc.mark[i] == sc.epoch }
func (sc *Scratch) visit(i int32)        { sc.mark[i] = sc.epoch }

// ---- small inline binary heaps (no container/heap interface churn) ----

func heapPush(h *[]cand, c cand, less func(a, b cand) bool) {
	*h = append(*h, c)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !less((*h)[i], (*h)[p]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func heapPop(h *[]cand, less func(a, b cand) bool) cand {
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(*h) && less((*h)[l], (*h)[small]) {
			small = l
		}
		if r < len(*h) && less((*h)[r], (*h)[small]) {
			small = r
		}
		if small == i {
			break
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
	return top
}

func candMore(a, b cand) bool { return candLess(b, a) }

// Build constructs the graph over all of set's points by incremental
// insertion in a seeded random order, returning the graph and the number of
// distance computations spent. Identical (set, seed) inputs build identical
// graphs regardless of caller concurrency: construction itself is
// sequential and seeded.
func Build(set *geom.PointSet, seed int64) (*Graph, int64) {
	n := set.Len()
	g := &Graph{set: set, adj: make([]int32, n*Degree), deg: make([]int32, n)}
	var comps int64
	if n == 0 {
		return g, 0
	}
	order := rand.New(rand.NewSource(seed)).Perm(n)
	g.entry = int32(order[0])
	sc := NewScratch(n)
	for t := 1; t < n; t++ {
		node := int32(order[t])
		nearest := g.searchNearest(set.CoordsAt(int(node)), EfBuild, sc, &comps)
		// Diverse selection rather than plain nearest: clustered data would
		// otherwise fill every adjacency list with same-cluster nodes and
		// leave the graph non-navigable across clusters.
		links := g.selectDiverse(nearest, &comps)
		for _, c := range links {
			g.setAdj(node, c)
			g.link(c.idx, node, c.d2, &comps)
		}
	}
	return g, comps
}

// selectDiverse picks at most Degree candidates from cands (ascending by
// (d2, idx)) with the classic navigable-graph heuristic: a candidate is
// kept only if it is closer to the subject than to every already-kept
// neighbor, so each kept link covers a distinct direction — near links
// into the local cluster, far links across clusters. Leftover capacity is
// filled with the nearest rejected candidates.
func (g *Graph) selectDiverse(cands []cand, comps *int64) []cand {
	kept := make([]cand, 0, Degree)
	rejected := make([]cand, 0, len(cands))
	for _, c := range cands {
		if len(kept) == Degree {
			break
		}
		diverse := true
		for _, s := range kept {
			*comps += 1
			if g.set.Dist2At(int(c.idx), int(s.idx)) < c.d2 {
				diverse = false
				break
			}
		}
		if diverse {
			kept = append(kept, c)
		} else {
			rejected = append(rejected, c)
		}
	}
	for _, c := range rejected {
		if len(kept) == Degree {
			break
		}
		kept = append(kept, c)
	}
	return kept
}

// setAdj appends v to u's adjacency without pruning; only valid while u
// has spare capacity (a freshly inserted node linking its selection).
func (g *Graph) setAdj(u int32, v cand) {
	base := int(u) * Degree
	d := g.deg[u]
	if d < Degree {
		g.adj[base+int(d)] = v.idx
		g.deg[u] = d + 1
	}
}

// link adds v to u's adjacency list. A full list is re-selected from the
// current neighbors plus v with the same diversity heuristic used at
// insertion, which keeps the graph degree-bounded without evicting the
// long-range links navigation depends on.
func (g *Graph) link(u, v int32, d2 float64, comps *int64) {
	base := int(u) * Degree
	d := g.deg[u]
	for i := int32(0); i < d; i++ {
		if g.adj[base+int(i)] == v {
			return // already linked (mutual EfBuild candidates)
		}
	}
	if d < Degree {
		g.adj[base+int(d)] = v
		g.deg[u] = d + 1
		return
	}
	cands := make([]cand, 0, Degree+1)
	for i := 0; i < Degree; i++ {
		w := g.adj[base+i]
		*comps += 1
		cands = append(cands, cand{d2: g.set.Dist2At(int(u), int(w)), idx: w})
	}
	cands = append(cands, cand{d2: d2, idx: v})
	for i := 1; i < len(cands); i++ {
		for j := i; j > 0 && candLess(cands[j], cands[j-1]); j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	sel := g.selectDiverse(cands, comps)
	for i, c := range sel {
		g.adj[base+i] = c.idx
	}
	g.deg[u] = int32(len(sel))
}

// searchNearest runs the beam search toward q and returns up to ef visited
// nodes sorted ascending by (distance, index). Every returned node carries a
// real computed distance.
func (g *Graph) searchNearest(q []float64, ef int, sc *Scratch, comps *int64) []cand {
	sc.reset()
	set := g.set
	sc.visit(g.entry)
	*comps += 1
	e := cand{d2: dist2Coords(set, int(g.entry), q), idx: g.entry}
	heapPush(&sc.heap, e, candLess)
	heapPush(&sc.res, e, candMore)

	for len(sc.heap) > 0 {
		c := heapPop(&sc.heap, candLess)
		if len(sc.res) >= ef && candLess(sc.res[0], c) {
			break // nearest frontier is farther than the worst kept result
		}
		base := int(c.idx) * Degree
		for i := int32(0); i < g.deg[c.idx]; i++ {
			nb := g.adj[base+int(i)]
			if sc.visited(nb) {
				continue
			}
			sc.visit(nb)
			*comps += 1
			nc := cand{d2: dist2Coords(set, int(nb), q), idx: nb}
			if len(sc.res) < ef || candLess(nc, sc.res[0]) {
				heapPush(&sc.heap, nc, candLess)
				heapPush(&sc.res, nc, candMore)
				if len(sc.res) > ef {
					heapPop(&sc.res, candMore)
				}
			}
		}
	}
	out := append([]cand(nil), sc.res...)
	// Heap order is partial; sort the small result list deterministically.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && candLess(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// CountWithin walks the graph outward from point qi — the query point is
// itself a node, so the walk starts at its own adjacency rather than
// navigating from a global entry — and counts distinct verified neighbors
// within r² of it (the point itself, identified by skipID, never counts).
// It returns certified=true as soon as k neighbors are confirmed — a sound
// inlier certificate, since every counted neighbor cost a real distance
// computation. If the beam terminates or the visit budget runs out first,
// certified is false and the count is a lower bound only: the caller must
// fall back to an exact expansion.
func (g *Graph) CountWithin(qi int, r2 float64, k int, sc *Scratch) (found int, certified bool, comps int64) {
	set := g.set
	q := set.CoordsAt(qi)
	skipID := set.IDs[qi]
	ef := EfSearch(k)
	budget := WalkBudget(k)

	sc.reset()
	start := int32(qi)
	sc.visit(start)
	comps++
	e := cand{d2: dist2Coords(set, int(start), q), idx: start}
	if e.d2 <= r2 && set.IDs[e.idx] != skipID {
		found++
		if found >= k {
			return found, true, comps
		}
	}
	heapPush(&sc.heap, e, candLess)
	heapPush(&sc.res, e, candMore)
	visits := 1

	for len(sc.heap) > 0 && visits < budget {
		c := heapPop(&sc.heap, candLess)
		if len(sc.res) >= ef && candLess(sc.res[0], c) {
			break
		}
		base := int(c.idx) * Degree
		for i := int32(0); i < g.deg[c.idx]; i++ {
			nb := g.adj[base+int(i)]
			if sc.visited(nb) {
				continue
			}
			sc.visit(nb)
			visits++
			comps++
			nc := cand{d2: dist2Coords(set, int(nb), q), idx: nb}
			if nc.d2 <= r2 && set.IDs[nb] != skipID {
				found++
				if found >= k {
					return found, true, comps
				}
			}
			if len(sc.res) < ef || candLess(nc, sc.res[0]) {
				heapPush(&sc.heap, nc, candLess)
				heapPush(&sc.res, nc, candMore)
				if len(sc.res) > ef {
					heapPop(&sc.res, candMore)
				}
			}
			if visits >= budget {
				break
			}
		}
	}
	return found, false, comps
}

// dist2Coords is the squared distance between set point i and coordinate
// row q.
func dist2Coords(set *geom.PointSet, i int, q []float64) float64 {
	row := set.CoordsAt(i)
	var d2 float64
	for j, v := range q {
		d := row[j] - v
		d2 += d * d
	}
	return d2
}
