package pgraph

import (
	"testing"

	"dod/internal/geom"
	"dod/internal/synth"
)

func setOf(pts []geom.Point) *geom.PointSet {
	s := geom.NewPointSet(pts[0].Dim(), len(pts))
	for _, p := range pts {
		s.Append(p)
	}
	return s
}

// trueCount is the reference linear neighbor count.
func trueCount(s *geom.PointSet, i int, r2 float64) int {
	n, _ := s.CountWithin2Coords(s.CoordsAt(i), s.IDs[i], 0, s.Len(), r2)
	return n
}

// TestCertificateSound is the guarantee the detector's exactness rests on:
// whenever a walk certifies a point, the point truly has at least k
// neighbors within r. (The converse may fail — that is what the fallback
// is for.)
func TestCertificateSound(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		pts, _ := synth.HighDimPlanted(1500, 16, 4, 0.05, seed)
		s := setOf(pts)
		g, _ := Build(s, seed)
		sc := NewScratch(s.Len())
		r2 := 16.0
		const k = 4
		for i := 0; i < s.Len(); i++ {
			found, certified, _ := g.CountWithin(i, r2, k, sc)
			if certified && found < k {
				t.Fatalf("seed %d point %d: certified with found=%d < k=%d", seed, i, found, k)
			}
			if certified && trueCount(s, i, r2) < k {
				t.Fatalf("seed %d point %d: certified but true count %d < k",
					seed, i, trueCount(s, i, r2))
			}
		}
	}
}

// TestBuildDeterministic: identical (set, seed) must build identical
// graphs — adjacency, degrees, entry, and comp counts.
func TestBuildDeterministic(t *testing.T) {
	pts := synth.GaussianCloud(800, 8, 5)
	s := setOf(pts)
	g1, c1 := Build(s, 42)
	g2, c2 := Build(s, 42)
	if c1 != c2 || g1.entry != g2.entry {
		t.Fatalf("build diverged: comps %d vs %d, entry %d vs %d", c1, c2, g1.entry, g2.entry)
	}
	for i := range g1.adj {
		if g1.adj[i] != g2.adj[i] {
			t.Fatalf("adjacency diverges at %d", i)
		}
	}
	for i := range g1.deg {
		if g1.deg[i] != g2.deg[i] {
			t.Fatalf("degree diverges at node %d", i)
		}
	}
}

// TestDegreeBound: no adjacency list may exceed Degree.
func TestDegreeBound(t *testing.T) {
	pts, _ := synth.HighDimPlanted(1000, 32, 4, 0.02, 7)
	s := setOf(pts)
	g, _ := Build(s, 7)
	for i, d := range g.deg {
		if d < 0 || d > Degree {
			t.Fatalf("node %d degree %d out of [0, %d]", i, d, Degree)
		}
	}
}

// TestHighCertificationOnClusters: on well-clustered data nearly every
// inlier must certify from its own adjacency — the property that makes the
// tactic sub-quadratic.
func TestHighCertificationOnClusters(t *testing.T) {
	pts, planted := synth.HighDimPlanted(3000, 32, 4, 0.01, 3)
	s := setOf(pts)
	g, _ := Build(s, 1)
	sc := NewScratch(s.Len())
	fallbacks := 0
	for i := 0; i < s.Len(); i++ {
		if _, certified, _ := g.CountWithin(i, 16.0, 4, sc); !certified {
			fallbacks++
		}
	}
	// Planted outliers can never certify; allow a small straggler margin
	// beyond them.
	if limit := len(planted) + s.Len()/20; fallbacks > limit {
		t.Fatalf("%d fallbacks out of %d points (planted %d, limit %d)",
			fallbacks, s.Len(), len(planted), limit)
	}
}

func TestTinySets(t *testing.T) {
	g, comps := Build(geom.NewPointSet(2, 0), 1)
	if comps != 0 {
		t.Fatalf("empty build cost %d comps", comps)
	}
	_ = g

	one := setOf([]geom.Point{{ID: 9, Coords: []float64{1, 1}}})
	g, _ = Build(one, 1)
	sc := NewScratch(1)
	found, certified, _ := g.CountWithin(0, 100, 1, sc)
	if certified || found != 0 {
		t.Fatalf("single point: found=%d certified=%v, want 0/false", found, certified)
	}
}

func TestWalkBudgetBounds(t *testing.T) {
	if EfSearch(1) != 128 || EfSearch(100) != 400 {
		t.Fatalf("EfSearch: got %d, %d", EfSearch(1), EfSearch(100))
	}
	if WalkBudget(1) != 8*128 {
		t.Fatalf("WalkBudget(1) = %d", WalkBudget(1))
	}
}
