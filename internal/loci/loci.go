// Package loci implements LOCI outlier detection (Papadimitriou et al.,
// ICDE 2003 — the paper's reference [22]) as the second demonstration of
// the DOD framework's generality (Sec. III-B): like distance-threshold
// detection and DBSCAN, LOCI needs only a bounded neighborhood around each
// point, so the supporting-area partitioning lets every partition be
// processed in isolation.
//
// The implementation is the fixed-radius ("single granularity") LOCI test:
// for sampling radius r and counting factor α, a point p is an outlier iff
//
//	MDEF(p)   = 1 − n(p, αr) / n̂(p, r, α)      exceeds
//	kσ · σMDEF = kσ · σ(n(q, αr)) / n̂(p, r, α)
//
// where n(q, αr) counts points within αr of q (including q itself), and
// n̂/σ are the mean/standard deviation of n(q, αr) over all q within r of p
// (including p). Intuitively: p is anomalous when its local density sits
// far below the typical local density of its neighborhood.
package loci

import (
	"fmt"
	"math"
	"sort"

	"dod/internal/geom"
)

// Params configure the LOCI test.
type Params struct {
	// R is the sampling-neighborhood radius.
	R float64
	// Alpha is the counting-radius factor in (0, 1]; the canonical LOCI
	// value is 0.5. Zero selects 0.5.
	Alpha float64
	// KSigma is the deviation threshold; the canonical value is 3. Zero
	// selects 3.
	KSigma float64
}

func (p Params) withDefaults() Params {
	if p.Alpha == 0 {
		p.Alpha = 0.5
	}
	if p.KSigma == 0 {
		p.KSigma = 3
	}
	return p
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	p2 := p.withDefaults()
	if p2.R <= 0 {
		return fmt.Errorf("loci: r must be positive, got %g", p.R)
	}
	if p2.Alpha <= 0 || p2.Alpha > 1 {
		return fmt.Errorf("loci: alpha must be in (0, 1], got %g", p.Alpha)
	}
	if p2.KSigma <= 0 {
		return fmt.Errorf("loci: kSigma must be positive, got %g", p.KSigma)
	}
	return nil
}

// SupportRadius returns the supporting-area extension LOCI needs: every
// point within r of a core point contributes its αr-count, whose own
// neighborhood reaches another αr further out.
func (p Params) SupportRadius() float64 {
	p = p.withDefaults()
	return p.R * (1 + p.Alpha)
}

// index is a grid over the point set for fixed-radius counting.
type index struct {
	grid   *geom.Grid
	cells  map[int][]int
	points []geom.Point
}

func newIndex(points []geom.Point, cellWidth float64) *index {
	// Size the map for occupied cells, not points: on dense data many
	// points share a cell, so a len(points) hint overallocates buckets.
	hint := len(points)/8 + 1
	ix := &index{
		grid:   geom.NewGridByWidth(geom.Bounds(points), cellWidth),
		cells:  make(map[int][]int, hint),
		points: points,
	}
	for i, p := range points {
		ord := ix.grid.CellOrdinal(p)
		ix.cells[ord] = append(ix.cells[ord], i)
	}
	return ix
}

// within calls fn for every point index within dist of p.
func (ix *index) within(p geom.Point, dist float64, fn func(j int)) {
	radius := int(math.Ceil(dist / ix.grid.CellWidth(0)))
	// Cell widths are equal across dimensions for by-width grids except on
	// degenerate domains; take the most conservative radius.
	for d := 1; d < ix.grid.Domain.Dim(); d++ {
		if r := int(math.Ceil(dist / ix.grid.CellWidth(d))); r > radius {
			radius = r
		}
	}
	ix.grid.Neighborhood(ix.grid.CellCoords(p), radius, func(ord int) {
		for _, j := range ix.cells[ord] {
			if geom.WithinDist(p, ix.points[j], dist) {
				fn(j)
			}
		}
	})
}

// Detect runs the centralized LOCI test and returns outlier IDs, sorted.
func Detect(points []geom.Point, params Params) ([]uint64, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, nil
	}
	ids := evaluate(points, nil, params.withDefaults())
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

// detect evaluates the LOCI test for the core points with core ∪ support
// as context. Support points must cover the (1+α)r expansion for the
// verdicts to equal the centralized ones.
func evaluate(core, support []geom.Point, params Params) []uint64 {
	all := make([]geom.Point, 0, len(core)+len(support))
	all = append(all, core...)
	all = append(all, support...)
	ix := newIndex(all, params.Alpha*params.R)

	// Pass 1: n(q, αr) for every pool point.
	alphaCount := make([]float64, len(all))
	for i, p := range all {
		count := 0
		ix.within(p, params.Alpha*params.R, func(int) { count++ })
		alphaCount[i] = float64(count) // includes the point itself
	}

	// Pass 2: the MDEF test for core points.
	var outliers []uint64
	for i := range core {
		var sum, sumSq, n float64
		ix.within(all[i], params.R, func(j int) {
			c := alphaCount[j]
			sum += c
			sumSq += c * c
			n++
		})
		mean := sum / n
		if mean == 0 {
			continue
		}
		variance := sumSq/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		mdef := 1 - alphaCount[i]/mean
		sigmaMDEF := math.Sqrt(variance) / mean
		if mdef > params.KSigma*sigmaMDEF && mdef > 0 {
			outliers = append(outliers, all[i].ID)
		}
	}
	return outliers
}
