package loci

import (
	"encoding/binary"
	"fmt"
	"sort"

	"dod/internal/codec"
	"dod/internal/detect"
	"dod/internal/geom"
	"dod/internal/mapreduce"
	"dod/internal/plan"
	"dod/internal/sample"
)

// Options control the distributed execution.
type Options struct {
	NumPartitions int // uniSpace grid cells; default 16
	NumReducers   int // reduce tasks; default 4
	Parallelism   int
	Seed          int64
}

func (o Options) withDefaults() Options {
	if o.NumPartitions < 1 {
		o.NumPartitions = 16
	}
	if o.NumReducers < 1 {
		o.NumReducers = 4
	}
	return o
}

// DetectDistributed runs the LOCI test as one MapReduce job over a
// uniSpace plan whose supporting areas span (1+α)r — wide enough that
// every core point's sampling neighborhood, and every sampled neighbor's
// counting neighborhood, is locally present. Results match Detect exactly.
func DetectDistributed(points []geom.Point, params Params, opts Options) ([]uint64, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("loci: empty dataset")
	}
	params = params.withDefaults()
	opts = opts.withDefaults()

	domain := geom.Bounds(points)
	histGrid := geom.NewGrid(domain, dims(domain.Dim(), 8))
	hist := &sample.Histogram{Grid: histGrid, Counts: make([]float64, histGrid.NumCells()), Rate: 1}
	pl, err := plan.UniSpace.Build(hist, plan.Options{
		NumReducers:   opts.NumReducers,
		NumPartitions: opts.NumPartitions,
		// The supporting-area radius is the only coupling to the plan
		// layer: Def. 3.3's R here is LOCI's (1+α)r.
		Params:   detect.Params{R: params.SupportRadius(), K: 1},
		Detector: detect.CellBased,
	})
	if err != nil {
		return nil, err
	}

	var splits []mapreduce.Split
	const perSplit = 8192
	for i := 0; i < len(points); i += perSplit {
		j := i + perSplit
		if j > len(points) {
			j = len(points)
		}
		splits = append(splits, mapreduce.Split{
			Name: fmt.Sprintf("loci-%06d", i/perSplit),
			Data: codec.EncodePoints(points[i:j]),
		})
	}

	mapper := mapreduce.MapperFunc(func(ctx *mapreduce.TaskContext, split mapreduce.Split, emit mapreduce.Emit) error {
		pts, err := codec.DecodePoints(split.Data)
		if err != nil {
			return err
		}
		for _, p := range pts {
			core, supports := pl.Locate(p)
			emit(uint64(core), codec.AppendTaggedPoint(nil, codec.TagCore, p))
			for _, s := range supports {
				emit(uint64(s), codec.AppendTaggedPoint(nil, codec.TagSupport, p))
			}
		}
		return nil
	})

	reducer := mapreduce.ReducerFunc(func(ctx *mapreduce.TaskContext, key uint64, values [][]byte, emit mapreduce.Emit) error {
		var core, support []geom.Point
		for _, v := range values {
			tag, p, _, err := codec.DecodeTaggedPoint(v)
			if err != nil {
				return err
			}
			if tag == codec.TagCore {
				core = append(core, p)
			} else {
				support = append(support, p)
			}
		}
		for _, id := range evaluate(core, support, params) {
			emit(key, binary.AppendUvarint(nil, id))
		}
		return nil
	})

	res, err := mapreduce.Run(mapreduce.Config{
		NumReducers: pl.NumReducers,
		Parallelism: opts.Parallelism,
		Partitioner: func(key uint64, n int) int { return pl.ReducerFor(key) },
		Seed:        opts.Seed,
	}, splits, mapper, reducer)
	if err != nil {
		return nil, err
	}

	ids := make([]uint64, 0, len(res.Output))
	for _, pair := range res.Output {
		id, n := binary.Uvarint(pair.Value)
		if n <= 0 {
			return nil, codec.ErrTruncated
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

func dims(d, per int) []int {
	out := make([]int, d)
	for i := range out {
		out[i] = per
	}
	return out
}
