package loci

import (
	"math/rand"
	"testing"

	"dod/internal/geom"
)

// equalIDs treats nil and empty slices as equal.
func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

var testParams = Params{R: 6, Alpha: 0.5, KSigma: 3}

// mixedScene builds the canonical LOCI workload: a dense jittered field
// with two carved-out holes, each holding one lone point. The lone points
// have drastically lower local density than everything in their sampling
// neighborhood — exactly the "multi-granularity deviation" LOCI flags.
func mixedScene(seed int64) (points []geom.Point, plantedIDs []uint64) {
	rng := rand.New(rand.NewSource(seed))
	holes := [][2]float64{{30, 30}, {10, 45}}
	const holeRadius = 5.0
	id := uint64(0)
	for gx := 0; gx < 60; gx++ {
		for gy := 0; gy < 60; gy++ {
			x := float64(gx) + rng.Float64()
			y := float64(gy) + rng.Float64()
			inHole := false
			for _, h := range holes {
				dx, dy := x-h[0], y-h[1]
				if dx*dx+dy*dy < holeRadius*holeRadius {
					inHole = true
					break
				}
			}
			if inHole {
				continue
			}
			points = append(points, geom.Point{ID: id, Coords: []float64{x, y}})
			id++
		}
	}
	for i, h := range holes {
		pid := uint64(90001 + i)
		points = append(points, geom.Point{ID: pid, Coords: []float64{h[0], h[1]}})
		plantedIDs = append(plantedIDs, pid)
	}
	return points, plantedIDs
}

func TestValidate(t *testing.T) {
	if err := testParams.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	if err := (Params{R: 0}).Validate(); err == nil {
		t.Error("r=0 accepted")
	}
	if err := (Params{R: 1, Alpha: 2}).Validate(); err == nil {
		t.Error("alpha=2 accepted")
	}
	if err := (Params{R: 1, KSigma: -1}).Validate(); err == nil {
		t.Error("negative kSigma accepted")
	}
}

func TestDefaults(t *testing.T) {
	p := Params{R: 5}.withDefaults()
	if p.Alpha != 0.5 || p.KSigma != 3 {
		t.Errorf("defaults = %+v", p)
	}
	if got := (Params{R: 4}).SupportRadius(); got != 6 {
		t.Errorf("SupportRadius = %g, want 6 (r·(1+α))", got)
	}
}

func TestDetectFlagsLocalDensityDrop(t *testing.T) {
	points, planted := mixedScene(1)
	out, err := Detect(points, testParams)
	if err != nil {
		t.Fatal(err)
	}
	flagged := map[uint64]bool{}
	for _, id := range out {
		flagged[id] = true
	}
	for _, id := range planted {
		if !flagged[id] {
			t.Errorf("planted anomaly %d not flagged", id)
		}
	}
	// The vast majority of cluster members must not be flagged.
	if len(out) > len(points)/10 {
		t.Errorf("flagged %d of %d points; too many", len(out), len(points))
	}
}

func TestDetectUniformDataMostlyClean(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := make([]geom.Point, 2000)
	for i := range pts {
		pts[i] = geom.Point{ID: uint64(i), Coords: []float64{rng.Float64() * 100, rng.Float64() * 100}}
	}
	out, err := Detect(pts, testParams)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) > len(pts)/20 {
		t.Errorf("uniform data: flagged %d of %d", len(out), len(pts))
	}
}

func TestDetectEmpty(t *testing.T) {
	out, err := Detect(nil, testParams)
	if err != nil || len(out) != 0 {
		t.Errorf("empty: %v, %v", out, err)
	}
}

func TestDistributedMatchesCentralized(t *testing.T) {
	points, _ := mixedScene(1)
	want, err := Detect(points, testParams)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture has no outliers; equivalence test would be vacuous")
	}
	for _, partitions := range []int{4, 16, 49} {
		got, err := DetectDistributed(points, testParams, Options{
			NumPartitions: partitions, NumReducers: 4, Seed: 7,
		})
		if err != nil {
			t.Fatalf("partitions=%d: %v", partitions, err)
		}
		if !equalIDs(got, want) {
			t.Errorf("partitions=%d: got %v, want %v", partitions, got, want)
		}
	}
}

func TestDistributedRandomizedEquivalence(t *testing.T) {
	for trial := int64(0); trial < 4; trial++ {
		rng := rand.New(rand.NewSource(50 + trial))
		pts, _ := mixedScene(50 + trial)
		// Extra clustered mass so partitions see varied densities.
		for i := 0; i < 300; i++ {
			pts = append(pts, geom.Point{ID: uint64(50000 + i), Coords: []float64{
				30 + rng.NormFloat64()*3, 75 + rng.NormFloat64()*3,
			}})
		}
		want, err := Detect(pts, testParams)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DetectDistributed(pts, testParams, Options{NumPartitions: 25, NumReducers: 5, Seed: trial})
		if err != nil {
			t.Fatal(err)
		}
		if !equalIDs(got, want) {
			t.Errorf("trial %d: distributed %d outliers, centralized %d", trial, len(got), len(want))
		}
	}
}

func TestDistributedValidation(t *testing.T) {
	if _, err := DetectDistributed(nil, testParams, Options{}); err == nil {
		t.Error("empty dataset accepted")
	}
	pts := []geom.Point{{ID: 1, Coords: []float64{0, 0}}}
	if _, err := DetectDistributed(pts, Params{R: -1}, Options{}); err == nil {
		t.Error("bad params accepted")
	}
}
