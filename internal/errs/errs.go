// Package errs defines the error identities shared across the public API
// and the internal detection/streaming packages.
//
// The sentinels live here — below both the root package and every internal
// package — so that internal/detect, internal/stream and internal/index can
// return them without importing the public dod package (which would be a
// cycle). The root package re-exports them (dod.ErrEmptyDataset is the same
// value as errs.ErrEmptyDataset), so errors.Is/errors.As matching works no
// matter which layer produced the error.
//
// Two failure modes carry data: DuplicateIDError holds the offending point
// ID and DimMismatchError holds the got/want dimensions. Both match their
// sentinel via errors.Is and expose their payload via errors.As.
package errs

import (
	"errors"
	"fmt"
)

// The sentinel error identities of the dod API.
var (
	// ErrEmptyDataset rejects detection over zero points.
	ErrEmptyDataset = errors.New("dod: empty dataset")
	// ErrDuplicateID rejects datasets or windows holding two points with
	// one ID. Concrete errors are DuplicateIDError values carrying the ID.
	ErrDuplicateID = errors.New("dod: duplicate point ID")
	// ErrDimMismatch rejects points whose dimensionality disagrees with
	// the detector/index/window they are offered to. Concrete errors are
	// DimMismatchError values carrying the got/want dimensions.
	ErrDimMismatch = errors.New("dod: point dimension mismatch")
	// ErrBadParams rejects invalid configuration (r <= 0, k < 1, bad
	// window bounds, ...). Concrete errors wrap it with specifics.
	ErrBadParams = errors.New("dod: invalid parameters")
	// ErrClosed rejects use of a detector after Close.
	ErrClosed = errors.New("dod: detector is closed")
	// ErrWireFormat rejects malformed wire bytes: truncated or corrupt
	// frames, implausible dimensions or counts. Every decode failure in
	// internal/codec wraps it, so a single errors.Is check classifies
	// bad-input errors no matter which decoder produced them.
	ErrWireFormat = errors.New("dod: malformed wire data")
	// ErrWorkerLost reports that a cluster worker stopped heartbeating and
	// its lease expired. Tasks from a lost worker are re-executed; the
	// sentinel surfaces only when re-execution is exhausted.
	ErrWorkerLost = errors.New("dod: worker lost")
	// ErrJobAborted reports a distributed job that cannot complete: the
	// coordinator was closed, no workers remain, or a task exhausted its
	// re-execution budget.
	ErrJobAborted = errors.New("dod: job aborted")
	// ErrOverloaded reports load shedding: the serving layer's admission
	// queue is full and the request was rejected rather than queued
	// unboundedly. Callers should back off and retry (HTTP callers see
	// 429 with Retry-After).
	ErrOverloaded = errors.New("dod: overloaded")
	// ErrBatchTooLarge rejects ingest/score batches exceeding the serving
	// layer's configured line limit. Concrete errors are BatchTooLargeError
	// values carrying the limit; HTTP callers see 400 with code
	// "batch_too_large". Unlike ErrOverloaded this is not retryable as-is —
	// the client must split the batch.
	ErrBatchTooLarge = errors.New("dod: batch too large")
)

// BadParams builds an ErrBadParams-wrapping error with details.
func BadParams(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadParams, fmt.Sprintf(format, args...))
}

// DuplicateIDError reports the point ID that appeared twice.
type DuplicateIDError struct {
	ID uint64
}

func (e *DuplicateIDError) Error() string {
	return fmt.Sprintf("dod: duplicate point ID %d", e.ID)
}

// Is makes errors.Is(err, ErrDuplicateID) match.
func (e *DuplicateIDError) Is(target error) bool { return target == ErrDuplicateID }

// DimMismatchError reports a point whose dimensionality disagrees with the
// structure it was offered to.
type DimMismatchError struct {
	ID   uint64 // the offending point's ID
	Got  int    // the point's dimensionality
	Want int    // the structure's dimensionality
}

func (e *DimMismatchError) Error() string {
	return fmt.Sprintf("dod: point %d has dimension %d, want %d", e.ID, e.Got, e.Want)
}

// Is makes errors.Is(err, ErrDimMismatch) match.
func (e *DimMismatchError) Is(target error) bool { return target == ErrDimMismatch }

// BatchTooLargeError reports a batch that exceeds the configured line limit.
type BatchTooLargeError struct {
	Limit int // the configured maximum batch size, in lines
}

func (e *BatchTooLargeError) Error() string {
	return fmt.Sprintf("dod: batch exceeds %d lines", e.Limit)
}

// Is makes errors.Is(err, ErrBatchTooLarge) match.
func (e *BatchTooLargeError) Is(target error) bool { return target == ErrBatchTooLarge }
