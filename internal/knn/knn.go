// Package knn implements the kNN-based outlier semantics of Ramaswamy,
// Rastogi & Shim (the paper's reference [10]): the top-n outliers are the n
// points with the largest distance to their k-th nearest neighbor. The
// paper's related work ([11], [13]) distributes this definition on
// message-passing architectures with rings or broadcast solving sets; this
// package instead distributes it *exactly* on the DOD supporting-area
// framework in at most two MapReduce rounds:
//
//  1. Each partition computes every core point's kNN distance over
//     core ∪ support. If that distance is at most the supporting radius s,
//     all true neighbors were locally present and the value is exact;
//     otherwise it is an upper bound and the point becomes a candidate.
//  2. Each candidate is routed to every partition within its upper bound;
//     partitions return their k smallest distances to the candidate, and
//     the driver merges them into the exact kNN distance.
//
// The result is exact for any supporting radius; s only trades round-1
// replication against round-2 candidate traffic.
package knn

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"dod/internal/geom"
)

// Params configure kNN outlier detection.
type Params struct {
	K int // which nearest neighbor's distance ranks a point
	N int // how many top outliers to report
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.K < 1 {
		return fmt.Errorf("knn: k must be >= 1, got %d", p.K)
	}
	if p.N < 1 {
		return fmt.Errorf("knn: n must be >= 1, got %d", p.N)
	}
	return nil
}

// Outlier is one ranked result.
type Outlier struct {
	ID   uint64
	Dist float64 // distance to the point's k-th nearest neighbor
}

// kd-tree with true k-nearest-neighbor search -------------------------------

type kdNode struct {
	point       geom.Point
	splitDim    int
	left, right *kdNode
}

func buildKD(pts []geom.Point, depth int) *kdNode {
	if len(pts) == 0 {
		return nil
	}
	dim := depth % pts[0].Dim()
	sort.Slice(pts, func(i, j int) bool { return pts[i].Coords[dim] < pts[j].Coords[dim] })
	mid := len(pts) / 2
	return &kdNode{
		point:    pts[mid],
		splitDim: dim,
		left:     buildKD(pts[:mid], depth+1),
		right:    buildKD(pts[mid+1:], depth+1),
	}
}

// distHeap is a max-heap of squared distances (the current k best).
type distHeap []float64

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i] > h[j] }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *distHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h distHeap) worst() float64     { return h[0] }

// kNearest accumulates the k smallest squared distances from p to tree
// points (excluding p itself by ID).
func (n *kdNode) kNearest(p geom.Point, k int, best *distHeap) {
	if n == nil {
		return
	}
	if n.point.ID != p.ID {
		d2 := geom.Dist2(p, n.point)
		if best.Len() < k {
			heap.Push(best, d2)
		} else if d2 < best.worst() {
			heap.Pop(best)
			heap.Push(best, d2)
		}
	}
	diff := p.Coords[n.splitDim] - n.point.Coords[n.splitDim]
	near, far := n.left, n.right
	if diff > 0 {
		near, far = n.right, n.left
	}
	near.kNearest(p, k, best)
	if best.Len() < k || diff*diff < best.worst() {
		far.kNearest(p, k, best)
	}
}

// knnDistance returns the distance from p to its k-th nearest neighbor in
// the tree, or +Inf semantics via ok=false when fewer than k neighbors
// exist.
func knnDistance(root *kdNode, p geom.Point, k int) (float64, bool) {
	best := &distHeap{}
	root.kNearest(p, k, best)
	if best.Len() < k {
		return 0, false
	}
	return sqrt(best.worst()), true
}

func sqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// TopN returns the centralized top-n kNN outliers, ranked by descending
// kNN distance (ties by ascending ID). Points with fewer than k other
// points in the dataset rank first with infinite conceptual distance,
// reported as the maximum finite distance found plus their scan order —
// in practice datasets are validated to hold more than k points.
func TopN(points []geom.Point, params Params) ([]Outlier, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(points) <= params.K {
		return nil, fmt.Errorf("knn: need more than k=%d points, got %d", params.K, len(points))
	}
	tree := buildKD(append([]geom.Point(nil), points...), 0)
	outliers := make([]Outlier, 0, len(points))
	for _, p := range points {
		d, ok := knnDistance(tree, p, params.K)
		if !ok {
			return nil, fmt.Errorf("knn: point %d has fewer than %d neighbors", p.ID, params.K)
		}
		outliers = append(outliers, Outlier{ID: p.ID, Dist: d})
	}
	rank(outliers)
	if len(outliers) > params.N {
		outliers = outliers[:params.N]
	}
	return outliers, nil
}

// rank sorts by descending distance, ties by ascending ID (deterministic).
func rank(out []Outlier) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist > out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
}
