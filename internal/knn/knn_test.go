package knn

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"dod/internal/geom"
)

// bruteTopN is the quadratic reference.
func bruteTopN(points []geom.Point, params Params) []Outlier {
	out := make([]Outlier, 0, len(points))
	for _, p := range points {
		var ds []float64
		for _, q := range points {
			if q.ID == p.ID {
				continue
			}
			ds = append(ds, geom.Dist(p, q))
		}
		sort.Float64s(ds)
		out = append(out, Outlier{ID: p.ID, Dist: ds[params.K-1]})
	}
	rank(out)
	return out[:params.N]
}

func scene(seed int64, n int) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, 0, n+3)
	for i := 0; i < n; i++ {
		cx, cy := 20.0, 20.0
		if i%3 == 0 {
			cx, cy = 70, 55
		}
		pts = append(pts, geom.Point{ID: uint64(i), Coords: []float64{
			cx + rng.NormFloat64()*6, cy + rng.NormFloat64()*6,
		}})
	}
	pts = append(pts,
		geom.Point{ID: 90001, Coords: []float64{5, 95}},
		geom.Point{ID: 90002, Coords: []float64{95, 5}},
		geom.Point{ID: 90003, Coords: []float64{98, 98}},
	)
	return pts
}

func assertSameRanking(t *testing.T, got, want []Outlier) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("rank %d: got %d (%g), want %d (%g)", i, got[i].ID, got[i].Dist, want[i].ID, want[i].Dist)
		}
		if math.Abs(got[i].Dist-want[i].Dist) > 1e-9 {
			t.Fatalf("rank %d: dist %g vs %g", i, got[i].Dist, want[i].Dist)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{K: 1, N: 1}).Validate(); err != nil {
		t.Errorf("valid rejected: %v", err)
	}
	if err := (Params{K: 0, N: 1}).Validate(); err == nil {
		t.Error("k=0 accepted")
	}
	if err := (Params{K: 1, N: 0}).Validate(); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestTopNMatchesBruteForce(t *testing.T) {
	pts := scene(1, 400)
	params := Params{K: 5, N: 10}
	got, err := TopN(pts, params)
	if err != nil {
		t.Fatal(err)
	}
	assertSameRanking(t, got, bruteTopN(pts, params))
}

func TestTopNPlantedOutliersRankFirst(t *testing.T) {
	pts := scene(2, 600)
	got, err := TopN(pts, Params{K: 4, N: 3})
	if err != nil {
		t.Fatal(err)
	}
	found := map[uint64]bool{}
	for _, o := range got {
		found[o.ID] = true
	}
	for _, id := range []uint64{90001, 90002, 90003} {
		if !found[id] {
			t.Errorf("planted outlier %d not in top 3: %v", id, got)
		}
	}
}

func TestTopNValidation(t *testing.T) {
	if _, err := TopN(scene(3, 10), Params{K: 20, N: 1}); err == nil {
		t.Error("k >= n accepted")
	}
	if _, err := TopN(nil, Params{K: 1, N: 1}); err == nil {
		t.Error("empty dataset accepted")
	}
}

func TestTopNRankingDeterministicOnTies(t *testing.T) {
	// Four corners of a square: all have identical kNN distances.
	pts := []geom.Point{
		{ID: 3, Coords: []float64{0, 0}},
		{ID: 1, Coords: []float64{1, 0}},
		{ID: 2, Coords: []float64{0, 1}},
		{ID: 4, Coords: []float64{1, 1}},
	}
	got, err := TopN(pts, Params{K: 1, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []uint64{1, 2, 3, 4} {
		if got[i].ID != want {
			t.Errorf("tie rank %d: got %d, want %d", i, got[i].ID, want)
		}
	}
}

func TestDistributedMatchesCentralized(t *testing.T) {
	pts := scene(4, 800)
	params := Params{K: 5, N: 12}
	want, err := TopN(pts, params)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []float64{0, 1, 5, 30} { // 0 = auto
		got, err := TopNDistributed(pts, params, Options{
			SupportRadius: s, NumPartitions: 16, NumReducers: 4, Seed: 7,
		})
		if err != nil {
			t.Fatalf("s=%g: %v", s, err)
		}
		assertSameRanking(t, got, want)
	}
}

func TestDistributedTinySupportForcesRoundTwo(t *testing.T) {
	// A support radius of ~0 makes every point a round-2 candidate; the
	// result must still be exact.
	pts := scene(5, 300)
	params := Params{K: 3, N: 8}
	want, err := TopN(pts, params)
	if err != nil {
		t.Fatal(err)
	}
	got, err := TopNDistributed(pts, params, Options{
		SupportRadius: 1e-9, NumPartitions: 9, NumReducers: 3, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	assertSameRanking(t, got, want)
}

func TestDistributedRandomizedEquivalence(t *testing.T) {
	for trial := int64(0); trial < 5; trial++ {
		rng := rand.New(rand.NewSource(40 + trial))
		n := 150 + rng.Intn(400)
		pts := scene(trial, n)
		params := Params{K: 1 + rng.Intn(6), N: 1 + rng.Intn(15)}
		want, err := TopN(pts, params)
		if err != nil {
			t.Fatal(err)
		}
		got, err := TopNDistributed(pts, params, Options{
			NumPartitions: 4 + rng.Intn(30), NumReducers: 1 + rng.Intn(6), Seed: trial,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertSameRanking(t, got, want)
	}
}

func TestDistributedValidation(t *testing.T) {
	if _, err := TopNDistributed(scene(6, 10), Params{K: 50, N: 1}, Options{}); err == nil {
		t.Error("k >= n accepted")
	}
	if _, err := TopNDistributed(scene(6, 100), Params{K: 0, N: 1}, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
}

func TestKNearestExcludesSelf(t *testing.T) {
	pts := []geom.Point{
		{ID: 1, Coords: []float64{0, 0}},
		{ID: 2, Coords: []float64{3, 4}},
	}
	tree := buildKD(append([]geom.Point(nil), pts...), 0)
	d, ok := knnDistance(tree, pts[0], 1)
	if !ok || d != 5 {
		t.Errorf("knnDistance = %g, %v; want 5, true", d, ok)
	}
	if _, ok := knnDistance(tree, pts[0], 2); ok {
		t.Error("k=2 with one neighbor should report not-ok")
	}
}
