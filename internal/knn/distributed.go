package knn

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"dod/internal/codec"
	"dod/internal/detect"
	"dod/internal/geom"
	"dod/internal/mapreduce"
	"dod/internal/plan"
	"dod/internal/sample"
)

// Options control the distributed execution.
type Options struct {
	// SupportRadius is the round-1 supporting-area extension s. Zero
	// auto-tunes to roughly twice the expected uniform kNN distance, which
	// makes most points' round-1 values exact.
	SupportRadius float64
	NumPartitions int // uniSpace grid cells; default 16
	NumReducers   int // reduce tasks; default 4
	Parallelism   int
	Seed          int64
}

func (o Options) withDefaults() Options {
	if o.NumPartitions < 1 {
		o.NumPartitions = 16
	}
	if o.NumReducers < 1 {
		o.NumReducers = 4
	}
	return o
}

// Round-1 output kinds.
const (
	recExact     byte = 0 // kNN distance resolved locally
	recCandidate byte = 1 // local value is only an upper bound
)

func encodeRound1(kind byte, p geom.Point, dist float64) []byte {
	buf := []byte{kind}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(dist))
	return codec.AppendPoint(buf, p)
}

func decodeRound1(buf []byte) (kind byte, p geom.Point, dist float64, err error) {
	if len(buf) < 9 {
		return 0, geom.Point{}, 0, codec.ErrTruncated
	}
	kind = buf[0]
	dist = math.Float64frombits(binary.LittleEndian.Uint64(buf[1:9]))
	p, _, err = codec.DecodePoint(buf[9:])
	return kind, p, dist, err
}

// TopNDistributed computes the exact top-n kNN outliers with the two-round
// supporting-area algorithm described in the package comment.
func TopNDistributed(points []geom.Point, params Params, opts Options) ([]Outlier, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if len(points) <= params.K {
		return nil, fmt.Errorf("knn: need more than k=%d points, got %d", params.K, len(points))
	}
	opts = opts.withDefaults()
	domain := geom.Bounds(points)
	s := opts.SupportRadius
	if s <= 0 {
		// ≈ 2× the expected kNN distance under uniformity.
		area := domain.AreaEps(1e-9)
		s = 2 * math.Sqrt(float64(params.K)*area/(math.Pi*float64(len(points))))
	}

	dims := make([]int, domain.Dim())
	for i := range dims {
		dims[i] = 8
	}
	histGrid := geom.NewGrid(domain, dims)
	hist := &sample.Histogram{Grid: histGrid, Counts: make([]float64, histGrid.NumCells()), Rate: 1}
	pl, err := plan.UniSpace.Build(hist, plan.Options{
		NumReducers:   opts.NumReducers,
		NumPartitions: opts.NumPartitions,
		Params:        detect.Params{R: s, K: 1},
		Detector:      detect.CellBased,
	})
	if err != nil {
		return nil, err
	}

	splits := pointSplits(points, "knn")
	mrCfg := mapreduce.Config{
		NumReducers: pl.NumReducers,
		Parallelism: opts.Parallelism,
		Partitioner: func(key uint64, n int) int { return pl.ReducerFor(key) },
		Seed:        opts.Seed,
	}

	// ---- Round 1: local kNN distances over core ∪ support ----
	mapper1 := locateMapper(pl)
	reducer1 := mapreduce.ReducerFunc(func(ctx *mapreduce.TaskContext, key uint64, values [][]byte, emit mapreduce.Emit) error {
		core, support, err := decodeGroup(values)
		if err != nil {
			return err
		}
		pool := make([]geom.Point, 0, len(core)+len(support))
		pool = append(pool, core...)
		pool = append(pool, support...)
		tree := buildKD(pool, 0)
		for _, p := range core {
			d, ok := knnDistance(tree, p, params.K)
			switch {
			case ok && d <= s:
				emit(key, encodeRound1(recExact, p, d))
			case ok:
				emit(key, encodeRound1(recCandidate, p, d))
			default:
				// Fewer than k pool points: unbounded candidate.
				emit(key, encodeRound1(recCandidate, p, math.Inf(1)))
			}
		}
		return nil
	})
	res1, err := mapreduce.Run(mrCfg, splits, mapper1, reducer1)
	if err != nil {
		return nil, fmt.Errorf("knn: round 1: %w", err)
	}

	exact := make(map[uint64]float64, len(points))
	type cand struct {
		point geom.Point
		ub    float64
	}
	var cands []cand
	for _, pair := range res1.Output {
		kind, p, dist, err := decodeRound1(pair.Value)
		if err != nil {
			return nil, err
		}
		if kind == recExact {
			exact[p.ID] = dist
		} else {
			cands = append(cands, cand{point: p, ub: dist})
		}
	}

	// ---- Round 2: resolve candidates against every reachable partition ----
	if len(cands) > 0 {
		candBuf := binary.AppendUvarint(nil, uint64(len(cands)))
		for _, c := range cands {
			candBuf = binary.LittleEndian.AppendUint64(candBuf, math.Float64bits(c.ub))
			candBuf = codec.AppendPoint(candBuf, c.point)
		}
		splits2 := append(append([]mapreduce.Split(nil), splits...), mapreduce.Split{
			Name: "knn-candidates",
			Data: candBuf,
		})
		mapper2 := mapreduce.MapperFunc(func(ctx *mapreduce.TaskContext, split mapreduce.Split, emit mapreduce.Emit) error {
			if split.Name == "knn-candidates" {
				buf := split.Data
				count, n := binary.Uvarint(buf)
				if n <= 0 {
					return codec.ErrTruncated
				}
				buf = buf[n:]
				for i := uint64(0); i < count; i++ {
					if len(buf) < 8 {
						return codec.ErrTruncated
					}
					ub := math.Float64frombits(binary.LittleEndian.Uint64(buf))
					buf = buf[8:]
					p, m, err := codec.DecodePoint(buf)
					if err != nil {
						return err
					}
					buf = buf[m:]
					for _, part := range pl.Partitions {
						if rectDist(part.Rect, p) <= ub {
							emit(uint64(part.ID), encodeRound1(recCandidate, p, ub))
						}
					}
				}
				return nil
			}
			pts, err := codec.DecodePoints(split.Data)
			if err != nil {
				return err
			}
			for _, p := range pts {
				core, _ := pl.Locate(p)
				emit(uint64(core), codec.AppendTaggedPoint(nil, codec.TagCore, p))
			}
			return nil
		})
		reducer2 := mapreduce.ReducerFunc(func(ctx *mapreduce.TaskContext, key uint64, values [][]byte, emit mapreduce.Emit) error {
			var core []geom.Point
			var routed []geom.Point
			for _, v := range values {
				if len(v) > 0 && v[0] == recCandidate {
					_, p, _, err := decodeRound1(v)
					if err != nil {
						return err
					}
					routed = append(routed, p)
					continue
				}
				tag, p, _, err := codec.DecodeTaggedPoint(v)
				if err != nil {
					return err
				}
				if tag != codec.TagCore {
					return fmt.Errorf("knn: unexpected tag %d in round 2", tag)
				}
				core = append(core, p)
			}
			tree := buildKD(core, 0)
			for _, c := range routed {
				best := &distHeap{}
				tree.kNearest(c, params.K, best)
				// Emit this partition's (up to k) smallest distances.
				buf := binary.AppendUvarint(nil, c.ID)
				buf = binary.AppendUvarint(buf, uint64(best.Len()))
				for _, d2 := range *best {
					buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(d2))
				}
				emit(key, buf)
			}
			return nil
		})
		res2, err := mapreduce.Run(mrCfg, splits2, mapper2, reducer2)
		if err != nil {
			return nil, fmt.Errorf("knn: round 2: %w", err)
		}

		merged := make(map[uint64][]float64, len(cands))
		for _, pair := range res2.Output {
			buf := pair.Value
			id, n := binary.Uvarint(buf)
			if n <= 0 {
				return nil, codec.ErrTruncated
			}
			buf = buf[n:]
			count, n := binary.Uvarint(buf)
			if n <= 0 {
				return nil, codec.ErrTruncated
			}
			buf = buf[n:]
			for i := uint64(0); i < count; i++ {
				if len(buf) < 8 {
					return nil, codec.ErrTruncated
				}
				merged[id] = append(merged[id], math.Float64frombits(binary.LittleEndian.Uint64(buf)))
				buf = buf[8:]
			}
		}
		for _, c := range cands {
			ds := merged[c.point.ID]
			if len(ds) < params.K {
				return nil, fmt.Errorf("knn: candidate %d resolved only %d of %d neighbors", c.point.ID, len(ds), params.K)
			}
			sort.Float64s(ds)
			exact[c.point.ID] = sqrt(ds[params.K-1])
		}
	}

	outliers := make([]Outlier, 0, len(exact))
	for id, d := range exact {
		outliers = append(outliers, Outlier{ID: id, Dist: d})
	}
	rank(outliers)
	if len(outliers) > params.N {
		outliers = outliers[:params.N]
	}
	return outliers, nil
}

// locateMapper emits core/support records per the plan — the standard DOD
// map function.
func locateMapper(pl *plan.Plan) mapreduce.MapperFunc {
	return func(ctx *mapreduce.TaskContext, split mapreduce.Split, emit mapreduce.Emit) error {
		pts, err := codec.DecodePoints(split.Data)
		if err != nil {
			return err
		}
		for _, p := range pts {
			core, supports := pl.Locate(p)
			emit(uint64(core), codec.AppendTaggedPoint(nil, codec.TagCore, p))
			for _, s := range supports {
				emit(uint64(s), codec.AppendTaggedPoint(nil, codec.TagSupport, p))
			}
		}
		return nil
	}
}

func decodeGroup(values [][]byte) (core, support []geom.Point, err error) {
	for _, v := range values {
		tag, p, _, err := codec.DecodeTaggedPoint(v)
		if err != nil {
			return nil, nil, err
		}
		if tag == codec.TagCore {
			core = append(core, p)
		} else {
			support = append(support, p)
		}
	}
	return core, support, nil
}

func pointSplits(points []geom.Point, prefix string) []mapreduce.Split {
	const perSplit = 8192
	var splits []mapreduce.Split
	for i := 0; i < len(points); i += perSplit {
		j := i + perSplit
		if j > len(points) {
			j = len(points)
		}
		splits = append(splits, mapreduce.Split{
			Name: fmt.Sprintf("%s-%06d", prefix, i/perSplit),
			Data: codec.EncodePoints(points[i:j]),
		})
	}
	return splits
}

// rectDist is the distance from p to the nearest point of rect.
func rectDist(rect geom.Rect, p geom.Point) float64 {
	var s2 float64
	for i := range rect.Min {
		v := p.Coords[i]
		switch {
		case v < rect.Min[i]:
			d := rect.Min[i] - v
			s2 += d * d
		case v > rect.Max[i]:
			d := v - rect.Max[i]
			s2 += d * d
		}
	}
	return math.Sqrt(s2)
}
