// Package par provides the bounded-fanout tiling primitive shared by the
// parallel detection kernels and the batch scoring paths.
//
// The model is deliberately minimal: split [0, n) into at most `workers`
// contiguous tiles and run one function per tile on its own goroutine,
// blocking until every tile finishes. Contiguous tiles are what keep the
// parallel kernels bit-identical to their sequential counterparts — each
// tile preserves the sequential visit order within itself, and callers
// concatenate per-tile results in tile order, which reproduces the
// sequential output exactly (see internal/detect's parallel paths).
//
// Tiles are sized up front rather than work-stolen: the detection kernels
// do uniform per-element work dominated by memory bandwidth, where static
// contiguous partitioning beats a shared queue (no synchronization in the
// inner loop, and each worker streams one contiguous region of the
// columnar arrays).
package par

import "runtime"

// minTile is the smallest tile worth a goroutine: below this the spawn and
// join overhead dwarfs the saved work, so Do degrades toward fewer (or one)
// tiles on small inputs.
const minTile = 64

// Workers resolves a requested worker count: values < 1 mean "use
// GOMAXPROCS", anything else is taken as given.
func Workers(requested int) int {
	if requested < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// Tiles returns the number of contiguous tiles Do would use for n elements
// and the given worker bound.
func Tiles(n, workers int) int {
	workers = Workers(workers)
	if workers > n/minTile {
		workers = n / minTile
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Do partitions [0, n) into Tiles(n, workers) contiguous half-open ranges
// and calls fn(tile, lo, hi) once per range, each on its own goroutine
// (tile 0 runs on the calling goroutine), returning after all complete.
// Tile indices are dense and ordered: tile t covers a range strictly below
// tile t+1's. With one tile — workers <= 1, or n too small to split — fn
// runs inline with no goroutine at all, so sequential callers pay nothing.
//
// fn must not panic; a panic on a spawned goroutine crashes the process
// (matching the behavior of the detection kernels it runs).
func Do(n, workers int, fn func(tile, lo, hi int)) {
	tiles := Tiles(n, workers)
	if tiles == 1 {
		if n > 0 {
			fn(0, 0, n)
		}
		return
	}
	// Split as evenly as possible: the first n%tiles tiles get one extra.
	base := n / tiles
	extra := n % tiles
	bound := func(t int) int {
		lo := t * base
		if t < extra {
			lo += t
		} else {
			lo += extra
		}
		return lo
	}
	done := make(chan struct{}, tiles-1)
	for t := 1; t < tiles; t++ {
		go func(t int) {
			fn(t, bound(t), bound(t+1))
			done <- struct{}{}
		}(t)
	}
	fn(0, bound(0), bound(1))
	for t := 1; t < tiles; t++ {
		<-done
	}
}
