package par

import (
	"sync"
	"testing"
)

func TestTilesBounds(t *testing.T) {
	cases := []struct {
		n, workers, want int
	}{
		{0, 4, 1},
		{1, 4, 1},
		{63, 8, 1},   // below minTile: never split
		{128, 8, 2},  // two full tiles
		{1000, 4, 4}, // worker-bound
		{1000, 100, 15} /* n/minTile = 15 */, {1000, 1, 1},
		{1000, -1, Tiles(1000, 0)}, // <1 means GOMAXPROCS; just consistency
	}
	for _, c := range cases {
		if got := Tiles(c.n, c.workers); got != c.want {
			t.Errorf("Tiles(%d, %d) = %d, want %d", c.n, c.workers, got, c.want)
		}
	}
}

// TestDoCoversExactly checks every element is visited exactly once and tile
// ranges are contiguous, ordered and non-overlapping.
func TestDoCoversExactly(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 128, 129, 1000, 4096} {
		for _, workers := range []int{1, 2, 3, 4, 7, 16} {
			var mu sync.Mutex
			seen := make([]int, n)
			type rng struct{ tile, lo, hi int }
			var ranges []rng
			Do(n, workers, func(tile, lo, hi int) {
				mu.Lock()
				ranges = append(ranges, rng{tile, lo, hi})
				mu.Unlock()
				for i := lo; i < hi; i++ {
					mu.Lock()
					seen[i]++
					mu.Unlock()
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d workers=%d: element %d visited %d times", n, workers, i, c)
				}
			}
			if n > 0 && len(ranges) != Tiles(n, workers) {
				t.Fatalf("n=%d workers=%d: %d tiles ran, want %d", n, workers, len(ranges), Tiles(n, workers))
			}
			// Tile t's range must sit strictly below tile t+1's.
			byTile := make(map[int]rng, len(ranges))
			for _, r := range ranges {
				byTile[r.tile] = r
			}
			for tile := 0; tile+1 < len(ranges); tile++ {
				if byTile[tile].hi != byTile[tile+1].lo {
					t.Fatalf("n=%d workers=%d: tile %d ends at %d, tile %d starts at %d",
						n, workers, tile, byTile[tile].hi, tile+1, byTile[tile+1].lo)
				}
			}
		}
	}
}

// TestDoSequentialFallback pins that one-tile runs stay on the calling
// goroutine (no allocation beyond the closure, no spawned goroutine).
func TestDoSequentialFallback(t *testing.T) {
	ran := 0
	Do(10, 1, func(tile, lo, hi int) {
		if tile != 0 || lo != 0 || hi != 10 {
			t.Fatalf("tile=%d lo=%d hi=%d", tile, lo, hi)
		}
		ran++
	})
	if ran != 1 {
		t.Fatalf("fn ran %d times, want 1", ran)
	}
}
