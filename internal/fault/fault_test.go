package fault

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"dod/internal/obs"
)

func chaosRules() []Rule {
	return []Rule{
		{Site: "a.*", PError: 0.2, PDrop: 0.1, PCorrupt: 0.1, PPartition: 0.05, PartitionLen: 3,
			PLatency: 0.3, MaxLatency: 5 * time.Millisecond},
		{Site: "quiet"}, // exact-match rule, no faults

	}
}

// TestDeterministicPerSiteStreams is the load-bearing property: a site's
// decision sequence is a pure function of (seed, site name).
func TestDeterministicPerSiteStreams(t *testing.T) {
	roll := func(seed int64, site string, n int) []Decision {
		in := New(Config{Seed: seed, Rules: chaosRules()})
		s := in.Site(site)
		out := make([]Decision, n)
		for i := range out {
			out[i] = s.Roll()
		}
		return out
	}
	if !reflect.DeepEqual(roll(7, "a.x", 200), roll(7, "a.x", 200)) {
		t.Fatal("same seed+site produced different decision streams")
	}
	if reflect.DeepEqual(roll(7, "a.x", 200), roll(8, "a.x", 200)) {
		t.Fatal("different seeds produced identical streams (suspicious)")
	}
	if reflect.DeepEqual(roll(7, "a.x", 200), roll(7, "a.y", 200)) {
		t.Fatal("different sites share one stream")
	}

	// Interleaving independence: rolling a.x and a.y alternately must give
	// a.x the same stream as rolling it alone.
	in := New(Config{Seed: 7, Rules: chaosRules()})
	x, y := in.Site("a.x"), in.Site("a.y")
	var mixed []Decision
	for i := 0; i < 200; i++ {
		mixed = append(mixed, x.Roll())
		y.Roll()
	}
	if !reflect.DeepEqual(mixed, roll(7, "a.x", 200)) {
		t.Fatal("interleaved rolls changed a site's stream")
	}
}

func TestPartitionWindow(t *testing.T) {
	in := New(Config{Seed: 1, Rules: []Rule{{Site: "p", PPartition: 1, PartitionLen: 4}}})
	s := in.Site("p")
	for i := 0; i < 12; i++ {
		if d := s.Roll(); d.Kind != Partition {
			t.Fatalf("call %d: kind %v, want continuous partition at PPartition=1", i, d.Kind)
		}
	}
}

func TestNilInjectorAndUnmatchedSitesAreInert(t *testing.T) {
	var in *Injector
	if d := in.Site("x").Roll(); d.Kind != None {
		t.Fatal("nil injector rolled a fault")
	}
	if in.Schedule() != nil || in.SiteNames() != nil {
		t.Fatal("nil injector has state")
	}
	live := New(Config{Seed: 1, Rules: chaosRules()})
	s := live.Site("unmatched")
	for i := 0; i < 100; i++ {
		if d := s.Roll(); d.Kind != None {
			t.Fatal("ruleless site rolled a fault")
		}
	}
}

func TestScheduleRecordsAndMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	in := New(Config{Seed: 3, Rules: []Rule{{Site: "s", PError: 1}}, Obs: reg})
	s := in.Site("s")
	for i := 0; i < 5; i++ {
		d := s.Roll()
		if d.Kind != Error || d.Err() == nil {
			t.Fatalf("roll %d: %+v", i, d)
		}
	}
	sched := in.Schedule()
	if len(sched) != 5 {
		t.Fatalf("schedule has %d entries, want 5", len(sched))
	}
	for i, d := range sched {
		if d.Site != "s" || d.Call != i+1 || d.Fault != "error" {
			t.Errorf("schedule[%d] = %+v", i, d)
		}
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	if !strings.Contains(buf.String(), `dod_fault_injected_total{kind="error"} 5`) {
		t.Errorf("metrics missing fault counter:\n%s", buf.String())
	}
}

func TestCorruptBytes(t *testing.T) {
	d := Decision{Kind: Corrupt, Aux: 0x0300000001}
	data := []byte{0, 0, 0, 0}
	orig := append([]byte(nil), data...)
	if !CorruptBytes(d, data) {
		t.Fatal("CorruptBytes reported no change")
	}
	if bytes.Equal(data, orig) {
		t.Fatal("payload unchanged after corruption")
	}
	diff := 0
	for i := range data {
		if data[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption changed %d bytes, want exactly 1", diff)
	}
	if CorruptBytes(d, nil) {
		t.Fatal("corrupted an empty payload")
	}
	if CorruptBytes(Decision{Kind: Error}, data) {
		t.Fatal("non-corrupt decision corrupted data")
	}
}

// TestTransport drives every decision kind through a real HTTP round-trip.
func TestTransport(t *testing.T) {
	var served int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		w.Write([]byte("payload-bytes"))
	}))
	defer ts.Close()

	check := func(rule Rule, wantErr bool, wantBody string) (int, error) {
		served = 0
		in := New(Config{Seed: 11, Rules: []Rule{rule}})
		client := &http.Client{Transport: Transport(nil, in, "t.")}
		resp, err := client.Get(ts.URL + "/x")
		if err != nil {
			if !wantErr {
				t.Fatalf("rule %+v: unexpected error %v", rule, err)
			}
			return served, err
		}
		defer resp.Body.Close()
		if wantErr {
			t.Fatalf("rule %+v: expected error", rule)
		}
		body, _ := io.ReadAll(resp.Body)
		if wantBody != "" && string(body) != wantBody {
			t.Fatalf("rule %+v: body %q, want %q", rule, body, wantBody)
		}
		return served, nil
	}

	// Clean pass.
	if n, _ := check(Rule{Site: "none"}, false, "payload-bytes"); n != 1 {
		t.Fatalf("clean pass served %d requests", n)
	}
	// Error: request never sent.
	if n, err := check(Rule{Site: "t.*", PError: 1}, true, ""); n != 0 {
		t.Fatalf("error fault still sent the request (%d served)", n)
	} else {
		var ie *InjectedError
		if !errors.As(err, &ie) || ie.AfterEffect {
			t.Fatalf("error fault error = %v", err)
		}
	}
	// Drop: request sent, response lost.
	if n, err := check(Rule{Site: "t.*", PDrop: 1}, true, ""); n != 1 {
		t.Fatalf("drop fault served %d requests, want 1", n)
	} else {
		var ie *InjectedError
		if !errors.As(err, &ie) || !ie.AfterEffect {
			t.Fatalf("drop fault error = %v", err)
		}
	}
	// Corrupt: body differs in exactly one byte.
	in := New(Config{Seed: 5, Rules: []Rule{{Site: "t.*", PCorrupt: 1}}})
	client := &http.Client{Transport: Transport(nil, in, "t.")}
	resp, err := client.Get(ts.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) == "payload-bytes" || len(body) != len("payload-bytes") {
		t.Fatalf("corrupt fault: body %q", body)
	}
	// Latency: still succeeds.
	if _, err := check(Rule{Site: "t.*", PLatency: 1, MaxLatency: 2 * time.Millisecond}, false, "payload-bytes"); err != nil {
		t.Fatal(err)
	}
}
