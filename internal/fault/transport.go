package fault

import (
	"bytes"
	"io"
	"net/http"
	"time"

	"dod/internal/httpapi"
)

// Transport wraps an http.RoundTripper with fault injection. Each request
// rolls at the site "<prefix><url-path>", so one wrapped client exposes a
// distinct decision stream per endpoint ("worker.w1/dist/v1/poll",
// "worker.w1/dist/v1/result", ...).
//
// Decision semantics on an HTTP round-trip:
//
//   - Latency: sleep, then send — a slow link.
//   - Error/Partition: fail without sending — the request never left.
//   - Drop: send and discard the response — the far side acted, the
//     caller never learns; exercises at-least-once delivery and lease
//     recovery.
//   - Corrupt: send, then flip one byte of the response body — exercises
//     the codec integrity check at the frame boundary.
//
// inner nil uses httpapi.NewTransport — the same tuned transport the
// serving tier defaults to, so fault-wrapped clients keep its connection
// reuse. in nil injects nothing.
func Transport(inner http.RoundTripper, in *Injector, prefix string) http.RoundTripper {
	if inner == nil {
		inner = httpapi.NewTransport()
	}
	return &faultTransport{inner: inner, in: in, prefix: prefix}
}

type faultTransport struct {
	inner  http.RoundTripper
	in     *Injector
	prefix string
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.in.Site(t.prefix + req.URL.Path).Roll()
	switch d.Kind {
	case Error, Partition:
		return nil, d.Err()
	case Latency:
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(d.Delay):
		}
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	switch d.Kind {
	case Drop:
		resp.Body.Close()
		return nil, d.Err()
	case Corrupt:
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		CorruptBytes(d, body)
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
	}
	return resp, nil
}
