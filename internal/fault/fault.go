// Package fault is the deterministic fault-injection layer behind the
// seeded chaos matrix.
//
// An Injector is built from a seed and a set of Rules. Code under test
// (the dist transport, the codec frame boundary, the serve ingest path)
// asks the injector for a named Site and rolls a Decision per operation:
// do nothing, add latency, fail, drop the response, corrupt the payload,
// or open a partition window that fails the next N operations too.
//
// Determinism is the whole point: each site owns a private PRNG seeded
// from (seed, site name), so site S's k-th decision is a pure function of
// the seed — independent of goroutine interleaving, wall clock, and every
// other site. A failing chaos run is replayed byte-for-byte by re-running
// with the same seed (`go test -run Chaos -fault.seed=N`); the recorded
// Schedule says exactly which fault fired at which call of which site.
//
// The injector never touches production code paths: it slots in through
// seams that already exist (http.Client on dist workers, Config hooks on
// serve), and a nil *Injector rolls only None decisions, so call sites
// need no guards.
package fault

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"dod/internal/obs"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// None means the operation proceeds untouched.
	None Kind = iota
	// Latency delays the operation by Decision.Delay.
	Latency
	// Error fails the operation before it takes effect.
	Error
	// Drop lets the operation take effect but loses its response.
	Drop
	// Corrupt flips one byte of the operation's payload.
	Corrupt
	// Partition fails this operation and the next PartitionLen-1 at the
	// same site — a connectivity outage window.
	Partition
)

// String names the kind for schedules and metrics.
func (k Kind) String() string {
	switch k {
	case Latency:
		return "latency"
	case Error:
		return "error"
	case Drop:
		return "drop"
	case Corrupt:
		return "corrupt"
	case Partition:
		return "partition"
	default:
		return "none"
	}
}

// Rule attaches fault probabilities to sites. Probabilities are rolled in
// order (latency first, then error, drop, corrupt, partition); at most one
// fault fires per decision, but latency may combine with a clean pass.
type Rule struct {
	// Site selects which sites the rule covers: an exact name, or a
	// prefix ending in '*' ("worker.*"). The first matching rule wins;
	// sites with no matching rule never fault.
	Site string

	// PLatency is the probability of injected latency, drawn uniformly
	// from (0, MaxLatency].
	PLatency   float64
	MaxLatency time.Duration

	// PError fails the operation outright.
	PError float64
	// PDrop performs the operation but loses the response.
	PDrop float64
	// PCorrupt flips one payload byte.
	PCorrupt float64
	// PPartition opens an outage window of PartitionLen operations.
	PPartition   float64
	PartitionLen int
}

func (r Rule) matches(site string) bool {
	if p, ok := strings.CutSuffix(r.Site, "*"); ok {
		return strings.HasPrefix(site, p)
	}
	return r.Site == site
}

// Decision is one roll's outcome.
type Decision struct {
	Site  string        `json:"site"`
	Call  int           `json:"call"` // 1-based per-site operation counter
	Kind  Kind          `json:"-"`
	Fault string        `json:"fault"` // Kind.String(), for JSON schedules
	Delay time.Duration `json:"delayNs,omitempty"`
	// Aux seeds payload corruption (byte offset and bit are derived from
	// it modulo the payload length) so corruption is reproducible without
	// the injector seeing the payload in advance.
	Aux uint64 `json:"aux,omitempty"`
}

// Err returns the typed injected error for failing kinds, nil otherwise.
func (d Decision) Err() error {
	switch d.Kind {
	case Error, Partition:
		return &InjectedError{D: d}
	case Drop:
		return &InjectedError{D: d, AfterEffect: true}
	default:
		return nil
	}
}

// InjectedError is the error surfaced by failing decisions, so tests can
// distinguish injected faults from real ones.
type InjectedError struct {
	D Decision
	// AfterEffect means the operation took effect before the failure
	// (a dropped response rather than a refused request).
	AfterEffect bool
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("fault: injected %s at %s call %d", e.D.Kind, e.D.Site, e.D.Call)
}

// Config builds an Injector.
type Config struct {
	// Seed drives every site's decision stream.
	Seed int64
	// Rules attach probabilities to sites; first match wins.
	Rules []Rule
	// Obs, when set, receives dod_fault_injected_total{kind,site} counters
	// so injected faults are observable next to the system's own metrics.
	Obs *obs.Registry
}

// Injector is the named-site registry. A nil *Injector is valid and inert.
type Injector struct {
	cfg Config

	mu       sync.Mutex
	sites    map[string]*Site
	schedule []Decision
	counters map[Kind]*obs.Counter
}

// New builds an Injector.
func New(cfg Config) *Injector {
	in := &Injector{cfg: cfg, sites: make(map[string]*Site)}
	if cfg.Obs != nil {
		const help = "Faults injected by the chaos harness, by kind."
		in.counters = make(map[Kind]*obs.Counter)
		for _, k := range []Kind{Latency, Error, Drop, Corrupt, Partition} {
			in.counters[k] = cfg.Obs.Counter("dod_fault_injected_total", help, obs.L("kind", k.String()))
		}
	}
	return in
}

// Site returns the named site, creating it on first use. Sites are cheap;
// name them after the operation they guard ("worker.w1/dist/v1/poll",
// "serve.ingest").
func (in *Injector) Site(name string) *Site {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.sites[name]
	if s == nil {
		s = &Site{in: in, name: name, rng: rand.New(rand.NewSource(siteSeed(in.cfg.Seed, name)))}
		for _, r := range in.cfg.Rules {
			if r.matches(name) {
				rule := r
				s.rule = &rule
				break
			}
		}
		in.sites[name] = s
	}
	return s
}

// siteSeed mixes the injector seed with the site name, giving every site
// an independent deterministic stream.
func siteSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d\x00%s", seed, name)
	return int64(h.Sum64())
}

// record appends d to the schedule and bumps the fault counter.
func (in *Injector) record(d Decision) {
	in.mu.Lock()
	in.schedule = append(in.schedule, d)
	in.mu.Unlock()
	if c := in.counters[d.Kind]; c != nil {
		c.Inc()
	}
}

// Schedule snapshots every non-None decision so far, in arrival order.
// Per-site ordering is deterministic under a fixed seed; interleaving
// across sites reflects the actual run.
func (in *Injector) Schedule() []Decision {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Decision(nil), in.schedule...)
}

// SiteNames lists the sites that have been rolled at least once, sorted.
func (in *Injector) SiteNames() []string {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	names := make([]string, 0, len(in.sites))
	for n := range in.sites {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Site is one named injection point. A nil *Site rolls None forever.
type Site struct {
	in   *Injector
	name string
	rule *Rule

	mu            sync.Mutex
	rng           *rand.Rand
	calls         int
	partitionLeft int
}

// Roll draws the next decision for this site. The caller applies it:
// sleep Decision.Delay, return Decision.Err(), corrupt via CorruptBytes.
func (s *Site) Roll() Decision {
	if s == nil {
		return Decision{Kind: None, Fault: None.String()}
	}
	s.mu.Lock()
	s.calls++
	d := Decision{Site: s.name, Call: s.calls, Kind: None}
	if s.partitionLeft > 0 {
		s.partitionLeft--
		d.Kind = Partition
	} else if r := s.rule; r != nil {
		// One rand draw per probability keeps the stream's consumption
		// fixed per call, so decision k never depends on decision k-1's
		// outcome beyond the partition window.
		pl, pe, pd, pc, pp := s.rng.Float64(), s.rng.Float64(), s.rng.Float64(), s.rng.Float64(), s.rng.Float64()
		frac := s.rng.Float64()
		aux := s.rng.Uint64()
		switch {
		case pe < r.PError:
			d.Kind = Error
		case pd < r.PDrop:
			d.Kind = Drop
		case pc < r.PCorrupt:
			d.Kind = Corrupt
			d.Aux = aux
		case pp < r.PPartition:
			d.Kind = Partition
			n := r.PartitionLen
			if n < 1 {
				n = 3
			}
			s.partitionLeft = n - 1
		case pl < r.PLatency && r.MaxLatency > 0:
			d.Kind = Latency
			d.Delay = time.Duration(frac * float64(r.MaxLatency))
			if d.Delay <= 0 {
				d.Delay = time.Millisecond
			}
		}
	}
	s.mu.Unlock()
	d.Fault = d.Kind.String()
	if d.Kind != None {
		s.in.record(d)
	}
	return d
}

// CorruptBytes flips one byte of data in place per the decision's Aux,
// returning whether anything changed (empty payloads cannot corrupt).
func CorruptBytes(d Decision, data []byte) bool {
	if d.Kind != Corrupt || len(data) == 0 {
		return false
	}
	off := int(d.Aux % uint64(len(data)))
	data[off] ^= byte(1) << ((d.Aux >> 32) % 8)
	return true
}
