package wirejson

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
)

// pointLine mirrors httpapi.PointLine; redeclared here so the package's
// oracle tests do not depend on the serving tiers.
type pointLine struct {
	ID     uint64    `json:"id"`
	Coords []float64 `json:"coords"`
}

// verdictLine / scoreLine mirror the serving tiers' response structs; the
// append encoders must reproduce json.Encoder on these byte for byte.
type verdictLine struct {
	ID        uint64 `json:"id"`
	Seq       uint64 `json:"seq,omitempty"`
	Neighbors int    `json:"neighbors"`
	Outlier   bool   `json:"outlier"`
	Evicted   int    `json:"evicted,omitempty"`
	Error     string `json:"error,omitempty"`
}

type scoreLine struct {
	ID        uint64 `json:"id"`
	Neighbors int    `json:"neighbors"`
	Outlier   bool   `json:"outlier"`
	Error     string `json:"error,omitempty"`
}

// checkParseParity asserts the fast-path/oracle contract on one line: if
// the fast path accepts, the oracle must accept with bit-identical values.
// (The fast path rejecting is always fine — production falls back.)
func checkParseParity(t *testing.T, line []byte) {
	t.Helper()
	id, coords, ok := ParsePoint(line, nil)
	if !ok {
		return
	}
	var pl pointLine
	if err := json.Unmarshal(line, &pl); err != nil {
		t.Fatalf("fast path accepted %q but oracle rejects: %v", line, err)
	}
	if id != pl.ID {
		t.Fatalf("line %q: fast id %d, oracle %d", line, id, pl.ID)
	}
	if len(coords) != len(pl.Coords) {
		t.Fatalf("line %q: fast %d coords, oracle %d", line, len(coords), len(pl.Coords))
	}
	for i := range coords {
		if math.Float64bits(coords[i]) != math.Float64bits(pl.Coords[i]) {
			t.Fatalf("line %q coord %d: fast %v (%x), oracle %v (%x)",
				line, i, coords[i], math.Float64bits(coords[i]), pl.Coords[i], math.Float64bits(pl.Coords[i]))
		}
	}
}

func TestParsePointAcceptsCanonical(t *testing.T) {
	cases := []struct {
		line   string
		id     uint64
		coords []float64
	}{
		{`{"id":0,"coords":[]}`, 0, nil},
		{`{"id":7,"coords":[1.5,-2.25]}`, 7, []float64{1.5, -2.25}},
		{`{"id":18446744073709551615,"coords":[0]}`, math.MaxUint64, []float64{0}},
		{`{"id":3,"coords":[-0]}`, 3, []float64{math.Copysign(0, -1)}},
		{`{"id":3,"coords":[1e3,2E-2,0.125,-0.5e+1]}`, 3, []float64{1000, 0.02, 0.125, -5}},
		{`{"id":1,"coords":[2.2250738585072014e-308]}`, 1, []float64{2.2250738585072014e-308}},
	}
	for _, c := range cases {
		id, coords, ok := ParsePoint([]byte(c.line), nil)
		if !ok {
			t.Fatalf("fast path rejected canonical line %q", c.line)
		}
		if id != c.id || len(coords) != len(c.coords) {
			t.Fatalf("line %q: got id=%d coords=%v", c.line, id, coords)
		}
		for i := range coords {
			if math.Float64bits(coords[i]) != math.Float64bits(c.coords[i]) {
				t.Fatalf("line %q coord %d: got %v", c.line, i, coords[i])
			}
		}
		checkParseParity(t, []byte(c.line))
	}
}

func TestParsePointFallsBack(t *testing.T) {
	// Lines the fast path must punt on: either invalid JSON (the oracle's
	// error text is the contract) or valid but non-canonical spellings.
	lines := []string{
		``,
		`{}`,
		`{"coords":[1],"id":2}`,       // reordered fields
		`{"id": 7,"coords":[1]}`,      // whitespace
		`{"id":7,"coords":[1]} `,      // trailing space
		`{"id":7,"coords":[1],"x":2}`, // extra field
		`{"id":-1,"coords":[1]}`,      // negative id
		`{"id":01,"coords":[1]}`,      // leading zero
		`{"id":1e2,"coords":[1]}`,     // exponent id
		`{"id":18446744073709551616,"coords":[1]}`, // uint64 overflow
		`{"id":7,"coords":[1e999]}`,                // float overflow
		`{"id":7,"coords":[NaN]}`,                  // not JSON
		`{"id":7,"coords":[Infinity]}`,
		`{"id":7,"coords":[+1]}`,
		`{"id":7,"coords":[.5]}`,
		`{"id":7,"coords":[1.]}`,
		`{"id":7,"coords":[01]}`,
		`{"id":7,"coords":[1,]}`,
		`{"id":7,"coords":[1]`,
		`{"id":7,"coords":null}`,
		`{"id":7}`,
		`not json at all`,
	}
	for _, line := range lines {
		if _, _, ok := ParsePoint([]byte(line), nil); ok {
			t.Fatalf("fast path accepted non-canonical line %q", line)
		}
	}
}

func encodeOracle(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func checkVerdictParity(t *testing.T, id, seq uint64, neighbors int, outlier bool, evicted int, errMsg string) {
	t.Helper()
	got := AppendVerdict(nil, id, seq, neighbors, outlier, evicted, errMsg)
	want := encodeOracle(t, verdictLine{ID: id, Seq: seq, Neighbors: neighbors, Outlier: outlier, Evicted: evicted, Error: errMsg})
	if !bytes.Equal(got, want) {
		t.Fatalf("verdict mismatch:\nfast   %q\noracle %q", got, want)
	}
}

func checkScoreParity(t *testing.T, id uint64, neighbors int, outlier bool, errMsg string) {
	t.Helper()
	got := AppendScore(nil, id, neighbors, outlier, errMsg)
	want := encodeOracle(t, scoreLine{ID: id, Neighbors: neighbors, Outlier: outlier, Error: errMsg})
	if !bytes.Equal(got, want) {
		t.Fatalf("score mismatch:\nfast   %q\noracle %q", got, want)
	}
}

func TestAppendMatchesEncoder(t *testing.T) {
	msgs := []string{
		"",
		"duplicate id 7 in window",
		`malformed point line: invalid character 'x' looking for beginning of value`,
		"quote \" backslash \\ slash /",
		"html <b>&amp;</b>",
		"controls \x00\x01\x1f\b\f\n\r\t",
		"unicode précis 世界   ",
		"invalid utf8 \x80\xfe mixed",
		"trailing high surrogate \xed\xa0\x80",
	}
	for _, msg := range msgs {
		checkVerdictParity(t, 1, 0, 3, true, 0, msg)
		checkVerdictParity(t, 42, 99, 0, false, 2, msg)
		checkScoreParity(t, 7, 12, false, msg)
	}
	checkVerdictParity(t, 0, 0, 0, false, 0, "")
	checkVerdictParity(t, math.MaxUint64, math.MaxUint64, math.MaxInt, true, math.MaxInt, "")
	checkScoreParity(t, math.MaxUint64, -1, true, "")
}

// FuzzWireJSON pins both directions of the fast path to the encoding/json
// oracle: any line the parser accepts must be oracle-accepted with
// bit-identical values, and the append encoders must produce oracle bytes
// for arbitrary field contents (the raw input doubles as the error string,
// exercising escaping on invalid UTF-8 and control bytes).
func FuzzWireJSON(f *testing.F) {
	f.Add([]byte(`{"id":7,"coords":[1.5,-2.25]}`), uint64(1), 3, true)
	f.Add([]byte(`{"id":0,"coords":[]}`), uint64(0), 0, false)
	f.Add([]byte(`{"id":7,"coords":[1e999]}`), uint64(9), -4, true)
	f.Add([]byte(`{"id":18446744073709551615,"coords":[-0,0.5e-3]}`), uint64(1<<63), 1, false)
	f.Add([]byte("<html> \x80\xff&"), uint64(3), 2, true)
	f.Fuzz(func(t *testing.T, line []byte, seq uint64, neighbors int, outlier bool) {
		checkParseParity(t, line)
		msg := string(line)
		evicted := neighbors / 2
		checkVerdictParity(t, seq, seq>>1, neighbors, outlier, evicted, msg)
		checkScoreParity(t, seq, neighbors, outlier, msg)
	})
}

// The whole point: steady-state parse and encode must not allocate.
func TestZeroAllocs(t *testing.T) {
	line := []byte(`{"id":12345,"coords":[1.5,-2.25,3.75,100.125]}`)
	coords := make([]float64, 0, 16)
	if n := testing.AllocsPerRun(200, func() {
		_, c, ok := ParsePoint(line, coords[:0])
		if !ok || len(c) != 4 {
			t.Fatal("parse failed")
		}
	}); n != 0 {
		t.Fatalf("ParsePoint allocates %v per run, want 0", n)
	}
	buf := make([]byte, 0, 256)
	if n := testing.AllocsPerRun(200, func() {
		b := AppendVerdict(buf[:0], 12345, 99, 7, false, 1, "")
		b = AppendScore(b, 12345, 7, true, "window full")
		if len(b) == 0 {
			t.Fatal("empty encode")
		}
	}); n != 0 {
		t.Fatalf("Append encoders allocate %v per run, want 0", n)
	}
}
