// Package wirejson is the zero-allocation NDJSON fast path for the serving
// tiers' wire format. The serving hot loop spends a measurable fraction of
// its time in reflection-based encoding/json for two fixed shapes: the
// ingest/score request line
//
//	{"id":7,"coords":[1.5,-2.25]}
//
// and the verdict/score response lines. This package hand-rolls both
// directions:
//
//   - ParsePoint recognizes exactly the canonical request-line shape above
//     (strict JSON grammar, no whitespace, fields in order) and parses it
//     with zero heap allocations, appending coords into a caller-owned
//     buffer. Any line it does not recognize — reordered fields, extra
//     whitespace, trailing garbage, numbers outside the JSON grammar,
//     overflowing ids, NaN/Inf spellings — is answered ok=false WITHOUT
//     judging validity, and the caller falls back to the encoding/json
//     oracle. The fallback keeps accept/reject behavior, parsed values, and
//     error strings bit-identical to the oracle by construction: the fast
//     path only ever accepts a subset of what the oracle accepts, with the
//     same values (both defer to strconv.ParseFloat, which is what
//     encoding/json uses for float64).
//
//   - AppendVerdict/AppendScore/AppendString reproduce encoding/json's
//     output for the response-line structs byte for byte, including
//     omitempty semantics, HTML escaping (backslash-u escapes for <, >, &
//     and U+2028/U+2029), the � replacement of invalid UTF-8, and the
//     json.Encoder trailing newline.
//
// FuzzWireJSON pins both directions against the encoding/json oracle.
package wirejson

import (
	"strconv"
	"unicode/utf8"
	"unsafe"
)

// ParsePoint parses the canonical point line {"id":N,"coords":[...]} with
// zero allocations. Coords are appended to dst (pass a pooled buffer, or
// nil); the returned slice aliases dst's backing array. ok=false means the
// fast path does not recognize the line — not that the line is invalid —
// and the caller must re-parse with encoding/json so that values and error
// text stay oracle-identical.
func ParsePoint(line []byte, dst []float64) (id uint64, coords []float64, ok bool) {
	const idPrefix = `{"id":`
	const coordsPrefix = `,"coords":[`
	if len(line) < len(idPrefix)+len(coordsPrefix)+2 || string(line[:len(idPrefix)]) != idPrefix {
		return 0, dst, false
	}
	i := len(idPrefix)
	id, i, ok = parseUint(line, i)
	if !ok || i+len(coordsPrefix) > len(line) || string(line[i:i+len(coordsPrefix)]) != coordsPrefix {
		return 0, dst, false
	}
	i += len(coordsPrefix)
	coords = dst
	if i < len(line) && line[i] == ']' {
		i++ // empty coords array
	} else {
		for {
			var f float64
			f, i, ok = parseFloat(line, i)
			if !ok {
				return 0, dst, false
			}
			coords = append(coords, f)
			if i >= len(line) {
				return 0, dst, false
			}
			if line[i] == ',' {
				i++
				continue
			}
			if line[i] == ']' {
				i++
				break
			}
			return 0, dst, false
		}
	}
	// Exactly "}" must remain: anything after it (even whitespace the
	// oracle would tolerate) punts to the fallback.
	if i+1 != len(line) || line[i] != '}' {
		return 0, dst, false
	}
	return id, coords, true
}

// parseUint consumes a JSON-grammar unsigned integer (no sign, no leading
// zero, no exponent) that fits uint64. Overflow or any other spelling the
// grammar allows elsewhere (1e3, 0x..) is ok=false so the oracle's error
// text is authoritative.
func parseUint(b []byte, i int) (uint64, int, bool) {
	start := i
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		i++
	}
	n := i - start
	if n == 0 || n > 20 || (n > 1 && b[start] == '0') {
		return 0, i, false
	}
	v, err := strconv.ParseUint(bstr(b[start:i]), 10, 64)
	if err != nil {
		return 0, i, false
	}
	return v, i, true
}

// parseFloat consumes one number token matching the strict JSON grammar
//
//	-?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
//
// and converts it with strconv.ParseFloat — the same conversion
// encoding/json performs for float64 targets, so accepted values are
// bit-identical. Out-of-range numbers (1e999) are ok=false: the oracle
// rejects them with its own error text.
func parseFloat(b []byte, i int) (float64, int, bool) {
	start := i
	if i < len(b) && b[i] == '-' {
		i++
	}
	// Integer part: 0, or nonzero digit followed by digits.
	switch {
	case i < len(b) && b[i] == '0':
		i++
	case i < len(b) && b[i] >= '1' && b[i] <= '9':
		i++
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	default:
		return 0, i, false
	}
	if i < len(b) && b[i] == '.' {
		i++
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return 0, i, false
		}
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			i++
		}
		if i >= len(b) || b[i] < '0' || b[i] > '9' {
			return 0, i, false
		}
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	f, err := strconv.ParseFloat(bstr(b[start:i]), 64)
	if err != nil {
		return 0, i, false
	}
	return f, i, true
}

// bstr views a byte slice as a string without copying. The string is only
// passed to strconv parsers, which do not retain it past the call.
func bstr(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// AppendVerdict appends one ingest-verdict response line, byte-identical to
// json.Encoder on the serving tiers' verdict struct (field order id, seq,
// neighbors, outlier, evicted, error; seq/evicted/error omitempty) plus the
// encoder's trailing newline.
func AppendVerdict(dst []byte, id, seq uint64, neighbors int, outlier bool, evicted int, errMsg string) []byte {
	dst = append(dst, `{"id":`...)
	dst = strconv.AppendUint(dst, id, 10)
	if seq != 0 {
		dst = append(dst, `,"seq":`...)
		dst = strconv.AppendUint(dst, seq, 10)
	}
	dst = appendNeighborsOutlier(dst, neighbors, outlier)
	if evicted != 0 {
		dst = append(dst, `,"evicted":`...)
		dst = strconv.AppendInt(dst, int64(evicted), 10)
	}
	dst = appendErrField(dst, errMsg)
	return append(dst, '}', '\n')
}

// AppendScore appends one score response line, byte-identical to
// json.Encoder on the serving tiers' score struct.
func AppendScore(dst []byte, id uint64, neighbors int, outlier bool, errMsg string) []byte {
	dst = append(dst, `{"id":`...)
	dst = strconv.AppendUint(dst, id, 10)
	dst = appendNeighborsOutlier(dst, neighbors, outlier)
	dst = appendErrField(dst, errMsg)
	return append(dst, '}', '\n')
}

func appendNeighborsOutlier(dst []byte, neighbors int, outlier bool) []byte {
	dst = append(dst, `,"neighbors":`...)
	dst = strconv.AppendInt(dst, int64(neighbors), 10)
	if outlier {
		return append(dst, `,"outlier":true`...)
	}
	return append(dst, `,"outlier":false`...)
}

func appendErrField(dst []byte, errMsg string) []byte {
	if errMsg == "" {
		return dst
	}
	dst = append(dst, `,"error":`...)
	return AppendString(dst, errMsg)
}

const hexDigits = "0123456789abcdef"

// AppendString appends a JSON string literal exactly as encoding/json with
// its default escapeHTML=true: short escapes for quote, backslash, \b \f
// \n \r \t; \u00XX for other control bytes and for < > &; � for
// invalid UTF-8;   and   escaped. Error messages can carry
// arbitrary client bytes (parse errors quote the input), so this must
// cover everything.
func AppendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch c {
			case '\\', '"':
				dst = append(dst, '\\', c)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}
