package stream

import (
	"time"

	"dod/internal/errs"
	"dod/internal/geom"
	"dod/internal/index"
	"dod/internal/par"
)

// ProcessBatch ingests pts in order under one window lock acquisition and
// one arrival timestamp, returning index-aligned verdicts and per-item
// errors. It is semantically a loop of Process calls that all observe the
// same now: verdicts, sequence numbers, evictions and flips are
// bit-identical to processing the points one at a time at that instant, for
// any way of splitting a stream into batches. A failed item (dimension
// mismatch, duplicate ID) gets its error slot set and a zero Verdict; the
// remaining items still process — ingest is not fail-fast.
//
// errors[i] == nil iff pts[i] was admitted. A closed window fails every
// slot with errs.ErrClosed.
func (w *Window) ProcessBatch(pts []geom.Point, now time.Time) ([]Verdict, []error) {
	verdicts := make([]Verdict, len(pts))
	errors := make([]error, len(pts))
	if w.closed.Load() {
		for i := range errors {
			errors[i] = errs.ErrClosed
		}
		return verdicts, errors
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range pts {
		verdicts[i], errors[i] = w.processLocked(pts[i], now)
	}
	return verdicts, errors
}

// ScoreBatch scores pts read-only against the current window contents,
// spread over up to workers goroutines (workers < 1 means GOMAXPROCS). Each
// worker owns an index.CountScratch, so the steady-state per-point query
// allocates nothing and concurrent scoring scales with index shards — the
// same lock-free property as ScorePoint. Results are index-aligned and
// identical to calling ScorePoint on each item; like ProcessBatch, errors
// are reported per slot rather than failing the batch.
//
// ScoreBatch takes no window lock, so a concurrent Process interleaves at
// cell granularity exactly as it would with concurrent ScorePoint calls.
func (w *Window) ScoreBatch(pts []geom.Point, workers int) ([]Score, []error) {
	scores := make([]Score, len(pts))
	errors := make([]error, len(pts))
	if w.closed.Load() {
		for i := range errors {
			errors[i] = errs.ErrClosed
		}
		return scores, errors
	}
	par.Do(len(pts), par.Workers(workers), func(tile, lo, hi int) {
		sc := index.NewCountScratch()
		for i := lo; i < hi; i++ {
			n, err := w.ix.NeighborCountScratch(sc, pts[i], w.cfg.K)
			if err != nil {
				errors[i] = err
				continue
			}
			scores[i] = Score{ID: pts[i].ID, Neighbors: n, Outlier: n < w.cfg.K}
		}
	})
	return scores, errors
}
