package stream

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"dod/internal/core"
	"dod/internal/detect"
	"dod/internal/geom"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func randPoint(id uint64, dim int, scale float64, rng *rand.Rand) geom.Point {
	coords := make([]float64, dim)
	for j := range coords {
		coords[j] = rng.Float64() * scale
	}
	return geom.Point{ID: id, Coords: coords}
}

// referenceOutliers runs the batch brute-force detector over the points.
func referenceOutliers(points []geom.Point, r float64, k int) []uint64 {
	if len(points) == 0 {
		return nil
	}
	res := core.DetectCentralized(points, detect.BruteForce, detect.Params{R: r, K: k}, 1)
	ids := append([]uint64(nil), res.OutlierIDs...)
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	return ids
}

func assertMatchesBatch(t *testing.T, w *Window, r float64, k int, step int) {
	t.Helper()
	snap := w.Snapshot()
	want := referenceOutliers(snap.Points, r, k)
	if !reflect.DeepEqual(snap.OutlierIDs, want) {
		t.Fatalf("step %d: window outliers %v != batch outliers %v (window size %d)",
			step, snap.OutlierIDs, want, len(snap.Points))
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{R: 0, K: 3, Dim: 2, Capacity: 10},
		{R: 1, K: 0, Dim: 2, Capacity: 10},
		{R: 1, K: 3, Dim: 0, Capacity: 10},
		{R: 1, K: 3, Dim: 2},               // no bound at all
		{R: 1, K: 3, Dim: 2, Capacity: -1}, // negative capacity
		{R: 1, K: 3, Dim: 2, TTL: -time.Second},
	}
	for i, cfg := range bad {
		if _, err := NewWindow(cfg); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
	if _, err := NewWindow(Config{R: 1, K: 3, Dim: 2, Capacity: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateIDRejected(t *testing.T) {
	w, err := NewWindow(Config{R: 1, K: 2, Dim: 2, Capacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	p := geom.Point{ID: 7, Coords: []float64{1, 1}}
	if _, err := w.Process(p, t0); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Process(p, t0); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	// After the duplicate ages out, the ID is reusable.
	w2, err := NewWindow(Config{R: 1, K: 2, Dim: 2, Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Process(p, t0); err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Process(geom.Point{ID: 8, Coords: []float64{2, 2}}, t0); err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Process(p, t0); err != nil {
		t.Fatalf("ID rejected after eviction: %v", err)
	}
}

func TestDimensionMismatch(t *testing.T) {
	w, err := NewWindow(Config{R: 1, K: 2, Dim: 2, Capacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	bad := geom.Point{ID: 1, Coords: []float64{1}}
	if _, err := w.Process(bad, t0); err == nil {
		t.Error("Process accepted mismatched dimension")
	}
	if _, err := w.ScorePoint(bad); err == nil {
		t.Error("ScorePoint accepted mismatched dimension")
	}
}

// TestMatchesBatchOnEveryStep is the core correctness property: after every
// single ingest, the window's incremental verdicts equal the batch detector
// run from scratch on the identical window contents.
func TestMatchesBatchOnEveryStep(t *testing.T) {
	const (
		r        = 1.3
		k        = 3
		capacity = 60
		steps    = 400
	)
	rng := rand.New(rand.NewSource(99))
	w, err := NewWindow(Config{R: r, K: k, Dim: 2, Capacity: capacity, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < steps; i++ {
		// Drift the stream so eviction crosses density regimes.
		center := float64(i) / 40
		p := randPoint(uint64(i), 2, 4, rng)
		p.Coords[0] += center
		if _, err := w.Process(p, t0.Add(time.Duration(i)*time.Second)); err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			assertMatchesBatch(t, w, r, k, i)
		}
	}
	assertMatchesBatch(t, w, r, k, steps)
}

// TestTTLEviction checks the time-based horizon with a batch
// cross-validation after every expiry wave.
func TestTTLEviction(t *testing.T) {
	const (
		r   = 1.5
		k   = 2
		ttl = 10 * time.Second
	)
	rng := rand.New(rand.NewSource(5))
	w, err := NewWindow(Config{R: r, K: k, Dim: 2, TTL: ttl})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		now := t0.Add(time.Duration(i) * time.Second)
		if _, err := w.Process(randPoint(uint64(i), 2, 5, rng), now); err != nil {
			t.Fatal(err)
		}
		if got := w.Stats().Len; got > 11 {
			t.Fatalf("step %d: window holds %d points, ttl admits at most 11", i, got)
		}
		assertMatchesBatch(t, w, r, k, i)
	}
	// An idle drain empties the window entirely.
	if n := w.EvictExpired(t0.Add(time.Hour)); n == 0 {
		t.Fatal("EvictExpired evicted nothing")
	}
	if got := w.Stats().Len; got != 0 {
		t.Fatalf("window holds %d points after full drain", got)
	}
	assertMatchesBatch(t, w, r, k, -1)
}

func TestVerdictFields(t *testing.T) {
	w, err := NewWindow(Config{R: 2, K: 1, Dim: 2, Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	v1, err := w.Process(geom.Point{ID: 1, Coords: []float64{0, 0}}, t0)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Seq != 1 || !v1.Outlier || v1.Neighbors != 0 || v1.Evicted != 0 {
		t.Fatalf("first verdict %+v", v1)
	}
	v2, err := w.Process(geom.Point{ID: 2, Coords: []float64{1, 0}}, t0)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Seq != 2 || v2.Outlier || v2.Neighbors != 1 {
		t.Fatalf("second verdict %+v", v2)
	}
	// Capacity 2: the third ingest evicts point 1.
	v3, err := w.Process(geom.Point{ID: 3, Coords: []float64{100, 100}}, t0)
	if err != nil {
		t.Fatal(err)
	}
	if v3.Seq != 3 || !v3.Outlier || v3.Evicted != 1 {
		t.Fatalf("third verdict %+v", v3)
	}
	st := w.Stats()
	if st.Len != 2 || st.Ingested != 3 || st.Evicted != 1 || st.Seq != 3 {
		t.Fatalf("stats %+v", st)
	}
	// Point 2 lost its only neighbor and must have flipped to outlier.
	if st.Outliers != 2 || st.FlipOut != 1 {
		t.Fatalf("flip bookkeeping %+v", st)
	}
}

func TestScorePoint(t *testing.T) {
	w, err := NewWindow(Config{R: 2, K: 2, Dim: 2, Capacity: 100})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		p := geom.Point{ID: uint64(i), Coords: []float64{float64(i) * 0.1, 0}}
		if _, err := w.Process(p, t0); err != nil {
			t.Fatal(err)
		}
	}
	// A query inside the cluster is an inlier; scoring does not ingest.
	in, err := w.ScorePoint(geom.Point{ID: 1000, Coords: []float64{0.2, 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if in.Outlier || in.Neighbors != 2 {
		t.Fatalf("cluster score %+v", in)
	}
	out, err := w.ScorePoint(geom.Point{ID: 1001, Coords: []float64{50, 50}})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Outlier || out.Neighbors != 0 {
		t.Fatalf("far score %+v", out)
	}
	// Scoring a resident point excludes itself, matching batch semantics.
	self, err := w.ScorePoint(geom.Point{ID: 0, Coords: []float64{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if self.Neighbors != 2 {
		t.Fatalf("self score %+v", self)
	}
	if got := w.Stats().Len; got != 5 {
		t.Fatalf("scoring mutated the window: len %d", got)
	}
}

// TestConcurrentHammer drives concurrent ingest, score, and stats reads
// under the race detector, then cross-validates the final window against
// the batch detector.
func TestConcurrentHammer(t *testing.T) {
	const (
		r        = 1.0
		k        = 3
		capacity = 300
		writers  = 4
		readers  = 4
		perG     = 250
	)
	w, err := NewWindow(Config{R: r, K: k, Dim: 2, Capacity: capacity, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perG; i++ {
				p := randPoint(uint64(g*perG+i), 2, 8, rng)
				if _, err := w.Process(p, t0.Add(time.Duration(i)*time.Millisecond)); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + g)))
			for i := 0; i < perG; i++ {
				q := randPoint(uint64(1_000_000+g*perG+i), 2, 8, rng)
				if _, err := w.ScorePoint(q); err != nil {
					t.Error(err)
					return
				}
				if i%50 == 0 {
					w.Stats()
					w.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	st := w.Stats()
	if st.Ingested != writers*perG {
		t.Fatalf("ingested %d, want %d", st.Ingested, writers*perG)
	}
	if st.Len != capacity {
		t.Fatalf("window len %d, want %d", st.Len, capacity)
	}
	assertMatchesBatch(t, w, r, k, -1)
}

// BenchmarkStreamIngestScore measures the serving hot path — one ingest
// plus a handful of concurrent scores per iteration — across shard counts,
// demonstrating that read throughput scales with the lock striping.
func BenchmarkStreamIngestScore(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			const capacity = 4096
			w, err := NewWindow(Config{R: 0.5, K: 4, Dim: 2, Capacity: capacity, Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1))
			for i := 0; i < capacity; i++ {
				if _, err := w.Process(randPoint(uint64(i), 2, 20, rng), t0); err != nil {
					b.Fatal(err)
				}
			}
			var mu sync.Mutex
			nextID := uint64(capacity)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(7))
				for pb.Next() {
					mu.Lock()
					id := nextID
					nextID++
					mu.Unlock()
					p := randPoint(id, 2, 20, rng)
					if _, err := w.Process(p, t0); err != nil {
						b.Error(err)
						return
					}
					for j := 0; j < 4; j++ {
						q := randPoint(1_000_000_000+id, 2, 20, rng)
						if _, err := w.ScorePoint(q); err != nil {
							b.Error(err)
							return
						}
					}
				}
			})
		})
	}
}
