// Package stream implements sliding-window distance-threshold outlier
// detection on top of the incremental grid index (internal/index).
//
// A Window holds the most recent points of an unbounded stream — bounded by
// a count capacity, a time horizon, or both — and maintains every resident
// point's exact neighbor count incrementally:
//
//   - when a point arrives, its neighbors are enumerated once through the
//     index; each gains a neighbor, and any current outlier reaching k
//     neighbors flips to inlier;
//   - when the oldest point expires, its neighbors each lose a neighbor,
//     and any inlier dropping below k flips to outlier.
//
// The window's verdict set is therefore always exactly what the batch
// detectors would produce on the same contents: Snapshot() == the outliers
// of dod.DetectCentralized over Points(). The property tests assert this
// equivalence on randomized streams.
//
// Process (mutation) is serialized by the window mutex; Score (read-only
// scoring of a query point against the window, without ingesting it) runs
// lock-free above the index's own striped locks, so scoring scales with
// index shards.
package stream

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dod/internal/detect"
	"dod/internal/errs"
	"dod/internal/geom"
	"dod/internal/index"
	"dod/internal/obs"
)

// Config parameterizes a sliding window.
type Config struct {
	// R is the neighbor distance threshold (Def. 2.1).
	R float64
	// K is the neighbor-count threshold: a window point is an outlier
	// iff it currently has fewer than K neighbors within R (Def. 2.2,
	// applied to the window contents).
	K int
	// Dim is the point dimensionality.
	Dim int
	// Capacity bounds the window point count; ingesting past it evicts
	// the oldest point first. Zero means no count bound.
	Capacity int
	// TTL bounds point age: points older than TTL relative to the
	// newest ingest time are evicted. Zero means no time bound.
	TTL time.Duration
	// Shards is the index shard count; default index.DefaultShards.
	Shards int
	// Obs, when non-nil, receives the window's and the underlying index's
	// metrics: ingest/evict/flip counters plus window-occupancy gauges.
	Obs *obs.Registry
}

// validate rejects unusable configurations; failures match
// errs.ErrBadParams.
func (cfg Config) validate() error {
	if err := (detect.Params{R: cfg.R, K: cfg.K}).Validate(); err != nil {
		return err
	}
	if cfg.Dim < 1 {
		return errs.BadParams("window dimension must be >= 1, got %d", cfg.Dim)
	}
	if cfg.Capacity < 0 {
		return errs.BadParams("window capacity must be >= 0, got %d", cfg.Capacity)
	}
	if cfg.TTL < 0 {
		return errs.BadParams("window ttl must be >= 0, got %s", cfg.TTL)
	}
	if cfg.Capacity == 0 && cfg.TTL == 0 {
		return errs.BadParams("window needs a capacity or a ttl (or both)")
	}
	return nil
}

// entry is a resident window point with its live bookkeeping.
type entry struct {
	pt      geom.Point
	seq     uint64    // monotonic ingest sequence number
	arrived time.Time // ingest timestamp (drives TTL eviction)
	count   int       // exact current neighbor count within the window
	outlier bool      // count < K
}

// Verdict is the outcome of ingesting one point.
type Verdict struct {
	ID        uint64 // the point's ID
	Seq       uint64 // its monotonic sequence number
	Neighbors int    // exact neighbor count at admission
	Outlier   bool   // Neighbors < K at admission
	Evicted   int    // points this ingest expired from the window
}

// Score is the outcome of a read-only query.
type Score struct {
	ID        uint64 // the query point's ID
	Neighbors int    // neighbor count, early-terminated at K
	Outlier   bool   // Neighbors < K
}

// Stats is a snapshot of the window counters.
type Stats struct {
	Len       int    // resident points
	Seq       uint64 // last assigned sequence number
	Ingested  uint64 // total points processed
	Evicted   uint64 // total points expired
	Outliers  int    // current outliers in the window
	FlipIn    uint64 // outlier→inlier transitions caused by arrivals
	FlipOut   uint64 // inlier→outlier transitions caused by evictions
	Occupancy []int  // resident points per index shard
}

// Window is a sliding window of stream points with always-current outlier
// verdicts. All methods are safe for concurrent use.
type Window struct {
	cfg Config
	ix  *index.Index
	met *windowMetrics // nil when unobserved

	closed atomic.Bool // set by Close; checked lock-free by Process/Score

	mu       sync.Mutex          // serializes mutation and snapshotting
	sc       *index.CountScratch // neighbor-walk buffers; guarded by mu
	entries  map[uint64]*entry
	fifo     []*entry // arrival order; fifo[head:] are resident
	head     int
	seq      uint64
	ingested uint64
	evicted  uint64
	outliers int
	flipIn   uint64
	flipOut  uint64
}

// windowMetrics are the obs instruments of one Window. Eviction and flip
// counters are incremented under w.mu alongside the Stats fields; the
// occupancy gauges read the live fields at scrape time.
type windowMetrics struct {
	ingested *obs.Counter
	evicted  *obs.Counter
	flipIn   *obs.Counter
	flipOut  *obs.Counter
}

// NewWindow builds an empty sliding window.
func NewWindow(cfg Config) (*Window, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ix, err := index.New(index.Config{Dim: cfg.Dim, R: cfg.R, Shards: cfg.Shards, Obs: cfg.Obs})
	if err != nil {
		return nil, err
	}
	w := &Window{
		cfg:     cfg,
		ix:      ix,
		sc:      index.NewCountScratch(),
		entries: make(map[uint64]*entry),
	}
	if reg := cfg.Obs; reg != nil {
		w.met = &windowMetrics{
			ingested: reg.Counter("dod_stream_ingested_total", "points admitted to the sliding window"),
			evicted:  reg.Counter("dod_stream_evicted_total", "points expired from the sliding window"),
			flipIn: reg.Counter("dod_stream_verdict_flips_total",
				"verdict transitions caused by window churn", obs.L("direction", "outlier_to_inlier")),
			flipOut: reg.Counter("dod_stream_verdict_flips_total",
				"verdict transitions caused by window churn", obs.L("direction", "inlier_to_outlier")),
		}
		reg.GaugeFunc("dod_stream_window_points", "points currently resident in the window",
			func() float64 { w.mu.Lock(); defer w.mu.Unlock(); return float64(w.len()) })
		reg.GaugeFunc("dod_stream_outliers", "current outliers in the window",
			func() float64 { w.mu.Lock(); defer w.mu.Unlock(); return float64(w.outliers) })
	}
	return w, nil
}

// Config returns the window configuration.
func (w *Window) Config() Config { return w.cfg }

// Process ingests p with the given arrival time, evicting expired points
// first, and returns p's admission verdict. Arrival times must be
// non-decreasing for TTL semantics to be meaningful; sequence numbers are
// assigned monotonically regardless.
func (w *Window) Process(p geom.Point, now time.Time) (Verdict, error) {
	if w.closed.Load() {
		return Verdict{}, errs.ErrClosed
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.processLocked(p, now)
}

// processLocked is one point's admission under w.mu — the unit both Process
// and ProcessBatch are built from, so a batch is exactly a sequence of
// single-point ingests sharing one lock acquisition.
func (w *Window) processLocked(p geom.Point, now time.Time) (Verdict, error) {
	if p.Dim() != w.cfg.Dim {
		return Verdict{}, &errs.DimMismatchError{ID: p.ID, Got: p.Dim(), Want: w.cfg.Dim}
	}
	if _, dup := w.entries[p.ID]; dup {
		return Verdict{}, &errs.DuplicateIDError{ID: p.ID}
	}

	evictions := 0
	if w.cfg.Capacity > 0 {
		for w.len() >= w.cfg.Capacity {
			w.evictOldest()
			evictions++
		}
	}
	evictions += w.evictExpired(now)

	// Enumerate p's neighbors once: p's exact admission count, and a
	// +1 for each of them (arrivals can only flip outliers to inliers).
	n := 0
	err := w.ix.NeighborsScratch(w.sc, p, func(q geom.Point) {
		n++
		e := w.entries[q.ID]
		e.count++
		if e.outlier && e.count >= w.cfg.K {
			e.outlier = false
			w.outliers--
			w.flipIn++
			if w.met != nil {
				w.met.flipIn.Inc()
			}
		}
	})
	if err != nil {
		return Verdict{}, err
	}
	// One clone serves both the index and the entry: neither mutates
	// coordinates, and snapshots clone again before leaving the lock.
	pc := p.Clone()
	if err := w.ix.Insert(pc); err != nil {
		return Verdict{}, err
	}
	w.seq++
	w.ingested++
	if w.met != nil {
		w.met.ingested.Inc()
	}
	e := &entry{pt: pc, seq: w.seq, arrived: now, count: n, outlier: n < w.cfg.K}
	if e.outlier {
		w.outliers++
	}
	w.entries[p.ID] = e
	w.fifo = append(w.fifo, e)
	return Verdict{ID: p.ID, Seq: e.seq, Neighbors: n, Outlier: e.outlier, Evicted: evictions}, nil
}

// EvictExpired expires every point older than the TTL horizon relative to
// now and returns how many were evicted. Process calls this implicitly;
// servers may also call it on a timer so idle windows drain.
func (w *Window) EvictExpired(now time.Time) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.evictExpired(now)
}

func (w *Window) evictExpired(now time.Time) int {
	if w.cfg.TTL <= 0 {
		return 0
	}
	horizon := now.Add(-w.cfg.TTL)
	n := 0
	for w.len() > 0 && w.fifo[w.head].arrived.Before(horizon) {
		w.evictOldest()
		n++
	}
	return n
}

// len is the resident point count; callers hold w.mu.
func (w *Window) len() int { return len(w.fifo) - w.head }

// evictOldest removes the head of the FIFO, decrementing its neighbors'
// counts (expiry can only flip inliers to outliers). Callers hold w.mu.
func (w *Window) evictOldest() {
	victim := w.fifo[w.head]
	w.fifo[w.head] = nil
	w.head++
	// The victim is older than every remaining point, so its departure
	// never affects its own bookkeeping — it is leaving anyway.
	w.ix.NeighborsScratch(w.sc, victim.pt, func(q geom.Point) {
		e := w.entries[q.ID]
		e.count--
		if !e.outlier && e.count < w.cfg.K {
			e.outlier = true
			w.outliers++
			w.flipOut++
			if w.met != nil {
				w.met.flipOut.Inc()
			}
		}
	})
	w.ix.Remove(victim.pt)
	delete(w.entries, victim.pt.ID)
	if victim.outlier {
		w.outliers--
	}
	w.evicted++
	if w.met != nil {
		w.met.evicted.Inc()
	}
	// Reclaim the drained prefix once it dominates the backing array.
	if w.head > 64 && w.head*2 > len(w.fifo) {
		w.fifo = append([]*entry(nil), w.fifo[w.head:]...)
		w.head = 0
	}
}

// ScorePoint scores a query point against the current window contents
// without ingesting it: would p be an outlier if judged against the
// resident points? The neighbor count early-terminates at K. A resident
// point may score itself (its own ID is excluded from its count, matching
// batch semantics). ScorePoint takes no window lock — it reads through the
// index's striped locks only, so concurrent scoring scales with shards.
func (w *Window) ScorePoint(p geom.Point) (Score, error) {
	if w.closed.Load() {
		return Score{}, errs.ErrClosed
	}
	n, err := w.ix.NeighborCount(p, w.cfg.K)
	if err != nil {
		return Score{}, err
	}
	return Score{ID: p.ID, Neighbors: n, Outlier: n < w.cfg.K}, nil
}

// Close marks the window closed: subsequent Process and ScorePoint calls
// fail with errs.ErrClosed. Close is idempotent; the window holds no
// goroutines or file handles, so Close exists for API symmetry and to make
// lifecycle bugs loud rather than silent. Snapshot and Stats keep working
// so a closed window can still be inspected.
func (w *Window) Close() error {
	w.closed.Store(true)
	return nil
}

// A Snapshot holds the resident points in arrival order and the IDs of the
// current outliers, sorted ascending. The pair is consistent: it reflects
// one instant between Process calls, so DetectCentralized over Points must
// yield exactly OutlierIDs.
type Snapshot struct {
	Points     []geom.Point
	OutlierIDs []uint64
	Seq        uint64
}

// Snapshot atomically captures the window contents and verdicts.
func (w *Window) Snapshot() Snapshot {
	w.mu.Lock()
	defer w.mu.Unlock()
	snap := Snapshot{
		Points: make([]geom.Point, 0, w.len()),
		Seq:    w.seq,
	}
	for _, e := range w.fifo[w.head:] {
		snap.Points = append(snap.Points, e.pt.Clone())
		if e.outlier {
			snap.OutlierIDs = append(snap.OutlierIDs, e.pt.ID)
		}
	}
	sort.Slice(snap.OutlierIDs, func(i, j int) bool { return snap.OutlierIDs[i] < snap.OutlierIDs[j] })
	return snap
}

// Stats returns a consistent snapshot of the window counters plus the
// per-shard index occupancy.
func (w *Window) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Stats{
		Len:       w.len(),
		Seq:       w.seq,
		Ingested:  w.ingested,
		Evicted:   w.evicted,
		Outliers:  w.outliers,
		FlipIn:    w.flipIn,
		FlipOut:   w.flipOut,
		Occupancy: w.ix.ShardOccupancy(),
	}
}
