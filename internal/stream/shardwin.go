package stream

import (
	"math"
	"sort"
	"sync"
	"time"

	"dod/internal/detect"
	"dod/internal/errs"
	"dod/internal/geom"
	"dod/internal/index"
	"dod/internal/obs"
)

// ShardWindow is one shard's slice of a cell-partitioned sliding window:
// the resident points whose grid cells this shard owns, with the same
// always-current exact neighbor counts a single-process Window maintains —
// except that a point's neighbors may live on other shards.
//
// The paper's Lemma 3.1 makes this decomposition exact: a point's verdict
// depends only on neighbor COUNTS from the bounded cell neighborhood, so
// cross-shard effects reduce to count queries and count deltas — no point
// data needs to be replicated. Every operation that would touch a foreign
// cell is split: cells this shard owns (per the caller-supplied ownership
// predicate) are processed against the local index exactly as Window
// does, and the remaining cells are handed to a SupportFunc, which the
// serving layer implements as codec-framed /v1/support calls to the
// owning shards.
//
// Unlike Window, a ShardWindow has no capacity or TTL of its own:
// eviction order is a property of the GLOBAL window, so the router tracks
// the global FIFO and commands evictions by point ID. That keeps the
// sharded tier's eviction sequence — and therefore every verdict flip —
// bit-identical to the single-process reference.
type ShardWindow struct {
	cfg ShardConfig
	ix  *index.Index
	met *windowMetrics // nil when unobserved; shares dod_stream_* names

	mu       sync.Mutex
	rec      OpRecorder // nil when unreplicated
	entries  map[uint64]*entry
	ingested uint64
	evicted  uint64
	outliers int
	flipIn   uint64
	flipOut  uint64
}

// OpRecorder observes every successful window mutation for replication.
// Calls arrive with the window mutex held, so the recorded order IS the
// mutation order — replaying the records in sequence rebuilds the window
// bit for bit. RecordSupport additionally mirrors the local half of a
// mutation whose cross-shard phase failed after local deltas were applied
// (Admit and EvictByID deliberately leak those deltas; the standby must
// leak them identically).
type OpRecorder interface {
	RecordAdmit(p geom.Point, seq uint64, arrivedNs int64, foreign, crossLater int)
	RecordEvict(id uint64)
	RecordSupport(p geom.Point, cells [][]int64, delta int)
	RecordImport(entries []ExportedEntry)
}

// SetRecorder attaches (or, with nil, detaches) the mutation recorder.
func (sw *ShardWindow) SetRecorder(rec OpRecorder) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	sw.rec = rec
}

// ShardConfig parameterizes a ShardWindow. R, K and Dim must match the
// router's topology exactly, or counts will disagree across shards.
type ShardConfig struct {
	R      float64
	K      int
	Dim    int
	Shards int // index lock stripes, not serving shards
	Obs    *obs.Registry
}

// SupportFunc resolves the foreign part of one neighborhood operation: it
// must deliver (point, cells, delta, limit) to the shards owning those
// cells and return the total neighbor count they report. Implementations
// retry internally — a returned error is terminal for the operation.
// Delta +1/-1 must be applied exactly once per call (the serving layer
// uses request-ID idempotency to keep retries safe); delta 0 with
// limit > 0 is a read-only count capped at limit.
type SupportFunc func(p geom.Point, cells [][]int64, delta, limit int) (int, error)

// OwnsFunc reports whether this shard owns a grid cell under the current
// topology. The cell slice is only valid during the call.
type OwnsFunc func(cell []int64) bool

// NewShardWindow builds an empty shard window.
func NewShardWindow(cfg ShardConfig) (*ShardWindow, error) {
	if err := (detect.Params{R: cfg.R, K: cfg.K}).Validate(); err != nil {
		return nil, err
	}
	if cfg.Dim < 1 {
		return nil, errs.BadParams("shard window dimension must be >= 1, got %d", cfg.Dim)
	}
	ix, err := index.New(index.Config{Dim: cfg.Dim, R: cfg.R, Shards: cfg.Shards, Obs: cfg.Obs})
	if err != nil {
		return nil, err
	}
	sw := &ShardWindow{
		cfg:     cfg,
		ix:      ix,
		entries: make(map[uint64]*entry),
	}
	if reg := cfg.Obs; reg != nil {
		sw.met = &windowMetrics{
			ingested: reg.Counter("dod_stream_ingested_total", "points admitted to the sliding window"),
			evicted:  reg.Counter("dod_stream_evicted_total", "points expired from the sliding window"),
			flipIn: reg.Counter("dod_stream_verdict_flips_total",
				"verdict transitions caused by window churn", obs.L("direction", "outlier_to_inlier")),
			flipOut: reg.Counter("dod_stream_verdict_flips_total",
				"verdict transitions caused by window churn", obs.L("direction", "inlier_to_outlier")),
		}
		reg.GaugeFunc("dod_stream_window_points", "points currently resident in this shard's window slice",
			func() float64 { sw.mu.Lock(); defer sw.mu.Unlock(); return float64(len(sw.entries)) })
		reg.GaugeFunc("dod_stream_outliers", "current outliers in this shard's window slice",
			func() float64 { sw.mu.Lock(); defer sw.mu.Unlock(); return float64(sw.outliers) })
	}
	return sw, nil
}

// Config returns the shard window configuration.
func (sw *ShardWindow) Config() ShardConfig { return sw.cfg }

// splitCells partitions p's neighborhood cells into owned and foreign,
// copying coordinates (the enumeration reuses its scratch slice).
func (sw *ShardWindow) splitCells(p geom.Point, owns OwnsFunc) (local, remote [][]int64) {
	sw.ix.NeighborhoodCells(p, func(cell []int64) {
		c := append([]int64(nil), cell...)
		if owns == nil || owns(c) {
			local = append(local, c)
		} else {
			remote = append(remote, c)
		}
	})
	return local, remote
}

// applyLocalDelta visits p's neighbors in the given owned cells, adjusting
// each resident neighbor's count by delta with the same flip rules
// Window.Process and Window.evictOldest apply, and returns the neighbor
// count found. Callers hold sw.mu.
func (sw *ShardWindow) applyLocalDelta(p geom.Point, cells [][]int64, delta int) (int, error) {
	return sw.ix.NeighborsInCells(p, cells, 0, func(q geom.Point) {
		e := sw.entries[q.ID]
		if e == nil {
			return // the probe point itself is not yet (or no longer) resident
		}
		sw.bump(e, delta)
	})
}

// bump adjusts one resident entry's neighbor count by delta with the flip
// rules Window.Process and Window.evictOldest apply. Callers hold sw.mu.
func (sw *ShardWindow) bump(e *entry, delta int) {
	e.count += delta
	switch {
	case delta > 0 && e.outlier && e.count >= sw.cfg.K:
		e.outlier = false
		sw.outliers--
		sw.flipIn++
		if sw.met != nil {
			sw.met.flipIn.Inc()
		}
	case delta < 0 && !e.outlier && e.count < sw.cfg.K:
		e.outlier = true
		sw.outliers++
		sw.flipOut++
		if sw.met != nil {
			sw.met.flipOut.Inc()
		}
	}
}

// Admit ingests p as the global window's seq-th point. The router has
// already evicted whatever the global capacity/TTL required, so Admit only
// counts neighbors (local cells directly, foreign cells through support
// with delta +1) and files the entry. The returned Verdict carries the
// router-assigned global sequence number.
func (sw *ShardWindow) Admit(p geom.Point, seq uint64, now time.Time, owns OwnsFunc, support SupportFunc) (Verdict, error) {
	if p.Dim() != sw.cfg.Dim {
		return Verdict{}, &errs.DimMismatchError{ID: p.ID, Got: p.Dim(), Want: sw.cfg.Dim}
	}
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if _, dup := sw.entries[p.ID]; dup {
		return Verdict{}, &errs.DuplicateIDError{ID: p.ID}
	}
	local, remote := sw.splitCells(p, owns)
	n, err := sw.applyLocalDelta(p, local, +1)
	if err != nil {
		return Verdict{}, err
	}
	// From here on the local +1 deltas are in the window. If the operation
	// fails midway (support or index error) they deliberately stay — and the
	// standby must mirror the leak, so the failure paths record the local
	// half as a bare support delta.
	leakLocal := func() {
		if sw.rec != nil && len(local) > 0 {
			sw.rec.RecordSupport(p, local, +1)
		}
	}
	foreign := 0
	if len(remote) > 0 && support != nil {
		rn, err := support(p, remote, +1, 0)
		if err != nil {
			leakLocal()
			return Verdict{}, err
		}
		foreign = rn
		n += rn
	}
	// One clone serves both the index and the entry: neither mutates
	// coordinates, and Export clones again before anything leaves the lock.
	pc := p.Clone()
	if err := sw.ix.Insert(pc); err != nil {
		leakLocal()
		return Verdict{}, err
	}
	sw.ingested++
	if sw.met != nil {
		sw.met.ingested.Inc()
	}
	e := &entry{pt: pc, seq: seq, arrived: now, count: n, outlier: n < sw.cfg.K}
	if e.outlier {
		sw.outliers++
	}
	sw.entries[p.ID] = e
	if sw.rec != nil {
		sw.rec.RecordAdmit(p, seq, now.UnixNano(), foreign, 0)
	}
	return Verdict{ID: p.ID, Seq: seq, Neighbors: n, Outlier: e.outlier}, nil
}

// PrecountedAdmission is one admission of an AdmitBatch: the point, its
// router-assigned global sequence number, its cross-shard neighbor count at
// the admission instant (already settled by the router's coalesced support
// probes), and how many LATER same-segment arrivals on other shards
// neighbor it.
type PrecountedAdmission struct {
	Point      geom.Point
	Seq        uint64
	Foreign    int
	CrossLater int
}

// AdmitBatch admits a run of points under one lock without issuing any
// support calls: each point's foreign neighbor count arrives precomputed,
// and the cross-shard +1s owed to a point by later same-segment arrivals
// are folded in after the run. The result is bit-identical to admitting
// the run through Admit with live support — local counts see earlier
// same-owner arrivals because they are already in the index, foreign
// counts arrive via Foreign, and the deferred +1s reproduce the exact flip
// decisions because counts only grow within a run (each entry crosses K at
// most once, whatever the order). Per-item failures leave their slot's
// error set and the run continues, matching the router's per-line error
// discipline.
func (sw *ShardWindow) AdmitBatch(items []PrecountedAdmission, now time.Time, owns OwnsFunc) ([]Verdict, []error) {
	verdicts := make([]Verdict, len(items))
	errsOut := make([]error, len(items))
	sw.mu.Lock()
	defer sw.mu.Unlock()
	for i, it := range items {
		if it.Point.Dim() != sw.cfg.Dim {
			errsOut[i] = &errs.DimMismatchError{ID: it.Point.ID, Got: it.Point.Dim(), Want: sw.cfg.Dim}
			continue
		}
		if _, dup := sw.entries[it.Point.ID]; dup {
			errsOut[i] = &errs.DuplicateIDError{ID: it.Point.ID}
			continue
		}
		local, _ := sw.splitCells(it.Point, owns)
		n, err := sw.applyLocalDelta(it.Point, local, +1)
		if err != nil {
			errsOut[i] = err
			continue
		}
		n += it.Foreign
		pc := it.Point.Clone()
		if err := sw.ix.Insert(pc); err != nil {
			if sw.rec != nil && len(local) > 0 {
				sw.rec.RecordSupport(it.Point, local, +1) // mirror the leaked local deltas
			}
			errsOut[i] = err
			continue
		}
		sw.ingested++
		if sw.met != nil {
			sw.met.ingested.Inc()
		}
		e := &entry{pt: pc, seq: it.Seq, arrived: now, count: n, outlier: n < sw.cfg.K}
		if e.outlier {
			sw.outliers++
		}
		sw.entries[it.Point.ID] = e
		// Recording the item's CrossLater with the admission lets the standby
		// replay the run one item at a time, folding each item's deferred +1s
		// immediately: counts only grow within a run, so each entry crosses K
		// at most once whatever the interleaving — final counts, verdicts and
		// flip totals are identical to the primary's batch-then-fold order.
		if sw.rec != nil {
			sw.rec.RecordAdmit(it.Point, it.Seq, now.UnixNano(), it.Foreign, it.CrossLater)
		}
		verdicts[i] = Verdict{ID: it.Point.ID, Seq: it.Seq, Neighbors: n, Outlier: e.outlier}
	}
	for i, it := range items {
		if errsOut[i] != nil || it.CrossLater == 0 {
			continue
		}
		e := sw.entries[it.Point.ID]
		for k := 0; k < it.CrossLater; k++ {
			sw.bump(e, +1)
		}
	}
	return verdicts, errsOut
}

// EvictByID expires the resident point with the given ID: its local
// neighbors each lose a count (with inlier→outlier flips), foreign
// neighbors lose theirs through support with delta -1, and the point
// leaves the index. It reports whether the ID was resident.
func (sw *ShardWindow) EvictByID(id uint64, owns OwnsFunc, support SupportFunc) (bool, error) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	victim := sw.entries[id]
	if victim == nil {
		return false, nil
	}
	local, remote := sw.splitCells(victim.pt, owns)
	if _, err := sw.applyLocalDelta(victim.pt, local, -1); err != nil {
		return false, err
	}
	if len(remote) > 0 && support != nil {
		if _, err := support(victim.pt, remote, -1, 0); err != nil {
			if sw.rec != nil && len(local) > 0 {
				sw.rec.RecordSupport(victim.pt, local, -1) // mirror the leaked local deltas
			}
			return false, err
		}
	}
	sw.ix.Remove(victim.pt)
	delete(sw.entries, id)
	if victim.outlier {
		sw.outliers--
	}
	sw.evicted++
	if sw.met != nil {
		sw.met.evicted.Inc()
	}
	if sw.rec != nil {
		sw.rec.RecordEvict(id)
	}
	return true, nil
}

// ApplySupport serves one boundary-support request from a peer shard (or a
// read-only score probe from the router): count p's neighbors among the
// given cells — all of which this shard should own — applying delta to
// each matched resident's count with the usual flip rules. Delta 0 with
// limit > 0 early-terminates the count at limit (scoring semantics,
// matching Window.ScorePoint's NeighborCount cap).
func (sw *ShardWindow) ApplySupport(p geom.Point, cells [][]int64, delta, limit int) (int, error) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	if delta == 0 {
		return sw.ix.NeighborsInCells(p, cells, limit, nil)
	}
	n, err := sw.applyLocalDelta(p, cells, delta)
	if err == nil && sw.rec != nil {
		sw.rec.RecordSupport(p, cells, delta)
	}
	return n, err
}

// Export captures every resident entry in global-sequence order — the
// drain/handoff payload. Counts travel verbatim: relocating a point never
// changes anyone's neighbor relationships.
func (sw *ShardWindow) Export() []ExportedEntry {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	out := make([]ExportedEntry, 0, len(sw.entries))
	for _, e := range sw.entries {
		out = append(out, ExportedEntry{
			Point:   e.pt.Clone(),
			Seq:     e.seq,
			Arrived: e.arrived,
			Count:   e.count,
			Outlier: e.outlier,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Import adopts entries exported from another shard during drain/handoff,
// inserting each point into the local index with its live bookkeeping
// intact. Duplicate IDs fail the whole import.
func (sw *ShardWindow) Import(entries []ExportedEntry) error {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	for _, in := range entries {
		if in.Point.Dim() != sw.cfg.Dim {
			return &errs.DimMismatchError{ID: in.Point.ID, Got: in.Point.Dim(), Want: sw.cfg.Dim}
		}
		if _, dup := sw.entries[in.Point.ID]; dup {
			return &errs.DuplicateIDError{ID: in.Point.ID}
		}
	}
	for _, in := range entries {
		if err := sw.ix.Insert(in.Point.Clone()); err != nil {
			return err
		}
		e := &entry{pt: in.Point.Clone(), seq: in.Seq, arrived: in.Arrived, count: in.Count, outlier: in.Outlier}
		sw.entries[in.Point.ID] = e
		if e.outlier {
			sw.outliers++
		}
	}
	if sw.rec != nil {
		sw.rec.RecordImport(entries)
	}
	return nil
}

// ExportedEntry is one resident point with its live bookkeeping, as moved
// between shards during drain/handoff and aggregated by the router for
// whole-window snapshots.
type ExportedEntry struct {
	Point   geom.Point
	Seq     uint64
	Arrived time.Time
	Count   int
	Outlier bool
}

// Digest returns a deterministic FNV-64a hash over the window contents in
// canonical (global-sequence) order, plus the resident count. Every field
// a verdict can depend on is folded in — sequence, ID, arrival instant,
// neighbor count, verdict, and the exact coordinate bits — so two windows
// with equal digests hold bit-identical verdict state. This is the
// anti-entropy check of the replication layer: a standby that replayed the
// primary's op log to position S must produce the digest the primary had
// at S.
func (sw *ShardWindow) Digest() (uint64, int) {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	ents := make([]*entry, 0, len(sw.entries))
	for _, e := range sw.entries {
		ents = append(ents, e)
	}
	sort.Slice(ents, func(i, j int) bool { return ents[i].seq < ents[j].seq })
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, e := range ents {
		mix(e.seq)
		mix(e.pt.ID)
		mix(uint64(e.arrived.UnixNano()))
		mix(uint64(int64(e.count)))
		if e.outlier {
			mix(1)
		} else {
			mix(0)
		}
		for _, c := range e.pt.Coords {
			mix(math.Float64bits(c))
		}
	}
	return h, len(ents)
}

// Reset drops every resident entry from the window and the index — the
// standby's preparation for installing a bootstrap snapshot. Monotone
// counters (ingested, evicted, flips) are deliberately preserved: they are
// instruments, not window state, and resetting them would break metric
// monotonicity.
func (sw *ShardWindow) Reset() {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	for _, e := range sw.entries {
		sw.ix.Remove(e.pt)
	}
	sw.entries = make(map[uint64]*entry)
	sw.outliers = 0
}

// Stats returns this shard slice's counters. Flip totals summed across
// shards equal the single-process Window's flip totals on the same
// stream — a cheap cross-check the property tests assert.
func (sw *ShardWindow) Stats() Stats {
	sw.mu.Lock()
	defer sw.mu.Unlock()
	return Stats{
		Len:       len(sw.entries),
		Ingested:  sw.ingested,
		Evicted:   sw.evicted,
		Outliers:  sw.outliers,
		FlipIn:    sw.flipIn,
		FlipOut:   sw.flipOut,
		Occupancy: sw.ix.ShardOccupancy(),
	}
}
