package stream

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"dod/internal/errs"
	"dod/internal/geom"
)

// batchScene builds a randomized ingest sequence with deliberate bad items
// (duplicate IDs, wrong dimensions) so the per-slot error contract is
// exercised alongside the happy path.
func batchScene(seed int64) (Config, []geom.Point) {
	rng := rand.New(rand.NewSource(seed))
	cfg := Config{
		R:        0.5 + rng.Float64()*4,
		K:        1 + rng.Intn(5),
		Dim:      2,
		Capacity: 8 + rng.Intn(40),
	}
	n := 20 + rng.Intn(180)
	pts := make([]geom.Point, n)
	for i := range pts {
		id := uint64(i)
		if rng.Intn(12) == 0 && i > 0 {
			id = uint64(rng.Intn(i)) // sometimes a duplicate of an earlier ID
		}
		coords := []float64{rng.Float64() * 20, rng.Float64() * 20}
		if rng.Intn(25) == 0 {
			coords = coords[:1] // sometimes the wrong dimensionality
		}
		pts[i] = geom.Point{ID: id, Coords: coords}
	}
	return cfg, pts
}

// splitInto cuts pts into batches of the given size (the final batch may be
// shorter); size <= 0 means one batch holding everything.
func splitInto(pts []geom.Point, size int) [][]geom.Point {
	if size <= 0 {
		return [][]geom.Point{pts}
	}
	var out [][]geom.Point
	for lo := 0; lo < len(pts); lo += size {
		hi := lo + size
		if hi > len(pts) {
			hi = len(pts)
		}
		out = append(out, pts[lo:hi])
	}
	return out
}

// TestProcessBatchSplitInvariance is the batch-API contract: cutting one
// logical stream into batches of any size yields byte-identical verdicts,
// error slots, flip counters, eviction totals and final window contents to
// point-at-a-time ingestion, provided each point observes its batch's
// timestamp. Batch sizes 1, 7, 64 and whole-stream are compared against the
// sequential reference.
func TestProcessBatchSplitInvariance(t *testing.T) {
	base := time.Unix(1700000000, 0)
	f := func(seed int64) bool {
		cfg, pts := batchScene(seed)
		for _, size := range []int{1, 7, 64, 0} {
			batches := splitInto(pts, size)

			ref, err := NewWindow(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var wantV []Verdict
			var wantE []error
			for bi, batch := range batches {
				now := base.Add(time.Duration(bi) * time.Second)
				for _, p := range batch {
					v, err := ref.Process(p, now)
					wantV = append(wantV, v)
					wantE = append(wantE, err)
				}
			}

			win, err := NewWindow(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var gotV []Verdict
			var gotE []error
			for bi, batch := range batches {
				now := base.Add(time.Duration(bi) * time.Second)
				vs, es := win.ProcessBatch(batch, now)
				gotV = append(gotV, vs...)
				gotE = append(gotE, es...)
			}

			if !reflect.DeepEqual(gotV, wantV) {
				t.Logf("seed %d size %d: verdicts diverge", seed, size)
				return false
			}
			for i := range wantE {
				if (gotE[i] == nil) != (wantE[i] == nil) {
					t.Logf("seed %d size %d item %d: err %v vs %v", seed, size, i, gotE[i], wantE[i])
					return false
				}
				if wantE[i] != nil && gotE[i].Error() != wantE[i].Error() {
					t.Logf("seed %d size %d item %d: err %q vs %q", seed, size, i, gotE[i], wantE[i])
					return false
				}
			}
			// Occupancy depends on each index's random maphash seed, so two
			// windows never shard identically; every other counter must match.
			gotSt, wantSt := win.Stats(), ref.Stats()
			gotSt.Occupancy, wantSt.Occupancy = nil, nil
			if !reflect.DeepEqual(gotSt, wantSt) {
				t.Logf("seed %d size %d: stats diverge: %+v vs %+v", seed, size, gotSt, wantSt)
				return false
			}
			if !reflect.DeepEqual(win.Snapshot(), ref.Snapshot()) {
				t.Logf("seed %d size %d: snapshots diverge", seed, size)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestProcessBatchErrorSlots pins the per-slot error identities: bad items
// fail individually with the documented sentinels while the rest of the
// batch is admitted.
func TestProcessBatchErrorSlots(t *testing.T) {
	win, err := NewWindow(Config{R: 1, K: 2, Dim: 2, Capacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	batch := []geom.Point{
		{ID: 1, Coords: []float64{0, 0}},
		{ID: 1, Coords: []float64{1, 1}},    // duplicate of slot 0
		{ID: 2, Coords: []float64{1, 2, 3}}, // wrong dimension
		{ID: 3, Coords: []float64{0.5, 0}},
	}
	vs, es := win.ProcessBatch(batch, time.Unix(0, 0))
	if es[0] != nil || es[3] != nil {
		t.Fatalf("good slots failed: %v %v", es[0], es[3])
	}
	if !errors.Is(es[1], errs.ErrDuplicateID) {
		t.Errorf("slot 1: %v, want ErrDuplicateID", es[1])
	}
	if !errors.Is(es[2], errs.ErrDimMismatch) {
		t.Errorf("slot 2: %v, want ErrDimMismatch", es[2])
	}
	if vs[1] != (Verdict{}) || vs[2] != (Verdict{}) {
		t.Errorf("failed slots carry non-zero verdicts: %+v %+v", vs[1], vs[2])
	}
	if vs[3].Seq != 2 {
		t.Errorf("slot 3 seq = %d, want 2 (failed slots consume no sequence numbers)", vs[3].Seq)
	}
	if st := win.Stats(); st.Len != 2 || st.Ingested != 2 {
		t.Errorf("stats after partial batch: %+v", st)
	}
}

// TestProcessBatchClosed: a closed window fails every slot with ErrClosed.
func TestProcessBatchClosed(t *testing.T) {
	win, err := NewWindow(Config{R: 1, K: 1, Dim: 2, Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	win.Close()
	_, es := win.ProcessBatch([]geom.Point{{ID: 1, Coords: []float64{0, 0}}}, time.Unix(0, 0))
	if !errors.Is(es[0], errs.ErrClosed) {
		t.Errorf("got %v, want ErrClosed", es[0])
	}
	_, ses := win.ScoreBatch([]geom.Point{{ID: 1, Coords: []float64{0, 0}}}, 2)
	if !errors.Is(ses[0], errs.ErrClosed) {
		t.Errorf("score: got %v, want ErrClosed", ses[0])
	}
}

// TestScoreBatchMatchesScorePoint: batch scoring at any worker count equals
// per-point ScorePoint, including error slots for bad-dimension queries.
func TestScoreBatchMatchesScorePoint(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	win, err := NewWindow(Config{R: 2, K: 3, Dim: 2, Capacity: 500})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		p := geom.Point{ID: uint64(i), Coords: []float64{rng.Float64() * 15, rng.Float64() * 15}}
		if _, err := win.Process(p, time.Unix(int64(i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	queries := make([]geom.Point, 200)
	for i := range queries {
		coords := []float64{rng.Float64() * 15, rng.Float64() * 15}
		if i%40 == 13 {
			coords = coords[:1] // bad dimension
		}
		queries[i] = geom.Point{ID: uint64(10000 + i), Coords: coords}
	}
	wantS := make([]Score, len(queries))
	wantE := make([]error, len(queries))
	for i, q := range queries {
		wantS[i], wantE[i] = win.ScorePoint(q)
	}
	for _, workers := range []int{1, 2, 7, 0} {
		gotS, gotE := win.ScoreBatch(queries, workers)
		if !reflect.DeepEqual(gotS, wantS) {
			t.Errorf("workers=%d: scores diverge from ScorePoint", workers)
		}
		for i := range wantE {
			if (gotE[i] == nil) != (wantE[i] == nil) {
				t.Errorf("workers=%d slot %d: err %v vs %v", workers, i, gotE[i], wantE[i])
			}
		}
	}
}
