package stream

import (
	"testing"
	"time"

	"dod/internal/geom"
)

// digestWindow builds a single-owner shard window and admits n points in a
// tight cluster (so neighbor counts and verdict flips actually happen).
func digestWindow(t *testing.T, n int) *ShardWindow {
	t.Helper()
	sw, err := NewShardWindow(ShardConfig{R: 1.2, K: 3, Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	owns := func([]int64) bool { return true }
	for i := 0; i < n; i++ {
		p := geom.Point{ID: uint64(i + 1), Coords: []float64{float64(i % 4), float64(i % 3)}}
		if _, err := sw.Admit(p, uint64(i+1), time.Unix(0, int64(i)), owns, nil); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	return sw
}

// TestDigestDeterministic pins the anti-entropy contract: two windows built
// by the same mutation sequence hash identically, and any divergence —
// membership, a neighbor count, a verdict — changes the digest.
func TestDigestDeterministic(t *testing.T) {
	a := digestWindow(t, 24)
	b := digestWindow(t, 24)
	da, na := a.Digest()
	db, nb := b.Digest()
	if da != db || na != nb {
		t.Fatalf("identical histories digest differently: (%x,%d) vs (%x,%d)", da, na, db, nb)
	}
	if na != 24 {
		t.Fatalf("digest points = %d, want 24", na)
	}

	// One extra admission diverges the digest.
	owns := func([]int64) bool { return true }
	if _, err := b.Admit(geom.Point{ID: 1000, Coords: []float64{50, 50}}, 1000, time.Unix(0, 0), owns, nil); err != nil {
		t.Fatal(err)
	}
	if db2, _ := b.Digest(); db2 == da {
		t.Fatal("digest unchanged after admission")
	}

	// A bare support delta — same membership, different count — diverges it
	// too: the digest covers counts, not just point identity.
	dc, _ := a.Digest()
	// Residents at (1,1) live in cell (2,2) with side r/(2√2)≈0.424.
	if n, err := a.ApplySupport(geom.Point{ID: 2000, Coords: []float64{1, 1}},
		[][]int64{{2, 2}}, 1, 0); err != nil || n == 0 {
		t.Fatalf("support delta: n=%d err=%v (probe must touch residents)", n, err)
	}
	if dc2, _ := a.Digest(); dc2 == dc {
		t.Fatal("digest unchanged after a count delta")
	}
}

// TestDigestEvictionOrderIndependent checks the digest hashes canonical
// (sequence) order, not map iteration order: windows whose surviving state
// is equal digest equally even when interior evictions happened.
func TestDigestEvictionOrderIndependent(t *testing.T) {
	owns := func([]int64) bool { return true }
	a := digestWindow(t, 12)
	b := digestWindow(t, 12)
	for _, id := range []uint64{3, 7} {
		for _, sw := range []*ShardWindow{a, b} {
			if ok, err := sw.EvictByID(id, owns, nil); !ok || err != nil {
				t.Fatalf("evict %d: ok=%v err=%v", id, ok, err)
			}
		}
	}
	da, na := a.Digest()
	db, nb := b.Digest()
	if da != db || na != nb {
		t.Fatalf("equal post-eviction windows digest differently: (%x,%d) vs (%x,%d)", da, na, db, nb)
	}
	if na != 10 {
		t.Fatalf("points = %d, want 10", na)
	}
}

// TestReset pins the standby-bootstrap contract: Reset empties the resident
// state (a fresh digest) while preserving the monotone counters, so a
// snapshot install never rewinds a shard's lifetime statistics.
func TestReset(t *testing.T) {
	sw := digestWindow(t, 16)
	before := sw.Stats()
	if before.Len != 16 || before.Ingested != 16 {
		t.Fatalf("pre-reset stats: %+v", before)
	}

	sw.Reset()
	after := sw.Stats()
	if after.Len != 0 {
		t.Fatalf("post-reset len = %d, want 0", after.Len)
	}
	if after.Ingested != before.Ingested || after.Evicted != before.Evicted ||
		after.FlipIn != before.FlipIn || after.FlipOut != before.FlipOut {
		t.Fatalf("reset rewound monotone counters: before %+v after %+v", before, after)
	}

	fresh, err := NewShardWindow(ShardConfig{R: 1.2, K: 3, Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	dReset, nReset := sw.Digest()
	dFresh, nFresh := fresh.Digest()
	if dReset != dFresh || nReset != nFresh {
		t.Fatalf("reset window digests (%x,%d), fresh digests (%x,%d)", dReset, nReset, dFresh, nFresh)
	}

	// A reset window accepts a snapshot import and digests identically to a
	// window that held the same entries all along.
	ref := digestWindow(t, 8)
	if err := sw.Import(ref.Export()); err != nil {
		t.Fatal(err)
	}
	dImp, nImp := sw.Digest()
	dRef, nRef := ref.Digest()
	if dImp != dRef || nImp != nRef {
		t.Fatalf("import after reset digests (%x,%d), source digests (%x,%d)", dImp, nImp, dRef, nRef)
	}
}
