package stream

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"dod/internal/geom"
)

// shardHarness wires N ShardWindows together in-process: ownership is a
// deterministic hash of the cell block, and support calls go straight to
// the owning shard's ApplySupport — the protocol the HTTP tier implements
// over the wire, minus the wire.
type shardHarness struct {
	t      *testing.T
	shards map[string]*ShardWindow
	names  []string
	block  int64
	// global FIFO metadata, as the router tracks it
	fifo    []uint64
	head    int
	cells   map[uint64][]int64
	coords  map[uint64]geom.Point
	seq     uint64
	evicted uint64
}

func newShardHarness(t *testing.T, n int, cfg ShardConfig, block int64) *shardHarness {
	h := &shardHarness{t: t, shards: map[string]*ShardWindow{}, block: block,
		cells: map[uint64][]int64{}, coords: map[uint64]geom.Point{}}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("s%d", i)
		sw, err := NewShardWindow(cfg)
		if err != nil {
			t.Fatal(err)
		}
		h.shards[name] = sw
		h.names = append(h.names, name)
	}
	return h
}

// owner deterministically assigns a cell's block to a shard by rendezvous
// hashing, which shares the consistent-hash ring's key property: removing
// a shard relocates only the blocks that shard owned.
func (h *shardHarness) owner(cell []int64) string {
	var blockHash uint64 = 14695981039346656037
	for _, c := range cell {
		b := c / h.block
		if c%h.block != 0 && c < 0 {
			b--
		}
		blockHash ^= uint64(b)
		blockHash *= 1099511628211
	}
	best, bestW := "", uint64(0)
	for _, name := range h.names {
		w := blockHash
		for _, ch := range []byte(name) {
			w ^= uint64(ch)
			w *= 1099511628211
		}
		if best == "" || w > bestW {
			best, bestW = name, w
		}
	}
	return best
}

func (h *shardHarness) ownsFor(name string) OwnsFunc {
	return func(cell []int64) bool { return h.owner(cell) == name }
}

// support groups foreign cells by owner and applies them directly.
func (h *shardHarness) support(p geom.Point, cells [][]int64, delta, limit int) (int, error) {
	byOwner := map[string][][]int64{}
	for _, c := range cells {
		o := h.owner(c)
		byOwner[o] = append(byOwner[o], c)
	}
	total := 0
	for o, cs := range byOwner {
		n, err := h.shards[o].ApplySupport(p, cs, delta, limit)
		if err != nil {
			return 0, err
		}
		total += n
	}
	if limit > 0 && total > limit {
		total = limit
	}
	return total, nil
}

// process mimics the router's serialized ingest: capacity evictions first
// (global FIFO order), then route-by-cell and admit.
func (h *shardHarness) process(p geom.Point, capacity int, now time.Time) (Verdict, error) {
	evictions := 0
	for capacity > 0 && len(h.fifo)-h.head >= capacity {
		id := h.fifo[h.head]
		h.head++
		owner := h.owner(h.cells[id])
		ok, err := h.shards[owner].EvictByID(id, h.ownsFor(owner), h.support)
		if err != nil {
			return Verdict{}, err
		}
		if !ok {
			h.t.Fatalf("evict %d: not resident on %s", id, owner)
		}
		delete(h.cells, id)
		delete(h.coords, id)
		h.evicted++
		evictions++
	}
	anyShard := h.shards[h.names[0]]
	cell := anyShard.ix.CellCoords(p)
	owner := h.owner(cell)
	h.seq++
	v, err := h.shards[owner].Admit(p, h.seq, now, h.ownsFor(owner), h.support)
	if err != nil {
		h.seq--
		return Verdict{}, err
	}
	h.fifo = append(h.fifo, p.ID)
	h.cells[p.ID] = append([]int64(nil), cell...)
	h.coords[p.ID] = p
	v.Evicted = evictions
	return v, nil
}

// outlierIDs aggregates the current outlier set across shards.
func (h *shardHarness) outlierIDs() []uint64 {
	var ids []uint64
	for _, sw := range h.shards {
		for _, e := range sw.Export() {
			if e.Outlier {
				ids = append(ids, e.Point.ID)
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestShardWindowMatchesWindow streams random points through 1-, 2- and
// 4-shard harnesses and a single-process Window with the same capacity,
// asserting every verdict, every score, the final outlier set, and the
// summed flip counters are identical.
func TestShardWindowMatchesWindow(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		for _, seed := range []int64{1, 2} {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				const (
					r        = 1.2
					k        = 3
					capacity = 120
					n        = 500
				)
				rng := rand.New(rand.NewSource(seed))
				ref, err := NewWindow(Config{R: r, K: k, Dim: 2, Capacity: capacity})
				if err != nil {
					t.Fatal(err)
				}
				h := newShardHarness(t, shards, ShardConfig{R: r, K: k, Dim: 2}, 4)
				base := time.Unix(1700000000, 0)
				for i := 0; i < n; i++ {
					p := geom.Point{ID: uint64(i + 1), Coords: []float64{
						rng.Float64() * 12, rng.Float64() * 12,
					}}
					now := base.Add(time.Duration(i) * time.Millisecond)
					want, err := ref.Process(p, now)
					if err != nil {
						t.Fatal(err)
					}
					got, err := h.process(p, capacity, now)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("point %d: sharded verdict %+v != reference %+v", p.ID, got, want)
					}
					// Interleave read-only scores of random probe points.
					if i%7 == 0 {
						q := geom.Point{ID: 1_000_000 + uint64(i), Coords: []float64{
							rng.Float64() * 12, rng.Float64() * 12,
						}}
						wantSc, err := ref.ScorePoint(q)
						if err != nil {
							t.Fatal(err)
						}
						cellProbe := h.shards[h.names[0]].ix
						var cells [][]int64
						cellProbe.NeighborhoodCells(q, func(c []int64) {
							cells = append(cells, append([]int64(nil), c...))
						})
						gotN, err := h.support(q, cells, 0, k)
						if err != nil {
							t.Fatal(err)
						}
						if gotN != wantSc.Neighbors || (gotN < k) != wantSc.Outlier {
							t.Fatalf("score %d: sharded %d != reference %+v", q.ID, gotN, wantSc)
						}
					}
				}
				// Final window state: identical outlier sets and flip totals.
				snap := ref.Snapshot()
				gotIDs := h.outlierIDs()
				if len(gotIDs) != len(snap.OutlierIDs) {
					t.Fatalf("outlier sets differ: sharded %d vs reference %d", len(gotIDs), len(snap.OutlierIDs))
				}
				for i := range gotIDs {
					if gotIDs[i] != snap.OutlierIDs[i] {
						t.Fatalf("outlier ID %d: %d != %d", i, gotIDs[i], snap.OutlierIDs[i])
					}
				}
				refStats := ref.Stats()
				var flipIn, flipOut, lenSum uint64
				for _, sw := range h.shards {
					st := sw.Stats()
					flipIn += st.FlipIn
					flipOut += st.FlipOut
					lenSum += uint64(st.Len)
				}
				if flipIn != refStats.FlipIn || flipOut != refStats.FlipOut {
					t.Fatalf("flips: sharded (%d,%d) != reference (%d,%d)",
						flipIn, flipOut, refStats.FlipIn, refStats.FlipOut)
				}
				if int(lenSum) != refStats.Len {
					t.Fatalf("resident count: sharded %d != reference %d", lenSum, refStats.Len)
				}
			})
		}
	}
}

// TestShardWindowHandoff drains one shard mid-stream, imports its entries
// into the survivors under a changed ownership map, and checks the stream
// still matches the reference bit-for-bit afterwards.
func TestShardWindowHandoff(t *testing.T) {
	const (
		r        = 1.0
		k        = 3
		capacity = 80
		n        = 400
	)
	rng := rand.New(rand.NewSource(7))
	ref, err := NewWindow(Config{R: r, K: k, Dim: 2, Capacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	h := newShardHarness(t, 3, ShardConfig{R: r, K: k, Dim: 2}, 4)
	base := time.Unix(1700000000, 0)
	feed := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := geom.Point{ID: uint64(i + 1), Coords: []float64{rng.Float64() * 10, rng.Float64() * 10}}
			now := base.Add(time.Duration(i) * time.Millisecond)
			want, err := ref.Process(p, now)
			if err != nil {
				t.Fatal(err)
			}
			got, err := h.process(p, capacity, now)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("point %d: %+v != %+v", p.ID, got, want)
			}
		}
	}
	feed(0, n/2)

	// Drain shard s2: move its entries to the shard owning them after s2
	// leaves the ownership map.
	victim := "s2"
	exported := h.shards[victim].Export()
	h.names = []string{"s0", "s1"} // new topology: owner() no longer maps to s2
	byOwner := map[string][]ExportedEntry{}
	for _, e := range exported {
		cell := h.cells[e.Point.ID]
		byOwner[h.owner(cell)] = append(byOwner[h.owner(cell)], e)
	}
	for o, entries := range byOwner {
		if o == victim {
			t.Fatalf("cell still owned by drained shard")
		}
		if err := h.shards[o].Import(entries); err != nil {
			t.Fatal(err)
		}
	}
	delete(h.shards, victim)

	feed(n/2, n)

	snap := ref.Snapshot()
	gotIDs := h.outlierIDs()
	if len(gotIDs) != len(snap.OutlierIDs) {
		t.Fatalf("outlier sets differ after handoff: %d vs %d", len(gotIDs), len(snap.OutlierIDs))
	}
	for i := range gotIDs {
		if gotIDs[i] != snap.OutlierIDs[i] {
			t.Fatalf("outlier ID %d after handoff: %d != %d", i, gotIDs[i], snap.OutlierIDs[i])
		}
	}
}
