// Package dfs simulates the distributed file system (HDFS in the paper)
// that feeds the MapReduce engine. Files are split into fixed-size blocks;
// each block is replicated onto ReplicationFactor distinct simulated nodes.
// Map tasks consume one block per input split, exactly as in Sec. III-B
// ("the data points are randomly distributed over the HDFS blocks").
//
// The store is in-memory: the point of the simulation is to reproduce the
// *block/split/locality structure* of HDFS, not its durability.
package dfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// Default configuration, scaled down from HDFS defaults so tests exercise
// multi-block files without huge inputs.
const (
	DefaultBlockSize         = 1 << 20 // 1 MiB
	DefaultReplicationFactor = 3
)

// Common errors.
var (
	ErrNotFound = errors.New("dfs: file not found")
	ErrExists   = errors.New("dfs: file already exists")
)

// Block is one replicated chunk of a file.
type Block struct {
	ID       BlockID
	Data     []byte
	Replicas []int // simulated node IDs holding a replica
}

// BlockID identifies a block within the store.
type BlockID struct {
	Path  string
	Index int
}

func (b BlockID) String() string { return fmt.Sprintf("%s#%d", b.Path, b.Index) }

type file struct {
	blocks []*Block
	size   int
}

// Store is a simulated cluster file system.
type Store struct {
	mu sync.RWMutex

	blockSize   int
	replication int
	numNodes    int
	rng         *rand.Rand

	files map[string]*file
}

// Config controls a Store.
type Config struct {
	BlockSize         int // bytes per block; DefaultBlockSize if 0
	ReplicationFactor int // replicas per block; DefaultReplicationFactor if 0
	NumNodes          int // simulated datanodes; must be >= 1
	Seed              int64
}

// NewStore builds an empty store.
func NewStore(cfg Config) *Store {
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = DefaultBlockSize
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = DefaultReplicationFactor
	}
	if cfg.NumNodes < 1 {
		cfg.NumNodes = 1
	}
	if cfg.ReplicationFactor > cfg.NumNodes {
		cfg.ReplicationFactor = cfg.NumNodes
	}
	return &Store{
		blockSize:   cfg.BlockSize,
		replication: cfg.ReplicationFactor,
		numNodes:    cfg.NumNodes,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		files:       make(map[string]*file),
	}
}

// BlockSize returns the store's block size in bytes.
func (s *Store) BlockSize() int { return s.blockSize }

// Write stores data under path, splitting it into blocks and assigning
// replicas. It fails if the path already exists.
func (s *Store) Write(path string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.files[path]; ok {
		return fmt.Errorf("%w: %s", ErrExists, path)
	}
	f := &file{size: len(data)}
	for i := 0; i*s.blockSize < len(data) || (i == 0 && len(data) == 0); i++ {
		lo := i * s.blockSize
		hi := lo + s.blockSize
		if hi > len(data) {
			hi = len(data)
		}
		chunk := make([]byte, hi-lo)
		copy(chunk, data[lo:hi])
		f.blocks = append(f.blocks, &Block{
			ID:       BlockID{Path: path, Index: i},
			Data:     chunk,
			Replicas: s.pickReplicasLocked(),
		})
	}
	s.files[path] = f
	return nil
}

// pickReplicasLocked chooses replication-factor distinct nodes.
func (s *Store) pickReplicasLocked() []int {
	perm := s.rng.Perm(s.numNodes)
	replicas := make([]int, s.replication)
	copy(replicas, perm[:s.replication])
	sort.Ints(replicas)
	return replicas
}

// Read returns the full contents of path.
func (s *Store) Read(path string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	out := make([]byte, 0, f.size)
	for _, b := range f.blocks {
		out = append(out, b.Data...)
	}
	return out, nil
}

// Blocks returns the blocks of path in order. The returned blocks share the
// store's data buffers; callers must not mutate them.
func (s *Store) Blocks(path string) ([]*Block, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return append([]*Block(nil), f.blocks...), nil
}

// Size returns the byte size of path.
func (s *Store) Size(path string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, ok := s.files[path]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	return f.size, nil
}

// Delete removes path.
func (s *Store) Delete(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.files[path]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	delete(s.files, path)
	return nil
}

// List returns all stored paths in sorted order.
func (s *Store) List() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	paths := make([]string, 0, len(s.files))
	for p := range s.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}
