package dfs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func newTestStore(blockSize int) *Store {
	return NewStore(Config{BlockSize: blockSize, ReplicationFactor: 3, NumNodes: 10, Seed: 1})
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := newTestStore(16)
	data := []byte("hello distributed file system, this spans several blocks")
	if err := s.Write("/data/input", data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read("/data/input")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("roundtrip mismatch: %q", got)
	}
}

func TestBlockSplitting(t *testing.T) {
	s := newTestStore(10)
	data := make([]byte, 25)
	if err := s.Write("/f", data); err != nil {
		t.Fatal(err)
	}
	blocks, err := s.Blocks("/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 3 {
		t.Fatalf("got %d blocks, want 3", len(blocks))
	}
	if len(blocks[0].Data) != 10 || len(blocks[1].Data) != 10 || len(blocks[2].Data) != 5 {
		t.Errorf("block sizes: %d %d %d", len(blocks[0].Data), len(blocks[1].Data), len(blocks[2].Data))
	}
	for i, b := range blocks {
		if b.ID.Index != i || b.ID.Path != "/f" {
			t.Errorf("block %d has ID %v", i, b.ID)
		}
	}
}

func TestEmptyFileHasOneBlock(t *testing.T) {
	s := newTestStore(10)
	if err := s.Write("/empty", nil); err != nil {
		t.Fatal(err)
	}
	blocks, _ := s.Blocks("/empty")
	if len(blocks) != 1 || len(blocks[0].Data) != 0 {
		t.Errorf("empty file: %d blocks", len(blocks))
	}
	data, err := s.Read("/empty")
	if err != nil || len(data) != 0 {
		t.Errorf("Read empty = %v, %v", data, err)
	}
}

func TestReplicationFactor(t *testing.T) {
	s := newTestStore(8)
	if err := s.Write("/f", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	blocks, _ := s.Blocks("/f")
	for _, b := range blocks {
		if len(b.Replicas) != 3 {
			t.Fatalf("block %v has %d replicas, want 3", b.ID, len(b.Replicas))
		}
		seen := map[int]bool{}
		for _, r := range b.Replicas {
			if r < 0 || r >= 10 {
				t.Fatalf("replica node %d out of range", r)
			}
			if seen[r] {
				t.Fatalf("duplicate replica node %d for block %v", r, b.ID)
			}
			seen[r] = true
		}
	}
}

func TestReplicationCappedByNodes(t *testing.T) {
	s := NewStore(Config{BlockSize: 8, ReplicationFactor: 5, NumNodes: 2, Seed: 1})
	if err := s.Write("/f", make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	blocks, _ := s.Blocks("/f")
	if len(blocks[0].Replicas) != 2 {
		t.Errorf("replicas = %d, want capped at 2", len(blocks[0].Replicas))
	}
}

func TestDuplicateWriteFails(t *testing.T) {
	s := newTestStore(8)
	if err := s.Write("/f", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Write("/f", []byte("b")); !errors.Is(err, ErrExists) {
		t.Errorf("want ErrExists, got %v", err)
	}
}

func TestMissingFile(t *testing.T) {
	s := newTestStore(8)
	if _, err := s.Read("/nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Read: want ErrNotFound, got %v", err)
	}
	if _, err := s.Blocks("/nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Blocks: want ErrNotFound, got %v", err)
	}
	if _, err := s.Size("/nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Size: want ErrNotFound, got %v", err)
	}
	if err := s.Delete("/nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete: want ErrNotFound, got %v", err)
	}
}

func TestDeleteThenRewrite(t *testing.T) {
	s := newTestStore(8)
	if err := s.Write("/f", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("/f"); err != nil {
		t.Fatal(err)
	}
	if err := s.Write("/f", []byte("two")); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Read("/f")
	if string(got) != "two" {
		t.Errorf("got %q", got)
	}
}

func TestListSorted(t *testing.T) {
	s := newTestStore(8)
	for _, p := range []string{"/c", "/a", "/b"} {
		if err := s.Write(p, nil); err != nil {
			t.Fatal(err)
		}
	}
	got := s.List()
	want := []string{"/a", "/b", "/c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("List = %v", got)
		}
	}
}

func TestSize(t *testing.T) {
	s := newTestStore(8)
	data := make([]byte, 123)
	if err := s.Write("/f", data); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Size("/f"); n != 123 {
		t.Errorf("Size = %d", n)
	}
}

func TestWriteDoesNotAliasCallerBuffer(t *testing.T) {
	s := newTestStore(8)
	data := []byte("abcdefgh")
	if err := s.Write("/f", data); err != nil {
		t.Fatal(err)
	}
	data[0] = 'Z'
	got, _ := s.Read("/f")
	if got[0] != 'a' {
		t.Error("store must copy caller data")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := newTestStore(64)
	done := make(chan error, 20)
	for i := 0; i < 20; i++ {
		go func(i int) {
			rng := rand.New(rand.NewSource(int64(i)))
			data := make([]byte, 100+rng.Intn(400))
			path := string(rune('a'+i%26)) + "/file" + string(rune('0'+i%10))
			if err := s.Write(path+string(rune('A'+i)), data); err != nil {
				done <- err
				return
			}
			s.List()
			done <- nil
		}(i)
	}
	for i := 0; i < 20; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
