package router

import (
	"sync"
	"time"
)

// tenantLimiter enforces per-tenant admission at the router: a token
// bucket (rate + burst) smoothing request arrival, and an optional
// lifetime line quota. Tenants are identified by the X-Dod-Tenant header;
// requests without one share the "" (default) tenant.
type tenantLimiter struct {
	rps   float64 // bucket refill rate, requests/second; <= 0 disables
	burst float64 // bucket depth
	quota int64   // lifetime ingested-line quota per tenant; <= 0 disables
	now   func() time.Time

	mu      sync.Mutex
	tenants map[string]*tenantState
}

type tenantState struct {
	tokens float64
	last   time.Time
	used   int64 // lines charged against the quota
}

func newTenantLimiter(rps float64, burst int, quota int64, now func() time.Time) *tenantLimiter {
	if burst <= 0 {
		burst = 1
	}
	return &tenantLimiter{
		rps:     rps,
		burst:   float64(burst),
		quota:   quota,
		now:     now,
		tenants: make(map[string]*tenantState),
	}
}

// state returns (creating if needed) the refilled bucket for a tenant.
// Callers hold l.mu.
func (l *tenantLimiter) state(tenant string) *tenantState {
	ts := l.tenants[tenant]
	now := l.now()
	if ts == nil {
		ts = &tenantState{tokens: l.burst, last: now}
		l.tenants[tenant] = ts
		return ts
	}
	ts.tokens += now.Sub(ts.last).Seconds() * l.rps
	if ts.tokens > l.burst {
		ts.tokens = l.burst
	}
	ts.last = now
	return ts
}

// allowRequest charges one request against the tenant's bucket. On
// rejection it returns how long the tenant should wait before retrying.
func (l *tenantLimiter) allowRequest(tenant string) (ok bool, retryAfter time.Duration) {
	if l == nil || l.rps <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	ts := l.state(tenant)
	if ts.tokens >= 1 {
		ts.tokens--
		return true, 0
	}
	wait := time.Duration((1 - ts.tokens) / l.rps * float64(time.Second))
	if wait < time.Second {
		wait = time.Second // Retry-After is whole seconds; never hint 0
	}
	return false, wait
}

// chargeQuota charges n ingested lines against the tenant's lifetime quota,
// reporting whether the tenant is still within it. The charge is applied
// only when it fits, so a rejected batch does not consume quota.
func (l *tenantLimiter) chargeQuota(tenant string, n int) (ok bool, remaining int64) {
	if l == nil || l.quota <= 0 {
		return true, -1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	ts := l.tenants[tenant]
	if ts == nil {
		ts = &tenantState{tokens: l.burst, last: l.now()}
		l.tenants[tenant] = ts
	}
	if ts.used+int64(n) > l.quota {
		return false, l.quota - ts.used
	}
	ts.used += int64(n)
	return true, l.quota - ts.used
}
