package router

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"dod/internal/errs"
	"dod/internal/geom"
	"dod/internal/httpapi"
	"dod/internal/index"
	"dod/internal/retry"
)

// Coalesced ingest. The per-point protocol costs one shard round trip per
// point plus one support round trip per (point, peer). This path cuts a
// batch into SEGMENTS — maximal runs of admissible points with no eviction
// due between them — and settles each segment in two RPC waves:
//
//  1. ONE multi-probe /v1/support (delta +1) per peer shard carries every
//     segment point's foreign cells for that peer. No segment point has
//     been admitted anywhere yet, so the returned per-probe counts are the
//     exact pre-segment foreign neighbor counts, and the applied +1s are
//     exactly the deltas the per-point protocol would have applied.
//  2. ONE /v1/shard/ingest_batch per owning shard admits its points with
//     those counts attached, plus the segment-internal cross-shard pairs
//     the probes could not see (computed right here from the points in
//     hand, with the index's own acceptance rule).
//
// The verdict stream is byte-identical to the per-point protocol's outside
// failure modes: within a segment neighbor counts only grow, so folding a
// point's later-arriving +1s after the run crosses K exactly when the
// interleaved order did. Under terminal shard failures the coalesced path
// may leak +1s for points that then fail admission — the same class of
// partial-application the per-point protocol already accepts when a
// support call succeeds and the admission after it fails.

// segPoint is one admission staged in the current segment.
type segPoint struct {
	pt        geom.Point
	line      int // index into the batch / output slice
	cell      []int64
	owner     string
	evictions int // evictions charged to this line before staging
}

// ingestCoalescedLocked runs one ingest batch through the coalesced
// protocol. Callers hold rt.mu.
func (rt *Router) ingestCoalescedLocked(ctx context.Context, topo *Topology, now time.Time, reqID string, items []httpapi.BatchItem, out []verdictLine) {
	var (
		seg     []segPoint
		pending = map[uint64]struct{}{}
		segIdx  int
	)
	flush := func() {
		if len(seg) == 0 {
			return
		}
		rt.flushSegmentLocked(ctx, topo, now, reqID, segIdx, seg, out)
		segIdx++
		seg = seg[:0]
		clear(pending)
	}
	horizonNs := int64(0)
	if rt.cfg.TTL > 0 {
		horizonNs = now.Add(-rt.cfg.TTL).UnixNano()
	}
	// ttlDue reports whether the committed FIFO head has aged out. Staged
	// points all arrive "now" and can never be due within their own batch.
	ttlDue := func() bool {
		return rt.cfg.TTL > 0 && rt.head < len(rt.fifo) &&
			rt.residents[rt.fifo[rt.head]].arrivedNs < horizonNs
	}
	for i, it := range items {
		if it.Err != nil {
			out[i] = verdictLine{ID: it.Pt.ID, Error: it.Err.Error()}
			rt.met.lineErrors.Inc()
			continue
		}
		rt.met.ingestLines.Inc()
		pt := it.Pt
		if pt.Dim() != rt.cfg.Dim {
			err := &errs.DimMismatchError{ID: pt.ID, Got: pt.Dim(), Want: rt.cfg.Dim}
			out[i] = verdictLine{ID: pt.ID, Error: err.Error()}
			rt.met.lineErrors.Inc()
			continue
		}
		_, dupResident := rt.residents[pt.ID]
		_, dupPending := pending[pt.ID]
		if dupResident || dupPending {
			err := &errs.DuplicateIDError{ID: pt.ID}
			out[i] = verdictLine{ID: pt.ID, Error: err.Error()}
			rt.met.lineErrors.Inc()
			continue
		}
		// An eviction due before this point ends the segment: the staged run
		// commits (entering rt.residents), then the per-point eviction
		// discipline runs with this line's key, exactly as processLocked
		// orders it.
		evictions := 0
		evictFailed := false
		if rt.cfg.Capacity > 0 && len(rt.residents)+len(seg) >= rt.cfg.Capacity {
			flush()
			lineKey := fmt.Sprintf("%s|%d", reqID, i)
			for len(rt.residents) >= rt.cfg.Capacity {
				evicted, err := rt.evictHeadLocked(ctx, topo, lineKey)
				if err != nil {
					out[i] = verdictLine{ID: pt.ID, Error: err.Error()}
					rt.met.lineErrors.Inc()
					evictFailed = true
					break
				}
				if evicted {
					evictions++
				}
			}
		}
		if !evictFailed && ttlDue() {
			flush()
			lineKey := fmt.Sprintf("%s|%d", reqID, i)
			for ttlDue() {
				evicted, err := rt.evictHeadLocked(ctx, topo, lineKey)
				if err != nil {
					out[i] = verdictLine{ID: pt.ID, Error: err.Error()}
					rt.met.lineErrors.Inc()
					evictFailed = true
					break
				}
				if evicted {
					evictions++
				}
			}
		}
		if evictFailed {
			continue
		}
		seg = append(seg, segPoint{pt: pt, line: i, evictions: evictions})
		pending[pt.ID] = struct{}{}
	}
	flush()
}

// cellKey renders a cell coordinate vector into scratch for map lookups.
func cellKey(scratch []byte, c []int64) []byte {
	scratch = scratch[:0]
	for _, v := range c {
		scratch = binary.LittleEndian.AppendUint64(scratch, uint64(v))
	}
	return scratch
}

// flushSegmentLocked settles one staged segment: phase one probes every
// peer once, the pairwise pass counts segment-internal cross-shard
// neighbors, phase two admits every owner's run in one RPC, and the
// successes commit to the router's window bookkeeping in arrival order.
// Callers hold rt.mu.
func (rt *Router) flushSegmentLocked(ctx context.Context, topo *Topology, now time.Time, reqID string, segIdx int, seg []segPoint, out []verdictLine) {
	n := len(seg)
	baseSeq := rt.seq
	type peerProbes struct {
		probes []SupportProbe
		segIxs []int
	}
	perPeer := map[string]*peerProbes{}
	foreign := make([]int, n)
	failed := make([]bool, n)
	for j := range seg {
		sp := &seg[j]
		sp.cell = topo.CellOf(sp.pt.Coords)
		sp.owner = topo.Owner(sp.cell)
		var cellsByPeer map[string][][]int64
		for radius := 0; radius <= rt.l2; radius++ {
			index.RingCells(sp.cell, radius, func(c []int64) {
				o := topo.Owner(c)
				if o == sp.owner {
					return // the owning shard splits its own cells locally
				}
				if cellsByPeer == nil {
					cellsByPeer = map[string][][]int64{}
				}
				cellsByPeer[o] = append(cellsByPeer[o], append([]int64(nil), c...))
			})
		}
		for o, cells := range cellsByPeer {
			pp := perPeer[o]
			if pp == nil {
				pp = &peerProbes{}
				perPeer[o] = pp
			}
			pp.probes = append(pp.probes, SupportProbe{Point: sp.pt, Cells: cells})
			pp.segIxs = append(pp.segIxs, j)
		}
	}

	// Phase one: one support exchange per peer, probes in point order.
	peers := make([]string, 0, len(perPeer))
	for o := range perPeer {
		peers = append(peers, o)
	}
	sort.Strings(peers)
	failProbes := func(pp *peerProbes, msg string) {
		for _, j := range pp.segIxs {
			if failed[j] {
				continue
			}
			failed[j] = true
			out[seg[j].line] = verdictLine{ID: seg[j].pt.ID, Error: msg}
			rt.met.lineErrors.Inc()
		}
	}
	for _, o := range peers {
		pp := perPeer[o]
		body := EncodeSupportBatch(SupportHeader{Delta: 1}, pp.probes)
		key := fmt.Sprintf("%s|seg%d|b|%s", reqID, segIdx, o)
		var resp SupportResponse
		rt.met.supportRPCs.Inc()
		if err := rt.callShard(ctx, topo, o, PathSupport, key, body, &resp); err != nil {
			failProbes(pp, fmt.Sprintf("shard %s unavailable: %v", o, err))
			continue
		}
		if resp.Error != "" {
			failProbes(pp, resp.Error)
			continue
		}
		if len(resp.Counts) != len(pp.probes) {
			failProbes(pp, fmt.Sprintf("shard %s: support answered %d counts for %d probes", o, len(resp.Counts), len(pp.probes)))
			continue
		}
		for idx, c := range resp.Counts {
			foreign[pp.segIxs[idx]] += c
		}
	}

	// Pairwise pass: count segment-internal cross-shard neighbor pairs the
	// pre-segment probes could not see. Buckets key on center cell; the
	// acceptance rule is the index's own — cells within Chebyshev distance 1
	// of the probe's cell auto-accept, farther cells get the exact distance
	// check — so the counts match what live support would have returned.
	// Failed points are excluded: under the per-point protocol they would
	// never have been admitted.
	intraEarlier := make([]int, n)
	crossLater := make([]int, n)
	buckets := map[string][]int{}
	var kscratch []byte
	for j := range seg {
		if failed[j] {
			continue
		}
		kscratch = cellKey(kscratch, seg[j].cell)
		buckets[string(kscratch)] = append(buckets[string(kscratch)], j)
	}
	for q := range seg {
		if failed[q] {
			continue
		}
		sq := &seg[q]
		for radius := 0; radius <= rt.l2; radius++ {
			index.RingCells(sq.cell, radius, func(c []int64) {
				kscratch = cellKey(kscratch, c)
				for _, i := range buckets[string(kscratch)] {
					if i == q || seg[i].owner == sq.owner {
						continue
					}
					if radius > 1 && !geom.WithinDist(seg[i].pt, sq.pt, rt.cfg.R) {
						continue
					}
					if i < q {
						intraEarlier[q]++
					} else {
						crossLater[q]++
					}
				}
			})
		}
	}

	// Phase two: one batched admission per owning shard, items in arrival
	// order with their pre-assigned sequence numbers.
	type ownerRun struct {
		items  []AdmitItem
		segIxs []int
	}
	perOwner := map[string]*ownerRun{}
	for j := range seg {
		if failed[j] {
			continue
		}
		or := perOwner[seg[j].owner]
		if or == nil {
			or = &ownerRun{}
			perOwner[seg[j].owner] = or
		}
		or.items = append(or.items, AdmitItem{
			Point:      seg[j].pt,
			Seq:        baseSeq + uint64(j) + 1,
			Foreign:    foreign[j] + intraEarlier[j],
			CrossLater: crossLater[j],
		})
		or.segIxs = append(or.segIxs, j)
	}
	owners := make([]string, 0, len(perOwner))
	for o := range perOwner {
		owners = append(owners, o)
	}
	sort.Strings(owners)
	for _, o := range owners {
		or := perOwner[o]
		body := EncodeIngestBatch(IngestBatchHeader{ArrivedNs: now.UnixNano(), Count: len(or.items)}, or.items)
		key := fmt.Sprintf("%s|seg%d|a|%s", reqID, segIdx, o)
		var resp IngestBatchResponse
		failRun := func(msg string) {
			for _, j := range or.segIxs {
				failed[j] = true
				out[seg[j].line] = verdictLine{ID: seg[j].pt.ID, Error: msg}
				rt.met.lineErrors.Inc()
			}
		}
		if err := rt.callShard(ctx, topo, o, PathShardIngestBatch, key, body, &resp); err != nil {
			failRun(fmt.Sprintf("shard %s unavailable: %v", o, err))
			continue
		}
		if resp.Error != "" {
			failRun(resp.Error)
			continue
		}
		if len(resp.Results) != len(or.items) {
			failRun(fmt.Sprintf("shard %s: %d results for %d admissions", o, len(resp.Results), len(or.items)))
			continue
		}
		for idx, res := range resp.Results {
			j := or.segIxs[idx]
			if res.Error != "" {
				failed[j] = true
				out[seg[j].line] = verdictLine{ID: seg[j].pt.ID, Error: res.Error}
				rt.met.lineErrors.Inc()
				continue
			}
			out[seg[j].line] = verdictLine{
				ID: res.ID, Seq: res.Seq, Neighbors: res.Neighbors,
				Outlier: res.Outlier, Evicted: seg[j].evictions,
			}
		}
	}

	// Commit successes in arrival order. The whole segment's sequence
	// numbers are consumed, success or not — they were baked into the
	// phase-two bodies before any outcome was known, so a failed line
	// leaves a gap rather than renumbering its successors.
	arrivedNs := now.UnixNano()
	for j := range seg {
		if failed[j] {
			continue
		}
		rt.fifo = append(rt.fifo, seg[j].pt.ID)
		rt.residents[seg[j].pt.ID] = resident{cell: seg[j].cell, arrivedNs: arrivedNs}
	}
	rt.seq = baseSeq + uint64(n)
}

// scoreChunk scores lines [lo, hi) with one read-only support RPC per
// owning shard for the whole chunk, then replays the per-line sequential
// accumulation — sorted owners, stop at K, breaker-open shards skipped —
// so every line answers exactly what the per-line protocol would have.
func (rt *Router) scoreChunk(ctx context.Context, items []httpapi.BatchItem, lo, hi int, out []scoreLine) {
	topo := rt.topology()
	type probeSet struct {
		probes []SupportProbe
		lines  []int
	}
	perOwner := map[string]*probeSet{}
	ownersOf := make([][]string, hi-lo)
	for i := lo; i < hi; i++ {
		it := items[i]
		if it.Err != nil {
			out[i] = scoreLine{ID: it.Pt.ID, Error: it.Err.Error()}
			rt.met.lineErrors.Inc()
			continue
		}
		rt.met.scoreLines.Inc()
		if it.Pt.Dim() != rt.cfg.Dim {
			err := &errs.DimMismatchError{ID: it.Pt.ID, Got: it.Pt.Dim(), Want: rt.cfg.Dim}
			out[i] = scoreLine{ID: it.Pt.ID, Error: err.Error()}
			rt.met.lineErrors.Inc()
			continue
		}
		center := topo.CellOf(it.Pt.Coords)
		byOwner := map[string][][]int64{}
		for radius := 0; radius <= rt.l2; radius++ {
			index.RingCells(center, radius, func(c []int64) {
				cc := append([]int64(nil), c...)
				o := topo.Owner(cc)
				byOwner[o] = append(byOwner[o], cc)
			})
		}
		owners := make([]string, 0, len(byOwner))
		for o := range byOwner {
			owners = append(owners, o)
		}
		sort.Strings(owners)
		ownersOf[i-lo] = owners
		for _, o := range owners {
			ps := perOwner[o]
			if ps == nil {
				ps = &probeSet{}
				perOwner[o] = ps
			}
			ps.probes = append(ps.probes, SupportProbe{Point: it.Pt, Cells: byOwner[o]})
			ps.lines = append(ps.lines, i)
		}
	}
	type ownerResult struct {
		open   bool
		errMsg string
	}
	results := map[string]*ownerResult{}
	lineCounts := make([]map[string]int, hi-lo)
	allOwners := make([]string, 0, len(perOwner))
	for o := range perOwner {
		allOwners = append(allOwners, o)
	}
	sort.Strings(allOwners)
	for _, o := range allOwners {
		ps := perOwner[o]
		res := &ownerResult{}
		results[o] = res
		if rt.breaker(o).State() == retry.BreakerOpen {
			res.open = true // degraded: count what the healthy shards can see
			continue
		}
		body := EncodeSupportBatch(SupportHeader{Delta: 0, Limit: rt.cfg.K}, ps.probes)
		var resp SupportResponse
		rt.met.supportRPCs.Inc()
		if err := rt.callShard(ctx, topo, o, PathSupport, "", body, &resp); err != nil {
			res.errMsg = fmt.Sprintf("shard %s unavailable: %v", o, err)
			continue
		}
		if resp.Error != "" {
			res.errMsg = resp.Error
			continue
		}
		if len(resp.Counts) != len(ps.probes) {
			res.errMsg = fmt.Sprintf("shard %s: support answered %d counts for %d probes", o, len(resp.Counts), len(ps.probes))
			continue
		}
		for idx, j := range ps.lines {
			if lineCounts[j-lo] == nil {
				lineCounts[j-lo] = map[string]int{}
			}
			lineCounts[j-lo][o] = resp.Counts[idx]
		}
	}
	// Replay: each per-owner capped count equals what a per-line call would
	// have returned, so accumulating them in the same sorted order — with
	// the same early stop at K — reproduces the per-line verdicts; an
	// unreachable owner only errors the lines that would have reached it.
	for i := lo; i < hi; i++ {
		owners := ownersOf[i-lo]
		if owners == nil {
			continue // already answered (parse error or dimension mismatch)
		}
		total := 0
		errMsg := ""
		for _, o := range owners {
			res := results[o]
			if res.open {
				continue
			}
			if res.errMsg != "" {
				errMsg = res.errMsg
				break
			}
			total += lineCounts[i-lo][o]
			if total >= rt.cfg.K {
				break // already an inlier; min(total, K) is decided
			}
		}
		if errMsg != "" {
			rt.met.lineErrors.Inc()
			out[i] = scoreLine{ID: items[i].Pt.ID, Error: errMsg}
			continue
		}
		if total > rt.cfg.K {
			total = rt.cfg.K
		}
		out[i] = scoreLine{ID: items[i].Pt.ID, Neighbors: total, Outlier: total < rt.cfg.K}
	}
}
