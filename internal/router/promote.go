package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"dod/internal/obs"
	"dod/internal/replica"
	"dod/internal/retry"
)

// PromoteResponse answers POST /v1/promote.
type PromoteResponse struct {
	Shard string `json:"shard"`
	URL   string `json:"url"` // the promoted standby, now serving the shard
	Epoch int64  `json:"epoch"`
	Lag   uint64 `json:"lag"` // ops the standby was missing at the decision
}

// promoteError carries the HTTP shape of a refused promotion.
type promoteError struct {
	status int
	code   string
	msg    string
}

func (e *promoteError) Error() string { return e.code + ": " + e.msg }

// Promote fails the named shard over to its warm standby as one
// epoch-numbered topology transaction:
//
//  1. Read the standby's replication status and refuse unless its applied
//     position is within PromoteLagBound of the primary's last probed log
//     head (a stale standby must not silently rewrite window history).
//  2. Build the successor topology — same shard name, standby URL swapped
//     in, epoch advanced — and push it to the promoted standby first (the
//     push IS its promotion signal), then to the survivors.
//  3. Install the successor locally unless another transaction won the
//     epoch race, and reset the shard's breaker so traffic flows at once.
//
// In-flight requests need no explicit replay step: callShard re-resolves
// the shard's URL on every retry attempt, so a request stuck retrying the
// dead primary lands on the promoted standby with its original idempotency
// key — and the standby's replicated dedupe cache answers retried work
// exactly once.
func (rt *Router) Promote(ctx context.Context, name string) (*PromoteResponse, error) {
	rt.promoteMu.Lock()
	if rt.promoting[name] {
		rt.promoteMu.Unlock()
		return nil, &promoteError{http.StatusConflict, "promotion_in_progress",
			fmt.Sprintf("a promotion of shard %q is already running", name)}
	}
	rt.promoting[name] = true
	rt.promoteMu.Unlock()
	defer func() {
		rt.promoteMu.Lock()
		delete(rt.promoting, name)
		rt.promoteMu.Unlock()
	}()

	topo := rt.topology()
	if topo.ShardURL(name) == "" {
		return nil, &promoteError{http.StatusNotFound, "unknown_shard",
			fmt.Sprintf("shard %q is not in epoch %d", name, topo.Epoch)}
	}
	standby := topo.Standby(name)
	if standby == "" {
		return nil, &promoteError{http.StatusConflict, "no_standby",
			fmt.Sprintf("shard %q has no standby in epoch %d (already promoted?)", name, topo.Epoch)}
	}
	span := rt.trace.Start("promote").SetAttr(obs.Str("shard", name))
	defer span.End()

	st, err := rt.replicaStatus(ctx, standby)
	if err != nil {
		return nil, &promoteError{http.StatusBadGateway, "standby_unreachable",
			fmt.Sprintf("standby %s of shard %s: %v", standby, name, err)}
	}
	if st.Role != "standby" {
		return nil, &promoteError{http.StatusConflict, "not_standby",
			fmt.Sprintf("%s reports role %q, refusing to promote it for shard %s", standby, st.Role, name)}
	}
	lastHead := rt.lastReplicaHead(name)
	var lag uint64
	if lastHead > st.Applied {
		lag = lastHead - st.Applied
	}
	// A standby already flipped by a half-completed promotion push is past
	// the lag check: re-driving the topology transaction is the only repair.
	if !st.Promoted {
		withinBound := lag <= rt.cfg.PromoteLagBound
		if lastHead == 0 && !st.Synced {
			// No probe ever saw the primary's head; the standby's own
			// catch-up claim is the only lag signal left.
			withinBound = false
		}
		if !withinBound {
			rt.met.replicaLost.Add(int64(lag))
			return nil, &promoteError{http.StatusConflict, "standby_lag",
				fmt.Sprintf("standby of %s applied %d of %d known ops (lag %d > bound %d); promotion would lose them",
					name, st.Applied, lastHead, lag, rt.cfg.PromoteLagBound)}
		}
	}

	next, err := topo.Promote(name)
	if err != nil {
		return nil, &promoteError{http.StatusConflict, "promote_failed", err.Error()}
	}
	// Push the successor epoch to the promoted standby first — the push is
	// what flips it from replica replay to serving — then to the survivors,
	// whose peer support calls must follow the name to its new address.
	ordered := make([]ShardInfo, 0, len(next.Shards))
	for _, s := range next.Shards {
		if s.Name == name {
			ordered = append(ordered, s)
		}
	}
	for _, s := range next.Shards {
		if s.Name != name {
			ordered = append(ordered, s)
		}
	}
	if err := rt.pushTopology(ctx, next, ordered); err != nil {
		return nil, &promoteError{http.StatusBadGateway, "topology_push_failed", err.Error()}
	}

	rt.topoMu.Lock()
	if rt.topo.Epoch >= next.Epoch {
		rt.topoMu.Unlock()
		return nil, &promoteError{http.StatusConflict, "stale_epoch",
			fmt.Sprintf("epoch moved to %d while promoting %s to %d", rt.topo.Epoch, name, next.Epoch)}
	}
	rt.topo = next
	rt.topoMu.Unlock()

	rt.met.promotes.Inc()
	if lag > 0 {
		// Promoted within the bound but not at parity: the gap is real,
		// permanent loss — make it countable.
		rt.met.replicaLost.Add(int64(lag))
	}
	rt.breakMu.Lock()
	rt.breakers[name] = retry.NewBreaker(rt.cfg.Breaker)
	rt.breakMu.Unlock()
	rt.replicaMu.Lock()
	delete(rt.replicaHeads, name)
	rt.replicaMu.Unlock()
	span.SetAttr(obs.Int("epoch", next.Epoch), obs.Int("lag", int64(lag)))
	return &PromoteResponse{Shard: name, URL: next.ShardURL(name), Epoch: next.Epoch, Lag: lag}, nil
}

// lastReplicaHead returns the primary's last probed op-log head (0 if no
// probe ever reported one).
func (rt *Router) lastReplicaHead(name string) uint64 {
	rt.replicaMu.Lock()
	defer rt.replicaMu.Unlock()
	return rt.replicaHeads[name]
}

// replicaStatus fetches a standby's replication status.
func (rt *Router) replicaStatus(ctx context.Context, base string) (*replica.StatusResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+replica.PathStatus, nil)
	if err != nil {
		return nil, err
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, fmt.Errorf("GET %s%s: status %d", base, replica.PathStatus, resp.StatusCode)
	}
	var st replica.StatusResponse
	if err := json.Unmarshal(raw, &st); err != nil {
		return nil, fmt.Errorf("bad status from %s: %v", base, err)
	}
	return &st, nil
}

// handlePromote serves POST /v1/promote?shard=NAME — the manual form of
// the breaker-driven automatic failover.
func (rt *Router) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	name := r.URL.Query().Get("shard")
	if name == "" {
		rt.writeError(w, r, http.StatusBadRequest, "bad_request", "missing ?shard=NAME")
		return
	}
	resp, err := rt.Promote(r.Context(), name)
	if err != nil {
		var pe *promoteError
		if errors.As(err, &pe) {
			rt.writeError(w, r, pe.status, pe.code, pe.msg)
			return
		}
		rt.writeError(w, r, http.StatusBadGateway, "promote_failed", err.Error())
		return
	}
	rt.writeJSON(w, http.StatusOK, resp)
}
