// Package router implements the sharded serving tier in front of N
// dodserve shards: cell-based partitioning of the sliding window, a
// consistent-hash ring over cell blocks, the codec-framed shard wire
// protocol, and the stateless NDJSON router itself (cmd/dodroute).
//
// Partitioning follows the paper's Cell-Based layout (Lemma 3.1): a
// point's outlier verdict depends only on its grid cell and the bounded
// ring of cells within Chebyshev distance ⌈2√d⌉. Cells are grouped into
// square blocks of Block cells per side, and blocks — not individual
// cells — are placed on a consistent-hash ring. Hashing whole blocks keeps
// ring expansion shard-local for interior cells (a cell at least L2 cells
// from its block edge has its entire neighborhood in the same block);
// only boundary cells need the cross-shard support protocol.
//
// A Topology value is the shared ownership contract: the router and every
// shard hold byte-identical copies (pushed as JSON on /v1/shard/topology),
// so any party can answer "which shard owns cell c?" locally and
// deterministically — the ring hash is seed-free FNV-64a, never
// process-local randomness.
package router

import (
	"hash/fnv"
	"math"
	"sort"
	"sync"

	"dod/internal/detect"
	"dod/internal/errs"
)

// DefaultVnodes is the virtual-node count per shard on the consistent-hash
// ring. More vnodes smooth block distribution across shards.
const DefaultVnodes = 64

// DefaultBlock is the default block side in cells. With L2 = ⌈2√d⌉ (3 in
// 2D), a 16-cell block keeps the neighborhood of most interior cells
// entirely shard-local while still spreading load across shards.
const DefaultBlock = 16

// ShardInfo identifies one dodserve shard: its cluster-unique name (the
// ring hashes names, so renaming a shard moves its blocks) and base URL.
// Standby, when set, is the base URL of a warm standby replicating this
// shard's window — promotion swaps it into URL without touching the name,
// so ownership (which hashes names only) never moves.
type ShardInfo struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Standby string `json:"standby,omitempty"`
}

// Topology is the cell-ownership contract shared by the router and every
// shard. Two processes holding equal Topology values always agree on which
// shard owns which cell; the router bumps Epoch and re-pushes on every
// membership change (drain, failover) so shards can reject support calls
// routed under a stale view.
type Topology struct {
	Epoch  int64       `json:"epoch"`
	Dim    int         `json:"dim"`
	R      float64     `json:"r"`
	K      int         `json:"k"`
	Block  int         `json:"block"`  // block side, in cells
	Vnodes int         `json:"vnodes"` // virtual nodes per shard
	Shards []ShardInfo `json:"shards"`

	once sync.Once
	ring []ringPoint
	side float64
}

// ringPoint is one virtual node: a position on the hash circle owned by a
// shard.
type ringPoint struct {
	hash  uint64
	shard int // index into Shards
}

// Validate rejects unusable topologies; failures match errs.ErrBadParams.
func (t *Topology) Validate() error {
	if t.Dim < 1 {
		return errs.BadParams("topology dimension must be >= 1, got %d", t.Dim)
	}
	if t.R <= 0 {
		return errs.BadParams("topology r must be positive, got %g", t.R)
	}
	if t.K < 1 {
		return errs.BadParams("topology k must be >= 1, got %d", t.K)
	}
	if len(t.Shards) == 0 {
		return errs.BadParams("topology needs at least one shard")
	}
	seen := make(map[string]bool, len(t.Shards))
	for _, s := range t.Shards {
		if s.Name == "" {
			return errs.BadParams("topology shard with empty name")
		}
		if seen[s.Name] {
			return errs.BadParams("topology shard name %q duplicated", s.Name)
		}
		seen[s.Name] = true
	}
	if t.Block < 0 || t.Vnodes < 0 {
		return errs.BadParams("topology block and vnodes must be >= 0")
	}
	return nil
}

// init lazily builds the derived ring and cell geometry. Topologies travel
// as JSON, so the derived state cannot ride along; it is rebuilt
// deterministically from the marshaled fields on first use.
func (t *Topology) init() {
	t.once.Do(func() {
		if t.Block <= 0 {
			t.Block = DefaultBlock
		}
		if t.Vnodes <= 0 {
			t.Vnodes = DefaultVnodes
		}
		t.side = detect.CellSide(t.Dim, t.R)
		t.ring = make([]ringPoint, 0, len(t.Shards)*t.Vnodes)
		var buf [8]byte
		for si, s := range t.Shards {
			for v := 0; v < t.Vnodes; v++ {
				h := fnv.New64a()
				h.Write([]byte(s.Name))
				h.Write([]byte{'#'})
				putUint64(buf[:], uint64(v))
				h.Write(buf[:])
				t.ring = append(t.ring, ringPoint{hash: h.Sum64(), shard: si})
			}
		}
		sort.Slice(t.ring, func(i, j int) bool {
			if t.ring[i].hash != t.ring[j].hash {
				return t.ring[i].hash < t.ring[j].hash
			}
			// Tie-break by shard index so equal hashes (vanishingly rare but
			// possible) never make ownership order-dependent.
			return t.ring[i].shard < t.ring[j].shard
		})
	})
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// CellSide returns the grid cell width r/(2√d) — identical to the
// incremental index's layout, so router and shards bucket points into the
// same cells bit-for-bit.
func (t *Topology) CellSide() float64 {
	t.init()
	return t.side
}

// CellOf maps point coordinates to integer cell coordinates, with the same
// floor expression the incremental index uses.
func (t *Topology) CellOf(coords []float64) []int64 {
	t.init()
	c := make([]int64, len(coords))
	for i, v := range coords {
		c[i] = int64(math.Floor(v / t.side))
	}
	return c
}

// floorDiv is integer division rounding toward negative infinity, so
// blocks tile space uniformly across the origin.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// BlockOf maps a cell to its block coordinates.
func (t *Topology) BlockOf(cell []int64) []int64 {
	t.init()
	b := make([]int64, len(cell))
	for i, c := range cell {
		b[i] = floorDiv(c, int64(t.Block))
	}
	return b
}

// blockHash positions a cell's block on the hash circle.
func (t *Topology) blockHash(cell []int64) uint64 {
	t.init()
	h := fnv.New64a()
	var buf [8]byte
	for _, c := range cell {
		putUint64(buf[:], uint64(floorDiv(c, int64(t.Block))))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Owner returns the name of the shard owning the given cell: the first
// virtual node at or clockwise of the cell's block hash.
func (t *Topology) Owner(cell []int64) string {
	t.init()
	if len(t.ring) == 0 {
		return ""
	}
	h := t.blockHash(cell)
	i := sort.Search(len(t.ring), func(i int) bool { return t.ring[i].hash >= h })
	if i == len(t.ring) {
		i = 0
	}
	return t.Shards[t.ring[i].shard].Name
}

// OwnerOf returns the owning shard of the cell containing the given point
// coordinates.
func (t *Topology) OwnerOf(coords []float64) string {
	return t.Owner(t.CellOf(coords))
}

// ShardURL returns the base URL registered for a shard name, or "".
func (t *Topology) ShardURL(name string) string {
	for _, s := range t.Shards {
		if s.Name == name {
			return s.URL
		}
	}
	return ""
}

// Standby returns the standby URL registered for a shard name, or "".
func (t *Topology) Standby(name string) string {
	for _, s := range t.Shards {
		if s.Name == name {
			return s.Standby
		}
	}
	return ""
}

// Promote returns a copy of the topology with the named shard served by
// its standby URL and the epoch advanced — the ownership view after a
// failover. The shard keeps its name, so no blocks move; only the address
// behind the name changes.
func (t *Topology) Promote(name string) (*Topology, error) {
	nt := t.Clone()
	nt.Epoch = t.Epoch + 1
	for i := range nt.Shards {
		if nt.Shards[i].Name != name {
			continue
		}
		if nt.Shards[i].Standby == "" {
			return nil, errs.BadParams("shard %q has no standby to promote", name)
		}
		nt.Shards[i].URL = nt.Shards[i].Standby
		nt.Shards[i].Standby = ""
		return nt, nil
	}
	return nil, errs.BadParams("shard %q not in topology", name)
}

// Without returns a copy of the topology with the named shard removed and
// the epoch advanced — the ownership view after a drain. The copy shares
// no derived state with the original.
func (t *Topology) Without(name string) *Topology {
	t.init()
	nt := &Topology{
		Epoch:  t.Epoch + 1,
		Dim:    t.Dim,
		R:      t.R,
		K:      t.K,
		Block:  t.Block,
		Vnodes: t.Vnodes,
	}
	for _, s := range t.Shards {
		if s.Name != name {
			nt.Shards = append(nt.Shards, s)
		}
	}
	return nt
}

// Clone returns a deep copy sharing no derived state.
func (t *Topology) Clone() *Topology {
	nt := &Topology{
		Epoch:  t.Epoch,
		Dim:    t.Dim,
		R:      t.R,
		K:      t.K,
		Block:  t.Block,
		Vnodes: t.Vnodes,
		Shards: append([]ShardInfo(nil), t.Shards...),
	}
	return nt
}
