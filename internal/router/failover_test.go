// Failover harness: warm-standby replication and lag-bounded promotion,
// end to end through the router. The tentpole property mirrors the drain
// tests': kill a replicated primary mid-stream, promote its standby, and
// the tier's NDJSON verdict stream stays byte-identical to the clean
// single-process reference — the standby replayed the primary's op log to
// bit-identical window state, and the replicated idempotency cache makes
// requests in flight across the failover exactly-once.
package router_test

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dod/internal/fault"
	"dod/internal/replica"
	"dod/internal/retry"
	"dod/internal/router"
)

// waitReplicaSynced polls a primary's replication status until its standby
// has acked every appended op — the quiesce point at which primary and
// standby hold bit-identical state.
func (c *cluster) waitReplicaSynced(name string, timeout time.Duration) {
	c.t.Helper()
	deadline := time.Now().Add(timeout)
	var last replica.StatusResponse
	for time.Now().Before(deadline) {
		resp, err := http.Get(c.srvs[name].URL + replica.PathStatus)
		if err == nil {
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if json.Unmarshal(raw, &last) == nil && last.Role == "primary" && last.Synced {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.t.Fatalf("standby of %s never caught up: %+v", name, last)
}

// promote runs the manual promotion endpoint and returns (status, body).
func (c *cluster) promote(name string) (int, []byte) {
	c.t.Helper()
	resp, err := http.Post(c.rtSrv.URL+"/v1/promote?shard="+name, "", nil)
	if err != nil {
		c.t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, raw
}

// adoptStandby swaps the promoted standby into the cluster's shard maps so
// checkFinalState inspects it instead of the dead primary. The standby
// replayed every primary op — including verdict flips — so the swap keeps
// the global flip totals intact.
func (c *cluster) adoptStandby(name string) {
	c.t.Helper()
	c.shards[name] = c.stbys[name]
	c.srvs[name] = c.stbySrvs[name]
}

// digestOf fetches a shard process's deterministic window digest.
func digestOf(t *testing.T, base string) replica.DigestResponse {
	t.Helper()
	resp, err := http.Get(base + replica.PathDigest)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var d replica.DigestResponse
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	return d
}

// statsz fetches the router's counters.
func (c *cluster) statsz() map[string]any {
	c.t.Helper()
	resp, err := http.Get(c.rtSrv.URL + "/statsz")
	if err != nil {
		c.t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		c.t.Fatal(err)
	}
	return m
}

func statInt(t *testing.T, m map[string]any, key string) int64 {
	t.Helper()
	v, ok := m[key].(float64)
	if !ok {
		t.Fatalf("statsz %q = %v (%T), want number", key, m[key], m[key])
	}
	return int64(v)
}

// checkDigestsMatch compares primary and standby at a quiesce point: equal
// log positions and equal window digests (bit-identical verdict state).
func (c *cluster) checkDigestsMatch(name string) {
	c.t.Helper()
	dp := digestOf(c.t, c.srvs[name].URL)
	ds := digestOf(c.t, c.stbySrvs[name].URL)
	if dp.Seq != ds.Seq {
		c.t.Fatalf("digest positions differ: primary seq %d, standby seq %d", dp.Seq, ds.Seq)
	}
	if dp.Digest != ds.Digest || dp.Points != ds.Points {
		c.t.Fatalf("anti-entropy digest mismatch at seq %d:\nprimary: %s (%d points)\nstandby: %s (%d points)",
			dp.Seq, dp.Digest, dp.Points, ds.Digest, ds.Points)
	}
}

// TestFailoverMatchesSingleProcess is the tentpole E2E property: stream,
// kill the replicated primary, promote its standby, keep streaming — and
// every NDJSON response stays byte-identical to the single-process
// reference, with zero ops lost.
func TestFailoverMatchesSingleProcess(t *testing.T) {
	for _, seed := range []int64{11, 12} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := newCluster(t, clusterOpts{
				shards: 3, capacity: 150, block: 2,
				standbys: []string{"s1"},
				routerOpts: func(cfg *router.Config) {
					// No probes: promotion timing belongs to the test, and
					// with lastHead unprobed the lag gate falls back to the
					// standby's own catch-up claim.
					cfg.ProbeInterval = time.Hour
				},
			})
			rng := rand.New(rand.NewSource(seed))
			id := c.streamBatches(rng, 0, 6, 25)

			c.waitReplicaSynced("s1", 5*time.Second)
			c.checkDigestsMatch("s1")

			// Kill the primary's listener — the process is gone as far as
			// the tier can tell — and fail over.
			c.srvs["s1"].Close()
			if status, raw := c.promote("s1"); status != http.StatusOK {
				t.Fatalf("promote: status %d: %s", status, raw)
			}
			c.adoptStandby("s1")

			c.streamBatches(rng, id, 6, 25)
			c.checkFinalState()

			st := c.statsz()
			if got := statInt(t, st, "promotes"); got != 1 {
				t.Fatalf("promotes = %d, want 1", got)
			}
			if got := statInt(t, st, "replica_lost"); got != 0 {
				t.Fatalf("replica_lost = %d, want 0 (synced standby)", got)
			}
		})
	}
}

// TestAutoPromoteOnBreakerOpen exercises the unattended path: the health
// probe's breaker opens on the dead primary and the router promotes the
// standby on its own.
func TestAutoPromoteOnBreakerOpen(t *testing.T) {
	c := newCluster(t, clusterOpts{
		shards: 2, capacity: 150, block: 2,
		standbys: []string{"s1"},
		routerOpts: func(cfg *router.Config) {
			cfg.ProbeInterval = 20 * time.Millisecond
			// A long cooldown keeps the opened breaker open until the
			// promotion transaction replaces it.
			cfg.Breaker = retry.BreakerConfig{Threshold: 2, Cooldown: time.Minute}
		},
	})
	rng := rand.New(rand.NewSource(21))
	id := c.streamBatches(rng, 0, 4, 25)
	c.waitReplicaSynced("s1", 5*time.Second)

	standbyURL := c.stbySrvs["s1"].URL
	c.srvs["s1"].Close()
	deadline := time.Now().Add(5 * time.Second)
	for c.rt.Topology().ShardURL("s1") != standbyURL {
		if time.Now().After(deadline) {
			t.Fatalf("breaker-driven promotion never happened; topology still %q", c.rt.Topology().ShardURL("s1"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.adoptStandby("s1")

	c.streamBatches(rng, id, 4, 25)
	c.checkFinalState()

	st := c.statsz()
	if got := statInt(t, st, "promotes"); got < 1 {
		t.Fatalf("promotes = %d, want >= 1", got)
	}
	if got := statInt(t, st, "replica_lost"); got != 0 {
		t.Fatalf("replica_lost = %d, want 0", got)
	}
}

// TestPromoteRaces drives two concurrent promotions of the same shard:
// exactly one commits, the loser is refused with a 409, and a third
// attempt after the commit finds no standby left to promote. Run under
// -race this also proves the promotion transaction's epoch handoff is
// data-race free.
func TestPromoteRaces(t *testing.T) {
	c := newCluster(t, clusterOpts{
		shards: 2, capacity: 150, block: 2,
		standbys: []string{"s1"},
		routerOpts: func(cfg *router.Config) {
			cfg.ProbeInterval = time.Hour
		},
	})
	rng := rand.New(rand.NewSource(31))
	id := c.streamBatches(rng, 0, 3, 25)
	c.waitReplicaSynced("s1", 5*time.Second)

	type result struct {
		status int
		raw    []byte
	}
	results := make([]result, 2)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, raw := c.promote("s1")
			results[i] = result{status, raw}
		}(i)
	}
	wg.Wait()

	wins := 0
	for _, r := range results {
		switch r.status {
		case http.StatusOK:
			wins++
		case http.StatusConflict:
			// promotion_in_progress, stale_epoch or no_standby — all are
			// correct refusals for the losing transaction.
		default:
			t.Fatalf("racing promote: status %d: %s", r.status, r.raw)
		}
	}
	if wins != 1 {
		t.Fatalf("%d promotions committed, want exactly 1: %+v", wins, results)
	}

	// The shard is already served by its (former) standby; promoting again
	// has nothing to flip to.
	if status, raw := c.promote("s1"); status != http.StatusConflict || !strings.Contains(string(raw), "no_standby") {
		t.Fatalf("re-promote: status %d: %s, want 409 no_standby", status, raw)
	}

	c.adoptStandby("s1")
	c.streamBatches(rng, id, 3, 25)
	c.checkFinalState()
}

// blackholeTransport fails every request — a replication hop that never
// delivers a single op.
type blackholeTransport struct{}

func (blackholeTransport) RoundTrip(*http.Request) (*http.Response, error) {
	return nil, fmt.Errorf("blackhole: replication link down")
}

// TestPromotionRefusedBeyondLagBound pins the safety gate: a standby that
// never received the op log must not be promoted (lag bound 0), the
// refusal names the lag, the known-lost gap is counted, and the topology
// keeps the primary in place.
func TestPromotionRefusedBeyondLagBound(t *testing.T) {
	c := newCluster(t, clusterOpts{
		shards: 2, capacity: 150, block: 2,
		standbys: []string{"s1"},
		replicaTransport: func(string) http.RoundTripper {
			return blackholeTransport{}
		},
		routerOpts: func(cfg *router.Config) {
			// Fast probes record the primary's op-log head — the yardstick
			// the lag check measures the silent standby against.
			cfg.ProbeInterval = 10 * time.Millisecond
		},
	})
	rng := rand.New(rand.NewSource(41))
	c.streamBatches(rng, 0, 3, 25)

	// Wait until a probe has seen a non-zero head for s1.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var seen bool
		for _, s := range c.statsz()["shards"].([]any) {
			sm := s.(map[string]any)
			if sm["name"] == "s1" {
				if h, ok := sm["replica_head"].(float64); ok && h > 0 {
					seen = true
				}
			}
		}
		if seen {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("probe never recorded s1's op-log head")
		}
		time.Sleep(5 * time.Millisecond)
	}

	primaryURL := c.rt.Topology().ShardURL("s1")
	status, raw := c.promote("s1")
	if status != http.StatusConflict || !strings.Contains(string(raw), "standby_lag") {
		t.Fatalf("promote with lagging standby: status %d: %s, want 409 standby_lag", status, raw)
	}
	if got := statInt(t, c.statsz(), "replica_lost"); got <= 0 {
		t.Fatalf("replica_lost = %d, want > 0 (the refused gap is countable)", got)
	}
	if url := c.rt.Topology().ShardURL("s1"); url != primaryURL {
		t.Fatalf("refused promotion moved the topology: %q -> %q", primaryURL, url)
	}

	// The starved standby still refuses readiness.
	resp, err := http.Get(c.stbySrvs["s1"].URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("starved standby readyz = %d, want 503", resp.StatusCode)
	}
}

// TestForcedDrainReportsLoss covers the no-standby last resort: a forced
// drain of a dead shard proceeds, reports exactly what it dropped, counts
// it, and leaves the tier serving (the lost residents' FIFO slots become
// ghosts the eviction scan skips).
func TestForcedDrainReportsLoss(t *testing.T) {
	c := newCluster(t, clusterOpts{
		shards: 3, capacity: 120, block: 2,
		routerOpts: func(cfg *router.Config) {
			cfg.ProbeInterval = time.Hour
		},
	})
	rng := rand.New(rand.NewSource(51))
	c.streamBatches(rng, 0, 6, 25)
	c.srvs["s1"].Close()

	// A plain drain needs the shard's window and must fail.
	resp, err := http.Post(c.rtSrv.URL+"/v1/drain?shard=s1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("drain of a dead shard succeeded: %s", raw)
	}

	// force=1 proceeds and reports the blast radius.
	resp, err = http.Post(c.rtSrv.URL+"/v1/drain?shard=s1&force=1", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forced drain: status %d: %s", resp.StatusCode, raw)
	}
	var dr router.DrainResponse
	if err := json.Unmarshal(raw, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.LostEntries <= 0 || dr.LostCells <= 0 {
		t.Fatalf("forced drain reported no loss: %+v", dr)
	}
	if got := statInt(t, c.statsz(), "forced_loss"); got != int64(dr.LostEntries) {
		t.Fatalf("forced_loss = %d, want %d (the response's lost_entries)", got, dr.LostEntries)
	}

	// The tier still serves, and pushing well past capacity exercises the
	// ghost slots the purged residents left in the eviction FIFO. The
	// reference comparison is over: the loss is real divergence by design.
	id := uint64(10_000)
	for b := 0; b < 8; b++ {
		var sb strings.Builder
		for i := 0; i < 30; i++ {
			id++
			fmt.Fprintf(&sb, `{"id":%d,"coords":[%g,%g]}`+"\n", id, rng.Float64()*12, rng.Float64()*12)
		}
		status, out := post(t, c.rtSrv.URL+"/v1/ingest", sb.String())
		if status != http.StatusOK {
			t.Fatalf("post-loss ingest batch %d: status %d: %s", b, status, out)
		}
		if strings.Contains(string(out), `"error"`) {
			t.Fatalf("post-loss ingest batch %d produced per-line errors: %s", b, out)
		}
	}
}

// dropTransport performs requests to the armed host but discards their
// responses — the far side acted, the caller never learns. Arming it
// against a replicated primary models the worst in-flight case: work
// applied, logged and replicated, with the client still retrying.
type dropTransport struct {
	inner   http.RoundTripper
	host    atomic.Value // string; "" disarmed
	dropped chan struct{}
	once    sync.Once
}

func newDropTransport() *dropTransport {
	d := &dropTransport{inner: http.DefaultTransport, dropped: make(chan struct{})}
	d.host.Store("")
	return d
}

func (d *dropTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if h, _ := d.host.Load().(string); h != "" && req.URL.Host == h {
		resp, err := d.inner.RoundTrip(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
		d.once.Do(func() { close(d.dropped) })
		return nil, fmt.Errorf("dropTransport: response from %s discarded", req.URL.Host)
	}
	return d.inner.RoundTrip(req)
}

// TestInflightRetryAcrossPromotion is the exactly-once E2E: an ingest whose
// response is lost keeps retrying through the failover, lands on the
// promoted standby with its original idempotency key, and is answered from
// the replicated dedupe cache — byte-identical to the reference, applied
// once.
func TestInflightRetryAcrossPromotion(t *testing.T) {
	dt := newDropTransport()
	c := newCluster(t, clusterOpts{
		shards: 2, capacity: 150, block: 2,
		standbys: []string{"s1"},
		routerOpts: func(cfg *router.Config) {
			cfg.Transport = dt
			cfg.ProbeInterval = time.Hour
			// A deep retry budget: with Base 1ms the loop spends ~2s
			// retrying the dead primary — promotion happens well within it.
			cfg.RetryAttempts = 60
		},
	})
	rng := rand.New(rand.NewSource(61))
	id := c.streamBatches(rng, 0, 4, 25)
	c.waitReplicaSynced("s1", 5*time.Second)

	// A point owned by s1, so its ingest is the call that gets stuck.
	topo := c.rt.Topology()
	var coords []float64
	for x := 0.1; x < 12; x += 0.37 {
		if cand := []float64{x, 11.3}; topo.OwnerOf(cand) == "s1" {
			coords = cand
			break
		}
	}
	if coords == nil {
		t.Fatal("no probe coordinate landed on s1")
	}
	line := fmt.Sprintf(`{"id":900001,"coords":[%g,%g]}`+"\n", coords[0], coords[1])

	// Reference first: its answer is the byte-exact oracle for the retried
	// router response.
	refStatus, refRaw := post(t, c.refSrv.URL+"/v1/ingest", line)
	if refStatus != http.StatusOK {
		t.Fatalf("reference ingest: status %d: %s", refStatus, refRaw)
	}

	dt.host.Store(strings.TrimPrefix(c.srvs["s1"].URL, "http://"))
	type result struct {
		status int
		raw    []byte
	}
	resCh := make(chan result, 1)
	go func() {
		status, raw := post(t, c.rtSrv.URL+"/v1/ingest", line)
		resCh <- result{status, raw}
	}()

	// The primary has applied and logged the ingest (and its dedupe record)
	// but the response is gone. Once the standby acked everything, promote.
	<-dt.dropped
	c.waitReplicaSynced("s1", 5*time.Second)
	if status, raw := c.promote("s1"); status != http.StatusOK {
		t.Fatalf("promote: status %d: %s", status, raw)
	}
	c.adoptStandby("s1")

	got := <-resCh
	if got.status != http.StatusOK {
		t.Fatalf("in-flight ingest: status %d: %s", got.status, got.raw)
	}
	if string(got.raw) != string(refRaw) {
		t.Fatalf("in-flight ingest diverged across failover:\nrouter: %s\nreference: %s", got.raw, refRaw)
	}

	dt.host.Store("")
	c.streamBatches(rng, id+1, 4, 25)
	c.checkFinalState()
	if got := statInt(t, c.statsz(), "replica_lost"); got != 0 {
		t.Fatalf("replica_lost = %d, want 0", got)
	}
}

// replicaChaosSeeds is the fixed PR matrix for the replication-hop chaos
// runs; -fault.seed narrows it for replay, same as the route matrix.
var replicaChaosSeeds = []int64{301, 302, 303}

// TestReplicaChaosFailover injects latency, errors, dropped acks, corrupt
// responses and partition windows into the primary→standby hop — the op
// shipper must absorb all of it (re-ship, dedupe by seq, integrity-check)
// and still deliver a standby whose promotion keeps the verdict stream
// byte-identical. Corrupt IS in this mix, unlike the route matrix:
// replication bodies are codec-sealed frames, so a flipped byte is a
// protocol-level 400 the shipper retries through.
func TestReplicaChaosFailover(t *testing.T) {
	seeds := replicaChaosSeeds
	if *faultSeed > 0 {
		seeds = []int64{*faultSeed}
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			in := fault.New(fault.Config{Seed: seed, Rules: []fault.Rule{{
				Site:         "*",
				PLatency:     0.10,
				MaxLatency:   2 * time.Millisecond,
				PError:       0.08,
				PDrop:        0.06,
				PCorrupt:     0.05,
				PPartition:   0.01,
				PartitionLen: 3,
			}}})
			t.Cleanup(func() {
				if t.Failed() {
					t.Logf("replay with: go test ./internal/router/ -run ReplicaChaos -fault.seed=%d", seed)
				}
			})
			c := newCluster(t, clusterOpts{
				shards: 2, capacity: 150, block: 2,
				standbys: []string{"s1"},
				replicaTransport: func(name string) http.RoundTripper {
					return fault.Transport(nil, in, "replica."+name)
				},
				routerOpts: func(cfg *router.Config) {
					cfg.ProbeInterval = time.Hour
				},
			})
			rng := rand.New(rand.NewSource(seed))
			id := c.streamBatches(rng, 0, 5, 25)

			// Chaos slows shipping but must never stop it: the standby
			// still reaches byte-identical state at the quiesce point.
			c.waitReplicaSynced("s1", 10*time.Second)
			c.checkDigestsMatch("s1")

			c.srvs["s1"].Close()
			if status, raw := c.promote("s1"); status != http.StatusOK {
				t.Fatalf("promote: status %d: %s", status, raw)
			}
			c.adoptStandby("s1")

			c.streamBatches(rng, id, 5, 25)
			c.checkFinalState()

			st := c.statsz()
			if got := statInt(t, st, "promotes"); got != 1 {
				t.Fatalf("promotes = %d, want 1", got)
			}
			if got := statInt(t, st, "replica_lost"); got != 0 {
				t.Fatalf("replica_lost = %d, want 0", got)
			}
		})
	}
}
