package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dod/internal/detect"
	"dod/internal/errs"
	"dod/internal/geom"
	"dod/internal/httpapi"
	"dod/internal/index"
	"dod/internal/obs"
	"dod/internal/retry"
)

// DefaultMaxBatch bounds the NDJSON lines per router request, mirroring the
// single-process serving tier.
const DefaultMaxBatch = 100_000

// DefaultMaxBodyBytes bounds one request body (64 MiB).
const DefaultMaxBodyBytes = 64 << 20

// Config parameterizes a Router.
type Config struct {
	// R, K, Dim are the detection parameters, identical on every shard.
	R   float64
	K   int
	Dim int
	// Capacity bounds the GLOBAL window point count across all shards;
	// ingesting past it evicts the globally oldest point first. Zero means
	// no count bound (then TTL is required).
	Capacity int
	// TTL bounds global point age. Zero means no time bound.
	TTL time.Duration
	// Shards is the initial shard membership.
	Shards []ShardInfo
	// Block and Vnodes tune the ownership ring (0 = defaults).
	Block  int
	Vnodes int
	// MaxBatch caps NDJSON lines per request; default DefaultMaxBatch.
	MaxBatch int
	// MaxBodyBytes caps one request body; default DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// TenantRPS/TenantBurst shape the per-tenant token bucket; TenantRPS 0
	// disables rate limiting.
	TenantRPS   float64
	TenantBurst int
	// TenantQuota is a per-tenant lifetime ingested-line quota; 0 disables.
	TenantQuota int64
	// ProbeInterval is the shard health-probe period; default 1s.
	ProbeInterval time.Duration
	// Obs is the metrics registry; default a fresh one.
	Obs *obs.Registry
	// Transport is the HTTP transport for shard calls — the fault
	// injection seam. Nil uses httpapi.NewTransport, tuned for persistent
	// router→shard connection reuse.
	Transport http.RoundTripper
	// LegacyWire disables the zero-allocation NDJSON fast path and encodes
	// responses through encoding/json, as before the wirejson codec. The
	// two paths are byte-identical on the wire; the knob exists so the
	// serve bench can measure one against the other on a single build.
	LegacyWire bool
	// NoCoalesce disables request coalescing and issues one shard ingest
	// RPC per point and one support RPC per (point, peer), as before the
	// batch wire forms. Verdict streams are identical either way; the knob
	// exists for the same honest before/after benchmarking.
	NoCoalesce bool
	// Retry shapes shard-call backoff; zero value takes defaults.
	Retry retry.Policy
	// RetryAttempts bounds shard-call attempts; default 8.
	RetryAttempts int
	// Breaker tunes the per-shard health breakers (zero value: trip after
	// 3 consecutive failures, probe again after 5s).
	Breaker retry.BreakerConfig
	// PromoteLagBound is the largest number of unreplicated ops a standby
	// may be missing — measured against the primary's last probed log
	// head — and still be promoted. 0 demands a fully caught-up standby.
	// A promotion refused for lag leaves the shard degraded and counts the
	// gap in dod_replica_lost_total.
	PromoteLagBound uint64
	// EnablePprof mounts the net/http/pprof handlers under /debug/pprof/.
	// Off by default: the profiling endpoints can stall the serving path
	// and expose internals, so they are opt-in like dodserve's.
	EnablePprof bool
	// now overrides the clock in tests.
	now func() time.Time
}

// resident is the router's per-point window metadata: enough to know WHERE
// a point lives (its cell decides the owning shard under any topology) and
// WHEN it arrived (drives TTL eviction). The router holds no coordinates
// and no neighbor state — those live on the shards; this map plus the FIFO
// is what "stateless router" means here: O(window) bookkeeping, O(0) data.
type resident struct {
	cell      []int64
	arrivedNs int64
}

// Router fronts N dodserve shards as one logical detection service with
// the same NDJSON API and byte-identical verdict streams as a
// single-process server on the same input. It owns the global window
// discipline — sequence numbers, capacity/TTL eviction order, duplicate
// IDs — and delegates all point storage and neighbor counting to the
// shards through the wire protocol.
type Router struct {
	cfg     Config
	mux     *http.ServeMux
	reg     *obs.Registry
	met     *routerMetrics
	trace   *obs.Trace
	client  *http.Client
	limiter *tenantLimiter
	now     func() time.Time
	started time.Time
	l2      int

	topoMu sync.RWMutex
	topo   *Topology

	breakMu  sync.Mutex
	breakers map[string]*retry.Breaker

	// replicaHeads is the last log head each primary reported on /healthz —
	// the promotion-time yardstick for how far a standby may lag. Guarded
	// by replicaMu; promoteMu serializes whole promotion transactions.
	replicaMu    sync.Mutex
	replicaHeads map[string]uint64
	promoteMu    sync.Mutex
	promoting    map[string]bool

	// mu serializes all window mutation (ingest batches, evictions,
	// drains), exactly as the single-process window mutex does — the global
	// order of mutations IS the contract that keeps the sharded verdict
	// stream byte-identical.
	mu        sync.Mutex
	residents map[uint64]resident
	fifo      []uint64
	head      int
	seq       uint64

	ready     atomic.Bool
	draining  atomic.Bool
	stopProbe chan struct{}
	probeWG   sync.WaitGroup
	probeOnce sync.Once
}

// New builds a Router over the given shard membership. Call Start to push
// the initial topology and begin health probing.
func New(cfg Config) (*Router, error) {
	topo := &Topology{
		Epoch: 1, Dim: cfg.Dim, R: cfg.R, K: cfg.K,
		Block: cfg.Block, Vnodes: cfg.Vnodes, Shards: append([]ShardInfo(nil), cfg.Shards...),
	}
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if cfg.Capacity < 0 || cfg.TTL < 0 {
		return nil, errs.BadParams("router capacity and ttl must be >= 0")
	}
	if cfg.Capacity == 0 && cfg.TTL == 0 {
		return nil, errs.BadParams("window needs a capacity or a ttl (or both)")
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.RetryAttempts <= 0 {
		cfg.RetryAttempts = 8
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	transport := cfg.Transport
	if transport == nil {
		transport = httpapi.NewTransport()
	}
	rt := &Router{
		cfg:          cfg,
		mux:          http.NewServeMux(),
		reg:          cfg.Obs,
		met:          newRouterMetrics(cfg.Obs),
		trace:        obs.NewTrace("dodroute"),
		client:       &http.Client{Transport: transport},
		limiter:      newTenantLimiter(cfg.TenantRPS, cfg.TenantBurst, cfg.TenantQuota, cfg.now),
		now:          cfg.now,
		started:      cfg.now(),
		l2:           detect.L2Radius(cfg.Dim),
		topo:         topo,
		breakers:     make(map[string]*retry.Breaker),
		replicaHeads: make(map[string]uint64),
		promoting:    make(map[string]bool),
		residents:    make(map[uint64]resident),
		stopProbe:    make(chan struct{}),
	}
	for _, s := range cfg.Shards {
		rt.breakers[s.Name] = retry.NewBreaker(cfg.Breaker)
	}
	rt.reg.GaugeFunc("dod_route_window_points", "points resident in the global window",
		func() float64 { rt.mu.Lock(); defer rt.mu.Unlock(); return float64(len(rt.residents)) })
	rt.reg.GaugeFunc("dod_route_topology_epoch", "current ownership epoch",
		func() float64 { return float64(rt.topology().Epoch) })
	rt.reg.GaugeFunc("dod_route_shards", "shards in the current topology",
		func() float64 { return float64(len(rt.topology().Shards)) })
	retry.Instrument(rt.reg)
	rt.mux.HandleFunc("/v1/ingest", rt.handleIngest)
	rt.mux.HandleFunc("/v1/score", rt.handleScore)
	rt.mux.HandleFunc("/v1/drain", rt.handleDrain)
	rt.mux.HandleFunc("/v1/promote", rt.handlePromote)
	rt.mux.HandleFunc("/v1/topology", rt.handleTopology)
	rt.mux.HandleFunc("/v1/snapshot", rt.handleSnapshot)
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("/readyz", rt.handleReadyz)
	rt.mux.HandleFunc("/statsz", rt.handleStatsz)
	rt.mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", obs.TextContentType)
		rt.reg.WritePrometheus(w)
	})
	if cfg.EnablePprof {
		rt.mux.HandleFunc("/debug/pprof/", pprof.Index)
		rt.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		rt.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		rt.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		rt.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return rt, nil
}

// Handler returns the router's HTTP handler; every response echoes the
// caller's X-Dod-Request-Id (or the one the router generated for it).
func (rt *Router) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		EnsureRequestID(r)
		EchoRequestID(w, r)
		rt.mux.ServeHTTP(w, r)
	})
}

// Registry exposes the metrics registry.
func (rt *Router) Registry() *obs.Registry { return rt.reg }

// Trace exposes the router's span trace (drain/handoff timings).
func (rt *Router) Trace() *obs.Trace { return rt.trace }

// Topology returns the current ownership view (a deep copy).
func (rt *Router) Topology() *Topology { return rt.topology().Clone() }

// SetDraining flips readiness for load-balancer rotation.
func (rt *Router) SetDraining(d bool) { rt.draining.Store(d) }

func (rt *Router) topology() *Topology {
	rt.topoMu.RLock()
	defer rt.topoMu.RUnlock()
	return rt.topo
}

func (rt *Router) breaker(name string) *retry.Breaker {
	rt.breakMu.Lock()
	defer rt.breakMu.Unlock()
	b := rt.breakers[name]
	if b == nil {
		b = retry.NewBreaker(rt.cfg.Breaker)
		rt.breakers[name] = b
	}
	return b
}

// Start pushes the initial topology to every shard (retrying until ctx is
// done) and starts the health-probe loop. The router serves 503 on /readyz
// until the push succeeds.
func (rt *Router) Start(ctx context.Context) error {
	topo := rt.topology()
	span := rt.trace.Start("topology_push").SetAttr(obs.Int("epoch", topo.Epoch))
	if err := rt.pushTopology(ctx, topo, topo.Shards); err != nil {
		span.End()
		return err
	}
	span.End()
	rt.ready.Store(true)
	rt.probeOnce.Do(func() {
		rt.probeWG.Add(1)
		go rt.probeLoop()
	})
	return nil
}

// Close stops the health-probe loop.
func (rt *Router) Close() {
	select {
	case <-rt.stopProbe:
	default:
		close(rt.stopProbe)
	}
	rt.probeWG.Wait()
}

// probeLoop probes every shard's /healthz each ProbeInterval, feeding the
// per-shard breakers that gate read-path routing.
func (rt *Router) probeLoop() {
	defer rt.probeWG.Done()
	t := time.NewTicker(rt.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stopProbe:
			return
		case <-t.C:
			for _, s := range rt.topology().Shards {
				rt.probeShard(s)
			}
		}
	}
}

func (rt *Router) probeShard(s ShardInfo) {
	ctx, cancel := context.WithTimeout(context.Background(), rt.cfg.ProbeInterval)
	defer cancel()
	var raw []byte
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.URL+"/healthz", nil)
	if err != nil {
		return
	}
	resp, err := rt.client.Do(req)
	if err == nil {
		raw, _ = io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
	}
	b := rt.breaker(s.Name)
	if err != nil || resp.StatusCode/100 != 2 {
		rt.met.probeFails.Inc()
		b.Failure()
		// A tripped breaker on a shard with a warm standby starts the
		// failover: promotion runs off the probe loop so one slow standby
		// status call cannot stall probing of the other shards.
		if b.State() == retry.BreakerOpen && s.Standby != "" {
			go rt.autoPromote(s.Name)
		}
		return
	}
	b.Success()
	// A replicating primary reports its op-log head on /healthz; remember
	// it as the promotion-time yardstick for standby lag.
	var hb struct {
		Replica struct {
			Role string `json:"role"`
			Head uint64 `json:"head"`
		} `json:"replica"`
	}
	if json.Unmarshal(raw, &hb) == nil && hb.Replica.Role == "primary" {
		rt.replicaMu.Lock()
		if hb.Replica.Head > rt.replicaHeads[s.Name] {
			rt.replicaHeads[s.Name] = hb.Replica.Head
		}
		rt.replicaMu.Unlock()
	}
}

// autoPromote attempts a breaker-driven promotion, swallowing failures (a
// refused or raced promotion leaves the shard degraded; the next failed
// probe tries again).
func (rt *Router) autoPromote(name string) {
	if !rt.ready.Load() {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rt.Promote(ctx, name) //nolint:errcheck
}

// callURL POSTs body to base+path with bounded retries and per-shard
// breaker bookkeeping. Mutating calls are retry-safe because shards dedupe
// by reqKey; pass reqKey "" for read-only calls to skip shard-side
// deduplication.
func (rt *Router) callURL(ctx context.Context, shard, base, path, reqKey string, body []byte, out any) error {
	return rt.callURLResolved(ctx, shard, func() string { return base }, path, reqKey, body, out)
}

// callURLResolved is callURL with the target URL re-resolved per attempt.
func (rt *Router) callURLResolved(ctx context.Context, shard string, resolve func() string, path, reqKey string, body []byte, out any) error {
	b := rt.breaker(shard)
	var lastErr error
	for attempt := 0; attempt < rt.cfg.RetryAttempts; attempt++ {
		if attempt > 0 {
			rt.met.shardRetries.Inc()
			if err := retry.Sleep(ctx, rt.cfg.Retry.Delay(attempt, nil)); err != nil {
				return err
			}
		}
		rt.met.shardCalls.Inc()
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, resolve()+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		if reqKey != "" {
			req.Header.Set(HeaderRequestID, reqKey)
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			b.Failure()
			lastErr = err
			continue
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
		resp.Body.Close()
		if err != nil {
			b.Failure()
			lastErr = err
			continue
		}
		if resp.StatusCode/100 != 2 {
			lastErr = fmt.Errorf("shard %s %s: status %d: %s", shard, path, resp.StatusCode, bytes.TrimSpace(raw))
			if resp.StatusCode/100 == 4 {
				return lastErr // malformed request: retries will not heal it
			}
			b.Failure()
			continue
		}
		b.Success()
		if out != nil {
			if err := json.Unmarshal(raw, out); err != nil {
				lastErr = fmt.Errorf("shard %s %s: bad response: %v", shard, path, err)
				continue
			}
		}
		return nil
	}
	rt.met.shardErrors.Inc()
	return lastErr
}

// callShard calls the named shard, re-resolving its URL from the LIVE
// topology on every attempt (falling back to the caller's captured view):
// ownership is pinned by the captured topology, but the address behind a
// shard name can change mid-call when a standby is promoted, and the retry
// loop must follow it — that is how a request in flight across a failover
// replays against the promoted standby, where the replicated idempotency
// cache makes the replay exactly-once.
func (rt *Router) callShard(ctx context.Context, topo *Topology, shard, path, reqKey string, body []byte, out any) error {
	resolve := func() string {
		if base := rt.topology().ShardURL(shard); base != "" {
			return base
		}
		return topo.ShardURL(shard)
	}
	if resolve() == "" {
		return fmt.Errorf("no URL for shard %q in epoch %d", shard, topo.Epoch)
	}
	return rt.callURLResolved(ctx, shard, resolve, path, reqKey, body, out)
}

// pushTopology installs topo on each given shard, retrying each until
// success or ctx is done. Pushes are idempotent (shards accept re-pushes of
// the same epoch), so a failed multi-shard push can be re-driven.
func (rt *Router) pushTopology(ctx context.Context, topo *Topology, shards []ShardInfo) error {
	raw, err := json.Marshal(topo)
	if err != nil {
		return err
	}
	for _, s := range shards {
		var resp TopologyResponse
		if err := rt.callURL(ctx, s.Name, s.URL, PathShardTopology, "", raw, &resp); err != nil {
			return fmt.Errorf("pushing topology epoch %d to %s: %w", topo.Epoch, s.Name, err)
		}
	}
	return nil
}

// ---- NDJSON data plane --------------------------------------------------

// verdictLine answers one ingest line — the same JSON shape, field for
// field, as the single-process serving tier, because the E2E contract is a
// byte-identical response stream. The shared httpapi type keeps that shape
// in one place for both tiers and the wirejson fast encoder.
type verdictLine = httpapi.VerdictLine

// scoreLine answers one score line.
type scoreLine = httpapi.ScoreLine

// readBatch parses up to MaxBatch NDJSON point lines via the shared parser,
// with the same per-line and request-level error behavior as the
// single-process tier. Callers must Release the batch once the response is
// written.
func (rt *Router) readBatch(r *http.Request) (*httpapi.Batch, error) {
	if rt.cfg.LegacyWire {
		items, err := httpapi.ReadBatch(r, rt.cfg.MaxBatch)
		if err != nil {
			return nil, err
		}
		return &httpapi.Batch{Items: items}, nil
	}
	return httpapi.ReadBatchPooled(r, rt.cfg.MaxBatch)
}

func (rt *Router) writeBatchError(w http.ResponseWriter, r *http.Request, err error) {
	httpapi.WriteBatchError(w, r, err)
}

// writeError emits the serving tier's structured error shape, carrying the
// request correlation ID.
func (rt *Router) writeError(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	httpapi.WriteError(w, r, status, code, msg)
}

// admitTenant applies the per-tenant token bucket; a rejection writes the
// 429 and reports false.
func (rt *Router) admitTenant(w http.ResponseWriter, r *http.Request) bool {
	tenant := r.Header.Get(HeaderTenant)
	ok, wait := rt.limiter.allowRequest(tenant)
	if ok {
		return true
	}
	rt.met.rateLimited.Inc()
	w.Header().Set("Retry-After", strconv.Itoa(int((wait+time.Second-1)/time.Second)))
	rt.writeError(w, r, http.StatusTooManyRequests, "rate_limited",
		fmt.Sprintf("tenant %q over %g req/s", tenant, rt.cfg.TenantRPS))
	return false
}

func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	rt.met.ingestReqs.Inc()
	if !rt.admitTenant(w, r) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes)
	batch, err := rt.readBatch(r)
	if err != nil {
		rt.writeBatchError(w, r, err)
		return
	}
	defer batch.Release()
	items := batch.Items
	tenant := r.Header.Get(HeaderTenant)
	if ok, remaining := rt.limiter.chargeQuota(tenant, len(items)); !ok {
		rt.met.quotaDenied.Inc()
		rt.writeError(w, r, http.StatusTooManyRequests, "quota_exceeded",
			fmt.Sprintf("tenant %q has %d of its lifetime point quota left, batch needs %d",
				tenant, remaining, len(items)))
		return
	}
	reqID := r.Header.Get(HeaderRequestID)
	out := httpapi.GetVerdicts(len(items))
	defer httpapi.PutVerdicts(out)
	// One global mutation order: the whole batch runs under the router
	// mutex, exactly as the single-process window serializes Process calls.
	// The topology and arrival timestamp are resolved once per batch —
	// drain also holds rt.mu, so the topology cannot change mid-batch, and
	// the shared timestamp matches the single-process tier's
	// one-ProcessBatch-one-instant semantics.
	rt.mu.Lock()
	topo := rt.topology()
	now := rt.now()
	if rt.cfg.NoCoalesce {
		for i, it := range items {
			if it.Err != nil {
				out[i] = verdictLine{ID: it.Pt.ID, Error: it.Err.Error()}
				rt.met.lineErrors.Inc()
				continue
			}
			lineKey := fmt.Sprintf("%s|%d", reqID, i)
			v, err := rt.processLocked(r.Context(), topo, it.Pt, now, lineKey)
			rt.met.ingestLines.Inc()
			if err != nil {
				out[i] = verdictLine{ID: it.Pt.ID, Error: err.Error()}
				rt.met.lineErrors.Inc()
				continue
			}
			out[i] = v
		}
	} else {
		rt.ingestCoalescedLocked(r.Context(), topo, now, reqID, items, out)
	}
	rt.mu.Unlock()
	if rt.cfg.LegacyWire {
		writeNDJSON(w, len(out), func(enc *json.Encoder, i int) error { return enc.Encode(out[i]) })
		return
	}
	httpapi.WriteVerdicts(w, out)
}

// processLocked ingests one point with the single-process window's exact
// discipline — dimension check, duplicate check, capacity evictions, TTL
// evictions, then admission — each eviction and the admission delegated to
// the owning shard. Callers hold rt.mu and pass the batch's resolved
// topology; holding the mutex guarantees it stays current for the call.
func (rt *Router) processLocked(ctx context.Context, topo *Topology, pt geom.Point, now time.Time, lineKey string) (verdictLine, error) {
	if pt.Dim() != rt.cfg.Dim {
		return verdictLine{}, &errs.DimMismatchError{ID: pt.ID, Got: pt.Dim(), Want: rt.cfg.Dim}
	}
	if _, dup := rt.residents[pt.ID]; dup {
		return verdictLine{}, &errs.DuplicateIDError{ID: pt.ID}
	}
	evictions := 0
	if rt.cfg.Capacity > 0 {
		for len(rt.residents) >= rt.cfg.Capacity {
			evicted, err := rt.evictHeadLocked(ctx, topo, lineKey)
			if err != nil {
				return verdictLine{}, err
			}
			if evicted {
				evictions++
			}
		}
	}
	if rt.cfg.TTL > 0 {
		horizonNs := now.Add(-rt.cfg.TTL).UnixNano()
		for rt.head < len(rt.fifo) {
			id := rt.fifo[rt.head]
			res, ok := rt.residents[id]
			if ok && res.arrivedNs >= horizonNs {
				break
			}
			evicted, err := rt.evictHeadLocked(ctx, topo, lineKey)
			if err != nil {
				return verdictLine{}, err
			}
			if evicted {
				evictions++
			}
		}
	}
	cell := topo.CellOf(pt.Coords)
	owner := topo.Owner(cell)
	seq := rt.seq + 1
	body := EncodeIngest(IngestHeader{Seq: seq, ArrivedNs: now.UnixNano()}, pt)
	var resp IngestResponse
	if err := rt.callShard(ctx, topo, owner, PathShardIngest, lineKey+"|ingest", body, &resp); err != nil {
		return verdictLine{}, fmt.Errorf("shard %s unavailable: %v", owner, err)
	}
	if resp.Error != "" {
		return verdictLine{}, errors.New(resp.Error)
	}
	rt.seq = seq
	rt.fifo = append(rt.fifo, pt.ID)
	rt.residents[pt.ID] = resident{cell: cell, arrivedNs: now.UnixNano()}
	return verdictLine{ID: resp.ID, Seq: resp.Seq, Neighbors: resp.Neighbors, Outlier: resp.Outlier, Evicted: evictions}, nil
}

// evictHeadLocked expires the globally oldest point: the owning shard
// applies the eviction (and its cross-shard count deltas); the router
// retires the FIFO slot. It reports whether a live resident was actually
// evicted — a FIFO slot whose resident was purged by a forced drain is
// skipped for free and must not count toward the verdict's Evicted field.
// Callers hold rt.mu.
func (rt *Router) evictHeadLocked(ctx context.Context, topo *Topology, lineKey string) (bool, error) {
	id := rt.fifo[rt.head]
	res, ok := rt.residents[id]
	if !ok {
		// A ghost slot: its resident was dropped by a forced drain.
		rt.head++
		rt.reclaimFifoLocked()
		return false, nil
	}
	owner := topo.Owner(res.cell)
	body, err := json.Marshal(EvictRequest{ID: id})
	if err != nil {
		return false, err
	}
	var resp EvictResponse
	key := lineKey + "|evict|" + strconv.FormatUint(id, 10)
	if err := rt.callShard(ctx, topo, owner, PathShardEvict, key, body, &resp); err != nil {
		return false, fmt.Errorf("evicting %d from shard %s: %v", id, owner, err)
	}
	if resp.Error != "" {
		return false, fmt.Errorf("evicting %d from shard %s: %s", id, owner, resp.Error)
	}
	if !resp.Evicted {
		return false, fmt.Errorf("evicting %d: shard %s does not hold it (ownership drift)", id, owner)
	}
	rt.head++
	delete(rt.residents, id)
	rt.met.evictions.Inc()
	rt.reclaimFifoLocked()
	return true, nil
}

// reclaimFifoLocked drops the drained FIFO prefix once it dominates the
// backing array. Callers hold rt.mu.
func (rt *Router) reclaimFifoLocked() {
	if rt.head > 64 && rt.head*2 > len(rt.fifo) {
		rt.fifo = append([]uint64(nil), rt.fifo[rt.head:]...)
		rt.head = 0
	}
}

func (rt *Router) handleScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	rt.met.scoreReqs.Inc()
	if !rt.admitTenant(w, r) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes)
	batch, err := rt.readBatch(r)
	if err != nil {
		rt.writeBatchError(w, r, err)
		return
	}
	defer batch.Release()
	items := batch.Items
	out := httpapi.GetScores(len(items))
	defer httpapi.PutScores(out)
	// Scoring is read-only: fan the batch out in contiguous chunks. Each
	// chunk coalesces its probes into one support RPC per owning shard
	// (scoreChunk) unless NoCoalesce asks for the per-line protocol.
	const chunk = 64
	var wg sync.WaitGroup
	for lo := 0; lo < len(items); lo += chunk {
		hi := lo + chunk
		if hi > len(items) {
			hi = len(items)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			if !rt.cfg.NoCoalesce {
				rt.scoreChunk(r.Context(), items, lo, hi, out)
				return
			}
			for i := lo; i < hi; i++ {
				it := items[i]
				if it.Err != nil {
					out[i] = scoreLine{ID: it.Pt.ID, Error: it.Err.Error()}
					rt.met.lineErrors.Inc()
					continue
				}
				rt.met.scoreLines.Inc()
				out[i] = rt.scoreOne(r.Context(), it.Pt)
			}
		}(lo, hi)
	}
	wg.Wait()
	if rt.cfg.LegacyWire {
		writeNDJSON(w, len(out), func(enc *json.Encoder, i int) error { return enc.Encode(out[i]) })
		return
	}
	httpapi.WriteScores(w, out)
}

// scoreOne scores one probe point: its neighborhood cells are grouped by
// owner and each owning shard reports its capped neighbor count through a
// read-only support call; the capped sum equals the single-process count
// (min distributes over the partition). Shards whose breaker is open are
// skipped — scoring degrades to the reachable window rather than blocking.
func (rt *Router) scoreOne(ctx context.Context, pt geom.Point) scoreLine {
	if pt.Dim() != rt.cfg.Dim {
		err := &errs.DimMismatchError{ID: pt.ID, Got: pt.Dim(), Want: rt.cfg.Dim}
		rt.met.lineErrors.Inc()
		return scoreLine{ID: pt.ID, Error: err.Error()}
	}
	topo := rt.topology()
	center := topo.CellOf(pt.Coords)
	byOwner := map[string][][]int64{}
	for radius := 0; radius <= rt.l2; radius++ {
		index.RingCells(center, radius, func(c []int64) {
			cc := append([]int64(nil), c...)
			o := topo.Owner(cc)
			byOwner[o] = append(byOwner[o], cc)
		})
	}
	owners := make([]string, 0, len(byOwner))
	for o := range byOwner {
		owners = append(owners, o)
	}
	sort.Strings(owners)
	total := 0
	for _, o := range owners {
		if rt.breaker(o).State() == retry.BreakerOpen {
			continue // degraded: count what the healthy shards can see
		}
		body := EncodeSupport(SupportHeader{Delta: 0, Limit: rt.cfg.K}, pt, byOwner[o])
		var resp SupportResponse
		rt.met.supportRPCs.Inc()
		if err := rt.callShard(ctx, topo, o, PathSupport, "", body, &resp); err != nil {
			rt.met.lineErrors.Inc()
			return scoreLine{ID: pt.ID, Error: fmt.Sprintf("shard %s unavailable: %v", o, err)}
		}
		if resp.Error != "" {
			rt.met.lineErrors.Inc()
			return scoreLine{ID: pt.ID, Error: resp.Error}
		}
		total += resp.Count
		if total >= rt.cfg.K {
			break // already an inlier; min(total, K) is decided
		}
	}
	if total > rt.cfg.K {
		total = rt.cfg.K
	}
	return scoreLine{ID: pt.ID, Neighbors: total, Outlier: total < rt.cfg.K}
}

// writeNDJSON streams n lines through one buffered encoder.
func writeNDJSON(w http.ResponseWriter, n int, line func(enc *json.Encoder, i int) error) {
	httpapi.WriteNDJSON(w, n, line)
}

// ---- drain / handoff ----------------------------------------------------

// DrainResponse answers POST /v1/drain. LostEntries/LostCells are only
// non-zero on a ?force=1 drain of an unreachable shard: the window entries
// (and the distinct cells they occupied) that were dropped rather than
// moved — the blast radius of the forced removal, also counted under
// dod_route_forced_loss_total.
type DrainResponse struct {
	Drained     string `json:"drained"`
	Moved       int    `json:"moved"`
	Epoch       int64  `json:"epoch"`
	LostEntries int    `json:"lost_entries,omitempty"`
	LostCells   int    `json:"lost_cells,omitempty"`
}

// handleDrain gracefully removes a shard: its window slice is exported,
// ownership is re-rung without it (minimal movement: only its blocks
// relocate), the new topology is pushed to the survivors, and the exported
// entries are replayed to their new owners with their live neighbor counts
// intact. Runs under the router mutex, so the global mutation order is
// undisturbed and no verdict can observe a half-moved window.
//
// ?force=1 proceeds even if the departing shard cannot be reached; its
// entries are then lost (a failover, not a drain — counts on survivors are
// preserved, but verdict parity with a lossless reference ends).
func (rt *Router) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	name := r.URL.Query().Get("shard")
	force := r.URL.Query().Get("force") == "1"
	rt.mu.Lock()
	defer rt.mu.Unlock()
	topo := rt.topology()
	if topo.ShardURL(name) == "" {
		rt.writeError(w, r, http.StatusNotFound, "unknown_shard",
			fmt.Sprintf("shard %q is not in epoch %d", name, topo.Epoch))
		return
	}
	if len(topo.Shards) == 1 {
		rt.writeError(w, r, http.StatusBadRequest, "last_shard",
			"cannot drain the only shard in the topology")
		return
	}
	span := rt.trace.Start("drain").SetAttr(obs.Str("shard", name))
	defer span.End()

	// 1. Snapshot the departing shard's window slice.
	var entries []Entry
	lostEntries, lostCells := 0, 0
	exportURL := topo.ShardURL(name) + PathShardExport
	raw, err := rt.getBody(r.Context(), exportURL)
	if err == nil {
		entries, err = DecodeEntries(raw)
	}
	if err != nil {
		if !force {
			rt.writeError(w, r, http.StatusBadGateway, "export_failed",
				fmt.Sprintf("exporting shard %s: %v", name, err))
			return
		}
		rt.met.failovers.Inc()
		entries = nil
		// The departing shard's slice is gone. Purge its residents from the
		// router's window bookkeeping — their FIFO slots become ghosts that
		// evictHeadLocked skips — and report exactly what was dropped, so a
		// forced drain is an observable loss, never a silent one.
		cells := map[string]bool{}
		for id, res := range rt.residents {
			if topo.Owner(res.cell) != name {
				continue
			}
			cells[fmt.Sprint(res.cell)] = true
			delete(rt.residents, id)
			lostEntries++
		}
		lostCells = len(cells)
		rt.met.forcedLoss.Add(int64(lostEntries))
	}

	// 2. Re-ring without the departing shard and tell the survivors first,
	// so imported entries are never routed under the old view.
	next := topo.Without(name)
	if err := rt.pushTopology(r.Context(), next, next.Shards); err != nil {
		rt.writeError(w, r, http.StatusBadGateway, "topology_push_failed", err.Error())
		return
	}

	// 3. Replay the snapshot to each entry's new owner, counts verbatim.
	reqID := r.Header.Get(HeaderRequestID)
	byOwner := map[string][]Entry{}
	for _, e := range entries {
		o := next.Owner(next.CellOf(e.Point.Coords))
		byOwner[o] = append(byOwner[o], e)
	}
	owners := make([]string, 0, len(byOwner))
	for o := range byOwner {
		owners = append(owners, o)
	}
	sort.Strings(owners)
	moved := 0
	for _, o := range owners {
		body := EncodeEntries(byOwner[o])
		var resp ImportResponse
		if err := rt.callShard(r.Context(), next, o, PathShardImport, reqID+"|import|"+o, body, &resp); err != nil {
			rt.writeError(w, r, http.StatusBadGateway, "import_failed",
				fmt.Sprintf("importing %d entries to %s: %v", len(byOwner[o]), o, err))
			return
		}
		if resp.Error != "" {
			rt.writeError(w, r, http.StatusBadGateway, "import_failed",
				fmt.Sprintf("importing to %s: %s", o, resp.Error))
			return
		}
		moved += resp.Imported
	}

	// 4. Route under the new view from here on.
	rt.topoMu.Lock()
	rt.topo = next
	rt.topoMu.Unlock()
	rt.met.drains.Inc()
	span.SetAttr(obs.Int("moved", int64(moved)), obs.Int("epoch", next.Epoch),
		obs.Int("lost_entries", int64(lostEntries)), obs.Int("lost_cells", int64(lostCells)))
	rt.writeJSON(w, http.StatusOK, DrainResponse{
		Drained: name, Moved: moved, Epoch: next.Epoch,
		LostEntries: lostEntries, LostCells: lostCells,
	})
}

// getBody GETs a URL and returns its body, with bounded retries.
func (rt *Router) getBody(ctx context.Context, url string) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < rt.cfg.RetryAttempts; attempt++ {
		if attempt > 0 {
			rt.met.shardRetries.Inc()
			if err := retry.Sleep(ctx, rt.cfg.Retry.Delay(attempt, nil)); err != nil {
				return nil, err
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return nil, err
		}
		resp, err := rt.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode/100 != 2 {
			lastErr = fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
			continue
		}
		return raw, nil
	}
	return nil, lastErr
}

// ---- introspection ------------------------------------------------------

func (rt *Router) handleTopology(w http.ResponseWriter, r *http.Request) {
	rt.writeJSON(w, http.StatusOK, rt.topology())
}

// handleSnapshot aggregates every shard's export into one seq-ordered view
// of the global window (debugging and the E2E harness; O(window) transfer).
func (rt *Router) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	topo := rt.topology()
	var all []Entry
	for _, s := range topo.Shards {
		raw, err := rt.getBody(r.Context(), s.URL+PathShardExport)
		if err != nil {
			rt.writeError(w, r, http.StatusBadGateway, "export_failed",
				fmt.Sprintf("exporting shard %s: %v", s.Name, err))
			return
		}
		entries, err := DecodeEntries(raw)
		if err != nil {
			rt.writeError(w, r, http.StatusBadGateway, "export_failed",
				fmt.Sprintf("decoding export from %s: %v", s.Name, err))
			return
		}
		all = append(all, entries...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })
	type snapPoint struct {
		ID        uint64 `json:"id"`
		Seq       uint64 `json:"seq"`
		Neighbors int    `json:"neighbors"`
		Outlier   bool   `json:"outlier"`
	}
	out := struct {
		Epoch  int64       `json:"epoch"`
		Window int         `json:"window_len"`
		Points []snapPoint `json:"points"`
	}{Epoch: topo.Epoch, Window: len(all), Points: make([]snapPoint, len(all))}
	for i, e := range all {
		out.Points[i] = snapPoint{ID: e.Point.ID, Seq: e.Seq, Neighbors: e.Count, Outlier: e.Outlier}
	}
	rt.writeJSON(w, http.StatusOK, out)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	window := len(rt.residents)
	rt.mu.Unlock()
	rt.writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"window": window,
		"epoch":  rt.topology().Epoch,
	})
}

func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	ready := rt.ready.Load() && !rt.draining.Load()
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	rt.writeJSON(w, status, map[string]any{
		"ready":    ready,
		"draining": rt.draining.Load(),
	})
}

func (rt *Router) handleStatsz(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	window := len(rt.residents)
	seq := rt.seq
	rt.mu.Unlock()
	topo := rt.topology()
	type shardHealth struct {
		Name        string `json:"name"`
		URL         string `json:"url"`
		Standby     string `json:"standby,omitempty"`
		Breaker     string `json:"breaker"`
		ReplicaHead uint64 `json:"replica_head,omitempty"`
	}
	shards := make([]shardHealth, len(topo.Shards))
	for i, s := range topo.Shards {
		shards[i] = shardHealth{
			Name: s.Name, URL: s.URL, Standby: s.Standby,
			Breaker:     rt.breaker(s.Name).State().String(),
			ReplicaHead: rt.lastReplicaHead(s.Name),
		}
	}
	rt.writeJSON(w, http.StatusOK, map[string]any{
		"uptime_seconds":  rt.now().Sub(rt.started).Seconds(),
		"window_len":      window,
		"window_seq":      seq,
		"epoch":           topo.Epoch,
		"ingest_requests": rt.met.ingestReqs.Value(),
		"score_requests":  rt.met.scoreReqs.Value(),
		"lines_ingested":  rt.met.ingestLines.Value(),
		"lines_scored":    rt.met.scoreLines.Value(),
		"line_errors":     rt.met.lineErrors.Value(),
		"evictions":       rt.met.evictions.Value(),
		"drains":          rt.met.drains.Value(),
		"promotes":        rt.met.promotes.Value(),
		"replica_lost":    rt.met.replicaLost.Value(),
		"forced_loss":     rt.met.forcedLoss.Value(),
		"rate_limited":    rt.met.rateLimited.Value(),
		"shards":          shards,
	})
}

func (rt *Router) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck
}
