package router

import (
	"encoding/binary"
	"encoding/json"

	"dod/internal/codec"
	"dod/internal/geom"
)

// Shard wire protocol. Mutating data-plane bodies (ingest, support,
// import) and the export stream are sequences of internal/codec frames —
// a JSON header frame for control metadata, binary frames for points,
// cell lists and window entries — sealed with a codec.FrameSum integrity
// frame, exactly like the distributed runtime's task bodies: transport
// corruption anywhere in a body is a typed decode failure the caller
// retries, never a silently wrong neighbor count. Responses and pure
// control calls (evict, topology) are small JSON.
const (
	frameHeader byte = 1 // JSON control header
	framePoint  byte = 2 // one codec point record
	frameCells  byte = 3 // cell coordinate list
	frameEntry  byte = 4 // one window entry (point + seq + arrival + count + verdict)
)

// Shard-side endpoints. The router (and, for /v1/support, peer shards)
// are the only intended callers.
const (
	PathShardIngest   = "/v1/shard/ingest"
	PathShardEvict    = "/v1/shard/evict"
	PathSupport       = "/v1/support"
	PathShardExport   = "/v1/shard/export"
	PathShardImport   = "/v1/shard/import"
	PathShardTopology = "/v1/shard/topology"
)

// IngestHeader is the control header of a shard ingest body: the global
// sequence number assigned by the router and the arrival timestamp that
// drives TTL eviction.
type IngestHeader struct {
	Seq       uint64 `json:"seq"`
	ArrivedNs int64  `json:"arrivedNs"`
}

// IngestResponse answers a shard ingest.
type IngestResponse struct {
	ID        uint64 `json:"id"`
	Seq       uint64 `json:"seq"`
	Neighbors int    `json:"neighbors"`
	Outlier   bool   `json:"outlier"`
	Error     string `json:"error,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

// SupportHeader is the control header of a boundary-support body. Delta
// +1/-1 applies an arrival/eviction neighbor-count delta to the matched
// points (Lemma 3.1: the owning shard's counts are sufficient — no point
// data crosses the wire, only counts); delta 0 is a read-only count for
// scoring, early-terminated at Limit.
type SupportHeader struct {
	Delta int `json:"delta"`
	Limit int `json:"limit,omitempty"`
}

// SupportResponse answers a support call with the neighbor count found in
// the requested cells. Multi-probe bodies (EncodeSupportBatch) are answered
// with one count per probe in Counts, probe order, alongside the summed
// Count.
type SupportResponse struct {
	Count     int    `json:"count"`
	Counts    []int  `json:"counts,omitempty"`
	Error     string `json:"error,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

// EvictRequest asks a shard to expire one resident point by ID.
type EvictRequest struct {
	ID uint64 `json:"id"`
}

// EvictResponse answers an evict call.
type EvictResponse struct {
	Evicted   bool   `json:"evicted"`
	Error     string `json:"error,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

// TopologyResponse acknowledges a topology push.
type TopologyResponse struct {
	Epoch  int64  `json:"epoch"`
	Shard  string `json:"shard"`
	Points int    `json:"points"`
}

// ImportResponse acknowledges an entry import.
type ImportResponse struct {
	Imported  int    `json:"imported"`
	Error     string `json:"error,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

// Entry is one resident window entry on the wire — everything a successor
// shard needs to adopt the point during drain/handoff. Neighbor counts
// move verbatim: ownership names where a point is stored, not who its
// neighbors are, so relocation never changes any count.
type Entry struct {
	Point     geom.Point
	Seq       uint64
	ArrivedNs int64
	Count     int
	Outlier   bool
}

// appendJSONHeader appends a frameHeader frame carrying v as JSON.
func appendJSONHeader(dst []byte, v any) []byte {
	payload, err := json.Marshal(v)
	if err != nil {
		// All header types marshal; a failure is a programming error.
		panic("router: marshal wire header: " + err.Error())
	}
	return codec.AppendFrame(dst, frameHeader, payload)
}

// appendCells appends a frameCells frame: uvarint dim, uvarint count, then
// count×dim varint cell coordinates.
func appendCells(dst []byte, dim int, cells [][]int64) []byte {
	payload := binary.AppendUvarint(nil, uint64(dim))
	payload = binary.AppendUvarint(payload, uint64(len(cells)))
	for _, c := range cells {
		for _, v := range c {
			payload = binary.AppendVarint(payload, v)
		}
	}
	return codec.AppendFrame(dst, frameCells, payload)
}

// decodeCells parses a frameCells payload.
func decodeCells(payload []byte) ([][]int64, error) {
	dim, n := binary.Uvarint(payload)
	if n <= 0 || dim == 0 || dim > 1<<16 {
		return nil, codec.WireErrorf("router: bad cell frame dimension")
	}
	off := n
	count, n := binary.Uvarint(payload[off:])
	if n <= 0 {
		return nil, codec.WireErrorf("router: truncated cell frame")
	}
	off += n
	if count > uint64(len(payload[off:])) {
		return nil, codec.WireErrorf("router: cell count %d exceeds buffer", count)
	}
	cells := make([][]int64, 0, count)
	for i := uint64(0); i < count; i++ {
		c := make([]int64, dim)
		for d := range c {
			v, n := binary.Varint(payload[off:])
			if n <= 0 {
				return nil, codec.WireErrorf("router: truncated cell coordinate")
			}
			c[d] = v
			off += n
		}
		cells = append(cells, c)
	}
	return cells, nil
}

// EncodeIngest builds a sealed shard-ingest body.
func EncodeIngest(hdr IngestHeader, p geom.Point) []byte {
	body := appendJSONHeader(nil, hdr)
	body = codec.AppendFrame(body, framePoint, codec.AppendPoint(nil, p))
	return codec.AppendSumFrame(body)
}

// DecodeIngest parses a sealed shard-ingest body.
func DecodeIngest(body []byte) (IngestHeader, geom.Point, error) {
	var hdr IngestHeader
	var pt geom.Point
	frames, err := decodeSealed(body)
	if err != nil {
		return hdr, pt, err
	}
	if err := frames.header(&hdr); err != nil {
		return hdr, pt, err
	}
	raw, ok := frames.first(framePoint)
	if !ok {
		return hdr, pt, codec.WireErrorf("router: ingest body lacks point frame")
	}
	pt, _, err = codec.DecodePoint(raw)
	return hdr, pt, err
}

// EncodeSupport builds a sealed boundary-support body: the probe point and
// the foreign cells the caller's ring expansion reached.
func EncodeSupport(hdr SupportHeader, p geom.Point, cells [][]int64) []byte {
	body := appendJSONHeader(nil, hdr)
	body = codec.AppendFrame(body, framePoint, codec.AppendPoint(nil, p))
	body = appendCells(body, p.Dim(), cells)
	return codec.AppendSumFrame(body)
}

// DecodeSupport parses a sealed boundary-support body.
func DecodeSupport(body []byte) (SupportHeader, geom.Point, [][]int64, error) {
	var hdr SupportHeader
	frames, err := decodeSealed(body)
	if err != nil {
		return hdr, geom.Point{}, nil, err
	}
	if err := frames.header(&hdr); err != nil {
		return hdr, geom.Point{}, nil, err
	}
	raw, ok := frames.first(framePoint)
	if !ok {
		return hdr, geom.Point{}, nil, codec.WireErrorf("router: support body lacks point frame")
	}
	pt, _, err := codec.DecodePoint(raw)
	if err != nil {
		return hdr, geom.Point{}, nil, err
	}
	rawCells, ok := frames.first(frameCells)
	if !ok {
		return hdr, geom.Point{}, nil, codec.WireErrorf("router: support body lacks cells frame")
	}
	cells, err := decodeCells(rawCells)
	if err != nil {
		return hdr, geom.Point{}, nil, err
	}
	return hdr, pt, cells, nil
}

// appendEntry appends one frameEntry frame.
func appendEntry(dst []byte, e Entry) []byte {
	payload := codec.AppendPoint(nil, e.Point)
	payload = binary.AppendUvarint(payload, e.Seq)
	payload = binary.AppendVarint(payload, e.ArrivedNs)
	payload = binary.AppendUvarint(payload, uint64(e.Count))
	if e.Outlier {
		payload = append(payload, 1)
	} else {
		payload = append(payload, 0)
	}
	return codec.AppendFrame(dst, frameEntry, payload)
}

// decodeEntry parses one frameEntry payload.
func decodeEntry(payload []byte) (Entry, error) {
	var e Entry
	pt, n, err := codec.DecodePoint(payload)
	if err != nil {
		return e, err
	}
	e.Point = pt
	off := n
	seq, n := binary.Uvarint(payload[off:])
	if n <= 0 {
		return e, codec.WireErrorf("router: truncated entry seq")
	}
	off += n
	e.Seq = seq
	arrived, n := binary.Varint(payload[off:])
	if n <= 0 {
		return e, codec.WireErrorf("router: truncated entry arrival")
	}
	off += n
	e.ArrivedNs = arrived
	count, n := binary.Uvarint(payload[off:])
	if n <= 0 {
		return e, codec.WireErrorf("router: truncated entry count")
	}
	off += n
	e.Count = int(count)
	if off >= len(payload) {
		return e, codec.WireErrorf("router: truncated entry verdict")
	}
	e.Outlier = payload[off] == 1
	return e, nil
}

// EncodeEntries builds a sealed entry-transfer body (export response /
// import request).
func EncodeEntries(entries []Entry) []byte {
	body := appendJSONHeader(nil, struct {
		Count int `json:"count"`
	}{len(entries)})
	for _, e := range entries {
		body = appendEntry(body, e)
	}
	return codec.AppendSumFrame(body)
}

// DecodeEntries parses a sealed entry-transfer body.
func DecodeEntries(body []byte) ([]Entry, error) {
	frames, err := decodeSealed(body)
	if err != nil {
		return nil, err
	}
	var hdr struct {
		Count int `json:"count"`
	}
	if err := frames.header(&hdr); err != nil {
		return nil, err
	}
	entries := make([]Entry, 0, len(frames.entries))
	for _, raw := range frames.entries {
		e, err := decodeEntry(raw)
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	if len(entries) != hdr.Count {
		return nil, codec.WireErrorf("router: entry count %d != header %d", len(entries), hdr.Count)
	}
	return entries, nil
}

// wireFrames is a parsed, integrity-checked frame body.
type wireFrames struct {
	headerRaw []byte
	points    [][]byte
	cells     [][]byte
	entries   [][]byte
	admits    [][]byte
}

// decodeSealed strips the integrity frame and sorts the remaining frames
// by kind.
func decodeSealed(body []byte) (*wireFrames, error) {
	data, err := codec.StripSumFrame(body)
	if err != nil {
		return nil, err
	}
	f := &wireFrames{}
	off := 0
	for off < len(data) {
		kind, payload, n, err := codec.DecodeFrame(data[off:])
		if err != nil {
			return nil, err
		}
		off += n
		switch kind {
		case frameHeader:
			f.headerRaw = payload
		case framePoint:
			f.points = append(f.points, payload)
		case frameCells:
			f.cells = append(f.cells, payload)
		case frameEntry:
			f.entries = append(f.entries, payload)
		case frameAdmit:
			f.admits = append(f.admits, payload)
		default:
			return nil, codec.WireErrorf("router: unknown frame kind %d", kind)
		}
	}
	return f, nil
}

// header unmarshals the JSON header frame into v.
func (f *wireFrames) header(v any) error {
	if f.headerRaw == nil {
		return codec.WireErrorf("router: body lacks header frame")
	}
	if err := json.Unmarshal(f.headerRaw, v); err != nil {
		return codec.WireErrorf("router: bad header frame: %v", err)
	}
	return nil
}

// first returns the first frame payload of the given kind.
func (f *wireFrames) first(kind byte) ([]byte, bool) {
	switch kind {
	case framePoint:
		if len(f.points) > 0 {
			return f.points[0], true
		}
	case frameCells:
		if len(f.cells) > 0 {
			return f.cells[0], true
		}
	}
	return nil, false
}
