package router

import "dod/internal/obs"

// routerMetrics are the dod_route_* instruments: the router's own request
// traffic, its shard call fan-out (with retry visibility — the first sign
// of a struggling shard), eviction/drain churn, and tenant-level
// rejections.
type routerMetrics struct {
	ingestReqs   *obs.Counter
	scoreReqs    *obs.Counter
	ingestLines  *obs.Counter
	scoreLines   *obs.Counter
	lineErrors   *obs.Counter
	evictions    *obs.Counter
	drains       *obs.Counter
	rateLimited  *obs.Counter
	quotaDenied  *obs.Counter
	shardCalls   *obs.Counter
	shardRetries *obs.Counter
	shardErrors  *obs.Counter
	supportRPCs  *obs.Counter
	probeFails   *obs.Counter
	failovers    *obs.Counter
	promotes     *obs.Counter
	replicaLost  *obs.Counter
	forcedLoss   *obs.Counter
}

func newRouterMetrics(reg *obs.Registry) *routerMetrics {
	return &routerMetrics{
		ingestReqs:   reg.Counter("dod_route_requests_total", "router batch requests", obs.L("endpoint", "ingest")),
		scoreReqs:    reg.Counter("dod_route_requests_total", "router batch requests", obs.L("endpoint", "score")),
		ingestLines:  reg.Counter("dod_route_lines_total", "NDJSON lines routed", obs.L("endpoint", "ingest")),
		scoreLines:   reg.Counter("dod_route_lines_total", "NDJSON lines routed", obs.L("endpoint", "score")),
		lineErrors:   reg.Counter("dod_route_line_errors_total", "lines answered with a per-line error"),
		evictions:    reg.Counter("dod_route_evictions_total", "evictions commanded across shards"),
		drains:       reg.Counter("dod_route_drains_total", "shard drain/handoff operations completed"),
		rateLimited:  reg.Counter("dod_route_rate_limited_total", "requests shed by the per-tenant token bucket"),
		quotaDenied:  reg.Counter("dod_route_quota_denied_total", "ingest batches denied by a tenant lifetime quota"),
		shardCalls:   reg.Counter("dod_route_shard_calls_total", "HTTP calls issued to shards"),
		shardRetries: reg.Counter("dod_route_shard_retries_total", "shard calls that needed a retry"),
		shardErrors:  reg.Counter("dod_route_shard_errors_total", "shard calls that exhausted retries"),
		supportRPCs:  reg.Counter("dod_support_rpc_total", "boundary support round trips issued over the wire"),
		probeFails:   reg.Counter("dod_route_probe_failures_total", "failed shard health probes"),
		failovers:    reg.Counter("dod_route_failovers_total", "automatic drain-on-unhealthy failovers"),
		promotes:     reg.Counter("dod_promote_total", "standby promotions committed"),
		replicaLost:  reg.Counter("dod_replica_lost_total", "ops known lost to replication lag at promotion decisions"),
		forcedLoss:   reg.Counter("dod_route_forced_loss_total", "window entries dropped by forced drains"),
	}
}
