package router

import (
	"encoding/json"
	"math"
	"testing"

	"dod/internal/geom"
	"dod/internal/index"
)

func testTopology(shards ...string) *Topology {
	t := &Topology{Epoch: 1, Dim: 2, R: 5, K: 4, Block: 4, Vnodes: 32}
	for _, s := range shards {
		t.Shards = append(t.Shards, ShardInfo{Name: s, URL: "http://" + s})
	}
	return t
}

// Ownership must be a pure function of the marshaled topology: two
// processes that exchange the JSON form agree on every cell, and epoch or
// URL changes don't move blocks.
func TestTopologyOwnerDeterministic(t *testing.T) {
	topo := testTopology("a", "b", "c")
	raw, err := json.Marshal(topo)
	if err != nil {
		t.Fatal(err)
	}
	var remote Topology
	if err := json.Unmarshal(raw, &remote); err != nil {
		t.Fatal(err)
	}
	for x := int64(-50); x <= 50; x += 3 {
		for y := int64(-50); y <= 50; y += 3 {
			cell := []int64{x, y}
			if got, want := remote.Owner(cell), topo.Owner(cell); got != want {
				t.Fatalf("cell %v: remote owner %q != local %q", cell, got, want)
			}
		}
	}
}

// Cells in the same block share an owner — the invariant that keeps ring
// expansion shard-local for interior cells.
func TestTopologyBlockLocality(t *testing.T) {
	topo := testTopology("a", "b", "c", "d")
	for bx := int64(-4); bx < 4; bx++ {
		for by := int64(-4); by < 4; by++ {
			base := topo.Owner([]int64{bx * int64(topo.Block), by * int64(topo.Block)})
			for dx := int64(0); dx < int64(topo.Block); dx++ {
				for dy := int64(0); dy < int64(topo.Block); dy++ {
					cell := []int64{bx*int64(topo.Block) + dx, by*int64(topo.Block) + dy}
					if got := topo.Owner(cell); got != base {
						t.Fatalf("cell %v owned by %q, block corner by %q", cell, got, base)
					}
				}
			}
		}
	}
}

// Removing one shard must not move blocks between surviving shards —
// the consistent-hashing property that makes drain/handoff touch only the
// departing shard's points.
func TestTopologyWithoutIsMinimal(t *testing.T) {
	topo := testTopology("a", "b", "c", "d")
	after := topo.Without("c")
	if after.Epoch != topo.Epoch+1 {
		t.Fatalf("Without epoch = %d, want %d", after.Epoch, topo.Epoch+1)
	}
	moved, kept := 0, 0
	for x := int64(-200); x <= 200; x += 7 {
		for y := int64(-200); y <= 200; y += 7 {
			cell := []int64{x, y}
			before := topo.Owner(cell)
			now := after.Owner(cell)
			if before == "c" {
				if now == "c" {
					t.Fatalf("cell %v still owned by removed shard", cell)
				}
				moved++
				continue
			}
			if now != before {
				t.Fatalf("cell %v moved %q -> %q though %q was not removed", cell, before, now, before)
			}
			kept++
		}
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

// The distribution across shards should be roughly balanced (vnodes do the
// smoothing); a catastrophically skewed ring would defeat sharding.
func TestTopologyBalance(t *testing.T) {
	topo := testTopology("a", "b", "c", "d")
	counts := map[string]int{}
	total := 0
	for x := int64(-300); x <= 300; x += int64(topo.Block) {
		for y := int64(-300); y <= 300; y += int64(topo.Block) {
			counts[topo.Owner([]int64{x, y})]++
			total++
		}
	}
	for name, n := range counts {
		frac := float64(n) / float64(total)
		if frac < 0.05 {
			t.Errorf("shard %q owns %.1f%% of blocks — ring badly skewed", name, frac*100)
		}
	}
}

// CellOf must agree bit-for-bit with the incremental index's cell layout;
// a disagreement would route a point to a shard that files it in a
// different cell than the topology thinks it owns.
func TestCellOfMatchesIndex(t *testing.T) {
	topo := &Topology{Dim: 2, R: 5, Shards: []ShardInfo{{Name: "a"}}}
	ix, err := index.New(index.Config{Dim: 2, R: 5})
	if err != nil {
		t.Fatal(err)
	}
	pts := [][]float64{
		{0, 0}, {-0.0001, 0.0001}, {17.3, -42.8}, {1e9, -1e9},
		{math.Pi, -math.E}, {-5, 5}, {2.5, 2.5},
	}
	for i, coords := range pts {
		p := geom.Point{ID: uint64(i), Coords: coords}
		got := topo.CellOf(coords)
		want := ix.CellCoords(p)
		for d := range got {
			if got[d] != want[d] {
				t.Fatalf("point %v: topology cell %v != index cell %v", coords, got, want)
			}
		}
	}
}

func TestWireRoundTrips(t *testing.T) {
	p := geom.Point{ID: 42, Coords: []float64{1.5, -2.25}}

	ib := EncodeIngest(IngestHeader{Seq: 7, ArrivedNs: 123456}, p)
	hdr, gotP, err := DecodeIngest(ib)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Seq != 7 || hdr.ArrivedNs != 123456 || !gotP.Equal(p) {
		t.Fatalf("ingest round-trip mismatch: %+v %v", hdr, gotP)
	}

	cells := [][]int64{{-3, 4}, {0, 0}, {9223372036854775807, -9223372036854775808}}
	sb := EncodeSupport(SupportHeader{Delta: -1, Limit: 5}, p, cells)
	shdr, sp, gotCells, err := DecodeSupport(sb)
	if err != nil {
		t.Fatal(err)
	}
	if shdr.Delta != -1 || shdr.Limit != 5 || !sp.Equal(p) || len(gotCells) != len(cells) {
		t.Fatalf("support round-trip mismatch: %+v %v %v", shdr, sp, gotCells)
	}
	for i := range cells {
		for d := range cells[i] {
			if gotCells[i][d] != cells[i][d] {
				t.Fatalf("cell %d mismatch: %v != %v", i, gotCells[i], cells[i])
			}
		}
	}

	entries := []Entry{
		{Point: p, Seq: 3, ArrivedNs: -12, Count: 9, Outlier: true},
		{Point: geom.Point{ID: 1, Coords: []float64{0, 0}}, Seq: 4, Count: 0, Outlier: false},
	}
	eb := EncodeEntries(entries)
	got, err := DecodeEntries(eb)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("entries round-trip: %d != %d", len(got), len(entries))
	}
	for i := range entries {
		if !got[i].Point.Equal(entries[i].Point) || got[i].Seq != entries[i].Seq ||
			got[i].ArrivedNs != entries[i].ArrivedNs || got[i].Count != entries[i].Count ||
			got[i].Outlier != entries[i].Outlier {
			t.Fatalf("entry %d mismatch: %+v != %+v", i, got[i], entries[i])
		}
	}

	// Corruption anywhere in a sealed body must be a typed failure.
	for off := 0; off < len(sb); off++ {
		mut := append([]byte(nil), sb...)
		mut[off] ^= 0x40
		if _, _, _, err := DecodeSupport(mut); err == nil {
			t.Fatalf("corrupted byte %d decoded cleanly", off)
		}
	}
}
