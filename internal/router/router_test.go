package router_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"dod/internal/retry"
	"dod/internal/router"
	"dod/internal/serve"
	"dod/internal/stream"
)

// cluster is a full in-process sharded tier: N shard servers behind real
// HTTP listeners and a router in front, plus a single-process reference
// server fed the identical stream. The E2E contract under test: the two
// /v1/ingest and /v1/score NDJSON response streams are byte-identical.
type cluster struct {
	t      *testing.T
	rt     *router.Router
	rtSrv  *httptest.Server
	shards map[string]*serve.ShardServer
	srvs   map[string]*httptest.Server
	// stbys/stbySrvs hold the warm standbys of clusterOpts.standbys shards;
	// adoptStandby moves one into shards/srvs after its promotion.
	stbys    map[string]*serve.ShardServer
	stbySrvs map[string]*httptest.Server
	ref      *serve.Server
	refSrv   *httptest.Server
}

type clusterOpts struct {
	shards     int
	capacity   int
	block      int
	routerOpts func(*router.Config)
	// shardTransport, when set, supplies each shard's peer-call transport
	// (the chaos tests wrap fault injection here, keyed by shard name).
	shardTransport func(name string) http.RoundTripper
	// standbys lists shard names that get a warm standby: a -standby twin
	// behind its own listener, with the primary replicating to it.
	standbys []string
	// replicaTransport, when set, supplies each primary's replication-hop
	// transport (the failover chaos tests inject faults here).
	replicaTransport func(name string) http.RoundTripper
}

const (
	testR   = 1.2
	testK   = 3
	testDim = 2
)

func newCluster(t *testing.T, o clusterOpts) *cluster {
	t.Helper()
	c := &cluster{
		t: t, shards: map[string]*serve.ShardServer{}, srvs: map[string]*httptest.Server{},
		stbys: map[string]*serve.ShardServer{}, stbySrvs: map[string]*httptest.Server{},
	}
	standby := map[string]bool{}
	for _, name := range o.standbys {
		standby[name] = true
	}
	var infos []router.ShardInfo
	for i := 0; i < o.shards; i++ {
		name := fmt.Sprintf("s%d", i)
		scfg := serve.ShardServerConfig{
			Name: name, R: testR, K: testK, Dim: testDim,
			Retry: retry.Policy{Base: time.Millisecond},
		}
		if o.shardTransport != nil {
			scfg.Transport = o.shardTransport(name)
		}
		info := router.ShardInfo{Name: name}
		if standby[name] {
			// The standby exists before its primary: the primary's shipper
			// dials it from the first appended op.
			sb, err := serve.NewShard(serve.ShardServerConfig{
				Name: name, R: testR, K: testK, Dim: testDim,
				Retry:   retry.Policy{Base: time.Millisecond},
				Standby: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(sb.Close)
			sbSrv := httptest.NewServer(sb.Handler())
			t.Cleanup(sbSrv.Close)
			c.stbys[name] = sb
			c.stbySrvs[name] = sbSrv
			scfg.Replica = sbSrv.URL
			scfg.ReplicaInterval = 2 * time.Millisecond
			if o.replicaTransport != nil {
				scfg.ReplicaTransport = o.replicaTransport(name)
			}
			info.Standby = sbSrv.URL
		}
		ss, err := serve.NewShard(scfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ss.Close)
		hs := httptest.NewServer(ss.Handler())
		t.Cleanup(hs.Close)
		c.shards[name] = ss
		c.srvs[name] = hs
		info.URL = hs.URL
		infos = append(infos, info)
	}
	cfg := router.Config{
		R: testR, K: testK, Dim: testDim,
		Capacity: o.capacity,
		Shards:   infos,
		Block:    o.block,
		Retry:    retry.Policy{Base: time.Millisecond},
	}
	if o.routerOpts != nil {
		o.routerOpts(&cfg)
	}
	rt, err := router.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	c.rt = rt
	c.rtSrv = httptest.NewServer(rt.Handler())
	t.Cleanup(c.rtSrv.Close)

	ref, err := serve.New(serve.Config{Stream: stream.Config{
		R: testR, K: testK, Dim: testDim, Capacity: o.capacity,
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ref.Close)
	c.ref = ref
	c.refSrv = httptest.NewServer(ref.Handler())
	t.Cleanup(c.refSrv.Close)
	return c
}

// post sends an NDJSON body and returns (status, raw response body).
func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

// both sends the same body to the router and the reference and asserts the
// responses match byte for byte.
func (c *cluster) both(path, body, label string) {
	c.t.Helper()
	refStatus, refRaw := post(c.t, c.refSrv.URL+path, body)
	gotStatus, gotRaw := post(c.t, c.rtSrv.URL+path, body)
	if gotStatus != refStatus {
		c.t.Fatalf("%s %s: status %d != reference %d\nrouter: %s\nref: %s",
			label, path, gotStatus, refStatus, gotRaw, refRaw)
	}
	if !bytes.Equal(gotRaw, refRaw) {
		c.t.Fatalf("%s %s: response diverged\nrouter: %s\nreference: %s", label, path, gotRaw, refRaw)
	}
}

// streamBatches drives an identical randomized workload through both
// systems: ingest batches with occasional malformed lines, duplicate IDs
// and wrong-dimension points (error paths must match too), interleaved
// with read-only score batches. IDs start at idBase so successive calls
// never collide.
func (c *cluster) streamBatches(rng *rand.Rand, idBase uint64, batches, perBatch int) uint64 {
	c.t.Helper()
	id := idBase
	for b := 0; b < batches; b++ {
		var sb strings.Builder
		for i := 0; i < perBatch; i++ {
			switch {
			case rng.Float64() < 0.03:
				sb.WriteString("{malformed\n")
			case rng.Float64() < 0.03 && id > idBase+10:
				// Re-ingest a recent ID: a duplicate while it is resident,
				// a clean admission if it has been evicted — either way both
				// systems must answer identically.
				dup := id - uint64(rng.Intn(10)) - 1
				fmt.Fprintf(&sb, `{"id":%d,"coords":[%g,%g]}`+"\n", dup, rng.Float64()*12, rng.Float64()*12)
			case rng.Float64() < 0.02:
				id++
				fmt.Fprintf(&sb, `{"id":%d,"coords":[%g,%g,%g]}`+"\n", id, rng.Float64(), rng.Float64(), rng.Float64())
			default:
				id++
				fmt.Fprintf(&sb, `{"id":%d,"coords":[%g,%g]}`+"\n", id, rng.Float64()*12, rng.Float64()*12)
			}
		}
		c.both("/v1/ingest", sb.String(), fmt.Sprintf("batch %d", b))
		if b%3 == 2 {
			var sc strings.Builder
			for i := 0; i < 8; i++ {
				fmt.Fprintf(&sc, `{"id":%d,"coords":[%g,%g]}`+"\n", 1_000_000+uint64(i), rng.Float64()*12, rng.Float64()*12)
			}
			c.both("/v1/score", sc.String(), fmt.Sprintf("score after batch %d", b))
		}
	}
	return id
}

// checkFinalState compares the aggregated shard window against the
// reference: identical outlier sets and identical verdict-flip totals
// (evictions must have flipped the same points on both sides).
func (c *cluster) checkFinalState() {
	c.t.Helper()
	snap := c.ref.Window().Snapshot()
	wantOutliers := map[uint64]bool{}
	for _, id := range snap.OutlierIDs {
		wantOutliers[id] = true
	}
	topo := c.rt.Topology()
	gotOutliers := map[uint64]bool{}
	total := 0
	for _, si := range topo.Shards {
		ss := c.shards[si.Name]
		for _, e := range ss.Window().Export() {
			total++
			if e.Outlier {
				gotOutliers[e.Point.ID] = true
			}
		}
	}
	// Flip counters are monotone and stay with the shard that owned the
	// flipped resident at event time, so the global total sums over every
	// shard that ever served — including drained ones.
	var flipIn, flipOut uint64
	for _, ss := range c.shards {
		st := ss.Window().Stats()
		flipIn += st.FlipIn
		flipOut += st.FlipOut
	}
	if total != len(snap.Points) {
		c.t.Fatalf("window size: sharded %d != reference %d", total, len(snap.Points))
	}
	if len(gotOutliers) != len(wantOutliers) {
		c.t.Fatalf("outlier sets differ: sharded %d != reference %d", len(gotOutliers), len(wantOutliers))
	}
	for id := range wantOutliers {
		if !gotOutliers[id] {
			c.t.Fatalf("reference outlier %d is an inlier on the shards", id)
		}
	}
	refStats := c.ref.Window().Stats()
	if flipIn != refStats.FlipIn || flipOut != refStats.FlipOut {
		c.t.Fatalf("verdict flips: sharded (%d,%d) != reference (%d,%d)",
			flipIn, flipOut, refStats.FlipIn, refStats.FlipOut)
	}
}

// drain gracefully removes a shard through the router and then kills its
// HTTP listener, as a deploy would.
func (c *cluster) drain(name string) {
	c.t.Helper()
	resp, err := http.Post(c.rtSrv.URL+"/v1/drain?shard="+name, "", nil)
	if err != nil {
		c.t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		c.t.Fatalf("drain %s: status %d: %s", name, resp.StatusCode, raw)
	}
	c.srvs[name].Close() // the shard is now empty and out of rotation: kill it
}

// TestRouterMatchesSingleProcess is the tentpole E2E property: for shard
// counts 1, 2 and 4 and multiple seeds, the sharded tier's NDJSON responses
// are byte-identical to a single-process server fed the same stream —
// including per-line errors, eviction counts, and the verdict flips that
// evictions cause. For multi-shard runs, one shard is drained (and its
// process killed) mid-stream.
func TestRouterMatchesSingleProcess(t *testing.T) {
	for _, nShards := range []int{1, 2, 4} {
		for _, seed := range []int64{1, 2} {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", nShards, seed), func(t *testing.T) {
				// Block 2 forces dense shard boundaries, maximizing the
				// cross-shard support traffic under test.
				c := newCluster(t, clusterOpts{shards: nShards, capacity: 120, block: 2})
				rng := rand.New(rand.NewSource(seed))
				id := c.streamBatches(rng, 0, 8, 25)
				if nShards >= 2 {
					c.drain("s1")
				}
				c.streamBatches(rng, id, 8, 25)
				c.checkFinalState()
			})
		}
	}
}

// TestRouterBatchSplitInvariance pins the batch-API contract end to end:
// one logical stream of NDJSON lines produces the same concatenated
// response bytes no matter how it is split into request batches — size-1
// requests (the pre-batch protocol), mid-size batches, or one request for
// the whole stream — and the router stays byte-identical to the
// single-process reference at every split. Malformed lines, duplicates and
// wrong-dimension points ride along so the per-line error slots are held to
// the same invariance.
func TestRouterBatchSplitInvariance(t *testing.T) {
	const total = 120
	mkLines := func() []string {
		rng := rand.New(rand.NewSource(7))
		lines := make([]string, 0, total)
		id := uint64(0)
		for i := 0; i < total; i++ {
			switch {
			case rng.Float64() < 0.05:
				lines = append(lines, "{malformed\n")
			case rng.Float64() < 0.05 && id > 10:
				dup := id - uint64(rng.Intn(8)) - 1
				lines = append(lines, fmt.Sprintf(`{"id":%d,"coords":[%g,%g]}`+"\n", dup, rng.Float64()*12, rng.Float64()*12))
			case rng.Float64() < 0.03:
				id++
				lines = append(lines, fmt.Sprintf(`{"id":%d,"coords":[%g]}`+"\n", id, rng.Float64()))
			default:
				id++
				lines = append(lines, fmt.Sprintf(`{"id":%d,"coords":[%g,%g]}`+"\n", id, rng.Float64()*12, rng.Float64()*12))
			}
		}
		return lines
	}
	queries := func() []string {
		rng := rand.New(rand.NewSource(9))
		qs := make([]string, 24)
		for i := range qs {
			qs[i] = fmt.Sprintf(`{"id":%d,"coords":[%g,%g]}`+"\n", 2_000_000+uint64(i), rng.Float64()*12, rng.Float64()*12)
		}
		return qs
	}()

	send := func(t *testing.T, c *cluster, path string, lines []string, size int, out *bytes.Buffer) {
		t.Helper()
		for lo := 0; lo < len(lines); lo += size {
			hi := lo + size
			if hi > len(lines) {
				hi = len(lines)
			}
			body := strings.Join(lines[lo:hi], "")
			refStatus, refRaw := post(t, c.refSrv.URL+path, body)
			gotStatus, gotRaw := post(t, c.rtSrv.URL+path, body)
			if gotStatus != refStatus || !bytes.Equal(gotRaw, refRaw) {
				t.Fatalf("%s lines [%d,%d): router response diverged from reference\nrouter (%d): %s\nreference (%d): %s",
					path, lo, hi, gotStatus, gotRaw, refStatus, refRaw)
			}
			out.Write(refRaw)
		}
	}

	var wantIngest, wantScore []byte // concatenated size-1 streams
	for _, size := range []int{1, 7, total} {
		t.Run(fmt.Sprintf("size=%d", size), func(t *testing.T) {
			c := newCluster(t, clusterOpts{shards: 2, capacity: 80, block: 2})
			var ingest, score bytes.Buffer
			send(t, c, "/v1/ingest", mkLines(), size, &ingest)
			send(t, c, "/v1/score", queries, size, &score)
			c.checkFinalState()
			if wantIngest == nil {
				wantIngest, wantScore = ingest.Bytes(), score.Bytes()
				return
			}
			if !bytes.Equal(ingest.Bytes(), wantIngest) {
				t.Errorf("size %d: concatenated ingest responses diverge from the size-1 split", size)
			}
			if !bytes.Equal(score.Bytes(), wantScore) {
				t.Errorf("size %d: concatenated score responses diverge from the size-1 split", size)
			}
		})
	}
}

// TestRequestIDPropagation covers the correlation-ID satellite: the router
// echoes caller IDs, generates one when absent, propagates it to shards,
// and embeds it in structured error bodies.
func TestRequestIDPropagation(t *testing.T) {
	c := newCluster(t, clusterOpts{shards: 2, capacity: 50, block: 2})

	// Caller-supplied ID is echoed on the response.
	req, _ := http.NewRequest(http.MethodPost, c.rtSrv.URL+"/v1/ingest",
		strings.NewReader(`{"id":1,"coords":[1,1]}`+"\n"))
	req.Header.Set(router.HeaderRequestID, "test-req-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if got := resp.Header.Get(router.HeaderRequestID); got != "test-req-42" {
		t.Fatalf("echoed request id = %q, want test-req-42", got)
	}

	// Absent ID: the router generates a 16-hex-char one.
	resp, err = http.Post(c.rtSrv.URL+"/healthz", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if got := resp.Header.Get(router.HeaderRequestID); !regexp.MustCompile(`^[0-9a-f]{16}$`).MatchString(got) {
		t.Fatalf("generated request id = %q, want 16 hex chars", got)
	}

	// Structured error bodies carry the ID.
	req, _ = http.NewRequest(http.MethodPost, c.rtSrv.URL+"/v1/drain?shard=nope", nil)
	req.Header.Set(router.HeaderRequestID, "err-req-7")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("drain unknown shard: status %d", resp.StatusCode)
	}
	var errBody struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(raw, &errBody); err != nil {
		t.Fatal(err)
	}
	if errBody.Error != "unknown_shard" || errBody.RequestID != "err-req-7" {
		t.Fatalf("error body = %s, want unknown_shard with request_id err-req-7", raw)
	}

	// Shard side: a malformed wire body is rejected with the ID echoed.
	sreq, _ := http.NewRequest(http.MethodPost, c.srvs["s0"].URL+router.PathSupport,
		bytes.NewReader([]byte("garbage")))
	sreq.Header.Set(router.HeaderRequestID, "shard-req-9")
	resp, err = http.DefaultClient.Do(sreq)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage support body: status %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get(router.HeaderRequestID); got != "shard-req-9" {
		t.Fatalf("shard echoed request id = %q, want shard-req-9", got)
	}
	if !strings.Contains(string(raw), "shard-req-9") {
		t.Fatalf("shard error body lacks request id: %s", raw)
	}
}

// sendAs posts an ingest batch under a tenant header and returns the
// response status, headers and raw body.
func sendAs(t *testing.T, url, tenant, body string) (int, http.Header, []byte) {
	t.Helper()
	req, _ := http.NewRequest(http.MethodPost, url+"/v1/ingest", strings.NewReader(body))
	if tenant != "" {
		req.Header.Set(router.HeaderTenant, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header, raw
}

func ingestLine(id uint64) string { return fmt.Sprintf(`{"id":%d,"coords":[1,1]}`+"\n", id) }

// TestTenantRateLimit covers the token-bucket half of the multi-tenant
// admission satellite: over-rate tenants are shed with 429 + Retry-After
// while other tenants keep flowing.
func TestTenantRateLimit(t *testing.T) {
	c := newCluster(t, clusterOpts{shards: 1, capacity: 50, block: 2, routerOpts: func(cfg *router.Config) {
		cfg.TenantRPS = 0.001 // effectively no refill during the test
		cfg.TenantBurst = 2
	}})
	// Burst of 2 for tenant a: third request is shed.
	if st, _, _ := sendAs(t, c.rtSrv.URL, "a", ingestLine(1)); st != http.StatusOK {
		t.Fatalf("a request 1: status %d", st)
	}
	if st, _, _ := sendAs(t, c.rtSrv.URL, "a", ingestLine(2)); st != http.StatusOK {
		t.Fatalf("a request 2: status %d", st)
	}
	st, hdr, raw := sendAs(t, c.rtSrv.URL, "a", ingestLine(3))
	if st != http.StatusTooManyRequests {
		t.Fatalf("a request 3: status %d, want 429", st)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatalf("429 lacks Retry-After: %s", raw)
	}
	if !strings.Contains(string(raw), "rate_limited") {
		t.Fatalf("429 body = %s, want rate_limited", raw)
	}
	// Tenant b has its own bucket.
	if st, _, _ := sendAs(t, c.rtSrv.URL, "b", ingestLine(4)); st != http.StatusOK {
		t.Fatalf("b request 1: status %d (buckets must be per-tenant)", st)
	}
}

// TestTenantQuota covers the lifetime-quota half: once a tenant's ingested
// lines would exceed its quota the whole batch is rejected — without
// charging the rejected batch, so a smaller one can still fit.
func TestTenantQuota(t *testing.T) {
	c := newCluster(t, clusterOpts{shards: 1, capacity: 50, block: 2, routerOpts: func(cfg *router.Config) {
		cfg.TenantQuota = 10
	}})
	var big strings.Builder
	for i := uint64(10); i < 18; i++ {
		big.WriteString(ingestLine(i))
	}
	if st, _, _ := sendAs(t, c.rtSrv.URL, "b", big.String()); st != http.StatusOK {
		t.Fatalf("b batch 1 (8 lines): status %d", st)
	}
	var over strings.Builder
	for i := uint64(20); i < 25; i++ {
		over.WriteString(ingestLine(i))
	}
	st, _, raw := sendAs(t, c.rtSrv.URL, "b", over.String())
	if st != http.StatusTooManyRequests || !strings.Contains(string(raw), "quota_exceeded") {
		t.Fatalf("b over-quota batch: status %d body %s, want 429 quota_exceeded", st, raw)
	}
	if st, _, _ := sendAs(t, c.rtSrv.URL, "b", ingestLine(30)+ingestLine(31)); st != http.StatusOK {
		t.Fatalf("b final 2-line batch: status %d (rejected batch must not consume quota)", st)
	}
	// Other tenants have independent quotas.
	if st, _, _ := sendAs(t, c.rtSrv.URL, "c", ingestLine(40)); st != http.StatusOK {
		t.Fatalf("c request: status %d (quotas must be per-tenant)", st)
	}
}

// TestDrainPreservesWindow drains shards down to one and checks the full
// window (every resident, count and verdict) survives the handoffs.
func TestDrainPreservesWindow(t *testing.T) {
	c := newCluster(t, clusterOpts{shards: 3, capacity: 100, block: 2})
	rng := rand.New(rand.NewSource(5))
	id := c.streamBatches(rng, 0, 4, 25)
	c.drain("s0")
	id = c.streamBatches(rng, id, 2, 25)
	c.drain("s2")
	c.streamBatches(rng, id, 2, 25)
	c.checkFinalState()
	topo := c.rt.Topology()
	if len(topo.Shards) != 1 || topo.Shards[0].Name != "s1" {
		t.Fatalf("topology after drains = %+v, want only s1", topo.Shards)
	}
}
