// Chaos harness: the sharded tier's byte-identity guarantee under seeded,
// reproducible transport faults on every router→shard and shard→shard hop.
//
// The router's HTTP client rolls decisions at sites "route.<path>" and each
// shard's peer client at "shard.<name><path>", all pure functions of
// (seed, site). The injected mix is latency, errors, dropped responses and
// partition windows — exactly the faults the retry + idempotency-key layer
// must absorb without the verdict stream diverging from the single-process
// reference. Corrupt is deliberately absent: shard responses are plain
// JSON, not codec-sealed frames, so a flipped byte is a transport-integrity
// problem (TCP/TLS territory), not a protocol-recovery one.
//
// Any failure prints its seed;
//
//	go test ./internal/router/ -run Chaos -fault.seed=N
//
// replays exactly that schedule.
package router_test

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"dod/internal/fault"
	"dod/internal/retry"
	"dod/internal/router"
)

// faultSeed, when set (>0), narrows the chaos matrix to a single seed —
// the replay knob for a failing schedule.
var faultSeed = flag.Int64("fault.seed", 0, "run the router chaos matrix with only this fault-injection seed")

// routeChaosSeeds is the fixed PR matrix.
var routeChaosSeeds = []int64{201, 202, 203}

// routeChaosRules tunes the mix so faults fire often enough to exercise
// retry, response-replay dedupe and partition ride-out, while staying
// within the retry budget (a fault that exhausts retries surfaces as a
// verdict-line error the reference never emits — a legitimate failure).
func routeChaosRules() []fault.Rule {
	return []fault.Rule{{
		Site:         "*",
		PLatency:     0.10,
		MaxLatency:   2 * time.Millisecond,
		PError:       0.06,
		PDrop:        0.04,
		PPartition:   0.01,
		PartitionLen: 3,
	}}
}

// TestRouterChaosMatchesSingleProcess replays the E2E property under fault
// injection: randomized ingest/score traffic with a mid-stream drain (and
// shard kill), byte-compared against the clean single-process reference.
func TestRouterChaosMatchesSingleProcess(t *testing.T) {
	seeds := routeChaosSeeds
	if *faultSeed > 0 {
		seeds = []int64{*faultSeed}
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			in := fault.New(fault.Config{Seed: seed, Rules: routeChaosRules()})
			t.Cleanup(func() {
				if !t.Failed() {
					return
				}
				t.Logf("replay with: go test ./internal/router/ -run Chaos -fault.seed=%d", seed)
				for _, d := range in.Schedule() {
					if d.Fault != "none" {
						t.Logf("fault: %+v", d)
					}
				}
			})
			c := newCluster(t, clusterOpts{
				shards:   3,
				capacity: 120,
				block:    2,
				shardTransport: func(name string) http.RoundTripper {
					return fault.Transport(nil, in, "shard."+name)
				},
				routerOpts: func(cfg *router.Config) {
					cfg.Transport = fault.Transport(nil, in, "route.")
					// Generous retry budget: partition windows span 3
					// calls, so 12 attempts ride out back-to-back faults.
					cfg.RetryAttempts = 12
					// The breaker must not open under injected probe
					// failures: a degraded (breaker-skipped) shard answers
					// score requests with partial counts, which is correct
					// degraded behavior but not byte-identical to the
					// healthy reference this test asserts against.
					cfg.Breaker = retry.BreakerConfig{Threshold: 1 << 20}
				},
			})
			rng := rand.New(rand.NewSource(seed))
			id := c.streamBatches(rng, 0, 6, 25)
			c.drain("s1")
			c.streamBatches(rng, id, 6, 25)
			c.checkFinalState()
		})
	}
}
