package router

import (
	"encoding/binary"

	"dod/internal/codec"
	"dod/internal/geom"
)

// Coalesced data plane. A router ingest batch used to cost one shard round
// trip per point plus one shard→shard support hop per peer per point. The
// batch wire forms below collapse that: the router groups a run of
// admissions (a "segment") and issues ONE multi-probe /v1/support exchange
// per peer shard — every segment point's foreign cells in one sealed body —
// followed by ONE /v1/shard/ingest_batch per owning shard carrying each
// point with its already-settled foreign neighbor count. Frame kinds and
// sealing are shared with the per-point protocol.

// PathShardIngestBatch admits a run of points on their owning shard in one
// exchange; see EncodeIngestBatch.
const PathShardIngestBatch = "/v1/shard/ingest_batch"

// frameAdmit is one batched admission: a codec point record followed by
// uvarint sequence number, uvarint settled foreign neighbor count, and
// uvarint count of later cross-shard segment arrivals to fold in after the
// whole segment is admitted.
const frameAdmit byte = 5

// SupportProbe is one (point, cells) pair of a multi-probe support body.
type SupportProbe struct {
	Point geom.Point
	Cells [][]int64
}

// AdmitItem is one point of a batched shard ingest. Foreign is the point's
// cross-shard neighbor count at its admission instant — pre-segment support
// (counted by the phase-one probes) plus earlier same-segment arrivals on
// other shards — so the owning shard can produce the exact sequential
// verdict without issuing any support call of its own. CrossLater is how
// many later same-segment arrivals on other shards neighbor this point;
// the shard folds those +1s in after admitting the whole run, which lands
// the identical flip decisions the per-point protocol would have made
// (counts only grow during a segment, so each entry crosses K at most once
// and the order of the +1s cannot change the outcome).
type AdmitItem struct {
	Point      geom.Point
	Seq        uint64
	Foreign    int
	CrossLater int
}

// IngestBatchHeader is the control header of a batched shard ingest.
type IngestBatchHeader struct {
	ArrivedNs int64 `json:"arrivedNs"`
	Count     int   `json:"count"`
}

// IngestBatchResponse answers a batched shard ingest with one result per
// admitted item, in item order. Error reports a whole-batch failure (e.g. a
// corrupt body); per-item failures live in their Results slot.
type IngestBatchResponse struct {
	Results   []IngestResponse `json:"results,omitempty"`
	Error     string           `json:"error,omitempty"`
	RequestID string           `json:"request_id,omitempty"`
}

// EncodeSupportBatch builds a sealed multi-probe support body: the header,
// then one (point, cells) frame pair per probe, paired by order. A
// single-probe body is byte-compatible with EncodeSupport.
func EncodeSupportBatch(hdr SupportHeader, probes []SupportProbe) []byte {
	body := appendJSONHeader(nil, hdr)
	for _, pr := range probes {
		body = codec.AppendFrame(body, framePoint, codec.AppendPoint(nil, pr.Point))
		body = appendCells(body, pr.Point.Dim(), pr.Cells)
	}
	return codec.AppendSumFrame(body)
}

// DecodeSupportBatch parses a sealed support body into its probes. Bodies
// from EncodeSupport decode as exactly one probe.
func DecodeSupportBatch(body []byte) (SupportHeader, []SupportProbe, error) {
	var hdr SupportHeader
	frames, err := decodeSealed(body)
	if err != nil {
		return hdr, nil, err
	}
	if err := frames.header(&hdr); err != nil {
		return hdr, nil, err
	}
	if len(frames.points) == 0 || len(frames.points) != len(frames.cells) {
		return hdr, nil, codec.WireErrorf("router: support body has %d point and %d cell frames",
			len(frames.points), len(frames.cells))
	}
	probes := make([]SupportProbe, len(frames.points))
	for i := range frames.points {
		pt, _, err := codec.DecodePoint(frames.points[i])
		if err != nil {
			return hdr, nil, err
		}
		cells, err := decodeCells(frames.cells[i])
		if err != nil {
			return hdr, nil, err
		}
		probes[i] = SupportProbe{Point: pt, Cells: cells}
	}
	return hdr, probes, nil
}

// EncodeIngestBatch builds a sealed batched-ingest body.
func EncodeIngestBatch(hdr IngestBatchHeader, items []AdmitItem) []byte {
	body := appendJSONHeader(nil, hdr)
	for _, it := range items {
		payload := codec.AppendPoint(nil, it.Point)
		payload = binary.AppendUvarint(payload, it.Seq)
		payload = binary.AppendUvarint(payload, uint64(it.Foreign))
		payload = binary.AppendUvarint(payload, uint64(it.CrossLater))
		body = codec.AppendFrame(body, frameAdmit, payload)
	}
	return codec.AppendSumFrame(body)
}

// DecodeIngestBatch parses a sealed batched-ingest body.
func DecodeIngestBatch(body []byte) (IngestBatchHeader, []AdmitItem, error) {
	var hdr IngestBatchHeader
	frames, err := decodeSealed(body)
	if err != nil {
		return hdr, nil, err
	}
	if err := frames.header(&hdr); err != nil {
		return hdr, nil, err
	}
	items := make([]AdmitItem, 0, len(frames.admits))
	for _, raw := range frames.admits {
		pt, n, err := codec.DecodePoint(raw)
		if err != nil {
			return hdr, nil, err
		}
		off := n
		seq, n := binary.Uvarint(raw[off:])
		if n <= 0 {
			return hdr, nil, codec.WireErrorf("router: truncated admit seq")
		}
		off += n
		foreign, n := binary.Uvarint(raw[off:])
		if n <= 0 {
			return hdr, nil, codec.WireErrorf("router: truncated admit foreign count")
		}
		off += n
		later, n := binary.Uvarint(raw[off:])
		if n <= 0 {
			return hdr, nil, codec.WireErrorf("router: truncated admit cross-later count")
		}
		items = append(items, AdmitItem{Point: pt, Seq: seq, Foreign: int(foreign), CrossLater: int(later)})
	}
	if len(items) != hdr.Count {
		return hdr, nil, codec.WireErrorf("router: admit count %d != header %d", len(items), hdr.Count)
	}
	return hdr, items, nil
}
