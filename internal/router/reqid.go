package router

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"

	"dod/internal/httpapi"
)

// HeaderRequestID is the cross-tier request correlation header. The router
// generates an ID for every request that arrives without one, forwards it
// on every shard call it makes on the request's behalf (suffixed per
// sub-operation, so each mutating shard call has a distinct idempotency
// key), and echoes it in responses and structured error bodies — one grep
// through router and shard logs stitches a cross-shard trace together.
// The canonical definition lives in internal/httpapi with the rest of the
// shared batch plumbing; this alias keeps existing callers compiling.
const HeaderRequestID = httpapi.HeaderRequestID

// HeaderTenant carries the caller's tenant identity for per-tenant rate
// limiting and quotas at the router. Absent means the default tenant.
const HeaderTenant = "X-Dod-Tenant"

// NewRequestID returns a fresh 16-hex-char request ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is effectively unreachable; a constant ID
		// degrades tracing, not correctness.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// EnsureRequestID returns the request's correlation ID, generating and
// installing one on the request headers if absent.
func EnsureRequestID(r *http.Request) string {
	id := r.Header.Get(HeaderRequestID)
	if id == "" {
		id = NewRequestID()
		r.Header.Set(HeaderRequestID, id)
	}
	return id
}

// EchoRequestID copies the request's correlation ID (if any) onto the
// response headers and returns it.
func EchoRequestID(w http.ResponseWriter, r *http.Request) string {
	id := r.Header.Get(HeaderRequestID)
	if id != "" {
		w.Header().Set(HeaderRequestID, id)
	}
	return id
}
