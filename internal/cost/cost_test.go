package cost

import (
	"math"
	"math/rand"
	"testing"

	"dod/internal/detect"
	"dod/internal/geom"
)

var paperParams = detect.Params{R: 5, K: 4} // the r, k used throughout Sec. IV

func profile2D(n, area float64) PartitionProfile {
	return PartitionProfile{Cardinality: n, Area: area, Dim: 2}
}

func TestDensity(t *testing.T) {
	p := profile2D(1000, 100)
	if got := p.Density(); got != 10 {
		t.Errorf("Density = %g, want 10", got)
	}
	// Degenerate rects must stay finite: +Inf would turn into NaN when the
	// models multiply density by a vanishing cell volume, making every
	// downstream cost comparison undefined.
	degenerate := profile2D(10, 0)
	if got := degenerate.Density(); got != math.MaxFloat64 {
		t.Errorf("zero-area density = %g, want MaxFloat64", got)
	}
	if got := profile2D(0, 0).Density(); got != 0 {
		t.Errorf("empty degenerate density = %g, want 0", got)
	}
}

func TestNestedLoopLemma41(t *testing.T) {
	// Cost(D) = |D|·A(D)·k / A(p) when the cap does not bind.
	p := profile2D(10000, 1000)
	want := 10000 * 1000 * 4 / (math.Pi * 25)
	if got := NestedLoop(p, paperParams); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("NestedLoop = %g, want %g", got, want)
	}
	if got := NestedLoopUncapped(p, paperParams); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("NestedLoopUncapped = %g, want %g", got, want)
	}
}

func TestNestedLoopSparseCostExceedsDense(t *testing.T) {
	// The D-Sparse vs D-Dense experiment of Fig. 4: same cardinality,
	// 4x the domain area → strictly higher cost.
	dense := profile2D(10000, 2500)
	sparse := profile2D(10000, 10000)
	cd, cs := NestedLoop(dense, paperParams), NestedLoop(sparse, paperParams)
	if cs <= cd {
		t.Errorf("sparse cost %g should exceed dense cost %g", cs, cd)
	}
	// With the cap not binding, the ratio should be exactly the area ratio.
	if ratio := cs / cd; math.Abs(ratio-4) > 1e-9 {
		t.Errorf("cost ratio = %g, want 4", ratio)
	}
}

func TestNestedLoopCap(t *testing.T) {
	// Extremely sparse: expected trials k/μ exceed |D|; capped at |D|².
	p := profile2D(100, 1e9)
	if got := NestedLoop(p, paperParams); got != 100*100 {
		t.Errorf("capped cost = %g, want 10000", got)
	}
	if got := NestedLoopUncapped(p, paperParams); got <= 100*100 {
		t.Errorf("uncapped cost = %g, want > 10000", got)
	}
}

func TestNestedLoopDegenerateArea(t *testing.T) {
	p := profile2D(50, 0)
	if got := NestedLoop(p, paperParams); got != 50*4 {
		t.Errorf("zero-area cost = %g, want |D|·k = 200", got)
	}
}

func TestCellCaseThresholds(t *testing.T) {
	// 2D with r=5, k=4: cell area r²/8 = 3.125.
	// Dense-inlier requires 9·3.125·density >= 4 → density >= 0.1422...
	// Sparse-outlier requires 49·3.125·density < 4 → density < 0.02612...
	denseCut := 4.0 / (9.0 / 8.0 * 25.0)
	sparseCut := 4.0 / (49.0 / 8.0 * 25.0)

	mk := func(density float64) PartitionProfile { return profile2D(density*1000, 1000) }

	if got := CellCase(mk(denseCut*1.01), paperParams); got != CaseDenseInlier {
		t.Errorf("just above dense cutoff: %v", got)
	}
	if got := CellCase(mk(denseCut*0.99), paperParams); got != CaseIntermediate {
		t.Errorf("just below dense cutoff: %v", got)
	}
	if got := CellCase(mk(sparseCut*0.99), paperParams); got != CaseSparseOutlier {
		t.Errorf("just below sparse cutoff: %v", got)
	}
	if got := CellCase(mk(sparseCut*1.01), paperParams); got != CaseIntermediate {
		t.Errorf("just above sparse cutoff: %v", got)
	}
}

func TestCellBasedLinearInExtremes(t *testing.T) {
	dense := profile2D(100000, 100) // density 1000, far above cutoff
	if got := CellBased(dense, paperParams); got != 100000 {
		t.Errorf("dense Cell-Based cost = %g, want |D|", got)
	}
	sparse := profile2D(100, 1e9)
	if got := CellBased(sparse, paperParams); got != 100 {
		t.Errorf("sparse Cell-Based cost = %g, want |D|", got)
	}
}

func TestCellBasedIntermediateAddsIndexing(t *testing.T) {
	p := profile2D(10000, 200000) // density 0.05: intermediate regime
	if CellCase(p, paperParams) != CaseIntermediate {
		t.Fatal("profile not in intermediate regime")
	}
	nl := NestedLoop(p, paperParams)
	cb := CellBased(p, paperParams)
	if cb != p.Cardinality+nl {
		t.Errorf("intermediate Cell-Based = %g, want |D| + NL = %g", cb, p.Cardinality+nl)
	}
	if cb <= nl {
		t.Error("Cell-Based should cost more than Nested-Loop in the intermediate regime")
	}
}

func TestSelectMatchesCorollary43(t *testing.T) {
	cases := []struct {
		name    string
		density float64
		want    detect.Kind
	}{
		{"very dense", 10, detect.CellBased},
		{"very sparse", 0.001, detect.CellBased},
		{"intermediate", 0.05, detect.NestedLoop},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := profile2D(tc.density*10000, 10000)
			if got := Select(p, paperParams); got != tc.want {
				t.Errorf("Select(density=%g) = %v, want %v", tc.density, got, tc.want)
			}
		})
	}
}

func TestSelectAgreesWithModelComparison(t *testing.T) {
	// Corollary 4.3 should coincide with direct cost-model comparison over
	// the paper's candidate set across the density sweep of Fig. 5.
	for _, density := range []float64{0.001, 0.01, 0.03, 0.05, 0.1, 0.2, 1, 10, 100} {
		p := profile2D(10000, 10000/density)
		bySelect := Select(p, paperParams)
		byCost := SelectFrom([]detect.Kind{detect.NestedLoop, detect.CellBased}, p, paperParams)
		if bySelect != byCost {
			// The two can legitimately differ only when costs tie; verify.
			nl, cb := NestedLoop(p, paperParams), CellBased(p, paperParams)
			if nl != cb {
				t.Errorf("density %g: Select=%v but cheapest=%v (NL=%g CB=%g)",
					density, bySelect, byCost, nl, cb)
			}
		}
	}
}

func TestSelectFromHonorsCandidateOrderOnTies(t *testing.T) {
	p := profile2D(0, 100) // zero cardinality: every model returns 0
	got := SelectFrom([]detect.Kind{detect.CellBased, detect.NestedLoop}, p, paperParams)
	if got != detect.CellBased {
		t.Errorf("tie should go to first candidate, got %v", got)
	}
}

func TestEstimateAllKinds(t *testing.T) {
	p := profile2D(1000, 1000)
	for _, kind := range []detect.Kind{detect.BruteForce, detect.NestedLoop, detect.CellBased, detect.KDTree} {
		if got := Estimate(kind, p, paperParams); got <= 0 || math.IsNaN(got) {
			t.Errorf("Estimate(%v) = %g", kind, got)
		}
	}
	if Estimate(detect.BruteForce, p, paperParams) != 1000*1000 {
		t.Error("brute force model should be quadratic")
	}
}

func TestEstimatePanicsOnInvalidProfile(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Estimate(detect.NestedLoop, PartitionProfile{Cardinality: -1, Area: 1, Dim: 2}, paperParams)
}

func TestSelectFromEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SelectFrom(nil, profile2D(10, 10), paperParams)
}

func TestCellCaseString(t *testing.T) {
	if CaseDenseInlier.String() != "dense-inlier" ||
		CaseSparseOutlier.String() != "sparse-outlier" ||
		CaseIntermediate.String() != "intermediate" {
		t.Error("CellCaseKind.String mismatch")
	}
}

// TestModelPredictsMeasuredOrdering validates the cost models against the
// real detectors: across a density sweep, whenever the models say one
// detector is at least 3x cheaper, the measured distance-computation counts
// must agree on the ordering. This ties Sec. IV's theory to the
// implementation.
func TestModelPredictsMeasuredOrdering(t *testing.T) {
	const n = 4000
	for _, density := range []float64{0.01, 0.05, 1, 20} {
		area := n / density
		side := math.Sqrt(area)
		pts := uniformPoints(n, side)
		prof := profile2D(n, area)

		nlModel := Estimate(detect.NestedLoop, prof, paperParams)
		cbModel := Estimate(detect.CellBased, prof, paperParams)

		nlMeasured := detect.New(detect.NestedLoop, 3).Detect(pts, nil, paperParams).Stats.Cost()
		cbMeasured := detect.New(detect.CellBased, 0).Detect(pts, nil, paperParams).Stats.Cost()

		switch {
		case nlModel*3 < cbModel && nlMeasured >= cbMeasured:
			t.Errorf("density %g: model favors NL (%g vs %g) but measured %d >= %d",
				density, nlModel, cbModel, nlMeasured, cbMeasured)
		case cbModel*3 < nlModel && cbMeasured >= nlMeasured:
			t.Errorf("density %g: model favors CB (%g vs %g) but measured %d >= %d",
				density, cbModel, nlModel, cbMeasured, nlMeasured)
		}
	}
}

func uniformPoints(n int, side float64) []geom.Point {
	rng := rand.New(rand.NewSource(31))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{ID: uint64(i), Coords: []float64{rng.Float64() * side, rng.Float64() * side}}
	}
	return pts
}
