package cost

import (
	"math"
	"testing"

	"dod/internal/detect"
)

func TestRegimeCuts2D(t *testing.T) {
	sparse, dense := RegimeCuts(2, paperParams)
	// Cell volume r²/8 = 3.125; L1 = 9 cells, L2 = 49 cells.
	wantSparse := 4.0 / (49 * 3.125)
	wantDense := 4.0 / (9 * 3.125)
	if math.Abs(sparse-wantSparse) > 1e-12 || math.Abs(dense-wantDense) > 1e-12 {
		t.Errorf("RegimeCuts = (%g, %g), want (%g, %g)", sparse, dense, wantSparse, wantDense)
	}
	if sparse >= dense {
		t.Error("sparse cut must be below dense cut")
	}
}

func TestRegimeCutsMatchCellCase(t *testing.T) {
	// The cuts must agree with CellCase's classification at every density.
	sparse, dense := RegimeCuts(2, paperParams)
	for _, density := range []float64{sparse / 2, sparse * 1.01, dense * 0.99, dense * 1.01, dense * 100} {
		p := profile2D(density*1e6, 1e6)
		got := CellCase(p, paperParams)
		var want CellCaseKind
		switch {
		case density < sparse:
			want = CaseSparseOutlier
		case density < dense:
			want = CaseIntermediate
		default:
			want = CaseDenseInlier
		}
		if got != want {
			t.Errorf("density %g: CellCase %v, cuts say %v", density, got, want)
		}
	}
}

func TestRegimeClass(t *testing.T) {
	class := RegimeClass(2, paperParams)
	sparse, dense := RegimeCuts(2, paperParams)
	cases := []struct {
		density float64
		want    int
	}{
		{0, 0},
		{sparse / 2, 1},
		{(sparse + dense) / 2, 2},
		{dense * 2, 3},
	}
	for _, tc := range cases {
		if got := class(tc.density); got != tc.want {
			t.Errorf("class(%g) = %d, want %d", tc.density, got, tc.want)
		}
	}
}

func TestCellBasedL2Model(t *testing.T) {
	// Extreme regimes: linear like CellBased.
	dense := profile2D(1e5, 100)
	if got := CellBasedL2(dense, paperParams); got != 1e5 {
		t.Errorf("dense CBL2 = %g, want |D|", got)
	}
	sparse := profile2D(10, 1e9)
	if got := CellBasedL2(sparse, paperParams); got != 10 {
		t.Errorf("sparse CBL2 = %g, want |D|", got)
	}
	// Intermediate: strictly cheaper than the paper's CellBased model
	// (ring-bounded fallback beats the full Nested-Loop term).
	mid := profile2D(10000, 200000)
	if CellCase(mid, paperParams) != CaseIntermediate {
		t.Fatal("fixture not intermediate")
	}
	cbl2, cb := CellBasedL2(mid, paperParams), CellBased(mid, paperParams)
	if cbl2 >= cb {
		t.Errorf("intermediate CBL2 %g should be below CB %g", cbl2, cb)
	}
	if cbl2 <= mid.Cardinality {
		t.Errorf("intermediate CBL2 %g should exceed the linear term", cbl2)
	}
}

func TestPivotModel(t *testing.T) {
	p := profile2D(10000, 100000)
	pivot := Estimate(detect.Pivot, p, paperParams)
	nl := Estimate(detect.NestedLoop, p, paperParams)
	if pivot <= 8*p.Cardinality {
		t.Errorf("pivot model %g must include the precompute term", pivot)
	}
	if pivot >= nl+8*p.Cardinality {
		t.Errorf("pivot model %g should discount the scan versus NL %g", pivot, nl)
	}
}

func TestEstimateKDTreeSmall(t *testing.T) {
	tiny := PartitionProfile{Cardinality: 1, Area: 10, Dim: 2}
	if got := Estimate(detect.KDTree, tiny, paperParams); got != 1 {
		t.Errorf("KDTree tiny estimate = %g, want 1", got)
	}
}

func TestEstimateUnknownKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Estimate(detect.Kind(99), profile2D(10, 10), paperParams)
}

func TestNestedLoopUncappedExceedsCappedWhenSparse(t *testing.T) {
	p := profile2D(100, 1e12)
	if NestedLoopUncapped(p, paperParams) <= NestedLoop(p, paperParams) {
		t.Error("uncapped should exceed capped on ultra-sparse data")
	}
}

func TestProfileValidate(t *testing.T) {
	bad := []PartitionProfile{
		{Cardinality: -1, Area: 1, Dim: 2},
		{Cardinality: 1, Area: -1, Dim: 2},
		{Cardinality: 1, Area: 1, Dim: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("profile %d accepted: %+v", i, p)
		}
	}
	if err := (PartitionProfile{Cardinality: 1, Area: 1, Dim: 2}).Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
}

func TestCellCaseUnknownString(t *testing.T) {
	if CellCaseKind(42).String() == "" {
		t.Error("empty string for unknown case")
	}
}

func TestRegimeCuts3D(t *testing.T) {
	sparse3, dense3 := RegimeCuts(3, paperParams)
	if !(sparse3 > 0 && sparse3 < dense3) {
		t.Errorf("3D cuts malformed: %g, %g", sparse3, dense3)
	}
}
