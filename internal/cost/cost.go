// Package cost implements the paper's theoretical cost models for the
// detector classes (Lemma 4.1 and Lemma 4.2) and the density-driven
// algorithm selector (Corollary 4.3). These models are the foundation of
// the multi-tactic strategy: CDriven and DMT partitioning balance reducers
// by *modeled cost* rather than cardinality, and DMT picks each partition's
// detector by comparing the models.
package cost

import (
	"fmt"
	"math"

	"dod/internal/detect"
	"dod/internal/pgraph"
	"dod/internal/ssample"
)

// PartitionProfile is the statistical summary of a data partition the cost
// models consume: cardinality, the volume of domain space it covers, and
// dimensionality.
type PartitionProfile struct {
	Cardinality float64 // |D|; fractional values arise from scaled samples
	Area        float64 // A(D), the d-dimensional volume covered
	Dim         int
}

// Density returns the partition's density measure: cardinality per unit of
// domain volume (the "ratio of data cardinality to the domain area" of
// Sec. IV-A). Degenerate rects (zero area around a single point or a
// coordinate-aligned sliver) return MaxFloat64 rather than +Inf: the models
// multiply density by vanishing cell volumes, and Inf·0 = NaN would poison
// every downstream cost comparison, whereas MaxFloat64·0 = 0 keeps the
// pricing total. An empty degenerate rect has density 0.
func (p PartitionProfile) Density() float64 {
	if p.Area <= 0 {
		if p.Cardinality == 0 {
			return 0
		}
		return math.MaxFloat64
	}
	return p.Cardinality / p.Area
}

// Validate reports whether a profile is usable.
func (p PartitionProfile) Validate() error {
	if p.Cardinality < 0 {
		return fmt.Errorf("cost: negative cardinality %g", p.Cardinality)
	}
	if p.Area < 0 {
		return fmt.Errorf("cost: negative area %g", p.Area)
	}
	if p.Dim < 1 {
		return fmt.Errorf("cost: dimension %d < 1", p.Dim)
	}
	return nil
}

// NestedLoop returns Lemma 4.1's cost of the random-scan Nested-Loop
// detector on the partition:
//
//	Cost(D) = |D| · A(D) · k / A(p)
//
// where A(p) is the volume of the r-ball. The expected trials per point,
// k/μ with μ = A(p)/A(D), is capped at |D| because a scan cannot examine
// more candidates than exist; the uncapped formula is available via
// NestedLoopUncapped.
func NestedLoop(p PartitionProfile, params detect.Params) float64 {
	perPoint := expectedTrials(p, params)
	if perPoint > p.Cardinality {
		perPoint = p.Cardinality
	}
	return p.Cardinality * perPoint
}

// NestedLoopUncapped is Lemma 4.1 verbatim, with no |D| cap on the
// per-point trial count.
func NestedLoopUncapped(p PartitionProfile, params detect.Params) float64 {
	return p.Cardinality * expectedTrials(p, params)
}

// expectedTrials returns E(N) = k/μ, the Binomial-expectation argument in
// the proof of Lemma 4.1.
func expectedTrials(p PartitionProfile, params detect.Params) float64 {
	ballVol := ballVolume(p.Dim, params.R)
	if p.Area <= 0 {
		// Degenerate domain: everything is within r of everything; k trials
		// suffice.
		return float64(params.K)
	}
	mu := ballVol / p.Area
	if mu > 1 {
		mu = 1
	}
	if mu == 0 {
		return math.Inf(1)
	}
	return float64(params.K) / mu
}

// CellCaseKind names which branch of Lemma 4.2 applies to a partition.
type CellCaseKind int

// The three regimes of Lemma 4.2.
const (
	CaseDenseInlier   CellCaseKind = iota // Eq. (1): 9/8·r²·density ≥ k
	CaseSparseOutlier                     // Eq. (2): 49/8·r²·density < k
	CaseIntermediate                      // Eq. (3): indexing + Nested-Loop
)

// String names the case.
func (c CellCaseKind) String() string {
	switch c {
	case CaseDenseInlier:
		return "dense-inlier"
	case CaseSparseOutlier:
		return "sparse-outlier"
	case CaseIntermediate:
		return "intermediate"
	default:
		return fmt.Sprintf("CellCaseKind(%d)", int(c))
	}
}

// CellCase classifies the partition into a Lemma 4.2 regime. The constants
// generalize the paper's two-dimensional 9-cell/49-cell blocks: the L1
// block spans 3^d cells of volume (r/(2√d))^d each, the L2 block
// (2·⌈2√d⌉+1)^d of them.
func CellCase(p PartitionProfile, params detect.Params) CellCaseKind {
	density := p.Density()
	cellVol := math.Pow(params.R/(2*math.Sqrt(float64(p.Dim))), float64(p.Dim))
	l1Cells := math.Pow(3, float64(p.Dim))
	l2Side := 2*math.Ceil(2*math.Sqrt(float64(p.Dim))) + 1
	l2Cells := math.Pow(l2Side, float64(p.Dim))
	switch {
	case l1Cells*cellVol*density >= float64(params.K):
		return CaseDenseInlier
	case l2Cells*cellVol*density < float64(params.K):
		return CaseSparseOutlier
	default:
		return CaseIntermediate
	}
}

// RegimeCuts returns the density thresholds separating Lemma 4.2's three
// regimes for the given dimensionality and parameters: densities below
// sparseCut are in the sparse-outlier regime, at or above denseCut in the
// dense-inlier regime, and in between in the intermediate regime.
func RegimeCuts(dim int, params detect.Params) (sparseCut, denseCut float64) {
	cellVol := math.Pow(params.R/(2*math.Sqrt(float64(dim))), float64(dim))
	l1Cells := math.Pow(3, float64(dim))
	l2Side := 2*math.Ceil(2*math.Sqrt(float64(dim))) + 1
	l2Cells := math.Pow(l2Side, float64(dim))
	return float64(params.K) / (l2Cells * cellVol), float64(params.K) / (l1Cells * cellVol)
}

// RegimeClass maps a density to a small integer class aligned with the
// Corollary 4.3 regimes: 0 = empty, 1 = sparse-outlier, 2 = intermediate,
// 3 = dense-inlier. Partitions built from same-class regions are served by
// one detector, which is what makes the classes the natural
// density-similarity notion for DSHC.
func RegimeClass(dim int, params detect.Params) func(density float64) int {
	sparseCut, denseCut := RegimeCuts(dim, params)
	return func(density float64) int {
		switch {
		case density == 0:
			return 0
		case density < sparseCut:
			return 1
		case density < denseCut:
			return 2
		default:
			return 3
		}
	}
}

// CellBased returns Lemma 4.2's cost of the Cell-Based detector: linear
// |D| in the dense-inlier and sparse-outlier regimes, |D| plus the
// Nested-Loop term in between.
func CellBased(p PartitionProfile, params detect.Params) float64 {
	switch CellCase(p, params) {
	case CaseDenseInlier, CaseSparseOutlier:
		return p.Cardinality
	default:
		return p.Cardinality + NestedLoop(p, params)
	}
}

// CellBasedL2 models the extension detector that restricts undecided-cell
// scans to the L1–L2 ring: the linear indexing term plus, in the
// intermediate regime, a per-point scan bounded by the expected ring
// population rather than the full Nested-Loop trial count.
func CellBasedL2(p PartitionProfile, params detect.Params) float64 {
	if CellCase(p, params) != CaseIntermediate {
		return p.Cardinality
	}
	cellVol := math.Pow(params.R/(2*math.Sqrt(float64(p.Dim))), float64(p.Dim))
	l2Side := 2*math.Ceil(2*math.Sqrt(float64(p.Dim))) + 1
	ringPoints := math.Pow(l2Side, float64(p.Dim)) * cellVol * p.Density()
	perPoint := expectedTrials(p, params)
	if ringPoints < perPoint {
		perPoint = ringPoints
	}
	if perPoint > p.Cardinality {
		perPoint = p.Cardinality
	}
	return p.Cardinality * (1 + perPoint)
}

// PerPointTrials returns the expected Nested-Loop trials for a point whose
// *local* density is localDensity when scanning a candidate pool of
// poolCount points: k/μ with μ = expected neighbors / pool size, capped at
// the pool size. This refines Lemma 4.1 to mixed-density partitions, where
// a point in a sparse corner of a mostly-dense partition scans nearly the
// whole pool.
func PerPointTrials(localDensity, poolCount float64, dim int, params detect.Params) float64 {
	if poolCount <= 0 {
		return 0
	}
	neighbors := localDensity * ballVolume(dim, params.R)
	// Negated comparison also catches NaN (e.g. MaxFloat64 density times a
	// denormal-flushed cell volume): treat any non-positive or undefined
	// neighbor expectation as "scan the pool".
	if !(neighbors > 0) {
		return poolCount
	}
	trials := float64(params.K) * poolCount / neighbors
	if trials > poolCount {
		trials = poolCount
	}
	return trials
}

// ballVolume is the volume of the d-ball of radius r (π·r² when d = 2,
// matching the π·r² of Lemma 4.2's Equation (3)).
func ballVolume(d int, r float64) float64 {
	return math.Pow(math.Pi, float64(d)/2) / math.Gamma(float64(d)/2+1) * math.Pow(r, float64(d))
}

// GridEnumExcess is the per-point neighborhood-enumeration overhead the
// grid detectors pay in high dimension: an undecided point's L1 block
// walk steps through 3^d cell ordinals whether or not the cells hold
// data. In low dimension that walk is negligible next to the point scans
// (and Lemma 4.2 rightly ignores it), so the penalty is structurally zero
// while 3^d stays within max(pool, 3^6); past that the odometer itself
// dominates, growing exponentially until the grid tactics price
// themselves out — which is exactly what happens when they run.
func GridEnumExcess(dim int, poolCount float64) float64 {
	l1 := math.Pow(3, float64(dim))
	floor := poolCount
	if floor < 729 { // 3^6: below d=7 the walk never exceeds the scan term
		floor = 729
	}
	if l1 <= floor {
		return 0
	}
	return (l1 - floor) / 8
}

// KDPerQuery models one KD-Tree range-count against a pool of n points:
// logarithmic in low dimension but degrading by 2^(d-6) as the curse of
// dimensionality forces the backtracking search toward a full traversal,
// capped at the pool size (a traversal cannot visit more points than
// exist).
func KDPerQuery(n float64, dim int, params detect.Params) float64 {
	if n < 2 {
		return 1
	}
	per := math.Log2(n) * float64(params.K)
	if dim > 6 {
		per *= math.Pow(2, float64(dim-6))
	}
	if per > n {
		per = n
	}
	return per
}

// GraphBuildPerPoint is the modeled per-point construction cost of the
// proximity graph, in units of distance computations: one EfBuild-beam
// search plus the overflow re-selection that diversity pruning performs
// on reverse links. The ×5 factor over the beam's nominal EfBuild·Degree
// expansions is calibrated against measured build counters on clustered
// and sphere workloads (≈430–480 comps/point at the current constants).
const GraphBuildPerPoint = float64(pgraph.EfBuild * pgraph.Degree * 5)

// ExpectedNeighbors is the mean neighbor count at radius r of a point in
// a region of the given density — density times the r-ball volume. In
// high dimension the ball volume underflows any realistic density;
// callers holding an empirical neighbor statistic (sample.Histogram's
// AvgNeighbors) should prefer it when larger.
func ExpectedNeighbors(density float64, dim int, r float64) float64 {
	return density * ballVolume(dim, r)
}

// ProxGraphPerPoint prices the proximity-graph tactic for one point with
// expected neighbor count lambda in a pool of poolCount points:
// amortized construction, a certification walk that stops after ~k
// verified neighbors plus adjacency overhead, and — for the fraction of
// points the walk cannot certify, vanishing as lambda outgrows k — the
// full verified fallback scan.
func ProxGraphPerPoint(lambda, poolCount float64, params detect.Params) float64 {
	walk := float64(params.K + pgraph.Degree)
	frac := 1.0
	if lambda > 0 { // negated form would hide a NaN lambda; frac stays 1 then
		frac = math.Exp(-lambda / (2 * float64(params.K)))
	}
	return GraphBuildPerPoint + walk + frac*poolCount
}

// ProxGraph returns the modeled cost of the proximity-graph tactic
// (internal/pgraph) on a uniform partition. The density-based lambda
// underflows in high dimension; mixed-cost pricing substitutes the
// histogram's empirical neighbor statistic there.
func ProxGraph(p PartitionProfile, params detect.Params) float64 {
	n := p.Cardinality
	if n < 2 {
		return n
	}
	lambda := ExpectedNeighbors(p.Density(), p.Dim, params.R)
	return n * ProxGraphPerPoint(lambda, n, params)
}

// SensSample returns the modeled cost of the sensitivity-sampling tactic
// (internal/ssample): every pool point is scanned against the uniform
// pilot, then every core point against the m weighted draws — linear in
// the pool either way.
func SensSample(p PartitionProfile, params detect.Params) float64 {
	n := p.Cardinality
	if n < 1 {
		return 0
	}
	pilot := float64(ssample.PilotSize)
	if n < pilot {
		pilot = n
	}
	m := float64(ssample.SampleSize(int(math.Ceil(n)), ssample.DefaultEps, ssample.DefaultDelta))
	return n * (pilot + m)
}

// Estimate returns the modeled cost of running the given detector kind on
// the partition. BruteForce is modeled as the full quadratic scan; KDTree
// as index build plus logarithmic queries.
func Estimate(kind detect.Kind, p PartitionProfile, params detect.Params) float64 {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	switch kind {
	case detect.NestedLoop:
		return NestedLoop(p, params)
	case detect.CellBased:
		return CellBased(p, params) + p.Cardinality*GridEnumExcess(p.Dim, p.Cardinality)
	case detect.BruteForce:
		return p.Cardinality * p.Cardinality
	case detect.KDTree:
		n := p.Cardinality
		if n < 2 {
			return n
		}
		return n * KDPerQuery(n, p.Dim, params)
	case detect.CellBasedL2:
		return CellBasedL2(p, params) + p.Cardinality*GridEnumExcess(p.Dim, p.Cardinality)
	case detect.PGraph:
		return ProxGraph(p, params)
	case detect.SSample:
		return SensSample(p, params)
	case detect.Pivot:
		// Pivot precompute (n·m distances) plus the filtered random scan;
		// the filter passes candidates within an r-slab of every pivot, a
		// fraction that shrinks with domain extent. Modeled as precompute
		// plus the Nested-Loop term discounted by a nominal filter factor.
		return 8*p.Cardinality + NestedLoop(p, params)/4
	default:
		panic(fmt.Sprintf("cost: no model for detector %v", kind))
	}
}

// Select implements Corollary 4.3 over the paper's candidate set
// A = {Nested-Loop, Cell-Based}: Cell-Based for the dense-inlier and
// sparse-outlier regimes, Nested-Loop otherwise.
func Select(p PartitionProfile, params detect.Params) detect.Kind {
	if CellCase(p, params) == CaseIntermediate {
		return detect.NestedLoop
	}
	return detect.CellBased
}

// SelectFrom generalizes Corollary 4.3 to an arbitrary candidate set: it
// returns the kind with the minimal modeled cost (Def. 3.4's optimal
// algorithm plan, applied per partition). Ties go to the earlier candidate.
func SelectFrom(candidates []detect.Kind, p PartitionProfile, params detect.Params) detect.Kind {
	if len(candidates) == 0 {
		panic("cost: empty candidate set")
	}
	best := candidates[0]
	bestCost := Estimate(best, p, params)
	for _, kind := range candidates[1:] {
		if c := Estimate(kind, p, params); c < bestCost {
			best, bestCost = kind, c
		}
	}
	return best
}
