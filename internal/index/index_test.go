package index

import (
	"math/rand"
	"sync"
	"testing"

	"dod/internal/geom"
)

func randPoints(n, dim int, scale float64, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		coords := make([]float64, dim)
		for j := range coords {
			coords[j] = rng.Float64() * scale
		}
		pts[i] = geom.Point{ID: uint64(i), Coords: coords}
	}
	return pts
}

// bruteCount is the reference neighbor count: points with a different ID
// within distance r.
func bruteCount(p geom.Point, pool []geom.Point, r float64) int {
	n := 0
	for _, q := range pool {
		if q.ID != p.ID && geom.WithinDist(p, q, r) {
			n++
		}
	}
	return n
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Dim: 0, R: 1}); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := New(Config{Dim: 2, R: 0}); err == nil {
		t.Error("r 0 accepted")
	}
	if _, err := New(Config{Dim: 2, R: -1}); err == nil {
		t.Error("negative r accepted")
	}
	ix, err := New(Config{Dim: 2, R: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ix.shards) != DefaultShards {
		t.Errorf("default shards = %d, want %d", len(ix.shards), DefaultShards)
	}
}

func TestNeighborCountMatchesBruteForce(t *testing.T) {
	for _, dim := range []int{1, 2, 3} {
		pts := randPoints(500, dim, 10, int64(dim))
		const r = 1.5
		ix, err := New(Config{Dim: dim, R: r, Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			if err := ix.Insert(p); err != nil {
				t.Fatal(err)
			}
		}
		for _, p := range pts {
			want := bruteCount(p, pts, r)
			// A limit above any possible count makes the index count exact.
			got, err := ix.NeighborCount(p, len(pts))
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("dim %d: NeighborCount(%v) = %d, want %d", dim, p, got, want)
			}
		}
	}
}

func TestNeighborCountEarlyTermination(t *testing.T) {
	pts := randPoints(300, 2, 5, 7)
	const r = 2.0
	ix, err := New(Config{Dim: 2, R: r})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := ix.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	const k = 4
	for _, p := range pts {
		want := bruteCount(p, pts, r)
		if want > k {
			want = k
		}
		got, err := ix.NeighborCount(p, k)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("NeighborCount(%v, %d) = %d, want %d", p, k, got, want)
		}
	}
}

func TestNeighborsEnumeratesExactly(t *testing.T) {
	pts := randPoints(400, 2, 8, 11)
	const r = 1.0
	ix, err := New(Config{Dim: 2, R: r})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := ix.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range pts[:50] {
		seen := make(map[uint64]bool)
		if err := ix.Neighbors(p, func(q geom.Point) { seen[q.ID] = true }); err != nil {
			t.Fatal(err)
		}
		for _, q := range pts {
			want := q.ID != p.ID && geom.WithinDist(p, q, r)
			if seen[q.ID] != want {
				t.Fatalf("Neighbors(%v): point %d reported %v, want %v", p, q.ID, seen[q.ID], want)
			}
		}
	}
}

func TestRemove(t *testing.T) {
	pts := randPoints(100, 2, 3, 3)
	ix, err := New(Config{Dim: 2, R: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := ix.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Len() != len(pts) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(pts))
	}
	for _, p := range pts {
		if !ix.Remove(p) {
			t.Fatalf("Remove(%v) = false on resident point", p)
		}
		if ix.Remove(p) {
			t.Fatalf("Remove(%v) = true after removal", p)
		}
	}
	if ix.Len() != 0 {
		t.Fatalf("Len after removing all = %d, want 0", ix.Len())
	}
	occ := ix.ShardOccupancy()
	for i, n := range occ {
		if n != 0 {
			t.Fatalf("shard %d occupancy = %d after removing all", i, n)
		}
	}
}

func TestDimensionMismatch(t *testing.T) {
	ix, err := New(Config{Dim: 2, R: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := geom.Point{ID: 1, Coords: []float64{1, 2, 3}}
	if err := ix.Insert(bad); err == nil {
		t.Error("Insert accepted mismatched dimension")
	}
	if _, err := ix.NeighborCount(bad, 1); err == nil {
		t.Error("NeighborCount accepted mismatched dimension")
	}
	if err := ix.Neighbors(bad, func(geom.Point) {}); err == nil {
		t.Error("Neighbors accepted mismatched dimension")
	}
	if ix.Remove(bad) {
		t.Error("Remove found a mismatched-dimension point")
	}
	good := geom.Point{ID: 1, Coords: []float64{1, 2}}
	if _, err := ix.NeighborCount(good, 0); err == nil {
		t.Error("NeighborCount accepted limit 0")
	}
}

func TestNegativeCoordinates(t *testing.T) {
	// Cell coords use floor division, so negative space must work too.
	pts := randPoints(300, 2, 6, 19)
	for i := range pts {
		pts[i].Coords[0] -= 3
		pts[i].Coords[1] -= 3
	}
	const r = 1.2
	ix, err := New(Config{Dim: 2, R: r})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if err := ix.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range pts {
		want := bruteCount(p, pts, r)
		got, err := ix.NeighborCount(p, len(pts))
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("NeighborCount(%v) = %d, want %d", p, got, want)
		}
	}
}

// TestConcurrentHammer exercises concurrent insert, remove, and query under
// the race detector: each goroutine owns a disjoint ID range and cycles its
// points in and out of the index while counting neighbors.
func TestConcurrentHammer(t *testing.T) {
	const (
		workers   = 8
		perWorker = 200
	)
	ix, err := New(Config{Dim: 2, R: 1, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			own := make([]geom.Point, perWorker)
			for i := range own {
				own[i] = geom.Point{
					ID:     uint64(w*perWorker + i),
					Coords: []float64{rng.Float64() * 10, rng.Float64() * 10},
				}
			}
			for round := 0; round < 3; round++ {
				for _, p := range own {
					if err := ix.Insert(p); err != nil {
						t.Error(err)
						return
					}
				}
				for _, p := range own {
					if _, err := ix.NeighborCount(p, 5); err != nil {
						t.Error(err)
						return
					}
				}
				ix.Len()
				ix.ShardOccupancy()
				for _, p := range own {
					if !ix.Remove(p) {
						t.Errorf("lost point %d", p.ID)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if ix.Len() != 0 {
		t.Fatalf("Len after hammer = %d, want 0", ix.Len())
	}
}

// TestRingCellsInt64Extremes exercises ring enumeration with cell
// coordinates at the edges of the int64 space. Offsets that would leave
// the representable range must be skipped, not wrapped: a wrapped
// coordinate aliases a cell at the opposite end of space and would leak
// phantom neighbors into counts.
func TestRingCellsInt64Extremes(t *testing.T) {
	const maxI64, minI64 = int64(^uint64(0) >> 1), -int64(^uint64(0)>>1) - 1
	cases := []struct {
		name   string
		center []int64
		radius int
	}{
		{"max-corner", []int64{maxI64, maxI64}, 3},
		{"min-corner", []int64{minI64, minI64}, 3},
		{"mixed-corner", []int64{maxI64, minI64}, 2},
		{"near-max", []int64{maxI64 - 1, 0}, 3},
		{"near-min", []int64{minI64 + 2, minI64}, 3},
		{"1d-max", []int64{maxI64}, 2},
		{"3d-extremes", []int64{maxI64, minI64, maxI64 - 2}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seen := make(map[string]bool)
			for radius := 0; radius <= tc.radius; radius++ {
				RingCells(tc.center, radius, func(cell []int64) {
					for d := range cell {
						// Every emitted coordinate must be within Chebyshev
						// distance radius of the center without wrapping.
						if got := chebDist(cell, tc.center); got > uint64(radius) {
							t.Fatalf("radius %d emitted cell %v at Chebyshev distance %d", radius, cell, got)
						}
						_ = d
					}
					k := string(key(cell))
					if seen[k] {
						t.Fatalf("radius %d emitted duplicate cell %v (wrapped coordinate aliases another cell)", radius, cell)
					}
					seen[k] = true
				})
			}
			// The enumerated block must be the intersection of the full
			// (2r+1)^d block with the representable coordinate space.
			want := 1
			for _, c := range tc.center {
				lo, hi := tc.radius, tc.radius
				if c < minI64+int64(tc.radius) {
					lo = int(c - minI64)
				}
				if c > maxI64-int64(tc.radius) {
					hi = int(maxI64 - c)
				}
				want *= lo + hi + 1
			}
			if len(seen) != want {
				t.Fatalf("enumerated %d distinct cells, want %d", len(seen), want)
			}
		})
	}
}

// TestNeighborsInCellsPartition splits a point's neighborhood cells into
// arbitrary groups and checks that the per-group counts sum to exactly
// what one Neighbors scan reports — the invariant the sharded serving
// tier's boundary-support protocol rests on.
func TestNeighborsInCellsPartition(t *testing.T) {
	for _, dim := range []int{1, 2, 3} {
		const r = 1.5
		pts := randPoints(600, dim, 8, 77+int64(dim))
		ix, err := New(Config{Dim: dim, R: r, Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pts {
			if err := ix.Insert(p); err != nil {
				t.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(int64(dim)))
		for trial := 0; trial < 50; trial++ {
			q := pts[rng.Intn(len(pts))]
			// Collect the full neighborhood and deal cells into 3 groups.
			groups := make([][][]int64, 3)
			ix.NeighborhoodCells(q, func(cell []int64) {
				g := rng.Intn(3)
				groups[g] = append(groups[g], append([]int64(nil), cell...))
			})
			total := 0
			var enumerated []uint64
			for _, cells := range groups {
				n, err := ix.NeighborsInCells(q, cells, 0, func(nb geom.Point) {
					enumerated = append(enumerated, nb.ID)
				})
				if err != nil {
					t.Fatal(err)
				}
				total += n
			}
			want := bruteCount(q, pts, r)
			if total != want {
				t.Fatalf("dim %d: partitioned count %d != brute-force %d", dim, total, want)
			}
			if len(enumerated) != want {
				t.Fatalf("dim %d: enumerated %d neighbors, want %d", dim, len(enumerated), want)
			}
			// Early-terminated pure counting caps at the limit.
			if want > 1 {
				capped := 0
				for _, cells := range groups {
					n, err := ix.NeighborsInCells(q, cells, want-1, nil)
					if err != nil {
						t.Fatal(err)
					}
					capped += n
				}
				if capped < want-1 {
					t.Fatalf("dim %d: capped count %d below limit %d", dim, capped, want-1)
				}
			}
		}
	}
}
