package index

import (
	"encoding/binary"
	"hash/maphash"
	"math"

	"dod/internal/errs"
	"dod/internal/geom"
)

// CountScratch holds the per-caller buffers of a NeighborCountScratch
// query: the query cell coordinates, the ring-walk cursor and offset
// odometer, and the cell-key encoding buffer. NeighborCount allocates these
// per call; batch scoring issues thousands of queries per request, so each
// scoring worker owns one CountScratch and the steady-state query path
// allocates nothing. A CountScratch must not be shared between concurrent
// queries; the Index itself remains safe for concurrent use.
type CountScratch struct {
	center []int64
	cur    []int64
	off    []int64
	keyBuf []byte
}

// NewCountScratch returns an empty scratch; buffers are sized lazily to the
// index dimensionality on first use.
func NewCountScratch() *CountScratch { return &CountScratch{} }

func (sc *CountScratch) grow(dim int) {
	if cap(sc.center) < dim {
		sc.center = make([]int64, dim)
		sc.cur = make([]int64, dim)
		sc.off = make([]int64, dim)
		sc.keyBuf = make([]byte, dim*8)
	}
	sc.center = sc.center[:dim]
	sc.cur = sc.cur[:dim]
	sc.off = sc.off[:dim]
	sc.keyBuf = sc.keyBuf[:dim*8]
}

// putKey encodes cell coordinates into buf with the same little-endian
// layout as key(), so lookups through either path address the same cells.
func putKey(buf []byte, c []int64) []byte {
	for i, v := range c {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(v))
	}
	return buf
}

// readCellBuf is readCell keyed by an encoded byte buffer: the maphash runs
// over the raw bytes (identical to hashing the cellKey string) and the map
// probe converts in place, so no key string is materialized.
func (ix *Index) readCellBuf(buf []byte, fn func(pts []geom.Point)) {
	var h maphash.Hash
	h.SetSeed(ix.seed)
	h.Write(buf)
	sh := &ix.shards[h.Sum64()%uint64(len(ix.shards))]
	sh.mu.RLock()
	if c := sh.cells[cellKey(buf)]; c != nil {
		fn(c.points)
	}
	sh.mu.RUnlock()
}

// ringCellsSc enumerates the cells at exactly Chebyshev distance radius from
// sc.center into fn, in the same lexicographic order as RingCells, using the
// scratch's odometer instead of recursion — no closure or cursor allocation.
// The slice passed to fn aliases sc.cur.
func (sc *CountScratch) ringCellsSc(radius int, fn func(cell []int64)) {
	if radius == 0 {
		fn(sc.center)
		return
	}
	center, cur, off := sc.center, sc.cur, sc.off
	d := len(center)
	for i := range off {
		off[i] = int64(-radius)
	}
	for {
		surface, valid := false, true
		for i := 0; i < d; i++ {
			o, v := off[i], center[i]
			if o < 0 && v < math.MinInt64-o {
				valid = false // below the representable cell space
				break
			}
			if o > 0 && v > math.MaxInt64-o {
				valid = false // above the representable cell space
				break
			}
			cur[i] = v + o
			if o == int64(-radius) || o == int64(radius) {
				surface = true
			}
		}
		if valid && surface {
			fn(cur)
		}
		i := d - 1
		for ; i >= 0; i-- {
			off[i]++
			if off[i] <= int64(radius) {
				break
			}
			off[i] = int64(-radius)
		}
		if i < 0 {
			return
		}
	}
}

// NeighborCountScratch is NeighborCount with caller-owned buffers: same
// arguments, same result for every input (the early-termination bound makes
// the count order-independent, and the scratch ring walk visits the same
// cells as the allocating one). Use one scratch per goroutine; the index may
// be queried and mutated concurrently as usual.
func (ix *Index) NeighborCountScratch(sc *CountScratch, p geom.Point, limit int) (int, error) {
	if err := ix.checkDim(p); err != nil {
		return 0, err
	}
	if limit < 1 {
		return 0, errs.BadParams("NeighborCount limit must be >= 1, got %d", limit)
	}
	sc.grow(ix.dim)
	for i, v := range p.Coords {
		sc.center[i] = int64(math.Floor(v / ix.side))
	}
	count := 0
	depth := 0
	for radius := 0; radius <= 1 && count < limit; radius++ {
		depth = radius
		sc.ringCellsSc(radius, func(c []int64) {
			ix.readCellBuf(putKey(sc.keyBuf, c), func(pts []geom.Point) {
				for _, q := range pts {
					if q.ID != p.ID {
						count++
					}
				}
			})
		})
	}
	if count < limit {
		for radius := 2; radius <= ix.l2 && count < limit; radius++ {
			depth = radius
			sc.ringCellsSc(radius, func(c []int64) {
				if count >= limit {
					return
				}
				ix.readCellBuf(putKey(sc.keyBuf, c), func(pts []geom.Point) {
					for _, q := range pts {
						if count >= limit {
							return
						}
						if q.ID != p.ID && geom.WithinDist(p, q, ix.r) {
							count++
						}
					}
				})
			})
		}
	}
	if ix.met != nil {
		ix.met.counts.Inc()
		ix.met.ringDepth.Observe(float64(depth))
	}
	if count > limit {
		count = limit
	}
	return count, nil
}
