package index

import (
	"math"

	"dod/internal/errs"
	"dod/internal/geom"
)

// CountScratch holds the per-caller buffers of a scratch neighbor query:
// the query cell coordinates and the ring-walk cursor and offset odometer.
// NeighborCount allocates these per call; batch scoring issues thousands of
// queries per request, so each scoring worker owns one CountScratch and the
// steady-state query path allocates nothing. A CountScratch must not be
// shared between concurrent queries; the Index itself remains safe for
// concurrent use.
type CountScratch struct {
	center []int64
	cur    []int64
	off    []int64
}

// NewCountScratch returns an empty scratch; buffers are sized lazily to the
// index dimensionality on first use.
func NewCountScratch() *CountScratch { return &CountScratch{} }

func (sc *CountScratch) grow(dim int) {
	if cap(sc.center) < dim {
		sc.center = make([]int64, dim)
		sc.cur = make([]int64, dim)
		sc.off = make([]int64, dim)
	}
	sc.center = sc.center[:dim]
	sc.cur = sc.cur[:dim]
	sc.off = sc.off[:dim]
}

// ringCellsSc enumerates the cells at exactly Chebyshev distance radius from
// sc.center into fn, in the same lexicographic order as RingCells, using the
// scratch's odometer instead of recursion — no closure or cursor allocation.
// The slice passed to fn aliases sc.cur.
func (sc *CountScratch) ringCellsSc(radius int, fn func(cell []int64)) {
	if radius == 0 {
		fn(sc.center)
		return
	}
	center, cur, off := sc.center, sc.cur, sc.off
	d := len(center)
	for i := range off {
		off[i] = int64(-radius)
	}
	for {
		surface, valid := false, true
		for i := 0; i < d; i++ {
			o, v := off[i], center[i]
			if o < 0 && v < math.MinInt64-o {
				valid = false // below the representable cell space
				break
			}
			if o > 0 && v > math.MaxInt64-o {
				valid = false // above the representable cell space
				break
			}
			cur[i] = v + o
			if o == int64(-radius) || o == int64(radius) {
				surface = true
			}
		}
		if valid && surface {
			fn(cur)
		}
		i := d - 1
		for ; i >= 0; i-- {
			off[i]++
			if off[i] <= int64(radius) {
				break
			}
			off[i] = int64(-radius)
		}
		if i < 0 {
			return
		}
	}
}

// cellBeyondR reports whether every point of cell c is farther than r from
// p — the closest corner of the cell box [cᵢ·side, (cᵢ+1)·side) is already
// beyond r. Probing such a cell cannot contribute a neighbor (WithinDist is
// Dist² ≤ r², and every resident of c has Dist² ≥ the box minimum), so the
// ring walks skip the hash + lock + map probe entirely. In 2D roughly half
// of the 49-cell L2 neighborhood lies outside the r-disk, so the prune
// halves the dominant per-point cost of the serving ingest path.
func (ix *Index) cellBeyondR(p geom.Point, c []int64) bool {
	var d2 float64
	for i, v := range p.Coords {
		lo := float64(c[i]) * ix.side
		if v < lo {
			d := lo - v
			d2 += d * d
		} else if hi := lo + ix.side; v > hi {
			d := v - hi
			d2 += d * d
		}
	}
	return d2 > ix.r*ix.r
}

// NeighborsScratch is Neighbors with caller-owned buffers: it visits exactly
// the same points in the same order (ring by ring, lexicographic within a
// ring) but allocates nothing — the scratch ring walk carries the whole
// enumeration — and skips ring-2+ cells that lie wholly outside the r-disk.
// The sliding-window admission and eviction paths call this once per point,
// so the per-cell allocations of the plain walk dominated the serving-tier
// ingest profile before this variant existed. One scratch per goroutine.
func (ix *Index) NeighborsScratch(sc *CountScratch, p geom.Point, fn func(q geom.Point)) error {
	if err := ix.checkDim(p); err != nil {
		return err
	}
	if ix.met != nil {
		ix.met.scans.Inc()
	}
	sc.grow(ix.dim)
	for i, v := range p.Coords {
		sc.center[i] = int64(math.Floor(v / ix.side))
	}
	for radius := 0; radius <= ix.l2; radius++ {
		exact := radius > 1 // L1 block needs no distance checks
		sc.ringCellsSc(radius, func(c []int64) {
			if exact && ix.cellBeyondR(p, c) {
				return
			}
			ix.readCellCoords(c, func(pts []geom.Point) {
				for _, q := range pts {
					if q.ID == p.ID {
						continue
					}
					if !exact || geom.WithinDist(p, q, ix.r) {
						fn(q)
					}
				}
			})
		})
	}
	return nil
}

// NeighborCountScratch is NeighborCount with caller-owned buffers: same
// arguments, same result for every input (the early-termination bound makes
// the count order-independent, and the scratch ring walk visits the same
// cells as the allocating one). Use one scratch per goroutine; the index may
// be queried and mutated concurrently as usual.
func (ix *Index) NeighborCountScratch(sc *CountScratch, p geom.Point, limit int) (int, error) {
	if err := ix.checkDim(p); err != nil {
		return 0, err
	}
	if limit < 1 {
		return 0, errs.BadParams("NeighborCount limit must be >= 1, got %d", limit)
	}
	sc.grow(ix.dim)
	for i, v := range p.Coords {
		sc.center[i] = int64(math.Floor(v / ix.side))
	}
	count := 0
	depth := 0
	for radius := 0; radius <= 1 && count < limit; radius++ {
		depth = radius
		sc.ringCellsSc(radius, func(c []int64) {
			ix.readCellCoords(c, func(pts []geom.Point) {
				for _, q := range pts {
					if q.ID != p.ID {
						count++
					}
				}
			})
		})
	}
	if count < limit {
		for radius := 2; radius <= ix.l2 && count < limit; radius++ {
			depth = radius
			sc.ringCellsSc(radius, func(c []int64) {
				if count >= limit || ix.cellBeyondR(p, c) {
					return
				}
				ix.readCellCoords(c, func(pts []geom.Point) {
					for _, q := range pts {
						if count >= limit {
							return
						}
						if q.ID != p.ID && geom.WithinDist(p, q, ix.r) {
							count++
						}
					}
				})
			})
		}
	}
	if ix.met != nil {
		ix.met.counts.Inc()
		ix.met.ringDepth.Observe(float64(depth))
	}
	if count > limit {
		count = limit
	}
	return count, nil
}
