package index

import (
	"math/rand"
	"testing"

	"dod/internal/geom"
)

// TestNeighborCountScratchMatches cross-checks the scratch-based query
// against NeighborCount over random windows, dims and limits.
func TestNeighborCountScratchMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dim := range []int{1, 2, 3} {
		ix, err := New(Config{Dim: dim, R: 1.5, Shards: 4})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 400; i++ {
			coords := make([]float64, dim)
			for d := range coords {
				coords[d] = rng.Float64() * 12
			}
			if err := ix.Insert(geom.Point{ID: uint64(i), Coords: coords}); err != nil {
				t.Fatal(err)
			}
		}
		sc := NewCountScratch()
		for trial := 0; trial < 200; trial++ {
			coords := make([]float64, dim)
			for d := range coords {
				coords[d] = rng.Float64() * 12
			}
			p := geom.Point{ID: uint64(rng.Intn(500)), Coords: coords}
			limit := 1 + rng.Intn(12)
			want, err := ix.NeighborCount(p, limit)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ix.NeighborCountScratch(sc, p, limit)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("dim=%d trial=%d limit=%d: scratch %d, plain %d", dim, trial, limit, got, want)
			}
		}
	}
}

// TestNeighborCountScratchErrors pins the error contract parity.
func TestNeighborCountScratchErrors(t *testing.T) {
	ix, err := New(Config{Dim: 2, R: 1})
	if err != nil {
		t.Fatal(err)
	}
	sc := NewCountScratch()
	if _, err := ix.NeighborCountScratch(sc, geom.Point{ID: 1, Coords: []float64{1}}, 3); err == nil {
		t.Error("dim mismatch not reported")
	}
	if _, err := ix.NeighborCountScratch(sc, geom.Point{ID: 1, Coords: []float64{1, 2}}, 0); err == nil {
		t.Error("limit 0 not rejected")
	}
}

// TestNeighborCountScratchZeroAlloc is the reason the scratch exists: the
// steady-state query must not allocate.
func TestNeighborCountScratchZeroAlloc(t *testing.T) {
	ix, err := New(Config{Dim: 2, R: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := ix.Insert(geom.Point{ID: uint64(i), Coords: []float64{float64(i % 20), float64(i / 20)}}); err != nil {
			t.Fatal(err)
		}
	}
	sc := NewCountScratch()
	p := geom.Point{ID: 1000, Coords: []float64{7.5, 7.5}}
	ix.NeighborCountScratch(sc, p, 4) // warm the buffers
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := ix.NeighborCountScratch(sc, p, 4); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Errorf("NeighborCountScratch allocates %v per run, want 0", allocs)
	}
}

// TestRingCellsScratchOrder pins that the scratch odometer visits the exact
// cell sequence of RingCells, including overflow skipping at the int64 rim.
func TestRingCellsScratchOrder(t *testing.T) {
	const minI = -9223372036854775808
	cases := [][]int64{
		{0, 0},
		{5, -3},
		{minI + 1, 4},
		{9223372036854775807, 9223372036854775806},
		{1, 2, 3},
	}
	for _, center := range cases {
		for radius := 0; radius <= 3; radius++ {
			var want [][]int64
			RingCells(center, radius, func(c []int64) {
				want = append(want, append([]int64(nil), c...))
			})
			sc := NewCountScratch()
			sc.grow(len(center))
			copy(sc.center, center)
			var got [][]int64
			sc.ringCellsSc(radius, func(c []int64) {
				got = append(got, append([]int64(nil), c...))
			})
			if len(got) != len(want) {
				t.Fatalf("center=%v radius=%d: %d cells, want %d", center, radius, len(got), len(want))
			}
			for i := range got {
				for d := range got[i] {
					if got[i][d] != want[i][d] {
						t.Fatalf("center=%v radius=%d cell %d: got %v, want %v",
							center, radius, i, got[i], want[i])
					}
				}
			}
		}
	}
}
