// Package index provides a sharded, mutex-striped incremental grid index
// for online distance-threshold outlier detection.
//
// The batch Cell-Based detector (internal/detect) hashes a fixed dataset
// into a grid of cell side r/(2√d) once and then prunes whole cells. The
// serving path cannot rebuild that layout per request: points arrive and
// expire one at a time. Index keeps the same density-aware cell geometry
// resident and mutable:
//
//   - any two points whose cells are within Chebyshev distance 1 are at
//     most 2·(r/(2√d))·√d = r apart, so the L1 block is auto-accepted as
//     neighbors without a single distance computation (Lemma 4.2's inlier
//     rule, turned into a per-point counting shortcut);
//   - points whose cells are more than ⌈2√d⌉ apart are farther than r, so
//     ring expansion stops at the L2 radius (the outlier rule's cutoff).
//
// NeighborCount therefore decides a point's inlier/outlier status by
// expanding rings outward from its cell and terminating as soon as k
// neighbors are certain — without ever scanning the full window.
//
// Cells live in an open (unbounded) integer coordinate space, so the index
// needs no domain rectangle and survives arbitrary drift. Cells are hashed
// onto a fixed set of shards, each guarded by its own RWMutex, so inserts,
// removals and queries on different regions of space proceed in parallel.
package index

import (
	"math"
	"math/rand/v2"
	"sync"

	"dod/internal/detect"
	"dod/internal/errs"
	"dod/internal/geom"
	"dod/internal/obs"
)

// DefaultShards is the shard count used when Config.Shards is zero.
const DefaultShards = 16

// Config sizes an Index.
type Config struct {
	// Dim is the point dimensionality; all inserted and queried points
	// must match.
	Dim int
	// R is the neighbor distance threshold; it fixes the cell side
	// r/(2√d) and cannot change after construction.
	R float64
	// Shards is the number of independently locked shards; default
	// DefaultShards. More shards admit more concurrent mutators at the
	// cost of a little memory.
	Shards int
	// Obs, when non-nil, receives the index's metrics: query counters and
	// the ring-expansion depth histogram. Nil disables instrumentation at
	// zero hot-path cost beyond one pointer check.
	Obs *obs.Registry
}

// cellKey is the flattened string form of a cell's integer coordinates.
// The live cell map is keyed by a 64-bit coordinate hash instead (string
// keys cost a re-hash plus a memory compare on every one of the ~(2·L2+1)^d
// probes a neighbor walk issues); the string form survives for tests and
// diagnostics that want a canonical printable key.
type cellKey string

// cell holds the points currently hashed to one grid cell, its exact
// coordinates, and an overflow chain for the astronomically rare case of
// two coordinate vectors sharing a 64-bit hash. Correctness never leans on
// hash quality: every probe verifies coords before touching points.
type cell struct {
	coords []int64
	next   *cell
	points []geom.Point
}

// shard is one lock stripe: a fraction of the cells, guarded by one mutex.
type shard struct {
	mu    sync.RWMutex
	cells map[uint64]*cell
	n     int // points resident in this shard
}

// Index is a sharded incremental grid index. All methods are safe for
// concurrent use. Mutations on distinct shards do not contend; queries
// take only read locks.
type Index struct {
	dim    int
	r      float64
	side   float64 // cell side r/(2√d)
	l2     int     // Chebyshev radius beyond which no neighbor exists
	shards []shard
	seed   uint64        // per-index stripe-hash seed
	met    *indexMetrics // nil when unobserved
}

// indexMetrics are the obs instruments of one Index.
type indexMetrics struct {
	inserts   *obs.Counter
	removes   *obs.Counter
	counts    *obs.Counter   // NeighborCount queries
	scans     *obs.Counter   // Neighbors enumerations
	ringDepth *obs.Histogram // terminal expansion radius per NeighborCount
}

// register creates the index instruments on reg.
func registerMetrics(reg *obs.Registry, ix *Index) *indexMetrics {
	reg.GaugeFunc("dod_index_points",
		"points currently resident in the grid index",
		func() float64 { return float64(ix.Len()) })
	reg.GaugeFunc("dod_index_shards",
		"lock-stripe count of the grid index",
		func() float64 { return float64(len(ix.shards)) })
	return &indexMetrics{
		inserts: reg.Counter("dod_index_inserts_total", "points inserted into the grid index"),
		removes: reg.Counter("dod_index_removes_total", "points removed from the grid index"),
		counts: reg.Counter("dod_index_queries_total",
			"index neighbor queries", obs.L("op", "count")),
		scans: reg.Counter("dod_index_queries_total",
			"index neighbor queries", obs.L("op", "enumerate")),
		ringDepth: reg.Histogram("dod_index_ring_depth",
			"terminal Chebyshev ring radius reached per NeighborCount query",
			obs.LinearBuckets(0, 1, ix.l2+1)),
	}
}

// New builds an empty index for dim-dimensional points with distance
// threshold r.
func New(cfg Config) (*Index, error) {
	if cfg.Dim < 1 {
		return nil, errs.BadParams("index dimension must be >= 1, got %d", cfg.Dim)
	}
	if cfg.R <= 0 {
		return nil, errs.BadParams("distance threshold r must be positive, got %g", cfg.R)
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	ix := &Index{
		dim:    cfg.Dim,
		r:      cfg.R,
		side:   detect.CellSide(cfg.Dim, cfg.R),
		l2:     detect.L2Radius(cfg.Dim),
		shards: make([]shard, shards),
		seed:   rand.Uint64(),
	}
	for i := range ix.shards {
		ix.shards[i].cells = make(map[uint64]*cell)
	}
	if cfg.Obs != nil {
		ix.met = registerMetrics(cfg.Obs, ix)
	}
	return ix, nil
}

// Dim returns the index dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// R returns the neighbor distance threshold.
func (ix *Index) R() float64 { return ix.r }

// coords maps a point to its integer cell coordinate vector.
func (ix *Index) coords(p geom.Point) []int64 {
	return ix.cellCoordsInto(make([]int64, 0, ix.dim), p)
}

// cellCoordsInto computes p's cell coordinates into buf; the hot paths pass
// a stack-backed buffer so the per-point coordinate vector is free.
func (ix *Index) cellCoordsInto(buf []int64, p geom.Point) []int64 {
	for _, v := range p.Coords {
		buf = append(buf, int64(math.Floor(v/ix.side)))
	}
	return buf
}

// key flattens integer cell coordinates into a canonical printable form;
// tests use it to compare cell identities. The live map is keyed by
// cellHash instead.
func key(c []int64) cellKey {
	buf := make([]byte, 0, len(c)*8)
	for _, v := range c {
		u := uint64(v)
		buf = append(buf, byte(u), byte(u>>8), byte(u>>16), byte(u>>24),
			byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	return cellKey(buf)
}

// cellHash folds a cell coordinate vector into the 64-bit key of the cell
// map, seeded per index. An FNV-style xor-multiply over whole coordinates
// inlines into the probe loop; hash quality only affects performance, never
// correctness, because cells carry their exact coordinates and an overflow
// chain.
func (ix *Index) cellHash(c []int64) uint64 {
	h := ix.seed ^ 14695981039346656037
	for _, v := range c {
		h = (h ^ uint64(v)) * 1099511628211
	}
	return h
}

// sameCoords reports whether two equal-length coordinate vectors match —
// the exactness guard behind every hash-keyed cell probe.
func sameCoords(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkDim validates a point's dimensionality against the index. Failures
// match errs.ErrDimMismatch.
func (ix *Index) checkDim(p geom.Point) error {
	if p.Dim() != ix.dim {
		return &errs.DimMismatchError{ID: p.ID, Got: p.Dim(), Want: ix.dim}
	}
	return nil
}

// Insert adds p to the index. The caller is responsible for ID uniqueness;
// the sliding-window layer above enforces it. The retained coordinate copy
// is only materialized when the insert creates a new cell; the common case
// (a resident cell) probes through a stack buffer.
func (ix *Index) Insert(p geom.Point) error {
	if err := ix.checkDim(p); err != nil {
		return err
	}
	var a [8]int64
	cc := ix.cellCoordsInto(a[:0], p)
	h := ix.cellHash(cc)
	sh := &ix.shards[h%uint64(len(ix.shards))]
	sh.mu.Lock()
	c := sh.cells[h]
	for c != nil && !sameCoords(c.coords, cc) {
		c = c.next
	}
	if c == nil {
		c = &cell{coords: append([]int64(nil), cc...), next: sh.cells[h]}
		sh.cells[h] = c
	}
	c.points = append(c.points, p)
	sh.n++
	sh.mu.Unlock()
	if ix.met != nil {
		ix.met.inserts.Inc()
	}
	return nil
}

// Remove deletes the point with p's ID from the cell containing p's
// coordinates. It reports whether the point was found.
func (ix *Index) Remove(p geom.Point) bool {
	if p.Dim() != ix.dim {
		return false
	}
	var a [8]int64
	cc := ix.cellCoordsInto(a[:0], p)
	h := ix.cellHash(cc)
	sh := &ix.shards[h%uint64(len(ix.shards))]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var prev *cell
	c := sh.cells[h]
	for c != nil && !sameCoords(c.coords, cc) {
		prev, c = c, c.next
	}
	if c == nil {
		return false
	}
	for i := range c.points {
		if c.points[i].ID == p.ID {
			last := len(c.points) - 1
			c.points[i] = c.points[last]
			c.points = c.points[:last]
			if len(c.points) == 0 {
				// Unlink the emptied cell from its hash chain.
				switch {
				case prev != nil:
					prev.next = c.next
				case c.next != nil:
					sh.cells[h] = c.next
				default:
					delete(sh.cells, h)
				}
			}
			sh.n--
			if ix.met != nil {
				ix.met.removes.Inc()
			}
			return true
		}
	}
	return false
}

// Len returns the number of points currently indexed.
func (ix *Index) Len() int {
	total := 0
	for i := range ix.shards {
		sh := &ix.shards[i]
		sh.mu.RLock()
		total += sh.n
		sh.mu.RUnlock()
	}
	return total
}

// ShardOccupancy returns the number of resident points per shard, in shard
// order — the /statsz occupancy gauge.
func (ix *Index) ShardOccupancy() []int {
	occ := make([]int, len(ix.shards))
	for i := range ix.shards {
		sh := &ix.shards[i]
		sh.mu.RLock()
		occ[i] = sh.n
		sh.mu.RUnlock()
	}
	return occ
}

// readCellCoords calls fn under the owning stripe's read lock with the
// points of the cell at coordinates cc, if the cell exists.
func (ix *Index) readCellCoords(cc []int64, fn func(pts []geom.Point)) {
	h := ix.cellHash(cc)
	sh := &ix.shards[h%uint64(len(ix.shards))]
	sh.mu.RLock()
	c := sh.cells[h]
	for c != nil && !sameCoords(c.coords, cc) {
		c = c.next
	}
	if c != nil {
		fn(c.points)
	}
	sh.mu.RUnlock()
}

// RingCells calls fn with the integer coordinates of every cell whose
// Chebyshev distance from center is exactly radius (or, for radius 0, the
// center itself). The coordinate slice is reused between calls; callers
// that retain it must copy.
//
// Cell coordinates near the int64 extremes are handled without overflow:
// an offset that would land beyond MinInt64/MaxInt64 names a cell that
// cannot exist in the coordinate space and is skipped rather than wrapped
// (wrapping would alias a far-away cell and corrupt neighbor counts).
func RingCells(center []int64, radius int, fn func(cell []int64)) {
	if radius == 0 {
		fn(center)
		return
	}
	cur := make([]int64, len(center))
	var rec func(dim int, onSurface bool)
	rec = func(dim int, onSurface bool) {
		if dim == len(center) {
			if onSurface {
				fn(cur)
			}
			return
		}
		v := center[dim]
		for off := -radius; off <= radius; off++ {
			if off < 0 && v < math.MinInt64+int64(-off) {
				continue // below the representable cell space
			}
			if off > 0 && v > math.MaxInt64-int64(off) {
				continue // above the representable cell space
			}
			cur[dim] = v + int64(off)
			rec(dim+1, onSurface || off == -radius || off == radius)
		}
	}
	rec(0, false)
}

// NeighborCount counts points within distance r of p (excluding any point
// sharing p's ID), early-terminating once the count reaches limit. It
// returns min(true count, limit). With limit = k this decides the
// distance-threshold verdict: a return < k means p is an outlier with
// respect to the current index contents.
//
// The L1 block (Chebyshev radius 1) is auto-accepted without distance
// computations; rings 2..⌈2√d⌉ are expanded outward with exact checks and
// the scan stops at whichever comes first, limit neighbors or the L2 radius.
func (ix *Index) NeighborCount(p geom.Point, limit int) (int, error) {
	if err := ix.checkDim(p); err != nil {
		return 0, err
	}
	if limit < 1 {
		return 0, errs.BadParams("NeighborCount limit must be >= 1, got %d", limit)
	}
	center := ix.coords(p)
	count := 0
	depth := 0 // deepest ring entered; feeds the ring-depth histogram
	// L1 auto-accept: every point in the radius-1 block is within r.
	for radius := 0; radius <= 1 && count < limit; radius++ {
		depth = radius
		RingCells(center, radius, func(c []int64) {
			ix.readCellCoords(c, func(pts []geom.Point) {
				for _, q := range pts {
					if q.ID != p.ID {
						count++
					}
				}
			})
		})
	}
	if count < limit {
		// Ring expansion with exact distance checks out to the L2 cutoff.
		for radius := 2; radius <= ix.l2 && count < limit; radius++ {
			depth = radius
			RingCells(center, radius, func(c []int64) {
				if count >= limit {
					return
				}
				ix.readCellCoords(c, func(pts []geom.Point) {
					for _, q := range pts {
						if count >= limit {
							return
						}
						if q.ID != p.ID && geom.WithinDist(p, q, ix.r) {
							count++
						}
					}
				})
			})
		}
	}
	if ix.met != nil {
		ix.met.counts.Inc()
		ix.met.ringDepth.Observe(float64(depth))
	}
	if count > limit {
		count = limit
	}
	return count, nil
}

// L2 returns the Chebyshev cell radius beyond which no point can be a
// neighbor (⌈2√d⌉ — the ring-expansion cutoff of Lemma 3.1).
func (ix *Index) L2() int { return ix.l2 }

// CellCoords returns p's integer grid cell coordinate vector — the unit of
// ownership in the sharded serving tier: a cell's points always live
// together on one shard, and a point's verdict depends only on cells
// within Chebyshev distance L2() of its own (Lemma 3.1).
func (ix *Index) CellCoords(p geom.Point) []int64 { return ix.coords(p) }

// NeighborhoodCells calls fn with every cell coordinate whose Chebyshev
// distance from p's cell is at most the L2 cutoff — the complete set of
// cells that can contain neighbors of p. The slice passed to fn is reused;
// copy it to retain. Enumeration order is deterministic (ring by ring,
// lexicographic within a ring).
func (ix *Index) NeighborhoodCells(p geom.Point, fn func(cell []int64)) {
	center := ix.coords(p)
	for radius := 0; radius <= ix.l2; radius++ {
		RingCells(center, radius, fn)
	}
}

// chebDist returns the Chebyshev (L∞) distance between two cell coordinate
// vectors, saturating at math.MaxUint64 rather than overflowing for cells
// at opposite int64 extremes.
func chebDist(a, b []int64) uint64 {
	var max uint64
	for i := range a {
		var d uint64
		if a[i] >= b[i] {
			d = uint64(a[i]) - uint64(b[i]) // two's complement difference magnitude
		} else {
			d = uint64(b[i]) - uint64(a[i])
		}
		if d > max {
			max = d
		}
	}
	return max
}

// NeighborsInCells visits the indexed neighbors of p that reside in the
// given cells, returning how many were found. It applies exactly the same
// acceptance rule as Neighbors/NeighborCount — points in cells within
// Chebyshev distance 1 of p's own cell are neighbors by construction (the
// L1 auto-accept of Lemma 4.2) and points in farther cells get an exact
// distance check — so splitting one neighborhood enumeration across several
// NeighborsInCells calls over a partition of the cells yields bit-identical
// counts to a single Neighbors scan.
//
// fn may be nil (pure counting). When limit > 0 and fn is nil the count
// early-terminates at limit, mirroring NeighborCount; with fn non-nil the
// scan is always exhaustive so callers maintaining per-point deltas see
// every neighbor.
func (ix *Index) NeighborsInCells(p geom.Point, cells [][]int64, limit int, fn func(q geom.Point)) (int, error) {
	if err := ix.checkDim(p); err != nil {
		return 0, err
	}
	center := ix.coords(p)
	count := 0
	for _, c := range cells {
		if fn == nil && limit > 0 && count >= limit {
			break
		}
		exact := chebDist(center, c) > 1
		ix.readCellCoords(c, func(pts []geom.Point) {
			for _, q := range pts {
				if fn == nil && limit > 0 && count >= limit {
					return
				}
				if q.ID == p.ID {
					continue
				}
				if exact && !geom.WithinDist(p, q, ix.r) {
					continue
				}
				count++
				if fn != nil {
					fn(q)
				}
			}
		})
	}
	if fn == nil && limit > 0 && count > limit {
		count = limit
	}
	return count, nil
}

// Neighbors calls fn with every indexed point within distance r of p,
// excluding any point sharing p's ID. Unlike NeighborCount it never
// terminates early — the sliding-window layer uses it to maintain exact
// per-point neighbor counts under eviction.
func (ix *Index) Neighbors(p geom.Point, fn func(q geom.Point)) error {
	if err := ix.checkDim(p); err != nil {
		return err
	}
	if ix.met != nil {
		ix.met.scans.Inc()
	}
	center := ix.coords(p)
	for radius := 0; radius <= ix.l2; radius++ {
		exact := radius > 1 // L1 block needs no distance checks
		RingCells(center, radius, func(c []int64) {
			ix.readCellCoords(c, func(pts []geom.Point) {
				for _, q := range pts {
					if q.ID == p.ID {
						continue
					}
					if !exact || geom.WithinDist(p, q, ix.r) {
						fn(q)
					}
				}
			})
		})
	}
	return nil
}
