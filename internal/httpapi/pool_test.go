package httpapi

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"
)

// ndjsonBody renders n canonical point lines plus a few non-canonical ones
// the fast parser must hand to the oracle.
func ndjsonBody(n int, withOddities bool) []byte {
	var b bytes.Buffer
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `{"id":%d,"coords":[%g,%g,%g]}`+"\n", i+1, rng.Float64(), rng.Float64()*10, -rng.Float64())
	}
	if withOddities {
		b.WriteString("{\"coords\": [1, 2, 3], \"id\": 42000}\n") // reordered + spaces: oracle path
		b.WriteString("not json at all\n")                        // per-line error
		b.WriteString("\n")                                       // blank: skipped
	}
	return b.Bytes()
}

func bodyRequest(body []byte) *http.Request {
	return &http.Request{Body: io.NopCloser(bytes.NewReader(body))}
}

// TestReadBatchPooledParity pins the fast path to ReadBatch's behavior:
// identical points, identical per-line error placement and text.
func TestReadBatchPooledParity(t *testing.T) {
	body := ndjsonBody(200, true)
	want, err := ReadBatch(bodyRequest(body), 1000)
	if err != nil {
		t.Fatalf("ReadBatch: %v", err)
	}
	got, err := ReadBatchPooled(bodyRequest(body), 1000)
	if err != nil {
		t.Fatalf("ReadBatchPooled: %v", err)
	}
	defer got.Release()
	if len(got.Items) != len(want) {
		t.Fatalf("item count %d != %d", len(got.Items), len(want))
	}
	for i := range want {
		w, g := want[i], got.Items[i]
		if (w.Err == nil) != (g.Err == nil) {
			t.Fatalf("line %d: err presence mismatch: %v vs %v", i, w.Err, g.Err)
		}
		if w.Err != nil {
			if w.Err.Error() != g.Err.Error() {
				t.Fatalf("line %d: error text %q != %q", i, g.Err.Error(), w.Err.Error())
			}
			continue
		}
		if w.Pt.ID != g.Pt.ID || len(w.Pt.Coords) != len(g.Pt.Coords) {
			t.Fatalf("line %d: point mismatch: %+v vs %+v", i, g.Pt, w.Pt)
		}
		for d := range w.Pt.Coords {
			if w.Pt.Coords[d] != g.Pt.Coords[d] {
				t.Fatalf("line %d coord %d: %v != %v", i, d, g.Pt.Coords[d], w.Pt.Coords[d])
			}
		}
	}
	// Batch cap classifies identically.
	if _, err := ReadBatchPooled(bodyRequest(body), 10); err == nil || !strings.Contains(err.Error(), "10") {
		t.Fatalf("expected batch-too-large error, got %v", err)
	}
}

// discardResponseWriter is the cheapest possible sink for encoder guards.
type discardResponseWriter struct{ h http.Header }

func (d *discardResponseWriter) Header() http.Header         { return d.h }
func (d *discardResponseWriter) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardResponseWriter) WriteHeader(int)             {}

// TestIngestWirePathAllocs is the steady-state allocation guard for the
// serving hot path: parsing a canonical 1000-line batch and encoding its
// 1000 verdicts must cost (amortized) well under one allocation per line —
// the pools and the wirejson codec carry the whole exchange.
func TestIngestWirePathAllocs(t *testing.T) {
	const lines = 1000
	body := ndjsonBody(lines, false)

	// Warm the pools so the guard measures steady state, not first touch.
	for i := 0; i < 3; i++ {
		b, err := ReadBatchPooled(bodyRequest(body), lines+1)
		if err != nil {
			t.Fatal(err)
		}
		b.Release()
	}
	perCall := testing.AllocsPerRun(50, func() {
		b, err := ReadBatchPooled(bodyRequest(body), lines+1)
		if err != nil {
			t.Fatal(err)
		}
		b.Release()
	})
	// The request wrapper itself costs a couple of allocations
	// (NopCloser + Reader); the parse must add nothing per line.
	if perLine := perCall / lines; perLine > 0.05 {
		t.Errorf("ReadBatchPooled: %.1f allocs per %d-line call (%.4f/line), want ~0/line", perCall, lines, perLine)
	}

	verdicts := GetVerdicts(lines)
	for i := range verdicts {
		verdicts[i] = VerdictLine{ID: uint64(i + 1), Seq: uint64(i + 1), Neighbors: i % 7, Outlier: i%3 == 0}
	}
	w := &discardResponseWriter{h: make(http.Header)}
	WriteVerdicts(w, verdicts) // warm the response buffer pool
	perCall = testing.AllocsPerRun(50, func() { WriteVerdicts(w, verdicts) })
	if perLine := perCall / lines; perLine > 0.05 {
		t.Errorf("WriteVerdicts: %.1f allocs per %d-line call (%.4f/line), want ~0/line", perCall, lines, perLine)
	}
	PutVerdicts(verdicts)

	scores := GetScores(lines)
	for i := range scores {
		scores[i] = ScoreLine{ID: uint64(i + 1), Neighbors: i % 5, Outlier: i%2 == 0}
	}
	WriteScores(w, scores)
	perCall = testing.AllocsPerRun(50, func() { WriteScores(w, scores) })
	if perLine := perCall / lines; perLine > 0.05 {
		t.Errorf("WriteScores: %.1f allocs per %d-line call (%.4f/line), want ~0/line", perCall, lines, perLine)
	}
	PutScores(scores)
}
