package httpapi

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"dod/internal/errs"
	"dod/internal/geom"
	"dod/internal/wirejson"
)

// Batch is one pooled parse of an NDJSON request body. Items' coords alias
// the batch's float arena, so the batch must stay alive (no Release) until
// the handler is done with every point; window code clones points before
// retaining them, which keeps that lifetime one request wide.
type Batch struct {
	Items []BatchItem

	arena  []float64 // backing store for fast-path coords
	buf    []byte    // scanner's initial buffer
	pooled bool      // false for hand-built batches (legacy wire mode)
}

var batchPool = sync.Pool{
	New: func() any {
		return &Batch{
			Items:  make([]BatchItem, 0, 1024),
			arena:  make([]float64, 0, 8*1024),
			buf:    make([]byte, 64*1024),
			pooled: true,
		}
	},
}

// ReadBatchPooled is ReadBatch on the zero-allocation fast path: pooled
// scanner buffer, wirejson line parser with per-line fallback to the
// encoding/json oracle (identical accept/reject behavior and error text),
// and a pooled coords arena shared by the whole batch. Request-level
// failures classify exactly as ReadBatch's. Callers must Release the batch
// after writing the response.
func ReadBatchPooled(r *http.Request, maxBatch int) (*Batch, error) {
	b := batchPool.Get().(*Batch)
	b.Items = b.Items[:0]
	b.arena = b.arena[:0]
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(b.buf, MaxLineBytes)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if len(b.Items) >= maxBatch {
			b.Release()
			return nil, &errs.BatchTooLargeError{Limit: maxBatch}
		}
		start := len(b.arena)
		if id, arena, ok := wirejson.ParsePoint(line, b.arena); ok {
			b.arena = arena
			coords := b.arena[start:len(b.arena):len(b.arena)]
			b.Items = append(b.Items, BatchItem{Pt: geom.Point{ID: id, Coords: coords}})
			continue
		}
		// Non-canonical line: the oracle decides, with its own error text.
		var pl PointLine
		if err := json.Unmarshal(line, &pl); err != nil {
			b.Items = append(b.Items, BatchItem{Err: fmt.Errorf("malformed point line: %v", err)})
			continue
		}
		b.Items = append(b.Items, BatchItem{Pt: geom.Point{ID: pl.ID, Coords: pl.Coords}})
	}
	if err := sc.Err(); err != nil {
		b.Release()
		// %w: WriteBatchError classifies by unwrapping, as in ReadBatch.
		return nil, fmt.Errorf("reading body: %w", err)
	}
	return b, nil
}

// Release returns the batch's buffers to the pool. Items and their coords
// are invalid afterwards. A no-op for hand-built batches.
func (b *Batch) Release() {
	if !b.pooled {
		return
	}
	clear(b.Items) // drop error references before pooling
	batchPool.Put(b)
}
