package httpapi

import (
	"net"
	"net/http"
	"time"
)

// NewTransport builds the tuned transport shared by every serving-tier
// loopback client (router→shard, shard→shard). http.DefaultTransport keeps
// only two idle connections per host, so a router fanning batches out to a
// handful of shards reconnects constantly under load; the serving hops are
// few, long-lived, and high-rate, which wants a deep per-host idle pool.
// Router and shard constructors use this when no custom Transport is
// configured, and the fault-injection seam wraps it the same way it wraps
// any caller-supplied RoundTripper.
func NewTransport() *http.Transport {
	return &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   30 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		ForceAttemptHTTP2:     true,
		MaxIdleConns:          512,
		MaxIdleConnsPerHost:   128,
		IdleConnTimeout:       90 * time.Second,
		TLSHandshakeTimeout:   10 * time.Second,
		ExpectContinueTimeout: 1 * time.Second,
	}
}
