// Package httpapi holds the NDJSON batch plumbing shared by the serving
// tiers: the single-process server (internal/serve), its sharded variant,
// and the cluster router (internal/router). One request body is one batch —
// each non-empty line a point, each response line a verdict or score at the
// same index — and every tier classifies malformed input identically, so a
// client cannot tell from an error body which tier rejected it:
//
//	413 "body_too_large"   the body exceeded the byte cap (MaxBytesReader)
//	400 "batch_too_large"  the body exceeded the line cap (errs.ErrBatchTooLarge)
//	408 "read_timeout"     the client stalled the body read past the deadline
//	400 "bad_request"      anything else unreadable at request level
//
// Error bodies are structured JSON ({"error","message","request_id"}) and
// echo the caller's X-Dod-Request-Id so failures correlate across tiers.
package httpapi

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"dod/internal/errs"
	"dod/internal/geom"
)

// HeaderRequestID is the request correlation header. The router mints one
// per client request and derives per-line idempotency keys from it; every
// tier echoes it in error bodies.
const HeaderRequestID = "X-Dod-Request-Id"

// MaxLineBytes bounds one NDJSON line (high-dimensional points are long).
const MaxLineBytes = 1 << 20

// PointLine is the NDJSON wire form of a point.
type PointLine struct {
	ID     uint64    `json:"id"`
	Coords []float64 `json:"coords"`
}

// BatchItem is one parsed batch line: either a point or that line's parse
// error. Per-line failures keep their slot so responses stay index-aligned
// with the request body.
type BatchItem struct {
	Pt  geom.Point
	Err error
}

// ReadBatch parses up to maxBatch non-empty NDJSON point lines from the
// request body. A parse failure on a line is recorded as that item's Err;
// request-level failures — an over-limit batch (errs.ErrBatchTooLarge), an
// oversize body (*http.MaxBytesError via the wrapped scanner error), a
// stalled read — abort the whole request and classify in WriteBatchError.
func ReadBatch(r *http.Request, maxBatch int) ([]BatchItem, error) {
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 64*1024), MaxLineBytes)
	var items []BatchItem
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if len(items) >= maxBatch {
			return nil, &errs.BatchTooLargeError{Limit: maxBatch}
		}
		var pl PointLine
		if err := json.Unmarshal(line, &pl); err != nil {
			items = append(items, BatchItem{Err: fmt.Errorf("malformed point line: %v", err)})
			continue
		}
		items = append(items, BatchItem{Pt: geom.Point{ID: pl.ID, Coords: pl.Coords}})
	}
	if err := sc.Err(); err != nil {
		// %w: WriteBatchError classifies by unwrapping (*http.MaxBytesError
		// means 413, a context error means 408).
		return nil, fmt.Errorf("reading body: %w", err)
	}
	return items, nil
}

// WriteBatchError classifies a ReadBatch failure into the structured HTTP
// error shape shared by every tier.
func WriteBatchError(w http.ResponseWriter, r *http.Request, err error) {
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &tooBig):
		WriteError(w, r, http.StatusRequestEntityTooLarge, "body_too_large",
			fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
	case errors.Is(err, errs.ErrBatchTooLarge):
		WriteError(w, r, http.StatusBadRequest, "batch_too_large", err.Error())
	case r.Context().Err() != nil:
		WriteError(w, r, http.StatusRequestTimeout, "read_timeout", "request body read timed out")
	default:
		WriteError(w, r, http.StatusBadRequest, "bad_request", err.Error())
	}
}

// WriteError emits the serving tiers' machine-readable error shape,
// carrying the request's correlation ID when the caller sent one.
func WriteError(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct { //nolint:errcheck
		Error     string `json:"error"`
		Message   string `json:"message"`
		RequestID string `json:"request_id,omitempty"`
	}{Error: code, Message: msg, RequestID: r.Header.Get(HeaderRequestID)})
}

// WriteNDJSON streams n lines through one buffered encoder.
func WriteNDJSON(w http.ResponseWriter, n int, line func(enc *json.Encoder, i int) error) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := 0; i < n; i++ {
		if err := line(enc, i); err != nil {
			return
		}
	}
	bw.Flush()
}
