package httpapi

import (
	"net/http"
	"sync"

	"dod/internal/wirejson"
)

// VerdictLine answers one ingest line. Both serving tiers emit this exact
// shape — the sharded E2E contract is a byte-identical response stream, so
// the struct (and its wirejson fast encoder) lives in the shared package.
type VerdictLine struct {
	ID        uint64 `json:"id"`
	Seq       uint64 `json:"seq,omitempty"`
	Neighbors int    `json:"neighbors"`
	Outlier   bool   `json:"outlier"`
	Evicted   int    `json:"evicted,omitempty"`
	Error     string `json:"error,omitempty"`
}

// ScoreLine answers one score line.
type ScoreLine struct {
	ID        uint64 `json:"id"`
	Neighbors int    `json:"neighbors"`
	Outlier   bool   `json:"outlier"`
	Error     string `json:"error,omitempty"`
}

// respBufPool recycles whole-response encode buffers; one response is one
// buffered Write, so buffers grow to the largest batch seen and stick.
var respBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 64*1024); return &b }}

// WriteVerdicts encodes verdict lines through the wirejson fast encoder
// into one pooled buffer and writes the response in a single call. The
// bytes are identical to streaming each line through a json.Encoder (the
// legacy path, still available via WriteNDJSON).
func WriteVerdicts(w http.ResponseWriter, lines []VerdictLine) {
	bp := respBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	for i := range lines {
		l := &lines[i]
		buf = wirejson.AppendVerdict(buf, l.ID, l.Seq, l.Neighbors, l.Outlier, l.Evicted, l.Error)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Write(buf) //nolint:errcheck // client gone mid-response is not actionable
	*bp = buf
	respBufPool.Put(bp)
}

// WriteScores is WriteVerdicts for score lines.
func WriteScores(w http.ResponseWriter, lines []ScoreLine) {
	bp := respBufPool.Get().(*[]byte)
	buf := (*bp)[:0]
	for i := range lines {
		l := &lines[i]
		buf = wirejson.AppendScore(buf, l.ID, l.Neighbors, l.Outlier, l.Error)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Write(buf) //nolint:errcheck
	*bp = buf
	respBufPool.Put(bp)
}

var verdictsPool = sync.Pool{New: func() any { s := make([]VerdictLine, 0, 1024); return &s }}
var scoresPool = sync.Pool{New: func() any { s := make([]ScoreLine, 0, 1024); return &s }}

// GetVerdicts returns a zeroed pooled slice of n verdict lines. Return it
// with PutVerdicts once the response is written.
func GetVerdicts(n int) []VerdictLine {
	sp := verdictsPool.Get().(*[]VerdictLine)
	s := *sp
	if cap(s) < n {
		s = make([]VerdictLine, n)
	} else {
		s = s[:n]
		clear(s)
	}
	return s
}

// PutVerdicts recycles a slice handed out by GetVerdicts.
func PutVerdicts(s []VerdictLine) {
	s = s[:0]
	verdictsPool.Put(&s)
}

// GetScores returns a zeroed pooled slice of n score lines.
func GetScores(n int) []ScoreLine {
	sp := scoresPool.Get().(*[]ScoreLine)
	s := *sp
	if cap(s) < n {
		s = make([]ScoreLine, n)
	} else {
		s = s[:n]
		clear(s)
	}
	return s
}

// PutScores recycles a slice handed out by GetScores.
func PutScores(s []ScoreLine) {
	s = s[:0]
	scoresPool.Put(&s)
}
