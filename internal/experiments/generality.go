package experiments

import (
	"fmt"
	"time"

	"dod/internal/dbscan"
	"dod/internal/knn"
	"dod/internal/loci"
	"dod/internal/synth"
)

// Generality exercises the Sec. III-B claim that the supporting-area
// framework generalizes beyond distance-threshold outliers: it runs
// DBSCAN, LOCI, and exact top-n kNN outlier detection both centralized and
// distributed on the same MA-like dataset, reports wall-clock for each,
// and verifies the distributed results match the centralized ones. This
// experiment has no counterpart figure in the paper; it validates the
// claim the paper states without evaluating.
func Generality(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	pts := synth.Segment(synth.Massachusetts, cfg.SegmentN, cfg.Seed+500)

	fig := &Figure{
		ID:     "Generality",
		Title:  "Sec. III-B adaptations: centralized vs distributed wall-clock",
		XLabel: "mode",
		YLabel: "wall-clock seconds (local machine)",
	}

	timed := func(fn func() error) (float64, error) {
		start := time.Now()
		err := fn()
		return time.Since(start).Seconds(), err
	}

	// DBSCAN.
	var centralClusters, distClusters int
	cSec, err := timed(func() error {
		res, err := dbscan.Cluster(pts, dbscan.Params{Eps: 5, MinPts: 4})
		centralClusters = res.NumClusters
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("dbscan centralized: %w", err)
	}
	dSec, err := timed(func() error {
		res, err := dbscan.ClusterDistributed(pts, dbscan.Params{Eps: 5, MinPts: 4}, dbscan.Options{
			NumPartitions: cfg.Partitions, NumReducers: cfg.Reducers, Seed: cfg.Seed,
		})
		if err == nil {
			distClusters = res.NumClusters
		}
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("dbscan distributed: %w", err)
	}
	fig.Series = append(fig.Series, Series{Label: "DBSCAN", Points: []Point{
		{X: "centralized", Y: cSec}, {X: "distributed", Y: dSec},
	}})
	if centralClusters != distClusters {
		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"WARNING: DBSCAN cluster counts diverge (%d vs %d)", centralClusters, distClusters))
	}

	// LOCI.
	var centralLOCI, distLOCI []uint64
	lociParams := loci.Params{R: 6}
	cSec, err = timed(func() error {
		centralLOCI, err = loci.Detect(pts, lociParams)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("loci centralized: %w", err)
	}
	dSec, err = timed(func() error {
		distLOCI, err = loci.DetectDistributed(pts, lociParams, loci.Options{
			NumPartitions: cfg.Partitions, NumReducers: cfg.Reducers, Seed: cfg.Seed,
		})
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("loci distributed: %w", err)
	}
	fig.Series = append(fig.Series, Series{Label: "LOCI", Points: []Point{
		{X: "centralized", Y: cSec}, {X: "distributed", Y: dSec},
	}})
	if !sameIDs(centralLOCI, distLOCI) {
		fig.Notes = append(fig.Notes, "WARNING: LOCI outlier sets diverge")
	}

	// kNN top-n.
	var centralKNN, distKNN []knn.Outlier
	knnParams := knn.Params{K: 5, N: 10}
	cSec, err = timed(func() error {
		centralKNN, err = knn.TopN(pts, knnParams)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("knn centralized: %w", err)
	}
	dSec, err = timed(func() error {
		distKNN, err = knn.TopNDistributed(pts, knnParams, knn.Options{
			NumPartitions: cfg.Partitions, NumReducers: cfg.Reducers, Seed: cfg.Seed,
		})
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("knn distributed: %w", err)
	}
	fig.Series = append(fig.Series, Series{Label: "kNN top-n", Points: []Point{
		{X: "centralized", Y: cSec}, {X: "distributed", Y: dSec},
	}})
	if !sameRanking(centralKNN, distKNN) {
		fig.Notes = append(fig.Notes, "WARNING: kNN rankings diverge")
	}

	if len(fig.Notes) == 0 {
		fig.Notes = append(fig.Notes,
			"all three distributed results verified identical to their centralized twins")
	}
	return fig, nil
}

func sameIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameRanking(a, b []knn.Outlier) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
	}
	return true
}
