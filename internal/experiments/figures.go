package experiments

import (
	"context"
	"fmt"
	"math"

	"dod/internal/core"
	"dod/internal/detect"
	"dod/internal/geom"
	"dod/internal/plan"
	"dod/internal/synth"
)

// PaperParams are the outlier parameters used throughout Sec. IV and VI
// where stated: r = 5, k = 4.
var PaperParams = detect.Params{R: 5, K: 4}

// sampleRate picks a preprocessing rate: the paper's 0.5% on large inputs,
// raised on small ones so the histogram stays informative.
func sampleRate(n int) float64 {
	r := 5000.0 / float64(n)
	if r < 0.005 {
		r = 0.005
	}
	if r > 1 {
		r = 1
	}
	return r
}

// bucketsPerDim picks a mini-bucket resolution so the expected per-bucket
// sample count stays high enough (~25 points) for density estimates to be
// statistically stable — Poisson noise on near-empty buckets otherwise
// fragments the DSHC clustering.
func bucketsPerDim(n int) int {
	b := int(math.Sqrt(float64(n) / 25))
	if b < 8 {
		b = 8
	}
	if b > 40 {
		b = 40
	}
	return b
}

// runCase executes one (dataset, planner, detector) configuration and
// returns its report.
func runCase(cfg Config, pts []geom.Point, planner plan.Planner, det detect.Kind) (*core.Report, error) {
	input, err := core.InputFromPoints(pts, 8192)
	if err != nil {
		return nil, err
	}
	return core.Run(context.Background(), input, core.Config{
		Params:  PaperParams,
		Planner: planner,
		PlanOpts: plan.Options{
			NumReducers:   cfg.Reducers,
			NumPartitions: cfg.Partitions,
			Detector:      det,
			Candidates:    cfg.Candidates,
			AllowApprox:   cfg.AllowApprox,
		},
		SampleRate:    sampleRate(len(pts)),
		BucketsPerDim: bucketsPerDim(len(pts)),
		Seed:          cfg.Seed,
		Parallelism:   cfg.Parallelism,
	})
}

// centralizedSeconds runs a centralized detector and converts its work to
// simulated seconds at the cluster work rate.
func centralizedSeconds(pts []geom.Point, kind detect.Kind, seed int64) float64 {
	res := core.DetectCentralized(pts, kind, PaperParams, seed)
	return float64(res.Stats.Cost()) / core.WorkRate
}

// Fig4 reproduces the Nested-Loop density-sensitivity experiment of
// Sec. IV-A: two equal-cardinality uniform datasets, the sparse one
// covering 4× the domain area of the dense one. The paper measures
// Nested-Loop ≈4.5× slower on D-Sparse.
func Fig4(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	const denseDensity = 0.4
	dense := synth.JitteredGrid(cfg.SweepN, denseDensity, cfg.Seed+1)
	sparse := synth.JitteredGrid(cfg.SweepN, denseDensity/4, cfg.Seed+2)

	sparseSec := centralizedSeconds(sparse, detect.NestedLoop, cfg.Seed)
	denseSec := centralizedSeconds(dense, detect.NestedLoop, cfg.Seed)
	fig := &Figure{
		ID:     "Fig. 4",
		Title:  "Sensitivity of Nested-Loop's performance to dataset density",
		XLabel: "dataset",
		YLabel: "execution time (simulated sec)",
		Series: []Series{{
			Label: "Nested-Loop",
			Points: []Point{
				{X: "D-Sparse", Y: sparseSec},
				{X: "D-Dense", Y: denseSec},
			},
		}},
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"D-Sparse/D-Dense ratio = %.2fx (paper: ≈4.5x; both datasets hold %d points, area ratio 4:1)",
		sparseSec/denseSec, cfg.SweepN))
	return fig, nil
}

// Fig5 reproduces the detector-vs-density sweep of Sec. IV-B: execution
// time of Cell-Based and Nested-Loop on 10k-point uniform datasets whose
// density varies from 0.01 to 100. Cell-Based wins at both extremes,
// Nested-Loop in the middle.
func Fig5(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	densities := []float64{0.01, 0.0316, 0.1, 0.316, 1, 3.16, 10, 31.6, 100}
	var cb, nl Series
	cb.Label, nl.Label = "Cell-Based", "Nested-Loop"
	for i, d := range densities {
		pts := synth.JitteredGrid(cfg.SweepN, d, cfg.Seed+int64(i))
		x := fmt.Sprintf("%g", d)
		cb.Points = append(cb.Points, Point{X: x, Y: centralizedSeconds(pts, detect.CellBased, cfg.Seed)})
		nl.Points = append(nl.Points, Point{X: x, Y: centralizedSeconds(pts, detect.NestedLoop, cfg.Seed)})
	}
	return &Figure{
		ID:     "Fig. 5",
		Title:  "Performance of detection algorithms w.r.t. data density",
		XLabel: "density measure",
		YLabel: "execution time (simulated sec)",
		Series: []Series{cb, nl},
		Notes: []string{
			"paper shape: Cell-Based cheaper at both density extremes, Nested-Loop cheaper in the intermediate band",
		},
	}, nil
}

// segmentPoints generates the four state segments at the configured scale.
func segmentPoints(cfg Config) map[string][]geom.Point {
	out := make(map[string][]geom.Point, len(synth.Segments))
	for i, kind := range synth.Segments {
		out[string(kind)] = synth.Segment(kind, cfg.SegmentN, cfg.Seed+100+int64(i))
	}
	return out
}

// fig7 runs the partitioning-effectiveness comparison with a fixed
// detector; shown as time relative to CDriven, as in the paper.
func fig7(cfg Config, det detect.Kind, id string) (*Figure, error) {
	cfg = cfg.withDefaults()
	segments := segmentPoints(cfg)
	planners := []plan.Planner{plan.Domain, plan.UniSpace, plan.DDriven, plan.CDriven}

	totals := map[string]map[string]float64{} // planner -> segment -> sec
	for _, p := range planners {
		totals[p.Name()] = map[string]float64{}
	}
	for _, kind := range synth.Segments {
		seg := string(kind)
		for _, p := range planners {
			rep, err := runCase(cfg, segments[seg], p, det)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", p.Name(), seg, err)
			}
			totals[p.Name()][seg] = seconds(rep.Simulated.Total())
		}
	}

	fig := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("Partitioning effectiveness for various distributions (%v detector)", det),
		XLabel: "dataset segment",
		YLabel: "time proportion to CDriven",
	}
	for _, p := range planners {
		s := Series{Label: p.Name()}
		for _, kind := range synth.Segments {
			seg := string(kind)
			s.Points = append(s.Points, Point{X: seg, Y: totals[p.Name()][seg] / totals["CDriven"][seg]})
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes,
		"paper shape: CDriven = 1 everywhere; DDriven ≈ 1.5x; uniSpace and Domain up to ≈4-5x")
	return fig, nil
}

// Fig7a is the comparison under the Nested-Loop detector.
func Fig7a(cfg Config) (*Figure, error) { return fig7(cfg, detect.NestedLoop, "Fig. 7a") }

// Fig7b is the comparison under the Cell-Based detector.
func Fig7b(cfg Config) (*Figure, error) { return fig7(cfg, detect.CellBased, "Fig. 7b") }

// levelPoints generates the hierarchical scalability datasets.
func levelPoints(cfg Config) map[string][]geom.Point {
	out := make(map[string][]geom.Point, len(synth.Levels))
	for i, level := range synth.Levels {
		out[string(level)] = synth.Hierarchical(level, cfg.BaseN, cfg.Seed+200+int64(i))
	}
	return out
}

// fig8 runs the partitioning scalability comparison for one detector.
func fig8(cfg Config, det detect.Kind, id string) (*Figure, error) {
	cfg = cfg.withDefaults()
	levels := levelPoints(cfg)
	planners := []plan.Planner{plan.Domain, plan.UniSpace, plan.DDriven, plan.CDriven}

	fig := &Figure{
		ID:     id,
		Title:  fmt.Sprintf("Partitioning scalability for varying data sizes (%v detector)", det),
		XLabel: "dataset level",
		YLabel: "time (simulated sec, paper plots log scale)",
	}
	for _, p := range planners {
		s := Series{Label: p.Name()}
		for _, level := range synth.Levels {
			rep, err := runCase(cfg, levels[string(level)], p, det)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", p.Name(), level, err)
			}
			s.Points = append(s.Points, Point{X: string(level), Y: seconds(rep.Simulated.Total())})
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes,
		"paper shape: CDriven wins at every size; at Planet ≈6x over DDriven and ≈17x over Domain")
	return fig, nil
}

// Fig8a is the scalability comparison under the Nested-Loop detector.
func Fig8a(cfg Config) (*Figure, error) { return fig8(cfg, detect.NestedLoop, "Fig. 8a") }

// Fig8b is the scalability comparison under the Cell-Based detector.
func Fig8b(cfg Config) (*Figure, error) { return fig8(cfg, detect.CellBased, "Fig. 8b") }

// detectionMethods are the reducer-side alternatives of Sec. VI-C: the two
// fixed detectors under the most advanced single-tactic partitioning
// (CDriven) versus the full multi-tactic DMT.
type detectionMethod struct {
	label   string
	planner plan.Planner
	det     detect.Kind
}

func detectionMethods() []detectionMethod {
	return []detectionMethod{
		{"Nested-Loop", plan.CDriven, detect.NestedLoop},
		{"Cell-Based", plan.CDriven, detect.CellBased},
		{"DMT", plan.DMT, detect.Unspecified},
	}
}

// Fig9a reproduces the detection-method comparison across the four data
// distributions.
func Fig9a(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	segments := segmentPoints(cfg)
	fig := &Figure{
		ID:     "Fig. 9a",
		Title:  "Detection methods: effectiveness for varying distributions",
		XLabel: "dataset segment",
		YLabel: "time (simulated sec)",
	}
	for _, m := range detectionMethods() {
		s := Series{Label: m.label}
		for _, kind := range synth.Segments {
			rep, err := runCase(cfg, segments[string(kind)], m.planner, m.det)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", m.label, kind, err)
			}
			s.Points = append(s.Points, Point{X: string(kind), Y: seconds(rep.Simulated.Total())})
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes,
		"paper shape: Cell-Based ≥2x faster than Nested-Loop on dense CA/NY; Nested-Loop wins on sparse OH; DMT stable and best overall")
	return fig, nil
}

// Fig9b reproduces the detection-method scalability comparison.
func Fig9b(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	levels := levelPoints(cfg)
	fig := &Figure{
		ID:     "Fig. 9b",
		Title:  "Detection methods: scalability for varying data sizes",
		XLabel: "dataset level",
		YLabel: "time (simulated sec, paper plots log scale)",
	}
	for _, m := range detectionMethods() {
		s := Series{Label: m.label}
		for _, level := range synth.Levels {
			rep, err := runCase(cfg, levels[string(level)], m.planner, m.det)
			if err != nil {
				return nil, fmt.Errorf("%s on %s: %w", m.label, level, err)
			}
			s.Points = append(s.Points, Point{X: string(level), Y: seconds(rep.Simulated.Total())})
		}
		fig.Series = append(fig.Series, s)
	}
	fig.Notes = append(fig.Notes,
		"paper shape: DMT consistently fastest; the margin grows with dataset size/skew")
	return fig, nil
}

// breakdownFigure renders a per-stage breakdown (preprocess/map/reduce) for
// a set of approaches on one dataset — the layout of Fig. 10. Shuffle time
// is folded into the map stage, as Hadoop attributes copy time to the
// map-side of the barrier.
func breakdownFigure(cfg Config, id, title string, pts []geom.Point, methods []detectionMethod) (*Figure, error) {
	fig := &Figure{
		ID:     id,
		Title:  title,
		XLabel: "stage",
		YLabel: "time (simulated sec, paper plots log scale)",
	}
	for _, m := range methods {
		rep, err := runCase(cfg, pts, m.planner, m.det)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", m.label, err)
		}
		fig.Series = append(fig.Series, Series{
			Label: m.label,
			Points: []Point{
				{X: "Preprocess", Y: seconds(rep.Simulated.Preprocess)},
				{X: "Map", Y: seconds(rep.Simulated.Map + rep.Simulated.Shuffle)},
				{X: "Reduce", Y: seconds(rep.Simulated.Reduce)},
			},
		})
	}
	return fig, nil
}

// Fig10a reproduces the stage breakdown on the distorted terabyte-scale
// analog: the original data replicated 3× with jitter (Sec. VI-A).
func Fig10a(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	base := synth.Hierarchical(synth.LevelUS, cfg.BaseN, cfg.Seed+300)
	pts := synth.Distort(base, 3, PaperParams.R/2, cfg.Seed+301)
	// The 4x replication quadruples density everywhere; stretching the
	// coordinates by 2 restores the original density profile, so the
	// terabyte-analog keeps the paper's mix of dense regions and
	// "relatively sparse partitions for which Nested-Loop is more
	// appropriate".
	for i := range pts {
		for d := range pts[i].Coords {
			pts[i].Coords[d] *= 2
		}
	}
	methods := []detectionMethod{
		{"Domain + Cell-Based", plan.Domain, detect.CellBased},
		{"uniSpace + Cell-Based", plan.UniSpace, detect.CellBased},
		{"DDriven + Cell-Based", plan.DDriven, detect.CellBased},
		{"DMT", plan.DMT, detect.Unspecified},
	}
	fig, err := breakdownFigure(cfg, "Fig. 10a",
		"Overall approach: performance breakdown on the distorted (2TB-analog) dataset", pts, methods)
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"paper shape: DMT pays more preprocessing than DDriven (Domain/uniSpace pay none), map times comparable, reduce up to 10x faster for DMT")
	return fig, nil
}

// Fig10b reproduces the stage breakdown on the TIGER analog.
func Fig10b(cfg Config) (*Figure, error) {
	cfg = cfg.withDefaults()
	n := cfg.SegmentN * 2
	pts := synth.TigerLike(n, 800, 25, cfg.Seed+400)
	methods := []detectionMethod{
		{"CDriven + Nested-Loop", plan.CDriven, detect.NestedLoop},
		{"CDriven + Cell-Based", plan.CDriven, detect.CellBased},
		{"DMT", plan.DMT, detect.Unspecified},
	}
	fig, err := breakdownFigure(cfg, "Fig. 10b",
		"Overall approach: performance breakdown on the TIGER-analog dataset", pts, methods)
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes,
		"paper shape: DMT up to 20x faster than the single-tactic alternatives on the reduce stage")
	return fig, nil
}
