// Package experiments regenerates every figure of the paper's evaluation
// (Sec. VI) on the synthetic analogs of its datasets. Each FigN function
// runs the corresponding workload sweep and returns a Figure holding the
// same series the paper plots; String renders it as a text table.
//
// Times on the y-axes are simulated-cluster makespans (internal/cluster)
// derived from deterministic work counters, so results are reproducible and
// machine-independent; EXPERIMENTS.md compares their *shape* against the
// paper's reported curves.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dod/internal/detect"
)

// Point is one (x, y) sample of a series.
type Point struct {
	X string  // category label (dataset, density, stage, ...)
	Y float64 // value (seconds or ratio)
}

// Series is one labeled curve of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is the reproduced counterpart of one paper figure.
type Figure struct {
	ID     string // e.g. "Fig. 7a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Get returns the y value of series label at category x.
func (f *Figure) Get(label, x string) (float64, bool) {
	for _, s := range f.Series {
		if s.Label != label {
			continue
		}
		for _, p := range s.Points {
			if p.X == x {
				return p.Y, true
			}
		}
	}
	return 0, false
}

// MustGet is Get that panics on a missing sample (used by benches/tests
// that assert on specific cells).
func (f *Figure) MustGet(label, x string) float64 {
	v, ok := f.Get(label, x)
	if !ok {
		panic(fmt.Sprintf("experiments: %s has no sample %q/%q", f.ID, label, x))
	}
	return v
}

// String renders the figure as an aligned text table: one row per series,
// one column per x category.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "  x: %s   y: %s\n", f.XLabel, f.YLabel)

	// Collect the category order from the first series.
	var cats []string
	if len(f.Series) > 0 {
		for _, p := range f.Series[0].Points {
			cats = append(cats, p.X)
		}
	}
	width := 12
	for _, s := range f.Series {
		if len(s.Label) > width {
			width = len(s.Label)
		}
	}
	fmt.Fprintf(&b, "  %-*s", width, "")
	for _, c := range cats {
		fmt.Fprintf(&b, " %12s", c)
	}
	b.WriteByte('\n')
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %-*s", width, s.Label)
		for _, c := range cats {
			if v, ok := f.Get(s.Label, c); ok {
				fmt.Fprintf(&b, " %12.4g", v)
			} else {
				fmt.Fprintf(&b, " %12s", "-")
			}
		}
		b.WriteByte('\n')
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// Config scales the experiment workloads. The defaults run every figure in
// seconds on a laptop; raise the sizes to stress the system.
type Config struct {
	// SegmentN is the cardinality of one dataset segment (the paper's
	// state extracts are ~30M points; default 20000 preserves the density
	// and skew structure at laptop scale).
	SegmentN int
	// BaseN is the per-segment cardinality of the hierarchical levels
	// (Fig. 8/9b); Planet is 20× this. Default 4000.
	BaseN int
	// SweepN is the cardinality of the density-sweep sets (Figs. 4, 5).
	// Default 10000, the paper's own size for these microbenchmarks.
	SweepN int
	// Reducers is the reduce-task count of the detection jobs. Default 8.
	Reducers int
	// Partitions is the target partition count for grid/bisection
	// planners. Default 4×Reducers.
	Partitions int
	// Seed drives all generators and algorithms.
	Seed int64
	// Parallelism bounds in-process goroutines (0 = GOMAXPROCS).
	Parallelism int
	// Candidates overrides the DMT planner's detector candidate set
	// (default NestedLoop + CellBased); single-tactic planners ignore it.
	Candidates []detect.Kind
	// AllowApprox opts in to approximate detectors among the Candidates
	// (e.g. Sens-Sample); without it they are filtered out of the
	// planner's choice set.
	AllowApprox bool
}

func (c Config) withDefaults() Config {
	if c.SegmentN <= 0 {
		c.SegmentN = 20000
	}
	if c.BaseN <= 0 {
		c.BaseN = 4000
	}
	if c.SweepN <= 0 {
		c.SweepN = 10000
	}
	if c.Reducers <= 0 {
		c.Reducers = 8
	}
	if c.Partitions <= 0 {
		c.Partitions = 4 * c.Reducers
	}
	return c
}

// seconds converts a simulated duration to float seconds for plotting.
func seconds(d time.Duration) float64 { return d.Seconds() }

// All runs every figure reproduction in paper order.
func All(cfg Config) ([]*Figure, error) {
	type runner struct {
		name string
		run  func(Config) (*Figure, error)
	}
	runners := []runner{
		{"Fig4", Fig4},
		{"Fig5", Fig5},
		{"Fig7a", Fig7a},
		{"Fig7b", Fig7b},
		{"Fig8a", Fig8a},
		{"Fig8b", Fig8b},
		{"Fig9a", Fig9a},
		{"Fig9b", Fig9b},
		{"Fig10a", Fig10a},
		{"Fig10b", Fig10b},
	}
	var figs []*Figure
	for _, r := range runners {
		f, err := r.run(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", r.name, err)
		}
		figs = append(figs, f)
	}
	return figs, nil
}

// sortedKeys returns map keys in sorted order (deterministic iteration).
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
