package experiments

import (
	"testing"
)

func TestFig7bShape(t *testing.T) {
	fig, err := Fig7b(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range []string{"OH", "MA", "CA", "NY"} {
		if v := fig.MustGet("CDriven", seg); v != 1 {
			t.Errorf("CDriven self-ratio on %s = %g", seg, v)
		}
		// With the mixed-density cost model no baseline should beat CDriven
		// by a large margin anywhere.
		for _, planner := range []string{"Domain", "uniSpace", "DDriven"} {
			if v := fig.MustGet(planner, seg); v < 0.5 {
				t.Errorf("%s on %s = %g; CDriven should not lose 2x", planner, seg, v)
			}
		}
	}
}

func TestFig8Shapes(t *testing.T) {
	for name, run := range map[string]func(Config) (*Figure, error){"8a": Fig8a, "8b": Fig8b} {
		fig, err := run(tiny())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, planner := range []string{"Domain", "uniSpace", "DDriven", "CDriven"} {
			// Time grows monotonically from MA to Planet for every planner.
			prev := 0.0
			for _, level := range []string{"MA", "NE", "US", "Planet"} {
				v := fig.MustGet(planner, level)
				if v <= 0 {
					t.Errorf("%s: %s@%s = %g", name, planner, level, v)
				}
				if v < prev {
					t.Errorf("%s: %s time shrank from %g to %g at %s", name, planner, prev, v, level)
				}
				prev = v
			}
		}
		// At the largest scale the cost-driven planner must beat the naive
		// baselines.
		cd := fig.MustGet("CDriven", "Planet")
		for _, planner := range []string{"Domain", "uniSpace", "DDriven"} {
			if v := fig.MustGet(planner, "Planet"); v < cd {
				t.Errorf("%s: %s (%g) beat CDriven (%g) at Planet", name, planner, v, cd)
			}
		}
	}
}

func TestFig9bShape(t *testing.T) {
	fig, err := Fig9b(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// DMT must win at the two largest scales, and its advantage must not
	// shrink from US to Planet.
	for _, level := range []string{"US", "Planet"} {
		dmt := fig.MustGet("DMT", level)
		nl := fig.MustGet("Nested-Loop", level)
		cb := fig.MustGet("Cell-Based", level)
		best := nl
		if cb < best {
			best = cb
		}
		if dmt > best {
			t.Errorf("%s: DMT %g lost to best single tactic %g", level, dmt, best)
		}
	}
}

func TestFig10aShape(t *testing.T) {
	fig, err := Fig10a(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Domain and uniSpace pay no preprocessing; DDriven and DMT do.
	for _, label := range []string{"Domain + Cell-Based", "uniSpace + Cell-Based"} {
		if v := fig.MustGet(label, "Preprocess"); v != 0 {
			t.Errorf("%s preprocess = %g, want 0", label, v)
		}
	}
	for _, label := range []string{"DDriven + Cell-Based", "DMT"} {
		if v := fig.MustGet(label, "Preprocess"); v == 0 {
			t.Errorf("%s preprocess missing", label)
		}
	}
	// DMT's reduce stage must beat every single-tactic alternative.
	dmt := fig.MustGet("DMT", "Reduce")
	for _, label := range []string{"Domain + Cell-Based", "uniSpace + Cell-Based", "DDriven + Cell-Based"} {
		if v := fig.MustGet(label, "Reduce"); v < dmt {
			t.Errorf("%s reduce %g beat DMT %g", label, v, dmt)
		}
	}
}

func TestAllRunsEveryFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full figure suite")
	}
	cfg := Config{SegmentN: 1200, BaseN: 500, SweepN: 1500, Reducers: 4, Seed: 2}
	figs, err := All(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 10 {
		t.Fatalf("got %d figures, want 10", len(figs))
	}
	wantIDs := []string{"Fig. 4", "Fig. 5", "Fig. 7a", "Fig. 7b", "Fig. 8a", "Fig. 8b", "Fig. 9a", "Fig. 9b", "Fig. 10a", "Fig. 10b"}
	for i, fig := range figs {
		if fig.ID != wantIDs[i] {
			t.Errorf("figure %d is %q, want %q", i, fig.ID, wantIDs[i])
		}
		if len(fig.Series) == 0 {
			t.Errorf("%s has no series", fig.ID)
		}
		if fig.String() == "" {
			t.Errorf("%s renders empty", fig.ID)
		}
	}
}

func TestSampleRateBounds(t *testing.T) {
	if got := sampleRate(100); got != 1 {
		t.Errorf("tiny dataset rate = %g, want 1", got)
	}
	if got := sampleRate(10_000_000); got != 0.005 {
		t.Errorf("huge dataset rate = %g, want the paper's 0.005", got)
	}
	if got := sampleRate(50_000); got <= 0.005 || got >= 1 {
		t.Errorf("mid dataset rate = %g, want interior value", got)
	}
}

func TestBucketsPerDimBounds(t *testing.T) {
	if got := bucketsPerDim(10); got != 8 {
		t.Errorf("tiny n buckets = %d, want 8", got)
	}
	if got := bucketsPerDim(100_000_000); got != 40 {
		t.Errorf("huge n buckets = %d, want 40", got)
	}
}

func TestGeneralityAgreement(t *testing.T) {
	fig, err := Generality(Config{SegmentN: 2500, Reducers: 4, Partitions: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, note := range fig.Notes {
		if len(note) >= 7 && note[:7] == "WARNING" {
			t.Errorf("generality divergence: %s", note)
		}
	}
	for _, label := range []string{"DBSCAN", "LOCI", "kNN top-n"} {
		for _, mode := range []string{"centralized", "distributed"} {
			if _, ok := fig.Get(label, mode); !ok {
				t.Errorf("missing %s/%s", label, mode)
			}
		}
	}
}
