package experiments

import (
	"strings"
	"testing"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	return Config{SegmentN: 3000, BaseN: 1200, SweepN: 4000, Reducers: 4, Partitions: 16, Seed: 1}
}

func TestFig4Shape(t *testing.T) {
	fig, err := Fig4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	sparse := fig.MustGet("Nested-Loop", "D-Sparse")
	dense := fig.MustGet("Nested-Loop", "D-Dense")
	if sparse <= dense {
		t.Errorf("D-Sparse (%g) must cost more than D-Dense (%g)", sparse, dense)
	}
	if ratio := sparse / dense; ratio < 2 {
		t.Errorf("sparse/dense ratio %g; paper reports ≈4.5x, want at least 2x", ratio)
	}
}

func TestFig5Shape(t *testing.T) {
	fig, err := Fig5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Cell-Based must win at the density extremes, Nested-Loop somewhere in
	// the middle band (the crossover of Fig. 5).
	if cb, nl := fig.MustGet("Cell-Based", "0.01"), fig.MustGet("Nested-Loop", "0.01"); cb >= nl {
		t.Errorf("at density 0.01: CB %g should beat NL %g", cb, nl)
	}
	if cb, nl := fig.MustGet("Cell-Based", "100"), fig.MustGet("Nested-Loop", "100"); cb >= nl {
		t.Errorf("at density 100: CB %g should beat NL %g", cb, nl)
	}
	// In the intermediate band Cell-Based loses its pruning advantage and
	// the two detectors converge: the best CB/NL ratio in the band must be
	// near or above parity (the paper measures NL strictly faster there;
	// our implementation's fluctuation pruning offsets its indexing
	// overhead, so the reproduced gap is a near-tie — see EXPERIMENTS.md).
	bestRatio := 0.0
	for _, d := range []string{"0.0316", "0.1"} {
		if r := fig.MustGet("Cell-Based", d) / fig.MustGet("Nested-Loop", d); r > bestRatio {
			bestRatio = r
		}
	}
	if bestRatio < 0.9 {
		t.Errorf("mid-band CB/NL best ratio = %.2f; detectors should converge near parity", bestRatio)
	}
	// And at the extremes Cell-Based must win by a wide margin.
	if r := fig.MustGet("Cell-Based", "0.01") / fig.MustGet("Nested-Loop", "0.01"); r > 0.1 {
		t.Errorf("sparse extreme: CB/NL = %.3f, want < 0.1", r)
	}
	if r := fig.MustGet("Cell-Based", "100") / fig.MustGet("Nested-Loop", "100"); r > 0.5 {
		t.Errorf("dense extreme: CB/NL = %.3f, want < 0.5", r)
	}
}

func TestFig7aShape(t *testing.T) {
	fig, err := Fig7a(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range []string{"OH", "MA", "CA", "NY"} {
		if v := fig.MustGet("CDriven", seg); v != 1 {
			t.Errorf("CDriven self-ratio on %s = %g, want 1", seg, v)
		}
		// On the dense segments the reduce stage is cheap at laptop scale
		// and supporting-area duplication (a fixed r against small
		// partitions) compresses the gaps; allow the baselines to come
		// within 30% of CDriven there, but never to beat it meaningfully.
		if v := fig.MustGet("Domain", seg); v < 0.7 {
			t.Errorf("Domain on %s = %g; baseline should not clearly beat CDriven", seg, v)
		}
	}
	// Where the reduce stage dominates (sparse, skewed OH and MA), the
	// baselines must lose to CDriven outright.
	for _, seg := range []string{"OH", "MA"} {
		for _, planner := range []string{"Domain", "DDriven"} {
			if v := fig.MustGet(planner, seg); v < 1.0 {
				t.Errorf("%s on %s = %g; want >= 1 where reduce dominates", planner, seg, v)
			}
		}
	}
}

func TestFig9aShape(t *testing.T) {
	fig, err := Fig9a(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// DMT must never be dramatically worse than the best single tactic, and
	// should win on at least half the segments.
	wins := 0
	for _, seg := range []string{"OH", "MA", "CA", "NY"} {
		nl := fig.MustGet("Nested-Loop", seg)
		cb := fig.MustGet("Cell-Based", seg)
		dmt := fig.MustGet("DMT", seg)
		best := nl
		if cb < best {
			best = cb
		}
		if dmt <= best*1.25 {
			wins++
		}
		if dmt > 2*best {
			t.Errorf("%s: DMT %g much worse than best single tactic %g", seg, dmt, best)
		}
	}
	if wins < 2 {
		t.Errorf("DMT competitive on only %d/4 segments", wins)
	}
}

func TestFig10bShape(t *testing.T) {
	fig, err := Fig10b(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"CDriven + Nested-Loop", "CDriven + Cell-Based", "DMT"} {
		for _, stage := range []string{"Preprocess", "Map", "Reduce"} {
			if _, ok := fig.Get(label, stage); !ok {
				t.Errorf("missing %s/%s", label, stage)
			}
		}
	}
	// DMT's reduce stage should not lose to both single-tactic methods.
	dmt := fig.MustGet("DMT", "Reduce")
	nl := fig.MustGet("CDriven + Nested-Loop", "Reduce")
	cb := fig.MustGet("CDriven + Cell-Based", "Reduce")
	if dmt > nl && dmt > cb {
		t.Errorf("DMT reduce %g worse than both NL %g and CB %g", dmt, nl, cb)
	}
}

func TestFigureStringRendering(t *testing.T) {
	fig := &Figure{
		ID: "Fig. X", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{{Label: "s1", Points: []Point{{X: "a", Y: 1.5}}}},
		Notes:  []string{"a note"},
	}
	s := fig.String()
	for _, want := range []string{"Fig. X", "demo", "s1", "1.5", "a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestFigureGetMissing(t *testing.T) {
	fig := &Figure{}
	if _, ok := fig.Get("nope", "x"); ok {
		t.Error("Get on empty figure returned ok")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustGet should panic on missing sample")
		}
	}()
	fig.MustGet("nope", "x")
}
