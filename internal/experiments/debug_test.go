package experiments

import (
	"testing"

	"dod/internal/detect"
	"dod/internal/plan"
	"dod/internal/synth"
)

// TestDebugBreakdown is a diagnostic that prints stage breakdowns; run with
// -run TestDebugBreakdown -v. Skipped in short mode.
func TestDebugBreakdown(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("diagnostic only")
	}
	cfg := tiny()
	for _, segKind := range []synth.SegmentKind{synth.Massachusetts, synth.NewYork, synth.Ohio} {
		pts := synth.Segment(segKind, cfg.SegmentN, cfg.Seed+100)
		for _, m := range []detectionMethod{
			{"Domain+NL", plan.Domain, detect.NestedLoop},
			{"CDriven+NL", plan.CDriven, detect.NestedLoop},
			{"CDriven+CB", plan.CDriven, detect.CellBased},
			{"DMT", plan.DMT, detect.Unspecified},
		} {
			rep, err := runCase(cfg, pts, m.planner, m.det)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s %-12s pre=%v map=%v shuf=%v red=%v total=%v | supp=%d dist=%d idx=%d imb=%.2f parts=%d",
				segKind, m.label, rep.Simulated.Preprocess, rep.Simulated.Map, rep.Simulated.Shuffle,
				rep.Simulated.Reduce, rep.Simulated.Total(),
				rep.SupportRecords, rep.DistComps, rep.PointsIndexed, rep.ReduceImbalance, len(rep.Plan.Partitions))
		}
	}
}
