package retry

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

func TestDelayGrowsAndCaps(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
		80 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Delay(i+1, nil); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestDelayZeroValueDefaults(t *testing.T) {
	var p Policy
	if got := p.Delay(1, nil); got != 50*time.Millisecond {
		t.Errorf("zero-value Delay(1) = %v, want 50ms", got)
	}
	if got := p.Delay(100, nil); got != 32*50*time.Millisecond {
		t.Errorf("zero-value Delay(100) = %v, want 1.6s cap", got)
	}
	// Huge attempt counts must not overflow into negative durations.
	if got := p.Delay(1<<30, nil); got <= 0 {
		t.Errorf("Delay(1<<30) = %v, want positive", got)
	}
}

func TestDelayFullJitter(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: true}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		d := p.Delay(3, rng)
		if d <= 0 || d > 40*time.Millisecond {
			t.Fatalf("jittered Delay(3) = %v, want in (0, 40ms]", d)
		}
	}
	// Same seed, same schedule: reproducibility is what the chaos harness
	// leans on.
	a, b := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	for i := 1; i <= 32; i++ {
		if p.Delay(i, a) != p.Delay(i, b) {
			t.Fatal("same-seed jitter schedules diverged")
		}
	}
}

func TestSleepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Hour); err != context.Canceled {
		t.Errorf("Sleep on cancelled ctx = %v, want context.Canceled", err)
	}
	if err := Sleep(context.Background(), 0); err != nil {
		t.Errorf("Sleep(0) = %v", err)
	}
	start := time.Now()
	if err := Sleep(context.Background(), 5*time.Millisecond); err != nil {
		t.Errorf("Sleep = %v", err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Error("Sleep returned early")
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Minute, now: func() time.Time { return now }})

	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("new breaker should be closed")
	}
	b.Failure()
	if !b.Allow() {
		t.Fatal("one failure under threshold 2 should stay closed")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("threshold failures should open the breaker")
	}
	if b.Allow() {
		t.Fatal("open breaker within cooldown should refuse")
	}

	now = now.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("cooled-down breaker should admit a probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe should be refused")
	}
	b.Failure()
	if b.State() != BreakerOpen || b.Allow() {
		t.Fatal("probe failure should re-open")
	}

	now = now.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("second probe window")
	}
	b.Success()
	if b.State() != BreakerClosed || !b.Allow() {
		t.Fatal("probe success should close the breaker")
	}
}

func TestBreakerStateString(t *testing.T) {
	for st, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open",
	} {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
}
