// Package retry is the repo's single backoff and circuit-breaking policy.
//
// Before it existed, dist, serve, and the mapreduce driver each hand-rolled
// a slightly different delay loop (pure exponential, fixed 200ms, doubling
// capped at 100x). They now share one Policy: capped exponential backoff
// with full jitter ("Exponential Backoff And Jitter", AWS Architecture
// Blog), interruptible by context. Full jitter matters under correlated
// failures — when a worker dies, every one of its tasks re-dispatches at
// once, and without jitter they march through the cluster in lockstep,
// re-synchronizing load spikes at every backoff step.
//
// Jitter draws from a caller-supplied seeded source, so a run's delay
// schedule is reproducible: the fault-injection harness (internal/fault)
// replays failing schedules with the same seed and observes the same
// backoff decisions.
//
// Breaker is the companion circuit breaker: repeated failures open it,
// calls are refused (the caller falls back — e.g. serve's cluster scorer
// trips back to the in-process engine), and after a cooldown a single
// half-open probe decides whether to close it again.
package retry

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dod/internal/obs"
)

// Policy describes capped exponential backoff with full jitter. The zero
// value of any field takes its default.
type Policy struct {
	// Base is the delay before the first retry; default 50ms.
	Base time.Duration
	// Max caps the exponentially-grown delay; default 32 x Base.
	Max time.Duration
	// Multiplier grows the delay per attempt; default 2.
	Multiplier float64
	// Jitter selects full jitter (delay drawn uniformly from (0, d]) when
	// true. False keeps the deterministic cap — for tests that assert
	// exact delays.
	Jitter bool
}

func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = 50 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 32 * p.Base
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	return p
}

// Delay returns the backoff before retry number attempt (1-based: attempt 1
// is the first retry). rng supplies the jitter draw and may be nil when
// Jitter is false; pass a seeded *rand.Rand for reproducible schedules.
func (p Policy) Delay(attempt int, rng *rand.Rand) time.Duration {
	p = p.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := float64(p.Base)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.Max) {
			break
		}
	}
	if d > float64(p.Max) || d <= 0 {
		d = float64(p.Max)
	}
	if p.Jitter && rng != nil {
		d = rng.Float64() * d
		if d < 1 {
			d = 1 // never a zero sleep: a hot retry loop is worse than 1ns
		}
	}
	return time.Duration(d)
}

// Process-wide backoff accounting. Policies are throwaway value types
// created at every call site, so instrumentation hangs off the package:
// every backoff sleep anywhere in the process lands in these counters, and
// Instrument exposes them on whichever registries want them.
var (
	sleepCount atomic.Int64
	sleepNanos atomic.Int64
)

// Instrument registers the package's dod_retry_* series on reg:
// dod_retry_sleeps_total (backoff sleeps taken process-wide) and
// dod_retry_sleep_seconds_total (their summed requested duration). Safe to
// call on several registries, or repeatedly on one.
func Instrument(reg *obs.Registry) {
	reg.GaugeFunc("dod_retry_sleeps_total",
		"Backoff sleeps taken by retry.Sleep, process-wide.",
		func() float64 { return float64(sleepCount.Load()) })
	reg.GaugeFunc("dod_retry_sleep_seconds_total",
		"Summed requested duration of all backoff sleeps, process-wide.",
		func() float64 { return time.Duration(sleepNanos.Load()).Seconds() })
}

// Sleep blocks for d or until ctx is done, returning ctx.Err() in the
// latter case. A non-positive d returns immediately.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	sleepCount.Add(1)
	sleepNanos.Add(int64(d))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// BreakerState is the observable state of a Breaker.
type BreakerState int

const (
	// BreakerClosed passes calls through (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses calls until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits one probe call; its outcome decides.
	BreakerHalfOpen
)

// String names the state for metrics and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes a Breaker. The zero value is usable.
type BreakerConfig struct {
	// Threshold is how many consecutive failures open the breaker;
	// default 3.
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe; default 5s.
	Cooldown time.Duration
	// now overrides the clock in tests.
	now func() time.Time
}

// Breaker is a concurrency-safe circuit breaker. Allow gates each call;
// Success and Failure report the outcome of an allowed call.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
}

// NewBreaker builds a closed Breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 3
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	return &Breaker{cfg: cfg}
}

// Allow reports whether a call may proceed. In the open state it returns
// false until the cooldown has elapsed, then admits exactly one half-open
// probe at a time.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open: one probe in flight at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success reports a successful allowed call; a half-open probe success
// closes the breaker.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
}

// Failure reports a failed allowed call; Threshold consecutive failures
// (or any half-open probe failure) open the breaker.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.state == BreakerHalfOpen || b.failures >= b.cfg.Threshold {
		b.state = BreakerOpen
		b.openedAt = b.cfg.now()
		b.probing = false
	}
}

// State snapshots the breaker's state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
